package resim_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	resim "repro"
)

func TestSessionOptionComposition(t *testing.T) {
	ses, err := resim.New(
		resim.WithWidth(2),
		resim.WithIFQSize(2),
		resim.WithRBSize(32),
		resim.WithLSQSize(16),
		resim.WithOrganization(resim.OrgImproved),
		resim.WithPerfectBP(),
		resim.WithPenalties(2, 5),
		resim.WithMaxCycles(123),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ses.Config()
	if cfg.Width != 2 || cfg.IFQSize != 2 || cfg.RBSize != 32 || cfg.LSQSize != 16 {
		t.Errorf("structure options not applied: %+v", cfg)
	}
	if cfg.Organization != resim.OrgImproved || !cfg.PerfectBP {
		t.Errorf("organization/predictor options not applied")
	}
	if cfg.MisfetchPenalty != 2 || cfg.MispredPenalty != 5 || cfg.MaxCycles != 123 {
		t.Errorf("penalty/cycle options not applied")
	}

	// Later options override earlier ones.
	ses, err = resim.New(resim.WithWidth(8), resim.WithWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	if ses.Config().Width != 4 {
		t.Errorf("width = %d, want last option to win", ses.Config().Width)
	}

	// ... including across the two cache option families: a later WithDCache
	// replaces the WithL1Caches data side but keeps its instruction side.
	custom, err := resim.NewL1Cache(resim.CacheConfig{
		Name: "custom", SizeBytes: 1 << 10, Assoc: 1, BlockBytes: 32,
		HitLatency: 1, MissLatency: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ses, err = resim.New(
		resim.WithL1Caches(resim.CacheConfig{
			SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 1, MissLatency: 20,
		}),
		resim.WithDCache(custom),
	)
	if err != nil {
		t.Fatal(err)
	}
	got := ses.Config()
	if got.DCache != resim.CacheModel(custom) {
		t.Error("later WithDCache did not override WithL1Caches")
	}
	if got.ICache == nil {
		t.Error("WithL1Caches instruction side lost after WithDCache")
	}
	// And WithConfig wipes earlier cache geometry entirely.
	ses, err = resim.New(
		resim.WithL1Caches(resim.CacheConfig{
			SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 1, MissLatency: 20,
		}),
		resim.WithConfig(resim.DefaultConfig()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := ses.Config(); cfg.ICache != nil || cfg.DCache != nil {
		t.Error("WithConfig did not clear earlier WithL1Caches geometry")
	}
}

func TestSessionAutoClampsReadPorts(t *testing.T) {
	// The default configuration has 2 read ports; under the Optimized
	// organization a 2-wide machine allows only N-1 = 1. Without an explicit
	// port option New clamps instead of failing.
	ses, err := resim.New(resim.WithWidth(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := ses.Config().MemReadPorts; got != 1 {
		t.Errorf("MemReadPorts = %d, want clamped to 1", got)
	}
	// An explicit choice is validated, not clamped.
	if _, err := resim.New(resim.WithWidth(2), resim.WithMemoryPorts(2, 1)); err == nil {
		t.Error("explicit illegal port count accepted")
	}
}

func TestSessionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []resim.Option
	}{
		{"zero width", []resim.Option{resim.WithWidth(0)}},
		{"huge width", []resim.Option{resim.WithWidth(64)}},
		{"bad cache geometry", []resim.Option{resim.WithL1Caches(resim.CacheConfig{SizeBytes: 100})}},
		{"zero RB", []resim.Option{resim.WithRBSize(0)}},
		{"negative penalty", []resim.Option{resim.WithPenalties(-1, 3)}},
	}
	for _, tc := range cases {
		if _, err := resim.New(tc.opts...); err == nil {
			t.Errorf("%s: New accepted an invalid configuration", tc.name)
		}
	}
}

func TestSessionL1CachesOption(t *testing.T) {
	ses, err := resim.New(resim.WithL1Caches(resim.CacheConfig{
		SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 1, MissLatency: 20,
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.RunWorkload(context.Background(), "parser", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ICache.Accesses() == 0 || res.DCache.Accesses() == 0 {
		t.Error("session caches saw no traffic")
	}
}

// TestSessionCachedRunsAreIndependent pins the WithL1Caches contract: every
// run gets fresh cache instances, so repeated and concurrent runs are
// deterministic and race-free (run with -race to check the latter).
func TestSessionCachedRunsAreIndependent(t *testing.T) {
	ses, err := resim.New(resim.WithL1Caches(resim.CacheConfig{
		SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 1, MissLatency: 20,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := ses.RunWorkload(ctx, "gzip", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ses.RunWorkload(ctx, "gzip", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters != second.Counters ||
		first.DCache.Misses() != second.DCache.Misses() {
		t.Error("second run saw state warmed by the first (caches shared across runs)")
	}

	results := make(chan resim.Result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, err := ses.RunWorkload(ctx, "gzip", 15_000)
			if err != nil {
				t.Error(err)
			}
			results <- res
		}()
	}
	a, b := <-results, <-results
	if a.Counters != b.Counters {
		t.Error("concurrent runs diverged (shared engine state)")
	}
}

// TestSweepWithSharedBaseCachesIsDeterministic pins the per-point cache
// isolation: SweepGrid copies one Config (and thus one cache-model pair)
// into every point, and parallel workers must not share that state. Run
// with -race to check the data-race half; the counter comparison catches
// cross-point warming either way.
func TestSweepWithSharedBaseCachesIsDeterministic(t *testing.T) {
	ses, err := resim.New(resim.WithL1Caches(resim.CacheConfig{
		SizeBytes: 4 << 10, Assoc: 2, BlockBytes: 64, HitLatency: 1, MissLatency: 20,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func() []resim.SweepResult {
		points := resim.SweepGrid("rb", ses.Config(), []int{8, 16, 32}, func(c *resim.Config, v int) {
			c.RBSize = v
		})
		res, err := ses.Sweep(ctx, "gzip", 10_000, points)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Res.Counters != b[i].Res.Counters ||
			a[i].Res.DCache.Misses() != b[i].Res.DCache.Misses() {
			t.Errorf("point %s not deterministic across sweeps (shared cache state)", a[i].Name)
		}
	}
}

func TestNilContextRunsLikeBackground(t *testing.T) {
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.RunWorkload(nil, "gzip", 5_000) //nolint:staticcheck // nil ctx tolerated by contract
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Error("nil-context run produced no result")
	}
}

// TestWrapperSessionEquivalence pins the deprecated free functions to the
// Session they delegate to: identical counters on a fixed workload.
func TestWrapperSessionEquivalence(t *testing.T) {
	cfg := resim.DefaultConfig()
	old, err := resim.SimulateWorkload(cfg, "gzip", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := resim.New(resim.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	now, err := ses.RunWorkload(context.Background(), "gzip", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if old.Counters != now.Counters {
		t.Errorf("wrapper and Session results differ:\nold %+v\nnew %+v", old.Counters, now.Counters)
	}
}

func TestRunWorkloadCancellation(t *testing.T) {
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ses.RunWorkload(ctx, "gzip", 5_000_000); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunWorkloadCancellationMidRun(t *testing.T) {
	// The observer must receive a terminal non-Final snapshot on the
	// cancellation path — the callback that stops sweepd clients and
	// dashboards from hanging on the last interval.
	var mu sync.Mutex
	var last resim.Progress
	var calls, finals int
	ses, err := resim.New(resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		last = p
		if p.Final {
			finals++
		}
	}), 1024))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var res resim.Result
	go func() {
		// Effectively unbounded budget; only cancellation stops it promptly.
		var err error
		res, err = ses.RunWorkload(ctx, "gzip", 1<<62)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("cancelled run delivered no observer callbacks")
	}
	if finals != 0 {
		t.Errorf("cancelled run delivered %d Final callbacks, want 0", finals)
	}
	if last.Final || last.Cycles != res.Cycles {
		t.Errorf("terminal snapshot = %+v, want non-Final at the returned %d cycles", last, res.Cycles)
	}
}

func TestWriteTraceCancellation(t *testing.T) {
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ses.WriteTrace(ctx, discard{}, "gzip", 5_000_000, false); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestSweepCancellationNoLeaks proves an in-flight sweep aborts via the
// context without leaking worker goroutines (issue acceptance criterion).
func TestSweepCancellationNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	base := ses.Config()
	points := resim.SweepGrid("rb", base, []int{4, 8, 12, 16, 24, 32, 48, 64}, func(c *resim.Config, v int) {
		c.RBSize = v
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ses.Sweep(ctx, "gzip", 1<<62, points)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}

	// Workers must all have drained; give the runtime a moment to reap.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: before %d, after %d (leak)", before, runtime.NumGoroutine())
}

func TestMulticoreCancellation(t *testing.T) {
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ses.Multicore(ctx, resim.MulticoreOptions{
		Workloads: []string{"gzip", "vpr"}, Limit: 5_000_000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestObserverDelivery(t *testing.T) {
	var (
		calls     int
		lastCycle uint64
		finals    int
	)
	ses, err := resim.New(resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
		calls++
		if p.Cycles < lastCycle {
			t.Errorf("cycles went backwards: %d after %d", p.Cycles, lastCycle)
		}
		lastCycle = p.Cycles
		if p.Final {
			finals++
		}
	}), 1024))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.RunWorkload(context.Background(), "gzip", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Errorf("observer called %d times over %d cycles (interval 1024)", calls, res.Cycles)
	}
	if finals != 1 {
		t.Errorf("final callbacks = %d, want exactly 1", finals)
	}
	if lastCycle != res.Cycles {
		t.Errorf("final callback at cycle %d, result has %d", lastCycle, res.Cycles)
	}
}

func TestSweepObserverPerPoint(t *testing.T) {
	var calls, finals atomic.Int64
	ses, err := resim.New(resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
		calls.Add(1)
		if p.Final {
			finals.Add(1)
		}
		if p.Core < 0 || p.Core > 2 {
			t.Errorf("point index %d out of range", p.Core)
		}
	}), 0))
	if err != nil {
		t.Fatal(err)
	}
	points := resim.SweepGrid("rb", ses.Config(), []int{8, 16, 32}, func(c *resim.Config, v int) {
		c.RBSize = v
	})
	if _, err := ses.Sweep(context.Background(), "gzip", 8_000, points); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("observer calls = %d, want one per point", got)
	}
	if got := finals.Load(); got != 1 {
		t.Errorf("final callbacks = %d, want exactly 1", got)
	}
}

func TestMulticoreHonorsMaxCycles(t *testing.T) {
	ses, err := resim.New(resim.WithMaxCycles(50))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Multicore(context.Background(), resim.MulticoreOptions{
		Workloads: []string{"gzip", "vpr"}, Limit: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 50 {
		t.Errorf("cluster ran %d lockstep cycles, want the WithMaxCycles bound of 50", res.Cycles)
	}
}

func TestMulticoreObserverAggregates(t *testing.T) {
	var finals int
	var lastCommitted uint64
	ses, err := resim.New(resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
		if p.Core != -1 {
			t.Errorf("cluster progress Core = %d, want -1", p.Core)
		}
		lastCommitted = p.Committed
		if p.Final {
			finals++
		}
	}), 2048))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Multicore(context.Background(), resim.MulticoreOptions{
		Workloads: []string{"gzip", "vpr"}, Limit: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var committed uint64
	for _, pc := range res.PerCore {
		committed += pc.Committed
	}
	if finals != 1 {
		t.Errorf("final callbacks = %d, want exactly 1", finals)
	}
	if lastCommitted != committed {
		t.Errorf("final aggregate committed %d, cluster total %d", lastCommitted, committed)
	}
}

// TestSessionTraceRoundTrip drives the WriteTrace -> RunTrace pair through
// the Session and checks it matches the on-the-fly run, mirroring the
// legacy free-function test at the Session layer.
func TestSessionTraceRoundTrip(t *testing.T) {
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "vpr.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.WriteTrace(ctx, f, "vpr", 15_000, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	offline, err := ses.RunTrace(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	online, err := ses.RunWorkload(ctx, "vpr", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	if offline.Counters != online.Counters {
		t.Error("offline trace run differs from on-the-fly run")
	}
}

// --- checkpoint / resume ----------------------------------------------------

// TestCheckpointKillResumeByteIdentical is the issue's acceptance
// criterion at the public API: a run checkpointed at an interval boundary
// and killed (via ctx, as a process death would) resumes through ResumeFrom
// to final statistics byte-identical to the uninterrupted run — rendered
// registry report included.
func TestCheckpointKillResumeByteIdentical(t *testing.T) {
	const workload = "gzip"
	const instrs = 120_000

	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ses.RunWorkload(context.Background(), workload, instrs)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointed run, killed right after the third checkpoint lands.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var latest *resim.Checkpoint
	var captured int
	killed, err := resim.New(resim.WithCheckpointEvery(8192, func(cp *resim.Checkpoint) error {
		mu.Lock()
		defer mu.Unlock()
		latest = cp
		if captured++; captured == 3 {
			cancel()
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := killed.RunWorkload(ctx, workload, instrs); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	mu.Lock()
	cp := latest
	mu.Unlock()
	if cp == nil {
		t.Fatal("sink never received a checkpoint")
	}
	if cp.Cycles() != 3*8192 {
		t.Fatalf("latest checkpoint at cycle %d, want the 3rd 8192 boundary", cp.Cycles())
	}

	resumed, err := resim.New(resim.ResumeFrom(cp))
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.RunWorkload(context.Background(), workload, instrs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != want.Counters || got.ICache != want.ICache || got.DCache != want.DCache {
		t.Errorf("resumed run counters differ from the uninterrupted run")
	}
	if a, b := got.Registry().String(), want.Registry().String(); a != b {
		t.Errorf("resumed statistics report not byte-identical:\n--- resumed\n%s\n--- uninterrupted\n%s", a, b)
	}

	// Resuming against a different input must fail loudly, never produce a
	// plausible wrong report: different workload, and different budget.
	if _, err := resumed.RunWorkload(context.Background(), "parser", instrs); err == nil {
		t.Error("gzip checkpoint resumed against the parser workload")
	}
	if _, err := resumed.RunWorkload(context.Background(), workload, instrs/2); err == nil {
		t.Error("checkpoint resumed against a different instruction budget")
	}
}

// TestCheckpointResumeTraceFile: the same property over a trace container
// (RunTrace re-attaches the file reader at the checkpointed record).
func TestCheckpointResumeTraceFile(t *testing.T) {
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "parser.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.WriteTrace(ctx, f, "parser", 60_000, true); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := ses.RunTrace(ctx, path)
	if err != nil {
		t.Fatal(err)
	}

	kctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ckptPath := filepath.Join(t.TempDir(), "parser.ckpt")
	killed, err := resim.New(resim.WithCheckpointEvery(16384, func(cp *resim.Checkpoint) error {
		if err := resim.SaveCheckpoint(ckptPath, cp); err != nil {
			return err
		}
		cancel() // die after the first saved checkpoint
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := killed.RunTrace(kctx, path); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run err = %v, want context.Canceled", err)
	}
	cp, err := resim.LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycles() == 0 {
		t.Fatal("checkpoint at cycle 0")
	}
	resumed, err := resim.New(resim.ResumeFrom(cp))
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.RunTrace(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != want.Counters {
		t.Error("trace-file resume differs from the uninterrupted run")
	}
	if a, b := got.Registry().String(), want.Registry().String(); a != b {
		t.Error("trace-file resume statistics report not byte-identical")
	}
}

// TestSessionSweepWithCheckpointingMatchesPlain: a checkpointing session's
// sweeps (whose loopback workers capture and ship per-point checkpoints to
// the scheduler) return results identical to a plain session's — capture is
// invisible in the output. The actual worker-death resume is exercised at
// the scheduler level in internal/sweepd.
func TestSessionSweepWithCheckpointingMatchesPlain(t *testing.T) {
	ses, err := resim.New(resim.WithCheckpointEvery(4096, func(*resim.Checkpoint) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	points := resim.SweepGrid("rb", plain.Config(), []int{8, 16}, func(c *resim.Config, v int) {
		c.RBSize = v
	})
	ctx := context.Background()
	want, err := plain.Sweep(ctx, "gzip", 60_000, points)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ses.Sweep(ctx, "gzip", 60_000, points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, want[i].Err, got[i].Err)
		}
		if want[i].Res.Counters != got[i].Res.Counters {
			t.Errorf("point %s: checkpointing sweep differs from plain sweep", want[i].Name)
		}
	}
}

// --- trace cache integration -----------------------------------------------

// TestRunWorkloadCacheGeneratesOnce: repeated runs through one session share
// a single generated trace and produce identical results.
func TestRunWorkloadCacheGeneratesOnce(t *testing.T) {
	priv := resim.NewTraceCache(resim.TraceCacheConfig{})
	ses, err := resim.New(resim.WithTraceCache(priv))
	if err != nil {
		t.Fatal(err)
	}
	a, err := ses.RunWorkload(context.Background(), "gzip", 9000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ses.RunWorkload(context.Background(), "gzip", 9000)
	if err != nil {
		t.Fatal(err)
	}
	if priv.Generations() != 1 {
		t.Errorf("generations = %d, want 1", priv.Generations())
	}
	if a.Counters != b.Counters {
		t.Error("repeated cached runs disagree")
	}
}

// TestRunWorkloadCachedMatchesUncached: the cache must be invisible in the
// result — WithTraceCache(nil) disables it and every counter still matches.
func TestRunWorkloadCachedMatchesUncached(t *testing.T) {
	cached, err := resim.New(resim.WithTraceCache(resim.NewTraceCache(resim.TraceCacheConfig{})))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := resim.New(resim.WithTraceCache(nil))
	if err != nil {
		t.Fatal(err)
	}
	a, err := cached.RunWorkload(context.Background(), "parser", 9000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.RunWorkload(context.Background(), "parser", 9000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Error("cached run differs from uncached run")
	}
}

// TestMulticoreHomogeneousSharesTrace: a homogeneous cluster generates its
// workload trace once and each core replays a private snapshot.
func TestMulticoreHomogeneousSharesTrace(t *testing.T) {
	priv := resim.NewTraceCache(resim.TraceCacheConfig{})
	ses, err := resim.New(resim.WithTraceCache(priv))
	if err != nil {
		t.Fatal(err)
	}
	opts := resim.MulticoreOptions{Workloads: []string{"gzip", "gzip", "gzip"}, Limit: 6000}
	res, err := ses.Multicore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if priv.Generations() != 1 {
		t.Errorf("generations = %d, want 1 for a homogeneous cluster", priv.Generations())
	}
	if len(res.PerCore) != 3 {
		t.Fatalf("cores = %d", len(res.PerCore))
	}
	// Identical cores over identical snapshots behave identically.
	for i := 1; i < len(res.PerCore); i++ {
		if res.PerCore[i].Counters != res.PerCore[0].Counters {
			t.Errorf("core %d diverged from core 0", i)
		}
	}
	// And the cached cluster matches an uncached one.
	plain, err := resim.New(resim.WithTraceCache(nil))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := plain.Multicore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.PerCore {
		if res.PerCore[i].Counters != res2.PerCore[i].Counters {
			t.Errorf("core %d: cached cluster differs from uncached", i)
		}
	}
}

// TestWriteTraceCachedBytesIdentical: trace files written through the cache
// are byte-for-byte what the streaming path writes, and writing the same
// workload in both container formats costs one generation.
func TestWriteTraceCachedBytesIdentical(t *testing.T) {
	priv := resim.NewTraceCache(resim.TraceCacheConfig{})
	cached, err := resim.New(resim.WithTraceCache(priv))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := resim.New(resim.WithTraceCache(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, compress := range []bool{false, true} {
		var a, b bytes.Buffer
		sa, err := cached.WriteTrace(ctx, &a, "vpr", 5000, compress)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := plain.WriteTrace(ctx, &b, "vpr", 5000, compress)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("compress=%t: cached container differs from streamed", compress)
		}
		if sa != sb {
			t.Errorf("compress=%t: stats differ: %+v vs %+v", compress, sa, sb)
		}
	}
	if priv.Generations() != 1 {
		t.Errorf("generations = %d, want 1 across raw+compressed writes", priv.Generations())
	}
}

// TestSweepThroughSessionSharesCache: the session's cache carries across
// separate Sweep calls, and a sweep over engine-only knobs generates once.
func TestSweepThroughSessionSharesCache(t *testing.T) {
	priv := resim.NewTraceCache(resim.TraceCacheConfig{})
	ses, err := resim.New(resim.WithTraceCache(priv))
	if err != nil {
		t.Fatal(err)
	}
	pts := resim.SweepGrid("lsq", resim.DefaultConfig(), []int{4, 8, 16, 32}, func(c *resim.Config, v int) {
		c.LSQSize = v
	})
	ctx := context.Background()
	res, err := ses.Sweep(ctx, "gzip", 7000, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if priv.Generations() != 1 {
		t.Errorf("generations = %d, want 1 after first sweep", priv.Generations())
	}
	if _, err := ses.Sweep(ctx, "gzip", 7000, pts[:2]); err != nil {
		t.Fatal(err)
	}
	if priv.Generations() != 1 {
		t.Errorf("generations = %d, want still 1 after second sweep", priv.Generations())
	}
}

// TestDeprecatedWrappersShareProcessCache: old free-function callers and
// Session callers meet in the process-wide cache, so mixed code never
// double-generates. The wrapper run may itself hit an entry cached by an
// earlier test (or a previous -count iteration), so the assertion is that
// the session run adds no generation beyond the wrapper's, not an absolute
// count.
func TestDeprecatedWrappersShareProcessCache(t *testing.T) {
	const limit = 7321
	before := resim.SharedTraceCache().Generations()
	if _, err := resim.SimulateWorkload(resim.DefaultConfig(), "gzip", limit); err != nil {
		t.Fatal(err)
	}
	afterWrapper := resim.SharedTraceCache().Generations()
	if d := afterWrapper - before; d > 1 {
		t.Errorf("wrapper run generated %d traces, want at most 1", d)
	}
	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.RunWorkload(context.Background(), "gzip", limit); err != nil {
		t.Fatal(err)
	}
	if got := resim.SharedTraceCache().Generations(); got != afterWrapper {
		t.Errorf("session run after the wrapper added %d generations, want 0 (shared cache)", got-afterWrapper)
	}
}
