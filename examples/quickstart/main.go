// Quickstart: simulate one SPECINT-like workload on the paper's 4-wide
// configuration and report the simulated IPC and the modeled FPGA
// simulation throughput on both evaluation devices.
package main

import (
	"fmt"
	"log"

	resim "repro"
)

func main() {
	cfg := resim.DefaultConfig() // 4-wide, RB 16, LSQ 8, 2-level BP, perfect memory

	res, err := resim.SimulateWorkload(cfg, "gzip", 200_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gzip: %d instructions in %d cycles -> IPC %.3f\n",
		res.Committed, res.Cycles, res.IPC())
	fmt.Printf("branch mispredictions: %d (%.1f%% of branches), wrong-path overhead %.1f%%\n",
		res.MispredResolved, 100*res.MispredictRate(), 100*res.WrongPathOverhead())
	fmt.Printf("internal pipeline: %v, major cycle = %d minor cycles\n",
		cfg.Organization, cfg.MinorCyclesPerMajor())
	for _, dev := range []resim.Device{resim.Virtex4, resim.Virtex5} {
		fmt.Printf("modeled simulation speed on %-10s %6.2f MIPS\n",
			dev.Name+":", resim.SimulationMIPS(dev, cfg, res))
	}
}
