// Quickstart: simulate one SPECINT-like workload on the paper's 4-wide
// configuration and report the simulated IPC and the modeled FPGA
// simulation throughput on both evaluation devices. A Session built with
// resim.New is the entry point; an Observer reports progress mid-run.
package main

import (
	"context"
	"fmt"
	"log"

	resim "repro"
)

func main() {
	// The paper's machine: 4-wide, RB 16, LSQ 8, 2-level BP, perfect memory.
	ses, err := resim.New(
		resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
			if !p.Final {
				fmt.Printf("  ... %d cycles, IPC so far %.3f\n", p.Cycles, p.IPC)
			}
		}), 50_000),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := ses.RunWorkload(context.Background(), "gzip", 200_000)
	if err != nil {
		log.Fatal(err)
	}

	cfg := ses.Config()
	fmt.Printf("gzip: %d instructions in %d cycles -> IPC %.3f\n",
		res.Committed, res.Cycles, res.IPC())
	fmt.Printf("branch mispredictions: %d (%.1f%% of branches), wrong-path overhead %.1f%%\n",
		res.MispredResolved, 100*res.MispredictRate(), 100*res.WrongPathOverhead())
	fmt.Printf("internal pipeline: %v, major cycle = %d minor cycles\n",
		cfg.Organization, cfg.MinorCyclesPerMajor())
	for _, dev := range []resim.Device{resim.Virtex4, resim.Virtex5} {
		fmt.Printf("modeled simulation speed on %-10s %6.2f MIPS\n",
			dev.Name+":", resim.SimulationMIPS(dev, cfg, res))
	}
}
