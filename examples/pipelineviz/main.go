// Pipelineviz renders the paper's Figures 2-4: the three internal
// minor-cycle pipeline organizations of §IV, plus the major-cycle latency
// formulas K(N) for a range of widths. Each organization is composed into
// a validated Session first, demonstrating that the option builder rejects
// illegal combinations (e.g. Optimized with too many memory ports).
package main

import (
	"fmt"
	"log"

	resim "repro"
)

func main() {
	orgs := []resim.Organization{resim.OrgSimple, resim.OrgImproved, resim.OrgOptimized}
	for _, org := range orgs {
		// New validates the organization/width/port combination once.
		ses, err := resim.New(resim.WithOrganization(org), resim.WithWidth(4))
		if err != nil {
			log.Fatal(err)
		}
		out, err := resim.RenderPipeline(org, ses.Config().Width)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	fmt.Println("Major-cycle latency K (minor cycles) by organization and width:")
	fmt.Printf("%-12s", "N")
	for n := 1; n <= 8; n++ {
		fmt.Printf("%5d", n)
	}
	fmt.Println()
	for _, org := range orgs {
		fmt.Printf("%-12v", org)
		for n := 1; n <= 8; n++ {
			fmt.Printf("%5d", org.MinorCyclesPerMajor(n))
		}
		fmt.Println()
	}
	fmt.Println("\nsimple = 2N+3, improved = N+4, optimized = N+3 (<= N-1 memory ports).")
	fmt.Println("All three simulate identical processor timing; they differ only in ReSim's own clock cycles per simulated cycle.")

	// The Optimized organization's port restriction is a real constraint the
	// Session enforces at construction:
	if _, err := resim.New(
		resim.WithOrganization(resim.OrgOptimized),
		resim.WithWidth(2),
		resim.WithMemoryPorts(2, 1), // width 2 allows at most N-1 = 1 read port
	); err != nil {
		fmt.Printf("\nSession validation: %v\n", err)
	}
}
