// Pipelineviz renders the paper's Figures 2-4: the three internal
// minor-cycle pipeline organizations of §IV, plus the major-cycle latency
// formulas K(N) for a range of widths.
package main

import (
	"fmt"
	"log"

	resim "repro"
)

func main() {
	for _, org := range []resim.Organization{resim.OrgSimple, resim.OrgImproved, resim.OrgOptimized} {
		out, err := resim.RenderPipeline(org, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	fmt.Println("Major-cycle latency K (minor cycles) by organization and width:")
	fmt.Printf("%-12s", "N")
	for n := 1; n <= 8; n++ {
		fmt.Printf("%5d", n)
	}
	fmt.Println()
	for _, org := range []resim.Organization{resim.OrgSimple, resim.OrgImproved, resim.OrgOptimized} {
		fmt.Printf("%-12v", org)
		for n := 1; n <= 8; n++ {
			fmt.Printf("%5d", org.MinorCyclesPerMajor(n))
		}
		fmt.Println()
	}
	fmt.Println("\nsimple = 2N+3, improved = N+4, optimized = N+3 (<= N-1 memory ports).")
	fmt.Println("All three simulate identical processor timing; they differ only in ReSim's own clock cycles per simulated cycle.")
}
