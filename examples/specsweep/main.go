// Specsweep is the paper's off-line bulk-simulation use case: "traces that
// are prepared off-line (for example for bulk simulations with varying
// design parameters)". It demonstrates both halves of that flow through
// the Session API:
//
//  1. prepare a trace file once with Session.WriteTrace and re-simulate it
//     under different configurations (the trace never changes, only the
//     machine), and
//  2. run a parallel design-space sweep across host cores with
//     Session.Sweep, printing an IPC surface over RB size x issue width.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	resim "repro"
)

func main() {
	const instrs = 100_000
	ctx := context.Background()

	// --- Phase 1: one trace, many machines -------------------------------
	dir, err := os.MkdirTemp("", "resim-sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "gzip.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := resim.New() // the generator's predictor shapes the trace
	if err != nil {
		log.Fatal(err)
	}
	st, err := gen.WriteTrace(ctx, f, "gzip", instrs, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared gzip trace: %d records, %.1f bits/instr\n", st.Records, st.BitsPerInstr)

	for _, penalty := range []int{1, 3, 8} {
		ses, err := resim.New(resim.WithPenalties(3, penalty))
		if err != nil {
			log.Fatal(err)
		}
		res, err := ses.RunTrace(ctx, path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  same trace, mispredict penalty %d -> IPC %.3f\n", penalty, res.IPC())
	}

	// --- Phase 2: parallel design-space sweep -----------------------------
	rbSizes := []int{8, 16, 32, 64}
	widths := []int{2, 4, 8}
	fmt.Printf("\nparallel sweep on parser: IPC by (width x RB), %d instructions/point\n", instrs)
	fmt.Print("        ")
	for _, rb := range rbSizes {
		fmt.Printf("RB=%-5d", rb)
	}
	fmt.Println()
	for _, width := range widths {
		ses, err := resim.New(
			resim.WithWidth(width),
			resim.WithIFQSize(width),                  // keep fetch bandwidth in step with issue width
			resim.WithOrganization(resim.OrgImproved), // legal at every width/port combo
			resim.WithMemoryPorts(2, 1),
		)
		if err != nil {
			log.Fatal(err)
		}
		points := resim.SweepGrid("rb", ses.Config(), rbSizes, func(c *resim.Config, v int) {
			c.RBSize = v
		})
		results, err := ses.Sweep(ctx, "parser", instrs, points)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%-3d  ", width)
		for _, r := range results {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			fmt.Printf("%7.3f", r.Res.IPC())
		}
		fmt.Println()
	}
	fmt.Println("\nLarger windows and wider issue raise IPC until another bottleneck binds;")
	fmt.Println("on the FPGA each width has its own K = N+3/N+4, so MIPS = f/K x IPC trades width against clock rate.")

	// --- Phase 3: the shared trace cache ----------------------------------
	// Every sweep above generated its traces through the process-wide trace
	// cache, so re-running a sweep replays memoized traces instead of
	// re-simulating the workload (each RB size has its own trace key here,
	// because the wrong-path block length is RB+IFQ).
	before := resim.SharedTraceCache().Stats()
	ses, err := resim.New(resim.WithWidth(4), resim.WithIFQSize(4),
		resim.WithOrganization(resim.OrgImproved), resim.WithMemoryPorts(2, 1))
	if err != nil {
		log.Fatal(err)
	}
	points := resim.SweepGrid("rb", ses.Config(), rbSizes, func(c *resim.Config, v int) {
		c.RBSize = v
	})
	if _, err := ses.Sweep(ctx, "parser", instrs, points); err != nil {
		log.Fatal(err)
	}
	after := resim.SharedTraceCache().Stats()
	fmt.Printf("\nre-running the N=4 sweep: %d new trace generations, %d cached replays (%d traces resident, %.1f MB)\n",
		after.Generations-before.Generations, after.Hits-before.Hits,
		after.Entries, float64(after.Resident)/1e6)
}
