// Distsweep demonstrates the sharded sweep service end to end inside one
// process: it starts a coordinator and two workers on a real localhost TCP
// listener (exactly what `resimd -role coordinator` / `-role worker` run as
// separate processes), submits the specsweep-style parser design-space
// sweep through Session.SweepRemote, and shows the service's two key
// properties:
//
//   - results stream back in point order with coordinator-side progress
//     (completed/total) forwarded to the session observer, and
//   - points are sharded by trace key, so each worker host generates every
//     distinct trace exactly once no matter how many points replay it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	resim "repro"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

func main() {
	const instrs = 50_000
	ctx := context.Background()

	// --- the cluster: one coordinator, two workers ------------------------
	coord := sweepd.NewCoordinator()
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// Each worker has its own trace cache — the stand-in for a remote
	// host's memory. Real deployments run these as `resimd -role worker`.
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	caches := make([]*tracecache.Cache, 2)
	for i := range caches {
		caches[i] = tracecache.New(tracecache.Config{})
		go func(i int) {
			sweepd.Work(wctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
				Name:   fmt.Sprintf("w%d", i+1),
				Traces: caches[i],
			})
		}(i)
	}
	for coord.WorkerCount() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("cluster up: coordinator %s, %d workers\n\n", addr, coord.WorkerCount())

	// --- the sweep: RB sizes on parser, via the service -------------------
	// WithCoordinator makes Sweep transparently remote; SweepRemote does the
	// same for one call. The observer receives coordinator-side progress.
	ses, err := resim.New(
		resim.WithCoordinator(addr),
		resim.WithOrganization(resim.OrgImproved),
		resim.WithMemoryPorts(2, 1),
		resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
			fmt.Printf("  progress %d/%d: point %d -> IPC %.3f\n", p.Done, p.Total, p.Core, p.IPC)
		}), 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	rbSizes := []int{8, 16, 32, 64}
	points := resim.SweepGrid("rb", ses.Config(), rbSizes, func(c *resim.Config, v int) {
		c.RBSize = v
	})
	results, err := ses.Sweep(ctx, "parser", instrs, points)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nparser IPC by RB size (%d instructions/point, 2 remote workers):\n", instrs)
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  %-8s IPC %.3f\n", r.Name, r.Res.IPC())
	}

	// --- the sharding invariant ------------------------------------------
	// Each RB size derives its own trace key (the wrong-path block length is
	// RB+IFQ), so 4 points = 4 key-groups, split across 2 hosts; every host
	// generated only its own groups' traces.
	var gens uint64
	for i, c := range caches {
		st := c.Stats()
		fmt.Printf("\nworker w%d: %d trace generations, %d cached replays", i+1, st.Generations, st.Hits)
		gens += st.Generations
	}
	fmt.Printf("\ntotal generations %d for %d distinct trace keys — one per key across the cluster\n",
		gens, len(rbSizes))
}
