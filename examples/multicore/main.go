// Multicore explores the paper's future-work direction: "it is possible to
// fit multiple ReSim instances in a single FPGA and simulate multi-core
// systems" (§VI). It checks how many engine instances the area model fits
// on each device, then runs a lockstep cluster — one ReSim instance per
// workload — twice through Session.Multicore: with private memory systems,
// and with the cores' private L1 data caches backed by one shared L2, so
// the workloads interfere in the shared tags like a real CMP.
package main

import (
	"context"
	"fmt"
	"log"

	resim "repro"
)

func main() {
	ses, err := resim.New() // every core uses the paper's 4-wide machine
	if err != nil {
		log.Fatal(err)
	}
	cfg := ses.Config()
	ctx := context.Background()

	// How many instances fit? (Perfect-memory core: ~10K V4 slices.)
	breakdown, err := resim.EstimateArea(cfg)
	if err != nil {
		log.Fatal(err)
	}
	total := breakdown.Total()
	fmt.Printf("one ReSim instance: %d slices, %d BRAMs (Virtex-4 units)\n", total.Slices, total.BRAMs)
	for _, dev := range []resim.Device{resim.Virtex4, resim.Virtex5} {
		_, n := breakdown.FitsIn(dev)
		fmt.Printf("  %-12s fits %d instance(s)\n", dev.Name, n)
	}

	const instrs = 100_000
	workloads := []string{"gzip", "bzip2", "parser", "vpr"}

	// Lockstep cluster with private memory systems.
	fmt.Printf("\nlockstep cluster, private memories: %v\n", workloads)
	res, err := ses.Multicore(ctx, resim.MulticoreOptions{
		Workloads: workloads, Limit: instrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range res.Names {
		fmt.Printf("  core %-8s IPC %.3f over %d cycles\n",
			name, res.PerCore[i].IPC(), res.PerCore[i].Cycles)
	}
	fmt.Printf("  aggregate IPC %.2f -> %.1f MIPS on %s / %.1f MIPS on %s\n",
		res.AggregateIPC(),
		resim.AggregateMIPS(resim.Virtex4, cfg, res), resim.Virtex4.Name,
		resim.AggregateMIPS(resim.Virtex5, cfg, res), resim.Virtex5.Name)

	// The same cluster with private 8K L1s over one shared 64K L2.
	fmt.Printf("\nlockstep cluster, shared L2 (8K private L1s, 64K shared L2):\n")
	shared, err := ses.Multicore(ctx, resim.MulticoreOptions{
		Workloads: workloads,
		Limit:     instrs,
		L1: &resim.CacheConfig{Name: "dl1", SizeBytes: 8 << 10, Assoc: 2,
			BlockBytes: 64, HitLatency: 1, MissLatency: 20},
		SharedL2: &resim.CacheConfig{Name: "l2", SizeBytes: 64 << 10, Assoc: 8,
			BlockBytes: 64, HitLatency: 6, MissLatency: 40},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range shared.Names {
		fmt.Printf("  core %-8s IPC %.3f (dl1 miss rate %.3f)\n",
			name, shared.PerCore[i].IPC(), shared.PerCore[i].DCache.MissRate())
	}
	fmt.Printf("  aggregate IPC %.2f (vs %.2f with private memories)\n",
		shared.AggregateIPC(), res.AggregateIPC())
	fmt.Println("\nshared-L2 interference lowers per-core IPC; the lockstep cluster's")
	fmt.Println("throughput is the sum of per-core rates at the common f/K clock.")
}
