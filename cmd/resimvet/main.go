// Resimvet is ReSim's static-analysis driver: a multichecker for the
// custom analyzers under internal/lint that enforce the repository's
// cross-layer invariants (deterministic result paths, exhaustive
// checkpoint capture, serializable wire types, literal metric names) at
// compile time. It is stdlib-only — the module deliberately has no
// dependencies — and runs two ways:
//
// Standalone, over go list patterns:
//
//	go run ./cmd/resimvet ./...
//	go run ./cmd/resimvet -json ./...
//
// As a go vet tool, speaking vet's unitchecker protocol (-V=full, -flags,
// a JSON *.cfg per package, facts file emission):
//
//	go build -o /tmp/resimvet ./cmd/resimvet
//	go vet -vettool=/tmp/resimvet ./...
//
// The exit status is 0 when the tree is clean, 2 when any analyzer
// reported a diagnostic, and 1 on loading or internal errors. Diagnostics
// print as file:line:col: [analyzer] message; -json emits the
// package→analyzer→diagnostics map instead (and always exits 0, like go
// vet -json).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (package → analyzer → diagnostics)")
	vFlag := fs.String("V", "", "print version and exit (-V=full, for the go vet tool protocol)")
	printFlags := fs.Bool("flags", false, "print the tool's flags as JSON (go vet tool protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] package...\n       %s unit.cfg  (go vet tool protocol)\n\nAnalyzers:\n", progname, progname)
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	fs.Parse(os.Args[1:])

	if *vFlag != "" {
		return printVersion(progname, *vFlag)
	}
	if *printFlags {
		// The only flag go vet may forward is -json.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		data, _ := json.Marshal([]jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON output"}})
		fmt.Println(string(data))
		return 0
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0], *jsonOut)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return standalone(args, *jsonOut)
}

// firstLine returns the one-sentence summary of an analyzer doc.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// printVersion implements the -V=full handshake go vet uses to fingerprint
// the tool for build caching: name, a version token and a content hash.
func printVersion(progname, v string) int {
	if v != "full" {
		fmt.Fprintf(os.Stderr, "%s: unsupported flag value: -V=%s\n", progname, v)
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return 0
}

// diagRecord is one rendered diagnostic.
type diagRecord struct {
	Posn     string `json:"posn"`
	Analyzer string `json:"-"`
	Message  string `json:"message"`
}

// runAnalyzers applies the whole suite to one package and returns its
// diagnostics sorted by position.
func runAnalyzers(fset *token.FileSet, pkg *load.Package) ([]diagRecord, error) {
	var out []diagRecord
	for _, a := range lint.Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, diagRecord{
				Posn:     fset.Position(d.Pos).String(),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Posn < out[j].Posn })
	return out, nil
}

// standalone loads packages by pattern and checks them all.
func standalone(patterns []string, jsonOut bool) int {
	pkgs, fset, err := load.Packages(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resimvet: %v\n", err)
		return 1
	}
	found := false
	jsonTree := map[string]map[string][]diagRecord{}
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(fset, pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resimvet: %v\n", err)
			return 1
		}
		if len(diags) == 0 {
			continue
		}
		found = true
		if jsonOut {
			byAnalyzer := map[string][]diagRecord{}
			for _, d := range diags {
				byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
			}
			jsonTree[pkg.ImportPath] = byAnalyzer
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Posn, d.Analyzer, d.Message)
		}
	}
	if jsonOut {
		data, _ := json.MarshalIndent(jsonTree, "", "\t")
		fmt.Println(string(data))
		return 0
	}
	if found {
		return 2
	}
	return 0
}

// vetConfig is the per-package JSON configuration go vet hands the tool
// (cmd/go's vetConfig, fields the driver consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package under the go vet tool protocol: type-check
// the unit from the config's file lists and export-data map, run the
// suite, and always leave an (empty — the suite uses no facts) vetx
// output so go vet's caching stays coherent.
func vetUnit(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resimvet: %v\n", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "resimvet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "resimvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "resimvet: %v\n", err)
		return 1
	}
	gc := load.NewGCImporter(fset, func(path string) (string, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	})
	res := &load.Resolver{ImportMap: cfg.ImportMap, Fallback: gc}
	typesPkg, info, err := load.Check(fset, cfg.ImportPath, files, res)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "resimvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := runAnalyzers(fset, &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Files:      files,
		Types:      typesPkg,
		TypesInfo:  info,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "resimvet: %v\n", err)
		return 1
	}
	if jsonOut {
		byAnalyzer := map[string][]diagRecord{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
		}
		data, _ := json.MarshalIndent(map[string]map[string][]diagRecord{cfg.ImportPath: byAnalyzer}, "", "\t")
		fmt.Println(string(data))
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Posn, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
