// Command resim-gen produces a custom ReSim version description from user
// parameters — the configuration tool the paper's conclusions propose. The
// output is a VHDL-like structural document plus the modeled resource
// budget and device fit report, derived from the exact configuration the
// timing engine simulates.
//
// Usage:
//
//	resim-gen -width 4 -rb 32 -lsq 16
//	resim-gen -width 2 -perfect-bp -caches -device virtex5
package main

import (
	"flag"
	"fmt"
	"os"

	resim "repro"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/gen"
)

func main() {
	var (
		width     = flag.Int("width", 4, "processor width N")
		rb        = flag.Int("rb", 16, "reorder buffer entries")
		lsq       = flag.Int("lsq", 8, "load/store queue entries")
		ifq       = flag.Int("ifq", 4, "instruction fetch queue entries")
		perfectBP = flag.Bool("perfect-bp", false, "perfect branch prediction")
		caches    = flag.Bool("caches", false, "32K 8-way L1 I/D caches")
		orgName   = flag.String("org", "optimized", "internal pipeline: simple, improved, optimized")
		device    = flag.String("device", "virtex4", "target device: virtex4, virtex5")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Width = *width
	cfg.RBSize = *rb
	cfg.LSQSize = *lsq
	cfg.IFQSize = *ifq
	cfg.PerfectBP = *perfectBP
	switch *orgName {
	case "simple":
		cfg.Organization = resim.OrgSimple
	case "improved":
		cfg.Organization = resim.OrgImproved
	case "optimized":
		cfg.Organization = resim.OrgOptimized
	default:
		fatal(fmt.Errorf("unknown organization %q", *orgName))
	}
	if max := cfg.Organization.MaxMemPorts(cfg.Width); cfg.MemReadPorts > max {
		cfg.MemReadPorts = max
	}
	if *caches {
		il1, err := resim.NewL1Cache(resim.CacheConfig{Name: "il1", SizeBytes: 32 << 10,
			Assoc: 8, BlockBytes: 64, HitLatency: 1, MissLatency: 20})
		if err != nil {
			fatal(err)
		}
		dl1, err := resim.NewL1Cache(resim.CacheConfig{Name: "dl1", SizeBytes: 32 << 10,
			Assoc: 8, BlockBytes: 64, HitLatency: 1, MissLatency: 20})
		if err != nil {
			fatal(err)
		}
		cfg.ICache, cfg.DCache = il1, dl1
	}

	var dev fpga.Device
	switch *device {
	case "virtex4":
		dev = fpga.Virtex4
	case "virtex5":
		dev = fpga.Virtex5
	default:
		fatal(fmt.Errorf("unknown device %q", *device))
	}

	out, err := gen.Generate(cfg, dev)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resim-gen:", err)
	os.Exit(1)
}
