// Command resim-gen produces a custom ReSim version description from user
// parameters — the configuration tool the paper's conclusions propose. The
// output is a VHDL-like structural document plus the modeled resource
// budget and device fit report, derived from the exact configuration the
// timing engine simulates (composed and validated through the resim
// Session options).
//
// Usage:
//
//	resim-gen -width 4 -rb 32 -lsq 16
//	resim-gen -width 2 -perfect-bp -caches -device virtex5
package main

import (
	"flag"
	"fmt"
	"os"

	resim "repro"
	"repro/internal/fpga"
	"repro/internal/gen"
)

func main() {
	var (
		width     = flag.Int("width", 4, "processor width N")
		rb        = flag.Int("rb", 16, "reorder buffer entries")
		lsq       = flag.Int("lsq", 8, "load/store queue entries")
		ifq       = flag.Int("ifq", 4, "instruction fetch queue entries")
		perfectBP = flag.Bool("perfect-bp", false, "perfect branch prediction")
		caches    = flag.Bool("caches", false, "32K 8-way L1 I/D caches")
		orgName   = flag.String("org", "optimized", "internal pipeline: simple, improved, optimized")
		device    = flag.String("device", "virtex4", "target device: virtex4, virtex5")
	)
	flag.Parse()

	org, err := resim.OrganizationByName(*orgName)
	if err != nil {
		fatal(err)
	}

	opts := []resim.Option{
		resim.WithWidth(*width),
		resim.WithRBSize(*rb),
		resim.WithLSQSize(*lsq),
		resim.WithIFQSize(*ifq),
		resim.WithOrganization(org),
	}
	if *perfectBP {
		opts = append(opts, resim.WithPerfectBP())
	}
	if *caches {
		opts = append(opts, resim.WithL1Caches(resim.CacheConfig{
			SizeBytes: 32 << 10, Assoc: 8, BlockBytes: 64,
			HitLatency: 1, MissLatency: 20,
		}))
	}
	ses, err := resim.New(opts...)
	if err != nil {
		fatal(err)
	}

	var dev fpga.Device
	switch *device {
	case "virtex4":
		dev = fpga.Virtex4
	case "virtex5":
		dev = fpga.Virtex5
	default:
		fatal(fmt.Errorf("unknown device %q", *device))
	}

	out, err := gen.Generate(ses.Config(), dev)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resim-gen:", err)
	os.Exit(1)
}
