// Command resim-bench regenerates the paper's evaluation artifacts: every
// table (1-4) and figure (2-4), plus the §IV serial-vs-parallel ablation.
// EXPERIMENTS.md is produced from this tool's -all output.
//
// Usage:
//
//	resim-bench -all
//	resim-bench -table 1 -n 500000
//	resim-bench -figure 4
//	resim-bench -ablation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/tables"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var (
		all        = flag.Bool("all", false, "regenerate every table and figure")
		table      = flag.Int("table", 0, "regenerate one table (1-4)")
		figure     = flag.Int("figure", 0, "render one figure (2-4)")
		ablation   = flag.Bool("ablation", false, "run the serial-vs-parallel ablation")
		compress   = flag.Bool("compression", false, "run the trace-compression extension")
		bpSweep    = flag.String("bpred-sweep", "", "run the predictor sweep on this workload")
		wpSweep    = flag.String("wrongpath-sweep", "", "run the wrong-path sizing sweep on this workload")
		n          = flag.Uint64("n", 200_000, "instructions per benchmark point")
		width      = flag.Int("width", 4, "figure/ablation processor width")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	)
	flag.Parse()
	opts := tables.Options{Instructions: *n}

	if !*all && *table == 0 && *figure == 0 && !*ablation && !*compress &&
		*bpSweep == "" && *wpSweep == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Profiling hooks: perf work on the engine should start from a
	// profile of the real artifact workloads, not a guess. check() runs
	// stopProfiles before exiting, so a failing run — a prime profiling
	// target — still leaves readable profiles.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		addCleanup(func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "resim-bench:", err)
			}
		})
	}
	if *memprofile != "" {
		path := *memprofile
		addCleanup(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resim-bench:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "resim-bench:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "resim-bench:", err)
			}
		})
	}
	defer runCleanups()

	run := func(t int) {
		switch t {
		case 1:
			rows, err := tables.Table1(ctx, opts)
			check(err)
			fmt.Println(tables.RenderTable1(rows))
		case 2:
			rows, err := tables.Table2(ctx, opts)
			check(err)
			fmt.Println(tables.RenderTable2(rows))
		case 3:
			rows, err := tables.Table3(ctx, opts)
			check(err)
			fmt.Println(tables.RenderTable3(rows))
		case 4:
			b, err := tables.Table4()
			check(err)
			fmt.Println(tables.RenderTable4(b))
		default:
			check(fmt.Errorf("no table %d (have 1-4)", t))
		}
	}

	if *all {
		for t := 1; t <= 4; t++ {
			run(t)
		}
		for f := 2; f <= 4; f++ {
			out, err := tables.RenderFigure(f, *width)
			check(err)
			fmt.Println(out)
		}
		fmt.Println(tables.Ablation(*width))
		rows, err := tables.TraceCompression(ctx, opts)
		check(err)
		fmt.Println(tables.RenderCompression(rows))
		return
	}
	if *table != 0 {
		run(*table)
	}
	if *figure != 0 {
		out, err := tables.RenderFigure(*figure, *width)
		check(err)
		fmt.Println(out)
	}
	if *ablation {
		fmt.Println(tables.Ablation(*width))
	}
	if *compress {
		rows, err := tables.TraceCompression(ctx, opts)
		check(err)
		fmt.Println(tables.RenderCompression(rows))
	}
	if *bpSweep != "" {
		rows, err := tables.PredictorSweep(ctx, opts, *bpSweep)
		check(err)
		fmt.Println(tables.RenderPredictorSweep(rows, *bpSweep))
	}
	if *wpSweep != "" {
		rows, err := tables.WrongPathSweep(ctx, opts, *wpSweep)
		check(err)
		fmt.Println(tables.RenderWrongPathSweep(rows, *wpSweep, 20))
	}
}

// cleanups flush profiling output; they run once, on normal return or on
// the error exit path (os.Exit skips defers).
var cleanups []func()

func addCleanup(fn func()) { cleanups = append(cleanups, fn) }

func runCleanups() {
	for _, fn := range cleanups {
		fn()
	}
	cleanups = nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "resim-bench:", err)
		runCleanups()
		os.Exit(1)
	}
}
