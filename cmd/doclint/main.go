// Doclint is the repository's documentation linter, run as a CI job. It
// enforces two things with the standard library alone:
//
//   - Every relative markdown link in the repository's *.md files (README,
//     docs/, design notes) points at a file or directory that exists, so
//     renames and deletions cannot silently strand the documentation.
//   - Every exported identifier in the checked Go packages (by default the
//     root resim package, internal/jobd and internal/obs) carries a doc
//     comment, so the public surface stays godoc-complete.
//   - The metric inventory tables in docs/OBSERVABILITY.md match the
//     families the code actually registers (name, type and labels, both
//     directions), so the documented scrape surface cannot go stale.
//   - The analyzer inventory table in docs/STATIC_ANALYSIS.md matches the
//     analyzers cmd/resimvet registers (name and one-line invariant, both
//     directions), so the documented lint surface cannot go stale either.
//
// Usage:
//
//	doclint [-md DIR] [-metrics FILE] [-analyzers FILE] [pkgdir ...]
//
// -md sets the tree walked for markdown files (default "."). -metrics
// names the metric inventory document (default "docs/OBSERVABILITY.md";
// "" skips the check) and -analyzers the analyzer inventory document
// (default "docs/STATIC_ANALYSIS.md"; "" skips). Each pkgdir argument
// names one Go package directory to check for doc comments; with no
// arguments, ".", "./internal/faults", "./internal/jobd",
// "./internal/obs" and the internal/lint tree are checked. Findings are printed one per line as
// file:line: message, and the exit status is non-zero if there were any.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/jobd"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

func main() {
	mdRoot := flag.String("md", ".", "directory tree to scan for markdown files")
	metricsDoc := flag.String("metrics", "docs/OBSERVABILITY.md", "metric inventory document to diff against registered families (\"\" skips)")
	analyzersDoc := flag.String("analyzers", "docs/STATIC_ANALYSIS.md", "analyzer inventory document to diff against the resimvet registry (\"\" skips)")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{
			".", "./internal/faults", "./internal/jobd", "./internal/obs",
			"./internal/lint", "./internal/lint/analysis", "./internal/lint/analysistest",
			"./internal/lint/ckptcomplete", "./internal/lint/determinism",
			"./internal/lint/lintutil", "./internal/lint/load",
			"./internal/lint/metriclint", "./internal/lint/wiresafe",
		}
	}

	var problems []string
	problems = append(problems, lintMarkdownTree(*mdRoot)...)
	for _, dir := range pkgs {
		problems = append(problems, lintPackageDocs(dir)...)
	}
	if *metricsDoc != "" {
		problems = append(problems, lintMetricsInventory(*metricsDoc)...)
	}
	if *analyzersDoc != "" {
		problems = append(problems, lintAnalyzerInventory(*analyzersDoc)...)
	}

	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// registeredFamilies rebuilds the service's full metric inventory the way
// resimd wires it: every layer registers on one registry.
func registeredFamilies() []obs.FamilyInfo {
	reg := obs.NewRegistry()
	jobd.RegisterMetrics(reg)
	sweepd.RegisterCoordinatorMetrics(reg)
	tracecache.RegisterMetrics(reg, tracecache.New(tracecache.Config{}))
	return reg.Families()
}

// inventoryRow matches one metric table row in the inventory document:
// | `name` | type | labels | description |
var inventoryRow = regexp.MustCompile("^\\|\\s*`([a-zA-Z_:][a-zA-Z0-9_:]*)`\\s*\\|([^|]*)\\|([^|]*)\\|")

// lintMetricsInventory diffs the inventory document's metric tables
// against the families the code registers, in both directions: a family
// missing from the document, a documented metric no code registers, and
// type or label-set mismatches are all findings.
func lintMetricsInventory(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	type row struct {
		line        int
		typ, labels string
	}
	documented := map[string]row{}
	var problems []string
	for i, line := range strings.Split(string(data), "\n") {
		m := inventoryRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, typ := m[1], strings.TrimSpace(m[2])
		// Only rows whose second cell is a metric type are inventory rows
		// (other tables also backtick their first cell — span events, API
		// routes). A typo'd type skips the row here and is then reported
		// as a registered-but-undocumented family.
		if typ != "counter" && typ != "gauge" && typ != "histogram" {
			continue
		}
		if _, dup := documented[name]; dup {
			problems = append(problems, fmt.Sprintf("%s:%d: metric %s documented twice", path, i+1, name))
			continue
		}
		labels := strings.TrimSpace(m[3])
		if labels == "—" || labels == "-" {
			labels = ""
		}
		documented[name] = row{line: i + 1, typ: typ, labels: labels}
	}

	fams := registeredFamilies()
	seen := map[string]bool{}
	for _, f := range fams {
		seen[f.Name] = true
		doc, ok := documented[f.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: registered metric %s (%s) is not in the inventory", path, f.Name, f.Type))
			continue
		}
		if doc.typ != f.Type {
			problems = append(problems, fmt.Sprintf("%s:%d: metric %s documented as %s, registered as %s", path, doc.line, f.Name, doc.typ, f.Type))
		}
		if want := strings.Join(f.Labels, ", "); doc.labels != want {
			problems = append(problems, fmt.Sprintf("%s:%d: metric %s documented with labels %q, registered with %q", path, doc.line, f.Name, doc.labels, want))
		}
	}
	var stale []string
	for name := range documented {
		if !seen[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		problems = append(problems, fmt.Sprintf("%s:%d: documented metric %s is registered by no code", path, documented[name].line, name))
	}
	return problems
}

// analyzerRow matches one analyzer table row in the static-analysis
// document: | `name` | invariant |
var analyzerRow = regexp.MustCompile("^\\|\\s*`([a-z][a-z0-9]*)`\\s*\\|(.*)\\|\\s*$")

// lintAnalyzerInventory diffs the "Analyzer inventory" table in the
// static-analysis document against the analyzers cmd/resimvet registers
// through lint.Analyzers(), in both directions: an unregistered
// documented analyzer, an undocumented registered one, and a stale
// one-line invariant summary are all findings.
func lintAnalyzerInventory(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	type row struct {
		line    int
		summary string
	}
	documented := map[string]row{}
	var problems []string
	inSection := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.TrimSpace(strings.TrimPrefix(line, "## ")) == "Analyzer inventory"
			continue
		}
		if !inSection {
			continue
		}
		m := analyzerRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if _, dup := documented[name]; dup {
			problems = append(problems, fmt.Sprintf("%s:%d: analyzer %s documented twice", path, i+1, name))
			continue
		}
		documented[name] = row{line: i + 1, summary: strings.TrimSpace(m[2])}
	}

	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		seen[a.Name] = true
		summary, _, _ := strings.Cut(a.Doc, "\n")
		doc, ok := documented[a.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: registered analyzer %s is not in the inventory", path, a.Name))
			continue
		}
		if doc.summary != summary {
			problems = append(problems, fmt.Sprintf("%s:%d: analyzer %s documented as %q, registered as %q", path, doc.line, a.Name, doc.summary, summary))
		}
	}
	var stale []string
	for name := range documented {
		if !seen[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		problems = append(problems, fmt.Sprintf("%s:%d: documented analyzer %s is registered by no code", path, documented[name].line, name))
	}
	return problems
}

// lintMarkdownTree checks every *.md file under root for dead relative
// links.
func lintMarkdownTree(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			problems = append(problems, lintMarkdownFile(path)...)
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("%s: walk: %v", root, err))
	}
	return problems
}

// linkPattern matches inline markdown links and images,
// [text](target) / ![alt](target), capturing the target. Optional
// quoted titles after the target are tolerated.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// lintMarkdownFile reports relative links in one markdown file whose
// targets do not exist on disk. Fenced code blocks are skipped — they
// quote syntax, they don't link.
func lintMarkdownFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var problems []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipLinkTarget(target) {
				continue
			}
			// Drop a #fragment; what must exist is the file.
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s:%d: dead link %q (no %s)", path, i+1, m[1], resolved))
			}
		}
	}
	return problems
}

// skipLinkTarget reports whether a link target is out of scope for the
// existence check: absolute URLs, mail links, and pure in-page anchors.
func skipLinkTarget(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// lintPackageDocs reports exported identifiers in the package at dir
// that lack doc comments: functions and methods with exported receivers,
// types, and const/var groups (a group comment covers its members, a
// per-spec comment covers one).
func lintPackageDocs(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Doc == nil && d.Name.IsExported() && exportedRecv(d) {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					problems = append(problems, lintGenDecl(fset, d, report)...)
				}
			}
		}
	}
	return problems
}

// lintGenDecl checks one type/const/var declaration. The declaration's
// own doc comment satisfies every spec inside it.
func lintGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(token.Pos, string, string)) []string {
	if d.Doc != nil {
		return nil
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Doc == nil && s.Comment == nil && s.Name.IsExported() {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
	return nil
}

// exportedRecv reports whether a function is package-level or a method
// on an exported type; methods of unexported types are not godoc
// surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "(Recv).Name" for diagnostics.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	writeRecvType(&b, d.Recv.List[0].Type)
	b.WriteString(").")
	b.WriteString(d.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, t ast.Expr) {
	switch x := t.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeRecvType(b, x.X)
	case *ast.Ident:
		b.WriteString(x.Name)
	default:
		b.WriteString("?")
	}
}
