// Resimd runs one node of the sharded sweep service: the coordinator that
// accepts sweep jobs and shards their design points across workers by
// trace key, or a worker that simulates assigned key-groups and streams
// per-point results back.
//
// A minimal two-worker cluster on one machine:
//
//	resimd -role coordinator -listen :9090
//	resimd -role worker -coordinator localhost:9090 -name w1
//	resimd -role worker -coordinator localhost:9090 -name w2
//
// Clients submit sweeps with resim.Session.SweepRemote (or a session built
// with resim.WithCoordinator); see the README's "Distributed sweeps"
// section and examples/distsweep.
//
// With -http the coordinator additionally runs the multi-tenant job
// platform (internal/jobd): a persistent job queue with an HTTP/JSON front
// door, per-tenant fair scheduling over the registered workers, and
// admission control. -journal makes submissions durable across restarts,
// -tenants configures bearer-token authentication:
//
//	resimd -role coordinator -listen :9090 -http :8080 \
//	    -journal /var/lib/resimd/jobs -tenants tenants.json
//
// Clients then use `resim jobs` or resim.Session.SubmitRemote; see the
// README's "Job service" section.
//
// Both roles maintain a trace cache. A coordinator whose -spill directory
// already holds delta-compressed trace containers (for example written by
// earlier local sweeps with the same spill directory) ships them to
// workers with the assignment, so a warm coordinator saves every worker
// the generation cost.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/jobd"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

func main() {
	var (
		role        = flag.String("role", "", "node role: coordinator or worker (required)")
		listen      = flag.String("listen", ":9090", "coordinator: address to listen on")
		coordinator = flag.String("coordinator", "", "worker: coordinator address to register with (required for workers)")
		name        = flag.String("name", "", "worker: name shown in coordinator logs (default: hostname)")
		parallelism = flag.Int("parallelism", 0, "worker: concurrent engines per assigned key-group (0 = GOMAXPROCS)")
		spill       = flag.String("spill", "", "trace-cache spill directory (evicted traces persist as containers)")
		cacheMB     = flag.Int64("cache-mb", 0, "trace-cache resident budget in MiB (0 = default 1 GiB)")
		retry       = flag.Duration("retry", 5*time.Second, "worker: reconnect delay after losing the coordinator (0 = exit instead)")
		ckptEvery   = flag.Uint64("checkpoint-every", 0, "worker: cycles between engine checkpoints shipped to the coordinator (0 = 65536); requeued groups resume from them")
		ckptBudget  = flag.Int64("checkpoint-budget-mb", 0, "coordinator: cap on retained resume-checkpoint MiB per job (0 = 64 MiB, -1 = unlimited); excess drops least-recently-updated points' resume state")
		verbose     = flag.Bool("v", false, "log per-point worker progress")

		httpAddr    = flag.String("http", "", "coordinator: also serve the multi-tenant job platform's HTTP API on this address (e.g. :8080)")
		journalDir  = flag.String("journal", "", "coordinator: job-platform journal directory; submissions, results and checkpoints persist here and are recovered on restart")
		tenantsFile = flag.String("tenants", "", "coordinator: JSON tenants file ({\"tenants\":[{\"name\":...,\"token\":...,\"weight\":...,\"max_in_flight\":...}]}); empty disables authentication")
		maxQueue    = flag.Int("max-queue", 0, "coordinator: max queued jobs before submissions get 429 (0 = 64)")
		tenantInFl  = flag.Int("tenant-inflight", 0, "coordinator: default per-tenant queued+running job cap (0 = 8)")
		slotsPerWkr = flag.Int("worker-slots", 0, "coordinator: concurrent groups per worker for the job platform (0 = 1)")
		telEvery    = flag.Uint64("telemetry-every", 0, "coordinator: cycles between live interval snapshots jobs stream to telemetry watchers (0 = 65536)")
		telRing     = flag.Int("telemetry-ring", 0, "coordinator: per-job telemetry snapshot ring capacity for late/slow watchers (0 = 256)")
	)
	flag.Parse()

	cacheCfg := tracecache.Config{SpillDir: *spill}
	if *cacheMB > 0 {
		cacheCfg.MaxResidentBytes = *cacheMB << 20
	}
	traces := tracecache.New(cacheCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	budget := *ckptBudget
	if budget > 0 {
		budget <<= 20
	}
	switch *role {
	case "coordinator":
		runCoordinator(ctx, *listen, traces, budget, jobPlatformConfig{
			httpAddr:       *httpAddr,
			journalDir:     *journalDir,
			tenantsFile:    *tenantsFile,
			maxQueue:       *maxQueue,
			tenantInFl:     *tenantInFl,
			slotsPerWorker: *slotsPerWkr,
			telemetryEvery: *telEvery,
			telemetryRing:  *telRing,
		})
	case "worker":
		if *coordinator == "" {
			log.Fatal("resimd: -role worker requires -coordinator host:port")
		}
		runWorker(ctx, *coordinator, sweepd.WorkerOptions{
			Name:            workerName(*name),
			Parallelism:     *parallelism,
			Traces:          traces,
			Observer:        progressLogger(*verbose),
			CheckpointEvery: *ckptEvery,
			Logf:            log.Printf,
		}, *retry)
	default:
		fmt.Fprintln(os.Stderr, "resimd: -role must be coordinator or worker")
		flag.Usage()
		os.Exit(2)
	}
}

// jobPlatformConfig carries the coordinator's optional job-platform flags.
type jobPlatformConfig struct {
	httpAddr       string
	journalDir     string
	tenantsFile    string
	maxQueue       int
	tenantInFl     int
	slotsPerWorker int
	telemetryEvery uint64
	telemetryRing  int
}

func runCoordinator(ctx context.Context, listen string, traces *tracecache.Cache, ckptBudget int64, jp jobPlatformConfig) {
	coord := sweepd.NewCoordinator()
	coord.Traces = traces
	coord.Logf = log.Printf
	coord.CheckpointBudget = ckptBudget

	// The job platform, when enabled, schedules over the coordinator's
	// registered worker pool; the hook re-dispatches queued groups the
	// moment capacity appears, and must be set before Serve.
	var platform *jobd.Platform
	var httpSrv *http.Server
	if jp.httpAddr != "" {
		var tenants []jobd.Tenant
		if jp.tenantsFile != "" {
			var err error
			tenants, err = jobd.LoadTenants(jp.tenantsFile)
			if err != nil {
				log.Fatalf("resimd: %v", err)
			}
		} else {
			log.Printf("resimd: WARNING: job API authentication disabled (no -tenants file); all requests map to tenant %q", "default")
		}
		var err error
		platform, err = jobd.New(jobd.Options{
			Pool:              coord,
			JournalDir:        jp.journalDir,
			Tenants:           tenants,
			MaxQueue:          jp.maxQueue,
			TenantMaxInFlight: jp.tenantInFl,
			SlotsPerWorker:    jp.slotsPerWorker,
			CheckpointBudget:  ckptBudget,
			TelemetryEvery:    jp.telemetryEvery,
			TelemetryRing:     jp.telemetryRing,
			Logf:              log.Printf,
		})
		if err != nil {
			log.Fatalf("resimd: %v", err)
		}
		coord.OnWorkersChanged = platform.Kick
		httpSrv = &http.Server{Addr: jp.httpAddr, Handler: platform.Handler()}
		go func() {
			log.Printf("resimd: job API listening on %s", jp.httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("resimd: job API: %v", err)
			}
		}()
	}

	go func() {
		<-ctx.Done()
		coord.Close()
	}()
	addr, err := coord.Start(listen)
	if err != nil {
		log.Fatalf("resimd: %v", err)
	}
	log.Printf("resimd: coordinator listening on %s", addr)
	<-ctx.Done()
	// Shutdown order: stop accepting HTTP work, then the platform (journals
	// keep in-flight jobs recoverable), then the coordinator fabric.
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(shutCtx) //nolint:errcheck
		cancel()
	}
	if platform != nil {
		platform.Close()
	}
	coord.Close()
	log.Printf("resimd: coordinator stopped")
}

func runWorker(ctx context.Context, addr string, opts sweepd.WorkerOptions, retry time.Duration) {
	for {
		err := sweepd.Work(ctx, addr, opts)
		if ctx.Err() != nil {
			log.Printf("resimd: worker stopped")
			return
		}
		if retry <= 0 {
			log.Fatalf("resimd: worker: %v", err)
		}
		log.Printf("resimd: worker lost coordinator (%v), retrying in %s", err, retry)
		select {
		case <-time.After(retry):
		case <-ctx.Done():
			log.Printf("resimd: worker stopped")
			return
		}
	}
}

func workerName(flagName string) string {
	if flagName != "" {
		return flagName
	}
	host, err := os.Hostname()
	if err != nil {
		return fmt.Sprintf("pid%d", os.Getpid())
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// progressLogger reports the worker's own per-point progress through the
// standard Observer hook.
func progressLogger(verbose bool) core.Observer {
	if !verbose {
		return nil
	}
	return core.ObserverFunc(func(p core.Progress) {
		log.Printf("resimd: point %d done: %d cycles, %d committed, IPC %.3f (%d/%d in group)",
			p.Core, p.Cycles, p.Committed, p.IPC, p.Done, p.Total)
	})
}
