// Resimd runs one node of the sharded sweep service: the coordinator that
// accepts sweep jobs and shards their design points across workers by
// trace key, or a worker that simulates assigned key-groups and streams
// per-point results back.
//
// A minimal two-worker cluster on one machine:
//
//	resimd -role coordinator -listen :9090
//	resimd -role worker -coordinator localhost:9090 -name w1
//	resimd -role worker -coordinator localhost:9090 -name w2
//
// Clients submit sweeps with resim.Session.SweepRemote (or a session built
// with resim.WithCoordinator); see the README's "Distributed sweeps"
// section and examples/distsweep.
//
// Both roles maintain a trace cache. A coordinator whose -spill directory
// already holds delta-compressed trace containers (for example written by
// earlier local sweeps with the same spill directory) ships them to
// workers with the assignment, so a warm coordinator saves every worker
// the generation cost.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

func main() {
	var (
		role        = flag.String("role", "", "node role: coordinator or worker (required)")
		listen      = flag.String("listen", ":9090", "coordinator: address to listen on")
		coordinator = flag.String("coordinator", "", "worker: coordinator address to register with (required for workers)")
		name        = flag.String("name", "", "worker: name shown in coordinator logs (default: hostname)")
		parallelism = flag.Int("parallelism", 0, "worker: concurrent engines per assigned key-group (0 = GOMAXPROCS)")
		spill       = flag.String("spill", "", "trace-cache spill directory (evicted traces persist as containers)")
		cacheMB     = flag.Int64("cache-mb", 0, "trace-cache resident budget in MiB (0 = default 1 GiB)")
		retry       = flag.Duration("retry", 5*time.Second, "worker: reconnect delay after losing the coordinator (0 = exit instead)")
		ckptEvery   = flag.Uint64("checkpoint-every", 0, "worker: cycles between engine checkpoints shipped to the coordinator (0 = 65536); requeued groups resume from them")
		ckptBudget  = flag.Int64("checkpoint-budget-mb", 0, "coordinator: cap on retained resume-checkpoint MiB per job (0 = 64 MiB, -1 = unlimited); excess drops least-recently-updated points' resume state")
		verbose     = flag.Bool("v", false, "log per-point worker progress")
	)
	flag.Parse()

	cacheCfg := tracecache.Config{SpillDir: *spill}
	if *cacheMB > 0 {
		cacheCfg.MaxResidentBytes = *cacheMB << 20
	}
	traces := tracecache.New(cacheCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	budget := *ckptBudget
	if budget > 0 {
		budget <<= 20
	}
	switch *role {
	case "coordinator":
		runCoordinator(ctx, *listen, traces, budget)
	case "worker":
		if *coordinator == "" {
			log.Fatal("resimd: -role worker requires -coordinator host:port")
		}
		runWorker(ctx, *coordinator, sweepd.WorkerOptions{
			Name:            workerName(*name),
			Parallelism:     *parallelism,
			Traces:          traces,
			Observer:        progressLogger(*verbose),
			CheckpointEvery: *ckptEvery,
			Logf:            log.Printf,
		}, *retry)
	default:
		fmt.Fprintln(os.Stderr, "resimd: -role must be coordinator or worker")
		flag.Usage()
		os.Exit(2)
	}
}

func runCoordinator(ctx context.Context, listen string, traces *tracecache.Cache, ckptBudget int64) {
	coord := sweepd.NewCoordinator()
	coord.Traces = traces
	coord.Logf = log.Printf
	coord.CheckpointBudget = ckptBudget
	go func() {
		<-ctx.Done()
		coord.Close()
	}()
	addr, err := coord.Start(listen)
	if err != nil {
		log.Fatalf("resimd: %v", err)
	}
	log.Printf("resimd: coordinator listening on %s", addr)
	<-ctx.Done()
	coord.Close()
	log.Printf("resimd: coordinator stopped")
}

func runWorker(ctx context.Context, addr string, opts sweepd.WorkerOptions, retry time.Duration) {
	for {
		err := sweepd.Work(ctx, addr, opts)
		if ctx.Err() != nil {
			log.Printf("resimd: worker stopped")
			return
		}
		if retry <= 0 {
			log.Fatalf("resimd: worker: %v", err)
		}
		log.Printf("resimd: worker lost coordinator (%v), retrying in %s", err, retry)
		select {
		case <-time.After(retry):
		case <-ctx.Done():
			log.Printf("resimd: worker stopped")
			return
		}
	}
}

func workerName(flagName string) string {
	if flagName != "" {
		return flagName
	}
	host, err := os.Hostname()
	if err != nil {
		return fmt.Sprintf("pid%d", os.Getpid())
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// progressLogger reports the worker's own per-point progress through the
// standard Observer hook.
func progressLogger(verbose bool) core.Observer {
	if !verbose {
		return nil
	}
	return core.ObserverFunc(func(p core.Progress) {
		log.Printf("resimd: point %d done: %d cycles, %d committed, IPC %.3f (%d/%d in group)",
			p.Core, p.Cycles, p.Committed, p.IPC, p.Done, p.Total)
	})
}
