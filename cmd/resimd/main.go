// Resimd runs one node of the sharded sweep service: the coordinator that
// accepts sweep jobs and shards their design points across workers by
// trace key, or a worker that simulates assigned key-groups and streams
// per-point results back.
//
// A minimal two-worker cluster on one machine:
//
//	resimd -role coordinator -listen :9090
//	resimd -role worker -coordinator localhost:9090 -name w1
//	resimd -role worker -coordinator localhost:9090 -name w2
//
// Clients submit sweeps with resim.Session.SweepRemote (or a session built
// with resim.WithCoordinator); see the README's "Distributed sweeps"
// section and examples/distsweep.
//
// With -http the coordinator additionally runs the multi-tenant job
// platform (internal/jobd): a persistent job queue with an HTTP/JSON front
// door, per-tenant fair scheduling over the registered workers, and
// admission control. -journal makes submissions durable across restarts,
// -tenants configures bearer-token authentication:
//
//	resimd -role coordinator -listen :9090 -http :8080 \
//	    -journal /var/lib/resimd/jobs -tenants tenants.json
//
// Clients then use `resim jobs` or resim.Session.SubmitRemote; see the
// README's "Job service" section.
//
// Both roles maintain a trace cache. A coordinator whose -spill directory
// already holds delta-compressed trace containers (for example written by
// earlier local sweeps with the same spill directory) ships them to
// workers with the assignment, so a warm coordinator saves every worker
// the generation cost.
//
// Observability (docs/OBSERVABILITY.md): service logs go to stderr via
// log/slog (-log-format text|json), a coordinator's /metrics exposes the
// coordinator, trace-cache and job-platform families from one shared
// registry, and -pprof mounts net/http/pprof under /debug/pprof/ on the
// job API server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/jobd"
	"repro/internal/obs"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

func main() {
	var (
		role        = flag.String("role", "", "node role: coordinator or worker (required)")
		listen      = flag.String("listen", ":9090", "coordinator: address to listen on")
		coordinator = flag.String("coordinator", "", "worker: coordinator address to register with (required for workers)")
		name        = flag.String("name", "", "worker: name shown in coordinator logs (default: hostname)")
		parallelism = flag.Int("parallelism", 0, "worker: concurrent engines per assigned key-group (0 = GOMAXPROCS)")
		spill       = flag.String("spill", "", "trace-cache spill directory (evicted traces persist as containers)")
		cacheMB     = flag.Int64("cache-mb", 0, "trace-cache resident budget in MiB (0 = default 1 GiB)")
		retry       = flag.Duration("retry", 5*time.Second, "worker: reconnect delay after losing the coordinator (0 = exit instead)")
		ckptEvery   = flag.Uint64("checkpoint-every", 0, "worker: cycles between engine checkpoints shipped to the coordinator (0 = 65536); requeued groups resume from them")
		ckptBudget  = flag.Int64("checkpoint-budget-mb", 0, "coordinator: cap on retained resume-checkpoint MiB per job (0 = 64 MiB, -1 = unlimited); excess drops least-recently-updated points' resume state")
		verbose     = flag.Bool("v", false, "log per-point worker progress")
		logFormat   = flag.String("log-format", "text", "service log format: text or json")
		pprofOn     = flag.Bool("pprof", false, "coordinator: mount net/http/pprof under /debug/pprof/ on the job API server (requires -http)")

		httpAddr    = flag.String("http", "", "coordinator: also serve the multi-tenant job platform's HTTP API on this address (e.g. :8080)")
		journalDir  = flag.String("journal", "", "coordinator: job-platform journal directory; submissions, results and checkpoints persist here and are recovered on restart")
		journalSync = flag.Bool("journal-sync", false, "coordinator: fsync every journal write (specs, results, checkpoints) so acknowledged state survives power loss, not just process crashes; costs one fsync per result")
		tenantsFile = flag.String("tenants", "", "coordinator: JSON tenants file ({\"tenants\":[{\"name\":...,\"token\":...,\"weight\":...,\"max_in_flight\":...}]}); empty disables authentication")
		maxQueue    = flag.Int("max-queue", 0, "coordinator: max queued jobs before submissions get 429 (0 = 64)")
		tenantInFl  = flag.Int("tenant-inflight", 0, "coordinator: default per-tenant queued+running job cap (0 = 8)")
		slotsPerWkr = flag.Int("worker-slots", 0, "coordinator: concurrent groups per worker for the job platform (0 = 1)")
		telEvery    = flag.Uint64("telemetry-every", 0, "coordinator: cycles between live interval snapshots jobs stream to telemetry watchers (0 = 65536)")
		telRing     = flag.Int("telemetry-ring", 0, "coordinator: per-job telemetry snapshot ring capacity for late/slow watchers (0 = 256)")
	)
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		log.Fatalf("resimd: %v", err)
	}

	cacheCfg := tracecache.Config{SpillDir: *spill}
	if *cacheMB > 0 {
		cacheCfg.MaxResidentBytes = *cacheMB << 20
	}
	traces := tracecache.New(cacheCfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	budget := *ckptBudget
	if budget > 0 {
		budget <<= 20
	}
	switch *role {
	case "coordinator":
		runCoordinator(ctx, *listen, traces, budget, lg, jobPlatformConfig{
			httpAddr:       *httpAddr,
			journalDir:     *journalDir,
			journalSync:    *journalSync,
			tenantsFile:    *tenantsFile,
			maxQueue:       *maxQueue,
			tenantInFl:     *tenantInFl,
			slotsPerWorker: *slotsPerWkr,
			telemetryEvery: *telEvery,
			telemetryRing:  *telRing,
			pprof:          *pprofOn,
		})
	case "worker":
		if *coordinator == "" {
			log.Fatal("resimd: -role worker requires -coordinator host:port")
		}
		runWorker(ctx, *coordinator, sweepd.WorkerOptions{
			Name:            workerName(*name),
			Parallelism:     *parallelism,
			Traces:          traces,
			Observer:        progressLogger(*verbose, lg),
			CheckpointEvery: *ckptEvery,
			Logf:            lg.Component("worker").Logf,
		}, *retry, lg.Component("resimd"))
	default:
		fmt.Fprintln(os.Stderr, "resimd: -role must be coordinator or worker")
		flag.Usage()
		os.Exit(2)
	}
}

// jobPlatformConfig carries the coordinator's optional job-platform flags.
type jobPlatformConfig struct {
	httpAddr       string
	journalDir     string
	journalSync    bool
	tenantsFile    string
	maxQueue       int
	tenantInFl     int
	slotsPerWorker int
	telemetryEvery uint64
	telemetryRing  int
	pprof          bool
}

// jobAPIHandler assembles the job API server's handler: the platform's
// routes, plus net/http/pprof under /debug/pprof/ when enabled.
func jobAPIHandler(platform *jobd.Platform, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", platform.Handler())
	if pprofOn {
		obs.RegisterPprof(mux)
	}
	return mux
}

// loopbackAddr reports whether a listen address can only be reached from
// this host: an explicit loopback IP or "localhost". The common ":8080"
// and "0.0.0.0:8080" forms bind every interface and return false.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

func runCoordinator(ctx context.Context, listen string, traces *tracecache.Cache, ckptBudget int64, lg *obs.Logger, jp jobPlatformConfig) {
	rlg := lg.Component("resimd")
	// One registry for the whole node: coordinator fabric, trace cache and
	// job platform all register their families here, and the platform's
	// /metrics renders them in one scrape.
	registry := obs.NewRegistry()
	coord := sweepd.NewCoordinator()
	coord.Traces = traces
	coord.Logf = lg.Component("sweepd").Logf
	coord.CheckpointBudget = ckptBudget
	coord.Metrics = sweepd.RegisterCoordinatorMetrics(registry)
	tracecache.RegisterMetrics(registry, traces)

	// The job platform, when enabled, schedules over the coordinator's
	// registered worker pool; the hook re-dispatches queued groups the
	// moment capacity appears, and must be set before Serve.
	var platform *jobd.Platform
	var httpSrv *http.Server
	if jp.httpAddr != "" {
		var tenants []jobd.Tenant
		if jp.tenantsFile != "" {
			var err error
			tenants, err = jobd.LoadTenants(jp.tenantsFile)
			if err != nil {
				log.Fatalf("resimd: %v", err)
			}
		} else {
			rlg.Warn("resimd.auth_disabled", "detail",
				"no -tenants file; all job API requests map to tenant \"default\"")
		}
		var err error
		platform, err = jobd.New(jobd.Options{
			Pool:              coord,
			JournalDir:        jp.journalDir,
			JournalSync:       jp.journalSync,
			Tenants:           tenants,
			MaxQueue:          jp.maxQueue,
			TenantMaxInFlight: jp.tenantInFl,
			SlotsPerWorker:    jp.slotsPerWorker,
			CheckpointBudget:  ckptBudget,
			TelemetryEvery:    jp.telemetryEvery,
			TelemetryRing:     jp.telemetryRing,
			Logf:              lg.Component("jobd").Logf,
			Metrics:           registry,
		})
		if err != nil {
			log.Fatalf("resimd: %v", err)
		}
		coord.OnWorkersChanged = platform.Kick
		if jp.pprof && !loopbackAddr(jp.httpAddr) {
			rlg.Warn("resimd.pprof_exposed", "addr", jp.httpAddr, "detail",
				"profiling endpoints reachable beyond loopback; bind -http to 127.0.0.1 or front with auth")
		}
		httpSrv = &http.Server{Addr: jp.httpAddr, Handler: jobAPIHandler(platform, jp.pprof)}
		go func() {
			rlg.Event("resimd.job_api_listening", "addr", jp.httpAddr, "pprof", jp.pprof)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("resimd: job API: %v", err)
			}
		}()
	} else if jp.pprof {
		rlg.Warn("resimd.pprof_ignored", "detail", "-pprof requires -http")
	}

	go func() {
		<-ctx.Done()
		coord.Close()
	}()
	addr, err := coord.Start(listen)
	if err != nil {
		log.Fatalf("resimd: %v", err)
	}
	rlg.Event("resimd.coordinator_listening", "addr", addr)
	<-ctx.Done()
	// Shutdown order: stop accepting HTTP work, then the platform (journals
	// keep in-flight jobs recoverable), then the coordinator fabric.
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(shutCtx) //nolint:errcheck
		cancel()
	}
	if platform != nil {
		platform.Close()
	}
	coord.Close()
	rlg.Event("resimd.coordinator_stopped")
}

func runWorker(ctx context.Context, addr string, opts sweepd.WorkerOptions, retry time.Duration, rlg *obs.Logger) {
	// -retry sets the backoff floor; reconnect attempts then double with
	// ±25% jitter up to 16× so a fleet of workers orphaned by the same
	// coordinator crash doesn't hammer it in lockstep when it returns. A
	// connection that lived long enough to finish the handshake resets the
	// backoff — the outage is over, the next loss starts fresh.
	bo := faults.NewBackoff(retry, 16*retry, int64(os.Getpid()))
	for {
		start := time.Now()
		err := sweepd.Work(ctx, addr, opts)
		if ctx.Err() != nil {
			rlg.Event("resimd.worker_stopped")
			return
		}
		if retry <= 0 {
			log.Fatalf("resimd: worker: %v", err)
		}
		if time.Since(start) > 16*retry {
			bo.Reset()
		}
		delay := bo.Next()
		rlg.Warn("resimd.worker_lost_coordinator", "err", err,
			"attempt", bo.Attempt(), "retry_in", delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			rlg.Event("resimd.worker_stopped")
			return
		}
	}
}

func workerName(flagName string) string {
	if flagName != "" {
		return flagName
	}
	host, err := os.Hostname()
	if err != nil {
		return fmt.Sprintf("pid%d", os.Getpid())
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// progressLogger reports the worker's own per-point progress through the
// standard Observer hook.
func progressLogger(verbose bool, lg *obs.Logger) core.Observer {
	if !verbose {
		return nil
	}
	wlg := lg.Component("worker")
	return core.ObserverFunc(func(p core.Progress) {
		wlg.Event("resimd.point_done", "core", p.Core, "cycles", p.Cycles,
			"committed", p.Committed, "ipc", fmt.Sprintf("%.3f", p.IPC),
			"done", p.Done, "total", p.Total)
	})
}
