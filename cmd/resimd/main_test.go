package main

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/jobd"
	"repro/internal/obs"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

func testPlatform(t *testing.T) *jobd.Platform {
	t.Helper()
	p, err := jobd.New(jobd.Options{Pool: jobd.StaticPool{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestJobAPIHandlerPprof: -pprof mounts the profiling endpoints on the job
// API mux; without it they 404 while the platform routes still serve.
func TestJobAPIHandlerPprof(t *testing.T) {
	for _, tc := range []struct {
		pprof bool
		want  int
	}{
		{pprof: true, want: http.StatusOK},
		{pprof: false, want: http.StatusNotFound},
	} {
		srv := httptest.NewServer(jobAPIHandler(testPlatform(t), tc.pprof))
		for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("pprof=%v %s: status %d, want %d", tc.pprof, path, resp.StatusCode, tc.want)
			}
		}
		// The platform's own routes are mounted either way.
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof=%v /healthz: status %d", tc.pprof, resp.StatusCode)
		}
		srv.Close()
	}
}

func TestLoopbackAddr(t *testing.T) {
	for addr, want := range map[string]bool{
		"127.0.0.1:8080": true,
		"[::1]:8080":     true,
		"localhost:8080": true,
		":8080":          false,
		"0.0.0.0:8080":   false,
		"10.0.0.7:8080":  false,
		"example.com:80": false,
		"garbage":        false,
	} {
		if got := loopbackAddr(addr); got != want {
			t.Errorf("loopbackAddr(%q) = %v, want %v", addr, got, want)
		}
	}
}

// TestHTTPShutdownDrainsGoroutines runs the coordinator's full serving
// stack the way runCoordinator assembles it — coordinator fabric, job
// platform sharing one obs registry, HTTP server with pprof mounted — and
// checks the documented shutdown order (HTTP, then platform, then
// coordinator) leaves no goroutine behind, even with a worker attached and
// a metrics scrape in flight.
func TestHTTPShutdownDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	registry := obs.NewRegistry()
	coord := sweepd.NewCoordinator()
	coord.Metrics = sweepd.RegisterCoordinatorMetrics(registry)
	tracecache.RegisterMetrics(registry, tracecache.New(tracecache.Config{}))
	platform, err := jobd.New(jobd.Options{Pool: coord, Metrics: registry})
	if err != nil {
		t.Fatal(err)
	}
	coord.OnWorkersChanged = platform.Kick
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	wctx, stopWorker := context.WithCancel(context.Background())
	var workers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		sweepd.Work(wctx, addr, sweepd.WorkerOptions{Name: "w1"}) //nolint:errcheck
	}()
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: jobAPIHandler(platform, true)}
	go httpSrv.Serve(ln) //nolint:errcheck

	// Exercise the server before shutdown: a scrape (renders all three
	// layers' families from the shared registry) and a pprof hit.
	for _, path := range []string{"/metrics", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	// The documented order from runCoordinator: HTTP first, platform,
	// coordinator fabric last.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	cancel()
	platform.Close()
	stopWorker()
	coord.Close()
	workers.Wait()

	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across shutdown: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
