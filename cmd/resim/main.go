// Command resim runs the ReSim timing engine over a trace — either a file
// produced by tracegen or one generated on the fly from a synthetic
// workload — and prints the sim-outorder-style statistics report plus the
// modeled FPGA simulation throughput. Ctrl-C cancels an in-flight run.
//
// Usage:
//
//	resim -workload bzip2 -n 500000
//	resim -trace gzip.trace -width 2 -perfect-bp -caches
//	resim -workload parser -org simple -device virtex4
//
// With -config, the JSON file is loaded first and explicit structure flags
// override its fields.
//
// Long runs can checkpoint and resume: -checkpoint FILE saves the complete
// engine state at every -checkpoint-every cycle boundary (atomically;
// latest wins), and a later invocation with the same workload/trace and
// configuration plus -resume FILE continues from the saved cycle. Engines
// are deterministic, so the resumed run's final statistics are
// byte-identical to an uninterrupted run's:
//
//	resim -workload gzip -n 50000000 -checkpoint gzip.ckpt   # Ctrl-C midway
//	resim -workload gzip -n 50000000 -resume gzip.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	resim "repro"
	"repro/internal/configfile"
	"repro/internal/ptrace"
)

func main() {
	// Subcommand dispatch before flag parsing: `resim jobs ...` is the job
	// service client; everything else is the classic single-run CLI.
	if len(os.Args) > 1 && os.Args[1] == "jobs" {
		runJobs(os.Args[2:])
		return
	}
	var (
		tracePath = flag.String("trace", "", "trace file to simulate (from tracegen)")
		name      = flag.String("workload", "", "generate and simulate this workload on the fly")
		n         = flag.Uint64("n", 500_000, "instruction budget for -workload mode")
		confPath  = flag.String("config", "", "JSON configuration file (explicit flags override its fields)")
		saveConf  = flag.String("save-config", "", "write the effective configuration as JSON and exit")
		pipeTrace = flag.Int("pipetrace", 0, "render a pipeline diagram of the first N instructions")
		width     = flag.Int("width", 4, "processor width N")
		rb        = flag.Int("rb", 16, "reorder buffer entries")
		lsq       = flag.Int("lsq", 8, "load/store queue entries")
		ifq       = flag.Int("ifq", 4, "instruction fetch queue entries")
		perfectBP = flag.Bool("perfect-bp", false, "perfect branch prediction")
		caches    = flag.Bool("caches", false, "32K 8-way L1 I/D caches (default: perfect memory)")
		orgName   = flag.String("org", "optimized", "internal pipeline: simple, improved, optimized")
		device    = flag.String("device", "virtex5", "FPGA model for throughput: virtex4, virtex5")
		readPorts = flag.Int("read-ports", 0, "memory read ports (0 = auto)")
		report    = flag.Bool("report", true, "print the full statistics report")
		progress  = flag.Bool("progress", false, "report progress to stderr while simulating")
		ckptPath  = flag.String("checkpoint", "", "periodically save the engine state to this file (atomic; latest wins)")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "cycles between checkpoints (0 = the observer default, 65536)")
		resumeCkp = flag.String("resume", "", "resume from a checkpoint file written by -checkpoint (same workload/trace and configuration)")
	)
	flag.Parse()

	// Configuration file first, explicit flags second: a flag the user typed
	// always wins, and flags left at their defaults never clobber the file.
	cfg := resim.DefaultConfig()
	if *confPath != "" {
		loaded, err := configfile.Load(*confPath)
		if err != nil {
			fatal(err)
		}
		cfg = loaded
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	use := func(flagName string) bool { return *confPath == "" || set[flagName] }

	if use("width") {
		cfg.Width = *width
	}
	if use("rb") {
		cfg.RBSize = *rb
	}
	if use("lsq") {
		cfg.LSQSize = *lsq
	}
	if use("ifq") {
		cfg.IFQSize = *ifq
	}
	if use("perfect-bp") {
		cfg.PerfectBP = *perfectBP
	}
	if use("org") {
		org, err := resim.OrganizationByName(*orgName)
		if err != nil {
			fatal(err)
		}
		cfg.Organization = org
	}
	if set["caches"] { // -caches attaches the 32K L1s, -caches=false strips the file's
		if *caches {
			il1, err := resim.NewL1Cache(resim.CacheConfig{Name: "il1", SizeBytes: 32 << 10,
				Assoc: 8, BlockBytes: 64, HitLatency: 1, MissLatency: 20})
			if err != nil {
				fatal(err)
			}
			dl1, err := resim.NewL1Cache(resim.CacheConfig{Name: "dl1", SizeBytes: 32 << 10,
				Assoc: 8, BlockBytes: 64, HitLatency: 1, MissLatency: 20})
			if err != nil {
				fatal(err)
			}
			cfg.ICache, cfg.DCache = il1, dl1
		} else {
			cfg.ICache, cfg.DCache = nil, nil
		}
	}
	if *readPorts > 0 {
		cfg.MemReadPorts = *readPorts
	} else if *confPath == "" {
		// No file: the default port count is nobody's explicit choice, so
		// clamp it to the organization's limit. A config file's ports are
		// explicit — leave them and let validation surface any conflict
		// with flag-overridden width/org rather than silently simulating a
		// different machine.
		// max >= 1 mirrors Session.New's guard: at width 1 the Optimized
		// organization allows no read ports at all, and clamping to 0 would
		// swap the clear organization-limit error for a confusing one.
		if max := cfg.Organization.MaxMemPorts(cfg.Width); max >= 1 && cfg.MemReadPorts > max {
			cfg.MemReadPorts = max
		}
	}

	var collector *ptrace.Collector
	if *pipeTrace > 0 {
		collector = ptrace.New(*pipeTrace)
		cfg.PipeTracer = collector
	}

	opts := []resim.Option{resim.WithConfig(cfg)}
	if *ckptEvery > 0 && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "resim: -checkpoint-every has no effect without -checkpoint FILE")
	}
	if *ckptPath != "" {
		path := *ckptPath
		opts = append(opts, resim.WithCheckpointEvery(*ckptEvery, func(cp *resim.Checkpoint) error {
			return resim.SaveCheckpoint(path, cp)
		}))
	}
	if *resumeCkp != "" {
		cp, err := resim.LoadCheckpoint(*resumeCkp)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "resim: resuming from %s at cycle %d\n", *resumeCkp, cp.Cycles())
		opts = append(opts, resim.ResumeFrom(cp))
	}
	if *progress {
		opts = append(opts, resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
			fmt.Fprintf(os.Stderr, "resim: %d cycles, %d committed, IPC %.3f\n",
				p.Cycles, p.Committed, p.IPC)
		}), 0))
	}
	ses, err := resim.New(opts...)
	if err != nil {
		fatal(err)
	}
	if *saveConf != "" {
		if err := configfile.Save(*saveConf, ses.Config()); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveConf)
		return
	}

	var dev resim.Device
	switch *device {
	case "virtex4":
		dev = resim.Virtex4
	case "virtex5":
		dev = resim.Virtex5
	default:
		fatal(fmt.Errorf("unknown device %q", *device))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var res resim.Result
	switch {
	case *tracePath != "" && *name != "":
		fatal(fmt.Errorf("use either -trace or -workload, not both"))
	case *tracePath != "":
		res, err = ses.RunTrace(ctx, *tracePath)
	case *name != "":
		res, err = ses.RunWorkload(ctx, *name, *n)
	default:
		fmt.Fprintln(os.Stderr, "resim: one of -trace or -workload is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if collector != nil {
		fmt.Print(collector.Render())
	}
	if *report {
		if err := res.Registry().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("\nsimulated %d instructions in %d cycles (IPC %.3f)\n",
		res.Committed, res.Cycles, res.IPC())
	fmt.Printf("internal pipeline: %v, K = %d minor cycles per major cycle\n",
		ses.Config().Organization, ses.Config().MinorCyclesPerMajor())
	fmt.Printf("modeled simulation throughput on %s: %.2f MIPS\n",
		dev.Name, resim.SimulationMIPS(dev, ses.Config(), res))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resim:", err)
	os.Exit(1)
}
