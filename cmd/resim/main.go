// Command resim runs the ReSim timing engine over a trace — either a file
// produced by tracegen or one generated on the fly from a synthetic
// workload — and prints the sim-outorder-style statistics report plus the
// modeled FPGA simulation throughput.
//
// Usage:
//
//	resim -workload bzip2 -n 500000
//	resim -trace gzip.trace -width 2 -perfect-bp -caches
//	resim -workload parser -org simple -device virtex4
package main

import (
	"flag"
	"fmt"
	"os"

	resim "repro"
	"repro/internal/configfile"
	"repro/internal/ptrace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file to simulate (from tracegen)")
		name      = flag.String("workload", "", "generate and simulate this workload on the fly")
		n         = flag.Uint64("n", 500_000, "instruction budget for -workload mode")
		confPath  = flag.String("config", "", "JSON configuration file (overrides the structure flags)")
		saveConf  = flag.String("save-config", "", "write the effective configuration as JSON and exit")
		pipeTrace = flag.Int("pipetrace", 0, "render a pipeline diagram of the first N instructions")
		width     = flag.Int("width", 4, "processor width N")
		rb        = flag.Int("rb", 16, "reorder buffer entries")
		lsq       = flag.Int("lsq", 8, "load/store queue entries")
		ifq       = flag.Int("ifq", 4, "instruction fetch queue entries")
		perfectBP = flag.Bool("perfect-bp", false, "perfect branch prediction")
		caches    = flag.Bool("caches", false, "32K 8-way L1 I/D caches (default: perfect memory)")
		orgName   = flag.String("org", "optimized", "internal pipeline: simple, improved, optimized")
		device    = flag.String("device", "virtex5", "FPGA model for throughput: virtex4, virtex5")
		readPorts = flag.Int("read-ports", 0, "memory read ports (0 = auto)")
		report    = flag.Bool("report", true, "print the full statistics report")
	)
	flag.Parse()

	cfg := resim.DefaultConfig()
	cfg.Width = *width
	cfg.RBSize = *rb
	cfg.LSQSize = *lsq
	cfg.IFQSize = *ifq
	cfg.PerfectBP = *perfectBP
	switch *orgName {
	case "simple":
		cfg.Organization = resim.OrgSimple
	case "improved":
		cfg.Organization = resim.OrgImproved
	case "optimized":
		cfg.Organization = resim.OrgOptimized
	default:
		fatal(fmt.Errorf("unknown organization %q", *orgName))
	}
	if *caches {
		il1, err := resim.NewL1Cache(resim.CacheConfig{Name: "il1", SizeBytes: 32 << 10,
			Assoc: 8, BlockBytes: 64, HitLatency: 1, MissLatency: 20})
		if err != nil {
			fatal(err)
		}
		dl1, err := resim.NewL1Cache(resim.CacheConfig{Name: "dl1", SizeBytes: 32 << 10,
			Assoc: 8, BlockBytes: 64, HitLatency: 1, MissLatency: 20})
		if err != nil {
			fatal(err)
		}
		cfg.ICache, cfg.DCache = il1, dl1
	}
	if *readPorts > 0 {
		cfg.MemReadPorts = *readPorts
	} else if max := cfg.Organization.MaxMemPorts(cfg.Width); cfg.MemReadPorts > max {
		cfg.MemReadPorts = max
	}
	if *confPath != "" {
		loaded, err := configfile.Load(*confPath)
		if err != nil {
			fatal(err)
		}
		cfg = loaded
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *saveConf != "" {
		if err := configfile.Save(*saveConf, cfg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveConf)
		return
	}
	var collector *ptrace.Collector
	if *pipeTrace > 0 {
		collector = ptrace.New(*pipeTrace)
		cfg.PipeTracer = collector
	}

	var dev resim.Device
	switch *device {
	case "virtex4":
		dev = resim.Virtex4
	case "virtex5":
		dev = resim.Virtex5
	default:
		fatal(fmt.Errorf("unknown device %q", *device))
	}

	var (
		res resim.Result
		err error
	)
	switch {
	case *tracePath != "" && *name != "":
		fatal(fmt.Errorf("use either -trace or -workload, not both"))
	case *tracePath != "":
		res, err = resim.SimulateTraceFile(cfg, *tracePath)
	case *name != "":
		res, err = resim.SimulateWorkload(cfg, *name, *n)
	default:
		fmt.Fprintln(os.Stderr, "resim: one of -trace or -workload is required")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if collector != nil {
		fmt.Print(collector.Render())
	}
	if *report {
		if err := res.Registry().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("\nsimulated %d instructions in %d cycles (IPC %.3f)\n",
		res.Committed, res.Cycles, res.IPC())
	fmt.Printf("internal pipeline: %v, K = %d minor cycles per major cycle\n",
		cfg.Organization, cfg.MinorCyclesPerMajor())
	fmt.Printf("modeled simulation throughput on %s: %.2f MIPS\n",
		dev.Name, resim.SimulationMIPS(dev, cfg, res))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resim:", err)
	os.Exit(1)
}
