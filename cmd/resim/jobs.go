// The `resim jobs` subcommand: client for the multi-tenant job service a
// coordinator exposes with `resimd -role coordinator -http ...`.
//
//	resim jobs submit -server http://host:8080 -token T -workload gzip -n 500000 -grid lsq=4,8,16
//	resim jobs status -server http://host:8080 -token T -id j0123456789abcdef
//	resim jobs results -server http://host:8080 -token T -id j0123456789abcdef
//	resim jobs watch  -server http://host:8080 -token T -id j0123456789abcdef
//	resim jobs trace  -server http://host:8080 -token T -id j0123456789abcdef
//	resim jobs cancel -server http://host:8080 -token T -id j0123456789abcdef
//	resim jobs list   -server http://host:8080 -token T
//
// submit queues the sweep and prints its job ID immediately; -wait
// additionally streams results until the job finishes. Submissions are
// durable server-side: a coordinator restart recovers them from its
// journal, so a printed job ID can always be picked up later with
// `resim jobs results`. watch follows the job's live telemetry stream,
// printing one table row per interval snapshot as the engines simulate
// (see docs/TELEMETRY.md). trace follows the job's lifecycle span log —
// when it was queued, dispatched to which worker, requeued, resumed past
// a checkpoint — one row per span (see docs/OBSERVABILITY.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"

	resim "repro"
	"repro/internal/configfile"
	"repro/internal/jobd"
	"repro/internal/sweepd"
)

func runJobs(args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("resim jobs: need a subcommand: submit, status, results, watch, trace, cancel, list"))
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("resim jobs "+sub, flag.ExitOnError)
	var (
		server = fs.String("server", "http://localhost:8080", "job service base URL")
		token  = fs.String("token", "", "tenant bearer token")
		id     = fs.String("id", "", "job ID (status, results, cancel)")

		name     = fs.String("workload", "gzip", "submit: workload to sweep")
		n        = fs.Uint64("n", 500_000, "submit: instruction budget per point")
		priority = fs.Int("priority", 0, "submit: scheduling priority (higher dispatches first)")
		confPath = fs.String("config", "", "submit: JSON configuration file for the base design point")
		grid     = fs.String("grid", "", "submit: sweep one structure over values, e.g. lsq=4,8,16 (rb, lsq, ifq, width)")
		wait     = fs.Bool("wait", false, "submit: stream results until the job finishes")
	)
	fs.Parse(args) //nolint:errcheck

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := &jobd.Client{Server: strings.TrimRight(*server, "/"), Token: *token}

	switch sub {
	case "submit":
		jobSubmit(ctx, c, *name, *n, *priority, *confPath, *grid, *wait)
	case "status":
		st, err := c.Status(ctx, requireID(*id))
		if err != nil {
			fatal(err)
		}
		printStatus(st)
	case "results":
		if _, err := streamResults(ctx, c, requireID(*id)); err != nil {
			fatal(err)
		}
	case "watch":
		if err := watchTelemetry(ctx, c, requireID(*id)); err != nil {
			fatal(err)
		}
	case "trace":
		if err := traceJob(ctx, c, requireID(*id)); err != nil {
			fatal(err)
		}
	case "cancel":
		st, err := c.Cancel(ctx, requireID(*id))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %s\n", st.ID, st.State)
	case "list":
		jobs, err := c.List(ctx)
		if err != nil {
			fatal(err)
		}
		for _, st := range jobs {
			fmt.Printf("%s  %-8s  %3d/%-3d  prio=%d  %s n=%d  submitted %s\n",
				st.ID, st.State, st.Completed, st.Total, st.Priority,
				st.Workload, st.Instructions, st.Submitted.Format("2006-01-02 15:04:05"))
		}
	default:
		fatal(fmt.Errorf("resim jobs: unknown subcommand %q (want submit, status, results, watch, trace, cancel, list)", sub))
	}
}

func requireID(id string) string {
	if id == "" {
		fatal(fmt.Errorf("resim jobs: -id is required"))
	}
	return id
}

func jobSubmit(ctx context.Context, c *jobd.Client, workload string, n uint64, priority int, confPath, grid string, wait bool) {
	base := resim.DefaultConfig()
	if confPath != "" {
		loaded, err := configfile.Load(confPath)
		if err != nil {
			fatal(err)
		}
		base = loaded
	}
	points, err := gridPoints(base, grid)
	if err != nil {
		fatal(err)
	}
	st, err := c.Submit(ctx, jobd.SubmitRequest{
		Workload: workload, Instructions: n, Priority: priority, Points: points,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s queued (%d points)\n", st.ID, st.Total)
	if !wait {
		return
	}
	state, err := streamResults(ctx, c, st.ID)
	if err != nil {
		fatal(err)
	}
	if state != jobd.StateDone {
		fatal(fmt.Errorf("resim jobs: job %s ended %s", st.ID, state))
	}
}

// gridPoints expands "-grid param=v1,v2,..." over the base configuration
// into named wire points; an empty grid submits the base point alone.
func gridPoints(base resim.Config, grid string) ([]sweepd.WirePoint, error) {
	if grid == "" {
		spec, err := sweepd.SpecOf(base)
		if err != nil {
			return nil, err
		}
		return []sweepd.WirePoint{{Name: "base", Config: spec}}, nil
	}
	param, list, ok := strings.Cut(grid, "=")
	if !ok {
		return nil, fmt.Errorf("resim jobs: -grid wants param=v1,v2,... (got %q)", grid)
	}
	var apply func(*resim.Config, int)
	switch param {
	case "rb":
		apply = func(c *resim.Config, v int) { c.RBSize = v }
	case "lsq":
		apply = func(c *resim.Config, v int) { c.LSQSize = v }
	case "ifq":
		apply = func(c *resim.Config, v int) { c.IFQSize = v }
	case "width":
		apply = func(c *resim.Config, v int) { c.Width = v }
	default:
		return nil, fmt.Errorf("resim jobs: -grid parameter %q not supported (want rb, lsq, ifq or width)", param)
	}
	var points []sweepd.WirePoint
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("resim jobs: -grid value %q: %w", s, err)
		}
		cfg := base
		apply(&cfg, v)
		spec, err := sweepd.SpecOf(cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, sweepd.WirePoint{Name: param + "=" + strconv.Itoa(v), Config: spec})
	}
	return points, nil
}

func streamResults(ctx context.Context, c *jobd.Client, id string) (jobd.State, error) {
	state, err := c.Results(ctx, id, func(wr *sweepd.WireResult) error {
		switch {
		case wr.Err != "":
			fmt.Printf("%-24s ERROR %s\n", wr.Name, wr.Err)
		case wr.Res != nil:
			ipc := 0.0
			if wr.Res.Counters.Cycles > 0 {
				ipc = float64(wr.Res.Counters.Committed) / float64(wr.Res.Counters.Cycles)
			}
			fmt.Printf("%-24s %12d cycles %12d committed  IPC %.4f\n",
				wr.Name, wr.Res.Counters.Cycles, wr.Res.Counters.Committed, ipc)
		}
		return nil
	})
	if err != nil {
		return state, err
	}
	fmt.Printf("job %s: %s\n", id, state)
	return state, nil
}

// watchTelemetry follows the job's live interval-snapshot stream, printing
// a table row per window as the engines simulate: which point, the cycle
// window, its IPC and miss rates, and the mean reorder-buffer occupancy. A
// watch attached mid-job first replays the service's buffered history, then
// follows live until the job finishes.
func watchTelemetry(ctx context.Context, c *jobd.Client, id string) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "POINT\tWINDOW\tCYCLES\tIPC\tBR-MISS\tI$-MISS\tD$-MISS\tRB-OCC")
	tw.Flush()
	rows := 0
	state, err := c.Telemetry(ctx, id, func(s resim.IntervalSnapshot) error {
		mark := ""
		if s.Final {
			mark = " *"
		}
		fmt.Fprintf(tw, "%d\t[%d,%d)%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.1f\n",
			s.Core, s.StartCycle, s.EndCycle, mark, s.Cycles(),
			s.IPC, s.MispredictRate, s.ICacheMissRate, s.DCacheMissRate, s.RB.Mean())
		rows++
		// Flush per line: watch is a live view, not a report.
		return tw.Flush()
	})
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %s (%d intervals)\n", id, state, rows)
	if state != jobd.StateDone && state != jobd.StateCanceled {
		return fmt.Errorf("resim jobs: job %s ended %s", id, state)
	}
	return nil
}

// traceJob follows the job's lifecycle span stream, printing a table row
// per span: when it happened relative to submission, what it was, and its
// point/group/worker attribution. A trace attached mid-job first replays
// the service's buffered span log, then follows live until the job
// finishes.
func traceJob(ctx context.Context, c *jobd.Client, id string) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "SEQ\t+MS\tEVENT\tPOINT\tGROUP\tWORKER\tDETAIL")
	tw.Flush()
	rows := 0
	state, err := c.Trace(ctx, id, func(s jobd.TraceSpan) error {
		point := ""
		if s.Point >= 0 {
			point = strconv.Itoa(s.Point)
		}
		detail := s.Detail
		if s.Cycle > 0 {
			detail = strings.TrimSpace(fmt.Sprintf("cycle=%d %s", s.Cycle, detail))
		}
		if s.Points > 0 {
			detail = strings.TrimSpace(fmt.Sprintf("points=%d %s", s.Points, detail))
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%s\t%s\t%s\t%s\t%s\n",
			s.Seq, s.ElapsedMS, s.Event, point, s.Group, s.Worker, detail)
		rows++
		// Flush per line: trace is a live view, not a report.
		return tw.Flush()
	})
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %s (%d spans)\n", id, state, rows)
	if state != jobd.StateDone && state != jobd.StateCanceled {
		return fmt.Errorf("resim jobs: job %s ended %s", id, state)
	}
	return nil
}

func printStatus(st jobd.JobStatus) {
	fmt.Printf("id:        %s\nstate:     %s\nworkload:  %s (n=%d)\npriority:  %d\nprogress:  %d/%d points\nsubmitted: %s\n",
		st.ID, st.State, st.Workload, st.Instructions, st.Priority,
		st.Completed, st.Total, st.Submitted.Format("2006-01-02 15:04:05"))
	if st.Err != "" {
		fmt.Printf("error:     %s\n", st.Err)
	}
	for _, pt := range st.Points {
		mark := " "
		if pt.Done {
			mark = "✓"
		}
		fmt.Printf("  [%s] %d %s", mark, pt.Index, pt.Name)
		if pt.Err != "" {
			fmt.Printf("  ERROR %s", pt.Err)
		}
		fmt.Println()
	}
}
