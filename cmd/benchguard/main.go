// Command benchguard is the CI benchmark-regression gate: it parses
// `go test -bench` output, compares the ns/op of each benchmark listed in a
// committed baseline (BENCH_baseline.json) and fails when any of them
// regressed beyond a threshold (default 20%). A benchmark present in the
// bench output but absent from the baseline also fails — a newly added gate
// benchmark must be committed to the baseline (`-update`) before it guards
// anything, instead of passing silently forever.
//
// The comparison is deliberately conservative against noise: when the bench
// output holds several samples of one benchmark (-count=N), the minimum
// ns/op is used on both sides — the minimum is the least noisy estimator of
// a benchmark's true cost on a busy CI machine.
//
// Because the committed baseline comes from one machine and CI runners
// vary, -calibrate names a reference benchmark measured in the same run:
// every other benchmark's current ns/op is divided by the calibrator's
// current/baseline ratio before comparison, cancelling out raw hardware
// speed. The calibrator itself is reported but not gated (a real
// regression in it would also scale the gated benchmarks, which all
// include or dwarf its work). Without -calibrate, absolute ns/op compare.
//
// Usage:
//
//	go test -run '^$' -bench 'Sweep|Table1' -count 6 . | go run ./cmd/benchguard
//	go run ./cmd/benchguard -update bench.txt      # refresh the baseline
//	go run ./cmd/benchguard -threshold 0.30 bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference point for the regression gate.
type Baseline struct {
	Note string `json:"note,omitempty"`
	// Context of the machine that produced the baseline; informational.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to the
	// reference ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkSweepWarmCache-8   30   38463802 ns/op   1.23 IPC".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// machineLine captures the goos/goarch/cpu context lines.
var machineLine = regexp.MustCompile(`^(goos|goarch|cpu):\s*(.+)$`)

// parseBench reads bench output, returning minimum ns/op per benchmark and
// the machine context.
func parseBench(r io.Reader) (map[string]float64, map[string]string, error) {
	res := map[string]float64{}
	machine := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := machineLine.FindStringSubmatch(line); m != nil {
			machine[m[1]] = strings.TrimSpace(m[2])
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("benchguard: bad ns/op in %q: %w", line, err)
		}
		if old, ok := res[m[1]]; !ok || ns < old {
			res[m[1]] = ns
		}
	}
	return res, machine, sc.Err()
}

// verdict is one benchmark's comparison outcome.
type verdict struct {
	name       string
	base, cur  float64
	delta      float64 // (cur-base)/base
	regressed  bool
	missing    bool // listed in the baseline, absent from the bench output
	unknown    bool // present in the bench output, absent from the baseline
	overweight bool // improved past the threshold: baseline is stale
}

// compare evaluates current results against the baseline at the given
// regression threshold. A non-empty calibrate benchmark normalizes every
// current value by that benchmark's current/baseline ratio (and exempts
// the calibrator itself from the gate); it returns the scale used.
func compare(base Baseline, cur map[string]float64, threshold float64, calibrate string) ([]verdict, float64, error) {
	scale := 1.0
	if calibrate != "" {
		cb, okB := base.Benchmarks[calibrate]
		cc, okC := cur[calibrate]
		if !okB || !okC || cb <= 0 {
			return nil, 0, fmt.Errorf("benchguard: calibration benchmark %q missing from baseline or bench output", calibrate)
		}
		scale = cc / cb
	}
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []verdict
	for _, n := range names {
		b := base.Benchmarks[n]
		c, ok := cur[n]
		if !ok {
			out = append(out, verdict{name: n, base: b, missing: true})
			continue
		}
		d := (c/scale - b) / b
		gated := n != calibrate
		out = append(out, verdict{
			name: n, base: b, cur: c, delta: d,
			regressed:  gated && d > threshold,
			overweight: gated && d < -threshold,
		})
	}
	// A benchmark that runs in the gate but has no committed reference
	// would otherwise pass silently forever — fail until the baseline
	// learns it.
	extras := make([]string, 0)
	for n := range cur {
		if _, ok := base.Benchmarks[n]; !ok {
			extras = append(extras, n)
		}
	}
	sort.Strings(extras)
	for _, n := range extras {
		out = append(out, verdict{name: n, cur: cur[n], unknown: true})
	}
	return out, scale, nil
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
		threshold    = flag.Float64("threshold", 0.20, "ns/op regression tolerance (0.20 = +20%)")
		update       = flag.Bool("update", false, "rewrite the baseline from the given bench output")
		note         = flag.String("note", "", "note to store when updating the baseline")
		calibrate    = flag.String("calibrate", "", "benchmark used to normalize out machine speed (exempt from the gate)")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	cur, machine, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("benchguard: no benchmark results in input")
	}

	if *update {
		b := Baseline{
			Note:       *note,
			Goos:       machine["goos"],
			Goarch:     machine["goarch"],
			CPU:        machine["cpu"],
			Benchmarks: cur,
		}
		if b.Note == "" {
			b.Note = "min ns/op per benchmark; refresh with: go run ./cmd/benchguard -update"
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(cur), *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchguard: bad baseline %s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("benchguard: baseline %s lists no benchmarks", *baselinePath)
	}

	verdicts, scale, err := compare(base, cur, *threshold, *calibrate)
	if err != nil {
		return err
	}
	if *calibrate != "" {
		fmt.Printf("calibrated by %s: this machine runs %.2fx the baseline's ns/op\n", *calibrate, scale)
	}
	failed := false
	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, v := range verdicts {
		if v.missing {
			failed = true
			fmt.Printf("%-44s %14.0f %14s %8s  MISSING from bench output\n", v.name, v.base, "-", "-")
			continue
		}
		if v.unknown {
			failed = true
			fmt.Printf("%-44s %14s %14.0f %8s  NOT IN BASELINE: run `go run ./cmd/benchguard -update` to add it\n", v.name, "-", v.cur, "-")
			continue
		}
		tag := ""
		if v.name == *calibrate {
			tag = "  (calibrator, not gated)"
		}
		switch {
		case v.regressed:
			failed = true
			tag = fmt.Sprintf("  REGRESSED (> %+.0f%%)", *threshold*100)
		case v.overweight:
			tag = "  improved; consider refreshing the baseline"
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%%%s\n", v.name, v.base, v.cur, v.delta*100, tag)
	}
	if failed {
		return fmt.Errorf("benchguard: benchmark regression beyond %.0f%% (or benchmark missing from the run or the baseline)", *threshold*100)
	}
	fmt.Println("benchguard: OK")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
