package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepWarmCache-8   	      30	  38463802 ns/op	         1.23 IPC
BenchmarkSweepWarmCache-8   	      31	  37000000 ns/op	         1.23 IPC
BenchmarkSweepUncached-8    	      15	  76014654 ns/op
BenchmarkTable1PerfectMemory/gzip-8 	 50	  20000000 ns/op
PASS
ok  	repro	0.6s
`

func TestParseBenchTakesMinimum(t *testing.T) {
	got, machine, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if got["BenchmarkSweepWarmCache"] != 37000000 {
		t.Errorf("WarmCache = %v, want the minimum of the two samples", got["BenchmarkSweepWarmCache"])
	}
	if got["BenchmarkTable1PerfectMemory/gzip"] != 20000000 {
		t.Errorf("sub-benchmark name not parsed: %v", got)
	}
	if machine["goos"] != "linux" || machine["cpu"] == "" {
		t.Errorf("machine context = %v", machine)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{
		"BenchA": 100, // will regress
		"BenchB": 100, // within tolerance
		"BenchC": 100, // missing from current
		"BenchD": 100, // improved past threshold
	}}
	cur := map[string]float64{"BenchA": 125, "BenchB": 115, "BenchD": 60, "BenchE": 1}
	vs, scale, err := compare(base, cur, 0.20, "")
	if err != nil || scale != 1.0 {
		t.Fatalf("uncalibrated compare: scale=%v err=%v", scale, err)
	}
	if len(vs) != 5 {
		t.Fatalf("verdicts = %d, want 5 (baseline's four plus the unknown BenchE)", len(vs))
	}
	byName := map[string]verdict{}
	for _, v := range vs {
		byName[v.name] = v
	}
	if !byName["BenchA"].regressed {
		t.Error("BenchA +25% not flagged at 20% threshold")
	}
	if byName["BenchB"].regressed || byName["BenchB"].missing {
		t.Error("BenchB +15% wrongly flagged")
	}
	if !byName["BenchC"].missing {
		t.Error("BenchC absence not flagged")
	}
	if !byName["BenchD"].overweight || byName["BenchD"].regressed {
		t.Error("BenchD improvement not marked as stale-baseline hint")
	}
	if !byName["BenchE"].unknown {
		t.Error("BenchE (run but absent from the baseline) not flagged; gate benchmarks must not pass silently before the baseline learns them")
	}
}

// TestCompareUnknownBenchmarkFails pins the run-side behavior: a gate run
// containing a benchmark the baseline does not list fails the gate (with
// the -update hint printed by run), rather than passing silently.
func TestCompareUnknownBenchmarkFails(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{"BenchA": 100}}
	cur := map[string]float64{"BenchA": 100, "BenchNew": 42}
	vs, _, err := compare(base, cur, 0.20, "")
	if err != nil {
		t.Fatal(err)
	}
	var unknown *verdict
	for i := range vs {
		if vs[i].name == "BenchNew" {
			unknown = &vs[i]
		}
	}
	if unknown == nil || !unknown.unknown {
		t.Fatalf("BenchNew verdict = %+v, want unknown=true", unknown)
	}
	if unknown.cur != 42 {
		t.Errorf("unknown verdict cur = %v, want the measured 42", unknown.cur)
	}
}

func TestCompareCalibratesOutMachineSpeed(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{
		"BenchCal": 100, // machine-speed reference
		"BenchA":   100, // scales with the machine: fine after calibration
		"BenchB":   100, // regressed even accounting for the slower machine
	}}
	// This "machine" is 1.5x slower across the board; BenchB regressed 2x.
	cur := map[string]float64{"BenchCal": 150, "BenchA": 150, "BenchB": 300}
	vs, scale, err := compare(base, cur, 0.20, "BenchCal")
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1.5 {
		t.Errorf("scale = %v, want 1.5", scale)
	}
	byName := map[string]verdict{}
	for _, v := range vs {
		byName[v.name] = v
	}
	if byName["BenchA"].regressed {
		t.Error("BenchA flagged despite tracking machine speed exactly")
	}
	if !byName["BenchB"].regressed {
		t.Error("BenchB's real 2x regression hidden by calibration")
	}
	if byName["BenchCal"].regressed || byName["BenchCal"].overweight {
		t.Error("calibrator must be exempt from the gate")
	}
	if _, _, err := compare(base, map[string]float64{"BenchA": 1}, 0.20, "BenchCal"); err == nil {
		t.Error("missing calibrator accepted")
	}
}
