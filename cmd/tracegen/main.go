// Command tracegen produces ReSim input traces off-line, the "traces that
// are prepared off-line (for example for bulk simulations with varying
// design parameters)" mode of the paper. It runs the sim-bpred-style
// functional simulator over a synthetic SPECINT workload and writes the
// bit-packed B/M/O record stream, including tagged wrong-path blocks.
//
// Usage:
//
//	tracegen -workload gzip -n 1000000 -o gzip.trace
//	tracegen -workload parser -perfect-bp -o parser-nobp.trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	resim "repro"
)

func main() {
	var (
		name      = flag.String("workload", "gzip", "workload profile: "+strings.Join(workloadNames(), ", "))
		n         = flag.Uint64("n", 1_000_000, "correct-path instructions to trace")
		out       = flag.String("o", "", "output trace file (required)")
		perfectBP = flag.Bool("perfect-bp", false, "assume perfect branch prediction (no wrong-path blocks)")
		width     = flag.Int("width", 4, "simulated processor width (sets the wrong-path block size via RB+IFQ)")
		compress  = flag.Bool("compress", false, "write the delta-compressed container (~1.4x smaller)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := []resim.Option{resim.WithWidth(*width)}
	if *perfectBP {
		opts = append(opts, resim.WithPerfectBP())
	}
	ses, err := resim.New(opts...)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	st, err := ses.WriteTrace(ctx, f, *name, *n, *compress)
	if err != nil {
		_ = f.Close()
		_ = os.Remove(*out) // don't leave a truncated, footer-less container
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d records (%d wrong-path), %.2f bits/instr, %.1f MB\n",
		*out, st.Records, st.WrongPath, st.BitsPerInstr, float64(st.Bits)/8/1e6)
}

func workloadNames() []string {
	var names []string
	for _, w := range resim.Workloads() {
		names = append(names, w.Name)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
