package resim

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/multicore"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// Session is the single entry point to every ReSim run mode: it holds one
// validated processor configuration and exposes workload simulation, trace
// file simulation, trace writing, parallel design-space sweeps and lockstep
// multicore clusters, all context-aware. Build one with New; a Session is
// immutable and safe for concurrent use — each run owns its engine, and
// cache geometry given via WithL1Caches is instantiated fresh per engine.
// Models installed directly with WithICache/WithDCache (and PipeTracer /
// Observer hooks) are shared across runs and stay the caller's to
// synchronize.
type Session struct {
	cfg Config
	// il1/dl1 are WithL1Caches geometries; engines get fresh instances so
	// runs never share tag state or statistics. A later WithICache /
	// WithDCache / WithConfig option clears the corresponding side.
	il1, dl1 *CacheConfig
	// traces memoizes generated workload traces across runs, sweeps and
	// clusters; nil disables caching (streaming regeneration per run).
	traces *tracecache.Cache
	// coordAddr, when non-empty, routes Sweep through the sweepd
	// coordinator at that address instead of the in-process loopback
	// scheduler (WithCoordinator).
	coordAddr string
	// ckptEvery/ckptSink enable periodic engine-state serialization
	// (WithCheckpointEvery); resume, when non-nil, starts single-engine
	// runs from a restored checkpoint instead of cycle 0 (ResumeFrom).
	ckptEvery uint64
	ckptSink  func(*core.Checkpoint) error
	resume    *core.Checkpoint
}

// settings is the mutable state the functional options operate on before
// New validates it once.
type settings struct {
	cfg      Config
	il1, dl1 *CacheConfig
	// portsSet records an explicit memory-port choice (WithMemoryPorts or
	// WithConfig); without one, New clamps the default read-port count to
	// the organization's limit so e.g. New(WithWidth(2)) stays valid under
	// the Optimized organization.
	portsSet bool
	traces   *tracecache.Cache
	// tracesSet distinguishes WithTraceCache(nil) — caching explicitly off —
	// from the default of the process-wide shared cache.
	tracesSet bool
	coordAddr string
	ckptEvery uint64
	ckptSink  func(*core.Checkpoint) error
	resume    *core.Checkpoint
}

// Option configures a Session under construction. Options are applied in
// order; later options override earlier ones.
type Option func(*settings) error

// New builds a Session from the paper's default 4-wide configuration plus
// the given options, validating the composed configuration exactly once.
func New(opts ...Option) (*Session, error) {
	s := settings{cfg: core.DefaultConfig()}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if !s.portsSet {
		if max := s.cfg.Organization.MaxMemPorts(s.cfg.Width); max >= 1 && s.cfg.MemReadPorts > max {
			s.cfg.MemReadPorts = max
		}
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	if !s.tracesSet {
		s.traces = tracecache.Shared()
	}
	return &Session{cfg: s.cfg, il1: s.il1, dl1: s.dl1, traces: s.traces, coordAddr: s.coordAddr,
		ckptEvery: s.ckptEvery, ckptSink: s.ckptSink, resume: s.resume}, nil
}

// WithConfig replaces the whole configuration; apply it first when combining
// with field-level options. The configuration is taken as-is (no automatic
// memory-port clamping).
func WithConfig(cfg Config) Option {
	return func(s *settings) error {
		s.cfg = cfg
		s.il1, s.dl1 = nil, nil
		s.portsSet = true
		return nil
	}
}

// WithWidth sets N: fetch, dispatch, issue, writeback and commit bandwidth.
func WithWidth(n int) Option {
	return func(s *settings) error { s.cfg.Width = n; return nil }
}

// WithIFQSize sets the instruction fetch queue depth.
func WithIFQSize(n int) Option {
	return func(s *settings) error { s.cfg.IFQSize = n; return nil }
}

// WithRBSize sets the reorder buffer depth.
func WithRBSize(n int) Option {
	return func(s *settings) error { s.cfg.RBSize = n; return nil }
}

// WithLSQSize sets the load/store queue depth.
func WithLSQSize(n int) Option {
	return func(s *settings) error { s.cfg.LSQSize = n; return nil }
}

// WithOrganization selects the internal minor-cycle pipeline (§IV).
func WithOrganization(org Organization) Option {
	return func(s *settings) error { s.cfg.Organization = org; return nil }
}

// WithPredictor configures the simulated branch predictor (and turns
// perfect branch prediction off).
func WithPredictor(pc PredictorConfig) Option {
	return func(s *settings) error {
		s.cfg.Predictor = pc
		s.cfg.PerfectBP = false
		return nil
	}
}

// WithPerfectBP selects perfect branch prediction (Table 1, right portion).
func WithPerfectBP() Option {
	return func(s *settings) error { s.cfg.PerfectBP = true; return nil }
}

// WithL1Caches attaches timing-only L1 instruction and data caches sharing
// the given geometry (they are named "il1" and "dl1" in reports). Unlike
// WithICache/WithDCache, only the geometry is stored: every engine the
// session builds gets its own fresh cache instances, so concurrent or
// repeated runs never share tag state and stay deterministic.
func WithL1Caches(cc CacheConfig) Option {
	return func(s *settings) error {
		icc, dcc := cc, cc
		icc.Name, dcc.Name = "il1", "dl1"
		if err := icc.Validate(); err != nil {
			return err
		}
		s.il1, s.dl1 = &icc, &dcc
		return nil
	}
}

// WithICache installs a custom instruction-cache model (nil = perfect),
// overriding an earlier WithL1Caches on the instruction side. The model is
// shared by every run the session starts.
func WithICache(m CacheModel) Option {
	return func(s *settings) error {
		s.cfg.ICache = m
		s.il1 = nil
		return nil
	}
}

// WithDCache installs a custom data-cache model (nil = perfect), overriding
// an earlier WithL1Caches on the data side. The model is shared by every
// run the session starts.
func WithDCache(m CacheModel) Option {
	return func(s *settings) error {
		s.cfg.DCache = m
		s.dl1 = nil
		return nil
	}
}

// WithMemoryPorts sets the per-cycle load-issue and store-commit port
// counts explicitly, disabling New's automatic read-port clamping.
func WithMemoryPorts(read, write int) Option {
	return func(s *settings) error {
		s.cfg.MemReadPorts = read
		s.cfg.MemWritePorts = write
		s.portsSet = true
		return nil
	}
}

// WithPenalties sets the misfetch and mis-speculation fetch bubbles.
func WithPenalties(misfetch, mispred int) Option {
	return func(s *settings) error {
		s.cfg.MisfetchPenalty = misfetch
		s.cfg.MispredPenalty = mispred
		return nil
	}
}

// WithFUs configures the functional-unit pools.
func WithFUs(fu FUConfig) Option {
	return func(s *settings) error { s.cfg.FUs = fu; return nil }
}

// WithMaxCycles bounds a run's simulated major cycles (0 = no limit).
func WithMaxCycles(n uint64) Option {
	return func(s *settings) error { s.cfg.MaxCycles = n; return nil }
}

// WithPipeTracer installs a per-instruction pipeline event hook (the
// sim-outorder "ptrace" facility; see internal/ptrace).
func WithPipeTracer(pt PipeTracer) Option {
	return func(s *settings) error { s.cfg.PipeTracer = pt; return nil }
}

// WithObserver installs a progress observer invoked every everyCycles major
// cycles of a run (0 = a default interval). Sweeps report one callback per
// completed point; multicore clusters report the lockstep aggregate.
func WithObserver(obs Observer, everyCycles uint64) Option {
	return func(s *settings) error {
		s.cfg.Observer = obs
		s.cfg.ObserverInterval = everyCycles
		return nil
	}
}

// WithTelemetry streams per-interval engine telemetry: sink receives an
// IntervalSnapshot — the window delta of every counter, cache statistic and
// occupancy, plus window IPC and miss rates — at every everyCycles boundary
// of a run (0 = a default interval; boundaries are absolute cycle
// multiples, like observer callbacks). Single-engine runs deliver snapshots
// with Core 0 and a sink error aborts the run. Sweeps through this session
// (local and remote) stream every in-flight point's snapshots tagged with
// the point's job-wide index in Snapshot.Core; delivery there is
// fire-and-forget and may be concurrent across points, so the sink must be
// safe for concurrent use and its error is ignored. Multicore clusters do
// not stream telemetry.
func WithTelemetry(sink func(IntervalSnapshot) error, everyCycles uint64) Option {
	return func(s *settings) error {
		if sink == nil {
			return fmt.Errorf("resim: WithTelemetry needs a sink")
		}
		s.cfg.TelemetrySink = sink
		s.cfg.TelemetryEvery = everyCycles
		return nil
	}
}

// WithTraceCache selects the trace cache the session's runs, sweeps and
// clusters share. Sessions default to the process-wide shared cache
// (resim.SharedTraceCache), so every session — and the deprecated free
// functions, which build sessions internally — reuses one set of generated
// traces. Pass a private cache to isolate a session (its own memory budget
// or spill directory), or nil to disable caching entirely and regenerate
// the trace on every run (streaming, nothing materialized).
func WithTraceCache(tc *TraceCache) Option {
	return func(s *settings) error {
		s.traces = tc
		s.tracesSet = true
		return nil
	}
}

// WithCheckpointEvery makes single-engine runs (RunWorkload, RunTrace,
// RunSource) serialize their complete engine state at every everyCycles
// boundary (0 = a default interval) and hand each Checkpoint to sink — save
// it with SaveCheckpoint and a killed run resumes bit-exactly via
// ResumeFrom. Boundaries are absolute cycle multiples, so checkpoint cycles
// are deterministic across runs. A sink error aborts the run. Sweeps run
// through this session additionally ship per-point checkpoints to the sweep
// scheduler at the same cadence (the sink itself stays single-run only), so
// a dead worker's requeued points resume on survivors.
func WithCheckpointEvery(everyCycles uint64, sink func(*Checkpoint) error) Option {
	return func(s *settings) error {
		if sink == nil {
			return fmt.Errorf("resim: WithCheckpointEvery needs a sink")
		}
		s.ckptEvery = everyCycles
		s.ckptSink = sink
		return nil
	}
}

// ResumeFrom makes the session's single-engine runs (RunWorkload, RunTrace,
// RunSource) restore cp and continue from its cycle instead of starting at
// cycle 0. The run must be given the same input (workload name and
// instruction budget, or trace file) and the session the same
// simulated-machine configuration the checkpoint was captured under;
// mismatches fail at run start. Combined with WithCheckpointEvery the
// resumed run re-checkpoints on the same absolute boundaries, so its final
// statistics are byte-identical to an uninterrupted run's.
func ResumeFrom(cp *Checkpoint) Option {
	return func(s *settings) error {
		if cp == nil {
			return fmt.Errorf("resim: ResumeFrom needs a checkpoint")
		}
		s.resume = cp
		return nil
	}
}

// WithCoordinator routes the session's Sweep calls through the sharded
// sweep service coordinator at addr (host:port, as served by
// `resimd -role coordinator`): points are sharded by trace key across the
// coordinator's registered workers and results stream back in point order,
// exactly as SweepRemote. The empty address restores the default
// in-process loopback scheduler. Other run modes are unaffected.
func WithCoordinator(addr string) Option {
	return func(s *settings) error {
		s.coordAddr = addr
		return nil
	}
}

// Config returns the session's validated configuration. When the session
// was built with WithL1Caches the returned Config carries newly built cache
// instances, owned by the caller.
func (s *Session) Config() Config { return s.engineConfig() }

// engineConfig derives the per-engine configuration: the shared validated
// core plus fresh L1 instances for WithL1Caches geometry (validated at
// option time), so engines never share mutable cache state.
func (s *Session) engineConfig() Config {
	cfg := s.cfg
	if s.il1 != nil {
		cfg.ICache = cache.New(*s.il1)
	}
	if s.dl1 != nil {
		cfg.DCache = cache.New(*s.dl1)
	}
	return cfg
}

// RunWorkload simulates up to limit correct-path instructions of the named
// synthetic workload through the engine. The trace comes from the session's
// trace cache when the budget is cacheable — repeated runs (and concurrent
// sessions sharing the cache) replay one generated trace — and is otherwise
// generated on the fly (the functional-simulator coupling of the paper's
// future work).
func (s *Session) RunWorkload(ctx context.Context, name string, limit uint64) (Result, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return Result{}, err
	}
	src, startPC, err := tracecache.SourceFor(ctx, s.traces, p, s.cfg.TraceConfig(), limit)
	if err != nil {
		return Result{}, err
	}
	return s.runSource(ctx, src, startPC, fmt.Sprintf("workload:%s/n=%d", name, limit))
}

// RunSource simulates an arbitrary record source starting at startPC. A
// session built with ResumeFrom instead restores the checkpoint and
// continues from its cycle — src must then yield the identical record
// stream the checkpointed run consumed (startPC is taken from the
// checkpoint). Unlike RunWorkload and RunTrace, an arbitrary source has no
// identity the session could stamp into checkpoints or validate on resume;
// matching checkpoint and source is the caller's responsibility here.
func (s *Session) RunSource(ctx context.Context, src Source, startPC uint32) (Result, error) {
	return s.runSource(ctx, src, startPC, "")
}

// runSource is the shared single-engine run path. inputTag identifies the
// record stream when the caller knows it: captured checkpoints carry it,
// and a ResumeFrom checkpoint carrying a different tag is rejected before
// any simulation — resuming against the wrong input must fail loudly, not
// produce plausible wrong statistics. Empty tags (RunSource, or checkpoints
// captured below the session layer) skip the check.
func (s *Session) runSource(ctx context.Context, src Source, startPC uint32, inputTag string) (Result, error) {
	cfg := s.engineConfig()
	cfg.CheckpointEvery = s.ckptEvery
	if s.ckptSink != nil {
		sink := s.ckptSink
		cfg.CheckpointSink = func(cp *core.Checkpoint) error {
			cp.Input = inputTag
			return sink(cp)
		}
	}
	var eng *core.Engine
	var err error
	if s.resume != nil {
		if s.resume.Input != "" && inputTag != "" && s.resume.Input != inputTag {
			return Result{}, fmt.Errorf("resim: checkpoint was captured from %q, this run simulates %q", s.resume.Input, inputTag)
		}
		eng, err = core.Restore(cfg, src, s.resume)
	} else {
		eng, err = core.New(cfg, src, startPC)
	}
	if err != nil {
		return Result{}, err
	}
	return eng.RunContext(ctx)
}

// RunTrace opens a trace container previously produced by WriteTrace or
// cmd/tracegen — the format is auto-detected — and simulates it.
func (s *Session) RunTrace(ctx context.Context, path string) (Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	src, hdr, err := trace.Open(f)
	if err != nil {
		return Result{}, err
	}
	// The tag combines the file's base name (stable across directories)
	// with the header identity, so both a renamed trace and a same-named
	// file with different contents fail resume loudly rather than risking
	// a silent wrong-stream attach.
	tag := fmt.Sprintf("trace:%s@pc=%#x/records=%d", filepath.Base(path), hdr.StartPC, hdr.Records)
	return s.runSource(ctx, src, hdr.StartPC, tag)
}

// WriteTrace generates a ReSim trace for the named workload into w
// (container format: header + bit-packed B/M/O records; compress selects
// the delta-coded container, typically ~1.4x smaller). The session's
// predictor configuration drives wrong-path block generation, mirroring
// sim-bpred. The context is polled periodically; a cancelled write returns
// ctx.Err().
func (s *Session) WriteTrace(ctx context.Context, w io.Writer, name string, limit uint64, compress bool) (TraceStats, error) {
	return writeTrace(ctx, w, s.traces, s.cfg.TraceConfig(), name, limit, compress)
}

// writeTrace is the shared trace-writing loop. It takes the derived
// trace-generation configuration directly so the deprecated free-function
// wrappers can keep their historical behavior of not validating the
// engine-side Config fields a trace write never consumes. A cacheable write
// goes through the trace cache — writing the same workload twice (raw then
// compressed, say) generates once — and encodes the memoized records;
// uncacheable budgets stream straight from the functional simulator.
func writeTrace(ctx context.Context, w io.Writer, traces *tracecache.Cache, tc funcsim.TraceConfig, name string, limit uint64, compress bool) (TraceStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := workload.ByName(name)
	if err != nil {
		return TraceStats{}, err
	}
	if traces != nil && traces.Cacheable(limit) {
		tr, err := traces.Get(ctx, p, tc, limit)
		if err != nil {
			return TraceStats{}, err
		}
		sink, err := newTraceSink(w, trace.Header{StartPC: tr.StartPC()}, compress)
		if err != nil {
			return TraceStats{}, err
		}
		var sinceCheck int
		if err := tr.Range(func(r trace.Record) error {
			if sinceCheck++; sinceCheck >= core.CtxCheckInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return sink.Write(r)
		}); err != nil {
			return TraceStats{}, err
		}
		if err := sink.Close(); err != nil {
			return TraceStats{}, err
		}
		return TraceStats{
			Records:      sink.Records(),
			WrongPath:    tr.WrongPath(),
			Bits:         sink.BitsWritten(),
			BitsPerInstr: sink.BitsPerRecord(),
		}, nil
	}
	prog, err := p.Build()
	if err != nil {
		return TraceStats{}, err
	}
	m, err := funcsim.NewMachine(prog, 0)
	if err != nil {
		return TraceStats{}, err
	}
	sink, err := newTraceSink(w, trace.Header{StartPC: prog.Entry}, compress)
	if err != nil {
		return TraceStats{}, err
	}
	var tagged uint64
	tr := funcsim.NewTracer(m, tc)
	var sinceCheck int
	if _, err := tr.Run(limit, func(r trace.Record) error {
		if sinceCheck++; sinceCheck >= core.CtxCheckInterval {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if r.Tag {
			tagged++
		}
		return sink.Write(r)
	}); err != nil {
		return TraceStats{}, err
	}
	if err := sink.Close(); err != nil {
		return TraceStats{}, err
	}
	return TraceStats{
		Records:      sink.Records(),
		WrongPath:    tagged,
		Bits:         sink.BitsWritten(),
		BitsPerInstr: sink.BitsPerRecord(),
	}, nil
}

// newTraceSink opens the raw or delta-compressed container writer on w.
func newTraceSink(w io.Writer, hdr trace.Header, compress bool) (traceSink, error) {
	if compress {
		return trace.NewCompressedWriter(w, hdr)
	}
	return trace.NewWriter(w, hdr)
}

// Sweep simulates every design point over the named workload in parallel
// (the paper's bulk design-space exploration use case); results come back
// in point order, deterministic regardless of parallelism. Each point
// carries its own full configuration — derive them with SweepGrid. The
// session's observer, when set, receives one callback per completed point
// (Progress.Done / Progress.Total carry sweep completion); cancelling the
// context aborts in-flight engines and returns ctx.Err() once every worker
// has drained.
//
// Sweeps run on the sharded sweep scheduler (internal/sweepd): points are
// grouped by trace key so every distinct trace is generated exactly once,
// and key-groups fan out across an in-process loopback worker pool sharing
// the session's trace cache. A session built WithCoordinator instead ships
// the same job to that coordinator's worker fleet — the local and remote
// paths share one scheduler, so semantics and result ordering are
// identical either way.
func (s *Session) Sweep(ctx context.Context, workloadName string, instructions uint64, points []SweepPoint) ([]SweepResult, error) {
	if s.coordAddr != "" {
		return s.SweepRemote(ctx, s.coordAddr, workloadName, instructions, points)
	}
	// A tracer shared across points in different key-groups would be
	// invisible to the per-group Runner's sharing scan while the groups'
	// engines run concurrently, so clear cross-point sharing up front
	// (mirroring the historical single-Runner behavior: only when the
	// sweep actually runs in parallel).
	maxProcs := runtime.GOMAXPROCS(0)
	if maxProcs > 1 && len(points) > 1 {
		points = sweep.ClearSharedPipeTracers(points)
	}
	job, err := s.sweepJob(workloadName, instructions, points)
	if err != nil {
		return nil, err
	}
	// One loopback worker per key-group up to the host's parallelism, all
	// sharing the session's cache: the cache still generates each distinct
	// trace once. Every worker gets the full host parallelism rather than a
	// static 1/nw share — groups finish at different times, and a worker
	// idling on a small group must not strand cores the big group could
	// use; the modest goroutine oversubscription while several groups are
	// in flight is cheaper than the stranding.
	nw := len(job.Groups())
	if nw > maxProcs {
		nw = maxProcs
	}
	if nw < 1 {
		nw = 1
	}
	workers := make([]sweepd.Worker, nw)
	for i := range workers {
		workers[i] = sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{
			Parallelism:  maxProcs,
			Traces:       s.traces,
			DisableCache: s.traces == nil,
			// Sessions that opted into checkpointing extend it to sweeps:
			// each in-flight point ships periodic checkpoints to the
			// scheduler so a killed worker's remainder resumes mid-run.
			CheckpointEvery: s.sweepCheckpointEvery(),
		})
	}
	return sweepd.Run(ctx, job, workers, s.sweepEmit())
}

// SweepRemote runs the sweep through the sweepd coordinator at addr — the
// client side of the sharded sweep service (cmd/resimd). The signature,
// result ordering and observer behavior match Sweep: results return in
// point order regardless of which worker host finished what, and the
// session's observer receives one callback per completed point with the
// coordinator-side Done/Total counters as they stream in. Points must be
// expressible on the wire: custom cache models and pipe tracers cannot
// cross the network and fail fast before dialing.
func (s *Session) SweepRemote(ctx context.Context, addr, workloadName string, instructions uint64, points []SweepPoint) ([]SweepResult, error) {
	job, err := s.sweepJob(workloadName, instructions, points)
	if err != nil {
		return nil, err
	}
	return sweepd.RunRemote(ctx, addr, job, s.cfg.Observer)
}

// sweepCheckpointEvery returns the per-point checkpoint cadence for local
// sweeps: the WithCheckpointEvery cadence (with the same zero-means-default
// rule single runs use), or 0 — no capture — when the session never opted
// into checkpointing.
func (s *Session) sweepCheckpointEvery() uint64 {
	if s.ckptSink == nil {
		return 0
	}
	if s.ckptEvery == 0 {
		return core.DefaultObserverInterval
	}
	return s.ckptEvery
}

// sweepTelemetryEvery returns the per-point telemetry cadence for sweeps:
// the WithTelemetry cadence (with the same zero-means-default rule single
// runs use), or 0 — no streaming — when the session never opted in.
func (s *Session) sweepTelemetryEvery() uint64 {
	if s.cfg.TelemetrySink == nil {
		return 0
	}
	if s.cfg.TelemetryEvery == 0 {
		return core.DefaultObserverInterval
	}
	return s.cfg.TelemetryEvery
}

// sweepJob resolves a sweep invocation into a scheduler job. A session that
// opted into telemetry extends it to sweeps: the job carries the cadence
// (which crosses the wire for remote sweeps) and adapts the session sink to
// the scheduler's indexed fire-and-forget delivery.
func (s *Session) sweepJob(workloadName string, instructions uint64, points []SweepPoint) (*sweepd.Job, error) {
	p, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	job := &sweepd.Job{Profile: p, Instructions: instructions, Points: points}
	if sink := s.cfg.TelemetrySink; sink != nil {
		job.TelemetryEvery = s.sweepTelemetryEvery()
		job.OnTelemetry = func(index int, snap core.IntervalSnapshot) {
			snap.Core = index
			sink(snap) //nolint:errcheck // sweep telemetry is fire-and-forget
		}
	}
	return job, nil
}

// sweepEmit adapts the session observer to the scheduler's per-point
// emission, preserving the Sweep observer contract: one serialized callback
// per completed point, Final exactly once on successful completion.
func (s *Session) sweepEmit() func(sweepd.PointResult, int, int) {
	if s.cfg.Observer == nil {
		return nil
	}
	return func(pr sweepd.PointResult, done, total int) {
		s.cfg.Observer.Progress(core.Progress{
			Core:      pr.Index,
			Cycles:    pr.Result.Res.Cycles,
			Committed: pr.Result.Res.Committed,
			IPC:       pr.Result.Res.IPC(),
			Done:      done,
			Total:     total,
			Final:     done == total,
		})
	}
}

// Multicore runs one ReSim instance per workload in lockstep major cycles —
// the paper's future-work mode of fitting multiple instances in one FPGA
// (§VI). Every core uses the session's configuration (width, predictor,
// organization). The session's observer, when set, receives cluster
// aggregates (Progress.Core = -1).
func (s *Session) Multicore(ctx context.Context, opts MulticoreOptions) (MulticoreResult, error) {
	if len(opts.Workloads) == 0 {
		return MulticoreResult{}, fmt.Errorf("resim: no workloads given")
	}
	var shared CacheModel
	if opts.SharedL2 != nil {
		if opts.L1 == nil {
			return MulticoreResult{}, fmt.Errorf("resim: SharedL2 requires an L1 geometry")
		}
		var err error
		shared, err = NewL1Cache(*opts.SharedL2)
		if err != nil {
			return MulticoreResult{}, err
		}
	}
	var specs []multicore.CoreSpec
	for _, name := range opts.Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return MulticoreResult{}, err
		}
		// Each core gets its own fresh L1 instances (engineConfig); the
		// cluster is the single reporting channel (aggregate progress), so
		// per-engine observers stay unset.
		coreCfg := s.engineConfig()
		coreCfg.Observer = nil
		// Clusters step engines per-cycle below RunContext, so per-engine
		// telemetry has no emission point; keep the hook off the cores.
		coreCfg.TelemetrySink = nil
		coreCfg.TelemetryEvery = 0
		if shared != nil {
			if err := multicore.AttachSharedDL1(&coreCfg, *opts.L1, shared); err != nil {
				return MulticoreResult{}, err
			}
		}
		// Homogeneous clusters (the same workload on several cores, all
		// under the session's one configuration) share a single generated
		// trace: every core replays its own snapshot from the cache.
		src, startPC, err := tracecache.SourceFor(ctx, s.traces, p, coreCfg.TraceConfig(), opts.Limit)
		if err != nil {
			return MulticoreResult{}, err
		}
		specs = append(specs, multicore.CoreSpec{
			Name: name, Config: coreCfg, Source: src, StartPC: startPC,
		})
	}
	cl, err := multicore.New(specs)
	if err != nil {
		return MulticoreResult{}, err
	}
	if s.cfg.Observer != nil {
		cl.Observe(s.cfg.Observer, s.cfg.ObserverInterval)
	}
	// WithMaxCycles bounds the lockstep cycle count, same as single runs.
	return cl.Run(ctx, s.cfg.MaxCycles)
}
