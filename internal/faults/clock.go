package faults

import "time"

// Clock abstracts the wall clock for timeout and heartbeat paths, so
// code in the determinism analyzer's scope never reads time.Now
// directly and tests can drive liveness machinery virtually.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one value after d elapses.
	After(d time.Duration) <-chan time.Time
}

// System is the process wall clock, the one place the fabric is allowed
// to read real time; everything downstream takes a Clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //resim:nondeterministic-ok the one sanctioned wall-clock read; all fabric code routes through Clock
}

func (systemClock) After(d time.Duration) <-chan time.Time {
	return time.After(d)
}
