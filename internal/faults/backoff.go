package faults

import (
	"math/rand"
	"time"
)

// Backoff computes jittered exponential retry delays: each Next doubles
// the previous delay up to a cap and perturbs it by ±25%, breaking the
// synchronized-retry stampede a fleet of workers would otherwise mount
// against a recovering coordinator. The jitter source is explicitly
// seeded, so a given (seed, attempt) pair always yields the same delay
// and retry schedules are reproducible in tests.
type Backoff struct {
	base, max time.Duration
	rng       *rand.Rand
	attempt   int
}

// NewBackoff builds a backoff schedule doubling from base up to max,
// jittered from seed. A non-positive base defaults to 100ms; max is
// raised to base when smaller.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.base
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	if b.attempt < 62 {
		b.attempt++
	}
	jitter := int64(d / 4)
	if jitter > 0 {
		d += time.Duration(b.rng.Int63n(2*jitter+1) - jitter)
	}
	return d
}

// Reset rewinds the schedule to its base delay; callers invoke it after
// a successful attempt so the next failure starts cheap again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt reports how many delays Next has produced since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
