package faults

import (
	"errors"
	"testing"
	"time"
)

// TestInjectorOrdinals: rules trigger exactly on their [On, On+Count)
// call window, per site.
func TestInjectorOrdinals(t *testing.T) {
	boom := errors.New("boom")
	in := NewInjector(Rule{Site: "a", On: 2, Count: 2, Err: boom})
	defer in.Close()

	want := []error{nil, boom, boom, nil, nil}
	for i, w := range want {
		if got := in.At("a"); !errors.Is(got, w) && got != w {
			t.Fatalf("call %d: got %v, want %v", i+1, got, w)
		}
	}
	// A different site never triggers.
	for i := 0; i < 5; i++ {
		if err := in.At("b"); err != nil {
			t.Fatalf("site b call %d: unexpected %v", i+1, err)
		}
	}
	if n := in.Fired("a"); n != 2 {
		t.Fatalf("Fired(a) = %d, want 2", n)
	}
}

// TestInjectorDefaultsAndPrefix: zero On/Count means "first call only",
// a trailing '*' matches site prefixes, and nil Err yields ErrInjected.
func TestInjectorDefaultsAndPrefix(t *testing.T) {
	in := NewInjector(Rule{Site: "sweepd.worker.*"})
	defer in.Close()
	if err := in.At("sweepd.worker.send"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first call: got %v, want ErrInjected", err)
	}
	if err := in.At("sweepd.worker.send"); err != nil {
		t.Fatalf("second call: got %v, want nil", err)
	}
	// Per-site counting: the sibling site gets its own first call.
	if err := in.At("sweepd.worker.recv"); !errors.Is(err, ErrInjected) {
		t.Fatalf("sibling site first call: got %v, want ErrInjected", err)
	}
	if err := in.At("jobd.journal.append"); err != nil {
		t.Fatalf("non-matching site: got %v, want nil", err)
	}
}

// TestInjectorHangReleasesOnClose: a Hang rule blocks the call until
// Close, which also deactivates the schedule.
func TestInjectorHangReleasesOnClose(t *testing.T) {
	in := NewInjector(Rule{Site: "s", Do: Hang, Count: All})
	done := make(chan error, 1)
	go func() { done <- in.At("s") }()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released hang: got %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hang not released by Close")
	}
	// Closed injectors are inert even with Count: All.
	if err := in.At("s"); err != nil {
		t.Fatalf("post-Close call: got %v, want nil", err)
	}
}

// TestNilInjectorIsFree: every method is safe and inert on nil.
func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.At("anything"); err != nil {
		t.Fatal(err)
	}
	in.Add(Rule{Site: "x"})
	if in.Fired("x") != 0 {
		t.Fatal("nil injector fired")
	}
	in.Close()
}

// TestSeededRulesDeterministic: same seed, same schedule; different
// seeds diverge (for at least one of a handful of probes).
func TestSeededRulesDeterministic(t *testing.T) {
	a := SeededRules(42, 1000, "x", "y", "z")
	b := SeededRules(42, 1000, "x", "y", "z")
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("rule counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rule %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].On < 1 || a[i].On > 1000 {
			t.Fatalf("rule %d ordinal out of range: %d", i, a[i].On)
		}
	}
	diverged := false
	for seed := int64(43); seed < 53; seed++ {
		c := SeededRules(seed, 1000, "x", "y", "z")
		for i := range a {
			if c[i].On != a[i].On {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("10 different seeds all produced seed-42's schedule")
	}
}

// TestBackoff: deterministic per seed, grows roughly exponentially, and
// respects the cap (within the ±25% jitter envelope).
func TestBackoff(t *testing.T) {
	a := NewBackoff(100*time.Millisecond, 2*time.Second, 7)
	b := NewBackoff(100*time.Millisecond, 2*time.Second, 7)
	prevMid := time.Duration(0)
	for i := 0; i < 8; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		mid := 100 * time.Millisecond << i
		if mid > 2*time.Second {
			mid = 2 * time.Second
		}
		if da < mid-mid/4 || da > mid+mid/4 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, da, mid-mid/4, mid+mid/4)
		}
		if mid < prevMid {
			t.Fatalf("midpoint shrank: %v after %v", mid, prevMid)
		}
		prevMid = mid
	}
	if a.Attempt() != 8 {
		t.Fatalf("Attempt() = %d, want 8", a.Attempt())
	}
	a.Reset()
	if d := a.Next(); d > 125*time.Millisecond || d < 75*time.Millisecond {
		t.Fatalf("post-Reset delay %v not near base", d)
	}
}
