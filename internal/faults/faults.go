// Package faults is ReSim's deterministic fault-injection substrate.
//
// Distributed-fabric hardening is only trustworthy if the failures it
// defends against can be reproduced exactly, so everything here is
// seeded and explicit: an Injector holds a schedule of Rules keyed by
// stable site strings ("sweepd.worker.send", "jobd.journal.append"),
// each rule arming at a deterministic call ordinal; SeededRules derives
// a whole schedule from one int64 seed; Clock abstracts the wall clock
// so timeout paths stay testable; Backoff computes jittered exponential
// retry delays from an explicit seed. The package is in scope for the
// resimvet determinism analyzer — the System clock carries the one
// sanctioned wall-clock read.
//
// Production code threads an optional *Injector through its failure
// sites and calls At(site) before the guarded operation; a nil injector
// is free (one pointer test) and injects nothing, so the hooks cost
// nothing outside the chaos suite. See docs/ROBUSTNESS.md.
package faults

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error a triggered Fail or Hang rule returns when
// the rule does not carry its own.
var ErrInjected = errors.New("faults: injected failure")

// Action selects what a triggered rule does to the call at its site.
type Action int

const (
	// Fail makes the call return the rule's error immediately.
	Fail Action = iota
	// Hang blocks the call until the injector is closed, then returns
	// the rule's error — modeling a hung (not dead) process whose
	// connection stays open while nothing flows.
	Hang
	// Slow sleeps the rule's Sleep duration (or until the injector is
	// closed) and then lets the call proceed normally.
	Slow
)

// All, used as a Rule.Count, makes the rule fire on every call from On
// onward instead of a bounded window.
const All = ^uint64(0)

// Rule arms one injection site: calls numbered [On, On+Count) at Site
// (1-based ordinals, per-site counting) are subjected to the action.
type Rule struct {
	// Site is the injection-point key; a trailing '*' matches any site
	// with the preceding prefix.
	Site string
	// On is the 1-based ordinal of the first affected call (0 means 1).
	On uint64
	// Count is how many consecutive calls are affected (0 means 1; All
	// means every call from On onward).
	Count uint64
	// Do is the action applied to affected calls.
	Do Action
	// Err is returned by Fail and Hang actions (nil means ErrInjected).
	Err error
	// Sleep is the Slow action's delay.
	Sleep time.Duration
}

// Injector evaluates a fault schedule at named injection sites. The
// zero of its pointer type is valid: a nil *Injector injects nothing,
// so production call sites need no conditionals.
type Injector struct {
	clock Clock

	mu      sync.Mutex
	rules   []Rule
	calls   map[string]uint64
	fired   map[string]uint64
	release chan struct{}
	closed  bool
}

// NewInjector builds an injector from a schedule; the first matching
// rule at a site wins for any given call.
func NewInjector(rules ...Rule) *Injector {
	return &Injector{
		clock:   System,
		rules:   append([]Rule(nil), rules...),
		calls:   make(map[string]uint64),
		fired:   make(map[string]uint64),
		release: make(chan struct{}),
	}
}

// Add arms another rule; chaos tests use it to trigger faults off
// observed events (for example "hang the worker after its first
// shipped checkpoint") rather than call ordinals alone.
func (in *Injector) Add(r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules = append(in.rules, r)
	in.mu.Unlock()
}

// At records one call at site and applies the schedule: it returns nil
// when no rule triggers, the rule's error for Fail and Hang (after
// blocking, for Hang), and nil after the delay for Slow. A nil
// injector always returns nil.
func (in *Injector) At(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	n := in.calls[site] + 1
	in.calls[site] = n
	var hit *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if !siteMatch(r.Site, site) {
			continue
		}
		on := r.On
		if on == 0 {
			on = 1
		}
		count := r.Count
		if count == 0 {
			count = 1
		}
		if n < on || (count != All && n-on >= count) {
			continue
		}
		hit = r
		break
	}
	if hit == nil {
		in.mu.Unlock()
		return nil
	}
	in.fired[site]++
	rule := *hit
	release := in.release
	clock := in.clock
	in.mu.Unlock()

	err := rule.Err
	if err == nil {
		err = ErrInjected
	}
	switch rule.Do {
	case Hang:
		<-release
		return err
	case Slow:
		select {
		case <-clock.After(rule.Sleep):
		case <-release:
		}
		return nil
	default:
		return err
	}
}

// Fired reports how many calls at site the schedule has affected so
// far; chaos tests assert the intended fault actually happened.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Close deactivates the injector and releases every hung or sleeping
// call; subsequent At calls inject nothing. It is idempotent, and safe
// on a nil injector.
func (in *Injector) Close() {
	if in == nil {
		return
	}
	in.mu.Lock()
	if !in.closed {
		in.closed = true
		close(in.release)
	}
	in.mu.Unlock()
}

// SeededRules derives a deterministic fault schedule from seed: one
// Fail rule per listed site, arming at a call ordinal drawn from
// [1, maxOn]. Same seed, same schedule — the chaos suite's byte-identity
// assertions rely on it.
func SeededRules(seed int64, maxOn uint64, sites ...string) []Rule {
	rng := rand.New(rand.NewSource(seed))
	rules := make([]Rule, 0, len(sites))
	for _, site := range sites {
		rules = append(rules, Rule{Site: site, On: 1 + uint64(rng.Int63n(int64(maxOn)))})
	}
	return rules
}

// siteMatch reports whether the rule pattern covers site: exact match,
// or prefix match when the pattern ends in '*'.
func siteMatch(pattern, site string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(site, pattern[:len(pattern)-1])
	}
	return pattern == site
}
