package uarch

import "fmt"

// FUClass selects a functional-unit pool.
type FUClass uint8

// Functional unit classes. Branches and store address generation use the
// ALU pool, as in sim-outorder; loads occupy a memory read port instead of
// a functional unit once their address is known.
const (
	FUALU FUClass = iota
	FUMult
	FUDiv

	numFUClasses
)

// String names the class.
func (c FUClass) String() string {
	switch c {
	case FUALU:
		return "alu"
	case FUMult:
		return "mult"
	case FUDiv:
		return "div"
	}
	return fmt.Sprintf("FUClass(%d)", uint8(c))
}

// FUSpec describes one pool of identical units.
type FUSpec struct {
	Count     int
	Latency   int
	Pipelined bool // pipelined units accept one operation per cycle
}

// FUConfig is the per-class pool specification.
type FUConfig [numFUClasses]FUSpec

// DefaultFUConfig returns the paper's evaluated mix: "four ALUs, one
// Multiplier and one Divider with one, three and ten cycle latency
// respectively" (§V.C). The divider is modeled unpipelined, the ALUs and
// multiplier pipelined, matching sim-outorder's resource definitions.
func DefaultFUConfig() FUConfig {
	var c FUConfig
	c[FUALU] = FUSpec{Count: 4, Latency: 1, Pipelined: true}
	c[FUMult] = FUSpec{Count: 1, Latency: 3, Pipelined: true}
	c[FUDiv] = FUSpec{Count: 1, Latency: 10, Pipelined: false}
	return c
}

// Validate reports configuration errors.
func (c FUConfig) Validate() error {
	for cls := FUClass(0); cls < numFUClasses; cls++ {
		s := c[cls]
		if s.Count < 0 || s.Latency < 1 {
			return fmt.Errorf("uarch: %v pool count=%d latency=%d invalid", cls, s.Count, s.Latency)
		}
	}
	return nil
}

// FUPool tracks per-unit availability.
type FUPool struct {
	cfg  FUConfig
	busy [numFUClasses][]int64 // per unit: first cycle it can accept again
}

// NewFUPool builds a pool from cfg; it panics on invalid configuration.
func NewFUPool(cfg FUConfig) *FUPool {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &FUPool{cfg: cfg}
	for cls := range p.busy {
		p.busy[cls] = make([]int64, cfg[cls].Count)
	}
	return p
}

// Config returns the pool configuration.
func (p *FUPool) Config() FUConfig { return p.cfg }

// TryIssue allocates a unit of class cls at cycle now. On success it returns
// the operation latency. Pipelined units accept one operation per cycle;
// unpipelined units are busy for the full latency.
func (p *FUPool) TryIssue(cls FUClass, now int64) (latency int, ok bool) {
	spec := p.cfg[cls]
	units := p.busy[cls]
	for i := range units {
		if units[i] <= now {
			if spec.Pipelined {
				units[i] = now + 1
			} else {
				units[i] = now + int64(spec.Latency)
			}
			return spec.Latency, true
		}
	}
	return 0, false
}

// BusyUntil returns, per class, each unit's first cycle of renewed
// availability — the serialization view checkpoints capture.
func (p *FUPool) BusyUntil() [][]int64 {
	out := make([][]int64, len(p.busy))
	for cls := range p.busy {
		out[cls] = make([]int64, len(p.busy[cls]))
		copy(out[cls], p.busy[cls])
	}
	return out
}

// SetBusyUntil restores per-unit availability captured by BusyUntil. The
// shape must match the pool's configuration exactly.
func (p *FUPool) SetBusyUntil(busy [][]int64) error {
	if len(busy) != len(p.busy) {
		return fmt.Errorf("uarch: %d FU classes, pool has %d", len(busy), len(p.busy))
	}
	for cls := range p.busy {
		if len(busy[cls]) != len(p.busy[cls]) {
			return fmt.Errorf("uarch: %d %v units, pool has %d", len(busy[cls]), FUClass(cls), len(p.busy[cls]))
		}
	}
	for cls := range p.busy {
		copy(p.busy[cls], busy[cls])
	}
	return nil
}

// Reset makes every unit immediately available.
func (p *FUPool) Reset() {
	for cls := range p.busy {
		for i := range p.busy[cls] {
			p.busy[cls][i] = 0
		}
	}
}

// MemPorts tracks per-major-cycle memory port usage. "Loads ... a read port
// is allocated if their value has not been forwarded in the LSQ" and
// "Commit commits the oldest RB entry releasing Store Operations to memory,
// if a memory write port is available" (paper §III).
type MemPorts struct {
	ReadPorts  int
	WritePorts int
	readsUsed  int
	writesUsed int
}

// NewMemPorts returns a port tracker.
func NewMemPorts(read, write int) *MemPorts {
	return &MemPorts{ReadPorts: read, WritePorts: write}
}

// NewCycle resets per-cycle usage; call at each major-cycle boundary.
func (m *MemPorts) NewCycle() { m.readsUsed, m.writesUsed = 0, 0 }

// TryRead allocates a read port for this cycle.
func (m *MemPorts) TryRead() bool {
	if m.readsUsed >= m.ReadPorts {
		return false
	}
	m.readsUsed++
	return true
}

// TryWrite allocates a write port for this cycle.
func (m *MemPorts) TryWrite() bool {
	if m.writesUsed >= m.WritePorts {
		return false
	}
	m.writesUsed++
	return true
}

// ReadsUsed returns reads allocated this cycle.
func (m *MemPorts) ReadsUsed() int { return m.readsUsed }

// WritesUsed returns writes allocated this cycle.
func (m *MemPorts) WritesUsed() int { return m.writesUsed }
