// Package uarch provides the simulated micro-architectural structures ReSim
// models (paper Figure 1): the instruction fetch queue and decouple buffer
// (bounded rings), the reorder buffer and load/store queue (age-ordered
// rings with squash), the rename table, the functional-unit pool (4×ALU,
// 1×MUL, 1×DIV in the evaluated configuration) and memory-port accounting.
package uarch

import "fmt"

// Ring is a bounded FIFO with age-indexed access and truncation, the common
// shape of the IFQ, decouple buffer, reorder buffer and LSQ. Index 0 is the
// oldest entry.
//
// Beyond relative age indexing, every entry also has a stable absolute
// index: the ring counts entries ever removed from the front in base, so an
// entry pushed as the base+count-th lives at absolute index base+count for
// its whole residence, unmoved by PopFront. Absolute indices are the O(1)
// handles the engine stores across structures (a reorder-buffer entry
// holding its LSQ slot, consumer lists naming dependent entries) instead of
// re-searching by sequence number.
type Ring[T any] struct {
	buf   []T
	head  int // index of oldest
	count int
	base  int64 // absolute index of the oldest entry (entries ever popped)
}

// NewRing returns a ring with the given capacity.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("uarch: ring capacity %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Len returns the number of entries.
func (r *Ring[T]) Len() int { return r.count }

// Cap returns the capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Empty reports whether the ring has no entries.
func (r *Ring[T]) Empty() bool { return r.count == 0 }

// Base returns the absolute index of the oldest entry — the number of
// entries ever removed from the front. It is monotonic across PushBack,
// PopFront, TruncateFrom and Clear, and resets to zero only on SetContents
// (whose callers rebuild any stored absolute handles).
func (r *Ring[T]) Base() int64 { return r.base }

// NextAbs returns the absolute index the next PushBack will assign.
func (r *Ring[T]) NextAbs() int64 { return r.base + int64(r.count) }

// slot maps a logical age offset onto the backing array. head+i never
// reaches twice the capacity, so a conditional subtract replaces the
// hardware-division modulo on the engine's hottest accessor.
func (r *Ring[T]) slot(i int) int {
	s := r.head + i
	if s >= len(r.buf) {
		s -= len(r.buf)
	}
	return s
}

// PushBack appends v as the youngest entry; it reports false when full.
func (r *Ring[T]) PushBack(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[r.slot(r.count)] = v
	r.count++
	return true
}

// PushSlot appends a new youngest entry and returns a pointer for the
// caller to initialize in place — the copy-free PushBack for large entry
// types on the engine's fetch/dispatch path. The slot may hold stale bytes
// from a previous resident (DropFront does not clear), so the caller must
// assign a complete value. It panics when full; callers gate on Full.
func (r *Ring[T]) PushSlot() *T {
	if r.Full() {
		panic("uarch: PushSlot on full ring")
	}
	s := r.slot(r.count)
	r.count++
	return &r.buf[s]
}

// PopFront removes and returns the oldest entry.
func (r *Ring[T]) PopFront() (T, bool) {
	var zero T
	if r.count == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count--
	r.base++
	return v, true
}

// DropFront removes the oldest entry without returning or clearing it —
// the copy-free pop for pointer-free element types on the engine's commit
// path. The slot's contents are dead but uncollected until overwritten, so
// element types holding pointers should use PopFront instead. It panics on
// an empty ring, as that is always an engine bug.
func (r *Ring[T]) DropFront() {
	if r.count == 0 {
		panic("uarch: DropFront on empty ring")
	}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count--
	r.base++
}

// Front returns a pointer to the oldest entry without the index
// arithmetic of At(0) — the commit path touches it every retirement. It
// panics on an empty ring, as that is always an engine bug.
func (r *Ring[T]) Front() *T {
	if r.count == 0 {
		panic("uarch: Front on empty ring")
	}
	return &r.buf[r.head]
}

// At returns a pointer to the i-th oldest entry (0 = oldest). It panics on
// out-of-range access, as that is always an engine bug.
func (r *Ring[T]) At(i int) *T {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("uarch: ring index %d out of %d", i, r.count))
	}
	return &r.buf[r.slot(i)]
}

// AtAbs returns a pointer to the entry with absolute index abs (Base() is
// the oldest resident entry, NextAbs()-1 the youngest). It panics when abs
// is not resident, as a stale handle is always an engine bug.
func (r *Ring[T]) AtAbs(abs int64) *T {
	i := abs - r.base
	if i < 0 || i >= int64(r.count) {
		panic(fmt.Sprintf("uarch: absolute ring index %d outside [%d,%d)", abs, r.base, r.base+int64(r.count)))
	}
	return &r.buf[r.slot(int(i))]
}

// Views returns the resident entries as at most two backing-array slices in
// age order (first the span from the oldest entry, then the wrapped
// remainder, nil when the content is contiguous) — the allocation-free scan
// the engine's per-cycle LSQ refresh iterates instead of per-element At
// calls. The slices alias the ring; pushes and pops invalidate them.
func (r *Ring[T]) Views() ([]T, []T) {
	if r.head+r.count <= len(r.buf) {
		return r.buf[r.head : r.head+r.count], nil
	}
	n1 := len(r.buf) - r.head
	return r.buf[r.head:], r.buf[:r.count-n1]
}

// Snapshot returns the entries in age order (oldest first) — the ring's
// complete logical content, independent of the internal head position. It is
// the serialization view checkpoints capture.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[r.slot(i)]
	}
	return out
}

// SetContents replaces the ring's entries with vs in age order (vs[0]
// becomes the oldest), the inverse of Snapshot. It reports an error when vs
// exceeds the capacity; the ring is left cleared in that case. The absolute
// index base restarts at zero: callers restoring serialized state rebuild
// any absolute handles afterwards (checkpoints never carry them).
func (r *Ring[T]) SetContents(vs []T) error {
	r.Clear()
	r.head = 0
	r.base = 0
	if len(vs) > len(r.buf) {
		return fmt.Errorf("uarch: %d entries exceed ring capacity %d", len(vs), len(r.buf))
	}
	copy(r.buf, vs)
	r.count = len(vs)
	return nil
}

// TruncateFrom discards the i-th oldest entry and everything younger
// (squash on mis-speculation recovery). TruncateFrom(Len()) is a no-op.
// Absolute indices of discarded entries are reassigned to future pushes.
func (r *Ring[T]) TruncateFrom(i int) {
	if i < 0 || i > r.count {
		panic(fmt.Sprintf("uarch: truncate index %d out of %d", i, r.count))
	}
	var zero T
	for j := i; j < r.count; j++ {
		r.buf[r.slot(j)] = zero
	}
	r.count = i
}

// Clear empties the ring.
func (r *Ring[T]) Clear() { r.TruncateFrom(0) }
