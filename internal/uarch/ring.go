// Package uarch provides the simulated micro-architectural structures ReSim
// models (paper Figure 1): the instruction fetch queue and decouple buffer
// (bounded rings), the reorder buffer and load/store queue (age-ordered
// rings with squash), the rename table, the functional-unit pool (4×ALU,
// 1×MUL, 1×DIV in the evaluated configuration) and memory-port accounting.
package uarch

import "fmt"

// Ring is a bounded FIFO with age-indexed access and truncation, the common
// shape of the IFQ, decouple buffer, reorder buffer and LSQ. Index 0 is the
// oldest entry.
type Ring[T any] struct {
	buf   []T
	head  int // index of oldest
	count int
}

// NewRing returns a ring with the given capacity.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("uarch: ring capacity %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Len returns the number of entries.
func (r *Ring[T]) Len() int { return r.count }

// Cap returns the capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Empty reports whether the ring has no entries.
func (r *Ring[T]) Empty() bool { return r.count == 0 }

// PushBack appends v as the youngest entry; it reports false when full.
func (r *Ring[T]) PushBack(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
	return true
}

// PopFront removes and returns the oldest entry.
func (r *Ring[T]) PopFront() (T, bool) {
	var zero T
	if r.count == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return v, true
}

// At returns a pointer to the i-th oldest entry (0 = oldest). It panics on
// out-of-range access, as that is always an engine bug.
func (r *Ring[T]) At(i int) *T {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("uarch: ring index %d out of %d", i, r.count))
	}
	return &r.buf[(r.head+i)%len(r.buf)]
}

// Snapshot returns the entries in age order (oldest first) — the ring's
// complete logical content, independent of the internal head position. It is
// the serialization view checkpoints capture.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// SetContents replaces the ring's entries with vs in age order (vs[0]
// becomes the oldest), the inverse of Snapshot. It reports an error when vs
// exceeds the capacity; the ring is left cleared in that case.
func (r *Ring[T]) SetContents(vs []T) error {
	r.Clear()
	r.head = 0
	if len(vs) > len(r.buf) {
		return fmt.Errorf("uarch: %d entries exceed ring capacity %d", len(vs), len(r.buf))
	}
	copy(r.buf, vs)
	r.count = len(vs)
	return nil
}

// TruncateFrom discards the i-th oldest entry and everything younger
// (squash on mis-speculation recovery). TruncateFrom(Len()) is a no-op.
func (r *Ring[T]) TruncateFrom(i int) {
	if i < 0 || i > r.count {
		panic(fmt.Sprintf("uarch: truncate index %d out of %d", i, r.count))
	}
	var zero T
	for j := i; j < r.count; j++ {
		r.buf[(r.head+j)%len(r.buf)] = zero
	}
	r.count = i
}

// Clear empties the ring.
func (r *Ring[T]) Clear() { r.TruncateFrom(0) }
