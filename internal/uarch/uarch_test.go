package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	if !r.Empty() || r.Full() || r.Cap() != 4 {
		t.Fatalf("fresh ring state wrong")
	}
	for i := 1; i <= 4; i++ {
		if !r.PushBack(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.PushBack(5) {
		t.Error("push into full ring succeeded")
	}
	if !r.Full() {
		t.Error("ring should be full")
	}
	for i := 1; i <= 4; i++ {
		v, ok := r.PopFront()
		if !ok || v != i {
			t.Errorf("pop = %d,%t want %d", v, ok, i)
		}
	}
	if _, ok := r.PopFront(); ok {
		t.Error("pop from empty succeeded")
	}
}

func TestRingWrapsAndIndexes(t *testing.T) {
	r := NewRing[int](3)
	r.PushBack(1)
	r.PushBack(2)
	r.PopFront()
	r.PushBack(3)
	r.PushBack(4) // buffer has wrapped
	want := []int{2, 3, 4}
	for i, w := range want {
		if got := *r.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	// Mutation through At is visible.
	*r.At(1) = 30
	if v := *r.At(1); v != 30 {
		t.Error("At did not return a pointer into the ring")
	}
}

func TestRingTruncate(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 6; i++ {
		r.PushBack(i)
	}
	r.TruncateFrom(2) // keep entries 0,1
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	if *r.At(0) != 0 || *r.At(1) != 1 {
		t.Error("surviving entries wrong")
	}
	r.PushBack(99)
	if *r.At(2) != 99 {
		t.Error("push after truncate landed wrong")
	}
	r.TruncateFrom(r.Len()) // no-op
	if r.Len() != 3 {
		t.Error("TruncateFrom(Len) changed length")
	}
	r.Clear()
	if !r.Empty() {
		t.Error("Clear left entries")
	}
}

func TestRingPanicsOnBadIndex(t *testing.T) {
	r := NewRing[int](2)
	r.PushBack(1)
	for _, f := range []func(){
		func() { r.At(1) },
		func() { r.At(-1) },
		func() { r.TruncateFrom(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Ring matches a slice model under random push/pop/truncate.
func TestQuickRingMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		capacity := 1 + rng.Intn(8)
		r := NewRing[int](capacity)
		var model []int
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0:
				ok := r.PushBack(next)
				if ok != (len(model) < capacity) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1:
				v, ok := r.PopFront()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			default:
				i := rng.Intn(len(model) + 1)
				r.TruncateFrom(i)
				model = model[:i]
			}
			if r.Len() != len(model) {
				return false
			}
			for i, v := range model {
				if *r.At(i) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRenameTable(t *testing.T) {
	rt := NewRenameTable()
	if rt.Producer(5) != NoProducer {
		t.Error("fresh table not ready")
	}
	rt.SetProducer(5, 10)
	if rt.Producer(5) != 10 {
		t.Error("producer not recorded")
	}
	rt.SetProducer(5, 12) // younger producer overrides
	rt.ClearIfProducer(5, 10)
	if rt.Producer(5) != 12 {
		t.Error("stale clear removed younger producer")
	}
	rt.ClearIfProducer(5, 12)
	if rt.Producer(5) != NoProducer {
		t.Error("clear failed")
	}
	// r0 is never renamed.
	rt.SetProducer(isa.RegZero, 3)
	if rt.Producer(isa.RegZero) != NoProducer {
		t.Error("r0 was renamed")
	}
	// Absent operands are always ready.
	if rt.Producer(isa.NoReg) != NoProducer {
		t.Error("NoReg not ready")
	}
}

func TestRenameSquash(t *testing.T) {
	rt := NewRenameTable()
	rt.SetProducer(1, 5)
	rt.SetProducer(2, 9)
	rt.SetProducer(3, 15)
	rt.SquashYoungerThan(9)
	if rt.Producer(1) != 5 || rt.Producer(2) != 9 {
		t.Error("squash removed surviving producers")
	}
	if rt.Producer(3) != NoProducer {
		t.Error("squash kept younger producer")
	}
	rt.Reset()
	if rt.Producer(1) != NoProducer {
		t.Error("Reset failed")
	}
}

func TestFUPoolDefaultsMatchPaper(t *testing.T) {
	cfg := DefaultFUConfig()
	if cfg[FUALU].Count != 4 || cfg[FUALU].Latency != 1 {
		t.Errorf("ALU spec %+v", cfg[FUALU])
	}
	if cfg[FUMult].Count != 1 || cfg[FUMult].Latency != 3 {
		t.Errorf("MUL spec %+v", cfg[FUMult])
	}
	if cfg[FUDiv].Count != 1 || cfg[FUDiv].Latency != 10 {
		t.Errorf("DIV spec %+v", cfg[FUDiv])
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFUPoolALUBandwidth(t *testing.T) {
	p := NewFUPool(DefaultFUConfig())
	for i := 0; i < 4; i++ {
		if _, ok := p.TryIssue(FUALU, 100); !ok {
			t.Fatalf("ALU issue %d failed", i)
		}
	}
	if _, ok := p.TryIssue(FUALU, 100); ok {
		t.Error("fifth ALU issue in one cycle succeeded")
	}
	// Pipelined: all four available again next cycle.
	for i := 0; i < 4; i++ {
		if _, ok := p.TryIssue(FUALU, 101); !ok {
			t.Fatalf("ALU issue %d at cycle+1 failed", i)
		}
	}
}

func TestFUPoolDivUnpipelined(t *testing.T) {
	p := NewFUPool(DefaultFUConfig())
	lat, ok := p.TryIssue(FUDiv, 50)
	if !ok || lat != 10 {
		t.Fatalf("div issue lat=%d ok=%t", lat, ok)
	}
	if _, ok := p.TryIssue(FUDiv, 51); ok {
		t.Error("unpipelined div accepted back-to-back")
	}
	if _, ok := p.TryIssue(FUDiv, 59); ok {
		t.Error("div accepted before completing")
	}
	if _, ok := p.TryIssue(FUDiv, 60); !ok {
		t.Error("div not available after latency elapsed")
	}
}

func TestFUPoolMultPipelined(t *testing.T) {
	p := NewFUPool(DefaultFUConfig())
	if _, ok := p.TryIssue(FUMult, 7); !ok {
		t.Fatal("mult issue failed")
	}
	if _, ok := p.TryIssue(FUMult, 7); ok {
		t.Error("one multiplier accepted two ops in a cycle")
	}
	if lat, ok := p.TryIssue(FUMult, 8); !ok || lat != 3 {
		t.Errorf("pipelined mult next-cycle issue lat=%d ok=%t", lat, ok)
	}
}

func TestFUPoolReset(t *testing.T) {
	p := NewFUPool(DefaultFUConfig())
	p.TryIssue(FUDiv, 0)
	p.Reset()
	if _, ok := p.TryIssue(FUDiv, 0); !ok {
		t.Error("div busy after Reset")
	}
}

func TestFUConfigValidate(t *testing.T) {
	var c FUConfig
	c[FUALU] = FUSpec{Count: -1, Latency: 1}
	if err := c.Validate(); err == nil {
		t.Error("negative count accepted")
	}
	c = DefaultFUConfig()
	c[FUDiv].Latency = 0
	if err := c.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestMemPorts(t *testing.T) {
	m := NewMemPorts(2, 1)
	if !m.TryRead() || !m.TryRead() {
		t.Fatal("read ports unavailable")
	}
	if m.TryRead() {
		t.Error("third read port granted")
	}
	if !m.TryWrite() {
		t.Fatal("write port unavailable")
	}
	if m.TryWrite() {
		t.Error("second write port granted")
	}
	if m.ReadsUsed() != 2 || m.WritesUsed() != 1 {
		t.Errorf("usage = %d/%d", m.ReadsUsed(), m.WritesUsed())
	}
	m.NewCycle()
	if !m.TryRead() || !m.TryWrite() {
		t.Error("ports not refreshed by NewCycle")
	}
}

// TestRingSnapshotSetContents: Snapshot/SetContents round-trips the logical
// (age-ordered) content regardless of internal head position.
func TestRingSnapshotSetContents(t *testing.T) {
	r := NewRing[int](4)
	// Rotate the head so the physical layout wraps.
	r.PushBack(9)
	r.PushBack(8)
	r.PopFront()
	r.PopFront()
	for _, v := range []int{1, 2, 3} {
		r.PushBack(v)
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0] != 1 || snap[2] != 3 {
		t.Fatalf("Snapshot = %v, want [1 2 3]", snap)
	}
	fresh := NewRing[int](4)
	if err := fresh.SetContents(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 3 || *fresh.At(0) != 1 || *fresh.At(2) != 3 {
		t.Fatalf("restored ring content wrong: %v", fresh.Snapshot())
	}
	if got, _ := fresh.PopFront(); got != 1 {
		t.Fatalf("restored ring pops %d first, want 1", got)
	}
	if err := fresh.SetContents([]int{1, 2, 3, 4, 5}); err == nil {
		t.Error("SetContents accepted more entries than capacity")
	}
	if fresh.Len() != 0 {
		t.Error("failed SetContents left entries behind")
	}
}

// TestRenameTableProducersRoundTrip: the producer map serializes and
// restores losslessly.
func TestRenameTableProducersRoundTrip(t *testing.T) {
	rt := NewRenameTable()
	rt.SetProducer(3, 41)
	rt.SetProducer(7, 99)
	prod := rt.Producers()
	fresh := NewRenameTable()
	if err := fresh.SetProducers(prod); err != nil {
		t.Fatal(err)
	}
	if fresh.Producer(3) != 41 || fresh.Producer(7) != 99 || fresh.Producer(4) != NoProducer {
		t.Error("restored rename table differs")
	}
	if err := fresh.SetProducers(make([]int64, 100)); err == nil {
		t.Error("SetProducers accepted too many registers")
	}
}

// TestFUPoolBusyUntilRoundTrip: per-unit availability serializes and
// restores losslessly, including unpipelined busy spans.
func TestFUPoolBusyUntilRoundTrip(t *testing.T) {
	p := NewFUPool(DefaultFUConfig())
	p.TryIssue(FUALU, 10)
	p.TryIssue(FUDiv, 10) // busy until 20
	busy := p.BusyUntil()
	fresh := NewFUPool(DefaultFUConfig())
	if err := fresh.SetBusyUntil(busy); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.TryIssue(FUDiv, 15); ok {
		t.Error("restored divider accepted work while busy")
	}
	if _, ok := fresh.TryIssue(FUDiv, 20); !ok {
		t.Error("restored divider refused work after its busy span")
	}
	var wrong FUConfig
	wrong[FUALU] = FUSpec{Count: 1, Latency: 1, Pipelined: true}
	wrong[FUMult] = FUSpec{Count: 1, Latency: 3, Pipelined: true}
	wrong[FUDiv] = FUSpec{Count: 1, Latency: 10}
	if err := NewFUPool(wrong).SetBusyUntil(busy); err == nil {
		t.Error("SetBusyUntil accepted a mismatched pool shape")
	}
}

// TestRingAbsoluteIndexing covers the stable-handle surface the engine's
// event structures rely on: Base advances with every front removal,
// NextAbs names the slot a push will take, AtAbs resolves a resident
// handle for its whole residence, and stale handles panic.
func TestRingAbsoluteIndexing(t *testing.T) {
	r := NewRing[int](3)
	if r.Base() != 0 || r.NextAbs() != 0 {
		t.Fatalf("fresh ring: base=%d nextAbs=%d", r.Base(), r.NextAbs())
	}
	for v := 0; v < 3; v++ {
		if abs := r.NextAbs(); abs != int64(v) {
			t.Fatalf("NextAbs before push %d = %d", v, abs)
		}
		r.PushBack(v * 10)
	}
	r.DropFront() // abs 0 gone
	if r.Base() != 1 || *r.AtAbs(1) != 10 || *r.AtAbs(2) != 20 {
		t.Fatalf("after DropFront: base=%d at1=%d at2=%d", r.Base(), *r.AtAbs(1), *r.AtAbs(2))
	}
	if *r.Front() != 10 {
		t.Fatalf("Front = %d, want 10", *r.Front())
	}
	// Wrapped push reuses the freed slot but gets a fresh absolute index.
	p := r.PushSlot()
	*p = 30
	if r.Base() != 1 || *r.AtAbs(3) != 30 || r.NextAbs() != 4 {
		t.Fatalf("after wrapped PushSlot: base=%d at3=%d next=%d", r.Base(), *r.AtAbs(3), r.NextAbs())
	}
	// Views: wrapped content comes back as two age-ordered spans.
	s1, s2 := r.Views()
	var got []int
	got = append(got, s1...)
	got = append(got, s2...)
	want := []int{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("Views total %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Views content %v, want %v", got, want)
		}
	}
	// Stale and out-of-range handles are engine bugs: they must panic.
	for _, abs := range []int64{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AtAbs(%d) did not panic", abs)
				}
			}()
			r.AtAbs(abs)
		}()
	}
	// SetContents restarts absolute indexing from zero.
	if err := r.SetContents([]int{7, 8}); err != nil {
		t.Fatal(err)
	}
	if r.Base() != 0 || *r.AtAbs(0) != 7 || *r.AtAbs(1) != 8 {
		t.Fatalf("after SetContents: base=%d", r.Base())
	}
}
