package uarch

import (
	"fmt"

	"repro/internal/isa"
)

// NoProducer marks a register whose value is architecturally ready.
const NoProducer int64 = -1

// RenameTable maps each architectural register to the sequence number of its
// youngest in-flight producer (paper §III: "Dispatch ... accesses the Rename
// Table"). Sequence numbers are the engine's global instruction ages.
type RenameTable struct {
	prod [isa.NumRegs]int64
}

// NewRenameTable returns a table with all registers ready.
func NewRenameTable() *RenameTable {
	t := &RenameTable{}
	t.Reset()
	return t
}

// Reset marks every register architecturally ready.
func (t *RenameTable) Reset() {
	for i := range t.prod {
		t.prod[i] = NoProducer
	}
}

// Producer returns the sequence number of the youngest in-flight producer of
// r, or NoProducer. r0 and absent operands are always ready.
func (t *RenameTable) Producer(r isa.Reg) int64 {
	if r == isa.RegZero || r >= isa.NumRegs {
		return NoProducer
	}
	return t.prod[r]
}

// SetProducer records seq as the youngest producer of r.
func (t *RenameTable) SetProducer(r isa.Reg, seq int64) {
	if r == isa.RegZero || r >= isa.NumRegs {
		return
	}
	t.prod[r] = seq
}

// ClearIfProducer marks r ready if seq is still its youngest producer
// (called when the producing instruction writes back or commits).
func (t *RenameTable) ClearIfProducer(r isa.Reg, seq int64) {
	if r == isa.RegZero || r >= isa.NumRegs {
		return
	}
	if t.prod[r] == seq {
		t.prod[r] = NoProducer
	}
}

// Producers returns the full producer map in register order — the
// serialization view checkpoints capture.
func (t *RenameTable) Producers() []int64 {
	out := make([]int64, len(t.prod))
	copy(out, t.prod[:])
	return out
}

// SetProducers restores a producer map captured by Producers. A short slice
// leaves the remaining registers ready; a long one is an error.
func (t *RenameTable) SetProducers(prod []int64) error {
	if len(prod) > len(t.prod) {
		return fmt.Errorf("uarch: %d producers exceed %d registers", len(prod), len(t.prod))
	}
	t.Reset()
	copy(t.prod[:], prod)
	return nil
}

// SquashYoungerThan removes producers with sequence numbers above seq
// (mis-speculation recovery); the engine then re-installs producers for the
// surviving in-flight instructions by walking the reorder buffer.
func (t *RenameTable) SquashYoungerThan(seq int64) {
	for i := range t.prod {
		if t.prod[i] > seq {
			t.prod[i] = NoProducer
		}
	}
}
