package obs

import (
	"math"
	"strings"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	g := r.Gauge("test_gauge", "A test gauge.")
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Dec()
	out := expose(t, r)
	for _, want := range []string{
		"# HELP test_total A test counter.\n# TYPE test_total counter\ntest_total 3\n",
		"# HELP test_gauge A test gauge.\n# TYPE test_gauge gauge\ntest_gauge 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecLabelsSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_labeled", "Labeled gauge.", "tenant")
	v.With("zeta").Set(1)
	v.With("alpha").Set(2)
	v.With("ev\"il\\ten\nant").Set(3)
	out := expose(t, r)
	hostile := `test_labeled{tenant="ev\"il\\ten\nant"} 3`
	if !strings.Contains(out, hostile) {
		t.Errorf("exposition missing escaped series %q in:\n%s", hostile, out)
	}
	// Series render sorted by label value.
	ia, iz := strings.Index(out, `tenant="alpha"`), strings.Index(out, `tenant="zeta"`)
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("series not sorted by label value:\n%s", out)
	}
}

func TestVecZero(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_zeroed", "Zeroed gauge.", "tenant")
	v.With("a").Set(5)
	v.Zero()
	v.With("b").Set(2)
	out := expose(t, r)
	if !strings.Contains(out, `test_zeroed{tenant="a"} 0`) {
		t.Errorf("Zero did not reset existing series:\n%s", out)
	}
	if !strings.Contains(out, `test_zeroed{tenant="b"} 2`) {
		t.Errorf("post-Zero set lost:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "A test histogram.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := expose(t, r)
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecAndBoundaryValues(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_lat_seconds", "Labeled histogram.", []float64{1, 2}, "tenant")
	h := hv.With("a")
	h.Observe(1) // le="1" is inclusive
	h.Observe(2)
	h.Observe(3)
	out := expose(t, r)
	for _, want := range []string{
		`test_lat_seconds_bucket{tenant="a",le="1"} 1`,
		`test_lat_seconds_bucket{tenant="a",le="2"} 2`,
		`test_lat_seconds_bucket{tenant="a",le="+Inf"} 3`,
		`test_lat_seconds_count{tenant="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.CounterFunc("test_fn_total", "Callback counter.", func() float64 { n++; return n })
	r.GaugeFunc("test_fn_gauge", "Callback gauge.", func() float64 { return 1.5 })
	out := expose(t, r)
	if !strings.Contains(out, "test_fn_total 1\n") {
		t.Errorf("callback counter not collected:\n%s", out)
	}
	if !strings.Contains(out, "test_fn_gauge 1.5\n") {
		t.Errorf("callback gauge not collected:\n%s", out)
	}
}

func TestFamiliesInventory(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.")
	r.GaugeVec("b", "B.", "tenant")
	r.HistogramVec("c_seconds", "C.", nil, "tenant")
	fams := r.Families()
	if len(fams) != 3 {
		t.Fatalf("Families: got %d, want 3", len(fams))
	}
	if fams[1].Name != "b" || fams[1].Type != "gauge" || len(fams[1].Labels) != 1 || fams[1].Labels[0] != "tenant" {
		t.Errorf("family b wrong: %+v", fams[1])
	}
	if fams[2].Type != "histogram" {
		t.Errorf("family c wrong: %+v", fams[2])
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Constructors on a nil registry return nil instruments; every method
	// on them must be a no-op, not a panic — this is the detached mode.
	r.Counter("x_total", "X.").Inc()
	r.CounterVec("y_total", "Y.", "l").With("v").Add(2)
	r.Gauge("z", "Z.").Set(1)
	r.GaugeVec("w", "W.", "l").Zero()
	r.GaugeVec("w2", "W.", "l").With("v").Dec()
	r.Histogram("h_seconds", "H.", nil).Observe(1)
	r.HistogramVec("h2_seconds", "H.", nil, "l").With("v").Observe(1)
	r.CounterFunc("f_total", "F.", func() float64 { return 0 })
	r.GaugeFunc("g", "G.", func() float64 { return 0 })
	if r.Families() != nil {
		t.Error("nil registry has families")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Error(err)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "D.")
	mustPanic("duplicate", func() { r.Counter("dup_total", "D.") })
	mustPanic("no help", func() { r.Counter("nohelp_total", "") })
	mustPanic("bad name", func() { r.Counter("bad-name", "B.") })
	mustPanic("bad label", func() { r.CounterVec("bl_total", "B.", "le") })
	mustPanic("bad buckets", func() { r.Histogram("bb_seconds", "B.", []float64{2, 1}) })
	mustPanic("label arity", func() { r.CounterVec("ar_total", "A.", "a", "b").With("only-one") })
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0: "0", 1: "1", 1048576: "1048576", 0.25: "0.25", -3: "-3",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" && got != "Inf" {
		// Only le rendering needs "+Inf" and handles it explicitly; the
		// generic formatter need only not crash.
		_ = got
	}
}

// BenchmarkMetricsHotPath pins the per-event cost of live instruments —
// and of detached (nil) ones, which must stay within noise of free.
func BenchmarkMetricsHotPath(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		c := NewRegistry().Counter("bench_total", "B.")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram", func(b *testing.B) {
		h := NewRegistry().Histogram("bench_seconds", "B.", nil)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.042)
			}
		})
	})
	b.Run("counter-detached", func(b *testing.B) {
		var c *Counter
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-detached", func(b *testing.B) {
		var h *Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(0.042)
		}
	})
}
