package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerJSONDecomposesKV(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "json")
	if err != nil {
		t.Fatal(err)
	}
	jl := lg.Component("jobd")
	jl.Logf("%s", KV("jobd.job_submitted", "job", "j01", "tenant", "alice",
		"err", "boom: worker died"))
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not one JSON record: %v\n%s", err, b.String())
	}
	if rec["msg"] != "jobd.job_submitted" {
		t.Errorf("msg = %v, want event name", rec["msg"])
	}
	if rec["component"] != "jobd" {
		t.Errorf("component = %v", rec["component"])
	}
	if rec["job"] != "j01" || rec["tenant"] != "alice" {
		t.Errorf("attrs not decomposed: %v", rec)
	}
	if rec["err"] != "boom: worker died" {
		t.Errorf("quoted value not unquoted: %q", rec["err"])
	}
}

func TestLoggerTextFallback(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Logf("plain %s message with = signs a=b", "prose")
	if !strings.Contains(b.String(), "plain prose message") {
		t.Errorf("plain message lost: %s", b.String())
	}
}

func TestNewLoggerUnknownFormat(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParseKV(t *testing.T) {
	event, kvs, ok := ParseKV(`sweepd.worker_gone worker=w1 err="read tcp: connection reset"`)
	if !ok || event != "sweepd.worker_gone" {
		t.Fatalf("parse failed: %v %q", ok, event)
	}
	if len(kvs) != 4 || kvs[0] != "worker" || kvs[1] != "w1" ||
		kvs[2] != "err" || kvs[3] != "read tcp: connection reset" {
		t.Errorf("kvs = %v", kvs)
	}
	for _, bad := range []string{"", "a=b first", "event key-without-value", `event k="unterminated`} {
		if _, _, ok := ParseKV(bad); ok {
			t.Errorf("ParseKV(%q) accepted", bad)
		}
	}
}

func TestKVRoundTrip(t *testing.T) {
	line := KV("ev", "k", `value with "quotes" and spaces`, "n", 42)
	event, kvs, ok := ParseKV(line)
	if !ok || event != "ev" {
		t.Fatalf("round trip failed on %q", line)
	}
	if kvs[1] != `value with "quotes" and spaces` || kvs[3] != "42" {
		t.Errorf("round trip mangled values: %v", kvs)
	}
}

func TestNilLogger(t *testing.T) {
	var lg *Logger
	lg.Logf("x")
	lg.Event("e", "k", "v")
	lg.Warn("w")
	if lg.Component("c") != nil || lg.With("k", "v") != nil {
		t.Error("derived loggers from nil should stay nil")
	}
}
