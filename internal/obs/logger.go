// Structured logging for the service stack. The layers (coordinator,
// workers, job platform) expose one hook — Logf(format, args ...any) — and
// render their events through KV, so every line is already
// "event key=value ...". Logger bridges that to log/slog without changing a
// single call site: Logf re-parses the KV rendering into slog attributes,
// so `resimd -log-format json` emits real structured records while tests
// and embedders keep plugging plain printf-style functions.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
)

// Logger wraps a slog.Logger behind the stack's Logf hooks. A nil *Logger
// discards everything, so wiring is optional at every layer.
type Logger struct {
	s *slog.Logger
}

// NewLogger builds a Logger writing to w in the given format: "text"
// (logfmt-style, the default for terminals) or "json" (one JSON object per
// line, for log pipelines).
func NewLogger(w io.Writer, format string) (*Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return &Logger{s: slog.New(h)}, nil
}

// NewSlogLogger wraps an existing slog.Logger (tests inject recording
// handlers).
func NewSlogLogger(s *slog.Logger) *Logger { return &Logger{s: s} }

// Component returns a derived logger stamping every record with
// component=name — one per service layer (jobd, sweepd, worker, resimd).
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With("component", name)}
}

// With returns a derived logger with extra key-value attributes (per-job,
// per-tenant).
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(kvs...)}
}

// Event logs one structured event at info level.
func (l *Logger) Event(event string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Info(event, kvs...)
}

// Warn logs one structured event at warning level.
func (l *Logger) Warn(event string, kvs ...any) {
	if l == nil {
		return
	}
	l.s.Warn(event, kvs...)
}

// Logf is the printf-compatible bridge the layers' Logf hooks plug into.
// A message that renders as a KV line (see KV) is decomposed back into a
// structured record — event name as the message, fields as attributes;
// anything else logs as a plain message. Safe on a nil Logger.
func (l *Logger) Logf(format string, args ...any) {
	if l == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if event, attrs, ok := ParseKV(msg); ok {
		l.s.Info(event, attrs...)
		return
	}
	l.s.Info(msg)
}

// ParseKV parses a KV-rendered line back into its event name and
// alternating key/value pairs (values unquoted). ok is false when the line
// is not a well-formed KV rendering — no event token, or a field without
// '=' — in which case the line should be logged as-is.
func ParseKV(line string) (event string, kvs []any, ok bool) {
	fields, ok := splitKVFields(line)
	if !ok || len(fields) == 0 || strings.Contains(fields[0], "=") {
		return "", nil, false
	}
	event = fields[0]
	for _, f := range fields[1:] {
		k, v, found := strings.Cut(f, "=")
		if !found || k == "" {
			return "", nil, false
		}
		if len(v) >= 2 && v[0] == '"' {
			if uq, err := strconv.Unquote(v); err == nil {
				v = uq
			}
		}
		kvs = append(kvs, k, v)
	}
	return event, kvs, true
}

// splitKVFields splits on spaces, keeping quoted segments (as produced by
// KV's %q quoting) intact. ok is false on an unterminated quote.
func splitKVFields(line string) ([]string, bool) {
	var fields []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote:
			b.WriteByte(c)
			if c == '\\' && i+1 < len(line) {
				i++
				b.WriteByte(line[i])
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			b.WriteByte(c)
			inQuote = true
		case c == ' ':
			if b.Len() > 0 {
				fields = append(fields, b.String())
				b.Reset()
			}
		default:
			b.WriteByte(c)
		}
	}
	if inQuote {
		return nil, false
	}
	if b.Len() > 0 {
		fields = append(fields, b.String())
	}
	return fields, true
}

// KV renders a structured service log line: the event name followed by
// key=value fields, e.g.
//
//	KV("sweepd.worker_registered", "worker", name, "addr", addr)
//	  -> `sweepd.worker_registered worker=w1 addr=127.0.0.1:42`
//
// Values whose rendering contains whitespace or quotes (error messages,
// names with spaces) are quoted so every line stays machine-splittable on
// spaces — and so ParseKV can losslessly decompose the line back into slog
// attributes. A trailing odd key is rendered as key=? rather than dropped,
// so a buggy call site still logs its event.
func KV(event string, kvs ...any) string {
	var b strings.Builder
	b.WriteString(event)
	for i := 0; i < len(kvs); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kvs[i])
		b.WriteByte('=')
		if i+1 >= len(kvs) {
			b.WriteByte('?')
			continue
		}
		v := fmt.Sprintf("%v", kvs[i+1])
		if strings.ContainsAny(v, " \t\n\"") {
			v = fmt.Sprintf("%q", v)
		}
		b.WriteString(v)
	}
	return b.String()
}
