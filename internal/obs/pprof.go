// pprof mounting for the daemon's HTTP server. net/http/pprof registers on
// http.DefaultServeMux as an import side effect, which would expose
// profiling to every importer unconditionally; RegisterPprof instead mounts
// the same handlers explicitly, so resimd serves them only behind -pprof.
package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the runtime profiling endpoints under /debug/pprof/
// on mux: the index, cmdline, profile (CPU), symbol and trace handlers,
// plus every runtime/pprof named profile (heap, goroutine, block, mutex)
// via the index handler's path dispatch.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
