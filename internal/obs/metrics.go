// Package obs is the service stack's observability layer: a stdlib-only
// metrics registry with Prometheus text exposition, structured logging on
// log/slog behind the Logf hooks the layers already expose, and pprof
// mounting for the daemon's HTTP server.
//
// The registry holds labeled families of counters, gauges and fixed-bucket
// histograms. Every family carries mandatory HELP text and a TYPE, so the
// exposition is uniform by construction; Families lets tooling (cmd/doclint)
// diff the registered inventory against documentation. Instruments are
// nil-safe: every method no-ops on a nil receiver, so a layer built without
// a registry attached pays one nil check per event — observability detaches
// to near-zero cost instead of demanding stub plumbing.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the default histogram bucket layout for latencies in
// seconds: 1ms to 10min, roughly 2.5x apart — wide enough to span a queue
// wait on an idle platform and a multi-minute sweep.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is a set of metric families. Build one with NewRegistry;
// constructors on a nil *Registry return nil instruments whose methods
// no-op, so call sites never branch on whether observability is wired.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// FamilyInfo describes one registered family — the inventory row tooling
// compares against docs/OBSERVABILITY.md.
type FamilyInfo struct {
	Name   string
	Type   string // "counter", "gauge" or "histogram"
	Help   string
	Labels []string
}

// family is one registered metric family.
type family struct {
	name    string
	typ     string
	help    string
	labels  []string
	buckets []float64 // histograms only

	collect func() float64 // Func collectors; nil otherwise

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// series is one labeled instrument inside a family.
type series struct {
	labelValues []string
	value       atomicFloat // counters and gauges
	hist        *histState  // histograms
}

// atomicFloat is a float64 with atomic Add/Set via CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(d float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}
func (a *atomicFloat) Set(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Get() float64  { return math.Float64frombits(a.bits.Load()) }

// histState is one histogram series: non-cumulative per-bucket counts (the
// writer cumulates), plus sum and count.
type histState struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomicFloat
	count  atomic.Uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates and installs a family; registration errors are
// programmer errors and panic.
func (r *Registry) register(name, typ, help string, labels []string, buckets []float64, collect func() float64) *family {
	if !metricName.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if help == "" {
		panic("obs: metric " + name + " registered without HELP text")
	}
	for _, l := range labels {
		if !labelName.MatchString(l) || l == "le" {
			panic("obs: metric " + name + " has invalid label " + strconv.Quote(l))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: metric " + name + " has non-increasing buckets")
		}
	}
	f := &family{name: name, typ: typ, help: help,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series), collect: collect}
	if typ == "histogram" {
		if len(buckets) == 0 {
			buckets = DurationBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: metric " + name + " registered twice")
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// with returns (creating on demand) the series for the label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.typ == "histogram" {
			s.hist = &histState{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing metric. All methods no-op on nil.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (must be non-negative; not enforced — the source is trusted).
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.s.value.Add(d)
}

// Set overwrites the counter's value. Reserved for counters mirroring an
// external monotonic source (a snapshot struct another lock guards), where
// re-applying the source's absolute value is the race-free way to publish.
func (c *Counter) Set(v float64) {
	if c == nil {
		return
	}
	c.s.value.Set(v)
}

// Gauge is a metric that can go up and down. All methods no-op on nil.
type Gauge struct{ s *series }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.value.Set(v)
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.s.value.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Histogram accumulates observations into fixed buckets. All methods no-op
// on nil.
type Histogram struct{ s *series }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	st := h.s.hist
	i := sort.SearchFloat64s(st.bounds, v) // first bound >= v (le semantics)
	st.counts[i].Add(1)
	st.sum.Add(v)
	st.count.Add(1)
}

// CounterVec is a counter family with labels. With on nil returns nil.
type CounterVec struct{ f *family }

// With returns the counter for the label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.f.with(labelValues)}
}

// GaugeVec is a gauge family with labels. With on nil returns nil.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.f.with(labelValues)}
}

// Zero sets every existing series in the family to zero. Snapshot-applied
// gauge families call it before re-applying, so a label set that vanished
// from the snapshot (a tenant going idle) reads 0 instead of its last value.
func (v *GaugeVec) Zero() {
	if v == nil {
		return
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	for _, s := range v.f.series {
		s.value.Set(0)
	}
}

// HistogramVec is a histogram family with labels. With on nil returns nil.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (created on first use).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{s: v.f.with(labelValues)}
}

// Counter registers an unlabeled counter family. nil receiver returns nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, "counter", help, nil, nil, nil)
	return &Counter{s: f.with(nil)}
}

// CounterVec registers a labeled counter family. nil receiver returns nil.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, "counter", help, labels, nil, nil)}
}

// Gauge registers an unlabeled gauge family. nil receiver returns nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, "gauge", help, nil, nil, nil)
	return &Gauge{s: f.with(nil)}
}

// GaugeVec registers a labeled gauge family. nil receiver returns nil.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, "gauge", help, labels, nil, nil)}
}

// Histogram registers an unlabeled histogram family with the given bucket
// upper bounds (nil = DurationBuckets). nil receiver returns nil.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.register(name, "histogram", help, nil, buckets, nil)
	return &Histogram{s: f.with(nil)}
}

// HistogramVec registers a labeled histogram family with the given bucket
// upper bounds (nil = DurationBuckets). nil receiver returns nil.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, "histogram", help, labels, buckets, nil)}
}

// CounterFunc registers a counter family whose value is read from fn at
// exposition time — for layers that already keep their own atomics
// (tracecache). No-op on a nil receiver.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, "counter", help, nil, nil, fn)
}

// GaugeFunc registers a gauge family whose value is read from fn at
// exposition time. No-op on a nil receiver.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, "gauge", help, nil, nil, fn)
}

// Families returns the registered inventory in registration order.
func (r *Registry) Families() []FamilyInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, len(r.families))
	for i, f := range r.families {
		out[i] = FamilyInfo{Name: f.name, Type: f.typ, Help: f.help,
			Labels: append([]string(nil), f.labels...)}
	}
	return out
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE lines for each family, series
// sorted by label values, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.collect()))
		} else {
			f.mu.Lock()
			keys := append([]string(nil), f.order...)
			snap := make([]*series, len(keys))
			for i, k := range keys {
				snap[i] = f.series[k]
			}
			f.mu.Unlock()
			sort.Sort(&seriesSort{keys, snap})
			for _, s := range snap {
				writeSeries(&b, f, s)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// seriesSort orders series by label-value key for stable output.
type seriesSort struct {
	keys []string
	s    []*series
}

func (x *seriesSort) Len() int           { return len(x.keys) }
func (x *seriesSort) Less(a, b int) bool { return x.keys[a] < x.keys[b] }
func (x *seriesSort) Swap(a, b int) {
	x.keys[a], x.keys[b] = x.keys[b], x.keys[a]
	x.s[a], x.s[b] = x.s[b], x.s[a]
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	if f.typ != "histogram" {
		b.WriteString(f.name)
		writeLabels(b, f.labels, s.labelValues, "", "")
		fmt.Fprintf(b, " %s\n", formatValue(s.value.Get()))
		return
	}
	st := s.hist
	cum := uint64(0)
	for i := range st.counts {
		cum += st.counts[i].Load()
		le := "+Inf"
		if i < len(st.bounds) {
			le = formatValue(st.bounds[i])
		}
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, s.labelValues, "le", le)
		fmt.Fprintf(b, " %d\n", cum)
	}
	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, s.labelValues, "", "")
	fmt.Fprintf(b, " %s\n", formatValue(st.sum.Get()))
	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, s.labelValues, "", "")
	fmt.Fprintf(b, " %d\n", st.count.Load())
}

// writeLabels renders {k="v",...}, appending the extra pair (histograms'
// le) when extraKey is non-empty. No braces print for a bare series.
func writeLabels(b *strings.Builder, names, values []string, extraKey, extraVal string) {
	if len(names) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// formatValue renders integral values without an exponent (1048576, not
// 1.048576e+06) and everything else in shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
}
