package tables

import (
	"context"
	"strings"
	"testing"
)

// small keeps harness tests fast; the full budget runs in resim-bench.
var small = Options{Instructions: 30_000}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		// V5 runs a faster minor clock than V4, so every V5 number must
		// exceed its V4 counterpart (105/84 = 1.25x exactly).
		if r.PerfectV5MIPS <= r.PerfectV4MIPS || r.CacheV5MIPS <= r.CacheV4MIPS {
			t.Errorf("%s: V5 not faster than V4", r.Benchmark)
		}
		// Table 2's headline: every ReSim configuration beats FAST's
		// reported speed by a wide margin.
		if r.CacheV4MIPS < 2*r.FASTReported {
			t.Errorf("%s: cache-config V4 MIPS %.2f not well above FAST %.2f",
				r.Benchmark, r.CacheV4MIPS, r.FASTReported)
		}
	}
	// Paper shape, left portion: bzip2 fastest, parser slowest.
	if !(byName["bzip2"].PerfectV4MIPS > byName["gzip"].PerfectV4MIPS) {
		t.Error("bzip2 not fastest in perfect-memory portion")
	}
	if !(byName["parser"].PerfectV4MIPS < byName["gzip"].PerfectV4MIPS) {
		t.Error("parser not slowest among gzip/parser")
	}
	// Right portion: gzip fastest (cache-resident).
	for _, n := range []string{"bzip2", "parser", "vortex", "vpr"} {
		if byName[n].CacheV4MIPS >= byName["gzip"].CacheV4MIPS {
			t.Errorf("cache portion: %s (%.2f) >= gzip (%.2f)",
				n, byName[n].CacheV4MIPS, byName["gzip"].CacheV4MIPS)
		}
	}
	avg := Table1Averages(rows)
	if avg.PerfectV4MIPS <= 0 || avg.Benchmark != "Average" {
		t.Errorf("averages broken: %+v", avg)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"gzip", "Average", "Virtex4", "FAST"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2IncludesAllSimulators(t *testing.T) {
	rows, err := Table2(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	var resimModeled []Table2Row
	for _, r := range rows {
		names[r.Simulator] = true
		if r.Simulator == "ReSim" && r.Source == "modeled" {
			resimModeled = append(resimModeled, r)
		}
	}
	for _, want := range []string{"PTLsim", "sim-outorder", "GEMS", "FAST", "A-Ports", "ReSim"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	if len(resimModeled) != 2 {
		t.Fatalf("want 2 modeled ReSim rows, got %d", len(resimModeled))
	}
	// The paper's claim: ReSim outperforms the best reported hardware
	// simulator (A-Ports, 4.7 MIPS) by at least a factor of ~5 — with our
	// slightly slower synthetic IPCs we require at least 3x here.
	for _, r := range resimModeled {
		if r.SpeedMIPS < 3*4.7 {
			t.Errorf("ReSim modeled %.2f MIPS, want >= 3x A-Ports (14.1)", r.SpeedMIPS)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "measured") || !strings.Contains(out, "reported") {
		t.Error("render missing provenance tags")
	}
}

func TestTable3Consistency(t *testing.T) {
	rows, err := Table3(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Bits/instr must be within the O..B record-size envelope.
		if r.BitsPerInstr < 24 || r.BitsPerInstr > 89 {
			t.Errorf("%s: bits/instr = %.2f outside [24,89]", r.Benchmark, r.BitsPerInstr)
		}
		// Internal consistency: MB/s = MIPS * bits / 8.
		want := r.ThroughputMIPS * r.BitsPerInstr / 8
		if diff := r.TraceMBps - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: trace bandwidth inconsistent: %.2f vs %.2f", r.Benchmark, r.TraceMBps, want)
		}
	}
	avg := Table3Averages(rows)
	if avg.BitsPerInstr < 30 || avg.BitsPerInstr > 55 {
		t.Errorf("average bits/instr = %.2f, want near the paper's 43.44", avg.BitsPerInstr)
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "Gb/s") {
		t.Error("render missing bandwidth summary")
	}
}

func TestTable4AndRender(t *testing.T) {
	b, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	total := b.Total()
	if total.Slices < 12000 || total.Slices > 12600 {
		t.Errorf("total slices = %d, want ~12273", total.Slices)
	}
	if total.BRAMs != 7 {
		t.Errorf("BRAMs = %d, want 7", total.BRAMs)
	}
	out := RenderTable4(b)
	for _, want := range []string{"Table 4", "FAST (reported)", "29230"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	for fig, wantK := range map[int]string{2: "11 minor cycles", 3: "8 minor cycles", 4: "7 minor cycles"} {
		out, err := RenderFigure(fig, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, wantK) {
			t.Errorf("figure %d missing %q:\n%s", fig, wantK, out)
		}
	}
	if _, err := RenderFigure(5, 4); err == nil {
		t.Error("figure 5 accepted")
	}
	if _, err := RenderFigure(2, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestTraceCompressionExtension(t *testing.T) {
	rows, err := TraceCompression(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 1.2 {
			t.Errorf("%s: compression ratio %.2f < 1.2", r.Benchmark, r.Ratio)
		}
		if r.CompGbps >= r.RawGbps {
			t.Errorf("%s: compression did not reduce bandwidth", r.Benchmark)
		}
		if !r.FitsGigE {
			t.Errorf("%s: compressed stream still exceeds 1 Gb/s (%.2f)", r.Benchmark, r.CompGbps)
		}
	}
	out := RenderCompression(rows)
	if !strings.Contains(out, "fits GigE") {
		t.Error("render missing header")
	}
}

func TestPredictorSweep(t *testing.T) {
	rows, err := PredictorSweep(context.Background(), small, "gzip")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PredictorRow{}
	for _, r := range rows {
		byName[r.Predictor] = r
	}
	// Perfect prediction dominates; the real predictors beat statics.
	if byName["perfect"].IPC < byName["2lev (paper)"].IPC {
		t.Error("perfect BP slower than 2-level")
	}
	if byName["perfect"].MispredRate != 0 {
		t.Error("perfect BP mispredicted")
	}
	if byName["2lev (paper)"].MispredRate >= byName["nottaken"].MispredRate {
		t.Error("2-level predictor no better than static not-taken")
	}
	if byName["comb"].StorageBits <= byName["2lev (paper)"].StorageBits {
		t.Error("combined predictor should cost more state than 2-level")
	}
	out := RenderPredictorSweep(rows, "gzip")
	if !strings.Contains(out, "2lev (paper)") || !strings.Contains(out, "perfect") {
		t.Error("render incomplete")
	}
	if _, err := PredictorSweep(context.Background(), small, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWrongPathSweep(t *testing.T) {
	rows, err := WrongPathSweep(context.Background(), small, "parser")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Total trace volume grows monotonically with block length (the
	// per-record average need not: wrong-path records skew the mix).
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalBits < rows[i-1].TotalBits {
			t.Errorf("total bits not monotone: %v then %v", rows[i-1], rows[i])
		}
	}
	// Zero-length blocks starve fetch on every misprediction.
	if rows[0].BlockLen != 0 || rows[0].StarvedCycles == 0 {
		t.Errorf("zero-block row unexpected: %+v", rows[0])
	}
	// The conservative length starves less than the zero length and models
	// at least as much wrong-path cache traffic (pollution only appears
	// when branch resolution is delayed; core's
	// TestWrongPathLoadsPolluteDCache pins that mechanism directly).
	conservative := rows[3]
	if conservative.StarvedCycles >= rows[0].StarvedCycles {
		t.Errorf("conservative block starves as much as none: %d vs %d",
			conservative.StarvedCycles, rows[0].StarvedCycles)
	}
	if conservative.DCacheMisses < rows[0].DCacheMisses {
		t.Errorf("longer blocks lost cache traffic: %d vs %d misses",
			conservative.DCacheMisses, rows[0].DCacheMisses)
	}
	out := RenderWrongPathSweep(rows, "parser", 20)
	if !strings.Contains(out, "RB+IFQ") {
		t.Error("render missing conservative-size note")
	}
}

func TestAblationNarrative(t *testing.T) {
	out := Ablation(4)
	for _, want := range []string{"serial", "parallel", "area 1.0x", "4.0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}
