// Package tables regenerates the paper's evaluation artifacts — Tables 1-4
// and the pipeline organization Figures 2-4 — from this repository's
// implementations. Each experiment's provenance (measured here vs reported
// in the paper) is explicit in the rendered output.
package tables

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// newL1 builds the paper's 32K/8-way/64B L1 configuration.
func newL1(name string) cache.Model { return cache.New(cache.L1Config32K(name)) }

// Options bound the simulated instruction budget per benchmark point.
type Options struct {
	Instructions uint64 // correct-path instructions per benchmark
	// Traces memoizes generated traces across every table and figure
	// generator: the tables iterate configurations over the same five
	// workloads, so one Options value (or the process-wide default) makes
	// each distinct (workload, trace config, budget) generate exactly once
	// across the whole evaluation suite. nil selects tracecache.Shared().
	Traces *tracecache.Cache
}

// DefaultOptions simulates 200k instructions per point: enough to warm the
// predictor and caches while keeping the full suite interactive.
func DefaultOptions() Options { return Options{Instructions: 200_000} }

func (o Options) instructions() uint64 {
	if o.Instructions == 0 {
		return DefaultOptions().Instructions
	}
	return o.Instructions
}

func (o Options) traces() *tracecache.Cache {
	if o.Traces != nil {
		return o.Traces
	}
	return tracecache.Shared()
}

// fastReportedMuops is FAST's reported per-benchmark simulation speed in
// simulated Muops/s (Table 1, last column; perfect branch prediction).
var fastReportedMuops = map[string]float64{
	"gzip": 2.95, "bzip2": 3.51, "parser": 2.82, "vortex": 2.19, "vpr": 2.48,
}

// runProfile simulates one profile under cfg and returns the result. The
// trace comes from the given cache, so the many table generators that pair
// the same workload with the same trace-shaping parameters share one
// generation.
func runProfile(ctx context.Context, traces *tracecache.Cache, p workload.Profile, cfg core.Config, limit uint64) (core.Result, error) {
	src, startPC, err := tracecache.SourceFor(ctx, traces, p, cfg.TraceConfig(), limit)
	if err != nil {
		return core.Result{}, err
	}
	eng, err := core.New(cfg, src, startPC)
	if err != nil {
		return core.Result{}, err
	}
	return eng.RunContext(ctx)
}

// Table1Row is one benchmark row of Table 1.
type Table1Row struct {
	Benchmark string

	// Left portion: 4-issue, 2-level BP, perfect memory, K = N+3.
	PerfectIPC    float64
	PerfectV4MIPS float64
	PerfectV5MIPS float64

	// Right portion: 2-issue, perfect BP, 32K L1s, K = N+4.
	CacheIPC    float64
	CacheV4MIPS float64
	CacheV5MIPS float64

	// FAST's reported speed (simulated Muops/s), for the comparison column.
	FASTReported float64
}

// Table1 regenerates both portions of Table 1.
func Table1(ctx context.Context, opts Options) ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range workload.Profiles() {
		row := Table1Row{Benchmark: p.Name, FASTReported: fastReportedMuops[p.Name]}

		left := core.DefaultConfig()
		res, err := runProfile(ctx, opts.traces(), p, left, opts.instructions())
		if err != nil {
			return nil, fmt.Errorf("table1 left %s: %w", p.Name, err)
		}
		k := left.MinorCyclesPerMajor()
		row.PerfectIPC = res.IPC()
		row.PerfectV4MIPS = fpga.SimulationMIPS(fpga.Virtex4, k, res.IPC())
		row.PerfectV5MIPS = fpga.SimulationMIPS(fpga.Virtex5, k, res.IPC())

		right := core.FASTComparisonConfig()
		res, err = runProfile(ctx, opts.traces(), p, right, opts.instructions())
		if err != nil {
			return nil, fmt.Errorf("table1 right %s: %w", p.Name, err)
		}
		k = right.MinorCyclesPerMajor()
		row.CacheIPC = res.IPC()
		row.CacheV4MIPS = fpga.SimulationMIPS(fpga.Virtex4, k, res.IPC())
		row.CacheV5MIPS = fpga.SimulationMIPS(fpga.Virtex5, k, res.IPC())

		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Averages returns the column means, the paper's "Average" row.
func Table1Averages(rows []Table1Row) Table1Row {
	avg := Table1Row{Benchmark: "Average"}
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.PerfectIPC += r.PerfectIPC
		avg.PerfectV4MIPS += r.PerfectV4MIPS
		avg.PerfectV5MIPS += r.PerfectV5MIPS
		avg.CacheIPC += r.CacheIPC
		avg.CacheV4MIPS += r.CacheV4MIPS
		avg.CacheV5MIPS += r.CacheV5MIPS
		avg.FASTReported += r.FASTReported
	}
	n := float64(len(rows))
	avg.PerfectIPC /= n
	avg.PerfectV4MIPS /= n
	avg.PerfectV5MIPS /= n
	avg.CacheIPC /= n
	avg.CacheV4MIPS /= n
	avg.CacheV5MIPS /= n
	avg.FASTReported /= n
	return avg
}

// RenderTable1 formats the rows in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: ReSim Simulation Performance (measured IPC x modeled FPGA clock)\n")
	sb.WriteString("                 Perfect Memory System          32KByte L1 Cache\n")
	sb.WriteString("                 ReSim 4-issue, 2-lev BP        ReSim 2-issue, perfect BP   FAST (reported)\n")
	sb.WriteString("SPEC Program     Virtex4 MIPS  Virtex5 MIPS     Virtex4 MIPS  Virtex5 MIPS  MuOps\n")
	all := append(append([]Table1Row{}, rows...), Table1Averages(rows))
	for _, r := range all {
		fmt.Fprintf(&sb, "%-16s %8.2f %13.2f %12.2f %13.2f %10.2f\n",
			r.Benchmark, r.PerfectV4MIPS, r.PerfectV5MIPS, r.CacheV4MIPS, r.CacheV5MIPS, r.FASTReported)
	}
	return sb.String()
}

// Table2Row is one simulator comparison row.
type Table2Row struct {
	Simulator string
	ISA       string
	SpeedMIPS float64
	Source    string // "reported", "modeled" or "measured"
}

// Table2 regenerates the simulator comparison: the paper's reported
// numbers, our modeled ReSim configurations on Virtex-5, and this
// repository's own software engine measured on the host (the sim-outorder
// analog).
func Table2(ctx context.Context, opts Options) ([]Table2Row, error) {
	rows := []Table2Row{
		{"PTLsim", "x86-64", 0.27, "reported"},
		{"sim-outorder", "PISA", 0.30, "reported"},
		{"GEMS", "Sparc", 0.07, "reported"},
		{"FAST", "x86, gshare BP", 1.2, "reported"},
		{"FAST", "x86, perfect BP", 2.79, "reported"},
		{"A-Ports", "MIPS subset, 4-wide", 4.70, "reported"},
	}

	// ReSim 2-wide, perfect BP, caches, Virtex-5 (Table 1 right config).
	right := core.FASTComparisonConfig()
	var cacheIPCSum, perfIPCSum float64
	n := 0
	for _, p := range workload.Profiles() {
		res, err := runProfile(ctx, opts.traces(), p, right, opts.instructions())
		if err != nil {
			return nil, err
		}
		cacheIPCSum += res.IPC()
		n++
	}
	rows = append(rows, Table2Row{
		"ReSim", "PISA-like, 2-wide, perfect BP, Virtex5",
		fpga.SimulationMIPS(fpga.Virtex5, right.MinorCyclesPerMajor(), cacheIPCSum/float64(n)),
		"modeled",
	})

	// ReSim 4-wide, 2-level BP, perfect memory, Virtex-5 (Table 1 left).
	left := core.DefaultConfig()
	var hostSum float64
	for _, p := range workload.Profiles() {
		prog, err := p.Build()
		if err != nil {
			return nil, err
		}
		res, hs, err := baseline.ExecutionDriven(ctx, left, prog, opts.instructions())
		if err != nil {
			return nil, err
		}
		perfIPCSum += res.IPC()
		hostSum += hs.HostMIPS
	}
	rows = append(rows,
		Table2Row{
			"ReSim", "PISA-like, 4-wide, 2-lev BP, Virtex5",
			fpga.SimulationMIPS(fpga.Virtex5, left.MinorCyclesPerMajor(), perfIPCSum/float64(n)),
			"modeled",
		},
		Table2Row{
			"this repo (Go engine)", "PISA-like, 4-wide, execution-driven",
			hostSum / float64(n),
			"measured",
		},
	)
	return rows, nil
}

// RenderTable2 formats the comparison.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Architectural Simulator Performance\n")
	fmt.Fprintf(&sb, "%-24s %-40s %12s  %s\n", "Simulator", "ISA", "Speed (MIPS)", "source")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s %-40s %12.2f  %s\n", r.Simulator, r.ISA, r.SpeedMIPS, r.Source)
	}
	return sb.String()
}

// Table3Row is one row of the trace-throughput table.
type Table3Row struct {
	Benchmark      string
	BitsPerInstr   float64
	ThroughputMIPS float64 // incl. mis-speculated instructions, Virtex-4
	TraceMBps      float64
	WrongPathShare float64 // wrong-path fetched / committed
}

// Table3 regenerates the trace-demand statistics: perfect memory system,
// Virtex-4, 4-wide, 2-level BP (paper §V).
func Table3(ctx context.Context, opts Options) ([]Table3Row, error) {
	cfg := core.DefaultConfig()
	k := cfg.MinorCyclesPerMajor()
	var rows []Table3Row
	for _, p := range workload.Profiles() {
		src, startPC, err := tracecache.SourceFor(ctx, opts.traces(), p, cfg.TraceConfig(), opts.instructions())
		if err != nil {
			return nil, err
		}
		// Tee the stream through an accounting layer to measure bits.
		acct := &bitAccounting{src: src}
		eng, err := core.New(cfg, acct, startPC)
		if err != nil {
			return nil, err
		}
		res, err := eng.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		bpi := float64(acct.bits) / float64(acct.records)
		thr := fpga.SimulationMIPS(fpga.Virtex4, k, res.TotalIPC())
		rows = append(rows, Table3Row{
			Benchmark:      p.Name,
			BitsPerInstr:   bpi,
			ThroughputMIPS: thr,
			TraceMBps:      fpga.TraceBandwidthMBps(thr, bpi),
			WrongPathShare: res.WrongPathOverhead(),
		})
	}
	return rows, nil
}

// Table3Averages returns the mean row.
func Table3Averages(rows []Table3Row) Table3Row {
	avg := Table3Row{Benchmark: "Average"}
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.BitsPerInstr += r.BitsPerInstr
		avg.ThroughputMIPS += r.ThroughputMIPS
		avg.TraceMBps += r.TraceMBps
		avg.WrongPathShare += r.WrongPathShare
	}
	n := float64(len(rows))
	avg.BitsPerInstr /= n
	avg.ThroughputMIPS /= n
	avg.TraceMBps /= n
	avg.WrongPathShare /= n
	return avg
}

// RenderTable3 formats the rows in the paper's layout.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: ReSim Throughput Statistics (perfect memory, Virtex-4)\n")
	fmt.Fprintf(&sb, "%-10s %12s %22s %22s %12s\n",
		"SPEC", "bits/Instr", "Sim Thruput (MIPS)", "Trace Thruput (MB/s)", "wrong-path")
	all := append(append([]Table3Row{}, rows...), Table3Averages(rows))
	for _, r := range all {
		fmt.Fprintf(&sb, "%-10s %12.2f %22.2f %22.2f %11.1f%%\n",
			r.Benchmark, r.BitsPerInstr, r.ThroughputMIPS, r.TraceMBps, 100*r.WrongPathShare)
	}
	avg := Table3Averages(rows)
	fmt.Fprintf(&sb, "Average trace demand: %.2f Gb/s (paper: ~1.1 Gb/s exceeding gigabit Ethernet)\n",
		fpga.TraceBandwidthGbps(avg.ThroughputMIPS, avg.BitsPerInstr))
	return sb.String()
}

// bitAccounting counts encoded bits of every record that flows to the
// engine.
type bitAccounting struct {
	src     trace.Source
	bits    uint64
	records uint64
}

func (a *bitAccounting) Next() (trace.Record, error) {
	r, err := a.src.Next()
	if err != nil {
		return r, err
	}
	a.bits += uint64(r.BitLen())
	a.records++
	return r, nil
}

// CompressionRow compares the raw and delta-compressed trace encodings for
// one benchmark (extension to Table 3; see internal/trace/compress.go).
type CompressionRow struct {
	Benchmark string
	RawBits   float64 // bits/instr, version-1 container
	CompBits  float64 // bits/instr, delta-coded container
	Ratio     float64
	RawGbps   float64 // at the Virtex-4 Table 3 throughput
	CompGbps  float64
	FitsGigE  bool // compressed stream fits 1 Gb/s Ethernet
}

// TraceCompression runs the trace-bandwidth extension experiment: the paper
// notes the raw trace demand (~1.1 Gb/s) exceeds gigabit Ethernet; stateful
// delta coding of addresses and branch PCs shrinks it below that line.
func TraceCompression(ctx context.Context, opts Options) ([]CompressionRow, error) {
	t3, err := Table3(ctx, opts)
	if err != nil {
		return nil, err
	}
	thr := map[string]float64{}
	for _, r := range t3 {
		thr[r.Benchmark] = r.ThroughputMIPS
	}
	cfg := core.DefaultConfig()
	var rows []CompressionRow
	for _, p := range workload.Profiles() {
		src, _, err := tracecache.SourceFor(ctx, opts.traces(), p, cfg.TraceConfig(), opts.instructions())
		if err != nil {
			return nil, err
		}
		var rawBits, compBits, n uint64
		var st traceCodecProbe
		for {
			rec, err := src.Next()
			if err != nil {
				break
			}
			rawBits += uint64(rec.BitLen())
			compBits += uint64(st.bitLen(rec))
			n++
		}
		row := CompressionRow{
			Benchmark: p.Name,
			RawBits:   float64(rawBits) / float64(n),
			CompBits:  float64(compBits) / float64(n),
		}
		row.Ratio = row.RawBits / row.CompBits
		row.RawGbps = fpga.TraceBandwidthGbps(thr[p.Name], row.RawBits)
		row.CompGbps = fpga.TraceBandwidthGbps(thr[p.Name], row.CompBits)
		row.FitsGigE = row.CompGbps <= 1.0
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCompression formats the extension experiment.
func RenderCompression(rows []CompressionRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: delta-compressed trace vs raw (Table 3 bandwidth concern)\n")
	fmt.Fprintf(&sb, "%-10s %10s %11s %7s %9s %10s %9s\n",
		"SPEC", "raw b/i", "comp b/i", "ratio", "raw Gb/s", "comp Gb/s", "fits GigE")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10.2f %11.2f %6.2fx %9.2f %10.2f %9t\n",
			r.Benchmark, r.RawBits, r.CompBits, r.Ratio, r.RawGbps, r.CompGbps, r.FitsGigE)
	}
	return sb.String()
}

// traceCodecProbe mirrors trace's compressed-codec sizing without emitting
// bytes.
type traceCodecProbe struct {
	st trace.CompressedSizer
}

func (p *traceCodecProbe) bitLen(r trace.Record) int {
	n := p.st.BitLen(r)
	p.st.Advance(r)
	return n
}

// Table4 regenerates the area table for the reference configuration.
func Table4() (fpga.Breakdown, error) {
	cfg := core.DefaultConfig()
	cfg.ICache = newL1("il1")
	cfg.DCache = newL1("dl1")
	return fpga.EstimateArea(cfg)
}

// RenderTable4 formats the area table plus the FAST comparison.
func RenderTable4(b fpga.Breakdown) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Area Cost on a Virtex 4 (xc4vlx40) device [modeled]\n")
	sb.WriteString(b.Render())
	t := b.Total()
	fmt.Fprintf(&sb, "FAST (reported): 29230 slices, 172 BRAMs -> %.1fx slices, %.0fx BRAMs vs ReSim\n",
		29230/float64(t.Slices), 172/float64(t.BRAMs))
	return sb.String()
}

// RenderFigure renders the minor-cycle schedule figure (2, 3 or 4) for an
// n-wide processor.
func RenderFigure(figure, n int) (string, error) {
	var org sched.Organization
	switch figure {
	case 2:
		org = sched.OrgSimple
	case 3:
		org = sched.OrgImproved
	case 4:
		org = sched.OrgOptimized
	default:
		return "", fmt.Errorf("tables: no figure %d (have 2, 3, 4)", figure)
	}
	s, err := sched.Build(org, n)
	if err != nil {
		return "", err
	}
	if err := s.Validate(); err != nil {
		return "", err
	}
	return s.Render(), nil
}

// Ablation summarizes the §IV serial-vs-parallel design measurement through
// the FPGA model: a 4-wide parallel datapath would shorten the major cycle
// but runs 22% slower and costs ~4x the area, while FPGA memories cannot
// provide the required port counts.
func Ablation(width int) string {
	var sb strings.Builder
	dev := fpga.Virtex4
	serialK := sched.OrgOptimized.MinorCyclesPerMajor(width)
	parallelK := 4 // WB, LSQR+IS, CA, bookkeeping collapse to one slot each
	areaF, freqF := fpga.ParallelFetchFactors(width)
	serialRate := dev.MinorClockMHz / float64(serialK)
	parallelRate := fpga.ParallelMinorClockMHz(dev, width) / float64(parallelK)
	fmt.Fprintf(&sb, "Ablation (§IV): serial vs %d-wide parallel execution on %s\n", width, dev.Name)
	fmt.Fprintf(&sb, "  serial:   K=%d @ %.0f MHz -> %.2f M major-cycles/s, area 1.0x\n",
		serialK, dev.MinorClockMHz, serialRate)
	fmt.Fprintf(&sb, "  parallel: K=%d @ %.1f MHz -> %.2f M major-cycles/s, area %.1fx (plus >2-port memories, infeasible in FPGA block RAM)\n",
		parallelK, dev.MinorClockMHz*freqF, parallelRate, areaF)
	fmt.Fprintf(&sb, "  -> %.2fx cycle-rate for %.1fx area: the serial organization wins on throughput/area\n",
		parallelRate/serialRate, areaF)
	return sb.String()
}
