package tables

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// PredictorRow is one design point of the branch-predictor sweep.
type PredictorRow struct {
	Predictor   string
	MispredRate float64
	IPC         float64
	V5MIPS      float64
	StorageBits int
}

// PredictorSweep explores direction-predictor choices on one workload —
// the kind of bulk design-space exploration the paper builds ReSim for.
// The trace is regenerated per point with the matching sim-bpred predictor,
// exactly as the paper's flow would.
func PredictorSweep(ctx context.Context, opts Options, workloadName string) ([]PredictorRow, error) {
	p, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	base := core.DefaultConfig()
	points := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"nottaken", func(c *core.Config) {
			c.Predictor = bpred.Config{Dir: bpred.DirNotTaken,
				BTBEntries: 512, BTBAssoc: 1, RASSize: 16}
		}},
		{"taken", func(c *core.Config) {
			c.Predictor = bpred.Config{Dir: bpred.DirTaken,
				BTBEntries: 512, BTBAssoc: 1, RASSize: 16}
		}},
		{"bimod-2k", func(c *core.Config) {
			c.Predictor = bpred.Config{Dir: bpred.DirBimodal, BimodSize: 2048,
				BTBEntries: 512, BTBAssoc: 1, RASSize: 16}
		}},
		{"2lev (paper)", func(c *core.Config) {}},
		{"comb", func(c *core.Config) {
			pc := bpred.Default()
			pc.Dir = bpred.DirCombined
			pc.MetaSize = 1024
			c.Predictor = pc
		}},
		{"perfect", func(c *core.Config) { c.PerfectBP = true }},
	}
	var rows []PredictorRow
	for _, pt := range points {
		cfg := base
		pt.mod(&cfg)
		res, err := runProfile(ctx, opts.traces(), p, cfg, opts.instructions())
		if err != nil {
			return nil, fmt.Errorf("predictor sweep %s: %w", pt.name, err)
		}
		row := PredictorRow{
			Predictor:   pt.name,
			MispredRate: res.MispredictRate(),
			IPC:         res.IPC(),
			V5MIPS:      fpga.SimulationMIPS(fpga.Virtex5, cfg.MinorCyclesPerMajor(), res.IPC()),
		}
		if !cfg.PerfectBP {
			row.StorageBits = cfg.Predictor.StorageBits()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPredictorSweep formats the sweep.
func RenderPredictorSweep(rows []PredictorRow, workloadName string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: direction predictor sweep on %s (4-wide, perfect memory)\n", workloadName)
	fmt.Fprintf(&sb, "%-14s %12s %8s %10s %12s\n", "predictor", "mispred/br", "IPC", "V5 MIPS", "state bits")
	for _, r := range rows {
		state := "-"
		if r.StorageBits > 0 {
			state = fmt.Sprintf("%d", r.StorageBits)
		}
		fmt.Fprintf(&sb, "%-14s %12.4f %8.3f %10.2f %12s\n",
			r.Predictor, r.MispredRate, r.IPC, r.V5MIPS, state)
	}
	return sb.String()
}

// WrongPathRow is one design point of the wrong-path block sizing sweep.
type WrongPathRow struct {
	BlockLen       int
	Cycles         uint64
	TotalBits      uint64  // trace volume incl. tagged records
	BitsPerInstr   float64 // average over all records (tagged included)
	StarvedCycles  uint64  // fetch cycles with no wrong-path records left
	WrongPathShare float64
	DCacheMisses   uint64 // wrong-path cache pollution shows up here
}

// WrongPathSweep varies the wrong-path block length inserted by the trace
// generator around the paper's conservative choice (RB+IFQ): shorter blocks
// shrink the trace but starve fetch before branch resolution and stop
// modeling wrong-path cache pollution. The sweep runs with the 32K L1
// caches attached (and the two-level predictor) because pollution is
// invisible under a perfect memory system.
func WrongPathSweep(ctx context.Context, opts Options, workloadName string) ([]WrongPathRow, error) {
	p, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	conservative := core.DefaultConfig().WrongPathLen()
	lens := []int{0, conservative / 4, conservative / 2, conservative, conservative * 2}
	var rows []WrongPathRow
	for _, wpl := range lens {
		cfg := core.DefaultConfig()
		cfg.ICache = newL1("il1")
		cfg.DCache = newL1("dl1")
		tc := cfg.TraceConfig()
		tc.WrongPathLen = wpl
		src, startPC, err := tracecache.SourceFor(ctx, opts.traces(), p, tc, opts.instructions())
		if err != nil {
			return nil, err
		}
		acct := &bitAccounting{src: src}
		eng, err := core.New(cfg, acct, startPC)
		if err != nil {
			return nil, err
		}
		res, err := eng.RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("wrong-path sweep len %d: %w", wpl, err)
		}
		rows = append(rows, WrongPathRow{
			BlockLen:       wpl,
			Cycles:         res.Cycles,
			TotalBits:      acct.bits,
			BitsPerInstr:   float64(acct.bits) / float64(acct.records),
			StarvedCycles:  res.FetchStarved,
			WrongPathShare: res.WrongPathOverhead(),
			DCacheMisses:   res.DCache.Misses(),
		})
	}
	return rows, nil
}

// RenderWrongPathSweep formats the sweep.
func RenderWrongPathSweep(rows []WrongPathRow, workloadName string, conservative int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: wrong-path block length on %s with 32K L1s (paper's conservative choice: RB+IFQ = %d)\n",
		workloadName, conservative)
	fmt.Fprintf(&sb, "%-10s %12s %14s %12s %15s %12s %12s\n",
		"block len", "cycles", "trace Mbits", "bits/instr", "starved cycles", "wp share", "dl1 misses")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d %12d %14.2f %12.2f %15d %11.1f%% %12d\n",
			r.BlockLen, r.Cycles, float64(r.TotalBits)/1e6, r.BitsPerInstr,
			r.StarvedCycles, 100*r.WrongPathShare, r.DCacheMisses)
	}
	sb.WriteString("Shorter blocks shrink the trace but starve fetch before resolution and\n")
	sb.WriteString("hide wrong-path cache pollution; the conservative size models both fully.\n")
	return sb.String()
}
