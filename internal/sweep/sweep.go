// Package sweep runs bulk design-space explorations — the paper's stated
// off-line use case ("bulk simulations with varying design parameters") —
// in parallel across host cores. Every point regenerates its workload trace
// deterministically and owns an independent engine, so points never share
// mutable state and the sweep's output is identical to a serial run.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/workload"
)

// Point is one named design point.
type Point struct {
	Name   string
	Config core.Config
}

// Result pairs a point with its simulation outcome.
type Result struct {
	Point
	Res core.Result
	Err error
}

// Grid appends one point per value, derived from base by apply; names are
// "prefix=value".
func Grid(prefix string, base core.Config, values []int, apply func(*core.Config, int)) []Point {
	var pts []Point
	for _, v := range values {
		cfg := base
		apply(&cfg, v)
		pts = append(pts, Point{Name: fmt.Sprintf("%s=%d", prefix, v), Config: cfg})
	}
	return pts
}

// Runner executes design points over one workload.
type Runner struct {
	Workload     workload.Profile
	Instructions uint64
	// Parallelism bounds concurrent simulations; 0 uses GOMAXPROCS.
	Parallelism int
}

// Run simulates every point and returns results in point order. Individual
// point failures are reported in Result.Err; Run itself only fails on an
// empty point list.
func (r Runner) Run(points []Point) ([]Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: no design points")
	}
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(points) {
		par = len(points)
	}
	results := make([]Result, len(points))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				results[idx] = r.runOne(points[idx])
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, nil
}

func (r Runner) runOne(pt Point) Result {
	out := Result{Point: pt}
	tc := funcsim.TraceConfig{
		Predictor:    pt.Config.Predictor,
		PerfectBP:    pt.Config.PerfectBP,
		WrongPathLen: pt.Config.WrongPathLen(),
	}
	src, err := r.Workload.NewSource(tc, r.Instructions)
	if err != nil {
		out.Err = err
		return out
	}
	eng, err := core.New(pt.Config, src, funcsim.CodeBase)
	if err != nil {
		out.Err = err
		return out
	}
	out.Res, out.Err = eng.Run()
	return out
}
