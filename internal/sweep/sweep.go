// Package sweep runs bulk design-space explorations — the paper's stated
// off-line use case ("bulk simulations with varying design parameters") —
// in parallel across host cores. Each point owns an independent engine, so
// points never share mutable state and the sweep's output is identical to a
// serial run.
//
// Trace generation is amortized through a tracecache.Cache: points are
// grouped by their trace key (workload + derived trace configuration +
// instruction budget), each distinct trace is generated exactly once, and
// every point replays an independent snapshot. Most design-space sweeps
// vary only engine parameters (width, queue depths, cache geometry), so a
// whole sweep typically costs a single generation.
package sweep

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// Point is one named design point.
type Point struct {
	Name   string
	Config core.Config
}

// Result pairs a point with its simulation outcome.
type Result struct {
	Point
	Res core.Result
	Err error
}

// Grid appends one point per value, derived from base by apply; names are
// "prefix=value".
func Grid(prefix string, base core.Config, values []int, apply func(*core.Config, int)) []Point {
	var pts []Point
	for _, v := range values {
		cfg := base
		apply(&cfg, v)
		pts = append(pts, Point{Name: fmt.Sprintf("%s=%d", prefix, v), Config: cfg})
	}
	return pts
}

// Runner executes design points over one workload.
type Runner struct {
	Workload     workload.Profile
	Instructions uint64
	// Parallelism bounds concurrent simulations; 0 uses GOMAXPROCS.
	Parallelism int
	// Observer, when non-nil, receives one Progress callback per completed
	// point: Core is the point's index, the counters are that point's,
	// Done/Total carry sweep completion, and Final marks the last point to
	// finish. Callbacks are serialized. It is the sweep's single reporting
	// channel: per-point Config.Observer fields are ignored, so a base
	// configuration carrying an observer does not double-report through
	// every derived point.
	Observer core.Observer
	// OnResult, when non-nil, receives each point's full result as it
	// completes — the streaming hook the sharded sweep service builds on:
	// a worker forwards every finished point over the wire without waiting
	// for the whole sweep to drain. Callbacks are serialized with Observer
	// callbacks (OnResult first) and arrive in completion order, which is
	// not point order; the returned slice is still point-ordered.
	OnResult func(index int, res Result)
	// Traces memoizes generated traces across points (and across runs, when
	// the caller shares one cache between sweeps). nil gives the run a
	// private cache, so points sharing a trace configuration still generate
	// it once.
	Traces *tracecache.Cache
	// DisableCache restores the historical behavior of regenerating the
	// trace per point (streaming, nothing materialized). Equivalence tests
	// and memory-constrained callers use it; results are identical either
	// way because cached replays are record-for-record equal to
	// regeneration.
	DisableCache bool
	// CheckpointEvery, with OnCheckpoint, enables periodic engine-state
	// capture: each point's engine serializes a complete core.Checkpoint at
	// every CheckpointEvery-cycle boundary and hands it to OnCheckpoint with
	// the point's index. Callbacks arrive from concurrent point engines (one
	// goroutine per in-flight point, in cycle order within a point);
	// OnCheckpoint must be safe for concurrent use. Points whose cache
	// models cannot be serialized (custom Model implementations) silently
	// run without capture — checkpointing is an optimization, never a
	// correctness requirement. Per-point Config.CheckpointSink fields are
	// always cleared, like per-point Observers.
	CheckpointEvery uint64
	OnCheckpoint    func(index int, cp *core.Checkpoint)
	// TelemetryEvery, with OnTelemetry, streams per-interval engine
	// telemetry: each point's engine emits a core.IntervalSnapshot window
	// delta at every TelemetryEvery-cycle boundary (absolute multiples) and
	// hands it to OnTelemetry tagged with the point's index (also stamped
	// into Snapshot.Core). Same concurrency contract as OnCheckpoint:
	// callbacks arrive from concurrent point engines, in window order
	// within a point, and must be safe for concurrent use. Forwarding is
	// fire-and-forget — OnTelemetry cannot abort a point. Per-point
	// Config.TelemetrySink fields are always cleared, like per-point
	// Observers, and pipe-trace tails never cross the sweep (snapshots
	// leave the engine goroutine).
	TelemetryEvery uint64
	OnTelemetry    func(index int, snap core.IntervalSnapshot)
	// Resume maps point indices to checkpoints to restore instead of
	// starting from cycle 0 — the sharded sweep service resumes a dead
	// worker's half-finished points on a survivor through it. The stream
	// position stored in the checkpoint re-attaches to the shared trace
	// (cache snapshot or regeneration — both yield the identical records).
	// A checkpoint that fails to restore (corrupt, or from a different
	// configuration) degrades to a fresh run, mirroring how lost trace
	// spills degrade to regeneration.
	Resume map[int]*core.Checkpoint
	// OnResume fires after a Resume checkpoint successfully restores,
	// with the simulated cycles the point skipped — deliberately not at
	// decode time, so callers observing "this point resumed mid-run"
	// (logs, counters, tests) never report a resume that silently degraded
	// to a fresh run. Same concurrency contract as OnCheckpoint.
	OnResume func(index int, resumedCycles uint64)
}

// Run simulates every point and returns results in point order. Individual
// point failures are reported in Result.Err; Run itself fails on an empty
// point list or a cancelled context. On cancellation in-flight engines stop
// at their next context poll, every worker goroutine drains, and Run
// returns ctx.Err().
//
// Points sharing a trace key (workload + trace configuration + instruction
// budget) share one generated trace through the Traces cache; each point
// replays a private snapshot, so the concurrent engines never touch shared
// mutable trace state. Points whose budget is uncacheable (Instructions
// == 0 or over the cache's per-trace cap), or a Runner with DisableCache,
// fall back to regenerating per point.
//
// Points run in parallel, so per-point state is isolated where the sweep
// can do it: the built-in cache models (set-associative, perfect, and
// hierarchies including their lower level) are cloned cold for each point,
// since points derived from one base Config would otherwise race on shared
// tag state. Custom Model implementations cannot be cloned and stay shared
// — they must be safe for concurrent access, or the sweep must run with
// Parallelism = 1. Known limitation: two distinct hierarchies sharing one
// lower level across a point's ICache and DCache are cloned independently
// (the shared level is de-shared within the point); only an identical
// model instance in both fields is recognized as unified.
//
// A PipeTracer unique to one point is kept (serial pipeline tracing keeps
// working); an instance shared by several points is cleared when the sweep
// runs in parallel, because the built-in collector is unsynchronized.
// Per-point Observers are always cleared — the Runner's Observer is the
// sweep's reporting channel.
func (r Runner) Run(ctx context.Context, points []Point) ([]Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: no design points")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(points) {
		par = len(points)
	}
	traces := r.Traces
	if r.DisableCache {
		traces = nil // DisableCache wins even over an explicit Traces
	} else if traces == nil {
		traces = tracecache.New(tracecache.Config{})
	}
	results := make([]Result, len(points))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	work := make(chan int)
	shared := sharedTracers(points, par)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				results[idx] = r.runOne(ctx, idx, points[idx], shared, traces)
				if r.Observer != nil || r.OnResult != nil {
					mu.Lock()
					done++
					if r.OnResult != nil {
						r.OnResult(idx, results[idx])
					}
					if r.Observer != nil {
						r.Observer.Progress(core.Progress{
							Core:      idx,
							Cycles:    results[idx].Res.Cycles,
							Committed: results[idx].Res.Committed,
							IPC:       results[idx].Res.IPC(),
							Done:      done,
							Total:     len(points),
							// Per the Observer contract, Final marks successful
							// completion only — never a cancelled sweep.
							Final: done == len(points) && ctx.Err() == nil,
						})
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for _, i := range r.feedOrder(points, traces) {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// feedOrder returns the order point indices are handed to workers. With a
// trace cache in play, points are grouped by trace key and the first point
// of every distinct key goes to the front: the distinct generations fan out
// across the worker pool in parallel, and by the time the remaining points
// run their traces are warm (they block on the in-flight generation rather
// than duplicating it). Results are written by index, so scheduling order
// never affects output order.
func (r Runner) feedOrder(points []Point, traces *tracecache.Cache) []int {
	order := make([]int, 0, len(points))
	if traces == nil || !traces.Cacheable(r.Instructions) {
		for i := range points {
			order = append(order, i)
		}
		return order
	}
	seen := make(map[tracecache.Key]bool, len(points))
	var rest []int
	for i := range points {
		k := tracecache.KeyFor(r.Workload, points[i].Config.TraceConfig(), r.Instructions)
		if seen[k] {
			rest = append(rest, i)
			continue
		}
		seen[k] = true
		order = append(order, i)
	}
	return append(order, rest...)
}

func (r Runner) runOne(ctx context.Context, idx int, pt Point, sharedTr map[uintptr]bool, traces *tracecache.Cache) Result {
	out := Result{Point: pt}
	cfg := pt.Config
	cfg.Observer = nil
	cfg.CheckpointSink = nil
	cfg.CheckpointEvery = 0
	cfg.TelemetrySink = nil
	cfg.TelemetryEvery = 0
	cfg.TelemetryPipeTail = 0
	if sharedTr[ptrOf(cfg.PipeTracer)] {
		cfg.PipeTracer = nil
	}
	if sameModel(cfg.ICache, cfg.DCache) {
		// Unified I/D cache: clone once so the point keeps one cache with
		// I/D contention rather than two independent halves.
		unified := cache.CloneCold(cfg.ICache)
		cfg.ICache, cfg.DCache = unified, unified
	} else {
		cfg.ICache = cache.CloneCold(cfg.ICache)
		cfg.DCache = cache.CloneCold(cfg.DCache)
	}
	if r.CheckpointEvery > 0 && r.OnCheckpoint != nil && serializableModels(cfg) {
		cfg.CheckpointEvery = r.CheckpointEvery
		cfg.CheckpointSink = func(cp *core.Checkpoint) error {
			r.OnCheckpoint(idx, cp)
			return nil
		}
	}
	if r.TelemetryEvery > 0 && r.OnTelemetry != nil {
		cfg.TelemetryEvery = r.TelemetryEvery
		cfg.TelemetrySink = func(snap core.IntervalSnapshot) error {
			snap.Core = idx
			r.OnTelemetry(idx, snap)
			return nil
		}
	}
	src, startPC, err := tracecache.SourceFor(ctx, traces, r.Workload, cfg.TraceConfig(), r.Instructions)
	if err != nil {
		out.Err = err
		return out
	}
	var eng *core.Engine
	if cp := r.Resume[idx]; cp != nil {
		eng, err = core.Restore(cfg, src, cp)
		if err != nil {
			// An unusable checkpoint degrades to a fresh run: re-derive the
			// source (Restore consumed records of the first one).
			src, startPC, err = tracecache.SourceFor(ctx, traces, r.Workload, cfg.TraceConfig(), r.Instructions)
			if err != nil {
				out.Err = err
				return out
			}
			eng = nil
		} else if r.OnResume != nil {
			r.OnResume(idx, cp.Cycles())
		}
	}
	if eng == nil {
		eng, err = core.New(cfg, src, startPC)
		if err != nil {
			out.Err = err
			return out
		}
	}
	out.Res, out.Err = eng.RunContext(ctx)
	// The runner-installed capture hook is an execution detail, not part of
	// the point's design configuration: results must compare equal between
	// checkpointed and plain runs.
	out.Res.Config.CheckpointSink = nil
	out.Res.Config.CheckpointEvery = 0
	out.Res.Config.TelemetrySink = nil
	out.Res.Config.TelemetryEvery = 0
	return out
}

// serializableModels reports whether the point's memory system supports
// state capture — custom cache models run without checkpointing rather than
// failing their point.
func serializableModels(cfg core.Config) bool {
	return cache.Serializable(cfg.ICache) && cache.Serializable(cfg.DCache)
}

// sameModel reports whether a and b are the same cache-model instance. It
// compares by pointer identity rather than interface equality so a custom
// value-typed Model with non-comparable fields cannot panic the sweep; all
// built-in models are pointers.
func sameModel(a, b cache.Model) bool {
	return a != nil && ptrOf(a) != 0 && ptrOf(a) == ptrOf(b)
}

// ptrOf returns v's pointer identity, or 0 for nil and value-typed
// implementations.
func ptrOf(v any) uintptr {
	if v == nil {
		return 0
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer {
		return 0
	}
	return rv.Pointer()
}

// ClearSharedPipeTracers returns the points with any PipeTracer instance
// referenced by more than one point cleared, copying on write (the caller's
// slice and configs are never mutated). Callers that split one sweep across
// several Runners — the sharded sweep scheduler puts each trace-key group
// in its own Runner — need this up front: a tracer shared across groups
// looks unique within each group, so the per-Runner protection below cannot
// see the sharing, but the groups' engines still run concurrently.
func ClearSharedPipeTracers(points []Point) []Point {
	shared := sharedTracers(points, 2) // force the n>1 scan regardless of par
	if shared == nil {
		return points
	}
	out := make([]Point, len(points))
	copy(out, points)
	for i := range out {
		if shared[ptrOf(out[i].Config.PipeTracer)] {
			out[i].Config.PipeTracer = nil
		}
	}
	return out
}

// sharedTracers identifies PipeTracer instances referenced by more than one
// point when the sweep will actually run in parallel. Those are cleared per
// point: the built-in ptrace collector is unsynchronized, so concurrent
// engines would corrupt it (typically a leak from deriving every point from
// one base Config). A tracer unique to a single point is kept — serial or
// parallel, only one engine ever touches it.
func sharedTracers(points []Point, par int) map[uintptr]bool {
	if par <= 1 {
		return nil
	}
	counts := map[uintptr]int{}
	for i := range points {
		if p := ptrOf(points[i].Config.PipeTracer); p != 0 {
			counts[p]++
		}
	}
	var shared map[uintptr]bool
	//resim:nondeterministic-ok builds an order-insensitive membership set
	for p, n := range counts {
		if n > 1 {
			if shared == nil {
				shared = map[uintptr]bool{}
			}
			shared[p] = true
		}
	}
	return shared
}
