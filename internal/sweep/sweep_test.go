package sweep

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func gzipRunner(t *testing.T) Runner {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return Runner{Workload: p, Instructions: 8000}
}

func TestGridBuildsPoints(t *testing.T) {
	pts := Grid("rb", core.DefaultConfig(), []int{8, 16, 32}, func(c *core.Config, v int) {
		c.RBSize = v
	})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Name != "rb=8" || pts[0].Config.RBSize != 8 {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[2].Config.RBSize != 32 {
		t.Errorf("point 2 RB = %d", pts[2].Config.RBSize)
	}
	// Base is not mutated.
	if core.DefaultConfig().RBSize != 16 {
		t.Error("base config mutated")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := gzipRunner(t)
	pts := Grid("rb", core.DefaultConfig(), []int{4, 8, 16, 32}, func(c *core.Config, v int) {
		c.RBSize = v
	})

	r.Parallelism = 1
	serial, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	r.Parallelism = 4
	parallel, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Res.Counters != parallel[i].Res.Counters {
			t.Errorf("point %s differs between serial and parallel runs", serial[i].Name)
		}
		if serial[i].Name != parallel[i].Name {
			t.Errorf("order not preserved at %d", i)
		}
	}
	// Bigger RBs never hurt: IPC non-decreasing across the grid.
	for i := 1; i < len(serial); i++ {
		if serial[i].Res.IPC() < serial[i-1].Res.IPC()-1e-9 {
			t.Errorf("IPC decreased from %s to %s", serial[i-1].Name, serial[i].Name)
		}
	}
}

func TestBadPointReportsError(t *testing.T) {
	r := gzipRunner(t)
	bad := core.DefaultConfig()
	bad.Width = 0
	res, err := r.Run(context.Background(), []Point{{Name: "bad", Config: bad}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Error("invalid point did not report an error")
	}
}

func TestEmptySweepRejected(t *testing.T) {
	r := gzipRunner(t)
	if _, err := r.Run(context.Background(), nil); err == nil {
		t.Error("empty sweep accepted")
	}
}
