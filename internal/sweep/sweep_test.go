package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

func gzipRunner(t *testing.T) Runner {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return Runner{Workload: p, Instructions: 8000}
}

func TestGridBuildsPoints(t *testing.T) {
	pts := Grid("rb", core.DefaultConfig(), []int{8, 16, 32}, func(c *core.Config, v int) {
		c.RBSize = v
	})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Name != "rb=8" || pts[0].Config.RBSize != 8 {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[2].Config.RBSize != 32 {
		t.Errorf("point 2 RB = %d", pts[2].Config.RBSize)
	}
	// Base is not mutated.
	if core.DefaultConfig().RBSize != 16 {
		t.Error("base config mutated")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := gzipRunner(t)
	pts := Grid("rb", core.DefaultConfig(), []int{4, 8, 16, 32}, func(c *core.Config, v int) {
		c.RBSize = v
	})

	r.Parallelism = 1
	serial, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	r.Parallelism = 4
	parallel, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Res.Counters != parallel[i].Res.Counters {
			t.Errorf("point %s differs between serial and parallel runs", serial[i].Name)
		}
		if serial[i].Name != parallel[i].Name {
			t.Errorf("order not preserved at %d", i)
		}
	}
	// Bigger RBs never hurt: IPC non-decreasing across the grid.
	for i := 1; i < len(serial); i++ {
		if serial[i].Res.IPC() < serial[i-1].Res.IPC()-1e-9 {
			t.Errorf("IPC decreased from %s to %s", serial[i-1].Name, serial[i].Name)
		}
	}
}

func TestBadPointReportsError(t *testing.T) {
	r := gzipRunner(t)
	bad := core.DefaultConfig()
	bad.Width = 0
	res, err := r.Run(context.Background(), []Point{{Name: "bad", Config: bad}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Error("invalid point did not report an error")
	}
}

func TestEmptySweepRejected(t *testing.T) {
	r := gzipRunner(t)
	if _, err := r.Run(context.Background(), nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

// TestSweepSharedTraceGeneratesOnce is the issue's acceptance criterion: a
// >= 4-point sweep whose points differ only in engine parameters performs
// exactly one trace generation.
func TestSweepSharedTraceGeneratesOnce(t *testing.T) {
	r := gzipRunner(t)
	r.Traces = tracecache.New(tracecache.Config{})
	// LSQ depth is engine-only: unlike RBSize (which feeds the wrong-path
	// block length RB+IFQ) it leaves the trace configuration untouched.
	pts := Grid("lsq", core.DefaultConfig(), []int{2, 4, 8, 16, 32}, func(c *core.Config, v int) {
		c.LSQSize = v
	})
	res, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if got := r.Traces.Generations(); got != 1 {
		t.Errorf("generations = %d, want 1 for %d points sharing a trace config", got, len(pts))
	}
}

// TestSweepCachedMatchesUncached: caching must not change a single counter
// of any point's result.
func TestSweepCachedMatchesUncached(t *testing.T) {
	r := gzipRunner(t)
	pts := Grid("width", core.DefaultConfig(), []int{2, 4, 8}, func(c *core.Config, v int) {
		c.Width = v
		if max := c.Organization.MaxMemPorts(v); c.MemReadPorts > max {
			c.MemReadPorts = max
		}
	})
	// A point with a different trace key rides along to cover grouping.
	perfect := core.DefaultConfig()
	perfect.PerfectBP = true
	pts = append(pts, Point{Name: "perfectbp", Config: perfect})

	r.DisableCache = true
	uncached, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	r.DisableCache = false
	r.Traces = tracecache.New(tracecache.Config{})
	cached, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uncached {
		if uncached[i].Err != nil || cached[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, uncached[i].Err, cached[i].Err)
		}
		if !reflect.DeepEqual(uncached[i].Res, cached[i].Res) {
			t.Errorf("point %s: cached result differs from uncached", uncached[i].Name)
		}
	}
	if got := r.Traces.Generations(); got != 2 {
		t.Errorf("generations = %d, want 2 (default + perfect-BP trace)", got)
	}
}

// TestSweepUncacheableBudgetFallsBack: Instructions over the cache's cap
// streams per point and still completes.
func TestSweepUncacheableBudgetFallsBack(t *testing.T) {
	r := gzipRunner(t)
	r.Traces = tracecache.New(tracecache.Config{MaxInstructions: 100}) // below r.Instructions
	pts := Grid("rb", core.DefaultConfig(), []int{8, 16}, func(c *core.Config, v int) {
		c.RBSize = v
	})
	res, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if got := r.Traces.Generations(); got != 0 {
		t.Errorf("generations = %d, want 0 (uncacheable budget must stream)", got)
	}
}

// TestDisableCacheWinsOverTraces: the documented contract — DisableCache
// restores streaming regeneration even when a cache is also configured.
func TestDisableCacheWinsOverTraces(t *testing.T) {
	r := gzipRunner(t)
	r.Traces = tracecache.New(tracecache.Config{})
	r.DisableCache = true
	pts := Grid("lsq", core.DefaultConfig(), []int{4, 8}, func(c *core.Config, v int) {
		c.LSQSize = v
	})
	res, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if got := r.Traces.Generations(); got != 0 {
		t.Errorf("generations = %d, want 0 with DisableCache set", got)
	}
}
