package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

func gzipRunner(t *testing.T) Runner {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return Runner{Workload: p, Instructions: 8000}
}

func TestGridBuildsPoints(t *testing.T) {
	pts := Grid("rb", core.DefaultConfig(), []int{8, 16, 32}, func(c *core.Config, v int) {
		c.RBSize = v
	})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Name != "rb=8" || pts[0].Config.RBSize != 8 {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[2].Config.RBSize != 32 {
		t.Errorf("point 2 RB = %d", pts[2].Config.RBSize)
	}
	// Base is not mutated.
	if core.DefaultConfig().RBSize != 16 {
		t.Error("base config mutated")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := gzipRunner(t)
	pts := Grid("rb", core.DefaultConfig(), []int{4, 8, 16, 32}, func(c *core.Config, v int) {
		c.RBSize = v
	})

	r.Parallelism = 1
	serial, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	r.Parallelism = 4
	parallel, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Res.Counters != parallel[i].Res.Counters {
			t.Errorf("point %s differs between serial and parallel runs", serial[i].Name)
		}
		if serial[i].Name != parallel[i].Name {
			t.Errorf("order not preserved at %d", i)
		}
	}
	// Bigger RBs never hurt: IPC non-decreasing across the grid.
	for i := 1; i < len(serial); i++ {
		if serial[i].Res.IPC() < serial[i-1].Res.IPC()-1e-9 {
			t.Errorf("IPC decreased from %s to %s", serial[i-1].Name, serial[i].Name)
		}
	}
}

func TestBadPointReportsError(t *testing.T) {
	r := gzipRunner(t)
	bad := core.DefaultConfig()
	bad.Width = 0
	res, err := r.Run(context.Background(), []Point{{Name: "bad", Config: bad}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Error("invalid point did not report an error")
	}
}

func TestEmptySweepRejected(t *testing.T) {
	r := gzipRunner(t)
	if _, err := r.Run(context.Background(), nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

// TestSweepSharedTraceGeneratesOnce is the issue's acceptance criterion: a
// >= 4-point sweep whose points differ only in engine parameters performs
// exactly one trace generation.
func TestSweepSharedTraceGeneratesOnce(t *testing.T) {
	r := gzipRunner(t)
	r.Traces = tracecache.New(tracecache.Config{})
	// LSQ depth is engine-only: unlike RBSize (which feeds the wrong-path
	// block length RB+IFQ) it leaves the trace configuration untouched.
	pts := Grid("lsq", core.DefaultConfig(), []int{2, 4, 8, 16, 32}, func(c *core.Config, v int) {
		c.LSQSize = v
	})
	res, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if got := r.Traces.Generations(); got != 1 {
		t.Errorf("generations = %d, want 1 for %d points sharing a trace config", got, len(pts))
	}
}

// TestSweepCachedMatchesUncached: caching must not change a single counter
// of any point's result.
func TestSweepCachedMatchesUncached(t *testing.T) {
	r := gzipRunner(t)
	pts := Grid("width", core.DefaultConfig(), []int{2, 4, 8}, func(c *core.Config, v int) {
		c.Width = v
		if max := c.Organization.MaxMemPorts(v); c.MemReadPorts > max {
			c.MemReadPorts = max
		}
	})
	// A point with a different trace key rides along to cover grouping.
	perfect := core.DefaultConfig()
	perfect.PerfectBP = true
	pts = append(pts, Point{Name: "perfectbp", Config: perfect})

	r.DisableCache = true
	uncached, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	r.DisableCache = false
	r.Traces = tracecache.New(tracecache.Config{})
	cached, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uncached {
		if uncached[i].Err != nil || cached[i].Err != nil {
			t.Fatalf("point %d errs: %v / %v", i, uncached[i].Err, cached[i].Err)
		}
		if !reflect.DeepEqual(uncached[i].Res, cached[i].Res) {
			t.Errorf("point %s: cached result differs from uncached", uncached[i].Name)
		}
	}
	if got := r.Traces.Generations(); got != 2 {
		t.Errorf("generations = %d, want 2 (default + perfect-BP trace)", got)
	}
}

// TestSweepUncacheableBudgetFallsBack: Instructions over the cache's cap
// streams per point and still completes.
func TestSweepUncacheableBudgetFallsBack(t *testing.T) {
	r := gzipRunner(t)
	r.Traces = tracecache.New(tracecache.Config{MaxInstructions: 100}) // below r.Instructions
	pts := Grid("rb", core.DefaultConfig(), []int{8, 16}, func(c *core.Config, v int) {
		c.RBSize = v
	})
	res, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if got := r.Traces.Generations(); got != 0 {
		t.Errorf("generations = %d, want 0 (uncacheable budget must stream)", got)
	}
}

// TestDisableCacheWinsOverTraces: the documented contract — DisableCache
// restores streaming regeneration even when a cache is also configured.
func TestDisableCacheWinsOverTraces(t *testing.T) {
	r := gzipRunner(t)
	r.Traces = tracecache.New(tracecache.Config{})
	r.DisableCache = true
	pts := Grid("lsq", core.DefaultConfig(), []int{4, 8}, func(c *core.Config, v int) {
		c.LSQSize = v
	})
	res, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res {
		if pr.Err != nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	if got := r.Traces.Generations(); got != 0 {
		t.Errorf("generations = %d, want 0 with DisableCache set", got)
	}
}

// TestOnResultStreamsEveryPoint: the per-point streaming hook delivers each
// full result exactly once (serialized, in completion order), matching the
// point-ordered slice Run returns — the contract the sharded sweep service
// workers rely on.
func TestOnResultStreamsEveryPoint(t *testing.T) {
	r := gzipRunner(t)
	base := core.DefaultConfig()
	pts := Grid("rb", base, []int{8, 16, 32}, func(c *core.Config, v int) { c.RBSize = v })

	streamed := make(map[int]Result, len(pts))
	var progress []core.Progress
	r.OnResult = func(i int, res Result) {
		if _, dup := streamed[i]; dup {
			t.Errorf("point %d streamed twice", i)
		}
		streamed[i] = res // serialized with Observer callbacks; no lock needed
	}
	r.Observer = core.ObserverFunc(func(p core.Progress) { progress = append(progress, p) })

	got, err := r.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(pts) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(pts))
	}
	for i := range got {
		if !reflect.DeepEqual(streamed[i], got[i]) {
			t.Errorf("streamed result %d differs from returned result", i)
		}
	}
	if len(progress) != len(pts) {
		t.Fatalf("observer calls = %d, want %d", len(progress), len(pts))
	}
	seen := map[int]bool{}
	for k, p := range progress {
		if p.Total != len(pts) {
			t.Errorf("Progress.Total = %d, want %d", p.Total, len(pts))
		}
		if p.Done != k+1 {
			t.Errorf("Progress.Done = %d at callback %d, want %d", p.Done, k, k+1)
		}
		seen[p.Core] = true
	}
	if len(seen) != len(pts) {
		t.Errorf("observer reported %d distinct points, want %d", len(seen), len(pts))
	}
}

// TestClearSharedPipeTracers: a tracer instance referenced by several
// points is cleared (copy-on-write), a unique one is kept — the up-front
// sanitization the sharded scheduler applies before splitting a sweep into
// per-group Runners that could no longer see the sharing.
func TestClearSharedPipeTracers(t *testing.T) {
	shared := &countingTracer{}
	unique := &countingTracer{}
	base := core.DefaultConfig()
	pts := Grid("rb", base, []int{8, 16, 32}, func(c *core.Config, v int) { c.RBSize = v })
	pts[0].Config.PipeTracer = shared
	pts[1].Config.PipeTracer = shared
	pts[2].Config.PipeTracer = unique

	out := ClearSharedPipeTracers(pts)
	if out[0].Config.PipeTracer != nil || out[1].Config.PipeTracer != nil {
		t.Error("shared tracer survived across points")
	}
	if out[2].Config.PipeTracer != core.PipeTracer(unique) {
		t.Error("unique tracer was cleared")
	}
	// The caller's points are untouched.
	if pts[0].Config.PipeTracer != core.PipeTracer(shared) || pts[1].Config.PipeTracer != core.PipeTracer(shared) {
		t.Error("input slice was mutated")
	}
	// No sharing at all: the input comes back as-is, no copy.
	solo := Grid("rb", base, []int{8, 16}, func(c *core.Config, v int) { c.RBSize = v })
	if got := ClearSharedPipeTracers(solo); &got[0] != &solo[0] {
		t.Error("tracer-free sweep was needlessly copied")
	}
}

type countingTracer struct{ n int }

func (c *countingTracer) Fetched(int64, int64, uint32, string, bool) { c.n++ }
func (c *countingTracer) Stage(int64, int64, string)                 { c.n++ }
