package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/isa"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindOther, Class: OpALU, Dest: 3, Src1: 4, Src2: 5},
		{Kind: KindOther, Class: OpMul, Dest: 10, Src1: 11, Src2: 12, Tag: true},
		{Kind: KindOther, Class: OpDiv, Dest: 9, Src1: 8, Src2: isa.NoReg},
		{Kind: KindMem, Size: 4, Addr: 0xDEADBEE0, Dest: 4, Src1: 29, Src2: isa.NoReg},
		{Kind: KindMem, Store: true, Size: 2, Addr: 0x1000, Dest: isa.NoReg, Src1: 29, Src2: 4},
		{Kind: KindBranch, Ctrl: isa.CtrlCond, Taken: true, PC: 0x1ffc, Target: 0x2000,
			Dest: isa.NoReg, Src1: 1, Src2: 2},
		{Kind: KindBranch, Ctrl: isa.CtrlCall, Taken: true, PC: 0x1004, Target: 0x400100,
			Dest: isa.RegRA, Src1: isa.NoReg, Src2: isa.NoReg},
		{Kind: KindBranch, Ctrl: isa.CtrlRet, Taken: true, PC: 0x40013c, Target: 0x400104,
			Dest: isa.NoReg, Src1: isa.RegRA, Src2: isa.NoReg, Tag: true},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range sampleRecords() {
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		if err := want.EncodeTo(bw); err != nil {
			t.Fatalf("%v: encode: %v", want, err)
		}
		if got := int(bw.BitsWritten()); got != want.BitLen() {
			t.Errorf("%v: wrote %d bits, BitLen says %d", want, got, want.BitLen())
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFrom(bitio.NewReader(&buf))
		if err != nil {
			t.Fatalf("%v: decode: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestRecordLengthsMatchPaperShape(t *testing.T) {
	// The paper's three formats have distinct lengths; O is the shortest.
	if !(OtherBits < MemBits && MemBits < BranchBits) {
		t.Errorf("record lengths not ordered: O=%d M=%d B=%d", OtherBits, MemBits, BranchBits)
	}
	// A SPECINT-like mix should land in the paper's 40-50 bits/instr band
	// (Table 3 reports 41.16-47.14).
	mix := 0.55*float64(OtherBits) + 0.28*float64(MemBits) + 0.17*float64(BranchBits)
	if mix < 38 || mix > 50 {
		t.Errorf("typical-mix bits/instr = %.2f, want within [38,50]", mix)
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{StartPC: 0x400000, Records: uint64(len(recs))})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != uint64(len(recs)) {
		t.Errorf("Records = %d, want %d", w.Records(), len(recs))
	}
	if w.Tagged() != 2 {
		t.Errorf("Tagged = %d, want 2", w.Tagged())
	}
	if w.KindCount(KindOther) != 3 || w.KindCount(KindMem) != 2 || w.KindCount(KindBranch) != 3 {
		t.Errorf("kind counts = %d/%d/%d", w.KindCount(KindOther), w.KindCount(KindMem), w.KindCount(KindBranch))
	}
	if bpr := w.BitsPerRecord(); bpr <= 0 {
		t.Errorf("BitsPerRecord = %v", bpr)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().StartPC != 0x400000 {
		t.Errorf("StartPC = %#x", r.Header().StartPC)
	}
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last record: err = %v, want EOF", err)
	}
}

func TestFileWithoutRecordCountStopsAtPadding(t *testing.T) {
	// When the header count is 0 (streaming producer), the reader must stop
	// cleanly at flush padding rather than fabricating records... unless the
	// padding happens to decode as a record prefix; the count, when present,
	// makes the boundary exact. Here we check the counted path only for a
	// single record, and the uncounted path for graceful EOF on empty body.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{StartPC: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty body: err = %v, want EOF", err)
	}
}

func TestOpenAutoDetectsContainers(t *testing.T) {
	recs := sampleRecords()
	for _, compressed := range []bool{false, true} {
		var buf bytes.Buffer
		var werr error
		if compressed {
			w, err := NewCompressedWriter(&buf, Header{StartPC: 0x1000, Records: uint64(len(recs))})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if err := w.Write(r); err != nil {
					t.Fatal(err)
				}
			}
			werr = w.Close()
		} else {
			w, err := NewWriter(&buf, Header{StartPC: 0x1000, Records: uint64(len(recs))})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if err := w.Write(r); err != nil {
					t.Fatal(err)
				}
			}
			werr = w.Close()
		}
		if werr != nil {
			t.Fatal(werr)
		}
		src, hdr, err := Open(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("compressed=%t: %v", compressed, err)
		}
		if hdr.StartPC != 0x1000 {
			t.Errorf("compressed=%t: StartPC = %#x", compressed, hdr.StartPC)
		}
		for i, want := range recs {
			got, err := src.Next()
			if err != nil {
				t.Fatalf("compressed=%t record %d: %v", compressed, i, err)
			}
			if got != want {
				t.Errorf("compressed=%t record %d mismatch", compressed, i)
			}
		}
	}
	if _, _, err := Open(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("garbage container accepted")
	}
	if _, _, err := Open(bytes.NewReader([]byte{1})); err == nil {
		t.Error("short file accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	raw := make([]byte, 20)
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(raw[:5])); err == nil {
		t.Error("short header accepted")
	}
}

func TestSliceSource(t *testing.T) {
	recs := sampleRecords()
	s := NewSliceSource(recs)
	if s.Len() != len(recs) {
		t.Errorf("Len = %d", s.Len())
	}
	for i := range recs {
		r, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r != recs[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
	s.Reset()
	if r, _ := s.Next(); r != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestBufferedPeekNext(t *testing.T) {
	recs := sampleRecords()
	b := NewBuffered(NewSliceSource(recs))
	p1, err := b.Peek()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := b.Peek()
	if p1 != p2 {
		t.Error("repeated Peek returned different records")
	}
	n1, _ := b.Next()
	if n1 != p1 {
		t.Error("Next did not return peeked record")
	}
	if b.Consumed() != 1 {
		t.Errorf("Consumed = %d, want 1", b.Consumed())
	}
}

func TestBufferedSkipTagged(t *testing.T) {
	recs := []Record{
		{Kind: KindOther, Tag: true},
		{Kind: KindMem, Tag: true, Src1: 1},
		{Kind: KindBranch, Tag: true, Ctrl: isa.CtrlCond},
		{Kind: KindOther, Dest: 5},
	}
	b := NewBuffered(NewSliceSource(recs))
	if n := b.SkipTagged(); n != 3 {
		t.Errorf("SkipTagged = %d, want 3", n)
	}
	if b.Consumed() != 0 {
		t.Errorf("Consumed after skip = %d, want 0", b.Consumed())
	}
	r, err := b.Next()
	if err != nil || r.Tag {
		t.Errorf("after skip: %v %v", r, err)
	}
	// Skipping when next record is untagged is a no-op.
	if n := b.SkipTagged(); n != 0 {
		t.Errorf("SkipTagged on untagged = %d", n)
	}
	// Skipping at EOF is a no-op.
	b2 := NewBuffered(NewSliceSource(nil))
	if n := b2.SkipTagged(); n != 0 {
		t.Errorf("SkipTagged at EOF = %d", n)
	}
	if _, err := b2.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestFromInst(t *testing.T) {
	ld := trFromInst(t, isa.Lw(4, 29, 8), 0x1008, false, 0)
	if ld.Kind != KindMem || ld.Store || ld.Addr != 0x1008 || ld.Dest != 4 || ld.Src1 != 29 {
		t.Errorf("lw record: %+v", ld)
	}
	if ld.PC != 0 {
		t.Errorf("non-branch record carries PC: %+v", ld)
	}
	st := trFromInst(t, isa.Sw(4, 29, 8), 0x1008, false, 0)
	if st.Kind != KindMem || !st.Store || st.Src2 != 4 || st.Dest != isa.NoReg {
		t.Errorf("sw record: %+v", st)
	}
	br := trFromInst(t, isa.Beq(1, 2, 4), 0, true, 0x2014)
	if br.Kind != KindBranch || br.Ctrl != isa.CtrlCond || !br.Taken || br.Target != 0x2014 {
		t.Errorf("beq record: %+v", br)
	}
	if br.PC != 0x1000 {
		t.Errorf("branch record PC = %#x, want 0x1000", br.PC)
	}
	mul := trFromInst(t, isa.Mul(3, 1, 2), 0, false, 0)
	if mul.Kind != KindOther || mul.Class != OpMul {
		t.Errorf("mul record: %+v", mul)
	}
	dv := trFromInst(t, isa.Div(3, 1, 2), 0, false, 0)
	if dv.Class != OpDiv {
		t.Errorf("div record: %+v", dv)
	}
	alu := trFromInst(t, isa.Add(3, 1, 2), 0, false, 0)
	if alu.Kind != KindOther || alu.Class != OpALU {
		t.Errorf("add record: %+v", alu)
	}
}

func trFromInst(t *testing.T, in isa.Inst, addr uint32, taken bool, target uint32) Record {
	t.Helper()
	return FromInst(isa.Decode(in.Word(), 0x1000), 0x1000, addr, taken, target)
}

// Property: random valid records survive encode/decode through a shared
// bit stream (records are not byte aligned, so framing must be exact).
func TestQuickStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randReg := func() isa.Reg {
		if rng.Intn(4) == 0 {
			return isa.NoReg
		}
		return isa.Reg(rng.Intn(32))
	}
	genRec := func() Record {
		switch rng.Intn(3) {
		case 0:
			return Record{Kind: KindOther, Class: OpClass(rng.Intn(3)),
				Tag: rng.Intn(2) == 0, Dest: randReg(), Src1: randReg(), Src2: randReg()}
		case 1:
			st := rng.Intn(2) == 0
			r := Record{Kind: KindMem, Store: st, Tag: rng.Intn(2) == 0,
				Size: []uint8{1, 2, 4}[rng.Intn(3)],
				Addr: rng.Uint32(), Src1: randReg(), Dest: isa.NoReg, Src2: isa.NoReg}
			if st {
				r.Src2 = randReg()
			} else {
				r.Dest = randReg()
			}
			return r
		default:
			return Record{Kind: KindBranch, Ctrl: isa.CtrlKind(1 + rng.Intn(6)),
				Taken: rng.Intn(2) == 0, PC: rng.Uint32() &^ 3, Target: rng.Uint32() &^ 3,
				Tag: rng.Intn(2) == 0, Dest: randReg(), Src1: randReg(), Src2: randReg()}
		}
	}
	f := func() bool {
		n := 1 + rng.Intn(50)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = genRec()
		}
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		var bits uint64
		for _, r := range recs {
			if err := r.EncodeTo(bw); err != nil {
				return false
			}
			bits += uint64(r.BitLen())
		}
		if bw.BitsWritten() != bits {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		br := bitio.NewReader(&buf)
		for _, want := range recs {
			got, err := DecodeFrom(br)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecordString(t *testing.T) {
	for _, r := range sampleRecords() {
		if r.String() == "" {
			t.Error("empty String()")
		}
	}
	if s := (Record{Kind: KindBranch, Tag: true}).String(); s == "" || s[len(s)-4:] != "[wp]" {
		t.Errorf("wrong-path marker missing: %q", s)
	}
}

// TestBufferedPosSkipReattach pins the checkpoint re-attachment contract:
// after consuming (and skip-discarding) an arbitrary prefix, Pos names a
// position such that a fresh Buffered over an identical source, advanced
// with Skip(Pos), yields exactly the remaining records.
func TestBufferedPosSkipReattach(t *testing.T) {
	recs := []Record{
		{Kind: KindOther}, {Kind: KindBranch, Taken: true, Target: 64},
		{Kind: KindOther, Tag: true}, {Kind: KindMem, Tag: true, Addr: 4},
		{Kind: KindOther}, {Kind: KindMem, Addr: 8}, {Kind: KindOther},
	}
	b := NewBuffered(NewSliceSource(recs))
	if _, err := b.Next(); err != nil { // consume record 0
		t.Fatal(err)
	}
	if _, err := b.Next(); err != nil { // consume record 1 (branch)
		t.Fatal(err)
	}
	if n := b.SkipTagged(); n != 2 { // discard the wrong-path block
		t.Fatalf("SkipTagged = %d, want 2", n)
	}
	if _, err := b.Peek(); err != nil { // lookahead must not advance Pos
		t.Fatal(err)
	}
	pos := b.Pos()
	if pos != 4 {
		t.Fatalf("Pos = %d, want 4 (records irrevocably taken)", pos)
	}

	resumed := NewBuffered(NewSliceSource(recs))
	if err := resumed.Skip(pos); err != nil {
		t.Fatal(err)
	}
	for {
		want, errA := b.Next()
		got, errB := resumed.Next()
		if (errA != nil) != (errB != nil) {
			t.Fatalf("stream ends diverged: %v vs %v", errA, errB)
		}
		if errA != nil {
			break
		}
		if want != got {
			t.Fatalf("resumed stream diverged: %v vs %v", want, got)
		}
	}

	// Skipping past the end reports the shortfall.
	short := NewBuffered(NewSliceSource(recs))
	if err := short.Skip(uint64(len(recs)) + 1); err == nil {
		t.Error("Skip past the end succeeded")
	}
}
