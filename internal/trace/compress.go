package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
)

// Compressed trace container (format version 2).
//
// The paper flags input-trace bandwidth as ReSim's main scaling concern:
// the 4-wide configuration demands ~1.1 Gb/s, "exceeding the available
// bandwidth of regular Gigabit Ethernet" (§V, Table 3 discussion). This
// extension exploits the stream's locality with stateful delta coding —
// the codec state is tiny (two 32-bit registers), so a hardware
// decompressor fits comfortably next to ReSim's fetch stage:
//
//   - M records encode the effective address as a zigzag nibble-varint
//     delta against the previous memory address (sequential and strided
//     access patterns compress to a few nibbles).
//   - B records encode the branch PC as a delta against the previous
//     branch PC, and the target as a delta against the PC (loop branches
//     and short calls compress well).
//   - O records are already minimal and unchanged.
//
// Varint format: little-endian nibble groups, 5 bits each on the wire
// (4 payload bits + 1 continuation bit); values are zigzag-mapped first.

// compressedMagic identifies a compressed trace file ("RSTC").
const compressedMagic = 0x52535443

// zigzag maps a signed delta to an unsigned code with small magnitudes
// mapping to small codes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// writeVarint emits a zigzagged value as nibble groups.
func writeVarint(bw *bitio.Writer, delta int64) error {
	u := zigzag(delta)
	for {
		nib := u & 0xF
		u >>= 4
		more := uint64(0)
		if u != 0 {
			more = 1
		}
		if err := bw.WriteBits(nib<<1|more, 5); err != nil {
			return err
		}
		if more == 0 {
			return nil
		}
	}
}

// readVarint decodes a nibble varint.
func readVarint(br *bitio.Reader) (int64, error) {
	var u uint64
	for shift := uint(0); ; shift += 4 {
		if shift > 64 {
			return 0, fmt.Errorf("%w: runaway varint", ErrBadRecord)
		}
		g, err := br.ReadBits(5)
		if err != nil {
			return 0, err
		}
		u |= (g >> 1) << shift
		if g&1 == 0 {
			return unzigzag(u), nil
		}
	}
}

// varintBits returns the encoded width of delta in bits.
func varintBits(delta int64) int {
	u := zigzag(delta)
	n := 5
	for u >>= 4; u != 0; u >>= 4 {
		n += 5
	}
	return n
}

// codecState is the shared predictor state of compressor and decompressor.
type codecState struct {
	lastMemAddr  uint32
	lastBranchPC uint32
}

// CompressedBitLen returns the encoded length of r in the compressed format
// given the current state, without encoding.
func (s *codecState) bitLen(r Record) int {
	switch r.Kind {
	case KindMem:
		return fmtBits + tagBits + storeBits + sizeBits + 2*regBits +
			varintBits(int64(r.Addr)-int64(s.lastMemAddr))
	case KindBranch:
		return fmtBits + tagBits + ctrlBits + takenBits + 3*regBits +
			varintBits(int64(r.PC)-int64(s.lastBranchPC)) +
			varintBits(int64(r.Target)-int64(r.PC))
	default:
		return OtherBits
	}
}

func (s *codecState) advance(r Record) {
	switch r.Kind {
	case KindMem:
		s.lastMemAddr = r.Addr
	case KindBranch:
		s.lastBranchPC = r.PC
	}
}

// CompressedSizer predicts compressed record sizes without encoding
// anything; it tracks the same delta state as the writer. Callers must
// Advance with every record they sized, in order.
type CompressedSizer struct{ st codecState }

// BitLen returns the compressed size of r given the current state.
func (s *CompressedSizer) BitLen(r Record) int { return s.st.bitLen(r) }

// Advance updates the delta state past r.
func (s *CompressedSizer) Advance(r Record) { s.st.advance(r) }

// CompressedWriter writes the version-2 delta-coded container.
type CompressedWriter struct {
	bw      *bitio.Writer
	buf     *bufio.Writer
	st      codecState
	records uint64
}

// NewCompressedWriter begins a compressed trace container on w.
func NewCompressedWriter(w io.Writer, hdr Header) (*CompressedWriter, error) {
	buf := bufio.NewWriterSize(w, 1<<16)
	var raw [20]byte
	binary.BigEndian.PutUint32(raw[0:], compressedMagic)
	binary.BigEndian.PutUint32(raw[4:], 2)
	binary.BigEndian.PutUint32(raw[8:], hdr.StartPC)
	binary.BigEndian.PutUint64(raw[12:], hdr.Records)
	if _, err := buf.Write(raw[:]); err != nil {
		return nil, err
	}
	return &CompressedWriter{bw: bitio.NewWriter(buf), buf: buf}, nil
}

// Write appends one record.
func (w *CompressedWriter) Write(r Record) error {
	if err := w.bw.WriteBits(uint64(r.Kind), fmtBits); err != nil {
		return err
	}
	if err := w.bw.WriteBool(r.Tag); err != nil {
		return err
	}
	switch r.Kind {
	case KindOther:
		if err := w.bw.WriteBits(uint64(r.Class), classBits); err != nil {
			return err
		}
		for _, reg := range []uint64{encodeReg(r.Dest), encodeReg(r.Src1), encodeReg(r.Src2)} {
			if err := w.bw.WriteBits(reg, regBits); err != nil {
				return err
			}
		}
	case KindMem:
		if err := w.bw.WriteBool(r.Store); err != nil {
			return err
		}
		if err := w.bw.WriteBits(sizeCode(r.Size), sizeBits); err != nil {
			return err
		}
		reg := r.Dest
		if r.Store {
			reg = r.Src2
		}
		if err := w.bw.WriteBits(encodeReg(reg), regBits); err != nil {
			return err
		}
		if err := w.bw.WriteBits(encodeReg(r.Src1), regBits); err != nil {
			return err
		}
		if err := writeVarint(w.bw, int64(r.Addr)-int64(w.st.lastMemAddr)); err != nil {
			return err
		}
	case KindBranch:
		if err := w.bw.WriteBits(uint64(r.Ctrl), ctrlBits); err != nil {
			return err
		}
		if err := w.bw.WriteBool(r.Taken); err != nil {
			return err
		}
		for _, reg := range []uint64{encodeReg(r.Dest), encodeReg(r.Src1), encodeReg(r.Src2)} {
			if err := w.bw.WriteBits(reg, regBits); err != nil {
				return err
			}
		}
		if err := writeVarint(w.bw, int64(r.PC)-int64(w.st.lastBranchPC)); err != nil {
			return err
		}
		if err := writeVarint(w.bw, int64(r.Target)-int64(r.PC)); err != nil {
			return err
		}
	default:
		return ErrBadRecord
	}
	w.st.advance(r)
	w.records++
	return nil
}

// Close flushes the container.
func (w *CompressedWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.buf.Flush()
}

// Records returns the number of records written.
func (w *CompressedWriter) Records() uint64 { return w.records }

// BitsWritten returns payload bits written.
func (w *CompressedWriter) BitsWritten() uint64 { return w.bw.BitsWritten() }

// BitsPerRecord returns the compressed average record size.
func (w *CompressedWriter) BitsPerRecord() float64 {
	if w.records == 0 {
		return 0
	}
	return float64(w.bw.BitsWritten()) / float64(w.records)
}

// CompressedReader reads the version-2 container; it implements Source.
type CompressedReader struct {
	br     *bitio.Reader
	hdr    Header
	st     codecState
	read   uint64
	capped bool
}

// NewCompressedReader opens a compressed trace container.
func NewCompressedReader(r io.Reader) (*CompressedReader, error) {
	buf := bufio.NewReaderSize(r, 1<<16)
	var raw [20]byte
	if _, err := io.ReadFull(buf, raw[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.BigEndian.Uint32(raw[0:]) != compressedMagic {
		return nil, errors.New("trace: not a compressed trace (bad magic)")
	}
	if v := binary.BigEndian.Uint32(raw[4:]); v != 2 {
		return nil, fmt.Errorf("trace: unsupported compressed version %d", v)
	}
	rd := &CompressedReader{br: bitio.NewReader(buf)}
	rd.hdr.StartPC = binary.BigEndian.Uint32(raw[8:])
	rd.hdr.Records = binary.BigEndian.Uint64(raw[12:])
	rd.capped = rd.hdr.Records != 0
	return rd, nil
}

// Header returns the container header.
func (r *CompressedReader) Header() Header { return r.hdr }

// Next implements Source.
func (r *CompressedReader) Next() (Record, error) {
	if r.capped && r.read >= r.hdr.Records {
		return Record{}, io.EOF
	}
	var rec Record
	k, err := r.br.ReadBits(fmtBits)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return rec, io.EOF
		}
		return rec, err
	}
	rec.Kind = Kind(k)
	if rec.Tag, err = r.br.ReadBool(); err != nil {
		return rec, err
	}
	switch rec.Kind {
	case KindOther:
		c, err := r.br.ReadBits(classBits)
		if err != nil {
			return rec, err
		}
		rec.Class = OpClass(c)
		regs := [3]uint64{}
		for i := range regs {
			if regs[i], err = r.br.ReadBits(regBits); err != nil {
				return rec, err
			}
		}
		rec.Dest, rec.Src1, rec.Src2 = decodeReg(regs[0]), decodeReg(regs[1]), decodeReg(regs[2])
	case KindMem:
		if rec.Store, err = r.br.ReadBool(); err != nil {
			return rec, err
		}
		sc, err := r.br.ReadBits(sizeBits)
		if err != nil {
			return rec, err
		}
		rec.Size = sizeFromCode(sc)
		reg, err := r.br.ReadBits(regBits)
		if err != nil {
			return rec, err
		}
		base, err := r.br.ReadBits(regBits)
		if err != nil {
			return rec, err
		}
		delta, err := readVarint(r.br)
		if err != nil {
			return rec, err
		}
		rec.Src1 = decodeReg(base)
		if rec.Store {
			rec.Src2 = decodeReg(reg)
			rec.Dest = decodeReg(regNone)
		} else {
			rec.Dest = decodeReg(reg)
			rec.Src2 = decodeReg(regNone)
		}
		rec.Addr = uint32(int64(r.st.lastMemAddr) + delta)
	case KindBranch:
		c, err := r.br.ReadBits(ctrlBits)
		if err != nil {
			return rec, err
		}
		rec.Ctrl = CtrlKind(c)
		if rec.Taken, err = r.br.ReadBool(); err != nil {
			return rec, err
		}
		regs := [3]uint64{}
		for i := range regs {
			if regs[i], err = r.br.ReadBits(regBits); err != nil {
				return rec, err
			}
		}
		rec.Dest, rec.Src1, rec.Src2 = decodeReg(regs[0]), decodeReg(regs[1]), decodeReg(regs[2])
		dpc, err := readVarint(r.br)
		if err != nil {
			return rec, err
		}
		rec.PC = uint32(int64(r.st.lastBranchPC) + dpc)
		dt, err := readVarint(r.br)
		if err != nil {
			return rec, err
		}
		rec.Target = uint32(int64(rec.PC) + dt)
	default:
		return rec, fmt.Errorf("%w: format %d", ErrBadRecord, k)
	}
	r.st.advance(rec)
	r.read++
	return rec, nil
}
