package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
	"repro/internal/isa"
)

func TestVarintRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 4, -4, 7, 8, -8, 127, -128, 1 << 20, -(1 << 20),
		1<<31 - 1, -(1 << 31), 1<<40 + 3}
	for _, v := range vals {
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		if err := writeVarint(bw, v); err != nil {
			t.Fatal(err)
		}
		if got := int(bw.BitsWritten()); got != varintBits(v) {
			t.Errorf("varintBits(%d) = %d, wrote %d", v, varintBits(v), got)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := readVarint(bitio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("varint(%d) round-tripped to %d", v, got)
		}
	}
}

func TestZigzagSmallMagnitudesAreCheap(t *testing.T) {
	// Strides of +/-4..64 must fit in one or two nibble groups.
	for _, d := range []int64{4, -4, 8, 64, -64} {
		if bits := varintBits(d); bits > 10 {
			t.Errorf("delta %d costs %d bits, want <= 10", d, bits)
		}
	}
	// A full random 32-bit address costs more than the raw field only in
	// pathological cases; the codec still bounds it.
	if bits := varintBits(1 << 31); bits > 45 {
		t.Errorf("worst-case delta costs %d bits", bits)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	w, err := NewCompressedWriter(&buf, Header{StartPC: 0x1000, Records: uint64(len(recs))})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != uint64(len(recs)) {
		t.Errorf("Records = %d", w.Records())
	}
	if w.BitsPerRecord() <= 0 {
		t.Error("BitsPerRecord not tracked")
	}

	r, err := NewCompressedReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().StartPC != 0x1000 {
		t.Errorf("StartPC = %#x", r.Header().StartPC)
	}
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestCompressedRejectsRawContainer(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	if _, err := NewCompressedReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("compressed reader accepted a raw container")
	}
}

func TestCompressionBeatsRawOnLocalStreams(t *testing.T) {
	// A stream with realistic locality — strided loads and loop branches —
	// must compress well below the raw format.
	var recs []Record
	addr := uint32(0x10000)
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0, 1:
			recs = append(recs, Record{Kind: KindMem, Size: 4, Dest: 4, Src1: 9,
				Src2: isa.NoReg, Addr: addr})
			addr += 16
		case 2:
			recs = append(recs, Record{Kind: KindOther, Class: OpALU,
				Dest: 5, Src1: 4, Src2: isa.NoReg})
		default:
			recs = append(recs, Record{Kind: KindBranch, Ctrl: isa.CtrlCond,
				Taken: true, PC: 0x1040, Target: 0x1000,
				Dest: isa.NoReg, Src1: 5, Src2: isa.NoReg})
		}
	}
	var rawBits, compBits uint64
	{
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, Header{})
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		_ = w.Close()
		rawBits = w.BitsWritten()
	}
	var buf bytes.Buffer
	w, _ := NewCompressedWriter(&buf, Header{})
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Close()
	compBits = w.BitsWritten()
	ratio := float64(rawBits) / float64(compBits)
	if ratio < 1.4 {
		t.Errorf("compression ratio = %.2fx, want >= 1.4x (raw %d vs %d bits)",
			ratio, rawBits, compBits)
	}
}

// Property: arbitrary record streams round-trip through the compressed
// codec (the stateful delta chain must stay in sync).
func TestQuickCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	randReg := func() isa.Reg {
		if rng.Intn(5) == 0 {
			return isa.NoReg
		}
		return isa.Reg(rng.Intn(32))
	}
	gen := func() Record {
		switch rng.Intn(3) {
		case 0:
			return Record{Kind: KindOther, Class: OpClass(rng.Intn(3)),
				Tag: rng.Intn(2) == 0, Dest: randReg(), Src1: randReg(), Src2: randReg()}
		case 1:
			st := rng.Intn(2) == 0
			r := Record{Kind: KindMem, Store: st, Tag: rng.Intn(2) == 0,
				Size: []uint8{1, 2, 4}[rng.Intn(3)],
				Addr: rng.Uint32(), Src1: randReg(), Dest: isa.NoReg, Src2: isa.NoReg}
			if st {
				r.Src2 = randReg()
			} else {
				r.Dest = randReg()
			}
			return r
		default:
			return Record{Kind: KindBranch, Ctrl: isa.CtrlKind(1 + rng.Intn(6)),
				Taken: rng.Intn(2) == 0, PC: rng.Uint32(), Target: rng.Uint32(),
				Tag: rng.Intn(2) == 0, Dest: randReg(), Src1: randReg(), Src2: randReg()}
		}
	}
	f := func() bool {
		n := 1 + rng.Intn(60)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = gen()
		}
		var buf bytes.Buffer
		w, err := NewCompressedWriter(&buf, Header{Records: uint64(n)})
		if err != nil {
			return false
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := NewCompressedReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := rd.Next()
			if err != nil || got != want {
				return false
			}
		}
		_, err = rd.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCodecStateBitLenMatchesWriter(t *testing.T) {
	// bitLen must predict the writer's actual emission, record by record.
	recs := sampleRecords()
	var st codecState
	var buf bytes.Buffer
	w, err := NewCompressedWriter(&buf, Header{})
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, r := range recs {
		want := st.bitLen(r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		got := int(w.BitsWritten() - prev)
		prev = w.BitsWritten()
		if got != want {
			t.Errorf("record %d (%v): wrote %d bits, bitLen predicted %d", i, r, got, want)
		}
		st.advance(r)
	}
}
