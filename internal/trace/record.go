// Package trace implements ReSim's input trace: one pre-decoded record per
// dynamic instruction, in three formats — Branch (B), Memory (M) and Other
// (O) — "each with its own fields and length", plus the Tag Bit used for
// mis-speculation handling (paper §V.A). Because the format is pre-decoded
// and generic, the timing engine is almost ISA independent.
//
// Record bit layouts (MSB first):
//
//	O: fmt(2)=0 tag(1) class(3) dest(6) src1(6) src2(6)            = 24 bits
//	M: fmt(2)=1 tag(1) store(1) size(2) reg(6) base(6) addr(32)    = 50 bits
//	B: fmt(2)=2 tag(1) kind(3) taken(1) dest(6) src1(6) src2(6)
//	   pc(32) target(32)                                           = 89 bits
//
// Register fields use 6 bits: 0-31 are architectural registers, 63 encodes
// "no operand". B records carry the branch's own PC: the hardware indexes
// the direction predictor and BTB with it and uses it to re-synchronize the
// implicitly tracked fetch PC at every control-flow record (a zero PC falls
// back to implicit tracking). The resulting mix of formats gives
// per-benchmark averages in the same 40-50 bits/instruction band the paper
// reports (Table 3).
package trace

import (
	"errors"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/isa"
)

// Kind selects one of the three record formats.
type Kind uint8

// Record kinds, in on-the-wire format-field order.
const (
	KindOther  Kind = 0 // O: integer/ALU/long-latency, no memory, no control
	KindMem    Kind = 1 // M: load or store
	KindBranch Kind = 2 // B: control flow
)

// String returns the paper's one-letter format name.
func (k Kind) String() string {
	switch k {
	case KindOther:
		return "O"
	case KindMem:
		return "M"
	case KindBranch:
		return "B"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// OpClass is the functional-unit class carried by O records.
type OpClass uint8

// O-record operation classes.
const (
	OpALU OpClass = iota // single-cycle integer
	OpMul                // pipelined multiply
	OpDiv                // unpipelined divide
)

// String returns a short class name.
func (c OpClass) String() string {
	switch c {
	case OpALU:
		return "alu"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// CtrlKind mirrors isa.CtrlKind on the wire (3 bits).
type CtrlKind = isa.CtrlKind

// regNone is the wire encoding for an absent register operand.
const regNone = 63

// Record is one decoded trace record: the timing-relevant footprint of one
// dynamic instruction.
type Record struct {
	Kind Kind
	Tag  bool // wrong-path (mis-speculated) instruction

	// Register dependencies. isa.NoReg marks absent operands.
	Dest, Src1, Src2 isa.Reg

	// O records only.
	Class OpClass

	// M records only. Size is the access width in bytes (1, 2 or 4; the
	// zero value means 4, so hand-built word records need no field).
	Store bool
	Size  uint8
	Addr  uint32

	// B records only.
	Ctrl   isa.CtrlKind
	Taken  bool
	PC     uint32 // the branch's own PC (0 = rely on implicit tracking)
	Target uint32
}

// Field widths in bits.
const (
	fmtBits    = 2
	tagBits    = 1
	classBits  = 3
	regBits    = 6
	storeBits  = 1
	addrBits   = 32
	sizeBits   = 2
	ctrlBits   = 3
	takenBits  = 1
	pcBits     = 32
	targetBits = 32

	// OtherBits, MemBits and BranchBits are the three record lengths.
	OtherBits  = fmtBits + tagBits + classBits + 3*regBits
	MemBits    = fmtBits + tagBits + storeBits + sizeBits + 2*regBits + addrBits
	BranchBits = fmtBits + tagBits + ctrlBits + takenBits + 3*regBits + pcBits + targetBits
)

// MemBytes returns the access width of an M record (1, 2 or 4 bytes).
func (r Record) MemBytes() uint32 {
	if r.Size == 0 {
		return 4
	}
	return uint32(r.Size)
}

// sizeCode maps an access width onto the 2-bit wire field.
func sizeCode(size uint8) uint64 {
	switch size {
	case 1:
		return 0
	case 2:
		return 1
	default:
		return 2
	}
}

// sizeFromCode inverts sizeCode.
func sizeFromCode(c uint64) uint8 {
	switch c {
	case 0:
		return 1
	case 1:
		return 2
	default:
		return 4
	}
}

// BitLen returns the encoded length of the record in bits.
func (r Record) BitLen() int {
	switch r.Kind {
	case KindMem:
		return MemBits
	case KindBranch:
		return BranchBits
	default:
		return OtherBits
	}
}

// ErrBadRecord reports a malformed on-the-wire record.
var ErrBadRecord = errors.New("trace: malformed record")

func encodeReg(r isa.Reg) uint64 {
	if r == isa.NoReg || r >= isa.NumRegs {
		return regNone
	}
	return uint64(r)
}

func decodeReg(v uint64) isa.Reg {
	if v == regNone {
		return isa.NoReg
	}
	return isa.Reg(v)
}

// EncodeTo writes the record to bw in its wire format.
func (r Record) EncodeTo(bw *bitio.Writer) error {
	if err := bw.WriteBits(uint64(r.Kind), fmtBits); err != nil {
		return err
	}
	if err := bw.WriteBool(r.Tag); err != nil {
		return err
	}
	switch r.Kind {
	case KindOther:
		if err := bw.WriteBits(uint64(r.Class), classBits); err != nil {
			return err
		}
		for _, reg := range []isa.Reg{r.Dest, r.Src1, r.Src2} {
			if err := bw.WriteBits(encodeReg(reg), regBits); err != nil {
				return err
			}
		}
	case KindMem:
		if err := bw.WriteBool(r.Store); err != nil {
			return err
		}
		if err := bw.WriteBits(sizeCode(r.Size), sizeBits); err != nil {
			return err
		}
		// reg is the destination for loads, the data source for stores.
		reg := r.Dest
		if r.Store {
			reg = r.Src2
		}
		if err := bw.WriteBits(encodeReg(reg), regBits); err != nil {
			return err
		}
		if err := bw.WriteBits(encodeReg(r.Src1), regBits); err != nil {
			return err
		}
		if err := bw.WriteBits(uint64(r.Addr), addrBits); err != nil {
			return err
		}
	case KindBranch:
		if err := bw.WriteBits(uint64(r.Ctrl), ctrlBits); err != nil {
			return err
		}
		if err := bw.WriteBool(r.Taken); err != nil {
			return err
		}
		for _, reg := range []isa.Reg{r.Dest, r.Src1, r.Src2} {
			if err := bw.WriteBits(encodeReg(reg), regBits); err != nil {
				return err
			}
		}
		if err := bw.WriteBits(uint64(r.PC), pcBits); err != nil {
			return err
		}
		if err := bw.WriteBits(uint64(r.Target), targetBits); err != nil {
			return err
		}
	default:
		return ErrBadRecord
	}
	return nil
}

// DecodeFrom reads one record from br.
func DecodeFrom(br *bitio.Reader) (Record, error) {
	var r Record
	k, err := br.ReadBits(fmtBits)
	if err != nil {
		return r, err
	}
	r.Kind = Kind(k)
	if r.Tag, err = br.ReadBool(); err != nil {
		return r, err
	}
	switch r.Kind {
	case KindOther:
		c, err := br.ReadBits(classBits)
		if err != nil {
			return r, err
		}
		r.Class = OpClass(c)
		regs := [3]isa.Reg{}
		for i := range regs {
			v, err := br.ReadBits(regBits)
			if err != nil {
				return r, err
			}
			regs[i] = decodeReg(v)
		}
		r.Dest, r.Src1, r.Src2 = regs[0], regs[1], regs[2]
	case KindMem:
		if r.Store, err = br.ReadBool(); err != nil {
			return r, err
		}
		sc, err := br.ReadBits(sizeBits)
		if err != nil {
			return r, err
		}
		r.Size = sizeFromCode(sc)
		reg, err := br.ReadBits(regBits)
		if err != nil {
			return r, err
		}
		base, err := br.ReadBits(regBits)
		if err != nil {
			return r, err
		}
		addr, err := br.ReadBits(addrBits)
		if err != nil {
			return r, err
		}
		r.Src1 = decodeReg(base)
		if r.Store {
			r.Src2 = decodeReg(reg)
			r.Dest = isa.NoReg
		} else {
			r.Dest = decodeReg(reg)
			r.Src2 = isa.NoReg
		}
		r.Addr = uint32(addr)
	case KindBranch:
		c, err := br.ReadBits(ctrlBits)
		if err != nil {
			return r, err
		}
		r.Ctrl = isa.CtrlKind(c)
		if r.Taken, err = br.ReadBool(); err != nil {
			return r, err
		}
		regs := [3]isa.Reg{}
		for i := range regs {
			v, err := br.ReadBits(regBits)
			if err != nil {
				return r, err
			}
			regs[i] = decodeReg(v)
		}
		r.Dest, r.Src1, r.Src2 = regs[0], regs[1], regs[2]
		pc, err := br.ReadBits(pcBits)
		if err != nil {
			return r, err
		}
		r.PC = uint32(pc)
		tgt, err := br.ReadBits(targetBits)
		if err != nil {
			return r, err
		}
		r.Target = uint32(tgt)
	default:
		return r, fmt.Errorf("%w: format %d", ErrBadRecord, k)
	}
	return r, nil
}

// FromInst builds the trace record describing one dynamic execution of in at
// pc. addr/taken/target supply the dynamic outcome; they are ignored for
// classes that do not use them.
func FromInst(in isa.Inst, pc, addr uint32, taken bool, target uint32) Record {
	s1, s2 := in.Srcs()
	r := Record{Dest: in.Dst(), Src1: s1, Src2: s2}
	switch in.Class() {
	case isa.ClassLoad:
		r.Kind = KindMem
		r.Addr = addr
		r.Size = uint8(in.MemBytes())
	case isa.ClassStore:
		r.Kind = KindMem
		r.Store = true
		r.Addr = addr
		r.Size = uint8(in.MemBytes())
	case isa.ClassCtrl:
		r.Kind = KindBranch
		r.Ctrl = in.Ctrl()
		r.Taken = taken
		r.PC = pc
		r.Target = target
	case isa.ClassMul:
		r.Kind = KindOther
		r.Class = OpMul
	case isa.ClassDiv:
		r.Kind = KindOther
		r.Class = OpDiv
	default:
		r.Kind = KindOther
		r.Class = OpALU
	}
	return r
}

// String renders the record for debugging.
func (r Record) String() string {
	tag := ""
	if r.Tag {
		tag = " [wp]"
	}
	switch r.Kind {
	case KindMem:
		op := "ld"
		if r.Store {
			op = "st"
		}
		return fmt.Sprintf("M{%s @%#x d=%d b=%d s=%d}%s", op, r.Addr, r.Dest, r.Src1, r.Src2, tag)
	case KindBranch:
		return fmt.Sprintf("B{%s taken=%t ->%#x d=%d s=%d,%d}%s", r.Ctrl, r.Taken, r.Target, r.Dest, r.Src1, r.Src2, tag)
	default:
		return fmt.Sprintf("O{%s d=%d s=%d,%d}%s", r.Class, r.Dest, r.Src1, r.Src2, tag)
	}
}
