package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitio"
)

// Source yields a stream of trace records. Next returns io.EOF when the
// trace is exhausted. ReSim consumes records strictly in order; wrong-path
// handling needs one record of lookahead, provided by Buffered.
type Source interface {
	Next() (Record, error)
}

// fileMagic identifies a ReSim trace file ("RSTR").
const fileMagic = 0x52535452

// fileVersion is the current trace container version.
const fileVersion = 1

// Header is the trace file preamble: where execution starts and a count of
// records, so readers can pre-validate traces produced off-line.
type Header struct {
	StartPC uint32
	Records uint64 // 0 when the producer streamed without a known count
}

// Writer encodes records into a trace file: a fixed header followed by
// bit-packed records.
type Writer struct {
	bw      *bitio.Writer
	buf     *bufio.Writer
	records uint64
	byKind  [3]uint64
	tagged  uint64
}

// NewWriter writes a trace container to w, beginning with hdr.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	buf := bufio.NewWriterSize(w, 1<<16)
	var raw [20]byte
	binary.BigEndian.PutUint32(raw[0:], fileMagic)
	binary.BigEndian.PutUint32(raw[4:], fileVersion)
	binary.BigEndian.PutUint32(raw[8:], hdr.StartPC)
	binary.BigEndian.PutUint64(raw[12:], hdr.Records)
	if _, err := buf.Write(raw[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bitio.NewWriter(buf), buf: buf}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if err := r.EncodeTo(w.bw); err != nil {
		return err
	}
	w.records++
	if int(r.Kind) < len(w.byKind) {
		w.byKind[r.Kind]++
	}
	if r.Tag {
		w.tagged++
	}
	return nil
}

// Close flushes buffered bits and bytes. It does not close the underlying
// writer.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.buf.Flush()
}

// Records returns the number of records written.
func (w *Writer) Records() uint64 { return w.records }

// BitsWritten returns payload bits written (excluding header and padding).
func (w *Writer) BitsWritten() uint64 { return w.bw.BitsWritten() }

// Tagged returns the number of wrong-path (Tag=1) records written.
func (w *Writer) Tagged() uint64 { return w.tagged }

// KindCount returns the number of records written with kind k.
func (w *Writer) KindCount(k Kind) uint64 {
	if int(k) < len(w.byKind) {
		return w.byKind[k]
	}
	return 0
}

// BitsPerRecord returns the average encoded bits per record so far. This is
// the quantity Table 3 reports as "bits/Instr".
func (w *Writer) BitsPerRecord() float64 {
	if w.records == 0 {
		return 0
	}
	return float64(w.bw.BitsWritten()) / float64(w.records)
}

// Reader decodes a trace container produced by Writer.
type Reader struct {
	br     *bitio.Reader
	hdr    Header
	read   uint64
	capped bool
}

// NewReader opens a trace container from r.
func NewReader(r io.Reader) (*Reader, error) {
	buf := bufio.NewReaderSize(r, 1<<16)
	var raw [20]byte
	if _, err := io.ReadFull(buf, raw[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.BigEndian.Uint32(raw[0:]) != fileMagic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.BigEndian.Uint32(raw[4:]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	rd := &Reader{br: bitio.NewReader(buf)}
	rd.hdr.StartPC = binary.BigEndian.Uint32(raw[8:])
	rd.hdr.Records = binary.BigEndian.Uint64(raw[12:])
	rd.capped = rd.hdr.Records != 0
	return rd, nil
}

// Header returns the file header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next record or io.EOF.
func (r *Reader) Next() (Record, error) {
	if r.capped && r.read >= r.hdr.Records {
		return Record{}, io.EOF
	}
	rec, err := DecodeFrom(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Flush padding at end of stream looks like a truncated record.
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	r.read++
	return rec, nil
}

// Open detects the container format (raw or delta-compressed) by its magic
// and returns a record source plus the header.
func Open(r io.Reader) (Source, Header, error) {
	buf := bufio.NewReaderSize(r, 1<<16)
	magic, err := buf.Peek(4)
	if err != nil {
		return nil, Header{}, fmt.Errorf("trace: short file: %w", err)
	}
	switch binary.BigEndian.Uint32(magic) {
	case fileMagic:
		rd, err := NewReader(buf)
		if err != nil {
			return nil, Header{}, err
		}
		return rd, rd.Header(), nil
	case compressedMagic:
		rd, err := NewCompressedReader(buf)
		if err != nil {
			return nil, Header{}, err
		}
		return rd, rd.Header(), nil
	default:
		return nil, Header{}, errors.New("trace: unrecognized container magic")
	}
}

// SliceSource serves records from memory; it is the Source used by
// benchmarks so that trace decode cost does not pollute engine timing.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, error) {
	if s.pos >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the source to the beginning (benchmark reuse).
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records.
func (s *SliceSource) Len() int { return len(s.recs) }

// Buffered adds one-record lookahead and tagged-block skipping on top of any
// Source. The engine uses Peek to decide whether a wrong-path block follows
// a branch, and SkipTagged to implement the paper's "tagged instructions
// that have not been fetched by the branch resolution point at Commit are
// discarded".
type Buffered struct {
	src    Source
	have   bool
	head   Record
	err    error
	count  uint64 // records handed out via Next
	pulled uint64 // records pulled from the underlying source (incl. lookahead)

	// slice, when the underlying source is a SliceSource, short-circuits
	// every operation to direct indexing: no per-record interface call, no
	// copy into the lookahead buffer. This is the path cached traces replay
	// through (tracecache hands engines SliceSources), i.e. the hot loop of
	// warm sweeps and trace-driven benchmarks. sliceBase is the source's
	// position at wrap time, so Pos stays relative to this reader like the
	// generic path's pulled counter.
	slice     *SliceSource
	sliceBase int
}

// NewBuffered wraps src with lookahead.
func NewBuffered(src Source) *Buffered {
	b := &Buffered{src: src}
	if s, ok := src.(*SliceSource); ok {
		b.slice, b.sliceBase = s, s.pos
	}
	return b
}

func (b *Buffered) fill() {
	if b.have || b.err != nil {
		return
	}
	r, err := b.src.Next()
	if err != nil {
		b.err = err
		return
	}
	b.head, b.have = r, true
	b.pulled++
}

// Peek returns the next record without consuming it.
func (b *Buffered) Peek() (Record, error) {
	if s := b.slice; s != nil {
		if s.pos >= len(s.recs) {
			return Record{}, io.EOF
		}
		return s.recs[s.pos], nil
	}
	b.fill()
	if !b.have {
		return Record{}, b.err
	}
	return b.head, nil
}

// Next consumes and returns the next record.
func (b *Buffered) Next() (Record, error) {
	if s := b.slice; s != nil {
		if s.pos >= len(s.recs) {
			return Record{}, io.EOF
		}
		r := s.recs[s.pos]
		s.pos++
		b.count++
		return r, nil
	}
	b.fill()
	if !b.have {
		return Record{}, b.err
	}
	b.have = false
	b.count++
	return b.head, nil
}

// Advance consumes the record a preceding Peek/PeekRef returned, without
// copying it again — the engine's fetch loop peeks every record before
// deciding to take it, so Next's second copy is pure overhead there. A
// no-op when nothing is buffered.
func (b *Buffered) Advance() {
	if s := b.slice; s != nil {
		if s.pos < len(s.recs) {
			s.pos++
			b.count++
		}
		return
	}
	if b.have {
		b.have = false
		b.count++
	}
}

// PeekRef is Peek without the value copy: the returned pointer aliases the
// lookahead buffer (or the backing record slice) and is valid only until
// the next Advance/Next/Skip. The slice fast path is kept small enough to
// inline into the engine's fetch loop.
func (b *Buffered) PeekRef() (*Record, error) {
	if s := b.slice; s != nil && s.pos < len(s.recs) {
		return &s.recs[s.pos], nil
	}
	return b.peekRefSlow()
}

func (b *Buffered) peekRefSlow() (*Record, error) {
	if b.slice != nil {
		return nil, io.EOF
	}
	b.fill()
	if !b.have {
		return nil, b.err
	}
	return &b.head, nil
}

// SkipTagged discards consecutive Tag=1 records and returns how many were
// discarded.
func (b *Buffered) SkipTagged() int {
	if s := b.slice; s != nil {
		n := 0
		for s.pos < len(s.recs) && s.recs[s.pos].Tag {
			s.pos++
			n++
		}
		return n
	}
	n := 0
	for {
		r, err := b.Peek()
		if err != nil || !r.Tag {
			return n
		}
		_, _ = b.Next()
		b.count-- // discarded records are not "consumed instructions"
		n++
	}
}

// Consumed returns the number of records handed to the caller via Next,
// excluding records discarded by SkipTagged.
func (b *Buffered) Consumed() uint64 { return b.count }

// Pos returns the stream position: how many records of the underlying
// source have been irrevocably taken (consumed or discarded), excluding the
// one sitting in the lookahead buffer. A fresh Buffered over an identical
// source, advanced past Pos records with Skip, resumes the exact stream —
// the re-attachment contract engine checkpoints rely on.
func (b *Buffered) Pos() uint64 {
	if s := b.slice; s != nil {
		return uint64(s.pos - b.sliceBase)
	}
	if b.have {
		return b.pulled - 1
	}
	return b.pulled
}

// Skip discards n records from the start of the stream (checkpoint
// re-attachment on a fresh source). It fails if the source drains first.
func (b *Buffered) Skip(n uint64) error {
	if s := b.slice; s != nil {
		if left := uint64(len(s.recs) - s.pos); n > left {
			s.pos = len(s.recs)
			return fmt.Errorf("trace: source drained after %d of %d skipped records: %w", left, n, io.EOF)
		}
		s.pos += int(n)
		return nil
	}
	for i := uint64(0); i < n; i++ {
		b.fill()
		if !b.have {
			return fmt.Errorf("trace: source drained after %d of %d skipped records: %w", i, n, b.err)
		}
		b.have = false
	}
	return nil
}
