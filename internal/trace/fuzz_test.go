package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/bitio"
)

// FuzzDecodeFrom feeds arbitrary bytes to the raw record decoder: it must
// never panic and must either produce a structurally valid record or a
// clean error.
func FuzzDecodeFrom(f *testing.F) {
	// Seed with valid encodings.
	for _, r := range []Record{
		{Kind: KindOther, Class: OpALU, Dest: 1, Src1: 2, Src2: 3},
		{Kind: KindMem, Size: 4, Addr: 0x1234},
		{Kind: KindBranch, Taken: true, PC: 0x1000, Target: 0x2000},
	} {
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		_ = r.EncodeTo(bw)
		_ = bw.Flush()
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bitio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			rec, err := DecodeFrom(br)
			if err != nil {
				return // clean error/EOF is fine
			}
			// Decoded records must be re-encodable.
			var buf bytes.Buffer
			bw := bitio.NewWriter(&buf)
			if err := rec.EncodeTo(bw); err != nil {
				t.Fatalf("decoded record %v does not re-encode: %v", rec, err)
			}
			if int(bw.BitsWritten()) != rec.BitLen() {
				t.Fatalf("decoded record %v: BitLen %d, encoded %d",
					rec, rec.BitLen(), bw.BitsWritten())
			}
		}
	})
}

// FuzzCompressedReader feeds arbitrary containers to the compressed reader:
// it must never panic and never loop forever.
func FuzzCompressedReader(f *testing.F) {
	var seed bytes.Buffer
	w, _ := NewCompressedWriter(&seed, Header{StartPC: 0x1000, Records: 2})
	_ = w.Write(Record{Kind: KindMem, Size: 4, Addr: 0x2000})
	_ = w.Write(Record{Kind: KindBranch, Taken: true, PC: 0x1000, Target: 0x3000})
	_ = w.Close()
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(seed.Bytes()[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewCompressedReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1024; i++ {
			if _, err := r.Next(); err != nil {
				if err == io.EOF {
					return
				}
				return // any clean error is acceptable
			}
		}
	})
}

// FuzzRawReader does the same for the version-1 container.
func FuzzRawReader(f *testing.F) {
	var seed bytes.Buffer
	w, _ := NewWriter(&seed, Header{StartPC: 0x1000, Records: 1})
	_ = w.Write(Record{Kind: KindOther, Class: OpMul, Dest: 5})
	_ = w.Close()
	f.Add(seed.Bytes())
	f.Add(make([]byte, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1024; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
