// Package bitio implements MSB-first bit-level reading and writing on top of
// byte streams. ReSim's trace records (paper §V.A) have per-format bit
// lengths (the paper reports 41-47 average trace bits per instruction), so
// the trace encoder needs sub-byte packing.
package bitio

import (
	"errors"
	"io"
)

// ErrBitOverflow is returned when a value does not fit in the requested width.
var ErrBitOverflow = errors.New("bitio: value wider than field")

// Writer packs bit fields MSB-first into an io.Writer.
type Writer struct {
	w    io.Writer
	cur  byte
	nCur uint // bits currently buffered in cur (0..7)
	bits uint64
	err  error
	buf  [1]byte
}

// NewWriter returns a bit writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteBits writes the low `width` bits of v, MSB first. width must be ≤ 64.
func (bw *Writer) WriteBits(v uint64, width uint) error {
	if bw.err != nil {
		return bw.err
	}
	if width > 64 {
		return ErrBitOverflow
	}
	if width < 64 && v >= 1<<width {
		bw.err = ErrBitOverflow
		return bw.err
	}
	for i := int(width) - 1; i >= 0; i-- {
		bit := byte((v >> uint(i)) & 1)
		bw.cur = bw.cur<<1 | bit
		bw.nCur++
		bw.bits++
		if bw.nCur == 8 {
			bw.buf[0] = bw.cur
			if _, err := bw.w.Write(bw.buf[:]); err != nil {
				bw.err = err
				return err
			}
			bw.cur, bw.nCur = 0, 0
		}
	}
	return nil
}

// WriteBool writes a single bit.
func (bw *Writer) WriteBool(b bool) error {
	if b {
		return bw.WriteBits(1, 1)
	}
	return bw.WriteBits(0, 1)
}

// Flush pads the current partial byte with zero bits and writes it out.
func (bw *Writer) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.nCur > 0 {
		bw.buf[0] = bw.cur << (8 - bw.nCur)
		if _, err := bw.w.Write(bw.buf[:]); err != nil {
			bw.err = err
			return err
		}
		bw.cur, bw.nCur = 0, 0
	}
	return nil
}

// BitsWritten reports the total number of payload bits written (excluding
// flush padding).
func (bw *Writer) BitsWritten() uint64 { return bw.bits }

// Err returns the first error encountered, if any.
func (bw *Writer) Err() error { return bw.err }

// Reader unpacks MSB-first bit fields from an io.Reader.
type Reader struct {
	r    io.Reader
	cur  byte
	nCur uint // bits remaining in cur
	bits uint64
	err  error
	buf  [1]byte
}

// NewReader returns a bit reader consuming from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadBits reads `width` bits MSB-first and returns them right-aligned.
func (br *Reader) ReadBits(width uint) (uint64, error) {
	if br.err != nil {
		return 0, br.err
	}
	if width > 64 {
		return 0, ErrBitOverflow
	}
	var v uint64
	for i := uint(0); i < width; i++ {
		if br.nCur == 0 {
			if _, err := io.ReadFull(br.r, br.buf[:]); err != nil {
				br.err = err
				return 0, err
			}
			br.cur, br.nCur = br.buf[0], 8
		}
		v = v<<1 | uint64(br.cur>>7)
		br.cur <<= 1
		br.nCur--
		br.bits++
	}
	return v, nil
}

// ReadBool reads a single bit.
func (br *Reader) ReadBool() (bool, error) {
	v, err := br.ReadBits(1)
	return v == 1, err
}

// AlignByte discards bits up to the next byte boundary.
func (br *Reader) AlignByte() {
	br.bits += uint64(br.nCur)
	br.cur, br.nCur = 0, 0
}

// BitsRead reports the total number of bits consumed.
func (br *Reader) BitsRead() uint64 { return br.bits }

// Err returns the first error encountered, if any.
func (br *Reader) Err() error { return br.err }
