package bitio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	fields := []struct {
		v     uint64
		width uint
	}{
		{0b101, 3}, {1, 1}, {0, 1}, {0xDEADBEEF, 32}, {0x3F, 6},
		{0, 64}, {^uint64(0), 64}, {0x1FFF, 13},
	}
	var total uint64
	for _, f := range fields {
		if err := w.WriteBits(f.v, f.width); err != nil {
			t.Fatalf("WriteBits(%x,%d): %v", f.v, f.width, err)
		}
		total += uint64(f.width)
	}
	if w.BitsWritten() != total {
		t.Errorf("BitsWritten = %d, want %d", w.BitsWritten(), total)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for _, f := range fields {
		got, err := r.ReadBits(f.width)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", f.width, err)
		}
		if got != f.v {
			t.Errorf("ReadBits(%d) = %x, want %x", f.width, got, f.v)
		}
	}
}

func TestOverflowRejected(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteBits(4, 2); err != ErrBitOverflow {
		t.Errorf("want ErrBitOverflow, got %v", err)
	}
	// Writer is sticky after an error.
	if err := w.WriteBits(1, 1); err != ErrBitOverflow {
		t.Errorf("writer not sticky: %v", err)
	}
}

func TestWidthTooLarge(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteBits(0, 65); err != ErrBitOverflow {
		t.Errorf("want ErrBitOverflow for width 65, got %v", err)
	}
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.ReadBits(65); err != ErrBitOverflow {
		t.Errorf("want ErrBitOverflow for read width 65, got %v", err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		if err := w.WriteBool(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range pattern {
		got, err := r.ReadBool()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestEOFPropagates(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xFF}))
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
	// Reader is sticky after EOF.
	if _, err := r.ReadBits(1); err != io.EOF {
		t.Errorf("reader not sticky: %v", err)
	}
}

func TestAlignByte(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBits(0b101, 3)
	_ = w.Flush()
	_, _ = w.w.Write([]byte{0xAB})
	r := NewReader(&buf)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("prefix = %b", v)
	}
	r.AlignByte()
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Errorf("aligned byte = %x, want ab", v)
	}
}

func TestFlushPadsWithZeros(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBits(1, 1)
	_ = w.Flush()
	if got := buf.Bytes(); len(got) != 1 || got[0] != 0x80 {
		t.Errorf("flushed byte = %x, want 80", got)
	}
}

// Property: random field sequences round-trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + rng.Intn(60)
		widths := make([]uint, n)
		vals := make([]uint64, n)
		for i := range widths {
			widths[i] = uint(1 + rng.Intn(64))
			if widths[i] == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<widths[i] - 1)
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range widths {
			if err := w.WriteBits(vals[i], widths[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		for i := range widths {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
