// Package funcsim is the functional-simulation substrate: the SimpleScalar
// stand-in that executes programs for the ISA in internal/isa and produces
// ReSim input traces. The paper generates traces with "a modified
// (SimpleScalar) functional simulator" that includes a branch predictor
// (sim-bpred) and inserts tagged wrong-path blocks after mispredicted
// branches (§V.A); Tracer implements that, and Source streams records to the
// timing engine on the fly (the FAST-style coupling the paper discusses).
package funcsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/isa"
)

// Memory layout constants. The machine uses a single power-of-two arena;
// addresses are masked into it. Synthetic programs and their data live well
// inside the arena; masking keeps wrong-path (garbage) addresses in range
// while preserving the locality the caches see (DESIGN.md, substitutions).
const (
	// DefaultMemBits sizes the arena at 8 MiB.
	DefaultMemBits = 23
	// CodeBase is where program text is loaded by convention.
	CodeBase = 0x0000_1000
	// DataBase is where static data is placed by convention.
	DataBase = 0x0010_0000
)

// Segment is a contiguous chunk of initialized memory.
type Segment struct {
	Base uint32
	Data []byte
}

// Program is a loadable program image.
type Program struct {
	Entry    uint32
	Segments []Segment
}

// AssembleAt encodes instructions into a Segment at base.
func AssembleAt(base uint32, code []isa.Inst) Segment {
	data := make([]byte, 4*len(code))
	for i, in := range code {
		binary.LittleEndian.PutUint32(data[4*i:], in.Word())
	}
	return Segment{Base: base, Data: data}
}

// ErrHalted is returned when stepping a halted machine.
var ErrHalted = errors.New("funcsim: machine halted")

// StepInfo reports the timing-relevant outcome of one executed instruction.
type StepInfo struct {
	PC     uint32
	Inst   isa.Inst
	Addr   uint32 // effective address for loads/stores
	Taken  bool   // control flow: branch resolved taken
	Target uint32 // control flow: resolved target (valid when Taken)
	NextPC uint32
}

// Machine is the functional simulator state.
type Machine struct {
	mem    []byte
	mask   uint32
	regs   [isa.NumRegs]uint32
	pc     uint32
	halted bool
	icount uint64
}

// NewMachine loads prog into a fresh machine with a 1<<memBits arena.
// memBits of 0 selects DefaultMemBits.
func NewMachine(prog *Program, memBits uint) (*Machine, error) {
	if memBits == 0 {
		memBits = DefaultMemBits
	}
	if memBits < 12 || memBits > 30 {
		return nil, fmt.Errorf("funcsim: memBits %d out of range [12,30]", memBits)
	}
	m := &Machine{
		mem:  make([]byte, 1<<memBits),
		mask: uint32(1<<memBits - 1),
		pc:   prog.Entry,
	}
	for _, seg := range prog.Segments {
		if int(seg.Base&m.mask)+len(seg.Data) > len(m.mem) {
			return nil, fmt.Errorf("funcsim: segment at %#x (%d bytes) exceeds arena", seg.Base, len(seg.Data))
		}
		copy(m.mem[seg.Base&m.mask:], seg.Data)
	}
	// Stack grows down from the top of the arena.
	m.regs[isa.RegSP] = uint32(len(m.mem) - 16)
	m.regs[isa.RegFP] = m.regs[isa.RegSP]
	return m, nil
}

// PC returns the current program counter.
func (m *Machine) PC() uint32 { return m.pc }

// Halted reports whether the program has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// InstCount returns the number of instructions executed.
func (m *Machine) InstCount() uint64 { return m.icount }

// Reg returns the value of architectural register r.
func (m *Machine) Reg(r isa.Reg) uint32 {
	if r >= isa.NumRegs {
		return 0
	}
	return m.regs[r]
}

// SetReg sets architectural register r (writes to r0 are discarded).
func (m *Machine) SetReg(r isa.Reg, v uint32) {
	if r == isa.RegZero || r >= isa.NumRegs {
		return
	}
	m.regs[r] = v
}

// LoadWord reads a 32-bit word at the (masked, aligned) address.
func (m *Machine) LoadWord(addr uint32) uint32 {
	a := addr & m.mask &^ 3
	return binary.LittleEndian.Uint32(m.mem[a:])
}

// StoreWord writes a 32-bit word at the (masked, aligned) address.
func (m *Machine) StoreWord(addr, v uint32) {
	a := addr & m.mask &^ 3
	binary.LittleEndian.PutUint32(m.mem[a:], v)
}

// LoadByte reads one byte at the (masked) address.
func (m *Machine) LoadByte(addr uint32) uint8 { return m.mem[addr&m.mask] }

// StoreByte writes one byte at the (masked) address.
func (m *Machine) StoreByte(addr uint32, v uint8) { m.mem[addr&m.mask] = v }

// LoadHalf reads a 16-bit halfword at the (masked, aligned) address.
func (m *Machine) LoadHalf(addr uint32) uint16 {
	a := addr & m.mask &^ 1
	return binary.LittleEndian.Uint16(m.mem[a:])
}

// StoreHalf writes a 16-bit halfword at the (masked, aligned) address.
func (m *Machine) StoreHalf(addr uint32, v uint16) {
	a := addr & m.mask &^ 1
	binary.LittleEndian.PutUint16(m.mem[a:], v)
}

// FetchInst decodes the instruction at pc without executing it (used for
// wrong-path walks).
func (m *Machine) FetchInst(pc uint32) isa.Inst {
	return isa.Decode(m.LoadWord(pc), pc)
}

// Step executes one instruction and reports its outcome.
func (m *Machine) Step() (StepInfo, error) {
	if m.halted {
		return StepInfo{}, ErrHalted
	}
	pc := m.pc
	in := m.FetchInst(pc)
	info := StepInfo{PC: pc, Inst: in, NextPC: pc + 4}

	rv := func(r isa.Reg) uint32 { return m.regs[r&31] }
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		m.SetReg(in.A, rv(in.B)+rv(in.C))
	case isa.OpSub:
		m.SetReg(in.A, rv(in.B)-rv(in.C))
	case isa.OpAnd:
		m.SetReg(in.A, rv(in.B)&rv(in.C))
	case isa.OpOr:
		m.SetReg(in.A, rv(in.B)|rv(in.C))
	case isa.OpXor:
		m.SetReg(in.A, rv(in.B)^rv(in.C))
	case isa.OpNor:
		m.SetReg(in.A, ^(rv(in.B) | rv(in.C)))
	case isa.OpSlt:
		m.SetReg(in.A, b2u(int32(rv(in.B)) < int32(rv(in.C))))
	case isa.OpSltu:
		m.SetReg(in.A, b2u(rv(in.B) < rv(in.C)))
	case isa.OpSll:
		m.SetReg(in.A, rv(in.B)<<(rv(in.C)&31))
	case isa.OpSrl:
		m.SetReg(in.A, rv(in.B)>>(rv(in.C)&31))
	case isa.OpSra:
		m.SetReg(in.A, uint32(int32(rv(in.B))>>(rv(in.C)&31)))
	case isa.OpMul:
		m.SetReg(in.A, uint32(int32(rv(in.B))*int32(rv(in.C))))
	case isa.OpDiv:
		d := int32(rv(in.C))
		if d == 0 {
			m.SetReg(in.A, 0) // no trap: divide by zero yields 0
		} else {
			m.SetReg(in.A, uint32(int32(rv(in.B))/d))
		}
	case isa.OpAddi:
		m.SetReg(in.A, rv(in.B)+uint32(in.Imm))
	case isa.OpAndi:
		m.SetReg(in.A, rv(in.B)&uint32(uint16(in.Imm)))
	case isa.OpOri:
		m.SetReg(in.A, rv(in.B)|uint32(uint16(in.Imm)))
	case isa.OpXori:
		m.SetReg(in.A, rv(in.B)^uint32(uint16(in.Imm)))
	case isa.OpSlti:
		m.SetReg(in.A, b2u(int32(rv(in.B)) < in.Imm))
	case isa.OpLui:
		m.SetReg(in.A, uint32(in.Imm)<<16)
	case isa.OpLw:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.SetReg(in.A, m.LoadWord(info.Addr))
	case isa.OpSw:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.StoreWord(info.Addr, rv(in.A))
	case isa.OpLb:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.SetReg(in.A, uint32(int32(int8(m.LoadByte(info.Addr)))))
	case isa.OpLbu:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.SetReg(in.A, uint32(m.LoadByte(info.Addr)))
	case isa.OpLh:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.SetReg(in.A, uint32(int32(int16(m.LoadHalf(info.Addr)))))
	case isa.OpLhu:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.SetReg(in.A, uint32(m.LoadHalf(info.Addr)))
	case isa.OpSb:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.StoreByte(info.Addr, uint8(rv(in.A)))
	case isa.OpSh:
		info.Addr = rv(in.B) + uint32(in.Imm)
		m.StoreHalf(info.Addr, uint16(rv(in.A)))
	case isa.OpBeq:
		info.Taken = rv(in.A) == rv(in.B)
	case isa.OpBne:
		info.Taken = rv(in.A) != rv(in.B)
	case isa.OpBlez:
		info.Taken = int32(rv(in.A)) <= 0
	case isa.OpBgtz:
		info.Taken = int32(rv(in.A)) > 0
	case isa.OpJ:
		info.Taken = true
		info.Target = in.Target
	case isa.OpJal:
		info.Taken = true
		info.Target = in.Target
		m.SetReg(isa.RegRA, pc+4)
	case isa.OpJr:
		info.Taken = true
		info.Target = rv(in.B) &^ 3
	case isa.OpJalr:
		info.Taken = true
		info.Target = rv(in.B) &^ 3
		m.SetReg(in.A, pc+4)
	case isa.OpHalt:
		m.halted = true
	}

	if in.Class() == isa.ClassCtrl {
		if info.Taken {
			if in.Ctrl() == isa.CtrlCond {
				info.Target = in.Target // decoded relative target
			}
			info.NextPC = info.Target
		} else {
			// Not-taken conditionals still have a resolved target field for
			// the trace (the would-be destination).
			info.Target = in.Target
		}
	}
	m.pc = info.NextPC
	m.icount++
	return info, nil
}

// Run executes up to limit instructions (0 = no limit) or until HALT,
// returning the number executed.
func (m *Machine) Run(limit uint64) (uint64, error) {
	var n uint64
	for !m.halted && (limit == 0 || n < limit) {
		if _, err := m.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
