package funcsim

import (
	"io"
	"testing"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// prog assembles code at CodeBase with entry at its start.
func prog(code []isa.Inst, data ...Segment) *Program {
	p := &Program{Entry: CodeBase, Segments: []Segment{AssembleAt(CodeBase, code)}}
	p.Segments = append(p.Segments, data...)
	return p
}

func mustMachine(t *testing.T, p *Program) *Machine {
	t.Helper()
	m, err := NewMachine(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmeticProgram(t *testing.T) {
	code := []isa.Inst{
		isa.I(isa.OpOri, 1, 0, 6),
		isa.I(isa.OpOri, 2, 0, 7),
		isa.Mul(3, 1, 2),    // 42
		isa.Addi(3, 3, 100), // 142
		isa.Div(4, 3, 1),    // 23
		isa.Sub(5, 3, 4),    // 119
		isa.Halt(),
	}
	m := mustMachine(t, prog(code))
	n, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("executed %d instructions, want 7", n)
	}
	if !m.Halted() {
		t.Error("machine not halted")
	}
	if got := m.Reg(3); got != 142 {
		t.Errorf("r3 = %d, want 142", got)
	}
	if got := m.Reg(4); got != 23 {
		t.Errorf("r4 = %d, want 23", got)
	}
	if got := m.Reg(5); got != 119 {
		t.Errorf("r5 = %d, want 119", got)
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 10..1 into r1.
	code := []isa.Inst{
		isa.I(isa.OpOri, 2, 0, 10),
		isa.Add(1, 1, 2), // loop:
		isa.Addi(2, 2, -1),
		isa.Bgtz(2, -3), // back to loop
		isa.Halt(),
	}
	m := mustMachine(t, prog(code))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestLoadStore(t *testing.T) {
	code := append(isa.Li(10, DataBase),
		isa.I(isa.OpOri, 1, 0, 0x1234),
		isa.Sw(1, 10, 8),
		isa.Lw(2, 10, 8),
		isa.Halt(),
	)
	m := mustMachine(t, prog(code))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(2); got != 0x1234 {
		t.Errorf("r2 = %#x, want 0x1234", got)
	}
	if got := m.LoadWord(DataBase + 8); got != 0x1234 {
		t.Errorf("mem = %#x, want 0x1234", got)
	}
}

func TestSubWordLoadsAndStores(t *testing.T) {
	code := append(isa.Li(10, DataBase),
		isa.I(isa.OpOri, 1, 0, 0x80), // 0x80: negative as int8
		isa.Sb(1, 10, 0),             // mem[0] = 0x80
		isa.Lb(2, 10, 0),             // sign-extends to 0xFFFFFF80
		isa.Lbu(3, 10, 0),            // zero-extends to 0x80
	)
	code = append(code,
		isa.I(isa.OpOri, 4, 0, 0x7FFF),
		isa.Addi(4, 4, 1), // 0x8000: negative as int16
		isa.Sh(4, 10, 4),
		isa.Lh(5, 10, 4),  // sign-extends
		isa.Lhu(6, 10, 4), // zero-extends
		isa.Halt(),
	)
	m := mustMachine(t, prog(code))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(2); got != 0xFFFFFF80 {
		t.Errorf("lb = %#x, want 0xffffff80", got)
	}
	if got := m.Reg(3); got != 0x80 {
		t.Errorf("lbu = %#x, want 0x80", got)
	}
	if got := m.Reg(5); got != 0xFFFF8000 {
		t.Errorf("lh = %#x, want 0xffff8000", got)
	}
	if got := m.Reg(6); got != 0x8000 {
		t.Errorf("lhu = %#x, want 0x8000", got)
	}
}

func TestByteStoreOnlyTouchesOneByte(t *testing.T) {
	code := append(isa.Li(10, DataBase),
		isa.I(isa.OpOri, 1, 0, 0x1234),
		isa.Sw(1, 10, 0),
		isa.I(isa.OpOri, 2, 0, 0xFF),
		isa.Sb(2, 10, 1), // overwrite byte 1 only
		isa.Lw(3, 10, 0),
		isa.Halt(),
	)
	m := mustMachine(t, prog(code))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(3); got != 0xFF34 {
		t.Errorf("word after byte store = %#x, want 0xff34", got)
	}
}

func TestSubWordTraceRecordsCarrySize(t *testing.T) {
	code := append(isa.Li(10, DataBase),
		isa.Sb(1, 10, 0),
		isa.Lh(2, 10, 0),
		isa.Lw(3, 10, 0),
		isa.Halt(),
	)
	m := mustMachine(t, prog(code))
	tr := NewTracer(m, TraceConfig{PerfectBP: true})
	var sizes []uint8
	if _, err := tr.Run(0, func(r trace.Record) error {
		if r.Kind == trace.KindMem {
			sizes = append(sizes, r.Size)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint8{1, 2, 4}
	if len(sizes) != len(want) {
		t.Fatalf("mem records = %d, want %d", len(sizes), len(want))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("record %d size = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestCallReturn(t *testing.T) {
	funcAddr := uint32(CodeBase + 6*4)
	code := []isa.Inst{
		isa.Jal(funcAddr),          // 0
		isa.Addi(6, 5, 1),          // 1: runs after return; r6 = 43
		isa.Halt(),                 // 2
		isa.Nop(),                  // 3
		isa.Nop(),                  // 4
		isa.Nop(),                  // 5
		isa.I(isa.OpOri, 5, 0, 42), // 6: func
		isa.Jr(isa.RegRA),          // 7
	}
	m := mustMachine(t, prog(code))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(6); got != 43 {
		t.Errorf("r6 = %d, want 43", got)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	// Jump through a register loaded from a table.
	tgt := uint32(CodeBase + 5*4)
	data := Segment{Base: DataBase, Data: []byte{
		byte(tgt), byte(tgt >> 8), byte(tgt >> 16), byte(tgt >> 24),
	}}
	code := append(isa.Li(10, DataBase),
		isa.Lw(11, 10, 0),
		isa.Jr(11),                // indirect jump (not ra)
		isa.Halt(),                // skipped
		isa.I(isa.OpOri, 7, 0, 9), // 5: landing pad (after 1-inst Li)
		isa.Halt(),
	)
	// Li(10, DataBase) is 1 or 2 instructions; recompute the landing pad.
	li := isa.Li(10, DataBase)
	land := uint32(CodeBase + uint32(len(li)+3)*4)
	data.Data = []byte{byte(land), byte(land >> 8), byte(land >> 16), byte(land >> 24)}
	m := mustMachine(t, prog(code, data))
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(7); got != 9 {
		t.Errorf("r7 = %d, want 9 (indirect jump missed landing pad)", got)
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := mustMachine(t, prog([]isa.Inst{isa.Halt()}))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err != ErrHalted {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestMemoryMasking(t *testing.T) {
	m := mustMachine(t, prog([]isa.Inst{isa.Halt()}))
	// An address beyond the arena wraps instead of faulting.
	huge := uint32(0xFFFF_FF00)
	m.StoreWord(huge, 77)
	if got := m.LoadWord(huge); got != 77 {
		t.Errorf("wrapped load = %d, want 77", got)
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	code := []isa.Inst{
		isa.I(isa.OpOri, 1, 0, 9),
		isa.Div(2, 1, 3), // r3 = 0
		isa.Halt(),
	}
	m := mustMachine(t, prog(code))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(2); got != 0 {
		t.Errorf("div by zero = %d, want 0", got)
	}
}

func TestNewMachineRejectsBadSizes(t *testing.T) {
	p := prog([]isa.Inst{isa.Halt()})
	if _, err := NewMachine(p, 8); err == nil {
		t.Error("memBits 8 accepted")
	}
	if _, err := NewMachine(p, 31); err == nil {
		t.Error("memBits 31 accepted")
	}
	big := &Program{Entry: 0, Segments: []Segment{{Base: 0, Data: make([]byte, 1<<13)}}}
	if _, err := NewMachine(big, 12); err == nil {
		t.Error("oversized segment accepted")
	}
}

// branchy returns a program whose conditional branch alternates
// taken/not-taken for iters iterations.
func branchy(iters int) *Program {
	code := []isa.Inst{
		isa.I(isa.OpOri, 2, 0, int32(iters)), // counter
		isa.I(isa.OpOri, 4, 0, 1),
		isa.R(isa.OpAnd, 0, 0, 0), // placeholder so loop starts at index 2
		// loop:
		isa.R(isa.OpAnd, 3, 2, 4), // r3 = r2 & 1
		isa.Beq(3, 0, 1),          // skip the add when even
		isa.Add(5, 5, 2),
		// skip:
		isa.Addi(2, 2, -1),
		isa.Bgtz(2, -5), // back to loop
		isa.Halt(),
	}
	return prog(code)
}

func TestTracerEmitsWrongPathBlocks(t *testing.T) {
	m := mustMachine(t, branchy(64))
	cfg := TraceConfig{Predictor: bpred.Default(), WrongPathLen: 20}
	tr := NewTracer(m, cfg)
	var recs []trace.Record
	n, err := tr.Run(0, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || tr.Branches() == 0 {
		t.Fatalf("traced %d instructions, %d branches", n, tr.Branches())
	}
	if tr.Mispredicts() == 0 {
		t.Fatal("expected cold-start mispredictions")
	}
	// Tagged records appear only in runs immediately following an untagged
	// branch record; the number of runs equals Mispredicts().
	runs := 0
	for i, r := range recs {
		if !r.Tag {
			continue
		}
		if i == 0 {
			t.Fatal("trace begins with a tagged record")
		}
		prev := recs[i-1]
		if !prev.Tag {
			if prev.Kind != trace.KindBranch {
				t.Fatalf("tagged block at %d follows %v, want branch", i, prev)
			}
			runs++
		}
	}
	if runs != int(tr.Mispredicts()) {
		t.Errorf("wrong-path runs = %d, mispredicts = %d", runs, tr.Mispredicts())
	}
	// Run lengths are bounded by WrongPathLen.
	runLen := 0
	for _, r := range recs {
		if r.Tag {
			runLen++
			if runLen > cfg.WrongPathLen {
				t.Fatalf("wrong-path run exceeds %d", cfg.WrongPathLen)
			}
		} else {
			runLen = 0
		}
	}
	// Total tagged records match the tracer's own accounting.
	var tagged uint64
	for _, r := range recs {
		if r.Tag {
			tagged++
		}
	}
	if tagged != tr.WrongPathRecords() {
		t.Errorf("tagged = %d, WrongPathRecords = %d", tagged, tr.WrongPathRecords())
	}
}

func TestTracerPerfectBPHasNoWrongPath(t *testing.T) {
	m := mustMachine(t, branchy(64))
	tr := NewTracer(m, TraceConfig{PerfectBP: true, WrongPathLen: 20})
	var tagged int
	if _, err := tr.Run(0, func(r trace.Record) error {
		if r.Tag {
			tagged++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tagged != 0 {
		t.Errorf("perfect BP emitted %d tagged records", tagged)
	}
	if tr.Mispredicts() != 0 {
		t.Errorf("perfect BP counted %d mispredicts", tr.Mispredicts())
	}
}

func TestWrongPathFollowsFallThrough(t *testing.T) {
	// With a static not-taken predictor, a taken branch mispredicts and the
	// wrong path is the fall-through: three recognizable MULs.
	code := []isa.Inst{
		isa.I(isa.OpOri, 1, 0, 1),
		isa.Bgtz(1, 4), // taken, predicted not-taken -> mispredict
		isa.Mul(2, 1, 1),
		isa.Mul(3, 1, 1),
		isa.Mul(4, 1, 1),
		isa.Nop(),
		isa.Halt(), // branch target
	}
	cfg := TraceConfig{
		Predictor:    bpred.Config{Dir: bpred.DirNotTaken, BTBEntries: 512, BTBAssoc: 1, RASSize: 16},
		WrongPathLen: 3,
	}
	m := mustMachine(t, prog(code))
	tr := NewTracer(m, cfg)
	var recs []trace.Record
	if _, err := tr.Run(0, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wp []trace.Record
	for _, r := range recs {
		if r.Tag {
			wp = append(wp, r)
		}
	}
	if len(wp) != 3 {
		t.Fatalf("wrong-path block length = %d, want 3", len(wp))
	}
	for i, r := range wp {
		if r.Kind != trace.KindOther || r.Class != trace.OpMul {
			t.Errorf("wrong-path record %d = %v, want mul", i, r)
		}
	}
}

func TestWrongPathStopsAtHalt(t *testing.T) {
	code := []isa.Inst{
		isa.I(isa.OpOri, 1, 0, 1),
		isa.Bgtz(1, 2), // taken, mispredicted not-taken
		isa.Mul(2, 1, 1),
		isa.Halt(), // wrong path hits HALT after one instruction
		isa.Halt(), // branch target
	}
	cfg := TraceConfig{
		Predictor:    bpred.Config{Dir: bpred.DirNotTaken, BTBEntries: 512, BTBAssoc: 1, RASSize: 16},
		WrongPathLen: 10,
	}
	m := mustMachine(t, prog(code))
	tr := NewTracer(m, cfg)
	var tagged int
	if _, err := tr.Run(0, func(r trace.Record) error {
		if r.Tag {
			tagged++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tagged != 1 {
		t.Errorf("tagged = %d, want 1 (walk stops at halt)", tagged)
	}
}

func TestSourceStreamsSameRecords(t *testing.T) {
	cfg := TraceConfig{Predictor: bpred.Default(), WrongPathLen: 20}

	m1 := mustMachine(t, branchy(64))
	var want []trace.Record
	if _, err := NewTracer(m1, cfg).Run(0, func(r trace.Record) error {
		want = append(want, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	m2 := mustMachine(t, branchy(64))
	src := NewSource(m2, cfg, 0)
	var got []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != len(want) {
		t.Fatalf("source yielded %d records, tracer %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSourceRespectsLimit(t *testing.T) {
	m := mustMachine(t, branchy(1000))
	src := NewSource(m, TraceConfig{PerfectBP: true}, 10)
	var n int
	for {
		if _, err := src.Next(); err != nil {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("limited source yielded %d records, want 10", n)
	}
}

func TestTraceRecordsMatchExecution(t *testing.T) {
	// Every untagged record must correspond 1:1 to an executed instruction.
	m1 := mustMachine(t, branchy(32))
	var steps []StepInfo
	for !m1.Halted() {
		info, err := m1.Step()
		if err != nil {
			t.Fatal(err)
		}
		if info.Inst.Op == isa.OpHalt {
			break
		}
		steps = append(steps, info)
	}

	m2 := mustMachine(t, branchy(32))
	tr := NewTracer(m2, TraceConfig{Predictor: bpred.Default(), WrongPathLen: 8})
	var correct []trace.Record
	if _, err := tr.Run(0, func(r trace.Record) error {
		if !r.Tag {
			correct = append(correct, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(correct) != len(steps) {
		t.Fatalf("correct-path records = %d, executed = %d", len(correct), len(steps))
	}
	for i, r := range correct {
		want := trace.FromInst(steps[i].Inst, steps[i].PC, steps[i].Addr, steps[i].Taken, steps[i].Target)
		if r != want {
			t.Fatalf("record %d: %v, want %v", i, r, want)
		}
	}
}
