package funcsim

import (
	"io"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/trace"
)

// TraceConfig parameterizes sim-bpred-style trace generation.
type TraceConfig struct {
	// Predictor is the trace-generation predictor configuration; it should
	// match the simulated processor's predictor so the mis-prediction points
	// in the trace line up with the ones ReSim discovers (the paper uses the
	// same predictor in sim-bpred for exactly this reason).
	Predictor bpred.Config
	// PerfectBP disables wrong-path generation entirely: with a perfect
	// predictor there are no mis-speculated instructions (Table 1, right).
	PerfectBP bool
	// WrongPathLen is the number of wrong-path instructions inserted after a
	// mispredicted branch. The paper's conservative choice is "Reorder
	// Buffer size plus IFQ size".
	WrongPathLen int
}

// Tracer couples a Machine with a branch predictor and produces the ReSim
// input trace, including tagged wrong-path blocks after each mispredicted
// branch (paper §V.A).
type Tracer struct {
	m   *Machine
	cfg TraceConfig
	bp  *bpred.Predictor

	// Statistics.
	branches    uint64
	mispredicts uint64
	wrongPath   uint64 // tagged records emitted
}

// NewTracer builds a tracer over m.
func NewTracer(m *Machine, cfg TraceConfig) *Tracer {
	t := &Tracer{m: m, cfg: cfg}
	if !cfg.PerfectBP {
		t.bp = bpred.New(cfg.Predictor)
	}
	return t
}

// Machine returns the underlying functional machine.
func (t *Tracer) Machine() *Machine { return t.m }

// Branches returns the number of control-flow instructions traced.
func (t *Tracer) Branches() uint64 { return t.branches }

// Mispredicts returns how many traced branches the trace-generation
// predictor mispredicted (these are the wrong-path insertion points).
func (t *Tracer) Mispredicts() uint64 { return t.mispredicts }

// WrongPathRecords returns the number of tagged records emitted.
func (t *Tracer) WrongPathRecords() uint64 { return t.wrongPath }

// Step executes one instruction, emitting its record plus any wrong-path
// block. It returns io.EOF once the machine has halted.
func (t *Tracer) Step(emit func(trace.Record) error) error {
	if t.m.Halted() {
		return io.EOF
	}
	info, err := t.m.Step()
	if err != nil {
		return err
	}
	if info.Inst.Op == isa.OpHalt {
		// HALT marks end of program; it does not appear in the trace
		// (SimpleScalar ends the trace at the exit syscall).
		return io.EOF
	}
	rec := trace.FromInst(info.Inst, info.PC, info.Addr, info.Taken, info.Target)
	if err := emit(rec); err != nil {
		return err
	}
	if info.Inst.Class() != isa.ClassCtrl {
		return nil
	}
	t.branches++
	if t.cfg.PerfectBP {
		return nil
	}
	mispred, wrongPC := t.predictAndUpdate(info)
	if !mispred {
		return nil
	}
	t.mispredicts++
	return t.emitWrongPath(wrongPC, emit)
}

// predictAndUpdate runs the sim-bpred predictor over one resolved branch,
// mirroring the prediction rules the timing engine applies at fetch:
// conditionals use the direction predictor (targets are direct and resolve
// at fetch); direct jumps/calls never mispredict; returns use the RAS;
// other indirects use the BTB. It returns whether the branch mispredicted
// and, if so, the PC where the wrong path starts.
func (t *Tracer) predictAndUpdate(info StepInfo) (mispred bool, wrongPC uint32) {
	pc := info.PC
	fallthrough4 := pc + 4
	kind := info.Inst.Ctrl()

	switch kind {
	case isa.CtrlCond:
		predTaken := t.bp.PredictDir(pc)
		if predTaken != info.Taken {
			mispred = true
			if predTaken {
				wrongPC = info.Target // predicted the (direct) target
			} else {
				wrongPC = fallthrough4
			}
		}
		t.bp.UpdateDir(pc, info.Taken)
		if info.Taken {
			t.bp.UpdateBTB(pc, info.Target)
		}
	case isa.CtrlJump:
		// Direct, unconditional: target resolution at fetch; no wrong path.
		t.bp.UpdateBTB(pc, info.Target)
	case isa.CtrlCall:
		t.bp.UpdateBTB(pc, info.Target)
		t.bp.PushRAS(fallthrough4)
	case isa.CtrlRet:
		predTarget, ok := t.bp.PopRAS()
		if !ok || predTarget != info.Target {
			mispred = true
			if ok {
				wrongPC = predTarget
			} else {
				wrongPC = fallthrough4 // no prediction: fetch falls through
			}
		}
	case isa.CtrlIndirect, isa.CtrlIndCall:
		predTarget, ok := t.bp.LookupBTB(pc)
		if !ok || predTarget != info.Target {
			mispred = true
			if ok {
				wrongPC = predTarget
			} else {
				wrongPC = fallthrough4
			}
		}
		t.bp.UpdateBTB(pc, info.Target)
		if kind == isa.CtrlIndCall {
			t.bp.PushRAS(fallthrough4)
		}
	}
	return mispred, wrongPC
}

// emitWrongPath walks the mis-speculated path starting at wrongPC for up to
// WrongPathLen instructions, emitting tagged records. The walk decodes real
// bytes from the machine's memory without architectural side effects:
// conditionals are assumed not-taken, direct jumps and calls are followed,
// indirect targets come from the current register file, and memory
// addresses are computed from the current register file (the paper: ReSim
// "will fetch the instructions from the wrong path and model their effects
// in instruction processing, caches, etc").
func (t *Tracer) emitWrongPath(wrongPC uint32, emit func(trace.Record) error) error {
	pc := wrongPC
	for i := 0; i < t.cfg.WrongPathLen; i++ {
		in := t.m.FetchInst(pc)
		if in.Op == isa.OpHalt {
			break
		}
		var (
			addr   uint32
			taken  bool
			target uint32
		)
		switch in.Class() {
		case isa.ClassLoad, isa.ClassStore:
			addr = t.m.Reg(in.B) + uint32(in.Imm)
		case isa.ClassCtrl:
			switch in.Ctrl() {
			case isa.CtrlJump, isa.CtrlCall:
				taken, target = true, in.Target
			case isa.CtrlRet, isa.CtrlIndirect, isa.CtrlIndCall:
				taken, target = true, t.m.Reg(in.B)&^3
			default: // conditional: assumed not-taken on the wrong path
				taken, target = false, in.Target
			}
		}
		rec := trace.FromInst(in, pc, addr, taken, target)
		rec.Tag = true
		if err := emit(rec); err != nil {
			return err
		}
		t.wrongPath++
		if taken {
			pc = target
		} else {
			pc += 4
		}
	}
	return nil
}

// Run traces up to limit correct-path instructions (0 = until HALT).
// It returns the number of correct-path instructions traced.
func (t *Tracer) Run(limit uint64, emit func(trace.Record) error) (uint64, error) {
	var n uint64
	for limit == 0 || n < limit {
		if err := t.Step(emit); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
		n++
	}
	return n, nil
}

// Source adapts a Tracer into a trace.Source, generating records on demand.
// This is the "produce the trace on the fly directly from a functional
// simulator" mode from the paper's future work (and the FAST-style
// functional/timing split).
type Source struct {
	t     *Tracer
	queue []trace.Record
	head  int
	limit uint64 // correct-path instruction budget, 0 = unlimited
	done  uint64
}

// NewSource returns an on-the-fly trace source over m. limit bounds the
// number of correct-path instructions (0 = run to HALT).
func NewSource(m *Machine, cfg TraceConfig, limit uint64) *Source {
	return &Source{t: NewTracer(m, cfg), limit: limit}
}

// Tracer exposes the underlying tracer (for statistics).
func (s *Source) Tracer() *Tracer { return s.t }

// Next implements trace.Source.
func (s *Source) Next() (trace.Record, error) {
	for s.head >= len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
		if s.limit != 0 && s.done >= s.limit {
			return trace.Record{}, io.EOF
		}
		err := s.t.Step(func(r trace.Record) error {
			s.queue = append(s.queue, r)
			return nil
		})
		if err != nil {
			return trace.Record{}, err
		}
		s.done++
	}
	r := s.queue[s.head]
	s.head++
	return r, nil
}
