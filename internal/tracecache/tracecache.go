// Package tracecache memoizes generated workload traces so that every
// consumer of a trace — sweep points, evaluation tables, lockstep multicore
// clusters, repeated session runs — pays the functional-simulation cost of
// a given (workload, trace configuration, instruction budget) exactly once.
// This is the trace-driven bargain the paper is built on ("traces that are
// prepared off-line, for example for bulk simulations with varying design
// parameters"): most points of a design-space sweep differ only in engine
// parameters (width, queue depths, cache geometry) and share the exact same
// input trace, so regenerating it per point multiplies the dominant cost of
// a sweep for no information.
//
// The cache is content-addressed: the key is the full workload.Profile
// value plus the derived funcsim.TraceConfig and the correct-path
// instruction limit, so two callers get one trace only when every knob that
// shapes the record stream is identical. Entries are materialized record
// slices; readers get independent replayable snapshots (fresh cursors over
// the shared immutable slice), so any number of engines can consume one
// trace concurrently without coordination. Generation is single-flight:
// concurrent requests for the same key block on the first generator rather
// than duplicating work.
//
// Memory is bounded by an optional resident-byte budget. Over budget, the
// least-recently-used entries are evicted; with a spill directory
// configured they are first written to disk in the delta-compressed
// container format (internal/trace version 2, built on internal/bitio) and
// transparently reloaded on the next request, otherwise they are dropped
// and would regenerate on demand.
package tracecache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Key identifies one generated trace: the complete workload definition, the
// trace-generation configuration and the correct-path instruction budget.
// Every field that influences the record stream is part of the key, so a
// cache hit is exact by construction. The zero limit (run to HALT) is never
// cached — see (*Cache).Cacheable.
type Key struct {
	Profile workload.Profile
	Limit   uint64
	TC      funcsim.TraceConfig
}

// KeyFor builds the cache key for generating limit correct-path
// instructions of p under tc. tc is typically core.Config.TraceConfig().
func KeyFor(p workload.Profile, tc funcsim.TraceConfig, limit uint64) Key {
	return Key{Profile: p, Limit: limit, TC: tc}
}

// ID returns the key's content address: a hex digest usable as a file name
// for the on-disk spill.
func (k Key) ID() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", k)))
	return hex.EncodeToString(sum[:16])
}

// Trace is one cached, fully generated trace. It is immutable: once built
// (or reloaded from the spill) its record slice is never written again, so
// snapshots taken by concurrent readers never race. A Trace returned by Get
// stays valid even after the cache evicts the entry behind it.
type Trace struct {
	key     Key
	startPC uint32
	recs    []trace.Record
	tagged  uint64
	bits    uint64 // raw (version-1) encoded payload bits, sum of BitLen
}

// Key returns the key the trace was generated under.
func (t *Trace) Key() Key { return t.key }

// StartPC is where execution starts (the workload program's entry point).
func (t *Trace) StartPC() uint32 { return t.startPC }

// Records returns the number of records in the trace (correct-path plus
// tagged wrong-path).
func (t *Trace) Records() int { return len(t.recs) }

// WrongPath returns the number of tagged (mis-speculated) records.
func (t *Trace) WrongPath() uint64 { return t.tagged }

// Bits returns the trace's raw encoded size in bits (the version-1
// container payload, the quantity Table 3 reports per instruction).
func (t *Trace) Bits() uint64 { return t.bits }

// Source returns a fresh replayable snapshot: an independent cursor over
// the shared record slice. Each engine must consume its own snapshot;
// snapshots are cheap and any number may be read concurrently.
func (t *Trace) Source() *trace.SliceSource { return trace.NewSliceSource(t.recs) }

// Range calls fn for every record in order, stopping at the first error.
// It is the bulk-export path (trace file writing) and avoids a cursor.
func (t *Trace) Range(fn func(trace.Record) error) error {
	for _, r := range t.recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteContainer writes the trace as a delta-compressed container (the
// version-2 format of internal/trace) — the same bytes the spill path
// writes, and the shipping format the sharded sweep service uses to move a
// generated trace between hosts. Read it back with (*Cache).Seed or
// trace.Open.
func (t *Trace) WriteContainer(w io.Writer) error {
	cw, err := trace.NewCompressedWriter(w, trace.Header{
		StartPC: t.startPC, Records: uint64(len(t.recs)),
	})
	if err != nil {
		return err
	}
	if err := t.Range(cw.Write); err != nil {
		return err
	}
	return cw.Close()
}

// recordBytes approximates the resident cost of one record.
const recordBytes = int64(unsafe.Sizeof(trace.Record{}))

// Config bounds a Cache. The zero value means: no disk spill, the default
// resident-byte budget and the default per-trace instruction cap.
type Config struct {
	// SpillDir, when non-empty, is where evicted entries are written (one
	// delta-compressed container per key) instead of being dropped. The
	// directory is created on first use.
	SpillDir string
	// MaxResidentBytes bounds the total in-memory record footprint;
	// 0 selects DefaultMaxResidentBytes, negative means unbounded.
	MaxResidentBytes int64
	// MaxInstructions caps the correct-path budget a single cacheable trace
	// may have; larger requests report Cacheable() == false and callers fall
	// back to streaming generation. 0 selects DefaultMaxInstructions.
	MaxInstructions uint64
}

// DefaultMaxResidentBytes is the default in-memory budget (1 GiB — roughly
// thirty 1M-instruction traces).
const DefaultMaxResidentBytes = int64(1) << 30

// DefaultMaxInstructions is the default per-trace correct-path cap. A
// 4M-instruction trace with the paper's wrong-path inflation is on the
// order of 150 MB resident, a sane ceiling for implicit caching.
const DefaultMaxInstructions = uint64(4_000_000)

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Generations uint64 // traces generated (cache misses that did the work)
	Hits        uint64 // requests served from memory
	Seeds       uint64 // entries installed from shipped containers (Seed)
	SpillWrites uint64 // entries written to the spill directory
	SpillBytes  uint64 // container bytes written to the spill directory
	SpillLoads  uint64 // requests served by reloading a spilled entry
	Evictions   uint64 // entries pushed out of memory (spilled or dropped)

	Entries  int   // keys currently known (resident or spilled)
	Resident int64 // bytes of record data currently in memory
}

// Cache memoizes generated traces. The zero value is not usable; build one
// with New (or use Shared for the process-wide instance).
type Cache struct {
	spillDir string
	maxBytes int64
	maxInstr uint64

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // resident entries, front = most recently used
	resident int64

	gens        atomic.Uint64
	hits        atomic.Uint64
	seeds       atomic.Uint64
	spillWrites atomic.Uint64
	spillBytes  atomic.Uint64
	spillLoads  atomic.Uint64
	evictions   atomic.Uint64
}

// entry is one key's slot. done is closed when generation finishes (tr and
// err are immutable afterwards, except tr moving to/from the spill under
// the cache mutex). A failed generation removes the entry from the map
// before closing done, so waiters retry and the error never sticks.
type entry struct {
	key  Key
	done chan struct{}
	err  error

	tr    *Trace // nil while spilled
	bytes int64

	// Post-generation metadata kept across spills so a reload can rebuild
	// the Trace without recomputing statistics.
	startPC uint32
	records uint64
	tagged  uint64
	bits    uint64

	spillPath string        // written container, "" until first spill
	elem      *list.Element // lru position while resident
}

// New builds a cache bounded by cfg.
func New(cfg Config) *Cache {
	if cfg.MaxResidentBytes == 0 {
		cfg.MaxResidentBytes = DefaultMaxResidentBytes
	}
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = DefaultMaxInstructions
	}
	return &Cache{
		spillDir: cfg.SpillDir,
		maxBytes: cfg.MaxResidentBytes,
		maxInstr: cfg.MaxInstructions,
		entries:  map[Key]*entry{},
		lru:      list.New(),
	}
}

var (
	sharedOnce  sync.Once
	sharedCache *Cache
)

// Shared returns the process-wide cache with default bounds. The public
// resim Session defaults to it, as do the evaluation tables and the
// deprecated free functions, so mixed old- and new-style callers in one
// process share a single set of generated traces.
func Shared() *Cache {
	sharedOnce.Do(func() { sharedCache = New(Config{}) })
	return sharedCache
}

// Cacheable reports whether a trace with the given correct-path budget is
// eligible for this cache: bounded (limit != 0 — an unbounded workload run
// cannot be materialized) and within the per-trace instruction cap.
// Callers fall back to streaming generation when it returns false.
func (c *Cache) Cacheable(limit uint64) bool {
	return limit != 0 && limit <= c.maxInstr
}

// Generations returns how many traces have been generated so far — the
// quantity sweeps amortize. Tests assert on it.
func (c *Cache) Generations() uint64 { return c.gens.Load() }

// Stats snapshots cache activity.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, resident := len(c.entries), c.resident
	c.mu.Unlock()
	return Stats{
		Generations: c.gens.Load(),
		Hits:        c.hits.Load(),
		Seeds:       c.seeds.Load(),
		SpillWrites: c.spillWrites.Load(),
		SpillBytes:  c.spillBytes.Load(),
		SpillLoads:  c.spillLoads.Load(),
		Evictions:   c.evictions.Load(),
		Entries:     entries,
		Resident:    resident,
	}
}

// ErrUncacheable reports a Get whose limit fails Cacheable.
var ErrUncacheable = errors.New("tracecache: trace not cacheable (unbounded or over the instruction cap)")

// Get returns the trace for (p, tc, limit), generating it on the first
// request. Concurrent requests for one key are single-flight: one caller
// generates while the rest wait. If the generating caller's context is
// cancelled mid-generation the entry is discarded and a surviving waiter
// takes over, so one caller's cancellation never poisons the key.
func (c *Cache) Get(ctx context.Context, p workload.Profile, tc funcsim.TraceConfig, limit uint64) (*Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !c.Cacheable(limit) {
		return nil, fmt.Errorf("%w: limit %d", ErrUncacheable, limit)
	}
	k := KeyFor(p, tc, limit)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		e, ok := c.entries[k]
		if !ok {
			e = &entry{key: k, done: make(chan struct{})}
			c.entries[k] = e
			c.mu.Unlock()
			return c.generateInto(ctx, e)
		}
		c.mu.Unlock()

		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			// The generator failed and removed the slot; loop to retry
			// under our own context (deterministic failures simply fail
			// again, cancellation of the old leader does not outlive it).
			continue
		}

		c.mu.Lock()
		if tr := e.tr; tr != nil {
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			c.hits.Add(1)
			return tr, nil
		}
		if e.spillPath == "" {
			// Evicted without a spill (or the spill write failed): the slot
			// is gone; loop and regenerate.
			if c.entries[k] == e {
				delete(c.entries, k)
			}
			c.mu.Unlock()
			continue
		}
		// Spilled: reload under the cache mutex. Reloads only happen once a
		// byte budget is configured and exceeded; simplicity over maximal
		// concurrency is the right trade there.
		tr, err := c.reloadLocked(e)
		c.mu.Unlock()
		if err != nil {
			// The spill file was lost or corrupted; reloadLocked dropped the
			// slot, so treat it as an ordinary miss and regenerate rather
			// than surfacing a disk hiccup to one unlucky caller.
			continue
		}
		c.spillLoads.Add(1)
		return tr, nil
	}
}

// generateInto runs the trace generator for e's key and publishes the
// result. It is called without the cache mutex held.
func (c *Cache) generateInto(ctx context.Context, e *entry) (*Trace, error) {
	tr, err := generate(ctx, e.key)
	c.mu.Lock()
	if err != nil {
		if c.entries[e.key] == e {
			delete(c.entries, e.key)
		}
		c.mu.Unlock()
		e.err = err
		close(e.done)
		return nil, err
	}
	e.tr = tr
	e.bytes = int64(len(tr.recs)) * recordBytes
	e.startPC = tr.startPC
	e.records = uint64(len(tr.recs))
	e.tagged = tr.tagged
	e.bits = tr.bits
	c.insertResidentLocked(e)
	c.mu.Unlock()
	close(e.done)
	c.gens.Add(1)
	return tr, nil
}

// generate materializes the full record stream for k, polling ctx every
// core.CtxCheckInterval records. It drives the exact funcsim pipeline the
// lazy per-run sources use (Profile.Build -> NewMachine -> Source), so a
// cached replay is record-for-record identical to an uncached run.
func generate(ctx context.Context, k Key) (*Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog, err := k.Profile.Build()
	if err != nil {
		return nil, err
	}
	m, err := funcsim.NewMachine(prog, 0)
	if err != nil {
		return nil, err
	}
	src := funcsim.NewSource(m, k.TC, k.Limit)

	capHint := k.Limit + k.Limit/4
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t := &Trace{key: k, startPC: prog.Entry, recs: make([]trace.Record, 0, capHint)}
	sinceCheck := 0
	for {
		r, err := src.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if sinceCheck++; sinceCheck >= core.CtxCheckInterval {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if r.Tag {
			t.tagged++
		}
		t.bits += uint64(r.BitLen())
		t.recs = append(t.recs, r)
	}
}

// SourceFor is the shared cached-or-streaming source selection every trace
// consumer (session runs, sweep points, multicore cores, table generators)
// uses: a replayable snapshot from c when c is non-nil and the budget is
// cacheable, otherwise a streaming source straight from the functional
// simulator. The returned PC is where the engine should start fetching.
func SourceFor(ctx context.Context, c *Cache, p workload.Profile, tc funcsim.TraceConfig, limit uint64) (trace.Source, uint32, error) {
	if c != nil && c.Cacheable(limit) {
		tr, err := c.Get(ctx, p, tc, limit)
		if err != nil {
			return nil, 0, err
		}
		return tr.Source(), tr.StartPC(), nil
	}
	src, err := p.NewSource(tc, limit)
	if err != nil {
		return nil, 0, err
	}
	return src, funcsim.CodeBase, nil
}

// ExportContainer writes the delta-compressed container for k to w when the
// cache already holds the trace — resident, spilled, or sitting in the
// spill directory under k's content address from an earlier process (a
// restarted coordinator finds containers its predecessor spilled, and a
// spill directory synced from another host works the same way) — and
// reports whether it did. It never generates: shipping a trace to a remote
// worker is an optimization, and a cold key simply regenerates on the
// receiving host. An in-flight generation is treated as absent rather than
// waited for.
func (c *Cache) ExportContainer(k Key, w io.Writer) (bool, error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		if c.spillDir != "" {
			// The container file name is the key's content address, so a
			// file left by another cache instance is exactly k's bytes.
			return copySpillFile(filepath.Join(c.spillDir, k.ID()+".rstc"), w)
		}
		return false, nil
	}
	select {
	case <-e.done:
	default: // still generating
		c.mu.Unlock()
		return false, nil
	}
	if e.err != nil {
		c.mu.Unlock()
		return false, nil
	}
	tr, spillPath := e.tr, e.spillPath
	c.mu.Unlock()
	if tr != nil {
		// The record slice is immutable once published, so encoding outside
		// the lock never races with concurrent readers or eviction.
		return true, tr.WriteContainer(w)
	}
	if spillPath != "" {
		// Spill files are content-addressed and written atomically, so the
		// bytes on disk are exactly the container we would re-encode.
		return copySpillFile(spillPath, w)
	}
	return false, nil
}

// copySpillFile streams one on-disk container to w; a missing file behaves
// like a cold key.
func copySpillFile(path string, w io.Writer) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, nil // lost or never-written spill: cold key
	}
	defer f.Close()
	if _, err := io.Copy(w, f); err != nil {
		return true, err
	}
	return true, nil
}

// Seed installs the trace for k from a shipped container (the bytes written
// by ExportContainer or found under a spill directory), so a worker that
// receives a trace over the network never pays the generation cost. The
// decoded trace is returned either way; if the key is already present —
// resident, spilled or mid-generation — the cache is left untouched and the
// existing entry wins, keeping Seed safe to call concurrently with Get.
func (c *Cache) Seed(k Key, r io.Reader) (*Trace, error) {
	src, hdr, err := trace.Open(r)
	if err != nil {
		return nil, fmt.Errorf("tracecache: seed container: %w", err)
	}
	t := &Trace{key: k, startPC: hdr.StartPC}
	if hdr.Records > 0 {
		t.recs = make([]trace.Record, 0, hdr.Records)
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tracecache: seed container: %w", err)
		}
		if rec.Tag {
			t.tagged++
		}
		t.bits += uint64(rec.BitLen())
		t.recs = append(t.recs, rec)
	}
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return t, nil
	}
	e := &entry{key: k, done: make(chan struct{})}
	close(e.done)
	e.tr = t
	e.bytes = int64(len(t.recs)) * recordBytes
	e.startPC = t.startPC
	e.records = uint64(len(t.recs))
	e.tagged = t.tagged
	e.bits = t.bits
	c.entries[k] = e
	c.insertResidentLocked(e)
	c.mu.Unlock()
	c.seeds.Add(1)
	return t, nil
}

// insertResidentLocked accounts a freshly generated or reloaded entry and
// evicts over-budget entries, least recently used first. Callers hold c.mu.
func (c *Cache) insertResidentLocked(e *entry) {
	e.elem = c.lru.PushFront(e)
	c.resident += e.bytes
	if c.maxBytes < 0 {
		return
	}
	// Never evict the entry just inserted: a single over-budget trace still
	// has to serve its requester.
	for c.resident > c.maxBytes && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*entry)
		c.evictLocked(victim)
	}
}

// evictLocked pushes one resident entry out of memory: spilled to disk when
// a spill directory is configured (and re-readable later), dropped entirely
// otherwise (a future request regenerates).
func (c *Cache) evictLocked(e *entry) {
	c.lru.Remove(e.elem)
	e.elem = nil
	c.resident -= e.bytes
	c.evictions.Add(1)
	if c.spillDir != "" {
		if err := c.spill(e); err == nil {
			e.tr = nil
			return
		}
		// Spill failed (disk full, permissions): fall through to drop.
	}
	e.tr = nil
	delete(c.entries, e.key)
}

// spill writes e's records as a delta-compressed container under the spill
// directory, atomically via a temp file. Already-spilled entries are reused
// as-is (the content address guarantees the bytes still match).
func (c *Cache) spill(e *entry) error {
	if e.spillPath != "" {
		return nil
	}
	if err := os.MkdirAll(c.spillDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(c.spillDir, e.key.ID()+".rstc")
	tmp, err := os.CreateTemp(c.spillDir, "spill-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := e.tr.WriteContainer(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	e.spillPath = path
	c.spillWrites.Add(1)
	if fi, err := os.Stat(path); err == nil {
		c.spillBytes.Add(uint64(fi.Size()))
	}
	return nil
}

// reloadLocked reads a spilled entry back into memory and re-accounts it as
// resident. Callers hold c.mu. On failure the slot is dropped — but only if
// e still owns it: a concurrent caller may already have replaced a broken
// slot with a fresh generating entry, which must not be deleted.
func (c *Cache) reloadLocked(e *entry) (*Trace, error) {
	owned := c.entries[e.key] == e
	dropSlot := func() {
		if owned {
			delete(c.entries, e.key)
		}
	}
	f, err := os.Open(e.spillPath)
	if err != nil {
		// The spill vanished under us; drop the slot so the next request
		// regenerates instead of failing forever.
		dropSlot()
		return nil, fmt.Errorf("tracecache: spilled trace lost: %w", err)
	}
	defer f.Close()
	src, hdr, err := trace.Open(f)
	if err != nil {
		dropSlot()
		return nil, fmt.Errorf("tracecache: corrupt spill %s: %w", e.spillPath, err)
	}
	recs := make([]trace.Record, 0, e.records)
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			dropSlot()
			return nil, fmt.Errorf("tracecache: corrupt spill %s: %w", e.spillPath, err)
		}
		recs = append(recs, r)
	}
	if uint64(len(recs)) != e.records {
		dropSlot()
		return nil, fmt.Errorf("tracecache: spill %s holds %d records, want %d", e.spillPath, len(recs), e.records)
	}
	tr := &Trace{key: e.key, startPC: hdr.StartPC, recs: recs, tagged: e.tagged, bits: e.bits}
	if owned {
		// Only a slot that still owns its key re-enters the LRU/resident
		// bookkeeping; a stale entry (replaced by a newer generation) just
		// serves its reader and is left for the GC.
		e.tr = tr
		c.insertResidentLocked(e)
	}
	return tr, nil
}
