// Registry bridge: the cache keeps its own lock-free counters (Stats);
// RegisterMetrics exposes them as collector-backed families that read the
// live values at scrape time, so a cache with no registry attached pays
// nothing and a scrape always reports the current state.
package tracecache

import "repro/internal/obs"

// RegisterMetrics registers c's activity counters and occupancy gauges on
// reg as tracecache_* families. Call it once per (registry, cache) pair;
// cmd/doclint calls it on a throwaway pair to learn the inventory.
func RegisterMetrics(reg *obs.Registry, c *Cache) {
	reg.CounterFunc("tracecache_generations_total",
		"Traces generated (cache misses that did the work).",
		func() float64 { return float64(c.gens.Load()) })
	reg.CounterFunc("tracecache_hits_total",
		"Trace requests served from memory.",
		func() float64 { return float64(c.hits.Load()) })
	reg.CounterFunc("tracecache_seeds_total",
		"Entries installed from shipped containers.",
		func() float64 { return float64(c.seeds.Load()) })
	reg.CounterFunc("tracecache_spill_writes_total",
		"Entries written to the spill directory.",
		func() float64 { return float64(c.spillWrites.Load()) })
	reg.CounterFunc("tracecache_spill_bytes_total",
		"Container bytes written to the spill directory.",
		func() float64 { return float64(c.spillBytes.Load()) })
	reg.CounterFunc("tracecache_spill_loads_total",
		"Trace requests served by reloading a spilled entry.",
		func() float64 { return float64(c.spillLoads.Load()) })
	reg.CounterFunc("tracecache_evictions_total",
		"Entries pushed out of memory (spilled or dropped).",
		func() float64 { return float64(c.evictions.Load()) })
	reg.GaugeFunc("tracecache_entries",
		"Keys currently known (resident or spilled).",
		func() float64 { return float64(c.Stats().Entries) })
	reg.GaugeFunc("tracecache_resident_bytes",
		"Bytes of record data currently in memory.",
		func() float64 { return float64(c.Stats().Resident) })
}
