package tracecache

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func gzipProfile(t *testing.T) workload.Profile {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func defaultTC() funcsim.TraceConfig { return core.DefaultConfig().TraceConfig() }

// drain reads a source to EOF.
func drain(t *testing.T, src trace.Source) []trace.Record {
	t.Helper()
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
}

// TestCachedMatchesUncached is the cache's core contract: a cached replay
// is record-for-record identical to an uncached generation.
func TestCachedMatchesUncached(t *testing.T) {
	p := gzipProfile(t)
	const limit = 6000

	c := New(Config{})
	tr, err := c.Get(context.Background(), p, defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}
	cached := drain(t, tr.Source())

	src, err := p.NewSource(defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}
	fresh := drain(t, src)

	if len(cached) == 0 || !reflect.DeepEqual(cached, fresh) {
		t.Fatalf("cached trace differs from regeneration: %d vs %d records", len(cached), len(fresh))
	}
	if tr.StartPC() != funcsim.CodeBase {
		t.Errorf("StartPC = %#x, want %#x", tr.StartPC(), funcsim.CodeBase)
	}
	var tagged uint64
	var bits uint64
	for _, r := range fresh {
		if r.Tag {
			tagged++
		}
		bits += uint64(r.BitLen())
	}
	if tr.WrongPath() != tagged || tr.Bits() != bits {
		t.Errorf("stats = (%d wp, %d bits), want (%d, %d)", tr.WrongPath(), tr.Bits(), tagged, bits)
	}
}

// TestConcurrentReadersSingleGeneration hammers one key from many
// goroutines (run under -race): generation must happen exactly once and
// every reader must see the full identical stream through its own snapshot.
func TestConcurrentReadersSingleGeneration(t *testing.T) {
	p := gzipProfile(t)
	const limit = 4000
	c := New(Config{})

	const readers = 16
	lens := make([]int, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Get(context.Background(), p, defaultTC(), limit)
			if err != nil {
				t.Error(err)
				return
			}
			lens[i] = len(drain(t, tr.Source()))
		}(i)
	}
	wg.Wait()
	if got := c.Generations(); got != 1 {
		t.Fatalf("generations = %d, want 1", got)
	}
	for i := 1; i < readers; i++ {
		if lens[i] != lens[0] || lens[i] == 0 {
			t.Fatalf("reader %d saw %d records, reader 0 saw %d", i, lens[i], lens[0])
		}
	}
	if st := c.Stats(); st.Hits != readers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, readers-1)
	}
}

// TestSnapshotsAreIndependent interleaves two cursors over one trace.
func TestSnapshotsAreIndependent(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{})
	tr, err := c.Get(context.Background(), p, defaultTC(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Source(), tr.Source()
	// Advance a by 10 records, then check b still starts at the beginning.
	var first trace.Record
	for i := 0; i < 10; i++ {
		r, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r
		}
	}
	got, err := b.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, first) {
		t.Error("second snapshot did not start from the beginning")
	}
}

// TestDistinctKeysGenerateSeparately: trace-shaping parameters are part of
// the key, engine-only parameters are not.
func TestDistinctKeysGenerateSeparately(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{})
	ctx := context.Background()

	base := core.DefaultConfig()
	wide := base
	wide.Width = 8 // engine-only: same trace key
	perfect := base
	perfect.PerfectBP = true // trace-shaping: new key
	bigRB := base
	bigRB.RBSize = 32 // changes WrongPathLen: new key

	for _, cfg := range []core.Config{base, wide, perfect, bigRB} {
		if _, err := c.Get(ctx, p, cfg.TraceConfig(), 2000); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Generations(); got != 3 {
		t.Errorf("generations = %d, want 3 (base==wide, perfect, bigRB)", got)
	}
	if base.TraceConfig() != wide.TraceConfig() {
		t.Error("width changed the trace config")
	}
	ka := KeyFor(p, base.TraceConfig(), 2000)
	kb := KeyFor(p, perfect.TraceConfig(), 2000)
	if ka.ID() == kb.ID() {
		t.Error("distinct keys share a content address")
	}
}

// TestSpillRoundTrip forces eviction through a tiny budget and checks the
// spilled trace reloads bit-for-bit from the compressed container.
func TestSpillRoundTrip(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{SpillDir: t.TempDir(), MaxResidentBytes: 1})
	ctx := context.Background()

	trA, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, trA.Source())

	// A second key over-budgets the cache and evicts A to disk.
	if _, err := c.Get(ctx, p, defaultTC(), 1000); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SpillWrites == 0 || st.Evictions == 0 {
		t.Fatalf("expected a spill, stats = %+v", st)
	}

	trA2, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, trA2.Source()); !reflect.DeepEqual(got, want) {
		t.Fatal("reloaded trace differs from the original")
	}
	if got := c.Generations(); got != 2 {
		t.Errorf("generations = %d, want 2 (reload must not regenerate)", got)
	}
	if st := c.Stats(); st.SpillLoads != 1 {
		t.Errorf("spill loads = %d, want 1", st.SpillLoads)
	}
	if trA2.StartPC() != trA.StartPC() || trA2.WrongPath() != trA.WrongPath() || trA2.Bits() != trA.Bits() {
		t.Error("reloaded trace lost its metadata")
	}
}

// TestEvictionWithoutSpillRegenerates: no spill directory means eviction
// drops the entry and a later request simply regenerates.
func TestEvictionWithoutSpillRegenerates(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{MaxResidentBytes: 1})
	ctx := context.Background()

	trA, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, trA.Source())
	if _, err := c.Get(ctx, p, defaultTC(), 1000); err != nil {
		t.Fatal(err)
	}
	trA2, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, trA2.Source()); !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs")
	}
	if got := c.Generations(); got != 3 {
		t.Errorf("generations = %d, want 3", got)
	}
}

// TestCancelledLeaderDoesNotPoisonKey: a cancelled generation leaves no
// broken entry behind.
func TestCancelledLeaderDoesNotPoisonKey(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cancelled, p, defaultTC(), 2000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	tr, err := c.Get(context.Background(), p, defaultTC(), 2000)
	if err != nil {
		t.Fatalf("key poisoned after cancellation: %v", err)
	}
	if tr.Records() == 0 {
		t.Error("empty trace after retry")
	}
}

// TestUncacheableLimits: unbounded and over-cap budgets are refused.
func TestUncacheableLimits(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{MaxInstructions: 100})
	if c.Cacheable(0) || c.Cacheable(101) || !c.Cacheable(100) {
		t.Error("Cacheable thresholds wrong")
	}
	if _, err := c.Get(context.Background(), p, defaultTC(), 0); !errors.Is(err, ErrUncacheable) {
		t.Errorf("limit 0: err = %v, want ErrUncacheable", err)
	}
	if _, err := c.Get(context.Background(), p, defaultTC(), 101); !errors.Is(err, ErrUncacheable) {
		t.Errorf("limit 101: err = %v, want ErrUncacheable", err)
	}
}

// TestGenerationErrorPropagates: an invalid profile fails every request
// without wedging the slot.
func TestGenerationErrorPropagates(t *testing.T) {
	bad := workload.Profile{Name: "bad", Chase: 1, ListNodes: 1} // Chase needs >= 2 nodes
	c := New(Config{})
	for i := 0; i < 2; i++ {
		if _, err := c.Get(context.Background(), bad, defaultTC(), 1000); err == nil {
			t.Fatal("invalid profile generated a trace")
		}
	}
	if got := c.Generations(); got != 0 {
		t.Errorf("generations = %d, want 0", got)
	}
}

// TestLostSpillRegenerates: a spill file deleted behind the cache's back
// (tmp cleaner, disk trouble) must degrade to regeneration, not error.
func TestLostSpillRegenerates(t *testing.T) {
	p := gzipProfile(t)
	dir := t.TempDir()
	c := New(Config{SpillDir: dir, MaxResidentBytes: 1})
	ctx := context.Background()

	trA, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, trA.Source())
	if _, err := c.Get(ctx, p, defaultTC(), 1000); err != nil { // evicts A to disk
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no spill written: %v", err)
	}
	for _, e := range ents {
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	trA2, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatalf("lost spill surfaced as an error: %v", err)
	}
	if got := drain(t, trA2.Source()); !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs after lost spill")
	}
	if got := c.Generations(); got != 3 {
		t.Errorf("generations = %d, want 3 (regenerate on lost spill)", got)
	}
}

// TestKeyIDGolden pins the trace-key content address for a fully explicit
// profile and trace configuration. The sharded sweep service routes points
// to workers — and ships trace containers between hosts — keyed on this
// value, so an accidental change to the key format (or to any field that
// feeds it) would silently split coordinator and worker caches across
// versions. If this test fails, the key derivation changed: bump the sweep
// service protocol version and update the constant deliberately.
func TestKeyIDGolden(t *testing.T) {
	p := workload.Profile{
		Name:        "golden",
		Description: "pinned profile for the Key.ID golden test",
		Seed:        42,
		Stream:      8,
		Arith:       4,
		Branchy:     4,
		Chains:      2,
		Stride:      4,
		ArrayBytes:  1024,
		BranchData:  256,
		BranchBias:  0.5,
	}
	tc := funcsim.TraceConfig{
		Predictor: bpred.Config{
			Dir:        bpred.DirTwoLevel,
			BHTSize:    4,
			HistLen:    8,
			PHTSize:    4096,
			BimodSize:  2048,
			BTBEntries: 512,
			BTBAssoc:   1,
			RASSize:    16,
		},
		WrongPathLen: 20,
	}
	const want = "cfbefb8492574ea3bae6f0adaa44fbc1"
	if got := KeyFor(p, tc, 10_000).ID(); got != want {
		t.Fatalf("Key.ID() = %s, want the pinned %s\n"+
			"The trace-key content address changed: cross-version coordinator/worker\n"+
			"routing and shipped-container reuse would break. If intentional, update\n"+
			"the golden and bump the sweepd protocol version.", got, want)
	}
}

// TestExportSeedRoundTrip ships a generated trace between two caches as a
// delta-compressed container — the sweep service's trace-shipping path —
// and verifies the seeded copy is record-identical and costs the receiving
// cache no generation.
func TestExportSeedRoundTrip(t *testing.T) {
	p := gzipProfile(t)
	const limit = 5000
	k := KeyFor(p, defaultTC(), limit)

	src := New(Config{})
	tr, err := src.Get(context.Background(), p, defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	ok, err := src.ExportContainer(k, &buf)
	if err != nil || !ok {
		t.Fatalf("ExportContainer = %v, %v; want true, nil", ok, err)
	}

	dst := New(Config{})
	seeded, err := dst.Seed(k, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if seeded.StartPC() != tr.StartPC() || seeded.Records() != tr.Records() ||
		seeded.WrongPath() != tr.WrongPath() || seeded.Bits() != tr.Bits() {
		t.Fatalf("seeded trace metadata differs: %d/%d/%d/%d vs %d/%d/%d/%d",
			seeded.StartPC(), seeded.Records(), seeded.WrongPath(), seeded.Bits(),
			tr.StartPC(), tr.Records(), tr.WrongPath(), tr.Bits())
	}
	if !reflect.DeepEqual(drain(t, seeded.Source()), drain(t, tr.Source())) {
		t.Fatal("seeded records differ from the generated originals")
	}

	// The seeded cache serves Get without generating.
	got, err := dst.Get(context.Background(), p, defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(drain(t, got.Source()), drain(t, tr.Source())) {
		t.Fatal("post-seed Get records differ")
	}
	st := dst.Stats()
	if st.Generations != 0 || st.Seeds != 1 || st.Hits != 1 {
		t.Fatalf("stats after seed+get = %+v; want 0 generations, 1 seed, 1 hit", st)
	}

	// Exporting a key the cache does not hold reports false without error.
	var sink bytes.Buffer
	ok, err = src.ExportContainer(KeyFor(p, defaultTC(), limit+1), &sink)
	if err != nil || ok {
		t.Fatalf("ExportContainer(cold key) = %v, %v; want false, nil", ok, err)
	}

	// Seeding an already-present key leaves the cache untouched.
	if _, err := dst.Seed(k, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st := dst.Stats(); st.Seeds != 1 || st.Entries != 1 {
		t.Fatalf("re-seed changed the cache: %+v", st)
	}
}

// TestExportContainerFromSpill ships a trace that has already been evicted
// to the spill directory (the coordinator's usual state for older keys).
func TestExportContainerFromSpill(t *testing.T) {
	p := gzipProfile(t)
	const limit = 4000
	dir := t.TempDir()
	// A tiny budget forces the entry to spill on the next insert.
	c := New(Config{SpillDir: dir, MaxResidentBytes: 1})
	tr, err := c.Get(context.Background(), p, defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, tr.Source())
	// A second, different key evicts (and spills) the first.
	if _, err := c.Get(context.Background(), p, defaultTC(), limit+1); err != nil {
		t.Fatal(err)
	}
	k := KeyFor(p, defaultTC(), limit)
	var buf bytes.Buffer
	ok, err := c.ExportContainer(k, &buf)
	if err != nil || !ok {
		t.Fatalf("ExportContainer(spilled) = %v, %v; want true, nil", ok, err)
	}
	dst := New(Config{})
	seeded, err := dst.Seed(k, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(drain(t, seeded.Source()), want) {
		t.Fatal("spill-exported records differ")
	}

	// A fresh cache over the same spill directory — a restarted coordinator
	// — finds the container by content address despite an empty entry map.
	fresh := New(Config{SpillDir: dir})
	var buf2 bytes.Buffer
	ok, err = fresh.ExportContainer(k, &buf2)
	if err != nil || !ok {
		t.Fatalf("ExportContainer(fresh cache, populated spill dir) = %v, %v; want true, nil", ok, err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("restart-path container bytes differ from the live-path container")
	}
}
