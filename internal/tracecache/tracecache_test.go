package tracecache

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func gzipProfile(t *testing.T) workload.Profile {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func defaultTC() funcsim.TraceConfig { return core.DefaultConfig().TraceConfig() }

// drain reads a source to EOF.
func drain(t *testing.T, src trace.Source) []trace.Record {
	t.Helper()
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
}

// TestCachedMatchesUncached is the cache's core contract: a cached replay
// is record-for-record identical to an uncached generation.
func TestCachedMatchesUncached(t *testing.T) {
	p := gzipProfile(t)
	const limit = 6000

	c := New(Config{})
	tr, err := c.Get(context.Background(), p, defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}
	cached := drain(t, tr.Source())

	src, err := p.NewSource(defaultTC(), limit)
	if err != nil {
		t.Fatal(err)
	}
	fresh := drain(t, src)

	if len(cached) == 0 || !reflect.DeepEqual(cached, fresh) {
		t.Fatalf("cached trace differs from regeneration: %d vs %d records", len(cached), len(fresh))
	}
	if tr.StartPC() != funcsim.CodeBase {
		t.Errorf("StartPC = %#x, want %#x", tr.StartPC(), funcsim.CodeBase)
	}
	var tagged uint64
	var bits uint64
	for _, r := range fresh {
		if r.Tag {
			tagged++
		}
		bits += uint64(r.BitLen())
	}
	if tr.WrongPath() != tagged || tr.Bits() != bits {
		t.Errorf("stats = (%d wp, %d bits), want (%d, %d)", tr.WrongPath(), tr.Bits(), tagged, bits)
	}
}

// TestConcurrentReadersSingleGeneration hammers one key from many
// goroutines (run under -race): generation must happen exactly once and
// every reader must see the full identical stream through its own snapshot.
func TestConcurrentReadersSingleGeneration(t *testing.T) {
	p := gzipProfile(t)
	const limit = 4000
	c := New(Config{})

	const readers = 16
	lens := make([]int, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Get(context.Background(), p, defaultTC(), limit)
			if err != nil {
				t.Error(err)
				return
			}
			lens[i] = len(drain(t, tr.Source()))
		}(i)
	}
	wg.Wait()
	if got := c.Generations(); got != 1 {
		t.Fatalf("generations = %d, want 1", got)
	}
	for i := 1; i < readers; i++ {
		if lens[i] != lens[0] || lens[i] == 0 {
			t.Fatalf("reader %d saw %d records, reader 0 saw %d", i, lens[i], lens[0])
		}
	}
	if st := c.Stats(); st.Hits != readers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, readers-1)
	}
}

// TestSnapshotsAreIndependent interleaves two cursors over one trace.
func TestSnapshotsAreIndependent(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{})
	tr, err := c.Get(context.Background(), p, defaultTC(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Source(), tr.Source()
	// Advance a by 10 records, then check b still starts at the beginning.
	var first trace.Record
	for i := 0; i < 10; i++ {
		r, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r
		}
	}
	got, err := b.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, first) {
		t.Error("second snapshot did not start from the beginning")
	}
}

// TestDistinctKeysGenerateSeparately: trace-shaping parameters are part of
// the key, engine-only parameters are not.
func TestDistinctKeysGenerateSeparately(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{})
	ctx := context.Background()

	base := core.DefaultConfig()
	wide := base
	wide.Width = 8 // engine-only: same trace key
	perfect := base
	perfect.PerfectBP = true // trace-shaping: new key
	bigRB := base
	bigRB.RBSize = 32 // changes WrongPathLen: new key

	for _, cfg := range []core.Config{base, wide, perfect, bigRB} {
		if _, err := c.Get(ctx, p, cfg.TraceConfig(), 2000); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Generations(); got != 3 {
		t.Errorf("generations = %d, want 3 (base==wide, perfect, bigRB)", got)
	}
	if base.TraceConfig() != wide.TraceConfig() {
		t.Error("width changed the trace config")
	}
	ka := KeyFor(p, base.TraceConfig(), 2000)
	kb := KeyFor(p, perfect.TraceConfig(), 2000)
	if ka.ID() == kb.ID() {
		t.Error("distinct keys share a content address")
	}
}

// TestSpillRoundTrip forces eviction through a tiny budget and checks the
// spilled trace reloads bit-for-bit from the compressed container.
func TestSpillRoundTrip(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{SpillDir: t.TempDir(), MaxResidentBytes: 1})
	ctx := context.Background()

	trA, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, trA.Source())

	// A second key over-budgets the cache and evicts A to disk.
	if _, err := c.Get(ctx, p, defaultTC(), 1000); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SpillWrites == 0 || st.Evictions == 0 {
		t.Fatalf("expected a spill, stats = %+v", st)
	}

	trA2, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, trA2.Source()); !reflect.DeepEqual(got, want) {
		t.Fatal("reloaded trace differs from the original")
	}
	if got := c.Generations(); got != 2 {
		t.Errorf("generations = %d, want 2 (reload must not regenerate)", got)
	}
	if st := c.Stats(); st.SpillLoads != 1 {
		t.Errorf("spill loads = %d, want 1", st.SpillLoads)
	}
	if trA2.StartPC() != trA.StartPC() || trA2.WrongPath() != trA.WrongPath() || trA2.Bits() != trA.Bits() {
		t.Error("reloaded trace lost its metadata")
	}
}

// TestEvictionWithoutSpillRegenerates: no spill directory means eviction
// drops the entry and a later request simply regenerates.
func TestEvictionWithoutSpillRegenerates(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{MaxResidentBytes: 1})
	ctx := context.Background()

	trA, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, trA.Source())
	if _, err := c.Get(ctx, p, defaultTC(), 1000); err != nil {
		t.Fatal(err)
	}
	trA2, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, trA2.Source()); !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs")
	}
	if got := c.Generations(); got != 3 {
		t.Errorf("generations = %d, want 3", got)
	}
}

// TestCancelledLeaderDoesNotPoisonKey: a cancelled generation leaves no
// broken entry behind.
func TestCancelledLeaderDoesNotPoisonKey(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(cancelled, p, defaultTC(), 2000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	tr, err := c.Get(context.Background(), p, defaultTC(), 2000)
	if err != nil {
		t.Fatalf("key poisoned after cancellation: %v", err)
	}
	if tr.Records() == 0 {
		t.Error("empty trace after retry")
	}
}

// TestUncacheableLimits: unbounded and over-cap budgets are refused.
func TestUncacheableLimits(t *testing.T) {
	p := gzipProfile(t)
	c := New(Config{MaxInstructions: 100})
	if c.Cacheable(0) || c.Cacheable(101) || !c.Cacheable(100) {
		t.Error("Cacheable thresholds wrong")
	}
	if _, err := c.Get(context.Background(), p, defaultTC(), 0); !errors.Is(err, ErrUncacheable) {
		t.Errorf("limit 0: err = %v, want ErrUncacheable", err)
	}
	if _, err := c.Get(context.Background(), p, defaultTC(), 101); !errors.Is(err, ErrUncacheable) {
		t.Errorf("limit 101: err = %v, want ErrUncacheable", err)
	}
}

// TestGenerationErrorPropagates: an invalid profile fails every request
// without wedging the slot.
func TestGenerationErrorPropagates(t *testing.T) {
	bad := workload.Profile{Name: "bad", Chase: 1, ListNodes: 1} // Chase needs >= 2 nodes
	c := New(Config{})
	for i := 0; i < 2; i++ {
		if _, err := c.Get(context.Background(), bad, defaultTC(), 1000); err == nil {
			t.Fatal("invalid profile generated a trace")
		}
	}
	if got := c.Generations(); got != 0 {
		t.Errorf("generations = %d, want 0", got)
	}
}

// TestLostSpillRegenerates: a spill file deleted behind the cache's back
// (tmp cleaner, disk trouble) must degrade to regeneration, not error.
func TestLostSpillRegenerates(t *testing.T) {
	p := gzipProfile(t)
	dir := t.TempDir()
	c := New(Config{SpillDir: dir, MaxResidentBytes: 1})
	ctx := context.Background()

	trA, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, trA.Source())
	if _, err := c.Get(ctx, p, defaultTC(), 1000); err != nil { // evicts A to disk
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no spill written: %v", err)
	}
	for _, e := range ents {
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	trA2, err := c.Get(ctx, p, defaultTC(), 3000)
	if err != nil {
		t.Fatalf("lost spill surfaced as an error: %v", err)
	}
	if got := drain(t, trA2.Source()); !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs after lost spill")
	}
	if got := c.Generations(); got != 3 {
		t.Errorf("generations = %d, want 3 (regenerate on lost spill)", got)
	}
}
