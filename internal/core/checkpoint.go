// Checkpoint/resume for the timing engine. ReSim's engines are
// deterministic — the same configuration over the same record stream
// reproduces every counter bit for bit — so a run interrupted at a known
// cycle can resume from serialized state instead of restarting from cycle 0
// (the property cycle-accurate simulators like FastSim-generated models and
// ChampSim's warmup/restore state rely on). A Checkpoint is the complete
// per-run state: pipeline and fetch state, reorder-buffer/LSQ/IFQ contents,
// rename and functional-unit occupancy, branch-predictor tables, cache
// arrays, the statistics accumulators and the trace-reader position, in a
// versioned, self-describing JSON encoding.
//
// The contract, pinned by tests at every layer: an uninterrupted run and a
// run checkpointed at a cycle boundary, torn down, and resumed over an
// identical record stream produce byte-identical final statistics.
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// CheckpointVersion is the current checkpoint encoding version; decoding
// rejects other versions.
const CheckpointVersion = 1

// CheckpointedInst is the serialized form of one in-flight instruction —
// the union of the IFQ, reorder-buffer and LSQ entry fields. Structures use
// the fields they carry and leave the rest zero.
type CheckpointedInst struct {
	Seq        int64        `json:"seq"`
	Rec        trace.Record `json:"rec"`
	PC         uint32       `json:"pc,omitempty"`
	ActualNext uint32       `json:"actual_next,omitempty"`
	WrongPath  bool         `json:"wrong_path,omitempty"`
	Mispred    bool         `json:"mispred,omitempty"`

	// Reorder-buffer fields.
	State      uint8 `json:"state,omitempty"`
	Src1Seq    int64 `json:"src1_seq,omitempty"`
	Src2Seq    int64 `json:"src2_seq,omitempty"`
	Src1Rdy    bool  `json:"src1_rdy,omitempty"`
	Src2Rdy    bool  `json:"src2_rdy,omitempty"`
	CompleteAt int64 `json:"complete_at,omitempty"`

	// LSQ fields.
	Store     bool   `json:"store,omitempty"`
	Addr      uint32 `json:"addr,omitempty"`
	Size      uint32 `json:"size,omitempty"`
	EAKnownAt int64  `json:"ea_known_at,omitempty"`
	MemReady  bool   `json:"mem_ready,omitempty"`
	Forwarded bool   `json:"forwarded,omitempty"`
	MemIssued bool   `json:"mem_issued,omitempty"`
}

// Checkpoint is a complete serialized engine state, captured between major
// cycles. Restore it into a fresh engine with Restore; the engine must use
// the same configuration (guarded by ConfigDigest) over an identical record
// stream (re-attached at TracePos).
type Checkpoint struct {
	Version      int    `json:"version"`
	ConfigDigest string `json:"config_digest"`
	// Input names the record stream the checkpointed run consumed, in
	// whatever form the capturing layer can identify it (the resim Session
	// stamps "workload:<name>/n=<limit>" or "trace:<file>"). The engine
	// cannot derive it from its Source, so core.Restore does not check it;
	// layers that know their input validate it before restoring, turning a
	// resume against the wrong stream into a loud error instead of a
	// silently wrong simulation.
	Input string `json:"input,omitempty"`

	// Cycle and fetch state.
	Now           int64  `json:"now"`
	Seq           int64  `json:"seq"`
	FetchPC       uint32 `json:"fetch_pc"`
	FetchResumeAt int64  `json:"fetch_resume_at"`
	Mode          uint8  `json:"mode"`
	SrcDone       bool   `json:"src_done"`
	LastCommitAt  int64  `json:"last_commit_at"`

	// TracePos is how many records the run has irrevocably taken from its
	// source; a resumed run re-attaches to an identical source (for example
	// a fresh tracecache snapshot) by skipping this many records.
	TracePos uint64 `json:"trace_pos"`

	Counters Counters `json:"counters"`

	// Structure contents, oldest first.
	IFQ []CheckpointedInst `json:"ifq"`
	ROB []CheckpointedInst `json:"rob"`
	LSQ []CheckpointedInst `json:"lsq"`

	Rename []int64   `json:"rename"`
	FUBusy [][]int64 `json:"fu_busy"`

	BPred  *bpred.State `json:"bpred,omitempty"`
	ICache *cache.State `json:"icache,omitempty"`
	DCache *cache.State `json:"dcache,omitempty"`

	// Statistics accumulators (the occupancy side of the stats registry;
	// plain counters live in Counters).
	IFQOcc stats.Occupancy `json:"ifq_occ"`
	RBOcc  stats.Occupancy `json:"rb_occ"`
	LSQOcc stats.Occupancy `json:"lsq_occ"`
}

// Cycles returns the major-cycle number the checkpoint was captured at.
func (cp *Checkpoint) Cycles() uint64 { return cp.Counters.Cycles }

// EncodeTo writes the checkpoint's versioned JSON form to w.
func (cp *Checkpoint) EncodeTo(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// Encode returns the checkpoint's serialized bytes (the EncodeTo encoding).
func (cp *Checkpoint) Encode() ([]byte, error) {
	return json.Marshal(cp)
}

// ReadCheckpoint decodes a checkpoint written by EncodeTo or Encode,
// rejecting unknown versions.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// DecodeCheckpoint decodes serialized checkpoint bytes (Encode's output).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	return ReadCheckpoint(bytes.NewReader(data))
}

// CheckpointDigest fingerprints the configuration fields that shape
// simulated behavior — a checkpoint only restores into an engine whose
// digest matches, so resuming under a silently different machine fails
// loudly. Run hooks (observers, tracers, sinks) and MaxCycles are excluded:
// they do not alter simulated state, and a resumed run may legitimately
// extend its cycle budget. Cache models are validated separately, by the
// geometry carried in the serialized cache state itself.
func (c Config) CheckpointDigest() string {
	id := fmt.Sprintf("v%d w=%d ifq=%d rb=%d lsq=%d fus=%#v rp=%d wp=%d mf=%d mp=%d pbp=%t pred=%#v org=%d",
		CheckpointVersion, c.Width, c.IFQSize, c.RBSize, c.LSQSize, c.FUs,
		c.MemReadPorts, c.MemWritePorts, c.MisfetchPenalty, c.MispredPenalty,
		c.PerfectBP, c.Predictor, c.Organization)
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:8])
}

// Checkpoint captures the engine's complete per-run state. It must be
// called between major cycles (never from inside Cycle); RunContext invokes
// it at checkpoint-interval boundaries. It fails when the memory system
// uses a custom cache model with no serializable state.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	ic, err := cache.CaptureState(e.icache)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint instruction cache: %w", err)
	}
	dc, err := cache.CaptureState(e.dcache)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint data cache: %w", err)
	}
	cp := &Checkpoint{
		Version:      CheckpointVersion,
		ConfigDigest: e.cfg.CheckpointDigest(),

		Now:           e.now,
		Seq:           e.seq,
		FetchPC:       e.fetchPC,
		FetchResumeAt: e.fetchResumeAt,
		Mode:          uint8(e.mode),
		SrcDone:       e.srcDone,
		LastCommitAt:  e.lastCommitAt,
		TracePos:      e.src.Pos(),

		Counters: e.c,

		Rename: e.rt.Producers(),
		FUBusy: e.fus.BusyUntil(),

		ICache: ic,
		DCache: dc,

		IFQOcc: e.ifqOcc,
		RBOcc:  e.rbOcc,
		LSQOcc: e.lsqOcc,
	}
	for _, fi := range e.ifq.Snapshot() {
		cp.IFQ = append(cp.IFQ, CheckpointedInst{
			Seq: fi.seq, Rec: fi.rec, PC: fi.pc, ActualNext: fi.actualNext,
			WrongPath: fi.wrongPath, Mispred: fi.mispred,
		})
	}
	for _, en := range e.rob.Snapshot() {
		cp.ROB = append(cp.ROB, CheckpointedInst{
			Seq: en.seq, Rec: en.rec, PC: en.pc, ActualNext: en.actualNext,
			WrongPath: en.wrongPath, Mispred: en.mispred,
			State: uint8(en.state), Src1Seq: en.src1Seq, Src2Seq: en.src2Seq,
			Src1Rdy: en.src1Rdy, Src2Rdy: en.src2Rdy, CompleteAt: en.completeAt,
		})
	}
	for _, lq := range e.lsq.Snapshot() {
		cp.LSQ = append(cp.LSQ, CheckpointedInst{
			Seq: lq.seq, Store: lq.store, Addr: lq.addr, Size: lq.size,
			EAKnownAt: lq.eaKnownAt, MemReady: lq.memReady,
			Forwarded: lq.forwarded, MemIssued: lq.memIssued,
		})
	}
	if e.bp != nil {
		st := e.bp.State()
		cp.BPred = &st
	}
	return cp, nil
}

// Restore builds an engine from cfg over src and installs the checkpointed
// state: src must yield the identical record stream the checkpointed run
// consumed (the same trace file, or a tracecache snapshot of the same key) —
// Restore skips the already-consumed prefix and the engine continues from
// cp.Now exactly as the original would have. cfg must carry the same
// simulated-machine parameters (ConfigDigest) and equally parameterized
// cache models; run hooks (Observer, PipeTracer, CheckpointSink) may differ.
func Restore(cfg Config, src trace.Source, cp *Checkpoint) (*Engine, error) {
	if cp == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	if got := cfg.CheckpointDigest(); got != cp.ConfigDigest {
		return nil, fmt.Errorf("core: checkpoint was taken under a different configuration (digest %s, engine %s)",
			cp.ConfigDigest, got)
	}
	e, err := New(cfg, src, cp.FetchPC)
	if err != nil {
		return nil, err
	}
	if err := e.src.Skip(cp.TracePos); err != nil {
		return nil, fmt.Errorf("core: re-attach trace at record %d: %w", cp.TracePos, err)
	}

	if cp.Mode > uint8(fmStarved) {
		return nil, fmt.Errorf("core: checkpoint fetch mode %d unknown", cp.Mode)
	}
	e.now = cp.Now
	e.seq = cp.Seq
	e.fetchPC = cp.FetchPC
	e.fetchResumeAt = cp.FetchResumeAt
	e.mode = fetchMode(cp.Mode)
	e.srcDone = cp.SrcDone
	e.lastCommitAt = cp.LastCommitAt
	e.c = cp.Counters

	ifq := make([]fetchedInst, len(cp.IFQ))
	for i, ci := range cp.IFQ {
		ifq[i] = fetchedInst{seq: ci.Seq, rec: ci.Rec, pc: ci.PC,
			actualNext: ci.ActualNext, wrongPath: ci.WrongPath, mispred: ci.Mispred}
	}
	if err := e.ifq.SetContents(ifq); err != nil {
		return nil, fmt.Errorf("core: restore IFQ: %w", err)
	}
	rob := make([]robEntry, len(cp.ROB))
	for i, ci := range cp.ROB {
		if ci.State > uint8(stCompleted) {
			return nil, fmt.Errorf("core: restore ROB seq %d: instruction state %d unknown", ci.Seq, ci.State)
		}
		rob[i] = robEntry{seq: ci.Seq, rec: ci.Rec, pc: ci.PC,
			actualNext: ci.ActualNext, wrongPath: ci.WrongPath, mispred: ci.Mispred,
			state: instState(ci.State), src1Seq: ci.Src1Seq, src2Seq: ci.Src2Seq,
			src1Rdy: ci.Src1Rdy, src2Rdy: ci.Src2Rdy, completeAt: ci.CompleteAt}
	}
	if err := e.rob.SetContents(rob); err != nil {
		return nil, fmt.Errorf("core: restore reorder buffer: %w", err)
	}
	lsq := make([]lsqEntry, len(cp.LSQ))
	for i, ci := range cp.LSQ {
		lsq[i] = lsqEntry{seq: ci.Seq, store: ci.Store, addr: ci.Addr, size: ci.Size,
			eaKnownAt: ci.EAKnownAt, memReady: ci.MemReady,
			forwarded: ci.Forwarded, memIssued: ci.MemIssued}
	}
	if err := e.lsq.SetContents(lsq); err != nil {
		return nil, fmt.Errorf("core: restore LSQ: %w", err)
	}

	if err := e.rt.SetProducers(cp.Rename); err != nil {
		return nil, fmt.Errorf("core: restore rename table: %w", err)
	}
	if err := e.fus.SetBusyUntil(cp.FUBusy); err != nil {
		return nil, fmt.Errorf("core: restore functional units: %w", err)
	}

	switch {
	case e.bp == nil && cp.BPred != nil:
		return nil, fmt.Errorf("core: checkpoint carries predictor state but the engine runs perfect branch prediction")
	case e.bp != nil && cp.BPred == nil:
		return nil, fmt.Errorf("core: checkpoint has no predictor state for the engine's simulated predictor")
	case e.bp != nil:
		if err := e.bp.SetState(*cp.BPred); err != nil {
			return nil, fmt.Errorf("core: restore branch predictor: %w", err)
		}
	}
	if err := cache.RestoreState(e.icache, cp.ICache); err != nil {
		return nil, fmt.Errorf("core: restore instruction cache: %w", err)
	}
	if err := cache.RestoreState(e.dcache, cp.DCache); err != nil {
		return nil, fmt.Errorf("core: restore data cache: %w", err)
	}

	e.ifqOcc = cp.IFQOcc
	e.rbOcc = cp.RBOcc
	e.lsqOcc = cp.LSQOcc
	if err := e.rebuildDerived(); err != nil {
		return nil, err
	}
	return e, nil
}

// rebuildDerived reconstructs the engine's event-scheduling state — LSQ
// handles, consumer lists, the ready queue and the completion heap — from
// freshly restored architectural state. Checkpoints never serialize any of
// it (the JSON format predates it and stays stable); it is all a pure
// function of the reorder-buffer, LSQ and rename contents:
//
//   - memory instructions pair with LSQ entries in age order, giving each
//     its lsqAbs handle;
//   - a dispatched entry with a pending operand registers it on the
//     producer named by its src seq (resident and not yet broadcast, or the
//     operand would be ready);
//   - dispatched entries with all operands ready form the ready queue;
//   - issued entries form the completion heap, or the broadcast-overflow
//     queue when their completeAt has already passed (a Width-saturated
//     writeback deferred them).
func (e *Engine) rebuildDerived() error {
	e.clearDerived()
	if e.rob.Empty() {
		if e.lsq.Len() != 0 {
			return fmt.Errorf("core: %d LSQ entries with an empty reorder buffer", e.lsq.Len())
		}
		return nil
	}
	headSeq := e.rob.At(0).seq
	robBase := e.rob.Base()
	n := int64(e.rob.Len())
	li := 0
	for i := 0; i < e.rob.Len(); i++ {
		en := e.rob.At(i)
		abs := robBase + int64(i)
		en.lsq = nil
		en.slot = int32(abs & e.consMask)
		if en.rec.Kind == trace.KindMem {
			if li >= e.lsq.Len() || e.lsq.At(li).seq != en.seq {
				return fmt.Errorf("core: LSQ out of sync with reorder buffer at seq %d", en.seq)
			}
			en.lsq = e.lsq.At(li)
			li++
			if !en.rec.Store {
				e.lsqLoads++
			}
		}
		switch en.state {
		case stDispatched:
			for op, pending := range []struct {
				srcSeq int64
				rdy    bool
			}{{en.src1Seq, en.src1Rdy}, {en.src2Seq, en.src2Rdy}} {
				if pending.rdy {
					continue
				}
				if pending.srcSeq < headSeq || pending.srcSeq >= headSeq+n {
					return fmt.Errorf("core: seq %d waits on producer %d outside the reorder buffer", en.seq, pending.srcSeq)
				}
				// Resident seqs are contiguous in a well-formed checkpoint;
				// verify rather than assume, so a malformed one fails restore
				// instead of silently mis-wiring the wakeup graph.
				prod := e.rob.At(int(pending.srcSeq - headSeq))
				if prod.seq != pending.srcSeq {
					return fmt.Errorf("core: reorder-buffer seqs not contiguous: found %d looking for producer %d", prod.seq, pending.srcSeq)
				}
				e.addConsumer(prod, en, uint8(op))
			}
			if en.src1Rdy && en.src2Rdy {
				e.readyQ = append(e.readyQ, en)
			}
		case stIssued:
			if en.completeAt <= e.now {
				e.wbReady = append(e.wbReady, en)
			} else {
				e.heapPush(en.completeAt, en)
			}
		}
		// Re-point the producer mirror at entries the rename table still
		// names.
		if d := en.rec.Dest; d != isa.NoReg && e.rt.Producer(d) == en.seq {
			e.prodPtr[d] = en
		}
	}
	if li != e.lsq.Len() {
		return fmt.Errorf("core: %d LSQ entries unmatched by reorder-buffer memory instructions", e.lsq.Len()-li)
	}
	// Every producer the restored rename table names must be resident (the
	// prodPtr mirror above found it), or the first dispatch reading that
	// register would chase a nil producer mid-run; fail restore instead.
	for r, seq := range e.rt.Producers() {
		if seq == uarch.NoProducer {
			continue
		}
		if p := e.prodPtr[r]; p == nil || p.seq != seq {
			return fmt.Errorf("core: rename table names seq %d as r%d's producer, but no resident instruction writes it", seq, r)
		}
	}
	return nil
}
