package core_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ckptRecords materializes a deterministic record stream for checkpoint
// tests (both the original and the resumed engine replay identical copies).
func ckptRecords(t testing.TB, name string, cfg core.Config, limit uint64) []trace.Record {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.NewSource(cfg.TraceConfig(), limit)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
}

// resultsEqual compares two results bit for bit, including the rendered
// statistics registry (the "byte-identical stats" acceptance property).
func resultsEqual(t *testing.T, a, b core.Result, what string) {
	t.Helper()
	if a.Counters != b.Counters {
		t.Errorf("%s: counters differ:\n%+v\n%+v", what, a.Counters, b.Counters)
	}
	if a.ICache != b.ICache || a.DCache != b.DCache {
		t.Errorf("%s: cache stats differ", what)
	}
	if ra, rb := a.Registry().String(), b.Registry().String(); ra != rb {
		t.Errorf("%s: statistics reports differ:\n--- uninterrupted\n%s\n--- resumed\n%s", what, ra, rb)
	}
}

// TestCheckpointResumeBitIdentical is the core acceptance property: a run
// checkpointed mid-flight, torn down, and restored over an identical record
// stream finishes with byte-identical statistics — across perfect memory,
// real caches, and perfect branch prediction.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() core.Config
	}{
		{"default", core.DefaultConfig},
		{"caches", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.ICache = cache.New(cache.Config{Name: "il1", SizeBytes: 4 << 10, Assoc: 2,
				BlockBytes: 32, HitLatency: 1, MissLatency: 12})
			cfg.DCache = cache.New(cache.Config{Name: "dl1", SizeBytes: 4 << 10, Assoc: 2,
				BlockBytes: 32, HitLatency: 1, MissLatency: 12})
			return cfg
		}},
		{"perfect-bp", func() core.Config {
			cfg := core.FASTComparisonConfig()
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			recs := ckptRecords(t, "gzip", cfg, 30_000)

			// Uninterrupted reference run.
			ref, err := core.New(tc.cfg(), trace.NewSliceSource(recs), funcsim.CodeBase)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Checkpointed run: stop at a mid-run cycle boundary.
			eng, err := core.New(tc.cfg(), trace.NewSliceSource(recs), funcsim.CodeBase)
			if err != nil {
				t.Fatal(err)
			}
			const stopAt = 5000
			for eng.Now() < stopAt && !eng.Done() {
				if err := eng.Cycle(); err != nil {
					t.Fatal(err)
				}
			}
			if eng.Done() {
				t.Fatalf("trace drained before cycle %d; pick a longer budget", stopAt)
			}
			cp, err := eng.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			// Serialize and decode — the resumed engine must come from the
			// encoded form, as it would after a process death.
			var buf bytes.Buffer
			if err := cp.EncodeTo(&buf); err != nil {
				t.Fatal(err)
			}
			cp2, err := core.ReadCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}

			resumed, err := core.Restore(tc.cfg(), trace.NewSliceSource(recs), cp2)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Now() != stopAt {
				t.Fatalf("resumed at cycle %d, want %d", resumed.Now(), stopAt)
			}
			got, err := resumed.Run()
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, want, got, tc.name)
		})
	}
}

// TestCheckpointEncodingSelfDescribing pins the encoding contract: a
// versioned JSON object whose version gates decoding.
func TestCheckpointEncodingSelfDescribing(t *testing.T) {
	cfg := core.DefaultConfig()
	recs := ckptRecords(t, "vpr", cfg, 4000)
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := eng.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	data, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"version":1`, `"config_digest"`, `"counters"`, `"bpred"`, `"icache"`, `"trace_pos"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("encoded checkpoint lacks %s", field)
		}
	}
	if _, err := core.DecodeCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	// A future version must be rejected, not misread.
	bad := bytes.Replace(data, []byte(`"version":1`), []byte(`"version":99`), 1)
	if _, err := core.DecodeCheckpoint(bad); err == nil {
		t.Error("decoder accepted an unknown checkpoint version")
	}
}

// TestRestoreRejectsMismatchedConfig: a checkpoint only restores into the
// machine it was captured on.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	recs := ckptRecords(t, "gzip", cfg, 4000)
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := eng.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	other := core.DefaultConfig()
	other.RBSize = 32
	if _, err := core.Restore(other, trace.NewSliceSource(recs), cp); err == nil {
		t.Error("Restore accepted a checkpoint from a different configuration")
	}
	if _, err := core.Restore(cfg, trace.NewSliceSource(recs), cp); err != nil {
		t.Errorf("Restore rejected the matching configuration: %v", err)
	}
}

// TestRunContextCheckpointSink: RunContext captures at absolute
// CheckpointEvery boundaries and every captured checkpoint is independently
// resumable to the same final statistics.
func TestRunContextCheckpointSink(t *testing.T) {
	cfg := core.DefaultConfig()
	recs := ckptRecords(t, "parser", cfg, 20_000)

	var cps []*core.Checkpoint
	run := cfg
	run.CheckpointEvery = 1024
	run.CheckpointSink = func(cp *core.Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}
	eng, err := core.New(run, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("sink received %d checkpoints over %d cycles (every 1024)", len(cps), want.Cycles)
	}
	for i, cp := range cps {
		if cp.Cycles()%1024 != 0 {
			t.Errorf("checkpoint %d at cycle %d, want an absolute multiple of 1024", i, cp.Cycles())
		}
	}
	// Every checkpoint resumes to the identical final result.
	for _, cp := range []*core.Checkpoint{cps[0], cps[len(cps)-1]} {
		resumed, err := core.Restore(cfg, trace.NewSliceSource(recs), cp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.Run()
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, want, got, "resume from sink checkpoint")
	}
}

// TestEngineResetEquivalence pins the Reset contract the restore path
// relies on: a second run on a reset engine is bit-identical to a run on a
// fresh engine, for every serialized subsystem.
func TestEngineResetEquivalence(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ICache = cache.New(cache.Config{Name: "il1", SizeBytes: 2 << 10, Assoc: 2,
		BlockBytes: 32, HitLatency: 1, MissLatency: 9})
	cfg.DCache = cache.New(cache.Config{Name: "dl1", SizeBytes: 2 << 10, Assoc: 2,
		BlockBytes: 32, HitLatency: 1, MissLatency: 9})
	recs := ckptRecords(t, "vpr", cfg, 10_000)

	fresh, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Same engine, second run after Reset: no leaked fetchResumeAt, mode,
	// counters, predictor or cache state from the first run.
	fresh.Reset(trace.NewSliceSource(recs), funcsim.CodeBase)
	got, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, want, got, "reset engine rerun")

	// And the reset state is checkpoint-identical to a fresh engine's: the
	// exhaustiveness guarantee restore depends on.
	fresh.Reset(trace.NewSliceSource(recs), funcsim.CodeBase)
	cpReset, err := fresh.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.ICache = cache.New(cache.Config{Name: "il1", SizeBytes: 2 << 10, Assoc: 2,
		BlockBytes: 32, HitLatency: 1, MissLatency: 9})
	cfg2.DCache = cache.New(cache.Config{Name: "dl1", SizeBytes: 2 << 10, Assoc: 2,
		BlockBytes: 32, HitLatency: 1, MissLatency: 9})
	virgin, err := core.New(cfg2, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	cpVirgin, err := virgin.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	a, err := cpReset.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cpVirgin.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("reset engine state differs from a fresh engine's:\nreset  %s\nvirgin %s", a, b)
	}
}

// TestDriveObserverCadencePinned pins the observer callback cycle sequence:
// absolute interval multiples, not offsets re-anchored on whatever cycle
// the poll landed on, so checkpoint boundaries are deterministic across
// runs and step granularities.
func TestDriveObserverCadencePinned(t *testing.T) {
	for _, stride := range []uint64{1, 3, 7} {
		var cycles uint64
		var at []uint64
		obs := core.ObserverFunc(func(p core.Progress) {
			if !p.Final {
				at = append(at, p.Cycles)
			}
		})
		err := core.Drive(context.Background(), obs, 10,
			func() uint64 { return cycles },
			func() bool { return cycles >= 95 },
			func() error { cycles += stride; return nil },
			func(final bool) core.Progress { return core.Progress{Cycles: cycles, Final: final} },
		)
		if err != nil {
			t.Fatal(err)
		}
		// Every callback lands at the first step crossing a multiple of 10,
		// and consecutive callbacks cover consecutive boundaries even when a
		// stride overshoots (boundaries are absolute, not re-anchored).
		for i, c := range at {
			boundary := uint64(10 * (i + 1))
			if c < boundary || c >= boundary+stride {
				t.Errorf("stride %d: callback %d at cycle %d, want within [%d,%d)",
					stride, i, c, boundary, boundary+stride)
			}
		}
		if len(at) < 9 {
			t.Errorf("stride %d: %d callbacks over 95+ cycles at interval 10", stride, len(at))
		}
	}
}

// TestDriveTerminalSnapshotOnCancel: a cancelled run delivers one last
// non-Final callback carrying the cycle the run actually stopped at.
func TestDriveTerminalSnapshotOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cycles uint64
	var last core.Progress
	var finals, calls int
	obs := core.ObserverFunc(func(p core.Progress) {
		calls++
		last = p
		if p.Final {
			finals++
		}
	})
	err := core.Drive(ctx, obs, 100,
		func() uint64 { return cycles },
		func() bool { return false }, // only cancellation ends the loop
		func() error {
			cycles++
			if cycles == 3*core.CtxCheckInterval {
				cancel()
			}
			return nil
		},
		func(final bool) core.Progress { return core.Progress{Cycles: cycles, Final: final} },
	)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls == 0 || finals != 0 {
		t.Fatalf("calls = %d, finals = %d; want a terminal non-Final snapshot", calls, finals)
	}
	if last.Final || last.Cycles != 3*core.CtxCheckInterval {
		t.Errorf("last callback = %+v, want non-Final at cycle %d", last, 3*core.CtxCheckInterval)
	}
}

// TestDriveTerminalSnapshotOnStepError: engine failures also flush a last
// snapshot before surfacing the error.
func TestDriveTerminalSnapshotOnStepError(t *testing.T) {
	var cycles uint64
	var last core.Progress
	boom := io.ErrUnexpectedEOF
	obs := core.ObserverFunc(func(p core.Progress) { last = p })
	err := core.Drive(context.Background(), obs, 100,
		func() uint64 { return cycles },
		func() bool { return false },
		func() error {
			cycles++
			if cycles == 42 {
				return boom
			}
			return nil
		},
		func(final bool) core.Progress { return core.Progress{Cycles: cycles, Final: final} },
	)
	if err != boom {
		t.Fatalf("err = %v, want the step error", err)
	}
	if last.Final || last.Cycles != 42 {
		t.Errorf("last callback = %+v, want non-Final at cycle 42", last)
	}
}
