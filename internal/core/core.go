package core
