package core

import (
	"repro/internal/cache"
	"repro/internal/stats"
)

// Result is the outcome of a simulation run: the engine counters plus cache
// statistics and structure occupancies.
type Result struct {
	Counters
	ICache cache.Stats
	DCache cache.Stats
	IFQ    stats.Occupancy
	RB     stats.Occupancy
	LSQ    stats.Occupancy
	Config Config
}

// IPC returns committed correct-path instructions per simulated cycle; this
// is the quantity that, multiplied by f_minor/K, gives Table 1's simulation
// MIPS.
func (r Result) IPC() float64 {
	return stats.Ratio(r.Committed, r.Cycles)
}

// TotalIPC returns instructions fetched per cycle including wrong-path
// instructions; Table 3's "Simulation Throughput ... including
// mis-speculated instructions" uses this rate.
func (r Result) TotalIPC() float64 {
	return stats.Ratio(r.Committed+r.WrongPathFetched, r.Cycles)
}

// WrongPathOverhead returns wrong-path fetched instructions as a fraction of
// committed instructions (the paper reports "the cost due to mispredictions
// which is about 10%").
func (r Result) WrongPathOverhead() float64 {
	return stats.Ratio(r.WrongPathFetched, r.Committed)
}

// MispredictRate returns resolved mispredictions per committed branch.
func (r Result) MispredictRate() float64 {
	return stats.Ratio(r.MispredResolved, r.CommittedBranches)
}

// Registry renders the result as a sim-outorder-style statistics report
// (§V.B: ReSim "collects various statistics that are similar to the ones
// found in sim-outorder").
func (r Result) Registry() *stats.Registry {
	reg := stats.NewRegistry()
	set := func(name, desc string, v uint64) {
		reg.Counter(name, desc).Set(v)
	}
	set("sim_cycle", "total simulated (major) cycles", r.Cycles)
	set("sim_num_insn", "total committed instructions", r.Committed)
	set("sim_num_loads", "committed loads", r.CommittedLoads)
	set("sim_num_stores", "committed stores", r.CommittedStores)
	set("sim_num_branches", "committed branches", r.CommittedBranches)
	set("sim_num_refs", "committed memory references", r.CommittedLoads+r.CommittedStores)
	reg.Formula("sim_IPC", "committed instructions per cycle", r.IPC)
	reg.Formula("sim_total_IPC", "instructions per cycle incl. wrong path", r.TotalIPC)

	set("fetch_total", "instructions fetched (incl. wrong path)", r.FetchedTotal)
	set("fetch_wrong_path", "wrong-path instructions fetched", r.WrongPathFetched)
	set("fetch_idle_cycles", "cycles fetch served a penalty or I-cache miss", r.FetchIdle)
	set("fetch_starved_cycles", "cycles fetch awaited branch resolution", r.FetchStarved)

	set("bpred_lookups", "branch predictor lookups", r.BPLookups)
	set("bpred_misfetches", "misfetches (wrong BTB target, direct branch)", r.Misfetches)
	set("bpred_mispred_detected", "mispredictions detected at fetch", r.MispredDetected)
	set("bpred_mispred_resolved", "mispredictions resolved at commit", r.MispredResolved)
	set("bpred_mispred_starved", "mispredictions without a wrong-path block", r.MispredStarved)
	reg.Formula("bpred_mispred_rate", "mispredictions per committed branch", r.MispredictRate)

	set("trace_wp_blocks_entered", "wrong-path blocks fetched", r.WPBlocksEntered)
	set("trace_wp_blocks_skipped", "wrong-path blocks discarded unfetched", r.WPBlocksSkipped)
	set("trace_wp_records_discarded", "tagged records discarded", r.WPRecordsDiscarded)

	set("dispatch_rb_full", "dispatch stalls on full reorder buffer", r.RBFullStalls)
	set("dispatch_lsq_full", "dispatch stalls on full LSQ", r.LSQFullStalls)
	set("commit_store_port_stalls", "commit stalls awaiting a write port", r.StorePortStalls)

	set("issue_total", "instructions issued", r.Issued)
	set("issue_loads_forwarded", "loads satisfied by LSQ forwarding", r.LoadsForwarded)
	set("issue_load_slot0_deferrals", "loads deferred from issue slot 0", r.LoadFirstSlotDeferred)

	// Per-class branch detail (§V.B).
	kindNames := []string{"", "cond", "jump", "call", "ret", "ijump", "icall"}
	for k := 1; k < len(kindNames); k++ {
		set("bpred_"+kindNames[k]+"_committed", "committed "+kindNames[k]+" branches", r.BranchesByKind[k])
		set("bpred_"+kindNames[k]+"_mispred", "mispredicted "+kindNames[k]+" branches", r.MispredictByKind[k])
	}
	set("bpred_taken_branches", "committed taken branches", r.TakenBranches)
	set("bpred_ras_pops", "return address stack pops", r.RASPops)
	set("bpred_ras_empty_pops", "returns predicted with empty RAS", r.RASEmptyPops)

	set("il1_accesses", "I-cache accesses", r.ICache.Accesses())
	set("il1_misses", "I-cache misses", r.ICache.Misses())
	set("dl1_accesses", "D-cache accesses", r.DCache.Accesses())
	set("dl1_misses", "D-cache misses", r.DCache.Misses())

	ifq, rb, lsq := r.IFQ, r.RB, r.LSQ
	reg.Formula("IFQ_occ_avg", "average IFQ occupancy", ifq.Mean)
	reg.Formula("RB_occ_avg", "average reorder buffer occupancy", rb.Mean)
	reg.Formula("LSQ_occ_avg", "average LSQ occupancy", lsq.Mean)
	return reg
}
