package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestWritebackBandwidthLimited(t *testing.T) {
	// Eight independent single-cycle ops on a width-2 machine: at most two
	// writebacks per cycle, so completion spreads over >= 4 cycles even
	// though ALUs could finish faster.
	cfg := perfectCfg()
	cfg.Width = 2
	cfg.Organization = sched.OrgImproved
	cfg.MemReadPorts = 1
	res := run(t, cfg, indep(8))
	// width-2: fetch 2/cycle from cycle 0, dispatch trails, issue 2/cycle,
	// commit 2/cycle: 8 instructions need >= 4 commit cycles; total must
	// exceed the single-instruction latency by at least 3.
	if res.Cycles < 8 {
		t.Errorf("cycles = %d, want >= 8 for 8 ops at width 2", res.Cycles)
	}
}

func TestCommitStorePortContention(t *testing.T) {
	// Independent stores with one write port commit at most one per cycle.
	const k = 12
	recs := make([]trace.Record, k)
	for i := range recs {
		recs[i] = store(isa.Reg(2), isa.NoReg, uint32(0x1000+16*i))
	}
	res := run(t, perfectCfg(), recs)
	if res.CommittedStores != k {
		t.Fatalf("stores = %d", res.CommittedStores)
	}
	if res.Cycles < k {
		t.Errorf("cycles = %d, want >= %d (one store commit per cycle)", res.Cycles, k)
	}
	if res.StorePortStalls == 0 {
		t.Error("no store port stalls recorded despite contention")
	}
}

func TestIFQBackpressure(t *testing.T) {
	// A divide chain blocks commit; the RB fills, then dispatch stalls,
	// then the IFQ fills and fetch stops. All backpressure counters move.
	var recs []trace.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, div(2, 2, isa.NoReg)) // dependent divides
	}
	recs = append(recs, indep(40)...)
	res := run(t, perfectCfg(), recs)
	if res.RBFullStalls == 0 {
		t.Error("RB never filled behind the divide chain")
	}
	if res.RB.FullFrac() == 0 {
		t.Error("RB occupancy never sampled full")
	}
}

func TestLSQFullStalls(t *testing.T) {
	// More in-flight memory ops than LSQ entries, blocked behind a divide
	// producing every base register: dispatch must stall on LSQ space.
	var recs []trace.Record
	recs = append(recs, div(2, isa.NoReg, isa.NoReg))
	for i := 0; i < 12; i++ {
		recs = append(recs, load(isa.Reg(3+i%8), 2, uint32(0x2000+4*i)))
	}
	res := run(t, perfectCfg(), recs)
	if res.LSQFullStalls == 0 {
		t.Errorf("LSQ never filled: %+v", res.Counters)
	}
}

func TestICacheMissStallsFetch(t *testing.T) {
	cfg := perfectCfg()
	cfg.ICache = cache.New(cache.Config{Name: "il1", SizeBytes: 512, Assoc: 1,
		BlockBytes: 64, HitLatency: 1, MissLatency: 15})
	res := run(t, cfg, indep(32))
	if res.ICache.Misses() == 0 {
		t.Fatal("no I-cache misses")
	}
	if res.FetchIdle == 0 {
		t.Error("I-cache misses did not idle fetch")
	}
	// The cold miss adds ~15 cycles against the perfect-memory baseline.
	base := run(t, perfectCfg(), indep(32))
	if res.Cycles <= base.Cycles {
		t.Errorf("I-cache misses did not slow simulation: %d <= %d", res.Cycles, base.Cycles)
	}
}

func TestCallReturnThroughFullStack(t *testing.T) {
	// Generate a call-heavy program through funcsim and verify the engine's
	// RAS predicts the returns: with matched tracegen/engine predictors
	// there must be no return mispredictions after warmup.
	p := workload.Profile{
		Name: "calls", Seed: 1, Calls: 50, CallDepth: 4,
		Arith: 10, Chains: 2, ArrayBytes: 4096,
	}
	cfg := DefaultConfig()
	src, err := p.NewSource(funcsim.TraceConfig{
		Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen(),
	}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, src, funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedBranches == 0 {
		t.Fatal("no branches committed")
	}
	// Call/return pairs dominate; the RAS should keep the mispredict rate
	// very low (only cold-start conditional mispredicts remain).
	if rate := res.MispredictRate(); rate > 0.05 {
		t.Errorf("mispredict rate %.3f too high for call/return code", rate)
	}
	// Per-class branch detail (§V.B): calls and returns were committed in
	// equal numbers, returns never mispredicted, and the RAS was popped
	// once per return.
	if res.BranchesByKind[isa.CtrlCall] == 0 {
		t.Fatal("no calls recorded")
	}
	// The instruction limit can cut mid-call-chain, so calls may lead
	// returns by up to the call depth.
	calls, rets := res.BranchesByKind[isa.CtrlCall], res.BranchesByKind[isa.CtrlRet]
	if calls < rets || calls > rets+4 {
		t.Errorf("calls %d vs returns %d out of balance", calls, rets)
	}
	if res.MispredictByKind[isa.CtrlRet] != 0 {
		t.Errorf("returns mispredicted %d times despite matched RAS",
			res.MispredictByKind[isa.CtrlRet])
	}
	if res.RASPops == 0 || res.RASEmptyPops != 0 {
		t.Errorf("RAS pops = %d, empty pops = %d", res.RASPops, res.RASEmptyPops)
	}
	if res.TakenBranches == 0 {
		t.Error("no taken branches counted")
	}
}

func TestIndirectJumpMispredictsViaBTB(t *testing.T) {
	// An indirect jump whose target changes every execution defeats the
	// BTB: expect roughly one misprediction per target change.
	var recs []trace.Record
	const rounds = 10
	pc := uint32(0x1000)
	for i := 0; i < rounds; i++ {
		tgt := uint32(0x2000 + 0x100*i)
		recs = append(recs, trace.Record{Kind: trace.KindBranch, Ctrl: isa.CtrlIndirect,
			Taken: true, PC: pc, Target: tgt, Dest: isa.NoReg, Src1: 5, Src2: isa.NoReg})
		// A few fillers at the target let the branch commit before the next
		// indirect executes.
		for j := 0; j < 8; j++ {
			recs = append(recs, alu(isa.Reg(2+j%4), isa.NoReg, isa.NoReg))
		}
		pc = tgt + 8*4
	}
	res := run(t, DefaultConfig(), recs)
	if res.MispredResolved < rounds-1 {
		t.Errorf("indirect mispredicts = %d, want >= %d", res.MispredResolved, rounds-1)
	}
	// All starved (no wrong-path blocks in this hand-built trace).
	if res.MispredStarved != res.MispredDetected {
		t.Errorf("starved %d != detected %d", res.MispredStarved, res.MispredDetected)
	}
}

func TestStableIndirectTargetLearnedByBTB(t *testing.T) {
	// The same indirect jump always going to the same target is learned
	// after one miss.
	var recs []trace.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Record{Kind: trace.KindBranch, Ctrl: isa.CtrlIndirect,
			Taken: true, PC: 0x1000, Target: 0x2000, Dest: isa.NoReg, Src1: 5, Src2: isa.NoReg})
		for j := 0; j < 8; j++ {
			recs = append(recs, alu(isa.Reg(2+j%4), isa.NoReg, isa.NoReg))
		}
	}
	res := run(t, DefaultConfig(), recs)
	if res.MispredResolved > 2 {
		t.Errorf("stable indirect target mispredicted %d times", res.MispredResolved)
	}
}

func TestWidthOneOptimizedRejected(t *testing.T) {
	// Optimized organization at width 1 leaves no issue slot for loads
	// (max memory ports = N-1 = 0); Validate must reject it.
	cfg := DefaultConfig()
	cfg.Width = 1
	cfg.MemReadPorts = 1
	if err := cfg.Validate(); err == nil {
		t.Error("width-1 optimized organization accepted")
	}
	// Width 1 works under the improved organization.
	cfg.Organization = sched.OrgImproved
	if err := cfg.Validate(); err != nil {
		t.Errorf("width-1 improved rejected: %v", err)
	}
	res := run(t, withImproved(cfg), indep(20))
	if res.Committed != 20 {
		t.Errorf("width-1 committed %d", res.Committed)
	}
	if ipc := res.IPC(); ipc > 1.0 {
		t.Errorf("width-1 IPC = %.2f > 1", ipc)
	}
}

func withImproved(cfg Config) Config {
	cfg.Organization = sched.OrgImproved
	return cfg
}

// TestResourceMonotonicity: growing the reorder buffer (all else equal)
// never increases simulated cycles on the same trace.
func TestResourceMonotonicity(t *testing.T) {
	recs := randomTrace(4000, 23)
	prev := uint64(1 << 62)
	for _, rb := range []int{4, 8, 16, 32} {
		cfg := perfectCfg() // perfect BP keeps predictor timing out of the property
		cfg.RBSize = rb
		res := run(t, cfg, recs)
		if res.Cycles > prev {
			t.Errorf("RB %d: cycles %d > smaller-RB cycles %d", rb, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestWidthMonotonicity: a wider machine is never slower in simulated
// cycles (improved organization keeps the port configuration legal).
func TestWidthMonotonicity(t *testing.T) {
	recs := randomTrace(4000, 29)
	prev := uint64(1 << 62)
	for _, w := range []int{1, 2, 4, 8} {
		cfg := perfectCfg()
		cfg.Width = w
		cfg.Organization = sched.OrgImproved
		cfg.MemReadPorts = 1
		res := run(t, cfg, recs)
		if res.Cycles > prev {
			t.Errorf("width %d: cycles %d > narrower %d", w, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestQuickEngineInvariants drives random traces through random legal
// configurations and checks structural invariants.
func TestQuickEngineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 25; iter++ {
		cfg := DefaultConfig()
		cfg.Width = []int{2, 4, 8}[rng.Intn(3)]
		cfg.RBSize = []int{8, 16, 32}[rng.Intn(3)]
		cfg.LSQSize = []int{4, 8, 16}[rng.Intn(3)]
		cfg.IFQSize = []int{2, 4, 8}[rng.Intn(3)]
		cfg.MemReadPorts = 1 + rng.Intn(cfg.Width-1)
		if rng.Intn(2) == 0 {
			cfg.PerfectBP = true
		}
		if rng.Intn(3) == 0 {
			cfg.Organization = sched.OrgImproved
		}
		recs := randomTrace(1500, int64(100+iter))
		res := run(t, cfg, recs)

		var correct uint64
		for _, r := range recs {
			if !r.Tag {
				correct++
			}
		}
		// Every correct-path record commits exactly once.
		if res.Committed != correct {
			t.Fatalf("iter %d: committed %d, correct-path records %d (cfg %+v)",
				iter, res.Committed, correct, cfg)
		}
		// IPC can never exceed the machine width.
		if res.IPC() > float64(cfg.Width) {
			t.Fatalf("iter %d: IPC %.2f exceeds width %d", iter, res.IPC(), cfg.Width)
		}
		// Issued covers at least every committed instruction (wrong-path
		// instructions may add more).
		if res.Issued < res.Committed {
			t.Fatalf("iter %d: issued %d < committed %d", iter, res.Issued, res.Committed)
		}
		// Wrong-path accounting balances: every tagged record was fetched,
		// discarded, or left unread at EOF... fetched+discarded <= tagged.
		var tagged uint64
		for _, r := range recs {
			if r.Tag {
				tagged++
			}
		}
		if res.WrongPathFetched+res.WPRecordsDiscarded > tagged {
			t.Fatalf("iter %d: wrong-path accounting %d+%d exceeds %d tagged",
				iter, res.WrongPathFetched, res.WPRecordsDiscarded, tagged)
		}
	}
}

func TestTraceFileFeedsEngineIdentically(t *testing.T) {
	// Serializing the trace through the compressed container must not
	// change simulation results (codec transparency at the engine level).
	p, err := workload.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	tc := funcsim.TraceConfig{Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen()}
	src, err := p.NewSource(tc, 15000)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err != nil {
			break
		}
		recs = append(recs, r)
	}
	direct := run(t, cfg, recs)

	var buf bytes.Buffer
	w, err := trace.NewCompressedWriter(&buf, trace.Header{StartPC: funcsim.CodeBase, Records: uint64(len(recs))})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewCompressedReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cfg, rd, funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	viaFile, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if viaFile.Counters != direct.Counters {
		t.Errorf("compressed container changed results:\n%+v\n%+v",
			viaFile.Counters, direct.Counters)
	}
}

func TestMispredictRecoveryRestoresRename(t *testing.T) {
	// After recovery, instructions must not wait on squashed producers:
	// a wrong-path block writes r5; the post-recovery consumer of r5 must
	// see it architecturally ready and commit quickly.
	recs := []trace.Record{branch(true, 0x2000)}
	for i := 0; i < 6; i++ {
		r := alu(5, 5, isa.NoReg) // wrong-path chain writing r5
		r.Tag = true
		recs = append(recs, r)
	}
	recs = append(recs, alu(6, 5, isa.NoReg)) // correct path reads r5
	res := run(t, notTakenCfg(), recs)
	if res.Committed != 2 {
		t.Errorf("committed = %d, want 2", res.Committed)
	}
	// Bounded latency: branch resolves ~cycle 4, penalty 3, consumer then
	// flows through in ~5 more cycles.
	if res.Cycles > 16 {
		t.Errorf("cycles = %d; consumer stuck on squashed producer?", res.Cycles)
	}
}

func TestWrongPathLoadsPolluteDCache(t *testing.T) {
	// A mispredicted branch whose condition depends on a divide resolves
	// ~12 cycles after fetch; the wrong-path loads behind it have time to
	// issue and must access (and pollute) the D-cache, per the paper's
	// "model their effects in instruction processing, caches, etc".
	var recs []trace.Record
	recs = append(recs, div(2, isa.NoReg, isa.NoReg))
	b := branch(true, 0x2000)
	b.Src1 = 2 // resolution waits on the divide
	recs = append(recs, b)
	for i := 0; i < 6; i++ {
		ld := load(isa.Reg(3+i), isa.NoReg, uint32(0xA000+64*i))
		ld.Tag = true
		recs = append(recs, ld)
	}
	recs = append(recs, indep(4)...)

	cfg := notTakenCfg()
	cfg.DCache = cache.New(cache.Config{Name: "dl1", SizeBytes: 4 << 10, Assoc: 2,
		BlockBytes: 64, HitLatency: 1, MissLatency: 20})
	res := run(t, cfg, recs)
	if res.WrongPathFetched == 0 {
		t.Fatal("no wrong path fetched")
	}
	// No correct-path loads exist, so every D-cache read is wrong-path
	// pollution.
	if res.CommittedLoads != 0 {
		t.Fatalf("unexpected correct-path loads: %d", res.CommittedLoads)
	}
	if res.DCache.Reads == 0 {
		t.Error("wrong-path loads never accessed the D-cache")
	}
	if res.DCache.Misses() == 0 {
		t.Error("wrong-path loads did not pollute the D-cache")
	}
}

func TestNoBPLookupsUnderPerfectPrediction(t *testing.T) {
	res := run(t, perfectCfg(), mispredictTrace(4, 10))
	if res.BPLookups != 0 {
		t.Errorf("perfect BP performed %d lookups", res.BPLookups)
	}
}

func TestBimodalEngineConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor = bpred.Config{Dir: bpred.DirBimodal, BimodSize: 2048,
		BTBEntries: 512, BTBAssoc: 1, RASSize: 16}
	res := run(t, cfg, randomTrace(2000, 37))
	if res.BPLookups == 0 {
		t.Error("bimodal predictor never consulted")
	}
}
