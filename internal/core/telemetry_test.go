package core_test

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/ptrace"
	"repro/internal/trace"
)

// telemetryRun runs the workload with a collecting telemetry sink and
// returns the snapshots together with the run's result.
func telemetryRun(t *testing.T, cfg core.Config, recs []trace.Record, every uint64) ([]core.IntervalSnapshot, core.Result) {
	t.Helper()
	var snaps []core.IntervalSnapshot
	cfg.TelemetryEvery = every
	cfg.TelemetrySink = func(s core.IntervalSnapshot) error {
		snaps = append(snaps, s)
		return nil
	}
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return snaps, res
}

// TestTelemetryEquivalenceLocal is the tentpole property at the engine
// level: streaming interval snapshots does not perturb the simulation
// (results byte-identical to a run without telemetry), and the streamed
// window deltas sum back to the final Result exactly.
func TestTelemetryEquivalenceLocal(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() core.Config
	}{
		{"default", core.DefaultConfig},
		{"caches", func() core.Config {
			cfg := core.DefaultConfig()
			cfg.ICache = cache.New(cache.Config{Name: "il1", SizeBytes: 4 << 10, Assoc: 2,
				BlockBytes: 32, HitLatency: 1, MissLatency: 12})
			cfg.DCache = cache.New(cache.Config{Name: "dl1", SizeBytes: 4 << 10, Assoc: 2,
				BlockBytes: 32, HitLatency: 1, MissLatency: 12})
			return cfg
		}},
	}
	const every = 2048
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := ckptRecords(t, "gzip", tc.cfg(), 30_000)

			// Reference run without telemetry.
			ref, err := core.New(tc.cfg(), trace.NewSliceSource(recs), funcsim.CodeBase)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			snaps, got := telemetryRun(t, tc.cfg(), recs, every)
			resultsEqual(t, want, got, "telemetry on vs off")

			if len(snaps) < 3 {
				t.Fatalf("%d snapshots; want several windows (interval %d over %d cycles)",
					len(snaps), every, got.Cycles)
			}
			// Windows are contiguous, sequence-numbered, boundary-aligned,
			// and exactly one Final snapshot ends the stream.
			for i, s := range snaps {
				if s.Seq != uint64(i) {
					t.Errorf("snapshot %d has seq %d", i, s.Seq)
				}
				if i > 0 && s.StartCycle != snaps[i-1].EndCycle {
					t.Errorf("snapshot %d starts at %d, previous ended at %d",
						i, s.StartCycle, snaps[i-1].EndCycle)
				}
				if final := i == len(snaps)-1; s.Final != final {
					t.Errorf("snapshot %d Final = %v", i, s.Final)
				}
				if !s.Final && s.EndCycle%every != 0 {
					t.Errorf("snapshot %d ends at %d, not a multiple of %d", i, s.EndCycle, every)
				}
			}
			if first := snaps[0].StartCycle; first != 0 {
				t.Errorf("first window starts at %d", first)
			}
			if last := snaps[len(snaps)-1].EndCycle; last != got.Cycles {
				t.Errorf("last window ends at %d, run at %d", last, got.Cycles)
			}

			// The deltas sum back to the final result byte-for-byte.
			var sum core.Result
			for _, s := range snaps {
				s.Accumulate(&sum)
			}
			resultsEqual(t, want, sum, "accumulated snapshots vs final result")
		})
	}
}

// TestTelemetryCancelFlushesPartialWindow: an interrupted run still delivers
// the in-flight window (non-Final), so the stream sums to the statistics
// the cancelled run returned.
func TestTelemetryCancelFlushesPartialWindow(t *testing.T) {
	cfg := core.DefaultConfig()
	recs := ckptRecords(t, "gzip", cfg, 100_000)

	ctx, cancel := context.WithCancel(context.Background())
	var snaps []core.IntervalSnapshot
	cfg.TelemetryEvery = 2048
	cfg.TelemetrySink = func(s core.IntervalSnapshot) error {
		snaps = append(snaps, s)
		if len(snaps) == 3 {
			cancel()
		}
		return nil
	}
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(snaps) < 4 {
		t.Fatalf("%d snapshots; want the cancelled window flushed after the third", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Final {
		t.Errorf("interrupted run delivered a Final snapshot")
	}
	if last.EndCycle != res.Cycles {
		t.Errorf("last window ends at %d, cancelled run at %d", last.EndCycle, res.Cycles)
	}
	var sum core.Result
	for _, s := range snaps {
		s.Accumulate(&sum)
	}
	if sum.Counters != res.Counters {
		t.Errorf("accumulated snapshots differ from cancelled result:\n%+v\n%+v",
			sum.Counters, res.Counters)
	}
}

// TestTelemetryPipeTail: TelemetryPipeTail attaches recent pipe events to
// snapshots, coexists with a caller-installed PipeTracer, and the splice is
// removed from the Config the result carries.
func TestTelemetryPipeTail(t *testing.T) {
	cfg := core.DefaultConfig()
	recs := ckptRecords(t, "gzip", cfg, 20_000)

	collector := ptrace.New(50)
	var snaps []core.IntervalSnapshot
	cfg.PipeTracer = collector
	cfg.TelemetryPipeTail = 8
	cfg.TelemetryEvery = 4096
	cfg.TelemetrySink = func(s core.IntervalSnapshot) error {
		snaps = append(snaps, s)
		return nil
	}
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	for i, s := range snaps {
		if len(s.PipeTail) == 0 || len(s.PipeTail) > 8 {
			t.Errorf("snapshot %d tail has %d lines, want 1..8", i, len(s.PipeTail))
		}
	}
	// The tee forwarded events to the caller's tracer too.
	if collector.Count() == 0 {
		t.Error("caller's PipeTracer saw no events through the telemetry tee")
	}
	// And the result's Config carries the caller's tracer, not the splice.
	if res.Config.PipeTracer != core.PipeTracer(collector) {
		t.Errorf("result Config.PipeTracer = %T, want the caller's collector", res.Config.PipeTracer)
	}
}

// TestEngineObserverCadenceDocumented pins, at the engine level, the
// cadence observer.go documents: RunContext delivers non-Final callbacks at
// exactly the absolute multiples of ObserverInterval, in order, regardless
// of how far stepFast batches between polls.
func TestEngineObserverCadenceDocumented(t *testing.T) {
	cfg := core.DefaultConfig()
	recs := ckptRecords(t, "gzip", cfg, 30_000)

	const iv = 4096
	var at []uint64
	var finals int
	cfg.ObserverInterval = iv
	cfg.Observer = core.ObserverFunc(func(p core.Progress) {
		if p.Final {
			finals++
			return
		}
		at = append(at, p.Cycles)
	})
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if finals != 1 {
		t.Fatalf("finals = %d, want exactly one Final callback", finals)
	}
	// One callback per completed boundary; a run draining exactly on a
	// boundary fires that boundary's callback before the Final one.
	want := res.Cycles / iv
	if uint64(len(at)) != want {
		t.Fatalf("%d non-Final callbacks over %d cycles at interval %d, want %d",
			len(at), res.Cycles, iv, want)
	}
	for i, c := range at {
		if c != uint64(i+1)*iv {
			t.Errorf("callback %d at cycle %d, want exactly %d (absolute multiples)",
				i, c, uint64(i+1)*iv)
		}
	}
}
