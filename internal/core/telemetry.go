package core

import (
	"fmt"
	"reflect"

	"repro/internal/cache"
	"repro/internal/stats"
)

// IntervalSnapshot is one window of engine telemetry: every statistic the
// final Result reports, restricted to the cycles between two consecutive
// telemetry boundaries. Counters, cache statistics and occupancies are
// window deltas — summing a run's snapshots in order (see Accumulate)
// reconstructs the final Result's statistics exactly — while the rate
// fields are derived from the window alone, so a dashboard can plot IPC or
// miss-rate trajectories without keeping running totals.
//
// Snapshots are produced by (*Engine).RunContext when Config.TelemetrySink
// is set, at absolute multiples of Config.TelemetryEvery (the same boundary
// discipline as Observer callbacks); the Final snapshot covers the partial
// window between the last boundary and run completion. An interrupted run
// (cancellation, step error) delivers one last non-Final snapshot so the
// streamed windows always sum to the statistics the run returned.
type IntervalSnapshot struct {
	// Core identifies the engine within a sweep or cluster, mirroring
	// Progress.Core: 0 for single runs, the job-wide point index when a
	// sweep runner or the job platform forwards the snapshot.
	Core int `json:"core"`
	// Seq numbers the run's snapshots from 0 in emission order.
	Seq uint64 `json:"seq"`
	// StartCycle and EndCycle bound the window: the snapshot describes
	// cycles [StartCycle, EndCycle).
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	// Counters holds the window delta of every engine counter.
	Counters Counters `json:"counters"`
	// ICache and DCache hold the window delta of the cache statistics.
	ICache cache.Stats `json:"icache"`
	DCache cache.Stats `json:"dcache"`
	// IFQ, RB and LSQ hold the window's occupancy accumulators.
	IFQ stats.Occupancy `json:"ifq"`
	RB  stats.Occupancy `json:"rb"`
	LSQ stats.Occupancy `json:"lsq"`

	// IPC is committed instructions per cycle within the window.
	IPC float64 `json:"ipc"`
	// MispredictRate is resolved mispredictions per committed branch
	// within the window.
	MispredictRate float64 `json:"mispredict_rate"`
	// ICacheMissRate and DCacheMissRate are the window miss rates (0 when
	// the window had no accesses, including under perfect memory).
	ICacheMissRate float64 `json:"icache_miss_rate"`
	DCacheMissRate float64 `json:"dcache_miss_rate"`

	// PipeTail holds the most recent pipe-trace event lines at snapshot
	// time when Config.TelemetryPipeTail is set. Local runs only: the tail
	// is omitted from sweep-service forwarding.
	PipeTail []string `json:"pipe_tail,omitempty"`

	// Final marks the snapshot covering the last partial window of a run
	// that completed successfully.
	Final bool `json:"final,omitempty"`
}

// Cycles returns the window width in cycles.
func (s IntervalSnapshot) Cycles() uint64 { return s.EndCycle - s.StartCycle }

// Accumulate adds the snapshot's window deltas into r, so folding a run's
// snapshots in order over a zero Result reconstructs the final Result's
// Counters, cache statistics and occupancies exactly (Config is not
// carried by snapshots and stays untouched).
func (s IntervalSnapshot) Accumulate(r *Result) {
	r.Counters = addCounters(r.Counters, s.Counters)
	r.ICache = addCacheStats(r.ICache, s.ICache)
	r.DCache = addCacheStats(r.DCache, s.DCache)
	r.IFQ = r.IFQ.Add(s.IFQ)
	r.RB = r.RB.Add(s.RB)
	r.LSQ = r.LSQ.Add(s.LSQ)
}

// subCounters returns the field-wise delta cur − prev. It walks the struct
// reflectively so new counters added to Counters are windowed automatically;
// it runs only at telemetry boundaries, never on the cycle path.
func subCounters(cur, prev Counters) Counters {
	combineCounters(&cur, prev, func(a, b uint64) uint64 { return a - b })
	return cur
}

// addCounters returns the field-wise sum a + b.
func addCounters(a, b Counters) Counters {
	combineCounters(&a, b, func(x, y uint64) uint64 { return x + y })
	return a
}

func combineCounters(dst *Counters, src Counters, op func(a, b uint64) uint64) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(src)
	for i := 0; i < dv.NumField(); i++ {
		df, sf := dv.Field(i), sv.Field(i)
		switch df.Kind() {
		case reflect.Uint64:
			df.SetUint(op(df.Uint(), sf.Uint()))
		case reflect.Array:
			for j := 0; j < df.Len(); j++ {
				df.Index(j).SetUint(op(df.Index(j).Uint(), sf.Index(j).Uint()))
			}
		default:
			panic(fmt.Sprintf("core: Counters field %s has unsupported kind %v",
				dv.Type().Field(i).Name, df.Kind()))
		}
	}
}

func subCacheStats(cur, prev cache.Stats) cache.Stats {
	return cache.Stats{
		Reads:     cur.Reads - prev.Reads,
		ReadHits:  cur.ReadHits - prev.ReadHits,
		Writes:    cur.Writes - prev.Writes,
		WriteHits: cur.WriteHits - prev.WriteHits,
	}
}

func addCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Reads:     a.Reads + b.Reads,
		ReadHits:  a.ReadHits + b.ReadHits,
		Writes:    a.Writes + b.Writes,
		WriteHits: a.WriteHits + b.WriteHits,
	}
}

// telemetryRun holds the per-run emission state RunContext threads through
// the drive loop when Config.TelemetrySink is set: the baseline statistics
// at the previous boundary, the snapshot sequence number, and the optional
// pipe-trace tail recorder.
type telemetryRun struct {
	e    *Engine
	sink func(IntervalSnapshot) error
	seq  uint64

	start      uint64 // window start cycle
	prev       Counters
	prevICache cache.Stats
	prevDCache cache.Stats
	prevIFQ    stats.Occupancy
	prevRB     stats.Occupancy
	prevLSQ    stats.Occupancy

	tail        *pipeTail
	savedTracer PipeTracer
}

// startTelemetry captures the baseline at the current engine state (cycle 0
// for fresh runs, the restore point for checkpoint-resumed ones) and, when
// TelemetryPipeTail is set, splices a tail recorder into the pipe-trace
// hook for the duration of the run.
func (e *Engine) startTelemetry() *telemetryRun {
	t := &telemetryRun{e: e, sink: e.cfg.TelemetrySink}
	t.rebase()
	if n := e.cfg.TelemetryPipeTail; n > 0 {
		t.tail = newPipeTail(n)
		t.savedTracer = e.cfg.PipeTracer
		if t.savedTracer != nil {
			e.cfg.PipeTracer = teePipe{t.savedTracer, t.tail}
		} else {
			e.cfg.PipeTracer = t.tail
		}
	}
	return t
}

// stop restores the pipe-trace hook; it must run before the final result()
// so the returned Config carries the caller's tracer, not the splice.
func (t *telemetryRun) stop() {
	if t.tail != nil {
		t.e.cfg.PipeTracer = t.savedTracer
	}
}

// rebase moves the window start to the engine's current state.
func (t *telemetryRun) rebase() {
	e := t.e
	t.start = e.c.Cycles
	t.prev = e.c
	t.prevICache = e.icache.Stats()
	t.prevDCache = e.dcache.Stats()
	t.prevIFQ = e.ifqOcc
	t.prevRB = e.rbOcc
	t.prevLSQ = e.lsqOcc
}

// emit delivers the window since the previous boundary to the sink and
// rebases. It is the drive loop's telemetry hook.
func (t *telemetryRun) emit(final bool) error {
	e := t.e
	snap := IntervalSnapshot{
		Seq:        t.seq,
		StartCycle: t.start,
		EndCycle:   e.c.Cycles,
		Counters:   subCounters(e.c, t.prev),
		ICache:     subCacheStats(e.icache.Stats(), t.prevICache),
		DCache:     subCacheStats(e.dcache.Stats(), t.prevDCache),
		IFQ:        e.ifqOcc.Sub(t.prevIFQ),
		RB:         e.rbOcc.Sub(t.prevRB),
		LSQ:        e.lsqOcc.Sub(t.prevLSQ),
		Final:      final,
	}
	snap.IPC = stats.Ratio(snap.Counters.Committed, snap.Counters.Cycles)
	snap.MispredictRate = stats.Ratio(snap.Counters.MispredResolved, snap.Counters.CommittedBranches)
	snap.ICacheMissRate = snap.ICache.MissRate()
	snap.DCacheMissRate = snap.DCache.MissRate()
	if t.tail != nil {
		snap.PipeTail = t.tail.lines()
	}
	t.seq++
	t.rebase()
	return t.sink(snap)
}

// pipeTail is a PipeTracer retaining the most recent n formatted events —
// the optional "what was the pipeline doing" context attached to snapshots.
type pipeTail struct {
	ring  []string
	next  int
	wrapd bool
}

func newPipeTail(n int) *pipeTail { return &pipeTail{ring: make([]string, n)} }

func (p *pipeTail) add(line string) {
	p.ring[p.next] = line
	p.next++
	if p.next == len(p.ring) {
		p.next, p.wrapd = 0, true
	}
}

// Fetched implements PipeTracer.
func (p *pipeTail) Fetched(seq, cycle int64, pc uint32, desc string, wrongPath bool) {
	wp := ""
	if wrongPath {
		wp = " wrong-path"
	}
	p.add(fmt.Sprintf("c=%d seq=%d fetch pc=%#08x %s%s", cycle, seq, pc, desc, wp))
}

// Stage implements PipeTracer.
func (p *pipeTail) Stage(seq, cycle int64, stage string) {
	p.add(fmt.Sprintf("c=%d seq=%d %s", cycle, seq, stage))
}

// lines returns the retained events, oldest first.
func (p *pipeTail) lines() []string {
	if !p.wrapd {
		return append([]string(nil), p.ring[:p.next]...)
	}
	out := make([]string, 0, len(p.ring))
	out = append(out, p.ring[p.next:]...)
	return append(out, p.ring[:p.next]...)
}

// teePipe fans pipeline events out to two tracers, so the telemetry tail
// can ride alongside a caller-installed PipeTracer.
type teePipe struct{ a, b PipeTracer }

// Fetched implements PipeTracer.
func (t teePipe) Fetched(seq, cycle int64, pc uint32, desc string, wrongPath bool) {
	t.a.Fetched(seq, cycle, pc, desc, wrongPath)
	t.b.Fetched(seq, cycle, pc, desc, wrongPath)
}

// Stage implements PipeTracer.
func (t teePipe) Stage(seq, cycle int64, stage string) {
	t.a.Stage(seq, cycle, stage)
	t.b.Stage(seq, cycle, stage)
}
