package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// instState tracks an instruction's progress through the simulated pipeline.
type instState uint8

const (
	stDispatched instState = iota // in RB, waiting for operands / FU
	stIssued                      // executing; completes at completeAt
	stCompleted                   // result broadcast by Writeback
)

// fetchedInst is an IFQ entry: a trace record plus the fetch-time annotations
// the engine attaches (instruction PC, wrong-path flag and, for branches the
// engine mispredicted, the correct-path resume PC).
type fetchedInst struct {
	seq        int64
	rec        trace.Record
	pc         uint32
	actualNext uint32
	wrongPath  bool
	mispred    bool
}

// robEntry is a reorder-buffer entry.
type robEntry struct {
	seq        int64
	rec        trace.Record
	pc         uint32
	actualNext uint32
	wrongPath  bool
	mispred    bool
	state      instState
	src1Seq    int64
	src2Seq    int64
	src1Rdy    bool
	src2Rdy    bool
	completeAt int64
}

// lsqEntry is a load/store queue entry.
type lsqEntry struct {
	seq       int64
	store     bool
	addr      uint32 // byte effective address
	size      uint32 // access width in bytes (1, 2 or 4)
	eaKnownAt int64  // cycle the effective address becomes known
	memReady  bool   // loads: cleared by Lsq_refresh to issue this cycle
	forwarded bool   // loads: value supplied by an older store in the LSQ
	memIssued bool   // loads: memory access performed
}

// overlaps reports whether the two accesses touch any common byte.
func (a *lsqEntry) overlaps(b *lsqEntry) bool {
	return a.addr < b.addr+b.size && b.addr < a.addr+a.size
}

// covers reports whether store s fully provides load l's bytes (the
// store-to-load forwarding condition; partial overlap cannot forward).
func (s *lsqEntry) covers(l *lsqEntry) bool {
	return s.addr <= l.addr && l.addr+l.size <= s.addr+s.size
}

const eaUnknown = math.MaxInt64

// fetchMode tracks which part of the trace fetch is consuming.
type fetchMode uint8

const (
	fmNormal    fetchMode = iota // correct-path records
	fmWrongPath                  // tagged records after a mispredicted branch
	fmStarved                    // waiting for mis-speculation resolution
)

// Counters are the engine's 64-bit event counters (paper §V.B).
type Counters struct {
	Cycles            uint64
	Committed         uint64
	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64

	FetchedTotal     uint64 // records fetched, wrong path included
	WrongPathFetched uint64
	FetchIdle        uint64 // cycles fetch was serving a penalty or miss
	FetchStarved     uint64 // cycles fetch waited for resolution with no records

	BPLookups          uint64
	Misfetches         uint64
	MispredDetected    uint64 // at fetch
	MispredResolved    uint64 // at commit (recoveries)
	MispredStarved     uint64 // mispredicts with no wrong-path block in the trace
	WPBlocksEntered    uint64
	WPBlocksSkipped    uint64 // blocks discarded because the engine predicted correctly
	WPRecordsDiscarded uint64 // tagged records skipped ("discarded" per §V.A)

	RBFullStalls    uint64
	LSQFullStalls   uint64
	StorePortStalls uint64

	Issued                uint64
	LoadsForwarded        uint64
	LoadFirstSlotDeferred uint64 // optimized organization slot-0 deferrals

	// Per-class branch detail (§V.B: ReSim "collects detailed information
	// about branches"). Indexed by isa.CtrlKind; [0] is unused.
	BranchesByKind   [7]uint64 // committed, per control kind
	MispredictByKind [7]uint64 // fetch-detected mispredictions, per kind
	TakenBranches    uint64    // committed taken branches
	RASPops          uint64    // return-address stack pops at fetch
	RASEmptyPops     uint64    // returns predicted with an empty RAS
}

// Engine is a ReSim instance: a trace-driven timing simulation of one
// out-of-order processor.
type Engine struct {
	cfg     Config
	src     *trace.Buffered
	startPC uint32 // fetch PC a fresh run starts at (Reset re-arms to it)

	bp     *bpred.Predictor
	icache cache.Model
	dcache cache.Model

	ifq   *uarch.Ring[fetchedInst]
	rob   *uarch.Ring[robEntry]
	lsq   *uarch.Ring[lsqEntry]
	rt    *uarch.RenameTable
	fus   *uarch.FUPool
	ports *uarch.MemPorts

	now           int64
	seq           int64
	fetchPC       uint32
	fetchResumeAt int64
	mode          fetchMode
	srcDone       bool
	lastCommitAt  int64

	c      Counters
	ifqOcc stats.Occupancy
	rbOcc  stats.Occupancy
	lsqOcc stats.Occupancy
}

// ErrNoProgress reports a wedged simulation (an engine bug or a malformed
// trace), diagnosed by the commit watchdog.
var ErrNoProgress = errors.New("core: no commit progress (wedged simulation)")

// watchdogCycles is how long the engine tolerates zero commits before
// declaring the simulation wedged.
const watchdogCycles = 200_000

// New builds an engine over the given trace source. startPC seeds the fetch
// PC (trace.Header.StartPC for file traces; the program entry point for
// on-the-fly sources).
func New(cfg Config, src trace.Source, startPC uint32) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		src:     trace.NewBuffered(src),
		startPC: startPC,
		icache:  cfg.ICache,
		dcache:  cfg.DCache,
		ifq:     uarch.NewRing[fetchedInst](cfg.IFQSize),
		rob:     uarch.NewRing[robEntry](cfg.RBSize),
		lsq:     uarch.NewRing[lsqEntry](cfg.LSQSize),
		rt:      uarch.NewRenameTable(),
		fus:     uarch.NewFUPool(cfg.FUs),
		ports:   uarch.NewMemPorts(cfg.MemReadPorts, cfg.MemWritePorts),
		fetchPC: startPC,
	}
	if e.icache == nil {
		e.icache = cache.NewPerfect(1)
	}
	if e.dcache == nil {
		e.dcache = cache.NewPerfect(1)
	}
	if !cfg.PerfectBP {
		e.bp = bpred.New(cfg.Predictor)
	}
	e.ifqOcc = stats.Occupancy{Name: "IFQ_occupancy", Desc: "instruction fetch queue", Cap: cfg.IFQSize}
	e.rbOcc = stats.Occupancy{Name: "RB_occupancy", Desc: "reorder buffer", Cap: cfg.RBSize}
	e.lsqOcc = stats.Occupancy{Name: "LSQ_occupancy", Desc: "load/store queue", Cap: cfg.LSQSize}
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Predictor returns the simulated branch predictor, or nil under perfect
// branch prediction. Exposed for inspection and tests.
func (e *Engine) Predictor() *bpred.Predictor { return e.bp }

// Now returns the current major-cycle number.
func (e *Engine) Now() int64 { return e.now }

// Done reports whether the simulation has drained: trace exhausted and no
// in-flight instructions.
func (e *Engine) Done() bool {
	return e.srcDone && e.ifq.Empty() && e.rob.Empty()
}

// Cycle advances one major cycle. The simulated architecture's semantics are
// enforced between major cycles; stages evaluate in the reference order
// Commit, Writeback, Lsq_refresh, Issue, Dispatch, Fetch.
func (e *Engine) Cycle() error {
	e.ports.NewCycle()
	if err := e.commit(); err != nil {
		return err
	}
	e.writeback()
	e.lsqRefresh()
	e.issue()
	e.dispatch()
	e.fetch()

	e.ifqOcc.Sample(e.ifq.Len())
	e.rbOcc.Sample(e.rob.Len())
	e.lsqOcc.Sample(e.lsq.Len())

	e.now++
	e.c.Cycles++
	if e.now-e.lastCommitAt > watchdogCycles {
		return fmt.Errorf("%w at cycle %d: rob=%d ifq=%d mode=%d", ErrNoProgress, e.now, e.rob.Len(), e.ifq.Len(), e.mode)
	}
	return nil
}

// CtxCheckInterval is how many major cycles elapse between context polls in
// RunContext: frequent enough that cancellation lands promptly, amortized
// enough that the cycle loop stays fast.
const CtxCheckInterval = 8192

// DefaultObserverInterval is the Progress callback period (major cycles)
// when Config.ObserverInterval is zero.
const DefaultObserverInterval = 65536

// Run simulates until the trace drains (or cfg.MaxCycles elapse) and returns
// the result.
func (e *Engine) Run() (Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// every CtxCheckInterval major cycles, and a cancelled run returns the
// statistics accumulated so far together with ctx.Err(). When cfg.Observer
// is set it receives a Progress callback at every cfg.ObserverInterval
// cycle boundary, a final one when the run drains, and a last non-Final
// snapshot when the run is cancelled or fails. When cfg.CheckpointSink is
// set the engine additionally serializes its complete state at every
// cfg.CheckpointEvery boundary (0 = DefaultObserverInterval) and hands the
// Checkpoint to the sink.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	var ckptEvery uint64
	var ckpt func() error
	if e.cfg.CheckpointSink != nil {
		ckptEvery = e.cfg.CheckpointEvery
		if ckptEvery == 0 {
			ckptEvery = DefaultObserverInterval
		}
		ckpt = func() error {
			cp, err := e.Checkpoint()
			if err != nil {
				return err
			}
			return e.cfg.CheckpointSink(cp)
		}
	}
	err := DriveCheckpointed(ctx, e.cfg.Observer, e.cfg.ObserverInterval, ckptEvery, ckpt,
		func() uint64 { return e.c.Cycles },
		func() bool {
			return e.Done() || (e.cfg.MaxCycles != 0 && e.c.Cycles >= e.cfg.MaxCycles)
		},
		e.Cycle,
		e.progress)
	return e.result(), err
}

// Drive is the run loop shared by Engine.RunContext and the multicore
// cluster: it calls step until done reports true, polling the context
// every CtxCheckInterval simulated cycles and delivering Progress
// callbacks at every interval-cycle boundary (0 = DefaultObserverInterval)
// plus a final one on completion, so cancellation cadence and observer
// semantics live in exactly one place.
//
// Callback boundaries are absolute multiples of the interval (cycle N fires
// the callback covering boundary N when N % interval == 0, or the first
// cycle at or past it for step functions that advance more than one cycle),
// not offsets from wherever the previous poll happened to land — so the
// callback cycle sequence is deterministic across runs and, for a resumed
// run starting at a boundary, identical to the uninterrupted run's.
//
// Cancellation and step errors deliver one last non-Final progress snapshot
// (so observers see the state the returned statistics describe) and end the
// loop; the Final callback marks successful completion only.
func Drive(ctx context.Context, obs Observer, interval uint64,
	cycles func() uint64, done func() bool, step func() error,
	progress func(final bool) Progress) error {
	return DriveCheckpointed(ctx, obs, interval, 0, nil, cycles, done, step, progress)
}

// DriveCheckpointed is Drive with a checkpoint hook: when checkpoint is
// non-nil it is additionally invoked between steps at every ckptEvery-cycle
// boundary (absolute multiples, like observer callbacks, so checkpoint
// cycles are deterministic across runs). A checkpoint error ends the loop
// like a step error.
func DriveCheckpointed(ctx context.Context, obs Observer, interval, ckptEvery uint64,
	checkpoint func() error,
	cycles func() uint64, done func() bool, step func() error,
	progress func(final bool) Progress) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if interval == 0 {
		interval = DefaultObserverInterval
	}
	// snapshot delivers the last non-Final callback of an interrupted run.
	snapshot := func() {
		if obs != nil {
			obs.Progress(progress(false))
		}
	}
	nextCheck := cycles() + CtxCheckInterval
	nextObs := nextBoundary(cycles(), interval)
	var nextCkpt uint64
	if checkpoint != nil && ckptEvery > 0 {
		nextCkpt = nextBoundary(cycles(), ckptEvery)
	}
	for !done() {
		if err := step(); err != nil {
			snapshot()
			return err
		}
		c := cycles()
		if c >= nextCheck {
			nextCheck = c + CtxCheckInterval
			if err := ctx.Err(); err != nil {
				snapshot()
				return err
			}
		}
		if checkpoint != nil && ckptEvery > 0 && c >= nextCkpt {
			nextCkpt = nextBoundary(c, ckptEvery)
			if err := checkpoint(); err != nil {
				snapshot()
				return err
			}
		}
		if obs != nil && c >= nextObs {
			nextObs = nextBoundary(c, interval)
			obs.Progress(progress(false))
		}
	}
	if obs != nil {
		obs.Progress(progress(true))
	}
	return nil
}

// nextBoundary returns the first multiple of interval strictly after c.
func nextBoundary(c, interval uint64) uint64 {
	return (c/interval + 1) * interval
}

// progress snapshots the counters an Observer sees.
func (e *Engine) progress(final bool) Progress {
	p := Progress{Cycles: e.c.Cycles, Committed: e.c.Committed, Final: final}
	if e.c.Cycles > 0 {
		p.IPC = float64(e.c.Committed) / float64(e.c.Cycles)
	}
	return p
}

// Result snapshots the current statistics; usable mid-run by callers that
// drive Cycle directly (e.g. the multicore cluster).
func (e *Engine) Result() Result { return e.result() }

// Reset re-arms the engine for a fresh run over src starting at startPC,
// clearing every per-run field: cycle/sequence counters, fetch state
// (including fetchResumeAt and the fetch mode), queue contents, rename and
// functional-unit occupancy, predictor tables, cache arrays (models
// installed via Config.ICache/DCache are reset in place — callers sharing a
// model across engines must not Reset concurrently with its other users),
// event counters and occupancy accumulators. A second run on a reset engine
// is bit-identical to a run on a newly built one. This enumeration is the
// explicit statement of what "per-run state" means; the checkpoint test
// comparing a reset engine's serialized state against a virgin engine's
// keeps it in lockstep with Checkpoint/Restore, so a new per-run field
// missed here (or there) fails that test instead of drifting silently.
func (e *Engine) Reset(src trace.Source, startPC uint32) {
	e.src = trace.NewBuffered(src)
	e.startPC = startPC
	e.now = 0
	e.seq = 0
	e.fetchPC = startPC
	e.fetchResumeAt = 0
	e.mode = fmNormal
	e.srcDone = false
	e.lastCommitAt = 0
	e.c = Counters{}
	e.ifq.Clear()
	e.rob.Clear()
	e.lsq.Clear()
	e.rt.Reset()
	e.fus.Reset()
	e.ports.NewCycle()
	if e.bp != nil {
		e.bp.Reset()
	}
	e.icache.Reset()
	e.dcache.Reset()
	e.ifqOcc.Reset()
	e.rbOcc.Reset()
	e.lsqOcc.Reset()
}

// ---------------------------------------------------------------------------
// Commit

func (e *Engine) commit() error {
	for committed := 0; committed < e.cfg.Width && !e.rob.Empty(); committed++ {
		en := e.rob.At(0)
		if en.state != stCompleted {
			break
		}
		if en.wrongPath {
			return fmt.Errorf("core: wrong-path instruction seq %d reached commit (engine bug)", en.seq)
		}
		if en.rec.Kind == trace.KindMem && en.rec.Store {
			// "Commit commits the oldest RB entry releasing Store Operations
			// to memory, if a memory write port is available" (§III). Store
			// misses do not stall commit (write-buffer assumption).
			if !e.ports.TryWrite() {
				e.c.StorePortStalls++
				break
			}
			e.dcache.Access(en.rec.Addr, true)
		}

		popped, _ := e.rob.PopFront()
		if popped.rec.Kind == trace.KindMem {
			lq, ok := e.lsq.PopFront()
			if !ok || lq.seq != popped.seq {
				return fmt.Errorf("core: LSQ head out of sync at commit of seq %d", popped.seq)
			}
		}

		e.c.Committed++
		e.lastCommitAt = e.now
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Stage(popped.seq, e.now, "commit")
		}
		switch popped.rec.Kind {
		case trace.KindMem:
			if popped.rec.Store {
				e.c.CommittedStores++
			} else {
				e.c.CommittedLoads++
			}
		case trace.KindBranch:
			e.c.CommittedBranches++
			if k := int(popped.rec.Ctrl); k < len(e.c.BranchesByKind) {
				e.c.BranchesByKind[k]++
			}
			if popped.rec.Taken {
				e.c.TakenBranches++
			}
			if e.bp != nil {
				e.trainPredictor(popped)
			}
		}

		if popped.mispred {
			e.recover(popped)
			break
		}
	}
	return nil
}

// trainPredictor applies commit-time predictor updates ("Commit ... updates
// the Branch Predictor in case of branch", §III). RAS push/pop happen at
// fetch, as in the modeled hardware.
func (e *Engine) trainPredictor(en robEntry) {
	r := en.rec
	switch r.Ctrl {
	case isa.CtrlCond:
		e.bp.UpdateDir(en.pc, r.Taken)
		if r.Taken {
			e.bp.UpdateBTB(en.pc, r.Target)
		}
	case isa.CtrlJump, isa.CtrlCall, isa.CtrlIndirect, isa.CtrlIndCall:
		e.bp.UpdateBTB(en.pc, r.Target)
	}
}

// recover squashes the pipeline after the mispredicted branch en committed:
// every younger instruction is wrong-path by construction, unfetched tagged
// records are discarded, and fetch resumes at the correct-path PC after the
// mis-speculation penalty.
func (e *Engine) recover(en robEntry) {
	e.c.MispredResolved++
	if e.cfg.PipeTracer != nil {
		for i := 0; i < e.rob.Len(); i++ {
			e.cfg.PipeTracer.Stage(e.rob.At(i).seq, e.now, "squash")
		}
		for i := 0; i < e.ifq.Len(); i++ {
			e.cfg.PipeTracer.Stage(e.ifq.At(i).seq, e.now, "squash")
		}
	}
	e.ifq.Clear()
	e.rob.Clear()
	e.lsq.Clear()
	e.rt.Reset()
	e.c.WPRecordsDiscarded += uint64(e.src.SkipTagged())
	e.mode = fmNormal
	e.fetchPC = en.actualNext
	e.fetchResumeAt = e.now + 1 + int64(e.cfg.MispredPenalty)
}

// ---------------------------------------------------------------------------
// Writeback

// writeback selects the oldest completed instructions (up to Width),
// broadcasts their results and wakes dependents (§III).
func (e *Engine) writeback() {
	broadcasts := 0
	for i := 0; i < e.rob.Len() && broadcasts < e.cfg.Width; i++ {
		en := e.rob.At(i)
		if en.state != stIssued || en.completeAt > e.now {
			continue
		}
		en.state = stCompleted
		broadcasts++
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Stage(en.seq, e.now, "writeback")
		}
		if en.rec.Dest != isa.NoReg {
			e.rt.ClearIfProducer(en.rec.Dest, en.seq)
			e.wake(en.seq)
		}
	}
}

// wake marks ready every in-flight source operand produced by seq, and
// starts address generation for loads whose base register just arrived.
func (e *Engine) wake(seq int64) {
	for i := 0; i < e.rob.Len(); i++ {
		en := e.rob.At(i)
		if en.state != stDispatched {
			continue
		}
		woke := false
		if !en.src1Rdy && en.src1Seq == seq {
			en.src1Rdy = true
			woke = true
		}
		if !en.src2Rdy && en.src2Seq == seq {
			en.src2Rdy = true
		}
		if woke && en.rec.Kind == trace.KindMem && !en.rec.Store {
			// Load base register ready: effective address known next cycle.
			if lq := e.lsqFind(en.seq); lq != nil && lq.eaKnownAt == eaUnknown {
				lq.eaKnownAt = e.now + 1
			}
		}
	}
}

func (e *Engine) lsqFind(seq int64) *lsqEntry {
	for i := 0; i < e.lsq.Len(); i++ {
		lq := e.lsq.At(i)
		if lq.seq == seq {
			return lq
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Lsq_refresh

// lsqRefresh runs once per major cycle (§IV.A). It marks loads ready to
// issue: the load's effective address is known, every older store's address
// is known, and either no older store touches the load's bytes (memory
// access), or the youngest overlapping store has executed and fully covers
// the load (its value is forwarded). A partially overlapping store blocks
// the load until the store commits and leaves the LSQ.
func (e *Engine) lsqRefresh() {
	unknownStore := false
	for i := 0; i < e.lsq.Len(); i++ {
		lq := e.lsq.At(i)
		if lq.store {
			if lq.eaKnownAt > e.now {
				unknownStore = true
			}
			continue
		}
		lq.memReady = false
		lq.forwarded = false
		if lq.memIssued || lq.eaKnownAt > e.now || unknownStore {
			continue
		}
		// Find the youngest older store touching the load's bytes.
		var match *lsqEntry
		for j := i - 1; j >= 0; j-- {
			prev := e.lsq.At(j)
			if prev.store && prev.overlaps(lq) {
				match = prev
				break
			}
		}
		switch {
		case match == nil:
			lq.memReady = true
		case match.eaKnownAt <= e.now && match.covers(lq):
			// Store has executed and provides every byte: forward without
			// a read port (§III).
			lq.memReady = true
			lq.forwarded = true
		default:
			// Pending or partially overlapping store: wait.
		}
	}
}

// ---------------------------------------------------------------------------
// Issue

// issue schedules ready instructions onto functional units, up to Width per
// major cycle, oldest first (§III). Under the Optimized organization the
// first issue slot of the major cycle does not consider loads (§IV.B,
// Figure 4); slot 0 is filled with the oldest ready non-load instead.
func (e *Engine) issue() {
	slotsLeft := e.cfg.Width
	if e.cfg.Organization.LoadBarredFromFirstSlot() {
		// Slot 0 may not take a load: fill it with the oldest ready
		// non-load, or leave it empty. With at most N-1 memory ports this
		// never reduces the number of instructions issued per cycle, which
		// is why the paper can claim the N+3 organization does not affect
		// timing results (§IV.B); tests verify the equivalence empirically.
		for i := 0; i < e.rob.Len(); i++ {
			en := e.rob.At(i)
			if !e.readyToIssue(en) {
				continue
			}
			if en.rec.Kind == trace.KindMem && !en.rec.Store {
				if lq := e.lsqFind(en.seq); lq != nil && lq.memReady {
					e.c.LoadFirstSlotDeferred++
				}
				continue
			}
			if e.issueOne(en) {
				break
			}
		}
		slotsLeft = e.cfg.Width - 1 // slot 0 filled or forfeited
	}
	for i := 0; i < e.rob.Len() && slotsLeft > 0; i++ {
		en := e.rob.At(i)
		if !e.readyToIssue(en) {
			continue
		}
		if e.issueOne(en) {
			slotsLeft--
		}
	}
}

// readyToIssue reports whether en is dispatched with all register operands
// available.
func (e *Engine) readyToIssue(en *robEntry) bool {
	return en.state == stDispatched && en.src1Rdy && en.src2Rdy
}

// issueOne attempts to start execution of en this cycle.
func (e *Engine) issueOne(en *robEntry) bool {
	switch en.rec.Kind {
	case trace.KindMem:
		if en.rec.Store {
			// Store: address generation on an ALU; memory write at commit.
			lat, ok := e.fus.TryIssue(uarch.FUALU, e.now)
			if !ok {
				return false
			}
			en.state = stIssued
			en.completeAt = e.now + int64(lat)
			if lq := e.lsqFind(en.seq); lq != nil {
				lq.eaKnownAt = en.completeAt
			}
		} else {
			lq := e.lsqFind(en.seq)
			if lq == nil || !lq.memReady {
				return false
			}
			if lq.forwarded {
				en.completeAt = e.now + 1
				e.c.LoadsForwarded++
			} else {
				if !e.ports.TryRead() {
					return false
				}
				_, lat := e.dcache.Access(en.rec.Addr, false)
				en.completeAt = e.now + int64(lat)
			}
			en.state = stIssued
			lq.memIssued = true
		}
	case trace.KindBranch:
		lat, ok := e.fus.TryIssue(uarch.FUALU, e.now)
		if !ok {
			return false
		}
		en.state = stIssued
		en.completeAt = e.now + int64(lat)
	default: // KindOther
		cls := uarch.FUALU
		switch en.rec.Class {
		case trace.OpMul:
			cls = uarch.FUMult
		case trace.OpDiv:
			cls = uarch.FUDiv
		}
		lat, ok := e.fus.TryIssue(cls, e.now)
		if !ok {
			return false
		}
		en.state = stIssued
		en.completeAt = e.now + int64(lat)
	}
	e.c.Issued++
	if e.cfg.PipeTracer != nil {
		e.cfg.PipeTracer.Stage(en.seq, e.now, "issue")
	}
	return true
}

// ---------------------------------------------------------------------------
// Dispatch

// dispatch moves up to Width instructions from the IFQ into the reorder
// buffer (and LSQ for memory operations), reading and updating the rename
// table (§III).
func (e *Engine) dispatch() {
	for n := 0; n < e.cfg.Width && !e.ifq.Empty(); n++ {
		fi := *e.ifq.At(0)
		if e.rob.Full() {
			e.c.RBFullStalls++
			break
		}
		isMem := fi.rec.Kind == trace.KindMem
		if isMem && e.lsq.Full() {
			e.c.LSQFullStalls++
			break
		}
		e.ifq.PopFront()

		en := robEntry{
			seq:        fi.seq,
			rec:        fi.rec,
			pc:         fi.pc,
			actualNext: fi.actualNext,
			wrongPath:  fi.wrongPath,
			mispred:    fi.mispred,
			state:      stDispatched,
			src1Seq:    e.rt.Producer(fi.rec.Src1),
			src2Seq:    e.rt.Producer(fi.rec.Src2),
		}
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Stage(en.seq, e.now, "dispatch")
		}
		en.src1Rdy = en.src1Seq == uarch.NoProducer
		en.src2Rdy = en.src2Seq == uarch.NoProducer
		if fi.rec.Dest != isa.NoReg {
			e.rt.SetProducer(fi.rec.Dest, en.seq)
		}
		e.rob.PushBack(en)

		if isMem {
			lq := lsqEntry{
				seq:       en.seq,
				store:     fi.rec.Store,
				addr:      fi.rec.Addr,
				size:      fi.rec.MemBytes(),
				eaKnownAt: eaUnknown,
			}
			if !lq.store && en.src1Rdy {
				// Base register already available: address known next cycle.
				lq.eaKnownAt = e.now + 1
			}
			e.lsq.PushBack(lq)
		}
	}
}

// ---------------------------------------------------------------------------
// Fetch

// prediction is the engine's fetch-time verdict for a branch record.
type prediction struct {
	next     uint32 // next fetch PC down the predicted path
	mispred  bool
	misfetch bool
}

// predict applies the simulated branch predictor to a correct-path branch
// record at pc. Direct targets resolve during fetch ("target resolution"),
// so direct branches can only misfetch (BTB supplied a wrong early target);
// direction and indirect-target errors are full mispredictions resolved at
// commit.
func (e *Engine) predict(pc uint32, rec trace.Record) prediction {
	fall := pc + 4
	actualNext := fall
	if rec.Taken {
		actualNext = rec.Target
	}
	if e.bp == nil { // perfect branch prediction
		return prediction{next: actualNext}
	}
	e.c.BPLookups++
	p := prediction{next: actualNext}
	switch rec.Ctrl {
	case isa.CtrlCond:
		predTaken := e.bp.PredictDir(pc)
		if predTaken != rec.Taken {
			p.mispred = true
			if predTaken {
				p.next = rec.Target // direct target, resolved at fetch
			} else {
				p.next = fall
			}
			return p
		}
		if predTaken && rec.Taken {
			if tgt, hit := e.bp.LookupBTB(pc); hit && tgt != rec.Target {
				p.misfetch = true
			}
		}
	case isa.CtrlJump, isa.CtrlCall:
		if tgt, hit := e.bp.LookupBTB(pc); hit && tgt != rec.Target {
			p.misfetch = true
		}
		if rec.Ctrl == isa.CtrlCall {
			e.bp.PushRAS(fall)
		}
	case isa.CtrlRet:
		predTgt, ok := e.bp.PopRAS()
		e.c.RASPops++
		if !ok {
			e.c.RASEmptyPops++
		}
		if !ok || predTgt != rec.Target {
			p.mispred = true
			if ok {
				p.next = predTgt
			} else {
				p.next = fall
			}
		}
	case isa.CtrlIndirect, isa.CtrlIndCall:
		predTgt, hit := e.bp.LookupBTB(pc)
		if !hit || predTgt != rec.Target {
			p.mispred = true
			if hit {
				p.next = predTgt
			} else {
				p.next = fall
			}
		}
		if rec.Ctrl == isa.CtrlIndCall {
			e.bp.PushRAS(fall)
		}
	}
	return p
}

// fetch brings up to Width records into the IFQ, stopping at a control-flow
// bubble (a predicted-taken branch), a full IFQ, an I-cache miss, or a
// fetch redirect (§III).
func (e *Engine) fetch() {
	if e.now < e.fetchResumeAt {
		e.c.FetchIdle++
		return
	}
	if e.mode == fmStarved {
		e.c.FetchStarved++
		return
	}
	if e.srcDone {
		return
	}
	for fetched := 0; fetched < e.cfg.Width && !e.ifq.Full(); {
		rec, err := e.src.Peek()
		if err != nil {
			if e.mode == fmWrongPath {
				e.mode = fmStarved
			} else {
				e.srcDone = true
			}
			return
		}
		if e.mode == fmNormal && rec.Tag {
			// A wrong-path block for a branch this engine predicted
			// correctly (trace-generator disagreement): discard it.
			e.c.WPBlocksSkipped++
			e.c.WPRecordsDiscarded += uint64(e.src.SkipTagged())
			continue
		}
		if e.mode == fmWrongPath && !rec.Tag {
			// Block exhausted before resolution: fetch starves.
			e.mode = fmStarved
			return
		}
		if rec.Kind == trace.KindBranch && rec.PC != 0 {
			// B records carry the branch PC; re-synchronize the implicit
			// fetch PC with it (the hardware indexes the predictor and the
			// I-cache with this value).
			e.fetchPC = rec.PC
		}

		// Instruction cache access at the current fetch PC.
		if hit, lat := e.icache.Access(e.fetchPC, false); !hit {
			e.fetchResumeAt = e.now + int64(lat)
			return
		}

		rec, _ = e.src.Next()
		e.c.FetchedTotal++
		fi := fetchedInst{seq: e.seq, rec: rec, pc: e.fetchPC, wrongPath: rec.Tag}
		e.seq++
		if rec.Tag {
			e.c.WrongPathFetched++
		}
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Fetched(fi.seq, e.now, fi.pc, rec.String(), rec.Tag)
		}

		if rec.Kind != trace.KindBranch {
			e.ifq.PushBack(fi)
			fetched++
			e.fetchPC += 4
			continue
		}

		// Branch record.
		if e.mode == fmWrongPath {
			// Wrong-path branches follow the trace generator's assumed
			// outcome; they are not predicted and never trigger recovery.
			e.ifq.PushBack(fi)
			fetched++
			if rec.Taken {
				e.fetchPC = rec.Target
			} else {
				e.fetchPC += 4
			}
			if rec.Taken {
				return // control-flow bubble
			}
			continue
		}

		p := e.predict(fi.pc, rec)
		fall := fi.pc + 4
		fi.actualNext = fall
		if rec.Taken {
			fi.actualNext = rec.Target
		}
		fi.mispred = p.mispred
		e.ifq.PushBack(fi)
		fetched++

		switch {
		case p.misfetch:
			// Misfetch: delayed penalty, then fetch continues at the target
			// resolved during fetch (§III).
			e.c.Misfetches++
			e.fetchPC = fi.actualNext
			e.fetchResumeAt = e.now + 1 + int64(e.cfg.MisfetchPenalty)
			return
		case p.mispred:
			e.c.MispredDetected++
			if k := int(rec.Ctrl); k < len(e.c.MispredictByKind) {
				e.c.MispredictByKind[k]++
			}
			e.fetchPC = p.next
			if next, err := e.src.Peek(); err == nil && next.Tag {
				e.mode = fmWrongPath
				e.c.WPBlocksEntered++
			} else {
				// The trace has no wrong-path block here (the generator's
				// predictor got this branch right): model the penalty with
				// a starved fetch until resolution.
				e.mode = fmStarved
				e.c.MispredStarved++
			}
			return
		default:
			e.fetchPC = p.next
			if p.next != fall {
				return // predicted-taken: control-flow bubble ends the cycle
			}
		}
	}
}

// ---------------------------------------------------------------------------

func (e *Engine) result() Result {
	return Result{
		Counters: e.c,
		ICache:   e.icache.Stats(),
		DCache:   e.dcache.Stats(),
		IFQ:      e.ifqOcc,
		RB:       e.rbOcc,
		LSQ:      e.lsqOcc,
		Config:   e.cfg,
	}
}
