package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// instState tracks an instruction's progress through the simulated pipeline.
type instState uint8

const (
	stDispatched instState = iota // in RB, waiting for operands / FU
	stIssued                      // executing; completes at completeAt
	stCompleted                   // result broadcast by Writeback
)

// fetchedInst is an IFQ entry: a trace record plus the fetch-time annotations
// the engine attaches (instruction PC, wrong-path flag and, for branches the
// engine mispredicted, the correct-path resume PC).
type fetchedInst struct {
	seq        int64
	rec        trace.Record
	pc         uint32
	actualNext uint32
	wrongPath  bool
	mispred    bool
}

// robEntry is a reorder-buffer entry.
type robEntry struct {
	seq        int64
	rec        trace.Record
	pc         uint32
	actualNext uint32
	wrongPath  bool
	mispred    bool
	state      instState
	src1Seq    int64
	src2Seq    int64
	src1Rdy    bool
	src2Rdy    bool
	completeAt int64

	// Derived scheduling handles — never serialized, rebuilt by
	// rebuildDerived after a checkpoint restore. Ring slots are stable for
	// an entry's whole residence, so pointers are safe exactly as long as
	// the engine's structural invariants hold (pinned by the randomized
	// equivalence harness).
	//
	// lsq is this instruction's load/store queue entry (memory operations
	// only) — the O(1) handle that replaces searching the LSQ by sequence
	// number. slot indexes the engine's consumer-list table.
	lsq  *lsqEntry
	slot int32
}

// consRef is one pending operand registered on a producer's consumer list:
// the dependent entry and which of its operands (0 = src1, 1 = src2) the
// producer supplies.
type consRef struct {
	en *robEntry
	op uint8
}

// lsqEntry is a load/store queue entry.
type lsqEntry struct {
	seq       int64
	store     bool
	addr      uint32 // byte effective address
	size      uint32 // access width in bytes (1, 2 or 4)
	eaKnownAt int64  // cycle the effective address becomes known
	memReady  bool   // loads: cleared by Lsq_refresh to issue this cycle
	forwarded bool   // loads: value supplied by an older store in the LSQ
	memIssued bool   // loads: memory access performed
}

// overlaps reports whether the two accesses touch any common byte.
func (a *lsqEntry) overlaps(b *lsqEntry) bool {
	return a.addr < b.addr+b.size && b.addr < a.addr+a.size
}

// covers reports whether store s fully provides load l's bytes (the
// store-to-load forwarding condition; partial overlap cannot forward).
func (s *lsqEntry) covers(l *lsqEntry) bool {
	return s.addr <= l.addr && l.addr+l.size <= s.addr+s.size
}

const eaUnknown = math.MaxInt64

// fetchMode tracks which part of the trace fetch is consuming.
type fetchMode uint8

const (
	fmNormal    fetchMode = iota // correct-path records
	fmWrongPath                  // tagged records after a mispredicted branch
	fmStarved                    // waiting for mis-speculation resolution
)

// String names the fetch mode for diagnostics (the no-progress watchdog
// prints it, so a wedged-simulation report reads "mode=starved" instead of
// a bare ordinal).
func (m fetchMode) String() string {
	switch m {
	case fmNormal:
		return "normal"
	case fmWrongPath:
		return "wrong-path"
	case fmStarved:
		return "starved"
	}
	return fmt.Sprintf("fetchMode(%d)", uint8(m))
}

// Counters are the engine's 64-bit event counters (paper §V.B).
type Counters struct {
	Cycles            uint64
	Committed         uint64
	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranches uint64

	FetchedTotal     uint64 // records fetched, wrong path included
	WrongPathFetched uint64
	FetchIdle        uint64 // cycles fetch was serving a penalty or miss
	FetchStarved     uint64 // cycles fetch waited for resolution with no records

	BPLookups          uint64
	Misfetches         uint64
	MispredDetected    uint64 // at fetch
	MispredResolved    uint64 // at commit (recoveries)
	MispredStarved     uint64 // mispredicts with no wrong-path block in the trace
	WPBlocksEntered    uint64
	WPBlocksSkipped    uint64 // blocks discarded because the engine predicted correctly
	WPRecordsDiscarded uint64 // tagged records skipped ("discarded" per §V.A)

	RBFullStalls    uint64
	LSQFullStalls   uint64
	StorePortStalls uint64

	Issued                uint64
	LoadsForwarded        uint64
	LoadFirstSlotDeferred uint64 // optimized organization slot-0 deferrals

	// Per-class branch detail (§V.B: ReSim "collects detailed information
	// about branches"). Indexed by isa.CtrlKind; [0] is unused.
	BranchesByKind   [7]uint64 // committed, per control kind
	MispredictByKind [7]uint64 // fetch-detected mispredictions, per kind
	TakenBranches    uint64    // committed taken branches
	RASPops          uint64    // return-address stack pops at fetch
	RASEmptyPops     uint64    // returns predicted with an empty RAS
}

// Engine is a ReSim instance: a trace-driven timing simulation of one
// out-of-order processor.
type Engine struct {
	cfg Config //resim:ckpt-exempt immutable configuration; guarded by ConfigDigest, rebuilt by New on restore
	src *trace.Buffered
	// startPC is the fetch PC a fresh run starts at (Reset re-arms to it).
	//resim:ckpt-exempt set by New; a restored engine re-arms at the checkpoint's fetch PC
	startPC uint32

	bp     *bpred.Predictor
	icache cache.Model
	dcache cache.Model

	ifq   *uarch.Ring[fetchedInst]
	rob   *uarch.Ring[robEntry]
	lsq   *uarch.Ring[lsqEntry]
	rt    *uarch.RenameTable
	fus   *uarch.FUPool
	ports *uarch.MemPorts //resim:ckpt-exempt per-cycle port usage; NewCycle clears it at every major-cycle boundary, checkpoints land between cycles

	now           int64
	seq           int64
	fetchPC       uint32
	fetchResumeAt int64
	mode          fetchMode
	srcDone       bool
	lastCommitAt  int64

	c      Counters
	ifqOcc stats.Occupancy
	rbOcc  stats.Occupancy
	lsqOcc stats.Occupancy

	// Event-aware scheduling state. All of it is derived — rebuilt from the
	// architectural state by rebuildDerived (checkpoint restore) and cleared
	// wholesale on Reset and mis-speculation recovery — so the serialized
	// checkpoint format does not carry it. Entries are referenced by
	// pointer: ring slots are stable for an entry's whole residence.
	// Invariants:
	//
	//   - readyQ holds every dispatched entry whose register operands are
	//     all ready, in age order. issue consumes it instead of scanning
	//     the reorder buffer.
	//   - wbNext holds entries completing exactly next cycle (the 1-cycle
	//     fast lane), age-ordered; wbHeap is a min-heap on (completeAt,
	//     seq) of the rest still executing; wbReady holds
	//     completed-but-not-yet-broadcast entries (Width overflow), in age
	//     order. writeback drains the lane and the heap instead of
	//     scanning the reorder buffer.
	//   - cons[en.slot] lists the operands waiting on producer en (slot =
	//     dispatch-time absolute index & consMask; cons is sized to the
	//     next power of two ≥ RBSize, and resident entries span fewer
	//     absolute indices than that, so live entries never collide). wake
	//     walks the producer's list instead of scanning the reorder
	//     buffer; the list is emptied at broadcast, so a slot is always
	//     clean when a future entry reuses it.
	readyQ    []*robEntry //resim:derived
	wbReady   []*robEntry //resim:derived
	wbHeap    []wbItem    //resim:derived
	wbNext    []*robEntry //resim:derived completions due exactly next cycle (the 1-cycle-latency fast lane)
	cons      [][]consRef //resim:derived
	consMask  int64       //resim:ckpt-exempt sized by New to the next power of two >= RBSize; pure config
	lsqLoads  int         //resim:derived resident LSQ loads; lsqRefresh is a no-op without any
	lsqStores []*lsqEntry //resim:ckpt-exempt lsqRefresh per-cycle scratch: older stores seen so far
	// icPerfect/dcPerfect devirtualize the dominant cache model: when the
	// configured model is cache.Perfect the per-access interface dispatch
	// becomes an inlinable direct call.
	//resim:ckpt-exempt devirtualization mirrors installed by New; cache state restores through the Model interface
	icPerfect *cache.Perfect
	dcPerfect *cache.Perfect //resim:ckpt-exempt devirtualization mirror installed by New
	// prodPtr mirrors the rename table with the producer's reorder-buffer
	// entry, letting dispatch register a consumer without a search. Only
	// meaningful for registers whose rename entry names a producer.
	prodPtr [isa.NumRegs]*robEntry //resim:derived
}

// wbItem schedules one issued instruction's completion broadcast.
type wbItem struct {
	at int64 // completeAt
	en *robEntry
}

// ErrNoProgress reports a wedged simulation (an engine bug or a malformed
// trace), diagnosed by the commit watchdog.
var ErrNoProgress = errors.New("core: no commit progress (wedged simulation)")

// watchdogCycles is how long the engine tolerates zero commits before
// declaring the simulation wedged.
const watchdogCycles = 200_000

// New builds an engine over the given trace source. startPC seeds the fetch
// PC (trace.Header.StartPC for file traces; the program entry point for
// on-the-fly sources).
func New(cfg Config, src trace.Source, startPC uint32) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		src:     trace.NewBuffered(src),
		startPC: startPC,
		icache:  cfg.ICache,
		dcache:  cfg.DCache,
		ifq:     uarch.NewRing[fetchedInst](cfg.IFQSize),
		rob:     uarch.NewRing[robEntry](cfg.RBSize),
		lsq:     uarch.NewRing[lsqEntry](cfg.LSQSize),
		rt:      uarch.NewRenameTable(),
		fus:     uarch.NewFUPool(cfg.FUs),
		ports:   uarch.NewMemPorts(cfg.MemReadPorts, cfg.MemWritePorts),
		fetchPC: startPC,
	}
	if e.icache == nil {
		e.icache = cache.NewPerfect(1)
	}
	if e.dcache == nil {
		e.dcache = cache.NewPerfect(1)
	}
	if !cfg.PerfectBP {
		e.bp = bpred.New(cfg.Predictor)
	}
	e.ifqOcc = stats.Occupancy{Name: "IFQ_occupancy", Desc: "instruction fetch queue", Cap: cfg.IFQSize}
	e.rbOcc = stats.Occupancy{Name: "RB_occupancy", Desc: "reorder buffer", Cap: cfg.RBSize}
	e.lsqOcc = stats.Occupancy{Name: "LSQ_occupancy", Desc: "load/store queue", Cap: cfg.LSQSize}
	consSlots := 1
	for consSlots < cfg.RBSize {
		consSlots <<= 1
	}
	e.cons = make([][]consRef, consSlots)
	for i := range e.cons {
		e.cons[i] = make([]consRef, 0, 4)
	}
	e.consMask = int64(consSlots - 1)
	e.readyQ = make([]*robEntry, 0, cfg.RBSize)
	e.wbReady = make([]*robEntry, 0, cfg.RBSize)
	e.wbNext = make([]*robEntry, 0, cfg.Width*2)
	e.wbHeap = make([]wbItem, 0, cfg.RBSize)
	e.lsqStores = make([]*lsqEntry, 0, cfg.LSQSize)
	e.icPerfect, _ = e.icache.(*cache.Perfect)
	e.dcPerfect, _ = e.dcache.(*cache.Perfect)
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Predictor returns the simulated branch predictor, or nil under perfect
// branch prediction. Exposed for inspection and tests.
func (e *Engine) Predictor() *bpred.Predictor { return e.bp }

// Now returns the current major-cycle number.
func (e *Engine) Now() int64 { return e.now }

// Done reports whether the simulation has drained: trace exhausted and no
// in-flight instructions.
func (e *Engine) Done() bool {
	return e.srcDone && e.ifq.Empty() && e.rob.Empty()
}

// Cycle advances one major cycle. The simulated architecture's semantics are
// enforced between major cycles; stages evaluate in the reference order
// Commit, Writeback, Lsq_refresh, Issue, Dispatch, Fetch.
func (e *Engine) Cycle() error {
	e.ports.NewCycle()
	if err := e.commit(); err != nil {
		return err
	}
	e.writeback()
	e.lsqRefresh()
	e.issue()
	e.dispatch()
	e.fetch()

	e.ifqOcc.Sample(e.ifq.Len())
	e.rbOcc.Sample(e.rob.Len())
	e.lsqOcc.Sample(e.lsq.Len())

	e.now++
	e.c.Cycles++
	return e.checkWatchdog()
}

// checkWatchdog diagnoses a wedged simulation after a cycle (or bulk idle
// skip) has been accounted.
func (e *Engine) checkWatchdog() error {
	if e.now-e.lastCommitAt > watchdogCycles {
		return fmt.Errorf("%w at cycle %d: rob=%d ifq=%d mode=%v", ErrNoProgress, e.now, e.rob.Len(), e.ifq.Len(), e.mode)
	}
	return nil
}

// stepFast is the run-loop step RunContext drives: it advances the
// simulation until the next control boundary (context-poll cadence,
// observer/checkpoint interval, cycle budget, completion), bulk-skipping
// provably idle regions on the way. When fetch is serving a penalty or
// miss (or is starved or out of records), nothing can commit, broadcast or
// issue before a known future cycle — every skipped cycle would only have
// incremented Cycles, the fetch idle/starved counters and the occupancy
// accumulators, which skipIdle applies in one arithmetic update,
// byte-identical to stepping. Active cycles run in a tight loop here, so
// the drive loop's per-step bookkeeping amortizes over thousands of
// cycles. Per-cycle callers (Engine.Cycle, the lockstep multicore cluster)
// are unaffected.
func (e *Engine) stepFast() error {
	limit := e.stepLimit()
	for {
		if n := e.idleCycles(limit); n >= 1 {
			e.skipIdle(n)
			if err := e.checkWatchdog(); err != nil {
				return err
			}
		} else if err := e.Cycle(); err != nil {
			return err
		}
		if e.c.Cycles >= limit || e.Done() {
			return nil
		}
	}
}

// stepLimit returns the absolute Cycles count at which stepFast must hand
// control back to the drive loop: the next context-poll boundary, capped to
// the next observer/checkpoint/telemetry boundary (so hook cadence stays on
// absolute interval multiples as Drive documents) and the MaxCycles budget.
func (e *Engine) stepLimit() uint64 {
	limit := nextBoundary(e.c.Cycles, CtxCheckInterval)
	if e.cfg.Observer != nil {
		iv := e.cfg.ObserverInterval
		if iv == 0 {
			iv = DefaultObserverInterval
		}
		if b := nextBoundary(e.c.Cycles, iv); b < limit {
			limit = b
		}
	}
	if e.cfg.CheckpointSink != nil {
		iv := e.cfg.CheckpointEvery
		if iv == 0 {
			iv = DefaultObserverInterval
		}
		if b := nextBoundary(e.c.Cycles, iv); b < limit {
			limit = b
		}
	}
	if e.cfg.TelemetrySink != nil {
		iv := e.cfg.TelemetryEvery
		if iv == 0 {
			iv = DefaultObserverInterval
		}
		if b := nextBoundary(e.c.Cycles, iv); b < limit {
			limit = b
		}
	}
	if e.cfg.MaxCycles != 0 && e.cfg.MaxCycles < limit {
		limit = e.cfg.MaxCycles
	}
	return limit
}

// idleCycles returns how many cycles starting at e.now are provably no-ops,
// bounded so the skip never crosses a cycle where simulated state can
// change, the stepFast control boundary (limit, an absolute Cycles count),
// or the point where the no-progress watchdog fires. 0 means the next
// cycle must execute normally.
func (e *Engine) idleCycles(limit uint64) int64 {
	// Any queued work means the next cycle can act.
	if !e.ifq.Empty() || len(e.readyQ) > 0 || len(e.wbReady) > 0 || len(e.wbNext) > 0 {
		return 0
	}
	if !e.rob.Empty() && e.rob.Front().state == stCompleted {
		return 0 // commit would retire the head
	}
	// Fetch: inert for good when starved or out of records; otherwise idle
	// exactly until fetchResumeAt.
	inert := e.mode == fmStarved || e.srcDone
	until := int64(math.MaxInt64)
	if !inert {
		if e.now >= e.fetchResumeAt {
			return 0 // fetch runs this cycle
		}
		until = e.fetchResumeAt
	}
	// Writeback: the earliest completion wakes dependents and re-arms
	// commit/issue. (LSQ readiness recomputation needs no event here: with
	// an empty ready queue nothing can issue, and lsqRefresh recomputes its
	// verdicts from persistent state before the next issue either way.)
	if len(e.wbHeap) > 0 && e.wbHeap[0].at < until {
		until = e.wbHeap[0].at
	}
	// The watchdog must fire at the same cycle, with the same counters, as
	// under per-cycle stepping.
	if w := e.lastCommitAt + watchdogCycles + 1; w < until {
		until = w
	}
	n := until - e.now
	if n < 1 {
		return 0
	}
	// Stop exactly at the control boundary (context poll, observer or
	// checkpoint interval, cycle budget — stepLimit folded them all in).
	if left := int64(limit - e.c.Cycles); left < n {
		n = left
	}
	return n
}

// skipIdle bulk-applies n idle cycles' worth of counter and occupancy
// updates: fetch-idle cycles while the resume penalty runs, fetch-starved
// cycles beyond it when fetch waits for mis-speculation resolution, and one
// occupancy sample per structure per cycle at the (constant) current
// lengths.
func (e *Engine) skipIdle(n int64) {
	idle := int64(0)
	if e.fetchResumeAt > e.now {
		idle = e.fetchResumeAt - e.now
		if idle > n {
			idle = n
		}
	}
	e.c.FetchIdle += uint64(idle)
	if e.mode == fmStarved {
		e.c.FetchStarved += uint64(n - idle)
	}
	e.ifqOcc.SampleN(0, uint64(n)) // idle regions require an empty IFQ
	e.rbOcc.SampleN(e.rob.Len(), uint64(n))
	e.lsqOcc.SampleN(e.lsq.Len(), uint64(n))
	e.now += n
	e.c.Cycles += uint64(n)
}

// CtxCheckInterval is how many major cycles elapse between context polls in
// RunContext: frequent enough that cancellation lands promptly, amortized
// enough that the cycle loop stays fast.
const CtxCheckInterval = 8192

// DefaultObserverInterval is the Progress callback period (major cycles)
// when Config.ObserverInterval is zero.
const DefaultObserverInterval = 65536

// Run simulates until the trace drains (or cfg.MaxCycles elapse) and returns
// the result.
func (e *Engine) Run() (Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// every CtxCheckInterval major cycles, and a cancelled run returns the
// statistics accumulated so far together with ctx.Err(). When cfg.Observer
// is set it receives a Progress callback at every cfg.ObserverInterval
// cycle boundary, a final one when the run drains, and a last non-Final
// snapshot when the run is cancelled or fails. When cfg.CheckpointSink is
// set the engine additionally serializes its complete state at every
// cfg.CheckpointEvery boundary (0 = DefaultObserverInterval) and hands the
// Checkpoint to the sink. When cfg.TelemetrySink is set the engine emits
// per-interval IntervalSnapshot window deltas at every cfg.TelemetryEvery
// boundary (0 = DefaultObserverInterval); see IntervalSnapshot for the
// delivery contract.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	var ckptEvery uint64
	var ckpt func() error
	if e.cfg.CheckpointSink != nil {
		ckptEvery = e.cfg.CheckpointEvery
		if ckptEvery == 0 {
			ckptEvery = DefaultObserverInterval
		}
		ckpt = func() error {
			cp, err := e.Checkpoint()
			if err != nil {
				return err
			}
			return e.cfg.CheckpointSink(cp)
		}
	}
	var telEvery uint64
	var tel func(final bool) error
	var telRun *telemetryRun
	if e.cfg.TelemetrySink != nil {
		telEvery = e.cfg.TelemetryEvery
		if telEvery == 0 {
			telEvery = DefaultObserverInterval
		}
		telRun = e.startTelemetry()
		tel = telRun.emit
	}
	err := drive(ctx, e.cfg.Observer, e.cfg.ObserverInterval, ckptEvery, ckpt, telEvery, tel,
		func() uint64 { return e.c.Cycles },
		func() bool {
			return e.Done() || (e.cfg.MaxCycles != 0 && e.c.Cycles >= e.cfg.MaxCycles)
		},
		e.stepFast,
		e.progress)
	if telRun != nil {
		telRun.stop() // restore the pipe-trace hook before result() copies Config
	}
	return e.result(), err
}

// Drive is the run loop shared by Engine.RunContext and the multicore
// cluster: it calls step until done reports true, polling the context
// every CtxCheckInterval simulated cycles and delivering Progress
// callbacks at every interval-cycle boundary (0 = DefaultObserverInterval)
// plus a final one on completion, so cancellation cadence and observer
// semantics live in exactly one place.
//
// Callback boundaries are absolute multiples of the interval (cycle N fires
// the callback covering boundary N when N % interval == 0, or the first
// cycle at or past it for step functions that advance more than one cycle),
// not offsets from wherever the previous poll happened to land — so the
// callback cycle sequence is deterministic across runs and, for a resumed
// run starting at a boundary, identical to the uninterrupted run's.
//
// Cancellation and step errors deliver one last non-Final progress snapshot
// (so observers see the state the returned statistics describe) and end the
// loop; the Final callback marks successful completion only.
func Drive(ctx context.Context, obs Observer, interval uint64,
	cycles func() uint64, done func() bool, step func() error,
	progress func(final bool) Progress) error {
	return drive(ctx, obs, interval, 0, nil, 0, nil, cycles, done, step, progress)
}

// DriveCheckpointed is Drive with a checkpoint hook: when checkpoint is
// non-nil it is additionally invoked between steps at every ckptEvery-cycle
// boundary (absolute multiples, like observer callbacks, so checkpoint
// cycles are deterministic across runs). A checkpoint error ends the loop
// like a step error.
func DriveCheckpointed(ctx context.Context, obs Observer, interval, ckptEvery uint64,
	checkpoint func() error,
	cycles func() uint64, done func() bool, step func() error,
	progress func(final bool) Progress) error {
	return drive(ctx, obs, interval, ckptEvery, checkpoint, 0, nil, cycles, done, step, progress)
}

// drive is the loop behind Drive, DriveCheckpointed and RunContext's
// telemetry path. telemetry, when non-nil, is invoked at every
// telEvery-cycle boundary with final=false, once with final=true on
// successful completion (covering the last partial window), and once with
// final=false when cancellation or a step/checkpoint error interrupts the
// run — so the windows it emits always sum to the run's final statistics.
// A telemetry error ends the loop like a step error.
func drive(ctx context.Context, obs Observer, interval, ckptEvery uint64,
	checkpoint func() error, telEvery uint64, telemetry func(final bool) error,
	cycles func() uint64, done func() bool, step func() error,
	progress func(final bool) Progress) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if interval == 0 {
		interval = DefaultObserverInterval
	}
	// snapshot delivers the last non-Final callback of an interrupted run.
	snapshot := func() {
		if obs != nil {
			obs.Progress(progress(false))
		}
	}
	// interrupted additionally flushes the partial telemetry window, so
	// streamed deltas sum to the statistics the interrupted run returns.
	interrupted := func() {
		if telemetry != nil {
			telemetry(false) //nolint:errcheck // the run is already ending
		}
		snapshot()
	}
	nextCheck := cycles() + CtxCheckInterval
	nextObs := nextBoundary(cycles(), interval)
	var nextCkpt, nextTel uint64
	if checkpoint != nil && ckptEvery > 0 {
		nextCkpt = nextBoundary(cycles(), ckptEvery)
	}
	if telemetry != nil && telEvery > 0 {
		nextTel = nextBoundary(cycles(), telEvery)
	}
	for !done() {
		if err := step(); err != nil {
			interrupted()
			return err
		}
		c := cycles()
		if c >= nextCheck {
			nextCheck = c + CtxCheckInterval
			if err := ctx.Err(); err != nil {
				interrupted()
				return err
			}
		}
		if checkpoint != nil && ckptEvery > 0 && c >= nextCkpt {
			nextCkpt = nextBoundary(c, ckptEvery)
			if err := checkpoint(); err != nil {
				interrupted()
				return err
			}
		}
		if telemetry != nil && telEvery > 0 && c >= nextTel {
			nextTel = nextBoundary(c, telEvery)
			if err := telemetry(false); err != nil {
				snapshot()
				return err
			}
		}
		if obs != nil && c >= nextObs {
			nextObs = nextBoundary(c, interval)
			obs.Progress(progress(false))
		}
	}
	if telemetry != nil {
		if err := telemetry(true); err != nil {
			snapshot()
			return err
		}
	}
	if obs != nil {
		obs.Progress(progress(true))
	}
	return nil
}

// nextBoundary returns the first multiple of interval strictly after c.
func nextBoundary(c, interval uint64) uint64 {
	return (c/interval + 1) * interval
}

// progress snapshots the counters an Observer sees.
func (e *Engine) progress(final bool) Progress {
	p := Progress{Cycles: e.c.Cycles, Committed: e.c.Committed, Final: final}
	if e.c.Cycles > 0 {
		p.IPC = float64(e.c.Committed) / float64(e.c.Cycles)
	}
	return p
}

// Result snapshots the current statistics; usable mid-run by callers that
// drive Cycle directly (e.g. the multicore cluster).
func (e *Engine) Result() Result { return e.result() }

// Reset re-arms the engine for a fresh run over src starting at startPC,
// clearing every per-run field: cycle/sequence counters, fetch state
// (including fetchResumeAt and the fetch mode), queue contents, rename and
// functional-unit occupancy, predictor tables, cache arrays (models
// installed via Config.ICache/DCache are reset in place — callers sharing a
// model across engines must not Reset concurrently with its other users),
// event counters and occupancy accumulators. A second run on a reset engine
// is bit-identical to a run on a newly built one. This enumeration is the
// explicit statement of what "per-run state" means; the checkpoint test
// comparing a reset engine's serialized state against a virgin engine's
// keeps it in lockstep with Checkpoint/Restore, so a new per-run field
// missed here (or there) fails that test instead of drifting silently.
func (e *Engine) Reset(src trace.Source, startPC uint32) {
	e.src = trace.NewBuffered(src)
	e.startPC = startPC
	e.now = 0
	e.seq = 0
	e.fetchPC = startPC
	e.fetchResumeAt = 0
	e.mode = fmNormal
	e.srcDone = false
	e.lastCommitAt = 0
	e.c = Counters{}
	e.ifq.Clear()
	e.rob.Clear()
	e.lsq.Clear()
	e.rt.Reset()
	e.fus.Reset()
	e.ports.NewCycle()
	if e.bp != nil {
		e.bp.Reset()
	}
	e.icache.Reset()
	e.dcache.Reset()
	e.ifqOcc.Reset()
	e.rbOcc.Reset()
	e.lsqOcc.Reset()
	e.clearDerived()
}

// clearDerived empties the event-scheduling structures (ready queue,
// writeback heap and overflow queue, consumer lists), retaining their
// backing storage. Called whenever the in-flight window empties wholesale:
// Reset, mis-speculation recovery, and as the first step of rebuildDerived.
func (e *Engine) clearDerived() {
	e.readyQ = e.readyQ[:0]
	e.wbReady = e.wbReady[:0]
	e.wbHeap = e.wbHeap[:0]
	e.wbNext = e.wbNext[:0]
	e.lsqLoads = 0
	for i := range e.cons {
		e.cons[i] = e.cons[i][:0]
	}
}

// ---------------------------------------------------------------------------
// Commit

func (e *Engine) commit() error {
	width := e.cfg.Width
	for committed := 0; committed < width && !e.rob.Empty(); committed++ {
		en := e.rob.Front()
		if en.state != stCompleted {
			break
		}
		if en.wrongPath {
			return fmt.Errorf("core: wrong-path instruction seq %d reached commit (engine bug)", en.seq)
		}
		isMem := en.rec.Kind == trace.KindMem
		if isMem && en.rec.Store {
			// "Commit commits the oldest RB entry releasing Store Operations
			// to memory, if a memory write port is available" (§III). Store
			// misses do not stall commit (write-buffer assumption).
			if !e.ports.TryWrite() {
				e.c.StorePortStalls++
				break
			}
			if p := e.dcPerfect; p != nil {
				p.Access(en.rec.Addr, true)
			} else {
				e.dcache.Access(en.rec.Addr, true)
			}
		}
		if isMem {
			if e.lsq.Empty() || e.lsq.Front().seq != en.seq {
				return fmt.Errorf("core: LSQ head out of sync at commit of seq %d", en.seq)
			}
			e.lsq.DropFront()
			if !en.rec.Store {
				e.lsqLoads--
			}
		}

		e.c.Committed++
		e.lastCommitAt = e.now
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Stage(en.seq, e.now, "commit")
		}
		switch en.rec.Kind {
		case trace.KindMem:
			if en.rec.Store {
				e.c.CommittedStores++
			} else {
				e.c.CommittedLoads++
			}
		case trace.KindBranch:
			e.c.CommittedBranches++
			if k := int(en.rec.Ctrl); k < len(e.c.BranchesByKind) {
				e.c.BranchesByKind[k]++
			}
			if en.rec.Taken {
				e.c.TakenBranches++
			}
			if e.bp != nil {
				e.trainPredictor(en)
			}
		}

		// en points into the ring; capture the recovery inputs before the
		// slot is released (recover clears the whole buffer).
		mispred, resumePC := en.mispred, en.actualNext
		e.rob.DropFront()
		if mispred {
			e.recover(resumePC)
			break
		}
	}
	return nil
}

// trainPredictor applies commit-time predictor updates ("Commit ... updates
// the Branch Predictor in case of branch", §III). RAS push/pop happen at
// fetch, as in the modeled hardware.
func (e *Engine) trainPredictor(en *robEntry) {
	r := en.rec
	switch r.Ctrl {
	case isa.CtrlCond:
		e.bp.UpdateDir(en.pc, r.Taken)
		if r.Taken {
			e.bp.UpdateBTB(en.pc, r.Target)
		}
	case isa.CtrlJump, isa.CtrlCall, isa.CtrlIndirect, isa.CtrlIndCall:
		e.bp.UpdateBTB(en.pc, r.Target)
	}
}

// recover squashes the pipeline after a mispredicted branch committed:
// every younger instruction is wrong-path by construction, unfetched tagged
// records are discarded, and fetch resumes at the correct-path PC
// (resumePC) after the mis-speculation penalty.
func (e *Engine) recover(resumePC uint32) {
	e.c.MispredResolved++
	if e.cfg.PipeTracer != nil {
		for i := 0; i < e.rob.Len(); i++ {
			e.cfg.PipeTracer.Stage(e.rob.At(i).seq, e.now, "squash")
		}
		for i := 0; i < e.ifq.Len(); i++ {
			e.cfg.PipeTracer.Stage(e.ifq.At(i).seq, e.now, "squash")
		}
	}
	e.ifq.Clear()
	e.rob.Clear()
	e.lsq.Clear()
	e.rt.Reset()
	e.clearDerived()
	e.c.WPRecordsDiscarded += uint64(e.src.SkipTagged())
	e.mode = fmNormal
	e.fetchPC = resumePC
	e.fetchResumeAt = e.now + 1 + int64(e.cfg.MispredPenalty)
}

// ---------------------------------------------------------------------------
// Writeback

// writeback selects the oldest completed instructions (up to Width),
// broadcasts their results and wakes dependents (§III). Candidates come
// from the completion heap — instructions whose execution finishes by this
// cycle drain into the age-ordered wbReady queue — so the cost tracks the
// number of completions, not the reorder-buffer size.
func (e *Engine) writeback() {
	// Common case: no deferred broadcasts, no heap completions due — the
	// age-sorted fast lane is the whole candidate set and broadcasts
	// straight out of it.
	if len(e.wbReady) == 0 && (len(e.wbHeap) == 0 || e.wbHeap[0].at > e.now) {
		due := e.wbNext
		if len(due) == 0 {
			return
		}
		broadcasts := len(due)
		if broadcasts > e.cfg.Width {
			broadcasts = e.cfg.Width
		}
		for _, en := range due[:broadcasts] {
			e.broadcast(en)
		}
		// Width overflow (rare): the remainder waits in wbReady.
		e.wbReady = append(e.wbReady, due[broadcasts:]...)
		e.wbNext = due[:0]
		return
	}
	// General case: merge the fast lane and due heap completions into the
	// age-ordered overflow queue, then broadcast its oldest Width.
	for _, en := range e.wbNext {
		e.wbReadyInsert(en)
	}
	e.wbNext = e.wbNext[:0]
	for len(e.wbHeap) > 0 && e.wbHeap[0].at <= e.now {
		e.wbReadyInsert(e.heapPop())
	}
	if len(e.wbReady) == 0 {
		return
	}
	broadcasts := len(e.wbReady)
	if broadcasts > e.cfg.Width {
		broadcasts = e.cfg.Width
	}
	for _, en := range e.wbReady[:broadcasts] {
		e.broadcast(en)
	}
	e.wbReady = append(e.wbReady[:0], e.wbReady[broadcasts:]...)
}

// broadcast completes en: result broadcast, rename release, dependent
// wakeup.
func (e *Engine) broadcast(en *robEntry) {
	en.state = stCompleted
	if e.cfg.PipeTracer != nil {
		e.cfg.PipeTracer.Stage(en.seq, e.now, "writeback")
	}
	if en.rec.Dest != isa.NoReg {
		e.rt.ClearIfProducer(en.rec.Dest, en.seq)
		e.wake(en)
	}
}

// wake marks ready every source operand registered on the broadcasting
// entry's consumer list, starts address generation for loads whose base
// register just arrived, and moves now-fully-ready instructions into the
// ready queue. The list is consumed: a producer broadcasts exactly once.
func (e *Engine) wake(prod *robEntry) {
	refs := e.cons[prod.slot]
	if len(refs) == 0 {
		return
	}
	for _, ref := range refs {
		en := ref.en
		if ref.op == 0 {
			en.src1Rdy = true
			if en.rec.Kind == trace.KindMem && !en.rec.Store {
				// Load base register ready: effective address known next cycle.
				if lq := en.lsq; lq.eaKnownAt == eaUnknown {
					lq.eaKnownAt = e.now + 1
				}
			}
		} else {
			en.src2Rdy = true
		}
		if en.src1Rdy && en.src2Rdy {
			e.readyInsert(en)
		}
	}
	e.cons[prod.slot] = refs[:0]
}

// addConsumer registers one of en's pending operands on producer prod's
// consumer list; op is 0 for src1, 1 for src2.
func (e *Engine) addConsumer(prod, en *robEntry, op uint8) {
	e.cons[prod.slot] = append(e.cons[prod.slot], consRef{en, op})
}

// insertBySeq inserts en into the age-ordered (by seq) queue q and returns
// it — the one insertion discipline every age-ordered engine queue (ready
// queue, broadcast overflow, 1-cycle completion lane) shares. Arrivals are
// nearly in age order, so the insertion point is almost always the tail.
func insertBySeq(q []*robEntry, en *robEntry) []*robEntry {
	q = append(q, en)
	i := len(q) - 1
	for i > 0 && q[i-1].seq > en.seq {
		q[i] = q[i-1]
		i--
	}
	q[i] = en
	return q
}

// readyInsert adds en to the age-ordered ready queue.
func (e *Engine) readyInsert(en *robEntry) {
	e.readyQ = insertBySeq(e.readyQ, en)
}

// wbReadyInsert adds en to the age-ordered broadcast-overflow queue.
func (e *Engine) wbReadyInsert(en *robEntry) {
	e.wbReady = insertBySeq(e.wbReady, en)
}

// heapPush schedules a completion broadcast; the heap orders by
// (completeAt, seq) so same-cycle completions drain oldest first.
func (e *Engine) heapPush(at int64, en *robEntry) {
	h := append(e.wbHeap, wbItem{at, en})
	i := len(h) - 1
	it := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if wbLess(h[p], it) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = it
	e.wbHeap = h
}

// wbLess orders the completion heap by (completeAt, seq).
func wbLess(a, b wbItem) bool {
	return a.at < b.at || (a.at == b.at && a.en.seq < b.en.seq)
}

// heapPop removes and returns the entry with the earliest completion.
func (e *Engine) heapPop() *robEntry {
	h := e.wbHeap
	top := h[0].en
	last := h[len(h)-1]
	h = h[:len(h)-1]
	e.wbHeap = h
	if len(h) > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= len(h) {
				break
			}
			if r := l + 1; r < len(h) && wbLess(h[r], h[l]) {
				l = r
			}
			if !wbLess(h[l], last) {
				break
			}
			h[i] = h[l]
			i = l
		}
		h[i] = last
	}
	return top
}

// ---------------------------------------------------------------------------
// Lsq_refresh

// lsqRefresh runs once per major cycle (§IV.A). It marks loads ready to
// issue: the load's effective address is known, every older store's address
// is known, and either no older store touches the load's bytes (memory
// access), or the youngest overlapping store has executed and fully covers
// the load (its value is forwarded). A partially overlapping store blocks
// the load until the store commits and leaves the LSQ.
func (e *Engine) lsqRefresh() {
	if e.lsqLoads == 0 {
		return // stores alone have no readiness to refresh
	}
	unknownStore := false
	stores := e.lsqStores[:0]
	s1, s2 := e.lsq.Views()
	for _, span := range [2][]lsqEntry{s1, s2} {
		for i := range span {
			lq := &span[i]
			if lq.store {
				if lq.eaKnownAt > e.now {
					unknownStore = true
				}
				stores = append(stores, lq)
				continue
			}
			lq.memReady = false
			lq.forwarded = false
			if lq.memIssued || lq.eaKnownAt > e.now || unknownStore {
				continue
			}
			// Find the youngest older store touching the load's bytes
			// (stores holds every older store, oldest first).
			var match *lsqEntry
			for j := len(stores) - 1; j >= 0; j-- {
				if stores[j].overlaps(lq) {
					match = stores[j]
					break
				}
			}
			switch {
			case match == nil:
				lq.memReady = true
			case match.eaKnownAt <= e.now && match.covers(lq):
				// Store has executed and provides every byte: forward without
				// a read port (§III).
				lq.memReady = true
				lq.forwarded = true
			default:
				// Pending or partially overlapping store: wait.
			}
		}
	}
	e.lsqStores = stores[:0]
}

// ---------------------------------------------------------------------------
// Issue

// issue schedules ready instructions onto functional units, up to Width per
// major cycle, oldest first (§III). Candidates come from the age-ordered
// ready queue — exactly the dispatched instructions with all register
// operands available — so the cost tracks the ready set, not the
// reorder-buffer size. Under the Optimized organization the first issue
// slot of the major cycle does not consider loads (§IV.B, Figure 4);
// slot 0 is filled with the oldest ready non-load instead.
func (e *Engine) issue() {
	if len(e.readyQ) == 0 {
		return
	}
	slotsLeft := e.cfg.Width
	if e.cfg.Organization.LoadBarredFromFirstSlot() {
		// Slot 0 may not take a load: fill it with the oldest ready
		// non-load, or leave it empty. With at most N-1 memory ports this
		// never reduces the number of instructions issued per cycle, which
		// is why the paper can claim the N+3 organization does not affect
		// timing results (§IV.B); tests verify the equivalence empirically.
		for qi, en := range e.readyQ {
			if en.rec.Kind == trace.KindMem && !en.rec.Store {
				if en.lsq.memReady {
					e.c.LoadFirstSlotDeferred++
				}
				continue
			}
			if e.issueOne(en) {
				e.readyQ = append(e.readyQ[:qi], e.readyQ[qi+1:]...)
				break
			}
		}
		slotsLeft = e.cfg.Width - 1 // slot 0 filled or forfeited
	}
	q := e.readyQ
	out := 0
	for qi := 0; qi < len(q); qi++ {
		if slotsLeft > 0 {
			if e.issueOne(q[qi]) {
				slotsLeft--
				continue
			}
		}
		q[out] = q[qi]
		out++
	}
	e.readyQ = q[:out]
}

// issueOne attempts to start execution of en this cycle, scheduling its
// completion broadcast on success.
func (e *Engine) issueOne(en *robEntry) bool {
	switch en.rec.Kind {
	case trace.KindMem:
		if en.rec.Store {
			// Store: address generation on an ALU; memory write at commit.
			lat, ok := e.fus.TryIssue(uarch.FUALU, e.now)
			if !ok {
				return false
			}
			en.state = stIssued
			en.completeAt = e.now + int64(lat)
			en.lsq.eaKnownAt = en.completeAt
		} else {
			lq := en.lsq
			if !lq.memReady {
				return false
			}
			if lq.forwarded {
				en.completeAt = e.now + 1
				e.c.LoadsForwarded++
			} else {
				if !e.ports.TryRead() {
					return false
				}
				var lat int
				if p := e.dcPerfect; p != nil {
					_, lat = p.Access(en.rec.Addr, false)
				} else {
					_, lat = e.dcache.Access(en.rec.Addr, false)
				}
				en.completeAt = e.now + int64(lat)
			}
			en.state = stIssued
			lq.memIssued = true
		}
	case trace.KindBranch:
		lat, ok := e.fus.TryIssue(uarch.FUALU, e.now)
		if !ok {
			return false
		}
		en.state = stIssued
		en.completeAt = e.now + int64(lat)
	default: // KindOther
		cls := uarch.FUALU
		switch en.rec.Class {
		case trace.OpMul:
			cls = uarch.FUMult
		case trace.OpDiv:
			cls = uarch.FUDiv
		}
		lat, ok := e.fus.TryIssue(cls, e.now)
		if !ok {
			return false
		}
		en.state = stIssued
		en.completeAt = e.now + int64(lat)
	}
	if en.completeAt == e.now+1 {
		// The dominant case (single-cycle ALU ops, forwarded loads, L1
		// hits) skips the heap. The lane is kept age-sorted on insert —
		// only the Optimized organization's slot-0 pick can arrive out of
		// order, so this is almost always a plain append.
		e.wbNext = insertBySeq(e.wbNext, en)
	} else {
		e.heapPush(en.completeAt, en)
	}
	e.c.Issued++
	if e.cfg.PipeTracer != nil {
		e.cfg.PipeTracer.Stage(en.seq, e.now, "issue")
	}
	return true
}

// ---------------------------------------------------------------------------
// Dispatch

// dispatch moves up to Width instructions from the IFQ into the reorder
// buffer (and LSQ for memory operations), reading and updating the rename
// table (§III).
func (e *Engine) dispatch() {
	width := e.cfg.Width
	for n := 0; n < width && !e.ifq.Empty(); n++ {
		fi := e.ifq.Front()
		if e.rob.Full() {
			e.c.RBFullStalls++
			break
		}
		isMem := fi.rec.Kind == trace.KindMem
		if isMem && e.lsq.Full() {
			e.c.LSQFullStalls++
			break
		}

		abs := e.rob.NextAbs()
		// Construct the reorder-buffer entry in place (rob.Full was checked
		// above) with per-field writes — a composite literal here compiles
		// to a stack temporary plus a bulk copy. The slot may hold stale
		// bytes, so every field is written; the IFQ slot fi aliases stays
		// untouched until DropFront.
		en := e.rob.PushSlot()
		en.seq = fi.seq
		en.rec = fi.rec
		en.pc = fi.pc
		en.actualNext = fi.actualNext
		en.wrongPath = fi.wrongPath
		en.mispred = fi.mispred
		en.state = stDispatched
		en.src1Seq = e.rt.Producer(fi.rec.Src1)
		en.src2Seq = e.rt.Producer(fi.rec.Src2)
		en.completeAt = 0
		en.lsq = nil
		en.slot = int32(abs & e.consMask)
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Stage(en.seq, e.now, "dispatch")
		}
		en.src1Rdy = en.src1Seq == uarch.NoProducer
		en.src2Rdy = en.src2Seq == uarch.NoProducer
		// Register pending operands on their producers' consumer lists (the
		// rename table only ever names in-flight, not-yet-broadcast
		// entries, so the producer — at prodPtr[reg] — is resident by
		// construction); fully ready instructions go straight to the ready
		// queue, which stays age-ordered because dispatch appends the
		// youngest entries.
		if !en.src1Rdy {
			e.addConsumer(e.prodPtr[fi.rec.Src1], en, 0)
		}
		if !en.src2Rdy {
			e.addConsumer(e.prodPtr[fi.rec.Src2], en, 1)
		}
		if d := fi.rec.Dest; d != isa.NoReg {
			e.rt.SetProducer(d, en.seq)
			if d != isa.RegZero && d < isa.NumRegs {
				e.prodPtr[d] = en
			}
		}
		if isMem {
			lq := e.lsq.PushSlot()
			lq.seq = en.seq
			lq.store = fi.rec.Store
			lq.addr = fi.rec.Addr
			lq.size = fi.rec.MemBytes()
			lq.eaKnownAt = eaUnknown
			lq.memReady = false
			lq.forwarded = false
			lq.memIssued = false
			if !lq.store {
				e.lsqLoads++
				if en.src1Rdy {
					// Base register already available: address known next cycle.
					lq.eaKnownAt = e.now + 1
				}
			}
			en.lsq = lq
		}
		e.ifq.DropFront()
		if en.src1Rdy && en.src2Rdy {
			e.readyQ = append(e.readyQ, en)
		}
	}
}

// ---------------------------------------------------------------------------
// Fetch

// prediction is the engine's fetch-time verdict for a branch record.
type prediction struct {
	next     uint32 // next fetch PC down the predicted path
	mispred  bool
	misfetch bool
}

// predict applies the simulated branch predictor to a correct-path branch
// record at pc. Direct targets resolve during fetch ("target resolution"),
// so direct branches can only misfetch (BTB supplied a wrong early target);
// direction and indirect-target errors are full mispredictions resolved at
// commit.
func (e *Engine) predict(pc uint32, rec *trace.Record) prediction {
	fall := pc + 4
	actualNext := fall
	if rec.Taken {
		actualNext = rec.Target
	}
	if e.bp == nil { // perfect branch prediction
		return prediction{next: actualNext}
	}
	e.c.BPLookups++
	p := prediction{next: actualNext}
	switch rec.Ctrl {
	case isa.CtrlCond:
		predTaken := e.bp.PredictDir(pc)
		if predTaken != rec.Taken {
			p.mispred = true
			if predTaken {
				p.next = rec.Target // direct target, resolved at fetch
			} else {
				p.next = fall
			}
			return p
		}
		if predTaken && rec.Taken {
			if tgt, hit := e.bp.LookupBTB(pc); hit && tgt != rec.Target {
				p.misfetch = true
			}
		}
	case isa.CtrlJump, isa.CtrlCall:
		if tgt, hit := e.bp.LookupBTB(pc); hit && tgt != rec.Target {
			p.misfetch = true
		}
		if rec.Ctrl == isa.CtrlCall {
			e.bp.PushRAS(fall)
		}
	case isa.CtrlRet:
		predTgt, ok := e.bp.PopRAS()
		e.c.RASPops++
		if !ok {
			e.c.RASEmptyPops++
		}
		if !ok || predTgt != rec.Target {
			p.mispred = true
			if ok {
				p.next = predTgt
			} else {
				p.next = fall
			}
		}
	case isa.CtrlIndirect, isa.CtrlIndCall:
		predTgt, hit := e.bp.LookupBTB(pc)
		if !hit || predTgt != rec.Target {
			p.mispred = true
			if hit {
				p.next = predTgt
			} else {
				p.next = fall
			}
		}
		if rec.Ctrl == isa.CtrlIndCall {
			e.bp.PushRAS(fall)
		}
	}
	return p
}

// fetch brings up to Width records into the IFQ, stopping at a control-flow
// bubble (a predicted-taken branch), a full IFQ, an I-cache miss, or a
// fetch redirect (§III).
func (e *Engine) fetch() {
	if e.now < e.fetchResumeAt {
		e.c.FetchIdle++
		return
	}
	if e.mode == fmStarved {
		e.c.FetchStarved++
		return
	}
	if e.srcDone {
		return
	}
	width := e.cfg.Width
	for fetched := 0; fetched < width && !e.ifq.Full(); {
		rec, err := e.src.PeekRef()
		if err != nil {
			if e.mode == fmWrongPath {
				e.mode = fmStarved
			} else {
				e.srcDone = true
			}
			return
		}
		if e.mode == fmNormal && rec.Tag {
			// A wrong-path block for a branch this engine predicted
			// correctly (trace-generator disagreement): discard it.
			e.c.WPBlocksSkipped++
			e.c.WPRecordsDiscarded += uint64(e.src.SkipTagged())
			continue
		}
		if e.mode == fmWrongPath && !rec.Tag {
			// Block exhausted before resolution: fetch starves.
			e.mode = fmStarved
			return
		}
		if rec.Kind == trace.KindBranch && rec.PC != 0 {
			// B records carry the branch PC; re-synchronize the implicit
			// fetch PC with it (the hardware indexes the predictor and the
			// I-cache with this value).
			e.fetchPC = rec.PC
		}

		// Instruction cache access at the current fetch PC. The concrete
		// Perfect call devirtualizes (and always hits).
		if p := e.icPerfect; p != nil {
			p.Access(e.fetchPC, false)
		} else if hit, lat := e.icache.Access(e.fetchPC, false); !hit {
			e.fetchResumeAt = e.now + int64(lat)
			return
		}

		e.src.Advance() // consume the record PeekRef returned above
		e.c.FetchedTotal++
		// Construct the IFQ entry in place (the loop guard holds a free
		// slot) with per-field writes — a composite literal here compiles
		// to a stack temporary plus a bulk copy. The slot may hold stale
		// bytes, so every field is written; every path below keeps mutating
		// the entry in the ring.
		fi := e.ifq.PushSlot()
		fi.seq = e.seq
		fi.rec = *rec
		fi.pc = e.fetchPC
		fi.actualNext = 0
		fi.wrongPath = rec.Tag
		fi.mispred = false
		// rec aliased the lookahead buffer, which the next Peek overwrites;
		// re-point it at the stable copy just made.
		rec = &fi.rec
		e.seq++
		if rec.Tag {
			e.c.WrongPathFetched++
		}
		if e.cfg.PipeTracer != nil {
			e.cfg.PipeTracer.Fetched(fi.seq, e.now, fi.pc, rec.String(), rec.Tag)
		}

		if rec.Kind != trace.KindBranch {
			fetched++
			e.fetchPC += 4
			continue
		}

		// Branch record.
		if e.mode == fmWrongPath {
			// Wrong-path branches follow the trace generator's assumed
			// outcome; they are not predicted and never trigger recovery.
			fetched++
			if rec.Taken {
				e.fetchPC = rec.Target
				return // control-flow bubble
			}
			e.fetchPC += 4
			continue
		}

		p := e.predict(fi.pc, rec)
		fall := fi.pc + 4
		fi.actualNext = fall
		if rec.Taken {
			fi.actualNext = rec.Target
		}
		fi.mispred = p.mispred
		fetched++

		switch {
		case p.misfetch:
			// Misfetch: delayed penalty, then fetch continues at the target
			// resolved during fetch (§III).
			e.c.Misfetches++
			e.fetchPC = fi.actualNext
			e.fetchResumeAt = e.now + 1 + int64(e.cfg.MisfetchPenalty)
			return
		case p.mispred:
			e.c.MispredDetected++
			if k := int(rec.Ctrl); k < len(e.c.MispredictByKind) {
				e.c.MispredictByKind[k]++
			}
			e.fetchPC = p.next
			if next, err := e.src.Peek(); err == nil && next.Tag {
				e.mode = fmWrongPath
				e.c.WPBlocksEntered++
			} else {
				// The trace has no wrong-path block here (the generator's
				// predictor got this branch right): model the penalty with
				// a starved fetch until resolution.
				e.mode = fmStarved
				e.c.MispredStarved++
			}
			return
		default:
			e.fetchPC = p.next
			if p.next != fall {
				return // predicted-taken: control-flow bubble ends the cycle
			}
		}
	}
}

// ---------------------------------------------------------------------------

func (e *Engine) result() Result {
	return Result{
		Counters: e.c,
		ICache:   e.icache.Stats(),
		DCache:   e.dcache.Stats(),
		IFQ:      e.ifqOcc,
		RB:       e.rbOcc,
		LSQ:      e.lsqOcc,
		Config:   e.cfg,
	}
}
