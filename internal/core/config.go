// Package core implements the ReSim timing engine: a trace-driven,
// cycle-accurate simulation of an out-of-order, superscalar, speculative
// processor (paper §III). One call to (*Engine).Cycle advances one major
// cycle; the simulated micro-architectural semantics are enforced only at
// major-cycle boundaries, exactly as ReSim's hardware does, so the engine is
// organization-independent except for the Optimized pipeline's first-slot
// load restriction, which it models explicitly.
//
// Stage evaluation order within a major cycle is Commit, Writeback,
// Lsq_refresh, Issue, Dispatch, Fetch — the reference ordering that all
// three internal pipeline organizations of §IV implement.
package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/funcsim"
	"repro/internal/sched"
	"repro/internal/uarch"
)

// Config parameterizes the simulated processor and the engine organization.
type Config struct {
	// Width is N: fetch, dispatch, issue, writeback and commit bandwidth.
	Width int
	// IFQSize is the instruction fetch queue depth.
	IFQSize int
	// RBSize is the reorder buffer depth (paper: 16).
	RBSize int
	// LSQSize is the load/store queue depth (paper: 8).
	LSQSize int
	// FUs configures the functional-unit pools (paper: 4 ALU / 1 MUL / 1 DIV
	// with latencies 1 / 3 / 10).
	FUs uarch.FUConfig
	// MemReadPorts and MemWritePorts bound per-cycle load issues and store
	// commits.
	MemReadPorts  int
	MemWritePorts int
	// MisfetchPenalty is the fetch bubble after a misfetch (paper: 3).
	MisfetchPenalty int
	// MispredPenalty is the fetch bubble after mis-speculation resolution at
	// commit (paper: 3).
	MispredPenalty int
	// PerfectBP disables the predictor: every branch is predicted correctly
	// (Table 1, right portion).
	PerfectBP bool
	// Predictor configures the simulated branch predictor.
	Predictor bpred.Config
	// ICache and DCache are the memory system; nil selects perfect memory
	// with 1-cycle access (Table 1, left portion).
	ICache cache.Model
	DCache cache.Model
	// Organization selects the internal minor-cycle pipeline. It does not
	// change simulated timing except that the Optimized organization bars
	// loads from the first issue slot of each major cycle.
	Organization sched.Organization
	// MaxCycles aborts runaway simulations; 0 means no limit.
	MaxCycles uint64
	// PipeTracer, when non-nil, receives per-instruction pipeline events
	// (the sim-outorder "ptrace" facility); see internal/ptrace.
	PipeTracer PipeTracer
	// Observer, when non-nil, receives periodic Progress callbacks from
	// (*Engine).RunContext every ObserverInterval major cycles
	// (0 = DefaultObserverInterval).
	Observer         Observer
	ObserverInterval uint64
	// CheckpointSink, when non-nil, receives the engine's serialized state
	// (a complete Checkpoint) at every CheckpointEvery-cycle boundary of
	// RunContext (0 = DefaultObserverInterval). A sink error aborts the run.
	// Like Observer and PipeTracer this is a per-run hook, not part of the
	// simulated machine: it never affects simulated state, cannot cross the
	// sweep-service wire, and is excluded from the checkpoint ConfigDigest.
	// The func type would break the otherwise JSON-able Config (results
	// embed their Config), so it is explicitly untagged for encoding.
	CheckpointSink  func(*Checkpoint) error `json:"-"`
	CheckpointEvery uint64
	// TelemetrySink, when non-nil, receives an IntervalSnapshot — the
	// window delta of every counter, cache statistic and occupancy — at
	// every TelemetryEvery-cycle boundary of RunContext
	// (0 = DefaultObserverInterval), a Final snapshot covering the last
	// partial window when the run drains, and one last non-Final snapshot
	// when the run is cancelled or fails, so the streamed windows always
	// sum to the returned Result. A sink error aborts the run. Like
	// CheckpointSink this is a per-run hook, not part of the simulated
	// machine: it never affects simulated state, cannot cross the
	// sweep-service wire, and is excluded from the checkpoint ConfigDigest;
	// the func type is untagged for encoding because results embed their
	// Config.
	TelemetrySink  func(IntervalSnapshot) error `json:"-"`
	TelemetryEvery uint64
	// TelemetryPipeTail, when positive, attaches the most recent N
	// pipe-trace event lines to each IntervalSnapshot (local sinks only;
	// the sweep service strips tails before forwarding). It splices a
	// recorder into the PipeTracer hook for the run, so it costs
	// per-instruction formatting — a debugging aid, not a monitoring
	// default.
	TelemetryPipeTail int
}

// PipeTracer observes instruction flow through the simulated pipeline.
// Sequence numbers are assigned in fetch order (wrong-path instructions
// included); cycle is the major-cycle number of the event.
type PipeTracer interface {
	// Fetched delivers the instruction's identity once, at fetch.
	Fetched(seq int64, cycle int64, pc uint32, desc string, wrongPath bool)
	// Stage marks one pipeline event: "dispatch", "issue", "writeback",
	// "commit" or "squash".
	Stage(seq int64, cycle int64, stage string)
}

// DefaultConfig returns the paper's evaluated 4-way configuration (§V.C):
// 16 RB entries, 8 LSQ entries, 4 ALUs + 1 multiplier + 1 divider, penalties
// of 3, the default branch predictor, perfect memory, and the Optimized
// (N+3) organization used for Table 1's left portion.
func DefaultConfig() Config {
	return Config{
		Width:           4,
		IFQSize:         4,
		RBSize:          16,
		LSQSize:         8,
		FUs:             uarch.DefaultFUConfig(),
		MemReadPorts:    2,
		MemWritePorts:   1,
		MisfetchPenalty: 3,
		MispredPenalty:  3,
		Predictor:       bpred.Default(),
		Organization:    sched.OrgOptimized,
	}
}

// FASTComparisonConfig returns the 2-issue configuration of Table 1's right
// portion: perfect branch prediction, 32 KB 8-way L1 instruction and data
// caches with 64-byte blocks, and the Improved (N+4) organization.
func FASTComparisonConfig() Config {
	c := DefaultConfig()
	c.Width = 2
	c.PerfectBP = true
	c.ICache = cache.New(cache.L1Config32K("il1"))
	c.DCache = cache.New(cache.L1Config32K("dl1"))
	c.Organization = sched.OrgImproved
	c.MemReadPorts = 1
	c.MemWritePorts = 1
	return c
}

// Validate reports configuration errors, including the Optimized
// organization's memory-port restriction.
func (c Config) Validate() error {
	if c.Width < 1 || c.Width > 16 {
		return fmt.Errorf("core: width %d out of range [1,16]", c.Width)
	}
	if c.IFQSize < 1 {
		return fmt.Errorf("core: IFQSize %d", c.IFQSize)
	}
	if c.RBSize < 1 {
		return fmt.Errorf("core: RBSize %d", c.RBSize)
	}
	if c.LSQSize < 1 {
		return fmt.Errorf("core: LSQSize %d", c.LSQSize)
	}
	if err := c.FUs.Validate(); err != nil {
		return err
	}
	if c.MemReadPorts < 1 || c.MemWritePorts < 1 {
		return fmt.Errorf("core: memory ports %d/%d", c.MemReadPorts, c.MemWritePorts)
	}
	if c.MisfetchPenalty < 0 || c.MispredPenalty < 0 {
		return fmt.Errorf("core: negative penalty")
	}
	if !c.PerfectBP {
		if err := c.Predictor.Validate(); err != nil {
			return err
		}
	}
	if maxPorts := c.Organization.MaxMemPorts(c.Width); c.MemReadPorts > maxPorts {
		return fmt.Errorf("core: %v organization supports at most %d memory ports for width %d, got %d read ports",
			c.Organization, maxPorts, c.Width, c.MemReadPorts)
	}
	return nil
}

// WrongPathLen returns the paper's conservative wrong-path block size for
// this configuration: "Reorder Buffer size plus IFQ size" (§V.A).
func (c Config) WrongPathLen() int { return c.RBSize + c.IFQSize }

// TraceConfig derives the sim-bpred trace-generation configuration that
// matches this simulated-processor configuration, as the paper does: the
// generator runs the same predictor so the mis-prediction points in the
// trace line up with the ones the engine discovers. Every consumer of a
// workload trace source (the root package, sweeps, multicore clusters and
// the evaluation tables) derives its configuration here.
func (c Config) TraceConfig() funcsim.TraceConfig {
	return funcsim.TraceConfig{
		Predictor:    c.Predictor,
		PerfectBP:    c.PerfectBP,
		WrongPathLen: c.WrongPathLen(),
	}
}

// MinorCyclesPerMajor returns K for the configured organization and width.
func (c Config) MinorCyclesPerMajor() int {
	return c.Organization.MinorCyclesPerMajor(c.Width)
}
