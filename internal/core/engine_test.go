package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/trace"
)

// alu returns an O record dst = s1 op s2.
func alu(dst, s1, s2 isa.Reg) trace.Record {
	return trace.Record{Kind: trace.KindOther, Class: trace.OpALU, Dest: dst, Src1: s1, Src2: s2}
}

func mul(dst, s1, s2 isa.Reg) trace.Record {
	return trace.Record{Kind: trace.KindOther, Class: trace.OpMul, Dest: dst, Src1: s1, Src2: s2}
}

func div(dst, s1, s2 isa.Reg) trace.Record {
	return trace.Record{Kind: trace.KindOther, Class: trace.OpDiv, Dest: dst, Src1: s1, Src2: s2}
}

func load(dst, base isa.Reg, addr uint32) trace.Record {
	return trace.Record{Kind: trace.KindMem, Dest: dst, Src1: base, Src2: isa.NoReg, Addr: addr}
}

func store(data, base isa.Reg, addr uint32) trace.Record {
	return trace.Record{Kind: trace.KindMem, Store: true, Dest: isa.NoReg, Src1: base, Src2: data, Addr: addr}
}

func branch(taken bool, target uint32) trace.Record {
	return trace.Record{Kind: trace.KindBranch, Ctrl: isa.CtrlCond, Taken: taken, Target: target,
		Dest: isa.NoReg, Src1: 1, Src2: isa.NoReg}
}

// indep returns n independent single-cycle ALU records.
func indep(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = alu(isa.Reg(2+i%8), isa.NoReg, isa.NoReg)
	}
	return recs
}

// run executes the records through a fresh engine and fails the test on
// error.
func run(t *testing.T, cfg Config, recs []trace.Record) Result {
	t.Helper()
	eng, err := New(cfg, trace.NewSliceSource(recs), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, res.Registry())
	}
	return res
}

func perfectCfg() Config {
	cfg := DefaultConfig()
	cfg.PerfectBP = true
	return cfg
}

func TestSingleInstructionLatency(t *testing.T) {
	// Fetch@0, dispatch@1, issue@2, writeback@3, commit@4: five cycles.
	res := run(t, perfectCfg(), indep(1))
	if res.Committed != 1 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if res.Cycles != 5 {
		t.Errorf("cycles = %d, want 5 (f/d/i/wb/c)", res.Cycles)
	}
}

func TestDependentChainThroughput(t *testing.T) {
	// r2 <- r2 chain: each op issues the cycle after its producer's
	// writeback; latency-1 chain retires one per cycle in steady state.
	const k = 20
	recs := make([]trace.Record, k)
	for i := range recs {
		recs[i] = alu(2, 2, isa.NoReg)
	}
	res := run(t, perfectCfg(), recs)
	if res.Committed != k {
		t.Fatalf("committed = %d", res.Committed)
	}
	if want := uint64(5 + k - 1); res.Cycles != want {
		t.Errorf("chain of %d: cycles = %d, want %d", k, res.Cycles, want)
	}
}

func TestMulDivChainLatencies(t *testing.T) {
	// mul (3 cycles) then dependent div (10 cycles), then dependent alu.
	recs := []trace.Record{
		mul(2, isa.NoReg, isa.NoReg),
		div(3, 2, isa.NoReg),
		alu(4, 3, isa.NoReg),
	}
	res := run(t, perfectCfg(), recs)
	// mul: f0 d1 i2 wb5; div: i5 wb15; alu: i15 wb16 c17 -> 18 cycles.
	if res.Cycles != 18 {
		t.Errorf("cycles = %d, want 18", res.Cycles)
	}
}

func TestIndependentALUThroughput(t *testing.T) {
	// Width-4 engine with 4 ALUs sustains ~4 IPC on independent ops.
	res := run(t, perfectCfg(), indep(400))
	if ipc := res.IPC(); ipc < 3.0 {
		t.Errorf("IPC = %.2f, want near 4", ipc)
	}
}

func TestWidthLimitsThroughput(t *testing.T) {
	cfg := perfectCfg()
	cfg.Width = 2
	cfg.Organization = sched.OrgImproved
	cfg.MemReadPorts = 1
	res := run(t, cfg, indep(400))
	if ipc := res.IPC(); ipc > 2.0 || ipc < 1.5 {
		t.Errorf("2-wide IPC = %.2f, want (1.5, 2.0]", ipc)
	}
}

func TestDivContentionSerializes(t *testing.T) {
	// One unpipelined divider: independent divs retire one per 10 cycles.
	const k = 8
	recs := make([]trace.Record, k)
	for i := range recs {
		recs[i] = div(isa.Reg(2+i), isa.NoReg, isa.NoReg)
	}
	res := run(t, perfectCfg(), recs)
	if res.Cycles < 10*(k-1) {
		t.Errorf("cycles = %d, want >= %d (divider serialization)", res.Cycles, 10*(k-1))
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A load from the address of an in-flight store forwards from the LSQ
	// and uses no read port.
	recs := []trace.Record{
		store(2, isa.NoReg, 0x2000),
		load(3, isa.NoReg, 0x2000),
	}
	res := run(t, perfectCfg(), recs)
	if res.LoadsForwarded != 1 {
		t.Errorf("forwarded = %d, want 1", res.LoadsForwarded)
	}
	if res.DCache.Reads != 0 {
		t.Errorf("forwarded load still read the D-cache (%d reads)", res.DCache.Reads)
	}
	if res.CommittedLoads != 1 || res.CommittedStores != 1 {
		t.Errorf("commit counts: %d loads, %d stores", res.CommittedLoads, res.CommittedStores)
	}
}

func sizedMem(store bool, size uint8, addr uint32) trace.Record {
	r := trace.Record{Kind: trace.KindMem, Store: store, Size: size, Addr: addr,
		Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}
	if store {
		r.Src2 = 2
	} else {
		r.Dest = 3
	}
	return r
}

func TestPartialOverlapBlocksForwarding(t *testing.T) {
	// A byte store inside the word a younger load reads: the store cannot
	// provide all four bytes, so the load must wait for the store to leave
	// the LSQ (commit) instead of forwarding.
	partial := []trace.Record{
		sizedMem(true, 1, 0x2001),  // sb touching byte 1
		sizedMem(false, 4, 0x2000), // lw over bytes 0..3
	}
	resPartial := run(t, perfectCfg(), partial)
	if resPartial.LoadsForwarded != 0 {
		t.Errorf("partially covered load forwarded (%d)", resPartial.LoadsForwarded)
	}
	if resPartial.DCache.Reads != 1 {
		t.Errorf("load should read memory after the store commits: %d reads", resPartial.DCache.Reads)
	}

	// Full coverage forwards: word store, byte load inside it.
	covered := []trace.Record{
		sizedMem(true, 4, 0x2000),
		sizedMem(false, 1, 0x2002),
	}
	resCovered := run(t, perfectCfg(), covered)
	if resCovered.LoadsForwarded != 1 {
		t.Errorf("covered byte load did not forward (%d)", resCovered.LoadsForwarded)
	}
	// The blocked case takes longer than the forwarded one.
	if resPartial.Cycles <= resCovered.Cycles {
		t.Errorf("partial overlap (%d cycles) not slower than forwarding (%d)",
			resPartial.Cycles, resCovered.Cycles)
	}
}

func TestDisjointSubWordAccessesIndependent(t *testing.T) {
	// A byte store at 0x2000 and a byte load at 0x2001 share a word but
	// not a byte: no dependence, the load proceeds immediately.
	recs := []trace.Record{
		sizedMem(true, 1, 0x2000),
		sizedMem(false, 1, 0x2001),
	}
	res := run(t, perfectCfg(), recs)
	if res.LoadsForwarded != 0 {
		t.Error("disjoint byte access forwarded")
	}
	if res.Cycles > 8 {
		t.Errorf("disjoint byte load delayed: %d cycles", res.Cycles)
	}
}

func TestLoadBlockedByUnknownStoreAddress(t *testing.T) {
	// The store's base register comes from a divide, so its address stays
	// unknown for ~10 cycles; the younger load (different address) must
	// wait for disambiguation (conservative Lsq_refresh).
	recs := []trace.Record{
		div(2, isa.NoReg, isa.NoReg), // r2 <- div (10 cycles)
		store(3, 2, 0x3000),          // address depends on r2
		load(4, isa.NoReg, 0x4000),   // independent address, still blocked
	}
	res := run(t, perfectCfg(), recs)
	// Without blocking, the load would commit by ~cycle 6; with the
	// conservative dependence it waits for the divide + store agen.
	if res.Cycles < 16 {
		t.Errorf("cycles = %d, want >= 16 (load waited on disambiguation)", res.Cycles)
	}
}

func TestLoadIndependenceAfterDisambiguation(t *testing.T) {
	// A known-address store does not delay an unrelated load.
	recs := []trace.Record{
		store(2, isa.NoReg, 0x3000),
		load(4, isa.NoReg, 0x4000),
		alu(5, 4, isa.NoReg),
	}
	res := run(t, perfectCfg(), recs)
	if res.Cycles > 12 {
		t.Errorf("cycles = %d; unrelated load was delayed", res.Cycles)
	}
}

func TestTakenBranchFetchBubble(t *testing.T) {
	// With perfect BP, each taken branch still ends the fetch cycle
	// ("fetching ... until a control flow bubble is encountered").
	var recs []trace.Record
	const k = 40
	for i := 0; i < k; i++ {
		recs = append(recs, branch(true, uint32(0x2000+16*i)))
	}
	res := run(t, perfectCfg(), recs)
	// One branch fetched per cycle at best: cycles >= k.
	if res.Cycles < k {
		t.Errorf("cycles = %d, want >= %d (taken-branch bubbles)", res.Cycles, k)
	}
	if res.CommittedBranches != k {
		t.Errorf("branches = %d", res.CommittedBranches)
	}
}

func TestNotTakenBranchesDoNotBubble(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, branch(false, 0x9000))
	}
	cfg := perfectCfg()
	res := run(t, cfg, recs)
	if ipc := res.IPC(); ipc < 2.5 {
		t.Errorf("not-taken branch IPC = %.2f, want near 4", ipc)
	}
}

// mispredictTrace builds: one taken branch (always mispredicted by a
// not-taken predictor) followed by a tagged wrong-path block of wpLen ALU
// records, then tail correct-path records.
func mispredictTrace(wpLen, tail int) []trace.Record {
	recs := []trace.Record{branch(true, 0x2000)}
	for i := 0; i < wpLen; i++ {
		r := alu(3, isa.NoReg, isa.NoReg)
		r.Tag = true
		recs = append(recs, r)
	}
	recs = append(recs, indep(tail)...)
	return recs
}

func notTakenCfg() Config {
	cfg := DefaultConfig()
	cfg.Predictor = bpred.Config{Dir: bpred.DirNotTaken, BTBEntries: 512, BTBAssoc: 1, RASSize: 16}
	return cfg
}

func TestMispredictionWithWrongPathBlock(t *testing.T) {
	res := run(t, notTakenCfg(), mispredictTrace(12, 20))
	if res.MispredDetected != 1 || res.MispredResolved != 1 {
		t.Fatalf("mispredicts detected/resolved = %d/%d, want 1/1\n%s",
			res.MispredDetected, res.MispredResolved, res.Registry())
	}
	if res.WPBlocksEntered != 1 {
		t.Errorf("blocks entered = %d, want 1", res.WPBlocksEntered)
	}
	if res.WrongPathFetched == 0 {
		t.Error("no wrong-path instructions fetched")
	}
	if res.WrongPathFetched+res.WPRecordsDiscarded != 12 {
		t.Errorf("fetched+discarded = %d+%d, want 12",
			res.WrongPathFetched, res.WPRecordsDiscarded)
	}
	// Only correct-path instructions commit: 1 branch + 20 tail.
	if res.Committed != 21 {
		t.Errorf("committed = %d, want 21", res.Committed)
	}
	if res.CommittedBranches != 1 {
		t.Errorf("branches = %d, want 1", res.CommittedBranches)
	}
}

func TestMispredictionPenaltyTiming(t *testing.T) {
	// Branch alone: f0 d1 i2 wb3, recovery at commit (cycle 4) sets fetch
	// to resume at 4+1+penalty = 8; EOF is discovered there, so the run
	// takes 9 cycles (0..8).
	base := run(t, notTakenCfg(), mispredictTrace(0, 0))
	if base.Cycles != 9 {
		t.Errorf("base cycles = %d, want 9", base.Cycles)
	}
	if base.MispredStarved != 1 {
		t.Errorf("starved = %d, want 1 (no wrong-path block)", base.MispredStarved)
	}
	// With one tail instruction: fetched at 8 after the 3-cycle penalty,
	// then dispatch 9, issue 10, writeback 11, commit 12 -> 13 cycles.
	withTail := run(t, notTakenCfg(), mispredictTrace(0, 1))
	if withTail.Cycles != 13 {
		t.Errorf("tail cycles = %d, want 13", withTail.Cycles)
	}
}

func TestCorrectPredictionSkipsForeignBlock(t *testing.T) {
	// A taken-predicting engine gets the branch right; the tagged block in
	// the trace must be discarded unfetched.
	cfg := DefaultConfig()
	cfg.Predictor = bpred.Config{Dir: bpred.DirTaken, BTBEntries: 512, BTBAssoc: 1, RASSize: 16}
	res := run(t, cfg, mispredictTrace(12, 20))
	if res.MispredDetected != 0 {
		t.Errorf("mispredicts = %d, want 0", res.MispredDetected)
	}
	if res.WPBlocksSkipped != 1 || res.WPRecordsDiscarded != 12 {
		t.Errorf("skipped blocks/records = %d/%d, want 1/12",
			res.WPBlocksSkipped, res.WPRecordsDiscarded)
	}
	if res.WrongPathFetched != 0 {
		t.Errorf("wrong-path fetched = %d, want 0", res.WrongPathFetched)
	}
	if res.Committed != 21 {
		t.Errorf("committed = %d, want 21", res.Committed)
	}
}

func TestPerfectBPSkipsBlocks(t *testing.T) {
	res := run(t, perfectCfg(), mispredictTrace(8, 10))
	if res.WrongPathFetched != 0 || res.MispredResolved != 0 {
		t.Errorf("perfect BP fetched %d wrong-path, resolved %d", res.WrongPathFetched, res.MispredResolved)
	}
	if res.Committed != 11 {
		t.Errorf("committed = %d, want 11", res.Committed)
	}
}

func TestMisfetchOnAliasedBTB(t *testing.T) {
	// Two direct jumps whose PCs share a BTB set and partial tag: the
	// first trains the BTB; the second falsely hits and misfetches.
	cfg := DefaultConfig()
	cfg.Predictor.BTBTagBits = 2
	// 0x1000 and 0x3000 alias with 9 index bits + 2 tag bits (distance
	// 2^13 bytes). PC flow: jump@0x1000 trains the BTB, fillers at 0x2000
	// give it time to commit, jump@0x2078 lands exactly on the aliasing
	// PC 0x3000, whose jump then false-hits with target 0x2000.
	var recs []trace.Record
	recs = append(recs, trace.Record{Kind: trace.KindBranch, Ctrl: isa.CtrlJump, Taken: true,
		Target: 0x2000, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}) // @0x1000, trains BTB
	recs = append(recs, indep(30)...) // fillers @0x2000.. keep the jump far enough to commit
	recs = append(recs, trace.Record{Kind: trace.KindBranch, Ctrl: isa.CtrlJump, Taken: true,
		Target: 0x3000, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}) // @0x2078 -> 0x3000
	recs = append(recs, trace.Record{Kind: trace.KindBranch, Ctrl: isa.CtrlJump, Taken: true,
		Target: 0x6000, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg}) // @0x3000: aliases 0x1000, BTB says 0x2000 -> misfetch
	recs = append(recs, indep(4)...) // @0x6000

	res := run(t, cfg, recs)
	if res.Misfetches != 1 {
		t.Errorf("misfetches = %d, want 1\n%s", res.Misfetches, res.Registry())
	}
	if res.MispredResolved != 0 {
		t.Errorf("misfetch escalated to misprediction (%d)", res.MispredResolved)
	}
	if res.Committed != uint64(len(recs)) {
		t.Errorf("committed = %d, want %d", res.Committed, len(recs))
	}
}

func TestOrganizationTimingEquivalence(t *testing.T) {
	// §IV: the three internal organizations simulate identical processor
	// timing (with <= N-1 memory ports); they differ only in ReSim's own
	// minor-cycle count.
	recs := randomTrace(4000, 7)
	var cycles [3]uint64
	for i, org := range []sched.Organization{sched.OrgSimple, sched.OrgImproved, sched.OrgOptimized} {
		cfg := DefaultConfig()
		cfg.Organization = org
		cfg.MemReadPorts = 2 // <= N-1 for width 4
		res := run(t, cfg, recs)
		cycles[i] = res.Cycles
		if res.Committed == 0 {
			t.Fatalf("%v committed nothing", org)
		}
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Errorf("organizations disagree on simulated cycles: simple=%d improved=%d optimized=%d",
			cycles[0], cycles[1], cycles[2])
	}
}

func TestDeterminism(t *testing.T) {
	recs := randomTrace(3000, 11)
	a := run(t, DefaultConfig(), recs)
	b := run(t, DefaultConfig(), recs)
	if a.Counters != b.Counters {
		t.Errorf("two runs disagree:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

func TestCacheConfigSlowsSimulation(t *testing.T) {
	recs := randomTrace(3000, 13)
	fast := run(t, perfectCfg(), recs)

	cfg := perfectCfg()
	cfg.ICache = cache.New(cache.Config{Name: "il1", SizeBytes: 1 << 10, Assoc: 2,
		BlockBytes: 64, HitLatency: 1, MissLatency: 20})
	cfg.DCache = cache.New(cache.Config{Name: "dl1", SizeBytes: 1 << 10, Assoc: 2,
		BlockBytes: 64, HitLatency: 1, MissLatency: 20})
	slow := run(t, cfg, recs)
	if slow.Cycles <= fast.Cycles {
		t.Errorf("tiny caches did not slow simulation: %d <= %d", slow.Cycles, fast.Cycles)
	}
	if slow.DCache.Misses() == 0 {
		t.Error("no D-cache misses recorded")
	}
}

func TestMaxCyclesCapsRun(t *testing.T) {
	cfg := perfectCfg()
	cfg.MaxCycles = 10
	eng, err := New(cfg, trace.NewSliceSource(indep(100000)), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 10 {
		t.Errorf("cycles = %d, want 10", res.Cycles)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Width = 0
	if _, err := New(bad, trace.NewSliceSource(nil), 0); err == nil {
		t.Error("width 0 accepted")
	}
	// Optimized organization requires <= N-1 memory read ports.
	bad = DefaultConfig()
	bad.MemReadPorts = 4
	if err := bad.Validate(); err == nil {
		t.Error("optimized organization with N read ports accepted")
	}
	ok := bad
	ok.Organization = sched.OrgImproved
	if err := ok.Validate(); err != nil {
		t.Errorf("improved organization with N read ports rejected: %v", err)
	}
	if DefaultConfig().WrongPathLen() != 20 {
		t.Errorf("WrongPathLen = %d, want RB+IFQ = 20", DefaultConfig().WrongPathLen())
	}
	if DefaultConfig().MinorCyclesPerMajor() != 7 {
		t.Errorf("K = %d, want 7", DefaultConfig().MinorCyclesPerMajor())
	}
	if FASTComparisonConfig().MinorCyclesPerMajor() != 6 {
		t.Errorf("FAST config K = %d, want 6", FASTComparisonConfig().MinorCyclesPerMajor())
	}
	if err := FASTComparisonConfig().Validate(); err != nil {
		t.Errorf("FAST config invalid: %v", err)
	}
}

func TestResultReportMentionsKeyStats(t *testing.T) {
	res := run(t, notTakenCfg(), mispredictTrace(8, 30))
	rep := res.Registry().String()
	for _, want := range []string{"sim_num_insn", "sim_IPC", "bpred_mispred_resolved", "RB_occ_avg"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestOccupancyTracked(t *testing.T) {
	res := run(t, perfectCfg(), indep(500))
	if res.RB.Mean() <= 0 {
		t.Error("RB occupancy not sampled")
	}
	if res.RB.Mean() > float64(DefaultConfig().RBSize) {
		t.Error("RB occupancy exceeds capacity")
	}
}

// randomTrace generates a well-formed random trace: consistent branch
// flow, wrong-path blocks after a subset of taken branches, plausible mix.
func randomTrace(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []trace.Record
	reg := func() isa.Reg { return isa.Reg(1 + rng.Intn(20)) }
	for len(recs) < n {
		switch p := rng.Float64(); {
		case p < 0.50:
			recs = append(recs, alu(reg(), reg(), reg()))
		case p < 0.55:
			recs = append(recs, mul(reg(), reg(), reg()))
		case p < 0.57:
			recs = append(recs, div(reg(), reg(), reg()))
		case p < 0.75:
			recs = append(recs, load(reg(), reg(), uint32(rng.Intn(1<<16))&^3))
		case p < 0.85:
			recs = append(recs, store(reg(), reg(), uint32(rng.Intn(1<<16))&^3))
		default:
			taken := rng.Intn(3) > 0
			b := branch(taken, uint32(0x1000+4*rng.Intn(1<<12)))
			b.Src1 = reg()
			recs = append(recs, b)
			if taken && rng.Intn(4) == 0 {
				// Wrong-path block.
				for w, lim := 0, 4+rng.Intn(16); w < lim; w++ {
					r := alu(reg(), reg(), reg())
					r.Tag = true
					recs = append(recs, r)
				}
			}
		}
	}
	return recs
}
