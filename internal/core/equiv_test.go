// Randomized engine-equivalence harness: the regression net under the
// event-aware engine refactor. Across dozens of seeded random
// configurations (width, queue sizes, FU mixes, predictor styles, cache
// hierarchies, organizations) and seeded synthetic workloads, the full
// Result — every counter, both cache stat blocks and all three occupancy
// accumulators — must stay byte-identical to golden fixtures captured from
// the pre-refactor scan-based engine. Regenerate deliberately with
//
//	go test ./internal/core -run TestRandomizedEquivalence -update-equiv
//
// but never as part of a change that intends to preserve statistics: the
// whole point of the file is that a silent statistics drift fails loudly.
package core_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/workload"
)

var updateEquiv = flag.Bool("update-equiv", false, "rewrite testdata/equiv_golden.json from the current engine")

const equivGoldenPath = "testdata/equiv_golden.json"

// equivStartPC matches workload.StreamProfile's synthetic code base.
const equivStartPC = 0x0000_1000

// equivSnapshot is the byte-comparable projection of a core.Result: every
// statistic the engine accumulates, excluding only the Config echo (which
// carries live cache models and is not a statistic).
type equivSnapshot struct {
	Counters core.Counters   `json:"counters"`
	ICache   cache.Stats     `json:"icache"`
	DCache   cache.Stats     `json:"dcache"`
	IFQ      stats.Occupancy `json:"ifq"`
	RB       stats.Occupancy `json:"rb"`
	LSQ      stats.Occupancy `json:"lsq"`
}

func snapshotOf(res core.Result) equivSnapshot {
	return equivSnapshot{
		Counters: res.Counters,
		ICache:   res.ICache, DCache: res.DCache,
		IFQ: res.IFQ, RB: res.RB, LSQ: res.LSQ,
	}
}

// equivCase is one (configuration, workload) pair. Record streams are
// pre-materialized so both the fixture generator and the verifier consume
// the identical input regardless of any trace-generation changes. mkcfg
// builds a fresh Config — with fresh, cold cache models — on every call, so
// each engine run starts from virgin state.
type equivCase struct {
	name  string
	mkcfg func() core.Config
	recs  []trace.Record
}

// equivCaseCount is the size of the randomized sweep. Changing it (or any
// generation code below) requires regenerating the fixtures.
const equivCaseCount = 50

func equivCases(t testing.TB) []equivCase {
	var cases []equivCase
	for i := 0; i < equivCaseCount; i++ {
		seed := 0xE0_0000 + int64(i)
		// Replayable: every mkcfg call re-draws the identical configuration
		// (with fresh cache models) from the case seed.
		mkcfg := func() core.Config { return randomEquivConfig(rand.New(rand.NewSource(seed))) }
		rng := rand.New(rand.NewSource(seed))
		cfg := randomEquivConfig(rng) // advance rng past the config draws
		recs := randomEquivStream(t, rng, cfg, 0x51_0000+int64(i))
		cases = append(cases, equivCase{name: fmt.Sprintf("rand-%02d", i), mkcfg: mkcfg, recs: recs})
	}
	cases = append(cases, fastForwardCases(t)...)
	return cases
}

// randomEquivConfig draws a valid engine configuration covering the design
// space: widths 1-8, all three organizations, every predictor style, plain
// and hierarchical caches, mixed FU pools and penalties.
func randomEquivConfig(rng *rand.Rand) core.Config {
	cfg := core.DefaultConfig()
	cfg.Width = 1 + rng.Intn(8)
	cfg.IFQSize = 1 + rng.Intn(12)
	cfg.RBSize = 2 + rng.Intn(47)
	cfg.LSQSize = 2 + rng.Intn(23)

	var fus uarch.FUConfig
	fus[uarch.FUALU] = uarch.FUSpec{Count: 1 + rng.Intn(4), Latency: 1 + rng.Intn(2), Pipelined: true}
	fus[uarch.FUMult] = uarch.FUSpec{Count: 1 + rng.Intn(2), Latency: 2 + rng.Intn(3), Pipelined: rng.Intn(2) == 0}
	fus[uarch.FUDiv] = uarch.FUSpec{Count: 1, Latency: 4 + rng.Intn(9), Pipelined: false}
	cfg.FUs = fus

	cfg.MisfetchPenalty = rng.Intn(6)
	cfg.MispredPenalty = rng.Intn(9)
	orgs := []sched.Organization{sched.OrgSimple, sched.OrgImproved, sched.OrgOptimized}
	cfg.Organization = orgs[rng.Intn(len(orgs))]
	maxPorts := cfg.Organization.MaxMemPorts(cfg.Width)
	if maxPorts < 1 {
		// A width-1 Optimized machine has no load-capable slot at all;
		// fall back to the Improved organization, as the paper's tooling does.
		cfg.Organization = sched.OrgImproved
		maxPorts = cfg.Organization.MaxMemPorts(cfg.Width)
	}
	if maxPorts > 3 {
		maxPorts = 3
	}
	cfg.MemReadPorts = 1 + rng.Intn(maxPorts)
	cfg.MemWritePorts = 1 + rng.Intn(2)

	switch rng.Intn(5) {
	case 0:
		cfg.PerfectBP = true
	case 1:
		// Paper default two-level.
	case 2:
		p := bpred.Default()
		p.Dir = bpred.DirBimodal
		p.BimodSize = 1 << (6 + rng.Intn(4))
		cfg.Predictor = p
	case 3:
		p := bpred.Default()
		p.XORIndex = true
		p.BTBTagBits = 6 + rng.Intn(6)
		cfg.Predictor = p
	case 4:
		p := bpred.Default()
		p.Dir = bpred.DirCombined
		p.MetaSize = 1 << (6 + rng.Intn(4))
		p.BimodSize = 1 << (6 + rng.Intn(4))
		cfg.Predictor = p
	}

	smallCache := func(name string, rng *rand.Rand) cache.Config {
		block := 16 << rng.Intn(3) // 16/32/64
		assoc := 1 << rng.Intn(3)  // 1/2/4
		sets := 1 << (3 + rng.Intn(4))
		return cache.Config{
			Name: name, SizeBytes: sets * assoc * block, Assoc: assoc, BlockBytes: block,
			HitLatency: 1, MissLatency: 5 + rng.Intn(40),
		}
	}
	switch rng.Intn(4) {
	case 0:
		// Perfect memory (nil models).
	case 1:
		cfg.ICache = cache.NewPerfect(1 + rng.Intn(2))
		cfg.DCache = cache.NewPerfect(1 + rng.Intn(3))
	case 2:
		cfg.ICache = cache.New(smallCache("il1", rng))
		cfg.DCache = cache.New(smallCache("dl1", rng))
	case 3:
		l2 := smallCache("l2", rng)
		l2.SizeBytes *= 8
		l2.MissLatency = 40 + rng.Intn(160)
		h, err := cache.NewHierarchy(smallCache("dl1", rng), cache.New(l2))
		if err != nil {
			panic(err)
		}
		cfg.DCache = h
		cfg.ICache = cache.New(smallCache("il1", rng))
	}

	if rng.Intn(5) == 0 {
		cfg.MaxCycles = uint64(1500 + rng.Intn(4000))
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("generated invalid config: %v", err))
	}
	return cfg
}

// randomEquivStream synthesizes the case's record stream with knobs drawn
// from rng; the stream itself is seeded separately so configuration and
// stimulus vary independently.
func randomEquivStream(t testing.TB, rng *rand.Rand, cfg core.Config, seed int64) []trace.Record {
	sp := workload.DefaultStreamProfile(seed)
	sp.MulFrac = rng.Float64() * 0.08
	sp.DivFrac = rng.Float64() * 0.03
	sp.LoadFrac = 0.05 + rng.Float64()*0.30
	sp.StoreFrac = 0.03 + rng.Float64()*0.20
	sp.BranchFrac = 0.05 + rng.Float64()*0.25
	sp.TakenProb = rng.Float64()
	sp.MispredProb = rng.Float64() * 0.25
	sp.WrongPathLen = rng.Intn(cfg.WrongPathLen() + 4)
	sp.DepWindow = 1 + rng.Intn(24)
	sp.MemRange = 1 << (10 + rng.Intn(8))
	recs, err := sp.Records(4000 + rng.Intn(4000))
	if err != nil {
		t.Fatalf("stream profile: %v", err)
	}
	return recs
}

// fastForwardCases are handcrafted idle-heavy scenarios: tiny fetch queues
// in front of long miss latencies, starved wrong-path fetch, and a
// MaxCycles budget expiring inside an idle region — the paths the
// idle-cycle fast-forward must take without disturbing a single counter.
func fastForwardCases(t testing.TB) []equivCase {
	var cases []equivCase
	tiny := func(name string, miss int) cache.Model {
		return cache.New(cache.Config{Name: name, SizeBytes: 512, Assoc: 1, BlockBytes: 32,
			HitLatency: 1, MissLatency: miss})
	}
	stream := func(seed int64, mut func(*workload.StreamProfile)) []trace.Record {
		sp := workload.DefaultStreamProfile(seed)
		if mut != nil {
			mut(&sp)
		}
		recs, err := sp.Records(5000)
		if err != nil {
			t.Fatalf("stream profile: %v", err)
		}
		return recs
	}

	cases = append(cases, equivCase{name: "ff-icache-miss",
		mkcfg: func() core.Config {
			cfg := core.DefaultConfig()
			cfg.IFQSize = 1
			cfg.ICache = tiny("il1", 200)
			cfg.DCache = tiny("dl1", 300)
			return cfg
		},
		recs: stream(0xFF01, func(sp *workload.StreamProfile) { sp.CodeRange = 1 << 18 })})

	cases = append(cases, equivCase{name: "ff-starved-wrongpath",
		mkcfg: func() core.Config {
			cfg := core.DefaultConfig()
			cfg.MispredPenalty = 8
			return cfg
		},
		recs: stream(0xFF02, func(sp *workload.StreamProfile) {
			sp.MispredProb = 0.3
			sp.WrongPathLen = 0 // mispredicts with no tagged block: fetch starves
		})})

	cases = append(cases, equivCase{name: "ff-maxcycles-idle",
		mkcfg: func() core.Config {
			cfg := core.DefaultConfig()
			cfg.IFQSize = 2
			cfg.ICache = tiny("il1", 500)
			cfg.MaxCycles = 1234 // budget expires mid-idle-region
			return cfg
		},
		recs: stream(0xFF03, func(sp *workload.StreamProfile) { sp.CodeRange = 1 << 18 })})

	cases = append(cases, equivCase{name: "ff-dcache-drain",
		mkcfg: func() core.Config {
			cfg := core.DefaultConfig()
			cfg.IFQSize = 1
			cfg.DCache = tiny("dl1", 400)
			return cfg
		},
		recs: stream(0xFF04, func(sp *workload.StreamProfile) {
			sp.LoadFrac, sp.StoreFrac = 0.45, 0.15
			sp.MemRange = 1 << 20
		})})
	return cases
}

func runEquivCase(t *testing.T, c equivCase) equivSnapshot {
	t.Helper()
	eng, err := core.New(c.mkcfg(), trace.NewSliceSource(c.recs), equivStartPC)
	if err != nil {
		t.Fatalf("%s: build engine: %v", c.name, err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", c.name, err)
	}
	return snapshotOf(res)
}

// TestRandomizedEquivalence pins the refactored engine's complete statistics
// against pre-refactor golden fixtures, case by case, byte for byte. Each
// case additionally cross-checks Engine.Run (the event-aware fast path with
// idle-cycle fast-forward) against a manual per-Cycle drive of a second
// engine over the same stream: the two stepping disciplines must agree
// exactly, independent of the fixtures.
func TestRandomizedEquivalence(t *testing.T) {
	cases := equivCases(t)

	if *updateEquiv {
		golden := make(map[string]json.RawMessage, len(cases))
		for _, c := range cases {
			snap := runEquivCase(t, c)
			data, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			golden[c.name] = data
		}
		out, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(equivGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(equivGoldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cases to %s", len(golden), equivGoldenPath)
		return
	}

	raw, err := os.ReadFile(equivGoldenPath)
	if err != nil {
		t.Fatalf("read fixtures (regenerate with -update-equiv): %v", err)
	}
	var golden map[string]json.RawMessage
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parse fixtures: %v", err)
	}
	if len(golden) != len(cases) {
		t.Fatalf("fixtures hold %d cases, harness generates %d (regenerate with -update-equiv)", len(golden), len(cases))
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, ok := golden[c.name]
			if !ok {
				t.Fatalf("no fixture for %s (regenerate with -update-equiv)", c.name)
			}
			snap := runEquivCase(t, c)
			got, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			// MarshalIndent re-indented the stored RawMessage; compare compact.
			var wantBuf bytes.Buffer
			if err := json.Compact(&wantBuf, want); err != nil {
				t.Fatal(err)
			}
			want = wantBuf.Bytes()
			if !bytes.Equal(got, []byte(want)) {
				t.Errorf("statistics drifted from pre-refactor fixture\n got: %s\nwant: %s", got, want)
			}

			// Fast path (Run, with fast-forward) vs per-cycle stepping.
			cfg := c.mkcfg()
			eng, err := core.New(cfg, trace.NewSliceSource(c.recs), equivStartPC)
			if err != nil {
				t.Fatal(err)
			}
			var cycles uint64
			for !eng.Done() && !(cfg.MaxCycles != 0 && cycles >= cfg.MaxCycles) {
				if err := eng.Cycle(); err != nil {
					t.Fatalf("cycle %d: %v", cycles, err)
				}
				cycles++
			}
			stepped, err := json.Marshal(snapshotOf(eng.Result()))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, stepped) {
				t.Errorf("Run and per-Cycle stepping disagree\n  run: %s\n step: %s", got, stepped)
			}
		})
	}
}
