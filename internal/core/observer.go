package core

// Progress is a periodic snapshot of a running simulation, delivered to an
// Observer. For single-engine runs Core is 0; a sweep reports the completed
// point's index, and a lockstep cluster reports -1 (cluster aggregate).
type Progress struct {
	Core      int
	Cycles    uint64
	Committed uint64
	IPC       float64
	// Done and Total report sweep-level completion: after this callback,
	// Done of Total design points have finished. Sweeps (local, loopback
	// and remote) populate both; single-engine runs and clusters leave
	// them zero. They are what a coordinator forwards to clients so a
	// dashboard can render "completed points / total" while shards are
	// still in flight.
	Done  int
	Total int
	// Final marks the last callback of a successful run (delivered once,
	// after the simulation drains or hits its cycle budget). Cancelled or
	// errored runs instead deliver one last non-Final snapshot before
	// returning, so observers always see the state the returned statistics
	// describe and never hang on a stale interval.
	Final bool
}

// Observer receives periodic progress callbacks from long-running
// simulations — the observation hook that lets sweeps and services report
// progress while a run is in flight. It generalizes the per-instruction
// PipeTracer hook to coarse per-interval statistics: callbacks arrive from
// a single goroutine per run at absolute multiples of
// Config.ObserverInterval (cycle N fires the callback for boundary N when
// N % interval == 0), NOT at intervals re-anchored to wherever the previous
// callback happened to land — so the callback cycle sequence is
// deterministic across runs and, for a run resumed from a checkpoint taken
// at a boundary, identical to the uninterrupted run's tail (see Drive).
// Implementations must be fast; they execute on the simulation path.
type Observer interface {
	Progress(Progress)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(Progress)

// Progress implements Observer.
func (f ObserverFunc) Progress(p Progress) { f(p) }
