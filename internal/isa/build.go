package isa

// Constructors for assembling programs in Go code (used by the synthetic
// workload generator and by tests). Each returns a fully populated Inst;
// call Word() to obtain the encoding.

// R builds an R-type instruction dst = src1 <op> src2.
func R(op Op, dst, src1, src2 Reg) Inst { return Inst{Op: op, A: dst, B: src1, C: src2} }

// I builds an I-type ALU instruction dst = src <op> imm.
func I(op Op, dst, src Reg, imm int32) Inst { return Inst{Op: op, A: dst, B: src, Imm: imm} }

// Add returns add dst, a, b.
func Add(dst, a, b Reg) Inst { return R(OpAdd, dst, a, b) }

// Sub returns sub dst, a, b.
func Sub(dst, a, b Reg) Inst { return R(OpSub, dst, a, b) }

// Mul returns mul dst, a, b.
func Mul(dst, a, b Reg) Inst { return R(OpMul, dst, a, b) }

// Div returns div dst, a, b.
func Div(dst, a, b Reg) Inst { return R(OpDiv, dst, a, b) }

// Addi returns addi dst, src, imm.
func Addi(dst, src Reg, imm int32) Inst { return I(OpAddi, dst, src, imm) }

// Li loads a 32-bit constant using lui+ori when needed; it returns one or
// two instructions.
func Li(dst Reg, v uint32) []Inst {
	hi, lo := v>>16, v&0xFFFF
	switch {
	case hi == 0:
		return []Inst{I(OpOri, dst, RegZero, int32(lo))}
	case lo == 0:
		return []Inst{I(OpLui, dst, RegZero, int32(hi))}
	default:
		return []Inst{I(OpLui, dst, RegZero, int32(hi)), I(OpOri, dst, dst, int32(lo))}
	}
}

// Lw returns lw dst, off(base).
func Lw(dst, base Reg, off int32) Inst { return Inst{Op: OpLw, A: dst, B: base, Imm: off} }

// Sw returns sw data, off(base).
func Sw(data, base Reg, off int32) Inst { return Inst{Op: OpSw, A: data, B: base, Imm: off} }

// Lb returns lb dst, off(base) (sign-extending byte load).
func Lb(dst, base Reg, off int32) Inst { return Inst{Op: OpLb, A: dst, B: base, Imm: off} }

// Lbu returns lbu dst, off(base) (zero-extending byte load).
func Lbu(dst, base Reg, off int32) Inst { return Inst{Op: OpLbu, A: dst, B: base, Imm: off} }

// Lh returns lh dst, off(base) (sign-extending halfword load).
func Lh(dst, base Reg, off int32) Inst { return Inst{Op: OpLh, A: dst, B: base, Imm: off} }

// Lhu returns lhu dst, off(base) (zero-extending halfword load).
func Lhu(dst, base Reg, off int32) Inst { return Inst{Op: OpLhu, A: dst, B: base, Imm: off} }

// Sb returns sb data, off(base).
func Sb(data, base Reg, off int32) Inst { return Inst{Op: OpSb, A: data, B: base, Imm: off} }

// Sh returns sh data, off(base).
func Sh(data, base Reg, off int32) Inst { return Inst{Op: OpSh, A: data, B: base, Imm: off} }

// Beq returns beq a, b, off (off in words relative to pc+4).
func Beq(a, b Reg, off int32) Inst { return Inst{Op: OpBeq, A: a, B: b, Imm: off} }

// Bne returns bne a, b, off.
func Bne(a, b Reg, off int32) Inst { return Inst{Op: OpBne, A: a, B: b, Imm: off} }

// Blez returns blez a, off.
func Blez(a Reg, off int32) Inst { return Inst{Op: OpBlez, A: a, Imm: off} }

// Bgtz returns bgtz a, off.
func Bgtz(a Reg, off int32) Inst { return Inst{Op: OpBgtz, A: a, Imm: off} }

// J returns j target (absolute byte address, word aligned).
func J(target uint32) Inst { return Inst{Op: OpJ, Target: target} }

// Jal returns jal target.
func Jal(target uint32) Inst { return Inst{Op: OpJal, Target: target} }

// Jr returns jr src (jr ra is a return).
func Jr(src Reg) Inst { return Inst{Op: OpJr, B: src} }

// Jalr returns jalr link, src.
func Jalr(link, src Reg) Inst { return Inst{Op: OpJalr, A: link, B: src} }

// Nop returns a nop.
func Nop() Inst { return Inst{Op: OpNop} }

// Halt returns the program-terminating instruction.
func Halt() Inst { return Inst{Op: OpHalt} }
