// Package isa defines the MIPS/PISA-like 32-bit instruction set used by the
// ReSim reproduction. SimpleScalar's PISA is a MIPS derivative; ReSim itself
// is almost ISA independent because it consumes pre-decoded traces (paper
// §V.A), but the trace *generator* (a SimpleScalar-style functional
// simulator, internal/funcsim) needs a concrete ISA to execute. The paper's
// evaluation is SPECINT-only with an integer FU mix (4×ALU, 1×MUL, 1×DIV),
// so the ISA is integer-only.
//
// Encoding (32-bit, fixed width, big-field layout):
//
//	R-type: op(6) | a(5) | b(5) | c(5) | unused(11)
//	I-type: op(6) | a(5) | b(5) | imm(16, sign-extended unless noted)
//	J-type: op(6) | target(26, word index)
//
// Field roles depend on the opcode and are documented per opcode below.
package isa

import "fmt"

// Reg names an architectural register, r0..r31. r0 reads as zero and writes
// to it are discarded.
type Reg uint8

// Conventional register assignments (MIPS o32-like).
const (
	RegZero Reg = 0  // hardwired zero
	RegAT   Reg = 1  // assembler temporary
	RegV0   Reg = 2  // result
	RegA0   Reg = 4  // first argument
	RegGP   Reg = 28 // global pointer
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address (link register)

	// NumRegs is the architectural register count.
	NumRegs = 32
)

// NoReg marks an absent register operand in decoded instruction metadata.
const NoReg Reg = 0xFF

// Op enumerates opcodes. The zero value is NOP so that zeroed memory decodes
// to harmless instructions.
type Op uint8

// Opcode space. Field roles: for R-type ALU ops a=dest, b=src1, c=src2.
// For I-type ALU ops a=dest, b=src1. LW: a=dest, b=base. SW: a=data, b=base.
// BEQ/BNE: a,b compared, imm is a word offset relative to pc+4. BLEZ/BGTZ:
// a compared against zero. JR: b=target register. JALR: a=link dest,
// b=target register.
const (
	OpNop Op = iota
	// R-type integer ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSlt
	OpSltu
	OpSll
	OpSrl
	OpSra
	// R-type long-latency integer.
	OpMul
	OpDiv
	// I-type ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpLui
	// Memory. Sub-word variants mirror PISA/MIPS: lb/lh sign-extend,
	// lbu/lhu zero-extend.
	OpLw
	OpSw
	OpLb
	OpLbu
	OpLh
	OpLhu
	OpSb
	OpSh
	// Control flow.
	OpBeq
	OpBne
	OpBlez
	OpBgtz
	OpJ
	OpJal
	OpJr
	OpJalr
	// Program termination (syscall-exit stand-in).
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpNor: "nor", OpSlt: "slt", OpSltu: "sltu", OpSll: "sll",
	OpSrl: "srl", OpSra: "sra", OpMul: "mul", OpDiv: "div", OpAddi: "addi",
	OpAndi: "andi", OpOri: "ori", OpXori: "xori", OpSlti: "slti",
	OpLui: "lui", OpLw: "lw", OpSw: "sw", OpLb: "lb", OpLbu: "lbu",
	OpLh: "lh", OpLhu: "lhu", OpSb: "sb", OpSh: "sh",
	OpBeq: "beq", OpBne: "bne",
	OpBlez: "blez", OpBgtz: "bgtz", OpJ: "j", OpJal: "jal", OpJr: "jr",
	OpJalr: "jalr", OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o names a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Class partitions opcodes by the resource they exercise in the simulated
// pipeline; it maps one-to-one onto the trace record formats (O, M, B).
type Class uint8

// Instruction classes.
const (
	ClassALU   Class = iota // single-cycle integer ALU (O record)
	ClassMul                // pipelined multiplier, latency 3 (O record)
	ClassDiv                // unpipelined divider, latency 10 (O record)
	ClassLoad               // memory read (M record)
	ClassStore              // memory write (M record)
	ClassCtrl               // control flow (B record)
)

var classNames = [...]string{"alu", "mul", "div", "load", "store", "ctrl"}

// String returns a short class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// CtrlKind refines control-flow instructions the way ReSim's fetch stage and
// branch predictor need (direct targets resolve at fetch, indirect targets
// at execute, returns use the RAS).
type CtrlKind uint8

// Control-flow kinds.
const (
	CtrlNone     CtrlKind = iota
	CtrlCond              // direct conditional branch
	CtrlJump              // direct unconditional jump
	CtrlCall              // direct call (writes link register)
	CtrlRet               // return via jr ra
	CtrlIndirect          // indirect jump via register (not ra)
	CtrlIndCall           // indirect call (jalr)
)

var ctrlNames = [...]string{"none", "cond", "jump", "call", "ret", "ijump", "icall"}

// String returns a short control-kind name.
func (k CtrlKind) String() string {
	if int(k) < len(ctrlNames) {
		return ctrlNames[k]
	}
	return fmt.Sprintf("ctrl(%d)", uint8(k))
}

// Direct reports whether the control target is encoded in the instruction
// (resolvable during fetch's target resolution).
func (k CtrlKind) Direct() bool { return k == CtrlCond || k == CtrlJump || k == CtrlCall }

// Inst is a decoded instruction.
type Inst struct {
	Op     Op
	A      Reg   // field a (role depends on Op)
	B      Reg   // field b
	C      Reg   // field c (R-type only)
	Imm    int32 // sign-extended 16-bit immediate (I-type)
	Target uint32
}

// Word assembles the instruction into its 32-bit encoding.
func (in Inst) Word() uint32 {
	op := uint32(in.Op) & 0x3F
	switch in.Op {
	case OpJ, OpJal:
		return op<<26 | (in.Target >> 2 & 0x03FFFFFF)
	default:
		w := op<<26 | uint32(in.A&31)<<21 | uint32(in.B&31)<<16
		if in.IsIType() {
			return w | uint32(uint16(in.Imm))
		}
		return w | uint32(in.C&31)<<11
	}
}

// Decode expands a 32-bit encoding into an Inst. Unknown opcodes decode as
// NOP; the functional simulator treats them as no-ops, mirroring
// SimpleScalar's tolerance of unmodeled opcodes in wrong-path fetch.
func Decode(word uint32, pc uint32) Inst {
	op := Op(word >> 26 & 0x3F)
	if !op.Valid() {
		return Inst{Op: OpNop}
	}
	in := Inst{Op: op}
	switch op {
	case OpJ, OpJal:
		in.Target = (pc & 0xF0000000) | (word&0x03FFFFFF)<<2
	default:
		in.A = Reg(word >> 21 & 31)
		in.B = Reg(word >> 16 & 31)
		if in.IsIType() {
			in.Imm = int32(int16(word & 0xFFFF))
			if op == OpBeq || op == OpBne || op == OpBlez || op == OpBgtz {
				in.Target = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			}
		} else {
			in.C = Reg(word >> 11 & 31)
		}
	}
	return in
}

// IsIType reports whether the opcode uses the 16-bit immediate field.
func (in Inst) IsIType() bool {
	switch in.Op {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpLui,
		OpLw, OpSw, OpLb, OpLbu, OpLh, OpLhu, OpSb, OpSh,
		OpBeq, OpBne, OpBlez, OpBgtz:
		return true
	}
	return false
}

// Class returns the pipeline resource class of the instruction.
func (in Inst) Class() Class {
	switch in.Op {
	case OpMul:
		return ClassMul
	case OpDiv:
		return ClassDiv
	case OpLw, OpLb, OpLbu, OpLh, OpLhu:
		return ClassLoad
	case OpSw, OpSb, OpSh:
		return ClassStore
	case OpBeq, OpBne, OpBlez, OpBgtz, OpJ, OpJal, OpJr, OpJalr:
		return ClassCtrl
	default:
		return ClassALU
	}
}

// MemBytes returns the access width of a memory operation (1, 2 or 4), or
// 0 for non-memory instructions.
func (in Inst) MemBytes() int {
	switch in.Op {
	case OpLb, OpLbu, OpSb:
		return 1
	case OpLh, OpLhu, OpSh:
		return 2
	case OpLw, OpSw:
		return 4
	}
	return 0
}

// Ctrl returns the control-flow kind (CtrlNone for non-control ops).
// jr ra is a return by convention; jr with any other register is an
// indirect jump.
func (in Inst) Ctrl() CtrlKind {
	switch in.Op {
	case OpBeq, OpBne, OpBlez, OpBgtz:
		return CtrlCond
	case OpJ:
		return CtrlJump
	case OpJal:
		return CtrlCall
	case OpJr:
		if in.B == RegRA {
			return CtrlRet
		}
		return CtrlIndirect
	case OpJalr:
		return CtrlIndCall
	default:
		return CtrlNone
	}
}

// Dst returns the destination register, or NoReg if none. Writes to r0 are
// architectural no-ops and reported as NoReg.
func (in Inst) Dst() Reg {
	var d Reg
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNor, OpSlt, OpSltu,
		OpSll, OpSrl, OpSra, OpMul, OpDiv,
		OpAddi, OpAndi, OpOri, OpXori, OpSlti, OpLui,
		OpLw, OpLb, OpLbu, OpLh, OpLhu:
		d = in.A
	case OpJal:
		d = RegRA
	case OpJalr:
		d = in.A
	default:
		return NoReg
	}
	if d == RegZero {
		return NoReg
	}
	return d
}

// Srcs returns the source registers (NoReg for absent operands). Reads of r0
// are free and reported as NoReg so the timing model never waits on them.
func (in Inst) Srcs() (s1, s2 Reg) {
	s1, s2 = NoReg, NoReg
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNor, OpSlt, OpSltu,
		OpSll, OpSrl, OpSra, OpMul, OpDiv:
		s1, s2 = in.B, in.C
	case OpAddi, OpAndi, OpOri, OpXori, OpSlti:
		s1 = in.B
	case OpLw, OpLb, OpLbu, OpLh, OpLhu:
		s1 = in.B // base
	case OpSw, OpSb, OpSh:
		s1, s2 = in.B, in.A // base, data
	case OpBeq, OpBne:
		s1, s2 = in.A, in.B
	case OpBlez, OpBgtz:
		s1 = in.A
	case OpJr, OpJalr:
		s1 = in.B
	}
	if s1 == RegZero {
		s1 = NoReg
	}
	if s2 == RegZero {
		s2 = NoReg
	}
	return s1, s2
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpJ, OpJal:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Target)
	case OpJr:
		return fmt.Sprintf("jr r%d", in.B)
	case OpJalr:
		return fmt.Sprintf("jalr r%d, r%d", in.A, in.B)
	case OpLw, OpLb, OpLbu, OpLh, OpLhu, OpSw, OpSb, OpSh:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.A, in.Imm, in.B)
	case OpBeq, OpBne:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case OpBlez, OpBgtz:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.A, in.Imm)
	case OpLui:
		return fmt.Sprintf("lui r%d, %d", in.A, in.Imm)
	default:
		if in.IsIType() {
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	}
}
