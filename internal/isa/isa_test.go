package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		Add(3, 4, 5),
		Sub(31, 1, 2),
		Mul(10, 11, 12),
		Div(9, 8, 7),
		Addi(5, 5, -1),
		Addi(5, 5, 32767),
		Addi(5, 5, -32768),
		I(OpOri, 7, 0, 0xABC),
		I(OpLui, 7, 0, 0x1234),
		Lw(4, 29, 16),
		Sw(4, 29, -4),
		Beq(1, 2, 12),
		Bne(3, 0, -8),
		Blez(6, 100),
		Bgtz(6, -100),
		Jr(31),
		Jr(5),
		Jalr(31, 6),
		Nop(),
		Halt(),
	}
	for _, want := range cases {
		got := Decode(want.Word(), 0x1000)
		if got.Op != want.Op || got.A != want.A || got.B != want.B {
			t.Errorf("%v: decode mismatch, got %v", want, got)
		}
		if want.IsIType() && got.Imm != want.Imm {
			t.Errorf("%v: imm mismatch, got %d want %d", want, got.Imm, want.Imm)
		}
		if !want.IsIType() && want.Op != OpJ && want.Op != OpJal && got.C != want.C {
			t.Errorf("%v: C mismatch, got %d want %d", want, got.C, want.C)
		}
	}
}

func TestJumpTargetEncoding(t *testing.T) {
	pc := uint32(0x0040_0100)
	for _, tgt := range []uint32{0x0040_0000, 0x0040_1ffc, 0x0000_0004} {
		in := J(tgt)
		got := Decode(in.Word(), pc)
		if got.Target != tgt {
			t.Errorf("j 0x%x: decoded target 0x%x", tgt, got.Target)
		}
		call := Jal(tgt)
		got = Decode(call.Word(), pc)
		if got.Target != tgt {
			t.Errorf("jal 0x%x: decoded target 0x%x", tgt, got.Target)
		}
		if got.Dst() != RegRA {
			t.Errorf("jal dest = %d, want ra", got.Dst())
		}
	}
}

func TestBranchTargetComputation(t *testing.T) {
	pc := uint32(0x2000)
	in := Decode(Beq(1, 2, 3).Word(), pc) // offset 3 words from pc+4
	if want := pc + 4 + 12; in.Target != want {
		t.Errorf("beq target = 0x%x, want 0x%x", in.Target, want)
	}
	in = Decode(Bne(1, 2, -2).Word(), pc)
	if want := pc + 4 - 8; in.Target != want {
		t.Errorf("bne target = 0x%x, want 0x%x", in.Target, want)
	}
}

func TestClassAndCtrl(t *testing.T) {
	checks := []struct {
		in   Inst
		cls  Class
		kind CtrlKind
	}{
		{Add(1, 2, 3), ClassALU, CtrlNone},
		{Mul(1, 2, 3), ClassMul, CtrlNone},
		{Div(1, 2, 3), ClassDiv, CtrlNone},
		{Lw(1, 2, 0), ClassLoad, CtrlNone},
		{Sw(1, 2, 0), ClassStore, CtrlNone},
		{Beq(1, 2, 0), ClassCtrl, CtrlCond},
		{J(0x100), ClassCtrl, CtrlJump},
		{Jal(0x100), ClassCtrl, CtrlCall},
		{Jr(RegRA), ClassCtrl, CtrlRet},
		{Jr(5), ClassCtrl, CtrlIndirect},
		{Jalr(RegRA, 5), ClassCtrl, CtrlIndCall},
		{Nop(), ClassALU, CtrlNone},
	}
	for _, c := range checks {
		if got := c.in.Class(); got != c.cls {
			t.Errorf("%v: class = %v, want %v", c.in, got, c.cls)
		}
		if got := c.in.Ctrl(); got != c.kind {
			t.Errorf("%v: ctrl = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestCtrlKindDirect(t *testing.T) {
	direct := []CtrlKind{CtrlCond, CtrlJump, CtrlCall}
	indirect := []CtrlKind{CtrlRet, CtrlIndirect, CtrlIndCall, CtrlNone}
	for _, k := range direct {
		if !k.Direct() {
			t.Errorf("%v should be direct", k)
		}
	}
	for _, k := range indirect {
		if k.Direct() {
			t.Errorf("%v should not be direct", k)
		}
	}
}

func TestSrcDstRegZeroElision(t *testing.T) {
	// Writes to r0 report no destination; reads of r0 report no source.
	if d := Add(0, 1, 2).Dst(); d != NoReg {
		t.Errorf("add r0: dst = %d, want NoReg", d)
	}
	s1, s2 := Add(1, 0, 0).Srcs()
	if s1 != NoReg || s2 != NoReg {
		t.Errorf("add r1,r0,r0 srcs = %d,%d, want NoReg", s1, s2)
	}
	s1, s2 = Sw(4, 5, 0).Srcs()
	if s1 != 5 || s2 != 4 {
		t.Errorf("sw srcs = %d,%d, want base=5 data=4", s1, s2)
	}
	if d := Sw(4, 5, 0).Dst(); d != NoReg {
		t.Errorf("sw dst = %d, want NoReg", d)
	}
	if d := Lw(7, 5, 0).Dst(); d != 7 {
		t.Errorf("lw dst = %d, want 7", d)
	}
}

func TestSubWordMemoryOps(t *testing.T) {
	checks := []struct {
		in    Inst
		cls   Class
		bytes int
	}{
		{Lb(4, 9, 0), ClassLoad, 1},
		{Lbu(4, 9, 0), ClassLoad, 1},
		{Lh(4, 9, 2), ClassLoad, 2},
		{Lhu(4, 9, 2), ClassLoad, 2},
		{Lw(4, 9, 4), ClassLoad, 4},
		{Sb(4, 9, 0), ClassStore, 1},
		{Sh(4, 9, 2), ClassStore, 2},
		{Sw(4, 9, 4), ClassStore, 4},
	}
	for _, c := range checks {
		if got := c.in.Class(); got != c.cls {
			t.Errorf("%v: class %v, want %v", c.in, got, c.cls)
		}
		if got := c.in.MemBytes(); got != c.bytes {
			t.Errorf("%v: MemBytes %d, want %d", c.in, got, c.bytes)
		}
		dec := Decode(c.in.Word(), 0)
		if dec.Op != c.in.Op || dec.Imm != c.in.Imm {
			t.Errorf("%v: round trip gave %v", c.in, dec)
		}
	}
	if got := Add(1, 2, 3).MemBytes(); got != 0 {
		t.Errorf("non-memory MemBytes = %d", got)
	}
	// Loads write a destination; stores read base+data.
	if Lb(4, 9, 0).Dst() != 4 {
		t.Error("lb dest wrong")
	}
	s1, s2 := Sh(4, 9, 0).Srcs()
	if s1 != 9 || s2 != 4 {
		t.Errorf("sh srcs = %d,%d", s1, s2)
	}
	if got := Lbu(7, 2, -3).String(); got != "lbu r7, -3(r2)" {
		t.Errorf("disasm = %q", got)
	}
}

func TestDecodeUnknownOpcodeIsNop(t *testing.T) {
	word := uint32(uint32(numOps)+5) << 26
	in := Decode(word, 0)
	if in.Op != OpNop {
		t.Errorf("unknown opcode decoded to %v, want nop", in.Op)
	}
}

// Property: any generated instruction round-trips through Word/Decode
// preserving op, operands, and timing-relevant metadata.
func TestQuickEncodeDecode(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	gen := func() Inst {
		ops := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNor, OpSlt, OpSltu,
			OpSll, OpSrl, OpSra, OpMul, OpDiv, OpAddi, OpAndi, OpOri,
			OpXori, OpSlti, OpLui, OpLw, OpSw, OpLb, OpLbu, OpLh, OpLhu,
			OpSb, OpSh, OpBeq, OpBne, OpBlez, OpBgtz, OpJr, OpJalr,
			OpNop, OpHalt}
		in := Inst{
			Op:  ops[r.Intn(len(ops))],
			A:   Reg(r.Intn(32)),
			B:   Reg(r.Intn(32)),
			C:   Reg(r.Intn(32)),
			Imm: int32(int16(r.Uint32())),
		}
		return in
	}
	f := func() bool {
		want := gen()
		pc := uint32(r.Intn(1<<20) * 4)
		got := Decode(want.Word(), pc)
		if got.Op != want.Op || got.A != want.A || got.B != want.B {
			return false
		}
		if want.IsIType() && got.Imm != want.Imm {
			return false
		}
		if !want.IsIType() && got.C != want.C {
			return false
		}
		// Metadata must be a pure function of the decoded fields.
		return got.Class() == want.Class() && got.Ctrl() == want.Ctrl()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLiExpansion(t *testing.T) {
	cases := []uint32{0, 1, 0xFFFF, 0x10000, 0x12340000, 0xDEADBEEF}
	for _, v := range cases {
		seq := Li(5, v)
		if len(seq) == 0 || len(seq) > 2 {
			t.Fatalf("Li(0x%x) produced %d instructions", v, len(seq))
		}
		// Emulate the sequence.
		var reg uint32
		for _, in := range seq {
			d := Decode(in.Word(), 0)
			switch d.Op {
			case OpLui:
				reg = uint32(d.Imm) << 16
			case OpOri:
				base := uint32(0)
				if d.B == 5 {
					base = reg
				}
				reg = base | uint32(uint16(d.Imm))
			default:
				t.Fatalf("Li emitted unexpected op %v", d.Op)
			}
		}
		if reg != v {
			t.Errorf("Li(0x%x) evaluates to 0x%x", v, reg)
		}
	}
}

func TestDisassemblyIsStable(t *testing.T) {
	checks := map[string]Inst{
		"add r1, r2, r3": Add(1, 2, 3),
		"lw r4, 16(r29)": Lw(4, 29, 16),
		"sw r4, -4(r29)": Sw(4, 29, -4),
		"beq r1, r2, 12": Beq(1, 2, 12),
		"jr r31":         Jr(31),
		"jalr r31, r6":   Jalr(31, 6),
		"nop":            Nop(),
		"halt":           Halt(),
		"lui r7, 4660":   I(OpLui, 7, 0, 0x1234),
		"j 0x400100":     J(0x400100),
	}
	for want, in := range checks {
		if got := in.String(); got != want {
			t.Errorf("disasm = %q, want %q", got, want)
		}
	}
}
