// Package asm is a small two-pass assembler for the internal ISA: it
// resolves symbolic labels into branch offsets and jump targets. The
// synthetic SPECINT-like workload generator (internal/workload) uses it to
// build real programs — loops, calls, jump tables — that the functional
// simulator executes to produce ReSim traces.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// fixupKind distinguishes the relocation types.
type fixupKind uint8

const (
	fixBranch   fixupKind = iota // 16-bit word offset relative to pc+4
	fixJump                      // 26-bit absolute word target (j/jal)
	fixLoadAddr                  // lui/ori pair materializing the label address
)

type fixup struct {
	index int // instruction index of the first word to patch
	label string
	kind  fixupKind
}

// Builder accumulates instructions and label references.
type Builder struct {
	code   []isa.Inst
	labels map[string]int
	fixups []fixup
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Len returns the current instruction count.
func (b *Builder) Len() int { return len(b.code) }

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) {
	b.labels[name] = len(b.code)
}

// Emit appends a fully resolved instruction.
func (b *Builder) Emit(ins ...isa.Inst) {
	b.code = append(b.code, ins...)
}

// Branch emits a conditional branch to label (op is one of the B-ops; a and
// c are the compared registers, c ignored for blez/bgtz).
func (b *Builder) Branch(op isa.Op, ra, rb isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label, fixBranch})
	b.code = append(b.code, isa.Inst{Op: op, A: ra, B: rb})
}

// Jump emits j label.
func (b *Builder) Jump(label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label, fixJump})
	b.code = append(b.code, isa.Inst{Op: isa.OpJ})
}

// Call emits jal label.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label, fixJump})
	b.code = append(b.code, isa.Inst{Op: isa.OpJal})
}

// LoadLabelAddr emits a lui+ori pair that materializes the absolute address
// of label into dst.
func (b *Builder) LoadLabelAddr(dst isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label, fixLoadAddr})
	b.code = append(b.code,
		isa.I(isa.OpLui, dst, isa.RegZero, 0),
		isa.I(isa.OpOri, dst, dst, 0))
}

// AddrOf returns the absolute address label will have when assembled at
// base. It is valid only after the label has been bound.
func (b *Builder) AddrOf(label string, base uint32) (uint32, error) {
	idx, ok := b.labels[label]
	if !ok {
		return 0, fmt.Errorf("asm: undefined label %q", label)
	}
	return base + uint32(4*idx), nil
}

// Assemble resolves all fixups against the given load address and returns
// the finished instruction slice.
func (b *Builder) Assemble(base uint32) ([]isa.Inst, error) {
	out := make([]isa.Inst, len(b.code))
	copy(out, b.code)
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		target := base + uint32(4*idx)
		switch f.kind {
		case fixBranch:
			// Offset in words relative to pc+4.
			off := idx - (f.index + 1)
			if off < -(1<<15) || off >= 1<<15 {
				return nil, fmt.Errorf("asm: branch to %q out of range (%d words)", f.label, off)
			}
			out[f.index].Imm = int32(off)
		case fixJump:
			out[f.index].Target = target
		case fixLoadAddr:
			out[f.index].Imm = int32(target >> 16)      // lui
			out[f.index+1].Imm = int32(target & 0xFFFF) // ori
		}
	}
	return out, nil
}
