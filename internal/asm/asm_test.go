package asm

import (
	"testing"

	"repro/internal/funcsim"
	"repro/internal/isa"
)

func TestBackwardBranchLoop(t *testing.T) {
	b := NewBuilder()
	b.Emit(isa.I(isa.OpOri, 2, 0, 5)) // counter
	b.Label("loop")
	b.Emit(isa.Add(1, 1, 2))
	b.Emit(isa.Addi(2, 2, -1))
	b.Branch(isa.OpBgtz, 2, 0, "loop")
	b.Emit(isa.Halt())
	code, err := b.Assemble(funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m, err := funcsim.NewMachine(&funcsim.Program{
		Entry:    funcsim.CodeBase,
		Segments: []funcsim.Segment{funcsim.AssembleAt(funcsim.CodeBase, code)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(1); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
}

func TestForwardBranchSkips(t *testing.T) {
	b := NewBuilder()
	b.Emit(isa.I(isa.OpOri, 1, 0, 1))
	b.Branch(isa.OpBgtz, 1, 0, "skip")
	b.Emit(isa.I(isa.OpOri, 2, 0, 99)) // skipped
	b.Label("skip")
	b.Emit(isa.I(isa.OpOri, 3, 0, 7))
	b.Emit(isa.Halt())
	code, err := b.Assemble(funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mustRun(t, code)
	if m.Reg(2) != 0 || m.Reg(3) != 7 {
		t.Errorf("r2=%d r3=%d, want 0,7", m.Reg(2), m.Reg(3))
	}
}

func TestCallAndLoadLabelAddr(t *testing.T) {
	b := NewBuilder()
	b.Call("fn")
	b.LoadLabelAddr(10, "fn")
	b.Emit(isa.Halt())
	b.Label("fn")
	b.Emit(isa.I(isa.OpOri, 5, 0, 42))
	b.Emit(isa.Jr(isa.RegRA))
	code, err := b.Assemble(funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	m := mustRun(t, code)
	if m.Reg(5) != 42 {
		t.Errorf("call failed: r5 = %d", m.Reg(5))
	}
	wantAddr, err := b.AddrOf("fn", funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(10); got != wantAddr {
		t.Errorf("LoadLabelAddr = %#x, want %#x", got, wantAddr)
	}
}

func TestUndefinedLabelRejected(t *testing.T) {
	b := NewBuilder()
	b.Jump("nowhere")
	if _, err := b.Assemble(funcsim.CodeBase); err == nil {
		t.Error("undefined label accepted")
	}
	if _, err := b.AddrOf("nowhere", 0); err == nil {
		t.Error("AddrOf undefined label accepted")
	}
}

func TestLenTracksEmission(t *testing.T) {
	b := NewBuilder()
	if b.Len() != 0 {
		t.Error("fresh builder non-empty")
	}
	b.Emit(isa.Nop(), isa.Nop())
	b.LoadLabelAddr(4, "x")
	b.Label("x")
	if b.Len() != 4 {
		t.Errorf("len = %d, want 4", b.Len())
	}
}

func mustRun(t *testing.T, code []isa.Inst) *funcsim.Machine {
	t.Helper()
	m, err := funcsim.NewMachine(&funcsim.Program{
		Entry:    funcsim.CodeBase,
		Segments: []funcsim.Segment{funcsim.AssembleAt(funcsim.CodeBase, code)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	return m
}
