// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a Pass
// hands it one type-checked package, and diagnostics flow back through
// Pass.Report. The repository's module is deliberately stdlib-only, so the
// resimvet analyzers are written against this interface instead; the shapes
// match the upstream API closely enough that an analyzer moves to the real
// framework by changing one import path.
//
// Only the subset resimvet needs exists: there are no facts, no Requires
// graph and no SSA — every ReSim invariant the suite enforces is package-
// local and syntax- or types-driven.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name for diagnostics and the inventory
// table, a Doc string whose first line summarizes the enforced invariant,
// and a Run function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -json output and the
	// docs/STATIC_ANALYSIS.md inventory. It must be a valid Go identifier.
	Name string

	// Doc documents the invariant. The first line is the one-sentence
	// summary the multichecker and the inventory diff use.
	Doc string

	// Run applies the check to one package. The returned value is unused
	// (kept for upstream-API symmetry); diagnostics are delivered through
	// pass.Report.
	Run func(*Pass) (any, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package and
// the sink its diagnostics go to. Unlike the upstream API there are no
// facts: passes are independent.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer

	// Fset maps token positions in Files to file/line/column.
	Fset *token.FileSet

	// Files are the package's parsed source files, comments included.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo carries the type-checker's expression types, object uses
	// and selections for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver fills it in before Run.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position inside the analyzed package and a
// message stating the violated invariant (and, by convention, the escape
// hatch that deliberately waives it).
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
