// Package lint is the registry of ReSim's custom static analyzers — the
// single list cmd/resimvet drives and cmd/doclint diffs against the
// analyzer inventory in docs/STATIC_ANALYSIS.md.
//
// Each analyzer encodes one cross-layer invariant the repository otherwise
// enforces only by convention or at runtime; see the package docs under
// internal/lint/... and docs/STATIC_ANALYSIS.md for the contracts and
// their escape hatches.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/ckptcomplete"
	"repro/internal/lint/determinism"
	"repro/internal/lint/metriclint"
	"repro/internal/lint/wiresafe"
)

// Analyzers returns the full resimvet suite, in stable (alphabetical)
// order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ckptcomplete.Analyzer,
		determinism.Analyzer,
		metriclint.Analyzer,
		wiresafe.Analyzer,
	}
}
