// Package load turns `go list` package patterns into type-checked packages
// for the resimvet analyzers, using nothing beyond the standard library and
// the go toolchain the module already requires.
//
// The strategy mirrors what golang.org/x/tools/go/packages does in
// LoadTypes mode: one `go list -e -export -deps -json` invocation yields
// every target package and its transitive dependencies in dependency order,
// each dependency carrying the build cache's up-to-date export-data file.
// Every non-standard package is parsed and type-checked from source (the
// analyzers need syntax, and module packages must never be loaded twice —
// an export-data copy would carry distinct named types); standard-library
// dependencies, which cannot reference module types, are imported from
// export data through go/importer's gc machinery. All packages share one
// token.FileSet and one importer instance, which keeps named-type identity
// consistent across source- and export-loaded packages.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one type-checked target package: parsed syntax plus the
// type-checker's results, ready to hand to an analysis.Pass.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *listError
	DepsErrors []*listError
}

// listError is go list's package error record.
type listError struct {
	Pos string
	Err string
}

func (e *listError) String() string {
	if e.Pos != "" {
		return e.Pos + ": " + e.Err
	}
	return e.Err
}

// Packages loads every package matched by patterns (for example "./...")
// and returns them type-checked, in dependency order, with the shared file
// set. Dependencies outside the patterns are consumed as export data only
// and are not returned.
func Packages(patterns ...string) ([]*Package, *token.FileSet, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Imports,ImportMap,Export,Standard,DepOnly,Incomplete,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decode output: %v", err)
		}
		listed = append(listed, lp)
	}

	var loadErrs []string
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error))
		}
		for _, de := range lp.DepsErrors {
			loadErrs = append(loadErrs, de.String())
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	if loadErrs != nil {
		return nil, nil, fmt.Errorf("go list reported errors:\n  %s", strings.Join(dedup(loadErrs), "\n  "))
	}

	fset := token.NewFileSet()
	gc := NewGCImporter(fset, func(path string) (string, error) {
		file, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	})

	var (
		pkgs   []*Package
		byPath = make(map[string]*types.Package)
	)
	for _, lp := range listed {
		// go list -deps emits dependencies before dependents. Every
		// non-standard package is type-checked from source — module
		// dependencies included, even when only some packages were
		// requested — because a module package imported from export data
		// would carry its own copies of named types and break identity
		// with the source-checked ones. Standard-library packages never
		// reference module types, so they alone come from export data.
		if lp.Standard {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		files, err := ParseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		res := &Resolver{ImportMap: lp.ImportMap, Local: byPath, Fallback: gc}
		pkg, info, err := Check(fset, lp.ImportPath, files, res)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		byPath[lp.ImportPath] = pkg
		if lp.DepOnly {
			continue // checked for identity only; not a requested target
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Files:      files,
			Types:      pkg,
			TypesInfo:  info,
		})
	}
	return pkgs, fset, nil
}

// ParseFiles parses the named files (relative to dir unless absolute) with
// comments, which the analyzers need for the //resim: escape-hatch
// annotations. The vet-mode driver shares it for unit config file lists.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks one package's parsed files, resolving imports through
// imp, and returns the package with a fully populated types.Info. Soft
// errors are fatal: analyzers must only ever see well-typed packages.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.ImporterFrom) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// A Resolver is the importer handed to the type-checker for one package:
// vendor-style remappings first, then already source-checked packages, then
// the shared export-data importer.
type Resolver struct {
	// ImportMap rewrites source-level import paths to canonical ones (go
	// list's ImportMap; nil when the package has no remappings).
	ImportMap map[string]string

	// Local holds packages already type-checked from source this run,
	// keyed by canonical path. Hits keep named-type identity aligned
	// between source-checked dependents and dependencies.
	Local map[string]*types.Package

	// Fallback imports everything else, normally from export data.
	Fallback types.ImporterFrom
}

// Import implements types.Importer.
func (r *Resolver) Import(path string) (*types.Package, error) {
	return r.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (r *Resolver) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := r.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := r.Local[path]; ok {
		return pkg, nil
	}
	return r.Fallback.ImportFrom(path, dir, mode)
}

// NewGCImporter returns an importer that reads gc export data, locating
// each package's export file through exportFor (a build-cache path from `go
// list -export`, or a vet PackageFile entry). One instance must be shared
// by every import in a load so packages unify.
func NewGCImporter(fset *token.FileSet, exportFor func(path string) (string, error)) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, err := exportFor(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// dedup removes duplicate strings preserving first-seen order (go list
// repeats dependency errors once per importer).
func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
