// Package lintutil holds the small pieces the resimvet analyzers share:
// the //resim: escape-hatch directive conventions and test-file detection.
//
// Escape hatches are deliberate, reviewable waivers. Each analyzer
// documents exactly one directive (see docs/STATIC_ANALYSIS.md): a line
// comment of the form
//
//	//resim:<name> <reason>
//
// suppresses that analyzer's diagnostics for the code on the same source
// line or the line directly below the comment. The reason text is free
// form but expected — a waiver that cannot say why it exists should be a
// fix instead.
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every resimvet annotation.
const directivePrefix = "//resim:"

// Directives indexes a package's //resim: comments by file and line for
// position-based suppression lookups.
type Directives struct {
	// byLine maps filename -> line -> directive names present there.
	byLine map[string]map[int][]string
}

// ParseDirectives collects every //resim: comment in files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := directiveName(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return d
}

// Allows reports whether directive name covers pos: the comment sits on the
// same line (trailing) or on the line directly above (preceding).
func (d *Directives) Allows(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	for _, got := range d.byLine[p.Filename][p.Line] {
		if got == name {
			return true
		}
	}
	for _, got := range d.byLine[p.Filename][p.Line-1] {
		if got == name {
			return true
		}
	}
	return false
}

// directiveName extracts the directive name from one comment's text:
// "//resim:derived", "//resim:ckpt-exempt rebuilt by New" yield "derived"
// and "ckpt-exempt". Non-directive comments report false.
func directiveName(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(rest, " ")
	name = strings.TrimSpace(name)
	return name, name != ""
}

// HasDirective reports whether any comment in the group carries the named
// directive. Use it for declaration-attached groups (a struct field's Doc
// or trailing Comment), where position arithmetic would be fragile.
func HasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if got, ok := directiveName(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The analyzers
// skip reporting in tests: tests may freely use wall clocks and map order —
// determinism of simulation results is their assertion, not their
// obligation.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
