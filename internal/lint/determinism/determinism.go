// Package determinism implements the resimvet analyzer that keeps
// nondeterminism out of ReSim's result-producing code.
//
// The repository's headline guarantee is byte-identical simulation results
// across resume, requeue, local/remote and telemetry-on/off paths; every
// equivalence test since the checkpoint PR pins it. That property dies the
// moment a result path consults a wall clock, the process-seeded global
// random source, or Go's randomized map iteration order. This analyzer
// rejects those constructs at compile time in the packages that produce
// results — internal/core, internal/uarch, internal/stats, internal/sweep —
// and in the sweepd/jobd wire files (protocol.go, journal.go), whose
// encodings must be stable enough to diff across runs.
//
// The escape hatch is a //resim:nondeterministic-ok <reason> comment on the
// flagged line or the line above it, for code whose output provably cannot
// depend on the nondeterminism (an order-insensitive set build, a slice of
// map keys that is sorted immediately after).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags wall-clock reads, global random sources and
// order-dependent map iteration in result-producing packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now, the global math/rand source and order-dependent map ranges in result-producing packages\n" +
		"\nResult-producing code must be a pure function of configuration and\ninput trace; see docs/STATIC_ANALYSIS.md#determinism.",
	Run: run,
}

// Directive is the analyzer's escape-hatch annotation name.
const Directive = "nondeterministic-ok"

// fullPackages are analyzed file by file in their entirety.
var fullPackages = map[string]bool{
	"repro/internal/core":   true,
	"repro/internal/uarch":  true,
	"repro/internal/stats":  true,
	"repro/internal/sweep":  true,
	"repro/internal/faults": true,
}

// wireFiles lists, per package, the files carrying wire or journal
// encodings; only those files are in scope for these packages (a
// coordinator may time a dispatch; a wire encoder may not).
var wireFiles = map[string]map[string]bool{
	"repro/internal/sweepd": {"protocol.go": true, "journal.go": true},
	"repro/internal/jobd":   {"protocol.go": true, "journal.go": true},
}

// bannedFuncs maps fully qualified function names to the reason they are
// banned in scope.
var bannedFuncs = map[string]string{
	"time.Now":   "reads the wall clock",
	"time.Since": "reads the wall clock",
	"time.Until": "reads the wall clock",
}

// randConstructors are the math/rand functions that build explicitly
// seeded sources; everything else package-level in math/rand, math/rand/v2
// and crypto/rand draws on process-global or hardware entropy.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	inFull := fullPackages[pass.Pkg.Path()]
	wires := wireFiles[pass.Pkg.Path()]
	if !inFull && wires == nil {
		return nil, nil
	}
	dirs := lintutil.ParseDirectives(pass.Fset, pass.Files)

	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Package).Filename)
		if lintutil.IsTestFile(pass.Fset, file.Package) {
			continue
		}
		if !inFull && !wires[name] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, dirs, n)
			case *ast.RangeStmt:
				checkRange(pass, dirs, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkCall flags calls to wall-clock and global-entropy functions.
func checkCall(pass *analysis.Pass, dirs *lintutil.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods on an explicitly seeded
	// *rand.Rand are the approved pattern.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	var reason string
	switch pkg := fn.Pkg().Path(); pkg {
	case "time":
		reason = bannedFuncs["time."+fn.Name()]
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			reason = "draws on the process-global random source"
		}
	case "crypto/rand":
		reason = "draws on hardware entropy"
	}
	if reason == "" {
		return
	}
	if dirs.Allows(pass.Fset, call.Pos(), Directive) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s %s; results must be a pure function of config and trace (or annotate //resim:%s <reason>)",
		fn.Pkg().Path(), fn.Name(), reason, Directive)
}

// checkRange flags ranges over maps whose body is order-dependent.
func checkRange(pass *analysis.Pass, dirs *lintutil.Directives, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(pass, rng.Body.List) {
		return
	}
	if dirs.Allows(pass.Fset, rng.For, Directive) {
		return
	}
	pass.Reportf(rng.For, "range over map %s (%s) has an order-dependent body and map iteration order is randomized; iterate sorted keys or annotate //resim:%s <reason>",
		types.ExprString(rng.X), tv.Type, Directive)
}

// orderInsensitiveBody reports whether every statement is one whose effect
// cannot depend on iteration order: writes keyed into maps, map deletions,
// and if statements (with call-free conditions) guarding only such writes.
// Anything else — appends, sends, plain assignments, calls — is assumed
// order-dependent.
func orderInsensitiveBody(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return false
			}
			for _, lhs := range s.Lhs {
				if !isMapIndexOrBlank(pass, lhs) {
					return false
				}
			}
			for _, rhs := range s.Rhs {
				if containsCall(rhs) {
					return false
				}
			}
		case *ast.IncDecStmt:
			if !isMapIndexOrBlank(pass, s.X) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "delete" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || containsCall(s.Cond) {
				return false
			}
			if !orderInsensitiveBody(pass, s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitiveBody(pass, e.List) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isMapIndexOrBlank reports whether expr is the blank identifier or an
// index into a map.
func isMapIndexOrBlank(pass *analysis.Pass, expr ast.Expr) bool {
	if id, ok := expr.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	ix, ok := expr.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// containsCall reports whether the expression contains any function call
// (whose evaluation per iteration could be order-sensitive).
func containsCall(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
