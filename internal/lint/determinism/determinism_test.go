package determinism_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/determinism"
)

// TestDeterminism checks positive hits in the scoped package and wire
// file, waiver suppression, and silence outside the scope.
func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer,
		"repro/internal/core",
		"repro/internal/sweepd",
		"repro/internal/other",
	)
}
