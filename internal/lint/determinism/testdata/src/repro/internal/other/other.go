// Package other is outside the determinism scope entirely; nothing here
// is flagged.
package other

import "time"

// Now is fine in a non-result-producing package.
func Now() time.Time { return time.Now() }
