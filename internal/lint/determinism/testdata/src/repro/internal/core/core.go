// Package core is determinism-analyzer fixture data; the import path
// repro/internal/core puts the whole package in scope.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// Clock exercises the banned wall-clock reads.
func Clock() (int64, time.Duration) {
	start := time.Now()                        // want `call to time\.Now reads the wall clock`
	return start.UnixNano(), time.Since(start) // want `call to time\.Since reads the wall clock`
}

// GlobalRand draws on the process-global random source.
func GlobalRand() int {
	return rand.Intn(6) // want `draws on the process-global random source`
}

// SeededRand is the approved pattern: methods on an explicitly seeded
// *rand.Rand are not flagged, and neither are the constructors.
func SeededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

// CollectKeys ranges over a map with an order-dependent body (append).
func CollectKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m \(map\[string\]int\) has an order-dependent body`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectKeysOK is the same loop with the waiver spelled out.
func CollectKeysOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//resim:nondeterministic-ok the collected keys are sorted on the next line
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert only writes keyed into a map: order-insensitive, not flagged.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// WaivedClock shows the escape hatch on a banned call.
func WaivedClock() time.Time {
	//resim:nondeterministic-ok fixture exercising the waiver
	return time.Now()
}
