// Package sweepd is determinism fixture data: only the wire files
// protocol.go and journal.go are in scope for this package.
package sweepd

import "time"

// Stamp shows wire files are checked.
func Stamp() time.Time {
	return time.Now() // want `call to time\.Now reads the wall clock`
}
