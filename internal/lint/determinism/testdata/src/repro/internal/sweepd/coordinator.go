package sweepd

import "time"

// Dispatch may time itself: non-wire files in sweepd are out of scope.
func Dispatch() time.Time {
	return time.Now()
}
