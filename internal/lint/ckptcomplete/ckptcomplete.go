// Package ckptcomplete implements the resimvet analyzer that keeps
// checkpoint capture exhaustive.
//
// ReSim's checkpoint/resume contract is byte-identical results: a run
// restored from a checkpoint must be indistinguishable from one that never
// stopped. That only holds while Checkpoint/Restore (and the derived-state
// rebuild) cover every field of the engine — a new field that is neither
// serialized nor rebuilt resumes as its zero value and silently skews
// statistics. This analyzer closes that hole at compile time: for every
// struct participating in a checkpoint convention, each field must be
// accounted for in one of three ways:
//
//   - captured in the capture method AND reinstalled in the restore
//     function (ordinary serialized state);
//   - annotated //resim:derived and rebuilt in rebuildDerived or cleared
//     in clearDerived (state that is a pure function of serialized state);
//   - annotated //resim:ckpt-exempt <reason> (immutable configuration,
//     per-cycle scratch — state a restore legitimately reconstructs
//     another way).
//
// Two conventions are recognized, matching the repository's two shapes:
//
//   - a Checkpoint method paired with a package-level Restore function
//     returning the type (core.Engine);
//   - a State/SetState method pair (bpred.Predictor).
package ckptcomplete

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer checks that every field of a checkpoint-captured struct is
// serialized, rebuilt as derived state, or explicitly exempted.
var Analyzer = &analysis.Analyzer{
	Name: "ckptcomplete",
	Doc: "every field of a checkpointed struct must be captured+restored, //resim:derived, or //resim:ckpt-exempt\n" +
		"\nA field outside all three buckets resumes as its zero value and\nbreaks byte-identical resume; see docs/STATIC_ANALYSIS.md#ckptcomplete.",
	Run: run,
}

// Directive names for the two annotations the analyzer honors.
const (
	DirectiveDerived = "derived"
	DirectiveExempt  = "ckpt-exempt"
)

// convention ties one struct type to the functions that capture, restore
// and rebuild it.
type convention struct {
	typ     *types.Named
	capture *ast.FuncDecl // Checkpoint or State method body
	restore *ast.FuncDecl // Restore function or SetState method body
	derived []*ast.FuncDecl
	// names used in diagnostics
	captureName, restoreName, derivedName string
}

func run(pass *analysis.Pass) (any, error) {
	decls := funcDecls(pass)

	var convs []*convention
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		if c := checkpointConvention(pass, decls, named); c != nil {
			convs = append(convs, c)
		}
		if c := stateConvention(decls, named); c != nil {
			convs = append(convs, c)
		}
	}

	for _, c := range convs {
		checkConvention(pass, c)
	}
	return nil, nil
}

// funcDecls maps each declared function object to its syntax.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// method returns the declared method of named with the given name, if any.
func method(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// checkpointConvention matches the core.Engine shape: a Checkpoint method
// plus a package-level Restore function whose results include the type.
// rebuildDerived and clearDerived methods, when present, define the
// derived bucket.
func checkpointConvention(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, named *types.Named) *convention {
	ckpt := method(named, "Checkpoint")
	if ckpt == nil {
		return nil
	}
	restoreObj, ok := pass.Pkg.Scope().Lookup("Restore").(*types.Func)
	if !ok || !resultsInclude(restoreObj, named) {
		return nil
	}
	c := &convention{
		typ: named, capture: decls[ckpt], restore: decls[restoreObj],
		captureName: "Checkpoint", restoreName: "Restore", derivedName: "rebuildDerived/clearDerived",
	}
	for _, name := range []string{"rebuildDerived", "clearDerived"} {
		if m := method(named, name); m != nil {
			if fd := decls[m]; fd != nil {
				c.derived = append(c.derived, fd)
			}
		}
	}
	if c.capture == nil || c.restore == nil {
		return nil
	}
	return c
}

// stateConvention matches the bpred.Predictor shape: a State/SetState
// method pair on one receiver.
func stateConvention(decls map[*types.Func]*ast.FuncDecl, named *types.Named) *convention {
	st, set := method(named, "State"), method(named, "SetState")
	if st == nil || set == nil {
		return nil
	}
	c := &convention{
		typ: named, capture: decls[st], restore: decls[set],
		captureName: "State", restoreName: "SetState", derivedName: "",
	}
	if c.capture == nil || c.restore == nil {
		return nil
	}
	return c
}

// resultsInclude reports whether fn returns named or *named.
func resultsInclude(fn *types.Func, named *types.Named) bool {
	results := fn.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if t == named.Obj().Type() {
			return true
		}
	}
	return false
}

// checkConvention applies the three-bucket rule to every field of c.typ.
func checkConvention(pass *analysis.Pass, c *convention) {
	st := c.typ.Underlying().(*types.Struct)
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}

	captured := referencedFields(pass, c.capture, fields)
	restored := referencedFields(pass, c.restore, fields)
	rebuilt := map[*types.Var]bool{}
	for _, fd := range c.derived {
		for v := range referencedFields(pass, fd, fields) {
			rebuilt[v] = true
		}
	}

	typeName := c.typ.Obj().Name()
	for _, af := range structFieldSyntax(pass, c.typ) {
		for _, nameIdent := range af.names {
			fv, ok := pass.TypesInfo.Defs[nameIdent].(*types.Var)
			if !ok || nameIdent.Name == "_" {
				continue
			}
			derivedAnn := lintutil.HasDirective(af.field.Doc, DirectiveDerived) || lintutil.HasDirective(af.field.Comment, DirectiveDerived)
			exemptAnn := lintutil.HasDirective(af.field.Doc, DirectiveExempt) || lintutil.HasDirective(af.field.Comment, DirectiveExempt)
			switch {
			case exemptAnn:
				// Deliberately waived, reason on the annotation.
			case derivedAnn:
				if c.derivedName == "" {
					pass.Reportf(nameIdent.Pos(), "%s.%s is annotated //resim:%s but %s has no rebuildDerived/clearDerived method to rebuild it",
						typeName, nameIdent.Name, DirectiveDerived, typeName)
				} else if !rebuilt[fv] {
					pass.Reportf(nameIdent.Pos(), "%s.%s is annotated //resim:%s but %s never touches it; a restore would leave it stale",
						typeName, nameIdent.Name, DirectiveDerived, c.derivedName)
				}
			case captured[fv] && restored[fv]:
				// Serialized state, both directions present.
			default:
				missing := "neither captured in " + c.captureName + " nor restored in " + c.restoreName
				if captured[fv] && !restored[fv] {
					missing = "captured in " + c.captureName + " but never restored in " + c.restoreName
				} else if restored[fv] && !captured[fv] {
					missing = "restored in " + c.restoreName + " but never captured in " + c.captureName
				}
				pass.Reportf(nameIdent.Pos(), "%s.%s is %s; a resumed run would zero it — serialize it, or annotate //resim:%s (and rebuild it) or //resim:%s <reason>",
					typeName, nameIdent.Name, missing, DirectiveDerived, DirectiveExempt)
			}
		}
	}
}

// astField pairs one struct-field syntax node with its name identifiers.
type astField struct {
	field *ast.Field
	names []*ast.Ident
}

// structFieldSyntax finds the declaration of named's struct type and
// returns its fields with their comment groups attached. Embedded fields
// are skipped: they are types, not state this struct owns.
func structFieldSyntax(pass *analysis.Pass, named *types.Named) []*astField {
	var out []*astField
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pass.TypesInfo.Defs[ts.Name] != named.Obj() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					if len(f.Names) == 0 {
						continue // embedded
					}
					out = append(out, &astField{field: f, names: f.Names})
				}
			}
		}
	}
	return out
}

// referencedFields walks one function body and returns which of the given
// struct fields it selects, through any expression of the struct's type
// (receiver, local, or a value returned by a constructor).
func referencedFields(pass *analysis.Pass, fd *ast.FuncDecl, fields map[*types.Var]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if fd == nil || fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel := pass.TypesInfo.Selections[se]
		if sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		if v, ok := sel.Obj().(*types.Var); ok && fields[v] {
			out[v] = true
		}
		return true
	})
	return out
}
