package ckptcomplete_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ckptcomplete"
)

// TestCkptComplete checks the three-bucket field rule under both
// conventions, annotation handling, and silence for convention-free types.
func TestCkptComplete(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ckptcomplete.Analyzer,
		"repro/internal/ckpt",
	)
}
