// Package ckpt is ckptcomplete fixture data exercising both recognized
// conventions: Checkpoint/Restore and State/SetState.
package ckpt

// Snapshot is the serialized checkpoint form.
type Snapshot struct {
	Now      uint64
	CapOnly  int
	RestOnly int
}

// Engine matches the Checkpoint method + package-level Restore convention.
type Engine struct {
	now      uint64 // captured and restored: fine
	capOnly  int    // want `captured in Checkpoint but never restored in Restore`
	restOnly int    // want `restored in Restore but never captured in Checkpoint`
	orphan   int    // want `neither captured in Checkpoint nor restored in Restore`

	//resim:derived
	readyQ []int

	//resim:derived
	staleQ []int // want `rebuildDerived/clearDerived never touches it`

	cfg int //resim:ckpt-exempt immutable configuration, fixture waiver
}

// Checkpoint captures the serialized fields.
func (e *Engine) Checkpoint() Snapshot {
	return Snapshot{Now: e.now, CapOnly: e.capOnly}
}

// Restore rebuilds an engine from a snapshot.
func Restore(cp Snapshot) *Engine {
	e := new(Engine)
	e.now = cp.Now
	e.restOnly = cp.RestOnly
	e.rebuildDerived()
	return e
}

// rebuildDerived reconstructs derived state after a restore.
func (e *Engine) rebuildDerived() {
	e.readyQ = e.readyQ[:0]
}

// Pred matches the State/SetState convention.
type Pred struct {
	hist uint32
	lru  uint8 // want `neither captured in State nor restored in SetState`

	//resim:derived
	cache int // want `has no rebuildDerived/clearDerived method`
}

// State captures the predictor tables.
func (p *Pred) State() uint32 { return p.hist }

// SetState restores them.
func (p *Pred) SetState(v uint32) { p.hist = v }

// Loose has no checkpoint convention; nothing is required of it.
type Loose struct {
	anything func()
	counter  int
}

// bump references Loose so the fields are exercised without a convention.
func bump(l *Loose) {
	l.counter++
	if l.anything != nil {
		l.anything()
	}
}
