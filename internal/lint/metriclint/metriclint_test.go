package metriclint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/metriclint"
)

// TestMetricLint checks name/label literalness and validity, per-package
// uniqueness, the //resim:metric-ok waiver, and that non-Registry methods
// with the same names stay out of scope.
func TestMetricLint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), metriclint.Analyzer,
		"repro/internal/jobd",
	)
}
