// Package metriclint implements the resimvet analyzer that validates
// metric registrations against internal/obs at compile time.
//
// The observability layer exposes every family through Prometheus text
// exposition, and cmd/doclint diffs the documented inventory against what
// the code registers — but both only see names that are actually
// registered at runtime. This analyzer checks the call sites themselves:
// family names and label names passed to the obs.Registry constructors
// (Counter, CounterVec, Gauge, GaugeVec, Histogram, HistogramVec,
// CounterFunc, GaugeFunc) must be compile-time string constants, valid
// Prometheus identifiers, and unique across a package's registration
// sites — a duplicated name would silently alias two series into one
// family.
//
// The escape hatch is //resim:metric-ok <reason> on the registration
// line, for the rare dynamic-but-validated name.
package metriclint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer checks obs metric registrations: literal, valid, unique names.
var Analyzer = &analysis.Analyzer{
	Name: "metriclint",
	Doc: "metric family and label names passed to internal/obs must be literal, valid Prometheus identifiers, unique per package\n" +
		"\nKeeps the /metrics contract auditable from source; see\ndocs/STATIC_ANALYSIS.md#metriclint.",
	Run: run,
}

// Directive is the analyzer's escape-hatch annotation name.
const Directive = "metric-ok"

// obsPath is the metrics registry package whose constructors are checked.
const obsPath = "repro/internal/obs"

// constructors maps obs.Registry method names to the index where label
// names start (-1 when the method takes no labels). The family name is
// always the first argument.
var constructors = map[string]int{
	"Counter":      -1,
	"Gauge":        -1,
	"Histogram":    -1,
	"CounterFunc":  -1,
	"GaugeFunc":    -1,
	"CounterVec":   2,
	"GaugeVec":     2,
	"HistogramVec": 3,
}

// metricName and labelName are the Prometheus identifier grammars.
var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == obsPath {
		// The registry's own implementation necessarily handles names as
		// runtime values.
		return nil, nil
	}
	dirs := lintutil.ParseDirectives(pass.Fset, pass.Files)
	firstSite := map[string]token.Pos{}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			labelStart, ok := registryCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if lintutil.IsTestFile(pass.Fset, call.Pos()) || dirs.Allows(pass.Fset, call.Pos(), Directive) {
				return true
			}
			checkName(pass, dirs, call, firstSite)
			if labelStart >= 0 {
				checkLabels(pass, call, labelStart)
			}
			return true
		})
	}
	return nil, nil
}

// registryCall reports whether the call is an obs.Registry constructor,
// and at which argument index its label names start (-1 for none).
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (labelStart int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return 0, false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return 0, false
	}
	labelStart, ok = constructors[fn.Name()]
	return labelStart, ok
}

// checkName validates the family-name argument and records the site for
// the per-package uniqueness check.
func checkName(pass *analysis.Pass, dirs *lintutil.Directives, call *ast.CallExpr, firstSite map[string]token.Pos) {
	arg := call.Args[0]
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "metric family name must be a compile-time string constant so the exposition surface is auditable from source (or annotate //resim:%s <reason>)", Directive)
		return
	}
	if !metricName.MatchString(name) {
		pass.Reportf(arg.Pos(), "metric family name %q is not a valid Prometheus identifier (%s)", name, metricName)
		return
	}
	if prev, dup := firstSite[name]; dup {
		pass.Reportf(arg.Pos(), "metric family %q already registered at %s; duplicate registrations alias two series into one family", name, pass.Fset.Position(prev))
		return
	}
	firstSite[name] = arg.Pos()
}

// checkLabels validates the variadic label-name arguments.
func checkLabels(pass *analysis.Pass, call *ast.CallExpr, start int) {
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis, "label names passed as a slice cannot be validated; spell them out as literals")
		return
	}
	for _, arg := range call.Args[start:] {
		label, ok := constString(pass, arg)
		if !ok {
			pass.Reportf(arg.Pos(), "metric label name must be a compile-time string constant")
			continue
		}
		if !labelName.MatchString(label) {
			pass.Reportf(arg.Pos(), "metric label name %q is not a valid Prometheus label (%s)", label, labelName)
		}
	}
}

// constString resolves an expression to its compile-time string value.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
