// Package jobd is metriclint fixture data registering metric families
// against the stub obs registry.
package jobd

import "repro/internal/obs"

// register exercises every diagnostic the analyzer produces.
func register(r *obs.Registry, dyn string) {
	r.Counter("jobs_total", "completed jobs")
	r.Counter(dyn, "dynamic name")                                      // want `must be a compile-time string constant`
	r.Counter("bad-name", "dashes are invalid")                         // want `not a valid Prometheus identifier`
	r.Counter("jobs_total", "duplicate family")                         // want `already registered`
	r.CounterVec("runs_total", "runs by outcome", "outcome", "bad-lbl") // want `not a valid Prometheus label`
	r.HistogramVec("latency_seconds", "latency", nil, "phase", "0bad")  // want `not a valid Prometheus label`
	labels := []string{"a"}
	r.GaugeVec("depth", "queue depth", labels...) // want `cannot be validated`
	//resim:metric-ok fixture: name validated by the caller
	r.Counter(dyn, "waived dynamic name")
	r.GaugeFunc("uptime_seconds", "time since start", func() float64 { return 0 })
}

// impostor has a Counter method that is not the obs registry.
type impostor struct{}

// Counter is out of scope for the analyzer.
func (impostor) Counter(name, help string) {}

// unchecked calls the impostor with an invalid name and stays clean.
func unchecked(i impostor) { i.Counter("not-a-metric", "ok") }
