// Package obs mirrors the real registry's constructor surface so
// metriclint call sites can be exercised against fixture code; the
// analyzer matches on the import path and the Registry receiver only.
package obs

// Registry matches the real obs.Registry constructor set.
type Registry struct{}

// Counter is a single-series counter family.
type Counter struct{}

// CounterVec is a labeled counter family.
type CounterVec struct{}

// Gauge is a single-series gauge family.
type Gauge struct{}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{}

// Histogram is a single-series histogram family.
type Histogram struct{}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{}

// Counter mirrors the real signature.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// CounterVec mirrors the real signature.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

// Gauge mirrors the real signature.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeVec mirrors the real signature.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{}
}

// Histogram mirrors the real signature.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}

// HistogramVec mirrors the real signature; labels start at argument 3.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{}
}

// CounterFunc mirrors the real signature.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {}

// GaugeFunc mirrors the real signature.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}
