package wiresafe_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wiresafe"
)

// TestWiresafe checks root discovery (direct and through helpers),
// transitive struct reachability, the json:"-" and //resim:wire-ok escape
// hatches, Marshaler exemption, and silence outside the wire packages.
func TestWiresafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wiresafe.Analyzer,
		"repro/internal/sweepd",
		"repro/internal/plain",
	)
}
