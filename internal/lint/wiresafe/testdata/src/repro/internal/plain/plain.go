// Package plain is outside wiresafe's scope; json use here is unchecked.
package plain

import "encoding/json"

// Untracked has no tags and still passes: plain is not a wire package.
type Untracked struct {
	Field func()
}

// encode ships it anyway.
func encode(u Untracked) ([]byte, error) { return json.Marshal(u) }
