// Package sweepd is wiresafe fixture data: the import path puts it in
// scope, and the structs below flow into encoding/json directly or
// through the writeJSON helper.
package sweepd

import "encoding/json"

// Message is a direct json.Marshal root.
type Message struct {
	Kind     string           `json:"kind"`
	Untagged int              // want `exported field Untagged has no json tag`
	Callback func()           `json:"callback"` // want `field Callback is not JSON-serializable`
	Done     chan int         `json:"-"`
	hidden   int              `json:"hidden"`   // want `unexported field hidden carries a json tag`
	Nested   Inner            `json:"nested"`   // want `field Nested is not JSON-serializable \(Inner\.C: channel\)`
	ByPoint  map[Point]string `json:"by_point"` // want `map key type`

	//resim:wire-ok the sink is resolved to a declarative spec before shipping
	Sink func() `json:"sink"`
}

// Inner rides inside Message and is checked transitively.
type Inner struct {
	C chan int `json:"c"` // want `field C is not JSON-serializable`
}

// Point is a struct map key: invalid as a JSON object key.
type Point struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// send is the direct encoder: Message becomes a wire root here.
func send(m Message) ([]byte, error) {
	return json.Marshal(m)
}

// writeJSON is a thin helper: its any parameter is a JSON sink.
func writeJSON(v any) ([]byte, error) {
	return json.Marshal(v)
}

// Status reaches the encoder only through writeJSON.
type Status struct {
	Code int // want `exported field Code has no json tag`
}

// report ships a Status through the helper.
func report(s Status) ([]byte, error) {
	return writeJSON(s)
}

// Blob owns its encoding: MarshalJSON exempts it wholesale.
type Blob struct {
	Raw func() string
}

// MarshalJSON renders the blob.
func (Blob) MarshalJSON() ([]byte, error) { return []byte(`{}`), nil }

// shipBlob encodes a Blob.
func shipBlob(b Blob) ([]byte, error) { return json.Marshal(b) }

// Local never touches the wire; no tags are required of it.
type Local struct {
	Fn       func()
	Untagged int
}

// keep references Local without serializing it.
func keep(l Local) int { return l.Untagged }
