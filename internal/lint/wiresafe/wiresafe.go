// Package wiresafe implements the resimvet analyzer that keeps the
// sweepd/jobd wire and journal types serializable by construction.
//
// Everything that crosses the sweep fabric or lands in the job journal
// travels as JSON. The runtime guard (sweepd.SpecOf rejecting live sinks
// and tracers) only fires when a bad config is actually shipped; this
// analyzer promotes the rule to compile time. It discovers the wire
// surface from the code itself — every type that flows into an
// encoding/json call in the package, including through thin helpers that
// take an `any` parameter, plus every in-package struct reachable from
// those roots through serialized fields — and requires of each wire
// struct:
//
//   - exported fields carry an explicit json tag (wire names must not
//     silently track Go identifier renames);
//   - no serialized field contains a func, channel, unsafe.Pointer or
//     interface value (non-serializable, or serializable only by dynamic
//     accident), at any depth, unless the carrying type implements
//     json.Marshaler or encoding.TextMarshaler and so owns its encoding;
//   - map keys are strings, integers or text marshalers (anything else
//     fails at encode time);
//   - unexported fields do not carry json tags (encoding/json ignores
//     them; the tag is a lie).
//
// The escape hatches are `json:"-"` on the field — the same spelling the
// encoder honors — or a //resim:wire-ok <reason> annotation for fields
// whose serializability the analyzer cannot see.
package wiresafe

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer checks that JSON-bound structs in wire packages contain only
// serializable, explicitly tagged fields.
var Analyzer = &analysis.Analyzer{
	Name: "wiresafe",
	Doc: "wire/journal structs must be fully serializable: json tags on exported fields, no func/chan/interface values\n" +
		"\nPromotes sweepd.SpecOf's runtime rejection of unserializable config\nto compile time; see docs/STATIC_ANALYSIS.md#wiresafe.",
	Run: run,
}

// Directive is the analyzer's escape-hatch annotation name.
const Directive = "wire-ok"

// wirePackages are the packages whose JSON surface is a cross-process
// contract (the sweep fabric protocol and the job journal/API).
var wirePackages = map[string]bool{
	"repro/internal/sweepd": true,
	"repro/internal/jobd":   true,
}

func run(pass *analysis.Pass) (any, error) {
	if !wirePackages[pass.Pkg.Path()] {
		return nil, nil
	}
	dirs := lintutil.ParseDirectives(pass.Fset, pass.Files)

	roots := jsonRoots(pass)
	wire := map[*types.Named]bool{}
	for _, t := range roots {
		addReachable(pass.Pkg, t, wire)
	}

	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Package) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok || !wire[named] {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				checkStruct(pass, dirs, named, st)
			}
			return true
		})
	}
	return nil, nil
}

// jsonRoots finds every type the package hands to encoding/json. Helpers
// with interface-typed parameters that forward to a JSON call (writeJSON,
// client request wrappers) are resolved to their call sites, iterating to
// a fixpoint so chains of helpers still seed their concrete argument
// types.
func jsonRoots(pass *analysis.Pass) []types.Type {
	// sinkParams[fn] marks the parameter indices of fn that reach a JSON
	// encoder when fn is called.
	sinkParams := map[*types.Func]map[int]bool{}
	var roots []types.Type

	seed := func(arg ast.Expr, enclosing *types.Func) {
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			arg = u.X
		}
		// An identifier naming an interface-typed parameter of the
		// enclosing function makes that parameter a sink; a concrete
		// expression is a root type.
		if id, ok := arg.(*ast.Ident); ok && enclosing != nil {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				sig := enclosing.Type().(*types.Signature)
				for i := 0; i < sig.Params().Len(); i++ {
					if sig.Params().At(i) == v {
						if types.IsInterface(v.Type()) {
							if sinkParams[enclosing] == nil {
								sinkParams[enclosing] = map[int]bool{}
							}
							sinkParams[enclosing][i] = true
							return
						}
					}
				}
			}
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil {
			roots = append(roots, tv.Type)
		}
	}

	// visit walks every function body once per fixpoint round, seeding
	// from direct encoding/json calls and from calls to known sinks.
	visit := func() bool {
		before := len(roots)
		grewSinks := false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				enclosing, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					nSinks := len(sinkParams[enclosing])
					for _, idx := range sinkArgs(pass, call) {
						if idx < len(call.Args) {
							seed(call.Args[idx], enclosing)
						}
					}
					if fn := calleeFunc(pass, call); fn != nil {
						for idx := range sinkParams[fn] {
							if idx < len(call.Args) {
								seed(call.Args[idx], enclosing)
							}
						}
					}
					if len(sinkParams[enclosing]) != nSinks {
						grewSinks = true
					}
					return true
				})
			}
		}
		return len(roots) != before || grewSinks
	}
	for rounds := 0; rounds < 10 && visit(); rounds++ {
	}
	return roots
}

// sinkArgs reports which argument indices of the call flow into JSON
// encoding, for direct encoding/json entry points.
func sinkArgs(pass *analysis.Pass, call *ast.CallExpr) []int {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return nil
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent":
		return []int{0}
	case "Unmarshal":
		return []int{1}
	case "Encode", "Decode": // methods on *Encoder / *Decoder
		return []int{0}
	}
	return nil
}

// calleeFunc resolves a call's static callee, if it is a declared
// function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// addReachable adds every named struct declared in pkg that is reachable
// from t through serialized fields (pointers, slices, arrays and maps
// included; fields tagged json:"-" excluded) to the wire set.
func addReachable(pkg *types.Package, t types.Type, wire map[*types.Named]bool) {
	switch t := t.(type) {
	case *types.Pointer:
		addReachable(pkg, t.Elem(), wire)
	case *types.Slice:
		addReachable(pkg, t.Elem(), wire)
	case *types.Array:
		addReachable(pkg, t.Elem(), wire)
	case *types.Map:
		addReachable(pkg, t.Elem(), wire)
	case *types.Named:
		st, ok := t.Underlying().(*types.Struct)
		if !ok || t.Obj().Pkg() != pkg || wire[t] {
			return
		}
		wire[t] = true
		for i := 0; i < st.NumFields(); i++ {
			if tagName(st.Tag(i)) == "-" {
				continue
			}
			addReachable(pkg, st.Field(i).Type(), wire)
		}
	}
}

// tagName extracts the json tag's name component ("-" for opted-out
// fields, "" when no tag is present).
func tagName(tag string) string {
	jt, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return ""
	}
	if i := indexComma(jt); i >= 0 {
		return jt[:i]
	}
	return jt
}

func indexComma(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			return i
		}
	}
	return -1
}

// hasJSONTag reports whether the raw struct tag has a json key at all.
func hasJSONTag(tag string) bool {
	_, ok := reflect.StructTag(tag).Lookup("json")
	return ok
}

// checkStruct applies the wire rules to one struct declaration.
func checkStruct(pass *analysis.Pass, dirs *lintutil.Directives, named *types.Named, st *ast.StructType) {
	// A type that owns its encoding is exempt wholesale.
	if ownsEncoding(named) {
		return
	}
	tstruct := named.Underlying().(*types.Struct)
	idx := 0
	for _, f := range st.Fields.List {
		names := f.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil} // embedded
		}
		for _, name := range names {
			field := tstruct.Field(idx)
			tag := tstruct.Tag(idx)
			idx++
			pos := f.Type.Pos()
			fieldDesc := "embedded field " + field.Name()
			if name != nil {
				pos = name.Pos()
				fieldDesc = "field " + name.Name
			}
			if tagName(tag) == "-" {
				continue // explicitly off the wire
			}
			if lintutil.HasDirective(f.Doc, Directive) || lintutil.HasDirective(f.Comment, Directive) {
				continue
			}
			if !field.Exported() {
				if hasJSONTag(tag) {
					pass.Reportf(pos, "wire struct %s: unexported %s carries a json tag, but encoding/json ignores unexported fields",
						named.Obj().Name(), fieldDesc)
				}
				continue // never serialized
			}
			if name != nil && !hasJSONTag(tag) {
				pass.Reportf(pos, "wire struct %s: exported %s has no json tag; wire names must be explicit, or opt out with json:\"-\"",
					named.Obj().Name(), fieldDesc)
			}
			if path := unserializable(field.Type(), nil); path != "" {
				pass.Reportf(pos, "wire struct %s: %s is not JSON-serializable (%s); tag it json:\"-\", ship a declarative spec instead, or annotate //resim:%s <reason>",
					named.Obj().Name(), fieldDesc, path, Directive)
			}
		}
	}
}

// ownsEncoding reports whether t (or *t) implements json.Marshaler or
// encoding.TextMarshaler, detected structurally so the analyzer does not
// itself import those packages into the checked graph.
func ownsEncoding(t types.Type) bool {
	for _, name := range []string{"MarshalJSON", "MarshalText"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name)
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 2 {
				return true
			}
		}
	}
	return false
}

// unserializable walks t through serialized fields and returns a
// human-readable path to the first func/chan/unsafe.Pointer/interface it
// reaches, or "" when the type is statically serializable. Types that own
// their encoding stop the walk.
func unserializable(t types.Type, seen []types.Type) string {
	for _, s := range seen {
		if s == t {
			return ""
		}
	}
	seen = append(seen, t)

	switch t := t.(type) {
	case *types.Basic:
		if t.Kind() == types.UnsafePointer {
			return "unsafe.Pointer"
		}
		return ""
	case *types.Signature:
		return "func value"
	case *types.Chan:
		return "channel"
	case *types.Interface:
		return fmt.Sprintf("interface value %s; the dynamic type is not a wire contract", t)
	case *types.Pointer:
		return unserializable(t.Elem(), seen)
	case *types.Slice:
		return prefixPath("element: ", unserializable(t.Elem(), seen))
	case *types.Array:
		return prefixPath("element: ", unserializable(t.Elem(), seen))
	case *types.Map:
		if bad := badMapKey(t.Key()); bad != "" {
			return bad
		}
		return prefixPath("map value: ", unserializable(t.Elem(), seen))
	case *types.Named:
		if ownsEncoding(t) {
			return ""
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() || tagName(st.Tag(i)) == "-" {
					continue
				}
				if path := unserializable(f.Type(), seen); path != "" {
					return fmt.Sprintf("%s.%s: %s", t.Obj().Name(), f.Name(), path)
				}
			}
			return ""
		}
		return unserializable(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if !f.Exported() || tagName(t.Tag(i)) == "-" {
				continue
			}
			if path := unserializable(f.Type(), seen); path != "" {
				return fmt.Sprintf("%s: %s", f.Name(), path)
			}
		}
		return ""
	}
	return ""
}

// prefixPath prepends context to a non-empty unserializable path.
func prefixPath(prefix, path string) string {
	if path == "" {
		return ""
	}
	return prefix + path
}

// badMapKey reports why a map key type cannot be a JSON object key, or ""
// when it can (strings, integers, text marshalers).
func badMapKey(k types.Type) string {
	if ownsEncoding(k) {
		return ""
	}
	if b, ok := k.Underlying().(*types.Basic); ok {
		if b.Info()&(types.IsString|types.IsInteger) != 0 {
			return ""
		}
	}
	return fmt.Sprintf("map key type %s cannot be a JSON object key", k)
}
