// Package analysistest runs a resimvet analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract.
//
// Fixture packages live under <testdata>/src/<import-path>, GOPATH-style,
// and are type-checked under exactly that import path — so an analyzer
// whose scope is hardcoded to repro/internal/core can be exercised by a
// fixture package at testdata/src/repro/internal/core. Imports resolve
// testdata-first (letting fixtures stub module packages such as
// repro/internal/obs) and fall back to standard-library export data from
// the build cache.
//
// Expectations are trailing comments of the form
//
//	expr // want `regexp` `another`
//
// Each pattern must match one diagnostic reported on that line; any
// unmatched diagnostic or unmet expectation fails the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestData returns the caller's testdata directory, the conventional root
// for fixture packages.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package under dir/src/<path>, applies the
// analyzer, and reports every mismatch between its diagnostics and the
// fixtures' // want expectations through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	l := &loader{
		dir:  dir,
		fset: fset,
		memo: map[string]*pkgInfo{},
		std:  load.NewGCImporter(fset, (&stdExports{files: map[string]string{}}).exportFor),
	}
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     p.files,
			Pkg:       p.pkg,
			TypesInfo: p.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, fset, p.files, diags)
	}
}

// expectation is one compiled // want pattern anchored to a file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var (
	wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)
	// quoted matches one backquoted or double-quoted Go string literal.
	quoted = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)
)

// checkExpectations diffs reported diagnostics against the // want
// comments in files, in both directions.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var exps []*expectation
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoted.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, e := range exps {
			if !e.met && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range exps {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// pkgInfo is one loaded fixture package.
type pkgInfo struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	err   error
}

// loader type-checks fixture packages from dir/src, importing sibling
// fixtures recursively and everything else from std export data.
type loader struct {
	dir  string
	fset *token.FileSet
	memo map[string]*pkgInfo
	std  types.ImporterFrom
}

// load parses and type-checks the fixture package at the given import
// path, memoizing the result.
func (l *loader) load(path string) (*pkgInfo, error) {
	if p, ok := l.memo[path]; ok {
		return p, p.err
	}
	p := &pkgInfo{}
	l.memo[path] = p

	srcDir := filepath.Join(l.dir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		p.err = err
		return p, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		p.err = fmt.Errorf("no fixture sources in %s", srcDir)
		return p, p.err
	}
	files, err := load.ParseFiles(l.fset, srcDir, names)
	if err != nil {
		p.err = err
		return p, err
	}
	pkg, info, err := load.Check(l.fset, path, files, l)
	if err != nil {
		p.err = err
		return p, err
	}
	p.files, p.pkg, p.info = files, pkg, info
	return p, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: fixture packages first, then
// standard-library export data.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.dir, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// stdExports resolves standard-library import paths to build-cache export
// files, shelling out to `go list -export` once per unseen path; -deps
// pre-populates the cache with each package's transitive closure.
type stdExports struct {
	mu    sync.Mutex
	files map[string]string
}

// exportFor returns the export-data file for one import path.
func (s *stdExports) exportFor(path string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[path]; ok {
		return f, nil
	}
	var stderr bytes.Buffer
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return "", fmt.Errorf("go list -export %s: decode: %v", path, err)
		}
		if lp.Export != "" {
			s.files[lp.ImportPath] = lp.Export
		}
	}
	f, ok := s.files[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}
