package multicore

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/funcsim"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

func source(t *testing.T, name string, limit uint64, cfg core.Config) *funcsim.Source {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.NewSource(cfg.TraceConfig(), limit)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestLockstepMatchesIndependentRuns(t *testing.T) {
	// With private memory systems, lockstep execution must produce exactly
	// the same per-core results as running each engine alone, and the
	// cluster finishes when the slowest core does.
	cfg := core.DefaultConfig()
	const limit = 15000

	var solo []core.Result
	for _, name := range []string{"gzip", "parser"} {
		eng, err := core.New(cfg, source(t, name, limit, cfg), funcsim.CodeBase)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		solo = append(solo, res)
	}

	cl, err := New([]CoreSpec{
		{Name: "gzip", Config: cfg, Source: source(t, "gzip", limit, cfg), StartPC: funcsim.CodeBase},
		{Name: "parser", Config: cfg, Source: source(t, "parser", limit, cfg), StartPC: funcsim.CodeBase},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solo {
		if res.PerCore[i].Committed != solo[i].Committed {
			t.Errorf("core %d committed %d, solo %d", i, res.PerCore[i].Committed, solo[i].Committed)
		}
		if res.PerCore[i].Cycles != solo[i].Cycles {
			t.Errorf("core %d cycles %d, solo %d", i, res.PerCore[i].Cycles, solo[i].Cycles)
		}
	}
	slowest := solo[0].Cycles
	if solo[1].Cycles > slowest {
		slowest = solo[1].Cycles
	}
	if res.Cycles != slowest {
		t.Errorf("cluster cycles = %d, want slowest core %d", res.Cycles, slowest)
	}
	wantAgg := (float64(solo[0].Committed) + float64(solo[1].Committed)) / float64(slowest)
	if got := res.AggregateIPC(); got != wantAgg {
		t.Errorf("aggregate IPC = %v, want %v", got, wantAgg)
	}
}

func TestSharedL2Interference(t *testing.T) {
	// Two cores with tiny private L1s sharing a small L2 must see more L2
	// misses than one core running alone with the same L2: the shared tags
	// are a real interference channel.
	l1 := cache.Config{Name: "dl1", SizeBytes: 1 << 10, Assoc: 2, BlockBytes: 64,
		HitLatency: 1, MissLatency: 20}
	const limit = 15000

	soloMisses := func() uint64 {
		shared, err := SharedL2(8<<10, 4, 64, 6, 40)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		if err := AttachSharedDL1(&cfg, l1, shared); err != nil {
			t.Fatal(err)
		}
		cl, err := New([]CoreSpec{
			{Name: "bzip2", Config: cfg, Source: source(t, "bzip2", limit, cfg), StartPC: funcsim.CodeBase},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return shared.Stats().Misses()
	}()

	sharedMisses := func() uint64 {
		shared, err := SharedL2(8<<10, 4, 64, 6, 40)
		if err != nil {
			t.Fatal(err)
		}
		var specs []CoreSpec
		for _, name := range []string{"bzip2", "vortex"} {
			cfg := core.DefaultConfig()
			if err := AttachSharedDL1(&cfg, l1, shared); err != nil {
				t.Fatal(err)
			}
			specs = append(specs, CoreSpec{
				Name: name, Config: cfg,
				Source: source(t, name, limit, cfg), StartPC: funcsim.CodeBase,
			})
		}
		cl, err := New(specs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return shared.Stats().Misses()
	}()

	if sharedMisses <= soloMisses {
		t.Errorf("shared L2 misses %d not above solo %d", sharedMisses, soloMisses)
	}
}

func TestAggregateMIPSModel(t *testing.T) {
	cfg := core.DefaultConfig()
	cl, err := New([]CoreSpec{
		{Name: "vpr", Config: cfg, Source: source(t, "vpr", 10000, cfg), StartPC: funcsim.CodeBase},
		{Name: "gzip", Config: cfg, Source: source(t, "gzip", 10000, cfg), StartPC: funcsim.CodeBase},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := cfg.MinorCyclesPerMajor()
	want := fpga.Virtex5.MinorClockMHz / float64(k) * res.AggregateIPC()
	if got := res.AggregateMIPS(fpga.Virtex5, k); got != want {
		t.Errorf("aggregate MIPS = %v, want %v", got, want)
	}
	// Two cores in lockstep must beat one core's throughput.
	if res.AggregateIPC() <= res.PerCore[0].IPC() {
		t.Error("aggregate IPC not above single-core IPC")
	}
}

func TestRunRespectsMaxCycles(t *testing.T) {
	cfg := core.DefaultConfig()
	cl, err := New([]CoreSpec{
		{Config: cfg, Source: source(t, "gzip", 100000, cfg), StartPC: funcsim.CodeBase},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 50 {
		t.Errorf("cycles = %d, want 50", res.Cycles)
	}
	if res.Names[0] != "core0" {
		t.Errorf("default name = %q", res.Names[0])
	}
}

func TestEmptyClusterRejected(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty cluster accepted")
	}
	bad := core.DefaultConfig()
	bad.Width = 0
	if _, err := New([]CoreSpec{{Config: bad}}); err == nil {
		t.Error("invalid core config accepted")
	}
}

// TestClusterSharesCachedTrace builds a homogeneous cluster whose cores
// consume independent snapshots of one cached trace — the session-level
// wiring — and checks the lockstep outcome matches cores that each
// regenerated the trace themselves.
func TestClusterSharesCachedTrace(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	const limit = 5000

	traces := tracecache.New(tracecache.Config{})
	var cachedSpecs, freshSpecs []CoreSpec
	for i := 0; i < 2; i++ {
		tr, err := traces.Get(context.Background(), p, cfg.TraceConfig(), limit)
		if err != nil {
			t.Fatal(err)
		}
		cachedSpecs = append(cachedSpecs, CoreSpec{
			Name: "cached", Config: cfg, Source: tr.Source(), StartPC: tr.StartPC(),
		})
		src, err := p.NewSource(cfg.TraceConfig(), limit)
		if err != nil {
			t.Fatal(err)
		}
		freshSpecs = append(freshSpecs, CoreSpec{
			Name: "fresh", Config: cfg, Source: src, StartPC: funcsim.CodeBase,
		})
	}
	if got := traces.Generations(); got != 1 {
		t.Fatalf("generations = %d, want 1", got)
	}

	cachedCl, err := New(cachedSpecs)
	if err != nil {
		t.Fatal(err)
	}
	freshCl, err := New(freshSpecs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cachedCl.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := freshCl.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycles: cached cluster %d, fresh cluster %d", a.Cycles, b.Cycles)
	}
	for i := range a.PerCore {
		if a.PerCore[i].Counters != b.PerCore[i].Counters {
			t.Errorf("core %d: cached snapshot run differs from regeneration", i)
		}
	}
}
