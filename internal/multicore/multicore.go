// Package multicore implements the paper's future-work direction: "it is
// possible to fit multiple ReSim instances in a single FPGA and simulate
// multi-core systems" (§VI). A Cluster steps several independent ReSim
// engines in lockstep major cycles — the way multiple instances sharing one
// FPGA clock would run — and optionally backs their private L1 data caches
// with one shared L2, so the cores interfere in the shared tags exactly as
// a real CMP's workloads would.
package multicore

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/trace"
)

// CoreSpec describes one simulated core.
type CoreSpec struct {
	Name    string
	Config  core.Config
	Source  trace.Source
	StartPC uint32
}

// Cluster is a set of lockstep ReSim instances.
type Cluster struct {
	names   []string
	engines []*core.Engine
	cycles  uint64

	observer core.Observer
	obsEvery uint64
}

// New builds a cluster from the given core specifications.
func New(specs []CoreSpec) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, errors.New("multicore: no cores")
	}
	c := &Cluster{}
	for i, s := range specs {
		eng, err := core.New(s.Config, s.Source, s.StartPC)
		if err != nil {
			return nil, fmt.Errorf("multicore: core %d (%s): %w", i, s.Name, err)
		}
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("core%d", i)
		}
		c.names = append(c.names, name)
		c.engines = append(c.engines, eng)
	}
	return c, nil
}

// SharedL2 builds one L2 to be shared by all cores' data caches (pass it to
// AttachSharedDL1 per config before New).
func SharedL2(sizeBytes, assoc, blockBytes, hitLat, missLat int) (cache.Model, error) {
	cfg := cache.Config{Name: "l2", SizeBytes: sizeBytes, Assoc: assoc,
		BlockBytes: blockBytes, HitLatency: hitLat, MissLatency: missLat}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.New(cfg), nil
}

// AttachSharedDL1 gives cfg a private L1 data cache backed by the shared
// lower level.
func AttachSharedDL1(cfg *core.Config, l1 cache.Config, shared cache.Model) error {
	h, err := cache.NewHierarchy(l1, shared)
	if err != nil {
		return err
	}
	cfg.DCache = h
	return nil
}

// Step advances every unfinished core by one major cycle (lockstep).
func (c *Cluster) Step() error {
	for i, eng := range c.engines {
		if eng.Done() {
			continue
		}
		if err := eng.Cycle(); err != nil {
			return fmt.Errorf("multicore: %s: %w", c.names[i], err)
		}
	}
	c.cycles++
	return nil
}

// Done reports whether every core has drained its trace.
func (c *Cluster) Done() bool {
	for _, eng := range c.engines {
		if !eng.Done() {
			return false
		}
	}
	return true
}

// Result is the outcome of a cluster run.
type Result struct {
	Cycles  uint64 // lockstep major cycles until the slowest core drained
	Names   []string
	PerCore []core.Result
}

// Observe registers an observer that receives cluster-aggregate Progress
// callbacks (Core = -1) every interval lockstep cycles from Run
// (0 = core.DefaultObserverInterval).
func (c *Cluster) Observe(obs core.Observer, interval uint64) {
	c.observer = obs
	c.obsEvery = interval
}

// Run steps the cluster until every core finishes or maxCycles elapse
// (0 = unbounded). Cancellation cadence and observer semantics come from
// the shared core.Drive loop: the context is polled every
// core.CtxCheckInterval lockstep cycles, and a cancelled run returns the
// statistics accumulated so far together with ctx.Err().
func (c *Cluster) Run(ctx context.Context, maxCycles uint64) (Result, error) {
	err := core.Drive(ctx, c.observer, c.obsEvery,
		func() uint64 { return c.cycles },
		func() bool {
			return c.Done() || (maxCycles != 0 && c.cycles >= maxCycles)
		},
		c.Step,
		c.progress)
	return c.result(), err
}

// progress snapshots the cluster aggregate for an observer callback.
func (c *Cluster) progress(final bool) core.Progress {
	p := core.Progress{Core: -1, Cycles: c.cycles, Final: final}
	for _, eng := range c.engines {
		p.Committed += eng.Result().Committed
	}
	if c.cycles > 0 {
		p.IPC = float64(p.Committed) / float64(c.cycles)
	}
	return p
}

func (c *Cluster) result() Result {
	r := Result{Cycles: c.cycles, Names: c.names}
	for _, eng := range c.engines {
		r.PerCore = append(r.PerCore, eng.Result())
	}
	return r
}

// AggregateIPC sums committed instructions across cores per lockstep cycle.
func (r Result) AggregateIPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var committed uint64
	for _, res := range r.PerCore {
		committed += res.Committed
	}
	return float64(committed) / float64(r.Cycles)
}

// AggregateMIPS models the cluster's simulation throughput on dev: all
// instances share the minor-cycle clock, so the cluster completes
// f_minor/K lockstep major cycles per second, each retiring the aggregate
// IPC. Every core must use the same organization and width for a lockstep
// build; k is their common minor-cycles-per-major-cycle.
func (r Result) AggregateMIPS(dev fpga.Device, k int) float64 {
	return fpga.SimulationMIPS(dev, k, r.AggregateIPC())
}
