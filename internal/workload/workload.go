// Package workload generates the synthetic stand-ins for the five SPECINT
// CPU2000 programs of the paper's evaluation (gzip, bzip2, parser, vortex,
// vpr with input=train). SPEC binaries and inputs cannot be redistributed,
// so each profile builds a real program for the internal ISA out of kernels
// that reproduce the benchmark's timing-relevant character — instruction
// mix, exploitable ILP, branch predictability, call depth, memory footprint
// and access pattern (see DESIGN.md, substitutions). The functional
// simulator executes these programs to produce ReSim traces, so the branch
// predictor, caches, LSQ and reorder buffer all see realistic, correlated
// dynamic streams rather than i.i.d. synthetic records.
//
// Kernels:
//
//	stream    sequential loads over an array (+ accumulate)
//	writes    strided stores over an array
//	chase     pointer chasing over a shuffled circular linked list
//	arith     k independent accumulator chains (ILP knob) + mul/div
//	branchy   data-dependent branches with a bias knob
//	calls     call chains of configurable depth (RAS exercise)
//	jumptable indirect jumps through a biased jump table
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/funcsim"
	"repro/internal/isa"
)

// Register allocation for generated programs.
const (
	rArrMask isa.Reg = 1  // array region mask
	rRoveArr isa.Reg = 2  // persistent roving offset over the array region
	rConst3  isa.Reg = 5  // small constant for mul/div
	rVal     isa.Reg = 6  // scratch value
	rBrBase  isa.Reg = 7  // branch-data region base
	rOuter   isa.Reg = 8  // outer loop counter
	rArray   isa.Reg = 9  // array region base
	rListCur isa.Reg = 10 // pointer-chase cursor
	rListHd  isa.Reg = 11 // list head
	rCnt     isa.Reg = 12 // inner loop counter
	rTmp     isa.Reg = 14
	rJT      isa.Reg = 15 // jump table base
	rAcc0    isa.Reg = 16 // accumulators r16..r23
	rRove    isa.Reg = 24 // persistent roving offset (branch data, jump table)
	rBrMask  isa.Reg = 25
	rScratch isa.Reg = 26
	rJTMask  isa.Reg = 27
)

// maxChains bounds arith ILP chains to the r16..r23 accumulator file.
const maxChains = 8

// jtSlots is the jump-table size in slots; contents are biased toward one
// landing pad according to JTBias.
const jtSlots = 64

// listNodeBytes spreads pointer-chase nodes one per cache line.
const listNodeBytes = 64

// Profile describes one synthetic benchmark. Kernel fields give inner
// iterations per outer-loop pass; zero disables the kernel.
type Profile struct {
	Name        string
	Description string
	Seed        int64

	Stream    int
	Writes    int
	Chase     int
	Arith     int
	Branchy   int
	Calls     int
	JumpTable int
	DivLoop   int // iterations of a small divide-bound loop
	ByteOps   int // byte-granular read-modify-write over the array region

	Chains     int     // arith ILP (1..8)
	WithMul    bool    // one mul per arith iteration
	WithDiv    bool    // one div per arith iteration
	Stride     int     // stream/writes step in bytes (0 = 4, sequential)
	ArrayBytes int     // stream/writes region (power of two)
	BranchData int     // branchy region bytes (power of two)
	BranchBias float64 // P(branch data word is odd) — predictability knob
	ListNodes  int     // pointer-chase nodes (64 B apart, shuffled)
	CallDepth  int     // call-chain depth
	JTPads     int     // distinct jump-table landing pads
	JTBias     float64 // fraction of table slots pointing at pad 0
}

// Validate reports profile construction errors.
func (p Profile) Validate() error {
	pow2 := func(field string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("workload %s: %s must be a positive power of two, got %d", p.Name, field, v)
		}
		return nil
	}
	if p.Chains < 0 || p.Chains > maxChains {
		return fmt.Errorf("workload %s: Chains %d out of range [0,%d]", p.Name, p.Chains, maxChains)
	}
	if p.Stream > 0 || p.Writes > 0 || p.ByteOps > 0 {
		if err := pow2("ArrayBytes", p.ArrayBytes); err != nil {
			return err
		}
		if p.Stride < 0 || p.Stride%4 != 0 {
			return fmt.Errorf("workload %s: Stride %d must be a non-negative multiple of 4", p.Name, p.Stride)
		}
	}
	if p.Branchy > 0 {
		if err := pow2("BranchData", p.BranchData); err != nil {
			return err
		}
		if p.BranchBias < 0 || p.BranchBias > 1 {
			return fmt.Errorf("workload %s: BranchBias %v", p.Name, p.BranchBias)
		}
	}
	if p.Chase > 0 && p.ListNodes < 2 {
		return fmt.Errorf("workload %s: Chase needs ListNodes >= 2", p.Name)
	}
	if p.Calls > 0 && (p.CallDepth < 1 || p.CallDepth > 16) {
		return fmt.Errorf("workload %s: CallDepth %d", p.Name, p.CallDepth)
	}
	if p.JumpTable > 0 {
		if p.JTPads < 1 || p.JTPads > 16 {
			return fmt.Errorf("workload %s: JTPads %d", p.Name, p.JTPads)
		}
		if p.JTBias < 0 || p.JTBias > 1 {
			return fmt.Errorf("workload %s: JTBias %v", p.Name, p.JTBias)
		}
	}
	return nil
}

// Build assembles the profile into a loadable program.
func (p Profile) Build() (*funcsim.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Data layout (all within the funcsim arena).
	layout := newLayout(funcsim.DataBase)
	arrayBase := layout.region(max(p.ArrayBytes, 4))
	brBase := layout.region(max(p.BranchData, 4))
	listBase := layout.region(max(p.ListNodes, 1) * listNodeBytes)
	jtBase := layout.region(jtSlots * 4)

	b := asm.NewBuilder()

	// Initialization.
	b.Emit(isa.Li(rArray, arrayBase)...)
	b.Emit(isa.Li(rBrBase, brBase)...)
	b.Emit(isa.Li(rListHd, listBase)...)
	b.Emit(isa.Add(rListCur, rListHd, isa.RegZero))
	b.Emit(isa.Li(rJT, jtBase)...)
	b.Emit(isa.Li(rArrMask, uint32(max(p.ArrayBytes, 4)-1))...)
	b.Emit(isa.Li(rBrMask, uint32(max(p.BranchData, 4)-1))...)
	b.Emit(isa.Li(rJTMask, uint32(jtSlots*4-1))...)
	b.Emit(isa.I(isa.OpOri, rConst3, isa.RegZero, 3))
	// Effectively unbounded outer loop; tracing is bounded by the caller.
	b.Emit(isa.Li(rOuter, 1<<26)...)

	b.Label("outer")
	stride := p.Stride
	if stride == 0 {
		stride = 4
	}
	if p.Stream > 0 {
		emitStream(b, p.Stream, stride)
	}
	if p.ByteOps > 0 {
		emitByteOps(b, p.ByteOps)
	}
	if p.Arith > 0 {
		emitArith(b, p)
	}
	if p.Branchy > 0 {
		emitBranchy(b, p.Branchy)
	}
	if p.Chase > 0 {
		emitChase(b, p.Chase)
	}
	if p.Writes > 0 {
		emitWrites(b, p.Writes, stride)
	}
	if p.DivLoop > 0 {
		emitDivLoop(b, p.DivLoop)
	}
	if p.Calls > 0 {
		emitCallLoop(b, p.Calls, p.CallDepth)
	}
	if p.JumpTable > 0 {
		emitJumpTable(b, p.JumpTable, p.JTPads)
	}
	b.Emit(isa.Addi(rOuter, rOuter, -1))
	b.Branch(isa.OpBgtz, rOuter, 0, "outer")
	b.Emit(isa.Halt())

	if p.Calls > 0 {
		emitCallees(b, p.CallDepth)
	}

	code, err := b.Assemble(funcsim.CodeBase)
	if err != nil {
		return nil, err
	}

	prog := &funcsim.Program{
		Entry:    funcsim.CodeBase,
		Segments: []funcsim.Segment{funcsim.AssembleAt(funcsim.CodeBase, code)},
	}

	// Array region: random words.
	array := make([]byte, max(p.ArrayBytes, 4))
	for i := 0; i+4 <= len(array); i += 4 {
		binary.LittleEndian.PutUint32(array[i:], rng.Uint32())
	}
	prog.Segments = append(prog.Segments, funcsim.Segment{Base: arrayBase, Data: array})

	// Branch-data region: low bit set with probability BranchBias.
	if p.Branchy > 0 {
		br := make([]byte, p.BranchData)
		for i := 0; i+4 <= len(br); i += 4 {
			v := rng.Uint32() &^ 1
			if rng.Float64() < p.BranchBias {
				v |= 1
			}
			binary.LittleEndian.PutUint32(br[i:], v)
		}
		prog.Segments = append(prog.Segments, funcsim.Segment{Base: brBase, Data: br})
	}

	// Linked list: circular, shuffled node order for poor locality.
	if p.Chase > 0 {
		nodes := make([]byte, p.ListNodes*listNodeBytes)
		perm := rng.Perm(p.ListNodes)
		// Chain node perm[i] -> perm[i+1]; the first node must be the list
		// head at listBase, so rotate the permutation to start at node 0.
		for i, v := range perm {
			if v == 0 {
				perm[0], perm[i] = perm[i], perm[0]
				break
			}
		}
		for i := 0; i < p.ListNodes; i++ {
			cur := perm[i]
			next := perm[(i+1)%p.ListNodes]
			addr := listBase + uint32(next*listNodeBytes)
			binary.LittleEndian.PutUint32(nodes[cur*listNodeBytes:], addr)
		}
		prog.Segments = append(prog.Segments, funcsim.Segment{Base: listBase, Data: nodes})
	}

	// Jump table: biased pad addresses.
	if p.JumpTable > 0 {
		jt := make([]byte, jtSlots*4)
		for i := 0; i < jtSlots; i++ {
			pad := 0
			if rng.Float64() >= p.JTBias {
				pad = 1 + rng.Intn(p.JTPads)
				if pad >= p.JTPads {
					pad = p.JTPads - 1
				}
			}
			addr, err := b.AddrOf(fmt.Sprintf("jtpad%d", pad), funcsim.CodeBase)
			if err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint32(jt[i*4:], addr)
		}
		prog.Segments = append(prog.Segments, funcsim.Segment{Base: jtBase, Data: jt})
	}

	return prog, nil
}

// NewSource builds the program, loads it and returns an on-the-fly trace
// source over it (limit bounds correct-path instructions; 0 = run free).
func (p Profile) NewSource(tc funcsim.TraceConfig, limit uint64) (*funcsim.Source, error) {
	prog, err := p.Build()
	if err != nil {
		return nil, err
	}
	m, err := funcsim.NewMachine(prog, 0)
	if err != nil {
		return nil, err
	}
	return funcsim.NewSource(m, tc, limit), nil
}

// layout hands out aligned data regions.
type layout struct{ next uint32 }

func newLayout(base uint32) *layout { return &layout{next: base} }

func (l *layout) region(bytes int) uint32 {
	// 256-byte alignment keeps regions cache-line disjoint.
	l.next = (l.next + 255) &^ 255
	r := l.next
	l.next += uint32(bytes)
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- kernel emitters -------------------------------------------------------

// emitStream walks the array region sequentially via the persistent roving
// offset, so successive outer passes cover the whole ArrayBytes working set
// with high spatial locality (one miss per cache line when it exceeds L1).
func emitStream(b *asm.Builder, iters, stride int) {
	lbl := fmt.Sprintf("stream%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.R(isa.OpAnd, rScratch, rRoveArr, rArrMask))
	b.Emit(isa.Add(rScratch, rScratch, rArray))
	b.Emit(isa.Lw(rTmp, rScratch, 0))
	b.Emit(isa.Add(rAcc0, rAcc0, rTmp))
	b.Emit(isa.Addi(rRoveArr, rRoveArr, int32(stride)))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

func emitWrites(b *asm.Builder, iters, stride int) {
	lbl := fmt.Sprintf("writes%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.R(isa.OpAnd, rScratch, rRoveArr, rArrMask))
	b.Emit(isa.Add(rScratch, rScratch, rArray))
	b.Emit(isa.Sw(rAcc0, rScratch, 0))
	b.Emit(isa.Addi(rRoveArr, rRoveArr, int32(stride)))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

// emitByteOps is a byte-granular read-modify-write walk over the array —
// the inner-loop character of byte-oriented compressors (gzip's literal
// handling, bzip2's BWT byte shuffling). The sb depends on the lb through
// the increment, exercising the LSQ's sub-word coverage checks.
func emitByteOps(b *asm.Builder, iters int) {
	lbl := fmt.Sprintf("byteops%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.R(isa.OpAnd, rScratch, rRoveArr, rArrMask))
	b.Emit(isa.Add(rScratch, rScratch, rArray))
	b.Emit(isa.Lb(rTmp, rScratch, 0))
	b.Emit(isa.Addi(rTmp, rTmp, 1))
	b.Emit(isa.Sb(rTmp, rScratch, 0))
	b.Emit(isa.Addi(rRoveArr, rRoveArr, 1))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

// emitDivLoop is a short divide-bound loop: one unpipelined divide per
// iteration plus loop control, modeling division-heavy phases without
// serializing the surrounding kernels.
func emitDivLoop(b *asm.Builder, iters int) {
	lbl := fmt.Sprintf("divloop%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.Div(rTmp, rCnt, rConst3))
	b.Emit(isa.Add(rAcc0+4, rAcc0+4, rTmp))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

func emitChase(b *asm.Builder, iters int) {
	lbl := fmt.Sprintf("chase%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.Lw(rListCur, rListCur, 0)) // cur = cur->next: serialized
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

func emitArith(b *asm.Builder, p Profile) {
	lbl := fmt.Sprintf("arith%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(p.Arith)))
	b.Label(lbl)
	chains := p.Chains
	if chains < 1 {
		chains = 1
	}
	for c := 0; c < chains; c++ {
		acc := rAcc0 + isa.Reg(c)
		b.Emit(isa.Add(acc, acc, rCnt))
	}
	if p.WithMul {
		b.Emit(isa.Mul(rVal, rVal, rConst3))
	}
	if p.WithDiv {
		b.Emit(isa.Div(rTmp, rCnt, rConst3))
	}
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

func emitBranchy(b *asm.Builder, iters int) {
	lbl := fmt.Sprintf("branchy%d", b.Len())
	skip := lbl + "_skip"
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.R(isa.OpAnd, rScratch, rRove, rBrMask))
	b.Emit(isa.Add(rScratch, rScratch, rBrBase))
	b.Emit(isa.Lw(rTmp, rScratch, 0))
	b.Emit(isa.I(isa.OpAndi, rTmp, rTmp, 1))
	b.Branch(isa.OpBeq, rTmp, isa.RegZero, skip)
	b.Emit(isa.Add(rAcc0+1, rAcc0+1, rTmp))
	b.Label(skip)
	b.Emit(isa.Addi(rRove, rRove, 4))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

func emitCallLoop(b *asm.Builder, iters, depth int) {
	lbl := fmt.Sprintf("calls%d", b.Len())
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Call(fmt.Sprintf("fn%d", depth))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}

// emitCallees lays down fn1..fnDepth, where fnK saves ra on the stack,
// calls fnK-1 and returns; fn0 is a small leaf.
func emitCallees(b *asm.Builder, depth int) {
	for k := depth; k >= 1; k-- {
		b.Label(fmt.Sprintf("fn%d", k))
		b.Emit(isa.Addi(isa.RegSP, isa.RegSP, -4))
		b.Emit(isa.Sw(isa.RegRA, isa.RegSP, 0))
		b.Call(fmt.Sprintf("fn%d", k-1))
		b.Emit(isa.Lw(isa.RegRA, isa.RegSP, 0))
		b.Emit(isa.Addi(isa.RegSP, isa.RegSP, 4))
		b.Emit(isa.Jr(isa.RegRA))
	}
	b.Label("fn0")
	b.Emit(isa.Add(rVal, rVal, rConst3))
	b.Emit(isa.Add(rAcc0+2, rAcc0+2, rVal))
	b.Emit(isa.Jr(isa.RegRA))
}

func emitJumpTable(b *asm.Builder, iters, pads int) {
	lbl := fmt.Sprintf("jt%d", b.Len())
	cont := lbl + "_cont"
	b.Emit(isa.I(isa.OpOri, rCnt, isa.RegZero, int32(iters)))
	b.Label(lbl)
	b.Emit(isa.R(isa.OpAnd, rScratch, rRove, rJTMask))
	b.Emit(isa.Add(rScratch, rScratch, rJT))
	b.Emit(isa.Lw(rTmp, rScratch, 0))
	b.Emit(isa.Jr(rTmp)) // indirect jump (rTmp != ra)
	for p := 0; p < pads; p++ {
		b.Label(fmt.Sprintf("jtpad%d", p))
		b.Emit(isa.Addi(rAcc0+3, rAcc0+3, int32(p+1)))
		b.Jump(cont)
	}
	b.Label(cont)
	b.Emit(isa.Addi(rRove, rRove, 4))
	b.Emit(isa.Addi(rCnt, rCnt, -1))
	b.Branch(isa.OpBgtz, rCnt, 0, lbl)
}
