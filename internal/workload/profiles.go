package workload

import "fmt"

// The five SPECINT CPU2000 stand-ins of the paper's evaluation. Each profile
// encodes the benchmark's timing-relevant character; the kernel weights were
// calibrated so the resulting IPC ordering and rough magnitudes match the
// ones implied by the paper's Table 1 (see DESIGN.md and EXPERIMENTS.md):
//
//   - 4-wide, perfect memory, 2-level BP: bzip2 highest IPC (~2.3), vortex
//     and gzip close (~1.95), then vpr, parser lowest (~1.65).
//   - 2-wide, 32K L1s, perfect BP: gzip highest (~1.45), then vpr, bzip2,
//     with vortex and parser at the bottom (~1.2).
//
// The drivers: bzip2 = wide ILP but a large working set; gzip = cache-
// resident loop code; parser = pointer chasing and poorly biased branches;
// vortex = call-heavy with indirect jumps and a large footprint; vpr =
// mixed arithmetic with multiplies and divides.
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "gzip",
			Description: "LZ77 compressor stand-in: streaming loops over a medium working set",
			Seed:        101,
			Stream:      100, Writes: 30, Arith: 90, Branchy: 60, ByteOps: 60,
			Calls: 6, CallDepth: 2,
			Chains:     4,
			ArrayBytes: 128 << 10, BranchData: 8 << 10, BranchBias: 0.85,
		},
		{
			Name:        "bzip2",
			Description: "BWT compressor stand-in: high ILP over a large working set",
			Seed:        202,
			Stream:      220, Writes: 70, Arith: 130, Branchy: 30, ByteOps: 40,
			Chains: 5, WithMul: true, Stride: 16,
			ArrayBytes: 256 << 10, BranchData: 4 << 10, BranchBias: 0.92,
		},
		{
			Name:        "parser",
			Description: "NL parser stand-in: pointer chasing, data-dependent branches",
			Seed:        303,
			Stream:      30, Chase: 40, Branchy: 90, Arith: 80,
			Calls: 14, CallDepth: 3,
			Chains:     2,
			ArrayBytes: 32 << 10, BranchData: 32 << 10, BranchBias: 0.74,
			ListNodes: 512,
		},
		{
			Name:        "vortex",
			Description: "OO database stand-in: call-heavy, indirect jumps, big footprint",
			Seed:        404,
			Stream:      90, Writes: 50, Arith: 80, Branchy: 40,
			Calls: 30, CallDepth: 4, JumpTable: 30, JTPads: 6, JTBias: 0.75,
			Chains: 4, Stride: 32,
			ArrayBytes: 256 << 10, BranchData: 16 << 10, BranchBias: 0.88,
		},
		{
			Name:        "vpr",
			Description: "place-and-route stand-in: mixed arithmetic with mul/div",
			Seed:        505,
			Stream:      100, Writes: 50, Arith: 100, Branchy: 70, Chase: 10,
			Calls: 8, CallDepth: 2, DivLoop: 6,
			Chains: 3, WithMul: true,
			ArrayBytes: 32 << 10, BranchData: 16 << 10, BranchBias: 0.80,
			ListNodes: 256,
		},
	}
}

// Names returns the profile names in evaluation order (Table 1 row order).
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (have %v)", name, Names())
}
