package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestStreamProfileValidate(t *testing.T) {
	if err := DefaultStreamProfile(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []StreamProfile{
		{LoadFrac: 0.9, StoreFrac: 0.9, DepWindow: 1, MemRange: 1, CodeRange: 1},
		func() StreamProfile { s := DefaultStreamProfile(1); s.TakenProb = 1.5; return s }(),
		func() StreamProfile { s := DefaultStreamProfile(1); s.WrongPathLen = -1; return s }(),
		func() StreamProfile { s := DefaultStreamProfile(1); s.DepWindow = 0; return s }(),
		func() StreamProfile { s := DefaultStreamProfile(1); s.MemRange = 0; return s }(),
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestStreamMixMatchesKnobs(t *testing.T) {
	sp := DefaultStreamProfile(7)
	recs, err := sp.Records(40000)
	if err != nil {
		t.Fatal(err)
	}
	var branches, loads, stores, correct float64
	for _, r := range recs {
		if r.Tag {
			continue
		}
		correct++
		switch {
		case r.Kind == trace.KindBranch:
			branches++
		case r.Kind == trace.KindMem && r.Store:
			stores++
		case r.Kind == trace.KindMem:
			loads++
		}
	}
	for name, got := range map[string]struct{ frac, want float64 }{
		"branch": {branches / correct, sp.BranchFrac},
		"load":   {loads / correct, sp.LoadFrac},
		"store":  {stores / correct, sp.StoreFrac},
	} {
		if math.Abs(got.frac-got.want) > 0.02 {
			t.Errorf("%s fraction = %.3f, want ~%.3f", name, got.frac, got.want)
		}
	}
}

func TestStreamIsISAIndependent(t *testing.T) {
	// The engine consumes the synthesized stream directly — no program, no
	// ISA — and produces sane timing. This is the §V.A genericity claim.
	sp := DefaultStreamProfile(11)
	src, err := sp.Source(20000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.DefaultConfig(), src, sp.StartPC())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20000 {
		t.Errorf("committed = %d, want 20000", res.Committed)
	}
	if ipc := res.IPC(); ipc < 0.3 || ipc > 4 {
		t.Errorf("IPC = %.2f implausible", ipc)
	}
	if res.CommittedBranches == 0 || res.CommittedLoads == 0 {
		t.Error("stream classes missing from commit counts")
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, err := DefaultStreamProfile(3).Records(5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultStreamProfile(3).Records(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestStreamDepWindowControlsILP(t *testing.T) {
	// A tight dependence window must lower IPC versus a wide one.
	run := func(window int) float64 {
		sp := DefaultStreamProfile(5)
		sp.DepWindow = window
		sp.BranchFrac = 0 // isolate the dependence effect
		sp.LoadFrac, sp.StoreFrac = 0, 0
		src, err := sp.Source(15000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.PerfectBP = true
		eng, err := core.New(cfg, src, sp.StartPC())
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC()
	}
	tight, wide := run(1), run(24)
	if tight >= wide {
		t.Errorf("DepWindow had no effect: tight %.2f vs wide %.2f", tight, wide)
	}
}

func TestStreamWrongPathBlocksFollowTakenBranches(t *testing.T) {
	sp := DefaultStreamProfile(13)
	sp.MispredProb = 1 // every taken branch carries a block
	recs, err := sp.Records(2000)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if !r.Tag {
			continue
		}
		prev := recs[i-1]
		if !prev.Tag && !(prev.Kind == trace.KindBranch && prev.Taken) {
			t.Fatalf("tagged record %d follows %v", i, prev)
		}
	}
}
