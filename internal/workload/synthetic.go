package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/trace"
)

// StreamProfile synthesizes trace-record streams directly, with no program
// and no ISA behind them — a working demonstration of the paper's claim
// that "since the trace format is decoded and generic, ReSim supports all
// ISAs that can be described by it" (§V.A): any front end that can emit
// B/M/O records can drive the engine. It is also the controlled stimulus
// for engine stress tests, where each statistical knob can be moved
// independently of the others (impossible with real programs).
type StreamProfile struct {
	Seed int64

	// Dynamic mix; the remainder after all fractions is single-cycle ALU.
	MulFrac    float64
	DivFrac    float64
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64

	// Branch behavior.
	TakenProb    float64 // P(branch taken)
	MispredProb  float64 // P(a taken branch carries a wrong-path block)
	WrongPathLen int     // tagged records per block

	// Address behavior.
	MemRange  uint32 // memory addresses fall in [MemBase, MemBase+MemRange)
	CodeRange uint32 // branch PCs/targets fall in [CodeBase, CodeBase+CodeRange)

	// Register dependence: producers are drawn from the last DepWindow
	// destinations, so smaller windows mean tighter chains (lower ILP).
	DepWindow int
}

// DefaultStreamProfile is a balanced integer mix.
func DefaultStreamProfile(seed int64) StreamProfile {
	return StreamProfile{
		Seed:    seed,
		MulFrac: 0.04, DivFrac: 0.01,
		LoadFrac: 0.22, StoreFrac: 0.10, BranchFrac: 0.17,
		TakenProb: 0.6, MispredProb: 0.08, WrongPathLen: 20,
		MemRange: 1 << 16, CodeRange: 1 << 14, DepWindow: 12,
	}
}

// Validate reports knob errors.
func (sp StreamProfile) Validate() error {
	sum := sp.MulFrac + sp.DivFrac + sp.LoadFrac + sp.StoreFrac + sp.BranchFrac
	if sum < 0 || sum > 1 {
		return fmt.Errorf("workload: stream fractions sum to %v", sum)
	}
	for name, p := range map[string]float64{
		"TakenProb": sp.TakenProb, "MispredProb": sp.MispredProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("workload: %s = %v out of [0,1]", name, p)
		}
	}
	if sp.WrongPathLen < 0 {
		return fmt.Errorf("workload: negative WrongPathLen")
	}
	if sp.DepWindow < 1 {
		return fmt.Errorf("workload: DepWindow must be >= 1")
	}
	if sp.MemRange == 0 || sp.CodeRange == 0 {
		return fmt.Errorf("workload: zero address range")
	}
	return nil
}

// streamMemBase keeps synthetic data addresses clear of the code range.
const streamMemBase = 0x0010_0000

// streamCodeBase anchors synthetic branch PCs.
const streamCodeBase = 0x0000_1000

// Records synthesizes a stream of n correct-path records (plus tagged
// wrong-path blocks, which do not count toward n). The stream is
// self-consistent: branch records carry PCs and word-aligned targets, and
// register dependencies reference earlier destinations only.
func (sp StreamProfile) Records(n int) ([]trace.Record, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	recent := make([]isa.Reg, 0, sp.DepWindow)
	pc := uint32(streamCodeBase)

	src := func() isa.Reg {
		if len(recent) == 0 || rng.Intn(4) == 0 {
			return isa.NoReg
		}
		return recent[rng.Intn(len(recent))]
	}
	dst := func() isa.Reg {
		d := isa.Reg(1 + rng.Intn(28))
		recent = append(recent, d)
		if len(recent) > sp.DepWindow {
			recent = recent[1:]
		}
		return d
	}
	memAddr := func() uint32 {
		return streamMemBase + uint32(rng.Int63n(int64(sp.MemRange)))&^3
	}
	codeAddr := func() uint32 {
		return streamCodeBase + uint32(rng.Int63n(int64(sp.CodeRange)))&^3
	}

	var recs []trace.Record
	emitted := 0
	for emitted < n {
		p := rng.Float64()
		switch {
		case p < sp.BranchFrac:
			taken := rng.Float64() < sp.TakenProb
			rec := trace.Record{
				Kind: trace.KindBranch, Ctrl: isa.CtrlCond, Taken: taken,
				PC: pc, Target: codeAddr(),
				Dest: isa.NoReg, Src1: src(), Src2: isa.NoReg,
			}
			recs = append(recs, rec)
			emitted++
			if taken {
				pc = rec.Target
			} else {
				pc += 4
			}
			if taken && rng.Float64() < sp.MispredProb {
				for w := 0; w < sp.WrongPathLen; w++ {
					wp := trace.Record{Kind: trace.KindOther, Class: trace.OpALU,
						Tag: true, Dest: isa.Reg(1 + rng.Intn(28)),
						Src1: src(), Src2: isa.NoReg}
					if rng.Intn(4) == 0 {
						wp = trace.Record{Kind: trace.KindMem, Tag: true, Size: 4,
							Addr: memAddr(), Dest: isa.Reg(1 + rng.Intn(28)),
							Src1: src(), Src2: isa.NoReg}
					}
					recs = append(recs, wp)
				}
			}
			continue
		case p < sp.BranchFrac+sp.LoadFrac:
			// Sources are drawn before the destination enters the window,
			// so dependencies always point at earlier instructions.
			s1 := src()
			recs = append(recs, trace.Record{Kind: trace.KindMem, Size: 4,
				Addr: memAddr(), Src1: s1, Src2: isa.NoReg, Dest: dst()})
		case p < sp.BranchFrac+sp.LoadFrac+sp.StoreFrac:
			s1, s2 := src(), src()
			recs = append(recs, trace.Record{Kind: trace.KindMem, Store: true,
				Size: 4, Addr: memAddr(), Dest: isa.NoReg, Src1: s1, Src2: s2})
		case p < sp.BranchFrac+sp.LoadFrac+sp.StoreFrac+sp.MulFrac:
			s1, s2 := src(), src()
			recs = append(recs, trace.Record{Kind: trace.KindOther,
				Class: trace.OpMul, Src1: s1, Src2: s2, Dest: dst()})
		case p < sp.BranchFrac+sp.LoadFrac+sp.StoreFrac+sp.MulFrac+sp.DivFrac:
			s1, s2 := src(), src()
			recs = append(recs, trace.Record{Kind: trace.KindOther,
				Class: trace.OpDiv, Src1: s1, Src2: s2, Dest: dst()})
		default:
			s1, s2 := src(), src()
			recs = append(recs, trace.Record{Kind: trace.KindOther,
				Class: trace.OpALU, Src1: s1, Src2: s2, Dest: dst()})
		}
		emitted++
		pc += 4
	}
	return recs, nil
}

// Source wraps Records in a trace.Source.
func (sp StreamProfile) Source(n int) (trace.Source, error) {
	recs, err := sp.Records(n)
	if err != nil {
		return nil, err
	}
	return trace.NewSliceSource(recs), nil
}

// StartPC is where a synthesized stream begins.
func (sp StreamProfile) StartPC() uint32 { return streamCodeBase }
