package workload

import (
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/trace"
)

func TestAllProfilesBuildAndRun(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			prog, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			m, err := funcsim.NewMachine(prog, 0)
			if err != nil {
				t.Fatal(err)
			}
			n, err := m.Run(20000)
			if err != nil {
				t.Fatal(err)
			}
			if n != 20000 {
				t.Fatalf("program halted after %d instructions", n)
			}
		})
	}
}

func TestProfileMixIsPlausible(t *testing.T) {
	// Every profile should have a SPECINT-plausible dynamic mix: 10-35%
	// control flow, 10-45% memory operations.
	for _, p := range Profiles() {
		src, err := p.NewSource(funcsim.TraceConfig{PerfectBP: true}, 30000)
		if err != nil {
			t.Fatal(err)
		}
		var n, branches, mems uint64
		for {
			r, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
			switch r.Kind {
			case trace.KindBranch:
				branches++
			case trace.KindMem:
				mems++
			}
		}
		bf := float64(branches) / float64(n)
		mf := float64(mems) / float64(n)
		if bf < 0.10 || bf > 0.35 {
			t.Errorf("%s: branch fraction %.3f outside [0.10,0.35]", p.Name, bf)
		}
		if mf < 0.10 || mf > 0.45 {
			t.Errorf("%s: memory fraction %.3f outside [0.10,0.45]", p.Name, mf)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	take := func() []trace.Record {
		src, err := p.NewSource(funcsim.TraceConfig{PerfectBP: true}, 5000)
		if err != nil {
			t.Fatal(err)
		}
		var recs []trace.Record
		for {
			r, err := src.Next()
			if err != nil {
				break
			}
			recs = append(recs, r)
		}
		return recs
	}
	a, b := take(), take()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	want := []string{"gzip", "bzip2", "parser", "vortex", "vpr"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("mcf"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "x", Stream: 10, ArrayBytes: 1000},                   // not pow2
		{Name: "x", Stream: 10, ArrayBytes: 1024, Stride: 6},        // stride not mult of 4
		{Name: "x", Arith: 10, Chains: 99},                          // too many chains
		{Name: "x", Branchy: 10, BranchData: 1024, BranchBias: 1.5}, // bias out of range
		{Name: "x", Branchy: 10, BranchData: 999},                   // not pow2
		{Name: "x", Chase: 10, ListNodes: 1},                        // degenerate list
		{Name: "x", Calls: 10, CallDepth: 0},                        // no depth
		{Name: "x", JumpTable: 10, JTPads: 0},                       // no pads
		{Name: "x", JumpTable: 10, JTPads: 4, JTBias: -0.1},         // bad bias
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
}

func TestChaseListIsCircularAndComplete(t *testing.T) {
	p, err := ByName("parser")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Locate the list segment by recomputing the data layout.
	l := newLayout(funcsim.DataBase)
	l.region(max(p.ArrayBytes, 4))
	l.region(max(p.BranchData, 4))
	listBase := l.region(p.ListNodes * listNodeBytes)
	var seg *funcsim.Segment
	for i := range prog.Segments {
		if prog.Segments[i].Base == listBase {
			seg = &prog.Segments[i]
			break
		}
	}
	if seg == nil {
		t.Fatal("list segment not found")
	}
	// Walk the list; it must return to the head after exactly ListNodes
	// steps, visiting every node once.
	seen := make(map[uint32]bool)
	cur := seg.Base
	for i := 0; i < p.ListNodes; i++ {
		if seen[cur] {
			t.Fatalf("list revisits node %#x after %d steps", cur, i)
		}
		seen[cur] = true
		off := cur - seg.Base
		cur = binary.LittleEndian.Uint32(seg.Data[off:])
	}
	if cur != seg.Base {
		t.Errorf("list is not circular: ended at %#x, head %#x", cur, seg.Base)
	}
	if len(seen) != p.ListNodes {
		t.Errorf("visited %d nodes, want %d", len(seen), p.ListNodes)
	}
}

func TestIPCOrderingMatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	// The headline shape of Table 1 left: bzip2 is the fastest of the five
	// and parser the slowest under 4-wide perfect memory with the 2-level
	// predictor.
	ipc := map[string]float64{}
	for _, name := range []string{"bzip2", "parser", "gzip"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		src, err := p.NewSource(funcsim.TraceConfig{
			Predictor:    cfg.Predictor,
			WrongPathLen: cfg.WrongPathLen(),
		}, 80000)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.New(cfg, src, funcsim.CodeBase)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		ipc[name] = res.IPC()
	}
	if !(ipc["bzip2"] > ipc["gzip"] && ipc["gzip"] > ipc["parser"]) {
		t.Errorf("IPC ordering broken: %v", ipc)
	}
}

func TestWrongPathOverheadNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	// §V: "the cost due to mispredictions ... is about 10%". Check the
	// five-benchmark average overhead lands in a 3-25% band.
	var sum float64
	for _, p := range Profiles() {
		cfg := core.DefaultConfig()
		src, err := p.NewSource(funcsim.TraceConfig{
			Predictor:    cfg.Predictor,
			WrongPathLen: cfg.WrongPathLen(),
		}, 60000)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.New(cfg, src, funcsim.CodeBase)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum += res.WrongPathOverhead()
	}
	avg := sum / float64(len(Profiles()))
	if avg < 0.03 || avg > 0.25 {
		t.Errorf("average wrong-path overhead = %.3f, want ~0.10", avg)
	}
}

func TestJumpTableTargetsAreValidPads(t *testing.T) {
	p, err := ByName("vortex")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	var jt *funcsim.Segment
	for i := range prog.Segments {
		if len(prog.Segments[i].Data) == jtSlots*4 {
			jt = &prog.Segments[i]
			break
		}
	}
	if jt == nil {
		t.Fatal("jump table segment not found")
	}
	code := prog.Segments[0]
	lo := code.Base
	hi := code.Base + uint32(len(code.Data))
	for i := 0; i < jtSlots; i++ {
		addr := binary.LittleEndian.Uint32(jt.Data[i*4:])
		if addr < lo || addr >= hi || addr%4 != 0 {
			t.Fatalf("slot %d points outside code: %#x", i, addr)
		}
		// Each pad starts with addi rAcc0+3, ...
		word := binary.LittleEndian.Uint32(code.Data[addr-lo:])
		in := isa.Decode(word, addr)
		if in.Op != isa.OpAddi || in.A != rAcc0+3 {
			t.Errorf("slot %d does not land on a pad: %v", i, in)
		}
	}
}
