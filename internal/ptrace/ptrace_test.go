package ptrace

import (
	"strings"
	"testing"

	"repro/internal/bpred"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

func alu(dst isa.Reg) trace.Record {
	return trace.Record{Kind: trace.KindOther, Class: trace.OpALU,
		Dest: dst, Src1: isa.NoReg, Src2: isa.NoReg}
}

func run(t *testing.T, recs []trace.Record, limit int) *Collector {
	t.Helper()
	col := New(limit)
	cfg := core.DefaultConfig()
	cfg.PerfectBP = true
	cfg.PipeTracer = col
	eng, err := core.New(cfg, trace.NewSliceSource(recs), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return col
}

func TestSingleInstructionStageCycles(t *testing.T) {
	// The canonical five-stage flow: fetch@0, dispatch@1, issue@2,
	// writeback@3, commit@4 — the same timing engine tests pin via cycle
	// counts, observed here through the ptrace channel.
	col := run(t, []trace.Record{alu(2)}, 10)
	want := map[string]int64{
		"fetch": 0, "dispatch": 1, "issue": 2, "writeback": 3, "commit": 4,
	}
	for stage, cycle := range want {
		if got := col.StageCycle(0, stage); got != cycle {
			t.Errorf("%s at cycle %d, want %d", stage, got, cycle)
		}
	}
}

func TestDependentChainStaggers(t *testing.T) {
	// r2 -> r3 -> r4 chain: each issue happens one cycle after its
	// producer's, starting when the producer broadcasts.
	recs := []trace.Record{
		alu(2),
		{Kind: trace.KindOther, Class: trace.OpALU, Dest: 3, Src1: 2, Src2: isa.NoReg},
		{Kind: trace.KindOther, Class: trace.OpALU, Dest: 4, Src1: 3, Src2: isa.NoReg},
	}
	col := run(t, recs, 10)
	for seq := int64(1); seq <= 2; seq++ {
		prev := col.StageCycle(seq-1, "issue")
		cur := col.StageCycle(seq, "issue")
		if cur != prev+1 {
			t.Errorf("seq %d issued at %d, producer at %d (want +1)", seq, cur, prev)
		}
	}
}

func TestSquashRecorded(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindBranch, Ctrl: isa.CtrlCond, Taken: true, Target: 0x2000,
			Dest: isa.NoReg, Src1: 1, Src2: isa.NoReg},
	}
	for i := 0; i < 4; i++ {
		r := alu(3)
		r.Tag = true
		recs = append(recs, r)
	}
	col := New(10)
	cfg := core.DefaultConfig()
	cfg.Predictor.Dir = bpred.DirNotTaken
	cfg.PipeTracer = col
	eng, err := core.New(cfg, trace.NewSliceSource(recs), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The wrong-path instructions (seq 1..4) must record a squash at the
	// branch's commit cycle.
	commitCycle := col.StageCycle(0, "commit")
	if commitCycle < 0 {
		t.Fatal("branch commit not captured")
	}
	squashed := 0
	for seq := int64(1); seq <= 4; seq++ {
		if c := col.StageCycle(seq, "squash"); c == commitCycle {
			squashed++
		}
	}
	if squashed == 0 {
		t.Error("no wrong-path squashes recorded")
	}
	out := col.Render()
	if !strings.Contains(out, "x") {
		t.Error("render missing squash marks")
	}
	if !strings.Contains(out, "~") {
		t.Error("render missing wrong-path marker")
	}
}

func TestLimitBoundsCapture(t *testing.T) {
	recs := make([]trace.Record, 20)
	for i := range recs {
		recs[i] = alu(isa.Reg(2 + i%8))
	}
	col := run(t, recs, 5)
	if col.Count() != 5 {
		t.Errorf("captured %d, want 5", col.Count())
	}
}

func TestRenderShape(t *testing.T) {
	col := run(t, []trace.Record{alu(2), alu(3)}, 10)
	out := col.Render()
	for _, want := range []string{"pipeline trace", "F", "D", "I", "W", "C", "00001000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	empty := New(3)
	if !strings.Contains(empty.Render(), "no instructions") {
		t.Error("empty render wrong")
	}
}

func TestStageCycleUnknowns(t *testing.T) {
	col := run(t, []trace.Record{alu(2)}, 1)
	if col.StageCycle(99, "issue") != -1 {
		t.Error("unknown seq should be -1")
	}
	if col.StageCycle(0, "retire") != -1 {
		t.Error("unknown stage should be -1")
	}
}
