// Package ptrace collects and renders per-instruction pipeline traces — the
// equivalent of SimpleScalar's ptrace facility for sim-outorder, which the
// paper's statistics model follows. Attach a Collector to core.Config's
// PipeTracer and render a classic pipeline diagram: one row per dynamic
// instruction, one column per major cycle, stage letters marking progress.
//
//	seq pc       instruction        |F D I W C|
//	0   00001000 O{alu d=2 ...}     |F D I W C      |
//	1   00001004 M{ld @0x2000 ...}  |F D . I W C    |
//
// Letters: F fetch, D dispatch, I issue, W writeback, C commit, x squash;
// '.' marks cycles spent waiting between stages.
package ptrace

import (
	"fmt"
	"strings"
)

// event letters in pipeline order.
var stageLetter = map[string]byte{
	"dispatch":  'D',
	"issue":     'I',
	"writeback": 'W',
	"commit":    'C',
	"squash":    'x',
}

type instTrace struct {
	seq       int64
	pc        uint32
	desc      string
	wrongPath bool
	fetchAt   int64
	events    []struct {
		cycle int64
		ch    byte
	}
	lastCycle int64
}

// Collector implements core.PipeTracer for the first Limit instructions
// (sequence numbers 0..Limit-1). The zero value collects nothing; use New.
type Collector struct {
	limit int64
	insts []*instTrace
	bySeq map[int64]*instTrace
}

// New returns a collector for the first limit instructions.
func New(limit int) *Collector {
	return &Collector{limit: int64(limit), bySeq: make(map[int64]*instTrace)}
}

// Fetched implements core.PipeTracer.
func (c *Collector) Fetched(seq, cycle int64, pc uint32, desc string, wrongPath bool) {
	if seq >= c.limit {
		return
	}
	it := &instTrace{seq: seq, pc: pc, desc: desc, wrongPath: wrongPath,
		fetchAt: cycle, lastCycle: cycle}
	c.insts = append(c.insts, it)
	c.bySeq[seq] = it
}

// Stage implements core.PipeTracer.
func (c *Collector) Stage(seq, cycle int64, stage string) {
	it, ok := c.bySeq[seq]
	if !ok {
		return
	}
	ch, ok := stageLetter[stage]
	if !ok {
		return
	}
	it.events = append(it.events, struct {
		cycle int64
		ch    byte
	}{cycle, ch})
	if cycle > it.lastCycle {
		it.lastCycle = cycle
	}
}

// Count returns the number of instructions captured.
func (c *Collector) Count() int { return len(c.insts) }

// Render draws the pipeline diagram.
func (c *Collector) Render() string {
	if len(c.insts) == 0 {
		return "(no instructions captured)\n"
	}
	first := c.insts[0].fetchAt
	last := first
	for _, it := range c.insts {
		if it.lastCycle > last {
			last = it.lastCycle
		}
	}
	width := int(last - first + 1)

	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline trace, cycles %d..%d (F fetch, D dispatch, I issue, W writeback, C commit, x squash)\n",
		first, last)
	descW := 24
	for _, it := range c.insts {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		mark := func(cycle int64, ch byte) {
			if idx := int(cycle - first); idx >= 0 && idx < width {
				lane[idx] = ch
			}
		}
		mark(it.fetchAt, 'F')
		end := it.fetchAt
		for _, ev := range it.events {
			mark(ev.cycle, ev.ch)
			if ev.cycle > end {
				end = ev.cycle
			}
		}
		// Fill waiting gaps between the fetch and the final event.
		for i := int(it.fetchAt-first) + 1; i < int(end-first); i++ {
			if lane[i] == ' ' {
				lane[i] = '.'
			}
		}
		desc := it.desc
		if it.wrongPath {
			desc = "~" + desc // wrong-path marker
		}
		if len(desc) > descW {
			desc = desc[:descW]
		}
		fmt.Fprintf(&sb, "%-4d %08x %-*s |%s|\n", it.seq, it.pc, descW, desc, string(lane))
	}
	return sb.String()
}

// StageCycle returns the cycle at which instruction seq performed the given
// stage ("fetch" included), or -1 if not captured. Test helper.
func (c *Collector) StageCycle(seq int64, stage string) int64 {
	it, ok := c.bySeq[seq]
	if !ok {
		return -1
	}
	if stage == "fetch" {
		return it.fetchAt
	}
	ch, ok := stageLetter[stage]
	if !ok {
		return -1
	}
	for _, ev := range it.events {
		if ev.ch == ch {
			return ev.cycle
		}
	}
	return -1
}
