// Package fpga models the hardware substrate of the paper's evaluation: the
// Xilinx devices ReSim was implemented on, the throughput relation between
// minor-cycle clock and simulation MIPS, and a per-stage area estimator
// calibrated against Table 4.
//
// This is the substitution for the real FPGA implementation (see DESIGN.md):
// ReSim's simulated-processor timing is defined at major-cycle granularity,
// so the hardware only determines (a) wall-clock throughput, MIPS =
// f_minor / K × IPC, and (b) resource cost. Both are modeled here and
// validated against the published numbers.
package fpga

import (
	"fmt"
	"math"
)

// Device describes an FPGA device as the paper uses it: the minor-cycle
// frequency ReSim achieved on it and its resource capacity. Area estimates
// in this package are calibrated in Virtex-4 slices (Table 4's units);
// V4SliceFactor converts a device's own slice count into V4-equivalent
// capacity (a Virtex-5 slice holds four 6-input LUTs versus the Virtex-4
// slice's two 4-input LUTs).
type Device struct {
	Name          string
	Family        string
	MinorClockMHz float64 // achieved minor-cycle clock (84 V4 / 105 V5, §V.C)
	Slices        int
	V4SliceFactor float64 // V4-equivalent capacity per native slice
	BRAMs         int
}

// V4Capacity returns the device capacity in Virtex-4-equivalent slices.
func (d Device) V4Capacity() int {
	f := d.V4SliceFactor
	if f == 0 {
		f = 1
	}
	return int(float64(d.Slices) * f)
}

// The devices of the evaluation (§V.C) plus the Virtex-II Pro used by
// A-Ports for context.
var (
	Virtex4 = Device{Name: "xc4vlx40", Family: "Virtex-4", MinorClockMHz: 84,
		Slices: 18432, V4SliceFactor: 1, BRAMs: 96}
	Virtex5 = Device{Name: "xc5vlx50t", Family: "Virtex-5", MinorClockMHz: 105,
		Slices: 7200, V4SliceFactor: 2.2, BRAMs: 60}
	Virtex2Pro = Device{Name: "xc2vp30", Family: "Virtex-II Pro", MinorClockMHz: 50,
		Slices: 13696, V4SliceFactor: 1, BRAMs: 136}
)

// SimulationMIPS converts a simulated IPC into wall-clock simulation
// throughput on dev for an engine whose major cycle takes k minor cycles:
// the device completes MinorClockMHz/k million major cycles per second, each
// retiring IPC instructions on average.
func SimulationMIPS(dev Device, k int, ipc float64) float64 {
	if k <= 0 {
		return 0
	}
	return dev.MinorClockMHz / float64(k) * ipc
}

// TraceBandwidthMBps returns the input trace bandwidth (MByte/s) required to
// sustain mips million instructions per second at bitsPerInstr average
// record size (Table 3's last column).
func TraceBandwidthMBps(mips, bitsPerInstr float64) float64 {
	return mips * bitsPerInstr / 8
}

// TraceBandwidthGbps returns the trace bandwidth in Gbit/s (the paper notes
// the 4-wide configuration needs ~1.1 Gb/s, exceeding gigabit Ethernet).
func TraceBandwidthGbps(mips, bitsPerInstr float64) float64 {
	return mips * bitsPerInstr / 1000
}

// ParallelFetchFactors models the §IV measurement that motivated ReSim's
// serial execution model: a w-wide parallel fetch unit costs about w× the
// area of the serial unit and runs slower ("besides the four-fold increase
// in cost, the unit was also 22% slower" at w=4). The frequency penalty is
// interpolated log-linearly: 0% at w=1, 22% at w=4.
func ParallelFetchFactors(w int) (areaFactor, freqFactor float64) {
	if w < 1 {
		return 0, 0
	}
	areaFactor = float64(w)
	freqFactor = 1 - 0.22*math.Log2(float64(w))/2
	if freqFactor < 0 {
		freqFactor = 0
	}
	return areaFactor, freqFactor
}

// ParallelMinorClockMHz returns the minor-cycle clock dev would achieve with
// a w-wide parallel datapath instead of ReSim's serial one.
func ParallelMinorClockMHz(dev Device, w int) float64 {
	_, f := ParallelFetchFactors(w)
	return dev.MinorClockMHz * f
}

// String formats the device for reports.
func (d Device) String() string {
	return fmt.Sprintf("%s (%s, %d slices, %d BRAMs, %.0f MHz minor clock)",
		d.Name, d.Family, d.Slices, d.BRAMs, d.MinorClockMHz)
}
