package fpga

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
)

// Area is an FPGA resource triple.
type Area struct {
	Slices int
	LUTs   int
	BRAMs  int
}

// Add returns the component-wise sum.
func (a Area) Add(b Area) Area {
	return Area{a.Slices + b.Slices, a.LUTs + b.LUTs, a.BRAMs + b.BRAMs}
}

// StageArea is one row of Table 4: a pipeline stage or storage structure
// with its resource cost.
type StageArea struct {
	Name  string
	Cache bool // true for I-C / D-C (excluded from the headline total, §V)
	Area  Area
}

// Breakdown is the full Table 4 estimate for one configuration.
type Breakdown struct {
	Stages []StageArea
}

// refTotalSlices and refTotalLUTs are the published totals for the reference
// configuration (Table 4, xc4vlx40).
const (
	refTotalSlices = 12273
	refTotalLUTs   = 17175
)

// reference per-stage fractions from Table 4. Order matches the paper's
// columns: fetch disp issue lsq wb cmt RT RB LSQ BP D-C I-C.
var refStages = []struct {
	name               string
	cache              bool
	sliceFrac, lutFrac float64
}{
	{"fetch", false, 0.25, 0.23},
	{"disp", false, 0.09, 0.05},
	{"issue", false, 0.05, 0.07},
	{"lsq", false, 0.14, 0.19}, // the Lsq_refresh stage logic
	{"wb", false, 0.03, 0.04},
	{"cmt", false, 0.02, 0.02},
	{"RT", false, 0.03, 0.04},
	{"RB", false, 0.13, 0.14},
	{"LSQ", false, 0.06, 0.04}, // the LSQ storage structure
	{"BP", false, 0.02, 0.02},
	{"D-C", true, 0.17, 0.15},
	{"I-C", true, 0.01, 0.01},
}

// referenceConfig is the configuration Table 4 was measured at: the 4-wide
// processor of §V.C with the 32K L1 caches present.
func referenceConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ICache = cache.New(cache.L1Config32K("il1"))
	cfg.DCache = cache.New(cache.L1Config32K("dl1"))
	return cfg
}

// bram18Kbits is the Virtex-4 block RAM capacity the estimator budgets
// against.
const bram18Kbits = 18 * 1024

// scale returns the first-order area scaling of each stage relative to the
// reference configuration. The estimator is calibrated to reproduce Table 4
// exactly at the reference point; away from it, each structure scales with
// the parameters that dominate its hardware cost (entries for storage,
// width for per-slot logic, quadratic in LSQ depth for the disambiguation
// comparators).
func scale(name string, cfg, ref core.Config) float64 {
	n := float64(cfg.Width) / float64(ref.Width)
	ifq := float64(cfg.IFQSize) / float64(ref.IFQSize)
	rb := float64(cfg.RBSize) / float64(ref.RBSize)
	lsq := float64(cfg.LSQSize) / float64(ref.LSQSize)
	switch name {
	case "fetch":
		return 0.6*n + 0.4*ifq
	case "disp":
		return n
	case "issue":
		return 0.5*n + 0.5*rb
	case "lsq":
		return 0.5*lsq + 0.5*lsq*lsq
	case "wb", "cmt":
		return n
	case "RT":
		return 0.5 + 0.5*n
	case "RB":
		return rb * (0.5 + 0.5*n)
	case "LSQ":
		return lsq
	case "BP":
		if cfg.PerfectBP {
			return 0.25 // trivial always-correct redirect logic
		}
		ras := 1.0
		if ref.Predictor.RASSize > 0 {
			ras = float64(cfg.Predictor.RASSize) / float64(ref.Predictor.RASSize)
		}
		return 0.7 + 0.3*ras
	case "D-C":
		return cacheTagScale(cfg.DCache) / cacheTagScale(ref.DCache)
	case "I-C":
		if cacheModelOf(cfg.ICache) == nil {
			return 0
		}
		return 1
	}
	return 1
}

// cacheModelOf narrows a cache.Model to a real tag-array cache, or nil for
// perfect memory.
func cacheModelOf(m cache.Model) *cache.Cache {
	c, ok := m.(*cache.Cache)
	if !ok {
		return nil
	}
	return c
}

// cacheTagScale is proportional to the distributed-RAM tag state of a cache
// (ReSim stores no data: "we need to provide only the hit/miss indication",
// §V).
func cacheTagScale(m cache.Model) float64 {
	c := cacheModelOf(m)
	if c == nil {
		return 0
	}
	cfg := c.Config()
	tagBits := 32 - math.Log2(float64(cfg.Sets())) - math.Log2(float64(cfg.BlockBytes))
	return float64(cfg.Sets()*cfg.Assoc) * (tagBits + 2) // tag + valid + dirty
}

// bpBRAMs counts the branch predictor's block RAMs: each logical memory
// (PHT or bimodal table, BTB tags, BTB targets, BHT, RAS) synthesizes to its
// own BRAM(s). At the paper's configuration this yields 5 BRAMs — 71% of the
// design's 7 (Table 4: "We used Block RAMs only in the Branch Predictor").
func bpBRAMs(cfg core.Config) int {
	if cfg.PerfectBP {
		return 0
	}
	p := cfg.Predictor
	var memories []int
	switch p.Dir {
	case bpred.DirTwoLevel: // BHT + PHT
		memories = append(memories, p.BHTSize*p.HistLen, p.PHTSize*2)
	case bpred.DirBimodal:
		memories = append(memories, p.BimodSize*2)
	case bpred.DirCombined:
		memories = append(memories, p.BHTSize*p.HistLen, p.PHTSize*2,
			p.BimodSize*2, p.MetaSize*2)
	}
	if p.BTBEntries > 0 {
		tag := 20
		if p.BTBTagBits > 0 {
			tag = p.BTBTagBits
		}
		memories = append(memories, p.BTBEntries*tag, p.BTBEntries*32)
	}
	if p.RASSize > 0 {
		memories = append(memories, p.RASSize*32)
	}
	total := 0
	for _, bits := range memories {
		n := (bits + bram18Kbits - 1) / bram18Kbits
		if n < 1 {
			n = 1
		}
		total += n
	}
	return total
}

// icacheBRAMs counts the I-cache tag BRAMs: one control/state BRAM plus the
// tag array (2 at the 32K configuration, 29% of 7 in Table 4). The D-cache
// tags use distributed RAM (hence its 17% slice share and zero BRAMs).
func icacheBRAMs(cfg core.Config) int {
	c := cacheModelOf(cfg.ICache)
	if c == nil {
		return 0
	}
	tagBits := int(cacheTagScale(cfg.ICache))
	return 1 + (tagBits+bram18Kbits-1)/bram18Kbits
}

// EstimateArea produces the Table 4 breakdown for cfg. The model is
// calibrated so the reference configuration reproduces the published totals
// (12273 slices, 17175 LUTs, 7 BRAMs on xc4vlx40); other configurations use
// the first-order scalings documented on scale.
func EstimateArea(cfg core.Config) (Breakdown, error) {
	if err := cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	ref := referenceConfig()
	var b Breakdown
	for _, rs := range refStages {
		s := scale(rs.name, cfg, ref)
		st := StageArea{
			Name:  rs.name,
			Cache: rs.cache,
			Area: Area{
				Slices: int(math.Round(rs.sliceFrac * refTotalSlices * s)),
				LUTs:   int(math.Round(rs.lutFrac * refTotalLUTs * s)),
			},
		}
		switch rs.name {
		case "BP":
			st.Area.BRAMs = bpBRAMs(cfg)
		case "I-C":
			st.Area.BRAMs = icacheBRAMs(cfg)
		}
		b.Stages = append(b.Stages, st)
	}
	return b, nil
}

// Total sums every stage, caches included.
func (b Breakdown) Total() Area {
	var t Area
	for _, s := range b.Stages {
		t = t.Add(s.Area)
	}
	return t
}

// TotalExcludingCaches sums the non-cache stages; the paper's headline total
// "does not include instruction and data caches".
func (b Breakdown) TotalExcludingCaches() Area {
	var t Area
	for _, s := range b.Stages {
		if !s.Cache {
			t = t.Add(s.Area)
		}
	}
	return t
}

// FitsIn reports whether the design fits dev, and how many whole instances
// do — the multi-core direction in the paper's conclusions ("it is possible
// to fit multiple ReSim instances in a single FPGA"). Estimates are in
// Virtex-4 slice units; the device's V4-equivalent capacity is used.
func (b Breakdown) FitsIn(dev Device) (fits bool, instances int) {
	t := b.Total()
	if t.Slices == 0 {
		return true, 0
	}
	instances = dev.V4Capacity() / t.Slices
	if t.BRAMs > 0 {
		if byBRAM := dev.BRAMs / t.BRAMs; byBRAM < instances {
			instances = byBRAM
		}
	}
	return instances >= 1, instances
}

// Render formats the breakdown in the shape of Table 4: per-stage
// percentages of the total design plus absolute totals.
func (b Breakdown) Render() string {
	t := b.Total()
	var sb strings.Builder
	sb.WriteString("Stage-Structures Area (%) of Total Design\n")
	fmt.Fprintf(&sb, "%-12s", "resource")
	for _, s := range b.Stages {
		fmt.Fprintf(&sb, "%7s", s.Name)
	}
	fmt.Fprintf(&sb, " | %10s\n", "Total")
	row := func(name string, pick func(Area) int, total int) {
		fmt.Fprintf(&sb, "%-12s", name)
		for _, s := range b.Stages {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(pick(s.Area)) / float64(total)
			}
			fmt.Fprintf(&sb, "%6.0f%%", pct)
		}
		fmt.Fprintf(&sb, " | %10d\n", total)
	}
	row("Slices", func(a Area) int { return a.Slices }, t.Slices)
	row("4-input LUTs", func(a Area) int { return a.LUTs }, t.LUTs)
	row("BRAMs", func(a Area) int { return a.BRAMs }, t.BRAMs)
	ex := b.TotalExcludingCaches()
	fmt.Fprintf(&sb, "Total excluding I-C/D-C: %d slices, %d LUTs, %d BRAMs\n",
		ex.Slices, ex.LUTs, ex.BRAMs)
	return sb.String()
}
