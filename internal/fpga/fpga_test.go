package fpga

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDeviceConstants(t *testing.T) {
	if Virtex4.MinorClockMHz != 84 || Virtex5.MinorClockMHz != 105 {
		t.Errorf("minor clocks: V4=%v V5=%v, want 84/105 (paper §V.C)",
			Virtex4.MinorClockMHz, Virtex5.MinorClockMHz)
	}
	if !strings.Contains(Virtex4.String(), "xc4vlx40") {
		t.Error("device String missing part name")
	}
}

func TestSimulationMIPSMatchesPaperModel(t *testing.T) {
	// Back out the implied IPC from a published number and check the model
	// is self-consistent across devices: Table 1 reports bzip2 at
	// 27.55 MIPS (V4) and 34.44 MIPS (V5) with K=7, so the same IPC must
	// reproduce both within rounding.
	ipcV4 := 27.55 * 7 / 84
	ipcV5 := 34.44 * 7 / 105
	if math.Abs(ipcV4-ipcV5) > 0.01 {
		t.Fatalf("paper-implied IPCs inconsistent: %v vs %v", ipcV4, ipcV5)
	}
	if got := SimulationMIPS(Virtex4, 7, ipcV4); math.Abs(got-27.55) > 0.01 {
		t.Errorf("V4 MIPS = %v, want 27.55", got)
	}
	if got := SimulationMIPS(Virtex5, 7, ipcV4); math.Abs(got-34.44) > 0.05 {
		t.Errorf("V5 MIPS = %v, want ~34.44", got)
	}
	if SimulationMIPS(Virtex4, 0, 1) != 0 {
		t.Error("K=0 should yield 0")
	}
}

func TestTraceBandwidth(t *testing.T) {
	// Table 3, gzip row: 26.37 MIPS x 41.74 bits -> 137.56 MB/s.
	got := TraceBandwidthMBps(26.37, 41.74)
	if math.Abs(got-137.59) > 0.5 {
		t.Errorf("gzip trace bandwidth = %.2f MB/s, want ~137.6", got)
	}
	// Average 25.51 MIPS x 43.44 bits ~ 1.1 Gb/s (paper text).
	gbps := TraceBandwidthGbps(25.51, 43.44)
	if gbps < 1.0 || gbps > 1.25 {
		t.Errorf("average trace bandwidth = %.2f Gb/s, want ~1.1", gbps)
	}
}

func TestParallelFetchFactors(t *testing.T) {
	// §IV: 4-wide parallel fetch costs 4x and is 22% slower.
	area, freq := ParallelFetchFactors(4)
	if area != 4 {
		t.Errorf("area factor = %v, want 4", area)
	}
	if math.Abs(freq-0.78) > 1e-9 {
		t.Errorf("freq factor = %v, want 0.78", freq)
	}
	// 1-wide is the serial baseline.
	area, freq = ParallelFetchFactors(1)
	if area != 1 || freq != 1 {
		t.Errorf("1-wide factors = %v/%v", area, freq)
	}
	if a, f := ParallelFetchFactors(0); a != 0 || f != 0 {
		t.Error("invalid width not rejected")
	}
	if got := ParallelMinorClockMHz(Virtex4, 4); math.Abs(got-84*0.78) > 1e-9 {
		t.Errorf("parallel V4 clock = %v", got)
	}
}

func TestAreaReproducesTable4Totals(t *testing.T) {
	b, err := EstimateArea(referenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := b.Total()
	if math.Abs(float64(total.Slices-refTotalSlices)) > 0.01*refTotalSlices {
		t.Errorf("total slices = %d, want ~%d", total.Slices, refTotalSlices)
	}
	if math.Abs(float64(total.LUTs-refTotalLUTs)) > 0.01*refTotalLUTs {
		t.Errorf("total LUTs = %d, want ~%d", total.LUTs, refTotalLUTs)
	}
	if total.BRAMs != 7 {
		t.Errorf("total BRAMs = %d, want 7", total.BRAMs)
	}
}

func TestAreaStageOrderingMatchesTable4(t *testing.T) {
	// Fetch is the largest logic stage; wb and cmt are among the smallest
	// (Table 4 row ordering by slice share).
	b, err := EstimateArea(referenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Area {
		for _, s := range b.Stages {
			if s.Name == name {
				return s.Area
			}
		}
		t.Fatalf("missing stage %s", name)
		return Area{}
	}
	if !(get("fetch").Slices > get("RB").Slices &&
		get("RB").Slices > get("LSQ").Slices &&
		get("LSQ").Slices > get("wb").Slices &&
		get("wb").Slices > get("cmt").Slices) {
		t.Error("per-stage slice ordering does not match Table 4")
	}
	// BP holds 5 of the 7 BRAMs (71%), I-C the other 2 (29%).
	if get("BP").BRAMs != 5 {
		t.Errorf("BP BRAMs = %d, want 5", get("BP").BRAMs)
	}
	if get("I-C").BRAMs != 2 {
		t.Errorf("I-C BRAMs = %d, want 2", get("I-C").BRAMs)
	}
	if get("D-C").BRAMs != 0 {
		t.Errorf("D-C BRAMs = %d, want 0 (distributed tags)", get("D-C").BRAMs)
	}
}

func TestPerfectMemoryFitsInTenKSlices(t *testing.T) {
	// Conclusions: ReSim "fits within about 10K Xilinx FPGA slices" —
	// the perfect-memory configuration without caches.
	b, err := EstimateArea(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := b.Total()
	if total.Slices < 9000 || total.Slices > 11000 {
		t.Errorf("perfect-memory total = %d slices, want ~10K", total.Slices)
	}
	if total.BRAMs != 5 {
		t.Errorf("perfect-memory BRAMs = %d, want 5 (BP only)", total.BRAMs)
	}
}

func TestAreaScalesWithStructures(t *testing.T) {
	small := core.DefaultConfig()
	big := core.DefaultConfig()
	big.RBSize, big.LSQSize, big.IFQSize = 64, 32, 16
	bs, err := EstimateArea(small)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := EstimateArea(big)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Total().Slices <= bs.Total().Slices {
		t.Errorf("bigger windows did not grow area: %d <= %d",
			bb.Total().Slices, bs.Total().Slices)
	}
}

func TestAreaRejectsInvalidConfig(t *testing.T) {
	bad := core.DefaultConfig()
	bad.Width = 0
	if _, err := EstimateArea(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMulticoreInstancesFit(t *testing.T) {
	b, err := EstimateArea(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fits, n := b.FitsIn(Virtex4)
	if !fits || n < 1 {
		t.Fatalf("reference design does not fit xc4vlx40: %d instances", n)
	}
	// The paper's conclusions anticipate multiple instances per device;
	// the xc4vlx40 should hold the ~10K-slice perfect-memory core once,
	// and a larger device more than once.
	huge := Device{Name: "big", Slices: 10 * b.Total().Slices, BRAMs: 10 * b.Total().BRAMs}
	if _, n := b.FitsIn(huge); n < 10 {
		t.Errorf("10x device holds %d instances, want >= 10", n)
	}
}

func TestFASTAreaComparison(t *testing.T) {
	// §V: FAST is 29230 slices and 172 BRAMs — "2.4 times and 24 times
	// larger than ReSim". Verify our reference estimate keeps those ratios.
	b, err := EstimateArea(referenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	t4 := b.Total()
	sliceRatio := 29230.0 / float64(t4.Slices)
	bramRatio := 172.0 / float64(t4.BRAMs)
	if sliceRatio < 2.2 || sliceRatio > 2.6 {
		t.Errorf("FAST/ReSim slice ratio = %.2f, want ~2.4", sliceRatio)
	}
	if bramRatio < 22 || bramRatio > 26 {
		t.Errorf("FAST/ReSim BRAM ratio = %.2f, want ~24", bramRatio)
	}
}

func TestRenderLooksLikeTable4(t *testing.T) {
	b, err := EstimateArea(referenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := b.Render()
	for _, want := range []string{"fetch", "disp", "BP", "Slices", "4-input LUTs", "BRAMs", "Total excluding"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
