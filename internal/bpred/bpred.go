// Package bpred implements the ReSim branch predictor block: a direction
// predictor, a branch target buffer (BTB) and a return address stack (RAS),
// all parameterizable (paper §III). The paper generates VHDL for the desired
// predictor from user parameters with a script; the analog here is Config +
// New + Describe, and the storage-bit accounting that internal/fpga uses to
// budget BRAMs (Table 4 places 71% of ReSim's BRAMs in the BP).
//
// The evaluated configuration (paper §V.C): RAS 16 entries, direct-mapped
// BTB with 512 entries, and a two-level direction predictor with BHT size 4,
// history register length 8 and a 4096-entry PHT.
package bpred

import (
	"fmt"
	"math/bits"
	"strings"
)

// DirKind selects the direction predictor style.
type DirKind uint8

// Direction predictor kinds.
const (
	DirTwoLevel DirKind = iota // BHT of history registers indexing a PHT
	DirBimodal                 // per-PC 2-bit counters
	DirTaken                   // static always-taken
	DirNotTaken                // static always-not-taken
	DirCombined                // bimodal + two-level with a meta chooser
)

// String names the direction predictor kind.
func (k DirKind) String() string {
	switch k {
	case DirTwoLevel:
		return "2lev"
	case DirBimodal:
		return "bimod"
	case DirTaken:
		return "taken"
	case DirNotTaken:
		return "nottaken"
	case DirCombined:
		return "comb"
	}
	return fmt.Sprintf("DirKind(%d)", uint8(k))
}

// Config holds the full set of user parameters the paper's generation
// script accepts.
type Config struct {
	Dir DirKind

	// Two-level parameters (paper defaults: 4 / 8 / 4096).
	BHTSize  int  // number of branch history registers (power of two)
	HistLen  int  // bits of history per register
	PHTSize  int  // number of 2-bit pattern history counters (power of two)
	XORIndex bool // PHT index = history XOR pc bits (gshare style) instead of concatenation

	// Bimodal parameter.
	BimodSize int // number of 2-bit counters (power of two)

	// Combined-predictor parameter: 2-bit meta counters choosing between
	// the bimodal and two-level components per branch.
	MetaSize int // power of two; used when Dir == DirCombined

	// BTB geometry (paper default: 512 entries, direct mapped).
	BTBEntries int
	BTBAssoc   int
	// BTBTagBits bounds the stored tag width; 0 keeps full tags. Partial
	// tags are what make misfetches possible (a direct branch hits an
	// aliased entry and fetches the wrong target, §III).
	BTBTagBits int

	// RAS depth (paper default: 16).
	RASSize int
}

// Default returns the configuration evaluated in the paper.
func Default() Config {
	return Config{
		Dir:        DirTwoLevel,
		BHTSize:    4,
		HistLen:    8,
		PHTSize:    4096,
		BimodSize:  2048,
		BTBEntries: 512,
		BTBAssoc:   1,
		RASSize:    16,
	}
}

// Validate reports configuration errors (non-power-of-two table sizes, etc).
func (c Config) Validate() error {
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("bpred: %s must be a positive power of two, got %d", name, v)
		}
		return nil
	}
	if c.Dir == DirTwoLevel || c.Dir == DirCombined {
		if err := pow2("BHTSize", c.BHTSize); err != nil {
			return err
		}
		if err := pow2("PHTSize", c.PHTSize); err != nil {
			return err
		}
		if c.HistLen <= 0 || c.HistLen > 30 {
			return fmt.Errorf("bpred: HistLen out of range: %d", c.HistLen)
		}
	}
	if c.Dir == DirBimodal || c.Dir == DirCombined {
		if err := pow2("BimodSize", c.BimodSize); err != nil {
			return err
		}
	}
	if c.Dir == DirCombined {
		if err := pow2("MetaSize", c.MetaSize); err != nil {
			return err
		}
	}
	if c.BTBEntries > 0 {
		if err := pow2("BTBEntries", c.BTBEntries); err != nil {
			return err
		}
		if c.BTBAssoc <= 0 || c.BTBEntries%c.BTBAssoc != 0 {
			return fmt.Errorf("bpred: BTBAssoc %d does not divide %d entries", c.BTBAssoc, c.BTBEntries)
		}
	}
	if c.BTBTagBits < 0 || c.BTBTagBits > 30 {
		return fmt.Errorf("bpred: BTBTagBits out of range: %d", c.BTBTagBits)
	}
	if c.RASSize < 0 {
		return fmt.Errorf("bpred: negative RASSize")
	}
	return nil
}

// StorageBits returns the predictor's total state in bits; internal/fpga
// maps this onto Block RAMs ("We used Block RAMs only in the Branch
// Predictor", Table 4).
func (c Config) StorageBits() int {
	bits := 0
	switch c.Dir {
	case DirTwoLevel:
		bits += c.BHTSize * c.HistLen // history registers
		bits += c.PHTSize * 2         // 2-bit counters
	case DirBimodal:
		bits += c.BimodSize * 2
	case DirCombined:
		bits += c.BHTSize*c.HistLen + c.PHTSize*2 + c.BimodSize*2 + c.MetaSize*2
	}
	if c.BTBEntries > 0 {
		// Each BTB entry: 32-bit target + tag + valid. Full tags are
		// budgeted at 20 bits.
		tag := 20
		if c.BTBTagBits > 0 {
			tag = c.BTBTagBits
		}
		bits += c.BTBEntries * (32 + tag + 1)
	}
	bits += c.RASSize * 32
	return bits
}

// Predictor is a concrete branch predictor instance.
type Predictor struct {
	cfg Config //resim:ckpt-exempt immutable configuration; SetState validates restored table geometry against it

	bht  []uint32 // history registers
	pht  []uint8  // 2-bit saturating counters
	bim  []uint8  // bimodal counters
	meta []uint8  // combined-predictor chooser counters

	btbTags  []uint32
	btbTgts  []uint32
	btbValid []bool
	btbLRU   []uint8 // per-set round-robin pointer for assoc > 1
	btbSets  int     //resim:ckpt-exempt geometry derived from cfg by New; the BTB tables restore by length-checked copy
	btbAssoc int     //resim:ckpt-exempt geometry derived from cfg by New

	ras    []uint32
	rasTop int // index of next free slot (stack grows up, wraps)
	rasCnt int
}

// New builds a predictor from cfg. It panics on invalid configuration;
// callers constructing configs at runtime should Validate first.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{cfg: cfg}
	if cfg.Dir == DirTwoLevel || cfg.Dir == DirCombined {
		p.bht = make([]uint32, cfg.BHTSize)
		p.pht = make([]uint8, cfg.PHTSize)
		for i := range p.pht {
			p.pht[i] = 2 // weakly taken, sim-outorder's reset state
		}
	}
	if cfg.Dir == DirBimodal || cfg.Dir == DirCombined {
		p.bim = make([]uint8, cfg.BimodSize)
		for i := range p.bim {
			p.bim[i] = 2
		}
	}
	if cfg.Dir == DirCombined {
		p.meta = make([]uint8, cfg.MetaSize)
		for i := range p.meta {
			p.meta[i] = 2 // weakly prefer the two-level component
		}
	}
	if cfg.BTBEntries > 0 {
		p.btbAssoc = cfg.BTBAssoc
		p.btbSets = cfg.BTBEntries / cfg.BTBAssoc
		n := cfg.BTBEntries
		p.btbTags = make([]uint32, n)
		p.btbTgts = make([]uint32, n)
		p.btbValid = make([]bool, n)
		p.btbLRU = make([]uint8, p.btbSets)
	}
	if cfg.RASSize > 0 {
		p.ras = make([]uint32, cfg.RASSize)
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) phtIndex(pc uint32) int {
	h := p.bht[(pc>>2)&uint32(p.cfg.BHTSize-1)]
	mask := uint32(p.cfg.PHTSize - 1)
	if p.cfg.XORIndex {
		return int((h ^ (pc >> 2)) & mask)
	}
	// Concatenate: history in the high bits, pc bits below.
	lowBits := uint(bits.TrailingZeros32(uint32(p.cfg.PHTSize))) - uint(p.cfg.HistLen)
	if int(lowBits) < 0 || p.cfg.HistLen >= bits.TrailingZeros32(uint32(p.cfg.PHTSize)) {
		return int(h & mask)
	}
	return int((h<<lowBits | (pc >> 2 & (1<<lowBits - 1))) & mask)
}

func (p *Predictor) predictTwoLevel(pc uint32) bool {
	return p.pht[p.phtIndex(pc)] >= 2
}

func (p *Predictor) predictBimodal(pc uint32) bool {
	return p.bim[(pc>>2)&uint32(p.cfg.BimodSize-1)] >= 2
}

// PredictDir returns the direction prediction for a conditional branch at pc.
func (p *Predictor) PredictDir(pc uint32) bool {
	switch p.cfg.Dir {
	case DirTwoLevel:
		return p.predictTwoLevel(pc)
	case DirBimodal:
		return p.predictBimodal(pc)
	case DirCombined:
		if p.meta[(pc>>2)&uint32(p.cfg.MetaSize-1)] >= 2 {
			return p.predictTwoLevel(pc)
		}
		return p.predictBimodal(pc)
	case DirTaken:
		return true
	default:
		return false
	}
}

// UpdateDir trains the direction predictor with the resolved outcome.
// ReSim performs this update when the branch commits (paper §III: "Commit
// ... updates the Branch Predictor in case of branch").
func (p *Predictor) UpdateDir(pc uint32, taken bool) {
	bump := func(c uint8) uint8 {
		if taken {
			if c < 3 {
				return c + 1
			}
			return 3
		}
		if c > 0 {
			return c - 1
		}
		return 0
	}
	updateTwoLevel := func() {
		idx := p.phtIndex(pc)
		p.pht[idx] = bump(p.pht[idx])
		b := (pc >> 2) & uint32(p.cfg.BHTSize-1)
		p.bht[b] = (p.bht[b]<<1 | b2u(taken)) & (1<<uint(p.cfg.HistLen) - 1)
	}
	updateBimodal := func() {
		idx := (pc >> 2) & uint32(p.cfg.BimodSize-1)
		p.bim[idx] = bump(p.bim[idx])
	}
	switch p.cfg.Dir {
	case DirTwoLevel:
		updateTwoLevel()
	case DirBimodal:
		updateBimodal()
	case DirCombined:
		// Train the chooser toward whichever component was right (only
		// when they disagree), then train both components.
		tl, bm := p.predictTwoLevel(pc), p.predictBimodal(pc)
		if tl != bm {
			mi := (pc >> 2) & uint32(p.cfg.MetaSize-1)
			if tl == taken {
				if p.meta[mi] < 3 {
					p.meta[mi]++
				}
			} else if p.meta[mi] > 0 {
				p.meta[mi]--
			}
		}
		updateTwoLevel()
		updateBimodal()
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// btbTag derives the stored tag for pc: the index bits are stripped and the
// remainder truncated to BTBTagBits when partial tags are configured.
func (p *Predictor) btbTag(pc uint32) uint32 {
	tag := (pc >> 2) / uint32(p.btbSets)
	if b := p.cfg.BTBTagBits; b > 0 {
		tag &= 1<<uint(b) - 1
	}
	return tag
}

// LookupBTB returns the predicted target for pc, if present.
func (p *Predictor) LookupBTB(pc uint32) (target uint32, hit bool) {
	if p.btbSets == 0 {
		return 0, false
	}
	set := int(pc>>2) & (p.btbSets - 1)
	base := set * p.btbAssoc
	tag := p.btbTag(pc)
	for w := 0; w < p.btbAssoc; w++ {
		if p.btbValid[base+w] && p.btbTags[base+w] == tag {
			return p.btbTgts[base+w], true
		}
	}
	return 0, false
}

// UpdateBTB installs or refreshes the target for pc.
func (p *Predictor) UpdateBTB(pc, target uint32) {
	if p.btbSets == 0 {
		return
	}
	set := int(pc>>2) & (p.btbSets - 1)
	base := set * p.btbAssoc
	tag := p.btbTag(pc)
	// Hit: refresh in place.
	for w := 0; w < p.btbAssoc; w++ {
		if p.btbValid[base+w] && p.btbTags[base+w] == tag {
			p.btbTgts[base+w] = target
			return
		}
	}
	// Miss: fill an invalid way, else round-robin replace.
	victim := -1
	for w := 0; w < p.btbAssoc; w++ {
		if !p.btbValid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = int(p.btbLRU[set]) % p.btbAssoc
		p.btbLRU[set]++
	}
	p.btbTags[base+victim] = tag
	p.btbTgts[base+victim] = target
	p.btbValid[base+victim] = true
}

// PushRAS records a return address at a call (performed at fetch; wrong-path
// calls corrupt the stack exactly as the modeled hardware would).
func (p *Predictor) PushRAS(ret uint32) {
	if len(p.ras) == 0 {
		return
	}
	p.ras[p.rasTop] = ret
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	if p.rasCnt < len(p.ras) {
		p.rasCnt++
	}
}

// PopRAS returns the predicted return address, if the stack is non-empty.
func (p *Predictor) PopRAS() (uint32, bool) {
	if len(p.ras) == 0 || p.rasCnt == 0 {
		return 0, false
	}
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	p.rasCnt--
	return p.ras[p.rasTop], true
}

// RASDepth returns the current stack depth.
func (p *Predictor) RASDepth() int { return p.rasCnt }

// Reset clears all predictor state to the power-on configuration.
func (p *Predictor) Reset() {
	for i := range p.bht {
		p.bht[i] = 0
	}
	for i := range p.pht {
		p.pht[i] = 2
	}
	for i := range p.bim {
		p.bim[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2
	}
	for i := range p.btbValid {
		// Tags and targets are cleared too (not just invalidated) so a reset
		// predictor is bit-identical to a newly built one — the property the
		// engine's exhaustive per-run Reset and checkpoint tests pin.
		p.btbValid[i] = false
		p.btbTags[i] = 0
		p.btbTgts[i] = 0
	}
	for i := range p.btbLRU {
		p.btbLRU[i] = 0
	}
	for i := range p.ras {
		p.ras[i] = 0
	}
	p.rasTop, p.rasCnt = 0, 0
}

// State is the predictor's complete mutable state in a self-describing,
// serializable form (every table the generated hardware would hold in BRAM).
// Capture it with (*Predictor).State and reinstall it with SetState; the
// round trip is lossless, so a restored predictor produces bit-identical
// predictions — the property engine checkpoint/resume is built on.
type State struct {
	BHT  []uint32 `json:"bht,omitempty"`
	PHT  []uint8  `json:"pht,omitempty"`
	Bim  []uint8  `json:"bim,omitempty"`
	Meta []uint8  `json:"meta,omitempty"`

	BTBTags  []uint32 `json:"btb_tags,omitempty"`
	BTBTgts  []uint32 `json:"btb_tgts,omitempty"`
	BTBValid []bool   `json:"btb_valid,omitempty"`
	BTBLRU   []uint8  `json:"btb_lru,omitempty"`

	RAS    []uint32 `json:"ras,omitempty"`
	RASTop int      `json:"ras_top,omitempty"`
	RASCnt int      `json:"ras_cnt,omitempty"`
}

// State captures the predictor's mutable state. The returned slices are
// copies; mutating them does not affect the predictor.
func (p *Predictor) State() State {
	return State{
		BHT: cp(p.bht), PHT: cp(p.pht), Bim: cp(p.bim), Meta: cp(p.meta),
		BTBTags: cp(p.btbTags), BTBTgts: cp(p.btbTgts),
		BTBValid: cp(p.btbValid), BTBLRU: cp(p.btbLRU),
		RAS: cp(p.ras), RASTop: p.rasTop, RASCnt: p.rasCnt,
	}
}

// SetState restores state captured from a predictor with the same
// configuration. Table geometry is validated field by field so a checkpoint
// taken under a different predictor configuration fails loudly.
func (p *Predictor) SetState(s State) error {
	check := func(name string, got, want int) error {
		if got != want {
			return fmt.Errorf("bpred: restore %s has %d entries, predictor holds %d", name, got, want)
		}
		return nil
	}
	for _, c := range []struct {
		name      string
		got, want int
	}{
		{"BHT", len(s.BHT), len(p.bht)},
		{"PHT", len(s.PHT), len(p.pht)},
		{"bimodal", len(s.Bim), len(p.bim)},
		{"meta", len(s.Meta), len(p.meta)},
		{"BTB tags", len(s.BTBTags), len(p.btbTags)},
		{"BTB targets", len(s.BTBTgts), len(p.btbTgts)},
		{"BTB valid", len(s.BTBValid), len(p.btbValid)},
		{"BTB LRU", len(s.BTBLRU), len(p.btbLRU)},
		{"RAS", len(s.RAS), len(p.ras)},
	} {
		if err := check(c.name, c.got, c.want); err != nil {
			return err
		}
	}
	if len(p.ras) > 0 && (s.RASTop < 0 || s.RASTop >= len(p.ras) || s.RASCnt < 0 || s.RASCnt > len(p.ras)) {
		return fmt.Errorf("bpred: restore RAS top %d / count %d out of range for %d entries", s.RASTop, s.RASCnt, len(p.ras))
	}
	copy(p.bht, s.BHT)
	copy(p.pht, s.PHT)
	copy(p.bim, s.Bim)
	copy(p.meta, s.Meta)
	copy(p.btbTags, s.BTBTags)
	copy(p.btbTgts, s.BTBTgts)
	copy(p.btbValid, s.BTBValid)
	copy(p.btbLRU, s.BTBLRU)
	copy(p.ras, s.RAS)
	p.rasTop, p.rasCnt = s.RASTop, s.RASCnt
	return nil
}

// cp returns a copy of s (nil stays nil, so State omits absent tables).
func cp[T any](s []T) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// Describe emits a VHDL-entity-like summary of the generated predictor,
// mirroring the paper's script that "produces VHDL code for the desired
// Branch Predictor according to the user parameters".
func (c Config) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "entity branch_predictor is\n  generic (\n")
	fmt.Fprintf(&sb, "    DIR_KIND    : string  := %q;\n", c.Dir.String())
	if c.Dir == DirTwoLevel || c.Dir == DirCombined {
		fmt.Fprintf(&sb, "    BHT_SIZE    : integer := %d;\n", c.BHTSize)
		fmt.Fprintf(&sb, "    HIST_LEN    : integer := %d;\n", c.HistLen)
		fmt.Fprintf(&sb, "    PHT_SIZE    : integer := %d;\n", c.PHTSize)
	}
	if c.Dir == DirBimodal || c.Dir == DirCombined {
		fmt.Fprintf(&sb, "    BIMOD_SIZE  : integer := %d;\n", c.BimodSize)
	}
	if c.Dir == DirCombined {
		fmt.Fprintf(&sb, "    META_SIZE   : integer := %d;\n", c.MetaSize)
	}
	fmt.Fprintf(&sb, "    BTB_ENTRIES : integer := %d;\n", c.BTBEntries)
	fmt.Fprintf(&sb, "    BTB_ASSOC   : integer := %d;\n", c.BTBAssoc)
	fmt.Fprintf(&sb, "    RAS_SIZE    : integer := %d\n", c.RASSize)
	fmt.Fprintf(&sb, "  );\nend branch_predictor; -- %d state bits\n", c.StorageBits())
	return sb.String()
}
