package bpred

import (
	"encoding/json"
	"reflect"
	"testing"
)

// stateTestConfig is a deliberately tiny predictor so the golden encoding
// stays reviewable.
func stateTestConfig() Config {
	return Config{
		Dir: DirTwoLevel, BHTSize: 2, HistLen: 2, PHTSize: 8,
		BTBEntries: 4, BTBAssoc: 2, RASSize: 2,
	}
}

// trainDeterministic applies a fixed stimulus that touches every table: the
// direction predictor, the BTB (including a replacement) and the RAS.
func trainDeterministic(p *Predictor) {
	for i := 0; i < 6; i++ {
		pc := uint32(0x1000 + 4*i)
		p.PredictDir(pc)
		p.UpdateDir(pc, i%2 == 0)
		p.UpdateBTB(pc, pc+0x40)
	}
	p.PushRAS(0x2004)
	p.PushRAS(0x2008)
	p.PopRAS()
}

// TestStateRoundTrip: State -> JSON -> SetState reproduces bit-identical
// prediction behavior and re-captures to the identical state.
func TestStateRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		stateTestConfig(),
		Default(),
		{Dir: DirCombined, BHTSize: 4, HistLen: 3, PHTSize: 16, BimodSize: 8,
			MetaSize: 8, BTBEntries: 8, BTBAssoc: 1, RASSize: 4},
		{Dir: DirBimodal, BimodSize: 16, BTBEntries: 0, RASSize: 0},
	} {
		orig := New(cfg)
		trainDeterministic(orig)
		data, err := json.Marshal(orig.State())
		if err != nil {
			t.Fatal(err)
		}
		var decoded State
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		restored := New(cfg)
		if err := restored.SetState(decoded); err != nil {
			t.Fatalf("%v: %v", cfg.Dir, err)
		}
		if !reflect.DeepEqual(restored.State(), orig.State()) {
			t.Errorf("%v: state round trip not lossless", cfg.Dir)
		}
		// Behavioral equivalence: identical predictions and RAS pops.
		for i := 0; i < 8; i++ {
			pc := uint32(0x1000 + 4*i)
			if restored.PredictDir(pc) != orig.PredictDir(pc) {
				t.Errorf("%v: direction prediction diverged at %#x", cfg.Dir, pc)
			}
			tgtA, hitA := orig.LookupBTB(pc)
			tgtB, hitB := restored.LookupBTB(pc)
			if tgtA != tgtB || hitA != hitB {
				t.Errorf("%v: BTB lookup diverged at %#x", cfg.Dir, pc)
			}
		}
		ra, oka := orig.PopRAS()
		rb, okb := restored.PopRAS()
		if ra != rb || oka != okb {
			t.Errorf("%v: RAS pop diverged: %#x/%t vs %#x/%t", cfg.Dir, ra, oka, rb, okb)
		}
	}
}

// TestStateGoldenEncoding pins the serialized form of a known trained
// predictor byte for byte — an accidental encoding change (field rename,
// table reorder) breaks stored checkpoints and must fail loudly here.
func TestStateGoldenEncoding(t *testing.T) {
	p := New(stateTestConfig())
	trainDeterministic(p)
	data, err := json.Marshal(p.State())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"bht":[3,0],"pht":"AwADAgICAwI=","btb_tags":[514,513,514,513],"btb_tgts":[4176,4168,4180,4172],"btb_valid":[true,true,true,true],"btb_lru":"AQE=","ras":[8196,8200],"ras_top":1,"ras_cnt":1}`
	if string(data) != golden {
		t.Errorf("state encoding changed:\ngot  %s\nwant %s", data, golden)
	}
}

// TestSetStateRejectsMismatchedGeometry: state from one configuration
// cannot silently restore into another.
func TestSetStateRejectsMismatchedGeometry(t *testing.T) {
	st := New(stateTestConfig()).State()
	bigger := stateTestConfig()
	bigger.PHTSize = 16
	if err := New(bigger).SetState(st); err == nil {
		t.Error("SetState accepted state from a smaller PHT")
	}
	st.RASTop = 5
	if err := New(stateTestConfig()).SetState(st); err == nil {
		t.Error("SetState accepted an out-of-range RAS top")
	}
}
