package bpred

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaper(t *testing.T) {
	c := Default()
	if c.RASSize != 16 || c.BTBEntries != 512 || c.BTBAssoc != 1 {
		t.Errorf("BTB/RAS defaults: %+v", c)
	}
	if c.BHTSize != 4 || c.HistLen != 8 || c.PHTSize != 4096 {
		t.Errorf("two-level defaults: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Dir: DirTwoLevel, BHTSize: 3, HistLen: 8, PHTSize: 4096},
		{Dir: DirTwoLevel, BHTSize: 4, HistLen: 0, PHTSize: 4096},
		{Dir: DirTwoLevel, BHTSize: 4, HistLen: 8, PHTSize: 1000},
		{Dir: DirBimodal, BimodSize: 100},
		{Dir: DirTaken, BTBEntries: 511, BTBAssoc: 1},
		{Dir: DirTaken, BTBEntries: 512, BTBAssoc: 3},
		{Dir: DirTaken, RASSize: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	cfg := Default()
	cfg.Dir = DirBimodal
	p := New(cfg)
	pc := uint32(0x4000)
	for i := 0; i < 8; i++ {
		p.UpdateDir(pc, true)
	}
	if !p.PredictDir(pc) {
		t.Error("bimodal did not learn always-taken")
	}
	for i := 0; i < 8; i++ {
		p.UpdateDir(pc, false)
	}
	if p.PredictDir(pc) {
		t.Error("bimodal did not learn always-not-taken")
	}
}

func TestTwoLevelLearnsAlternation(t *testing.T) {
	// A strict T/N alternation defeats bimodal but is perfectly captured
	// by history-indexed pattern counters.
	p := New(Default())
	pc := uint32(0x4000)
	taken := false
	correct := 0
	const warm, meas = 200, 200
	for i := 0; i < warm+meas; i++ {
		pred := p.PredictDir(pc)
		if i >= warm && pred == taken {
			correct++
		}
		p.UpdateDir(pc, taken)
		taken = !taken
	}
	if correct < meas*95/100 {
		t.Errorf("two-level accuracy on alternation = %d/%d", correct, meas)
	}
}

func TestTwoLevelLearnsShortLoop(t *testing.T) {
	// Pattern TTTN (loop of 4 iterations) is history-learnable with 8 bits.
	p := New(Default())
	pc := uint32(0x8000)
	correct, meas := 0, 400
	for i := 0; i < 400+meas; i++ {
		taken := i%4 != 3
		pred := p.PredictDir(pc)
		if i >= 400 && pred == taken {
			correct++
		}
		p.UpdateDir(pc, taken)
	}
	if correct < meas*95/100 {
		t.Errorf("two-level accuracy on TTTN loop = %d/%d", correct, meas)
	}
}

func TestStaticPredictors(t *testing.T) {
	pt := New(Config{Dir: DirTaken, RASSize: 0})
	pn := New(Config{Dir: DirNotTaken, RASSize: 0})
	for _, pc := range []uint32{0, 0x400, 0xFFFFFFFC} {
		if !pt.PredictDir(pc) {
			t.Error("taken predictor said not-taken")
		}
		if pn.PredictDir(pc) {
			t.Error("not-taken predictor said taken")
		}
	}
	// Updates are no-ops but must not panic.
	pt.UpdateDir(0x400, false)
	pn.UpdateDir(0x400, true)
}

func TestBTBDirectMapped(t *testing.T) {
	p := New(Default()) // 512-entry direct-mapped
	if _, hit := p.LookupBTB(0x4000); hit {
		t.Error("cold BTB hit")
	}
	p.UpdateBTB(0x4000, 0x5000)
	if tgt, hit := p.LookupBTB(0x4000); !hit || tgt != 0x5000 {
		t.Errorf("BTB lookup = %#x,%t", tgt, hit)
	}
	// Conflicting PC (same set, different tag) evicts in a DM BTB.
	conflict := uint32(0x4000 + 512*4)
	p.UpdateBTB(conflict, 0x9000)
	if _, hit := p.LookupBTB(0x4000); hit {
		t.Error("direct-mapped BTB kept both conflicting entries")
	}
	if tgt, hit := p.LookupBTB(conflict); !hit || tgt != 0x9000 {
		t.Error("conflicting entry not installed")
	}
	// Refresh in place changes target.
	p.UpdateBTB(conflict, 0xA000)
	if tgt, _ := p.LookupBTB(conflict); tgt != 0xA000 {
		t.Errorf("refresh failed: %#x", tgt)
	}
}

func TestBTBSetAssociative(t *testing.T) {
	cfg := Default()
	cfg.BTBEntries, cfg.BTBAssoc = 8, 2
	p := New(cfg)
	// Two PCs mapping to the same set coexist with assoc 2.
	a, b := uint32(0x100), uint32(0x100+4*4) // 4 sets
	p.UpdateBTB(a, 1)
	p.UpdateBTB(b, 2)
	if _, hit := p.LookupBTB(a); !hit {
		t.Error("way 0 evicted")
	}
	if _, hit := p.LookupBTB(b); !hit {
		t.Error("way 1 missing")
	}
	// Third conflicting PC evicts exactly one way.
	c := uint32(0x100 + 8*4*4)
	p.UpdateBTB(c, 3)
	hits := 0
	for _, pc := range []uint32{a, b, c} {
		if _, h := p.LookupBTB(pc); h {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("after conflict: %d hits, want 2", hits)
	}
}

func TestRASLIFO(t *testing.T) {
	p := New(Default())
	if _, ok := p.PopRAS(); ok {
		t.Error("pop from empty RAS succeeded")
	}
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	p.PushRAS(0x300)
	if p.RASDepth() != 3 {
		t.Errorf("depth = %d", p.RASDepth())
	}
	for _, want := range []uint32{0x300, 0x200, 0x100} {
		got, ok := p.PopRAS()
		if !ok || got != want {
			t.Errorf("pop = %#x,%t want %#x", got, ok, want)
		}
	}
	if _, ok := p.PopRAS(); ok {
		t.Error("RAS underflow not detected")
	}
}

func TestRASWrapsAtCapacity(t *testing.T) {
	cfg := Default()
	cfg.RASSize = 4
	p := New(cfg)
	for i := 1; i <= 6; i++ {
		p.PushRAS(uint32(i * 0x10))
	}
	if p.RASDepth() != 4 {
		t.Errorf("depth = %d, want 4 (capacity)", p.RASDepth())
	}
	// Oldest two entries were overwritten; pops yield 0x60,0x50,0x40,0x30.
	for _, want := range []uint32{0x60, 0x50, 0x40, 0x30} {
		got, ok := p.PopRAS()
		if !ok || got != want {
			t.Errorf("pop = %#x,%t want %#x", got, ok, want)
		}
	}
}

func TestStorageBits(t *testing.T) {
	c := Default()
	want := 4*8 + 4096*2 + 512*(32+20+1) + 16*32
	if got := c.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
	// Bimodal accounting.
	c.Dir = DirBimodal
	want = 2048*2 + 512*(32+20+1) + 16*32
	if got := c.StorageBits(); got != want {
		t.Errorf("bimodal StorageBits = %d, want %d", got, want)
	}
}

func TestDescribe(t *testing.T) {
	d := Default().Describe()
	for _, want := range []string{"entity branch_predictor", "PHT_SIZE", "4096", "RAS_SIZE", "16"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	// Bimodal description names its own table, not the 2-level ones.
	c := Default()
	c.Dir = DirBimodal
	d = c.Describe()
	if !strings.Contains(d, "BIMOD_SIZE") || strings.Contains(d, "PHT_SIZE") {
		t.Errorf("bimodal Describe wrong:\n%s", d)
	}
}

func TestReset(t *testing.T) {
	p := New(Default())
	p.UpdateDir(0x40, true)
	p.UpdateBTB(0x40, 0x80)
	p.PushRAS(0x44)
	p.Reset()
	if _, hit := p.LookupBTB(0x40); hit {
		t.Error("BTB survived Reset")
	}
	if p.RASDepth() != 0 {
		t.Error("RAS survived Reset")
	}
}

func combined() Config {
	c := Default()
	c.Dir = DirCombined
	c.MetaSize = 1024
	return c
}

func TestCombinedPredictorChooser(t *testing.T) {
	// An alternating pattern defeats bimodal but is learned by the
	// two-level component; the combined predictor must converge to the
	// two-level choice and match its accuracy.
	p := New(combined())
	pc := uint32(0x4000)
	taken := false
	correct, meas := 0, 300
	for i := 0; i < 400+meas; i++ {
		pred := p.PredictDir(pc)
		if i >= 400 && pred == taken {
			correct++
		}
		p.UpdateDir(pc, taken)
		taken = !taken
	}
	if correct < meas*95/100 {
		t.Errorf("combined accuracy on alternation = %d/%d", correct, meas)
	}
}

func TestCombinedPredictorFallsBackToBimodal(t *testing.T) {
	// A heavily biased branch is captured by bimodal immediately; the
	// combined predictor must be at least as good as bimodal on it.
	p := New(combined())
	pc := uint32(0x8000)
	correct, meas := 0, 200
	for i := 0; i < 100+meas; i++ {
		pred := p.PredictDir(pc)
		if i >= 100 && pred {
			correct++
		}
		p.UpdateDir(pc, true)
	}
	if correct != meas {
		t.Errorf("combined accuracy on always-taken = %d/%d", correct, meas)
	}
}

func TestCombinedValidationAndStorage(t *testing.T) {
	c := combined()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.MetaSize = 1000
	if err := bad.Validate(); err == nil {
		t.Error("non-pow2 MetaSize accepted")
	}
	want := 4*8 + 4096*2 + 2048*2 + 1024*2 + 512*(32+20+1) + 16*32
	if got := c.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
	d := c.Describe()
	for _, field := range []string{"META_SIZE", "BIMOD_SIZE", "PHT_SIZE"} {
		if !strings.Contains(d, field) {
			t.Errorf("Describe missing %s:\n%s", field, d)
		}
	}
	// Reset restores meta counters.
	p := New(c)
	for i := 0; i < 10; i++ {
		p.UpdateDir(0x40, true)
	}
	p.Reset()
	if !p.PredictDir(0x40) {
		t.Error("reset combined predictor should weakly predict taken")
	}
}

func TestBTBPartialTagAliasing(t *testing.T) {
	cfg := Default()
	cfg.BTBTagBits = 2
	p := New(cfg)
	// Two PCs with the same set and the same truncated tag alias: the
	// second lookup falsely hits with the first branch's target. This is
	// the mechanism behind misfetches.
	pcA := uint32(0x1000)
	pcB := pcA + 4*512*4 // same set, tag differs by 4 ≡ 0 mod 2^2
	p.UpdateBTB(pcA, 0xAAAA)
	if tgt, hit := p.LookupBTB(pcB); !hit || tgt != 0xAAAA {
		t.Errorf("aliased lookup = %#x,%t; want false hit with 0xaaaa", tgt, hit)
	}
	// Full tags never alias.
	cfg.BTBTagBits = 0
	p2 := New(cfg)
	p2.UpdateBTB(pcA, 0xAAAA)
	if _, hit := p2.LookupBTB(pcB); hit {
		t.Error("full-tag BTB aliased")
	}
	// Partial tags shrink storage.
	if cfg2 := cfg; true {
		cfg2.BTBTagBits = 2
		if cfg2.StorageBits() >= cfg.StorageBits() {
			t.Error("partial tags did not reduce storage")
		}
	}
	if bad := (Config{Dir: DirTaken, BTBEntries: 512, BTBAssoc: 1, BTBTagBits: -1}); bad.Validate() == nil {
		t.Error("negative BTBTagBits accepted")
	}
}

func TestXORIndexMode(t *testing.T) {
	cfg := Default()
	cfg.XORIndex = true
	p := New(cfg)
	pc := uint32(0x4000)
	for i := 0; i < 16; i++ {
		p.UpdateDir(pc, true)
	}
	if !p.PredictDir(pc) {
		t.Error("gshare-style predictor did not learn always-taken")
	}
}

// Property: RAS behaves as a bounded LIFO for any push/pop sequence.
func TestQuickRASBoundedLIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		size := 1 + rng.Intn(8)
		cfg := Default()
		cfg.RASSize = size
		p := New(cfg)
		var model []uint32
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				v := rng.Uint32()
				p.PushRAS(v)
				model = append(model, v)
				if len(model) > size {
					model = model[len(model)-size:]
				}
			} else {
				got, ok := p.PopRAS()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || got != want {
					return false
				}
			}
			if p.RASDepth() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{Dir: DirTwoLevel, BHTSize: 3, HistLen: 8, PHTSize: 4096})
}
