package baseline

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestExecutionDrivenMatchesTraceDriven(t *testing.T) {
	// Execution-driven coupling must produce exactly the same simulated
	// timing as pre-generating the trace and feeding it to the engine.
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	const limit = 20000

	prog, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	onTheFly, _, err := ExecutionDriven(context.Background(), cfg, prog, limit)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-generate the same trace into memory, then simulate.
	src, err := p.NewSource(funcsim.TraceConfig{
		Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen(),
	}, limit)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err != nil {
			break
		}
		recs = append(recs, r)
	}
	eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if onTheFly.Cycles != offline.Cycles || onTheFly.Committed != offline.Committed {
		t.Errorf("on-the-fly %d cycles/%d insn vs offline %d/%d",
			onTheFly.Cycles, onTheFly.Committed, offline.Cycles, offline.Committed)
	}
	if onTheFly.Counters != offline.Counters {
		t.Errorf("counter mismatch:\n%+v\n%+v", onTheFly.Counters, offline.Counters)
	}
}

func TestExecutionDrivenReportsHostSpeed(t *testing.T) {
	p, err := workload.ByName("vpr")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, hs, err := ExecutionDriven(context.Background(), core.DefaultConfig(), prog, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if hs.HostMIPS <= 0 || hs.Wall <= 0 {
		t.Errorf("host stats not measured: %+v", hs)
	}
}

func TestInOrderScalarIPCBounds(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindOther, Class: trace.OpALU, Dest: 2, Src1: isa.NoReg, Src2: isa.NoReg},
		{Kind: trace.KindOther, Class: trace.OpALU, Dest: 3, Src1: 2, Src2: isa.NoReg},
		{Kind: trace.KindOther, Class: trace.OpALU, Dest: 4, Src1: 3, Src2: isa.NoReg},
	}
	res, err := InOrder(DefaultInOrderConfig(), trace.NewSliceSource(recs), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 3 {
		t.Fatalf("committed = %d", res.Committed)
	}
	if ipc := res.IPC(); ipc > 1.0 {
		t.Errorf("scalar in-order IPC = %.2f > 1", ipc)
	}
}

func TestInOrderDivStalls(t *testing.T) {
	// A dependent chain of divides pays the 10-cycle latency each.
	recs := []trace.Record{
		{Kind: trace.KindOther, Class: trace.OpDiv, Dest: 2, Src1: isa.NoReg, Src2: isa.NoReg},
		{Kind: trace.KindOther, Class: trace.OpDiv, Dest: 3, Src1: 2, Src2: isa.NoReg},
	}
	res, err := InOrder(DefaultInOrderConfig(), trace.NewSliceSource(recs), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 11 {
		t.Errorf("cycles = %d, want >= 11 (dependent divides)", res.Cycles)
	}
}

func TestInOrderSkipsWrongPath(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindBranch, Ctrl: isa.CtrlCond, Taken: true, Target: 0x2000,
			Dest: isa.NoReg, Src1: 1, Src2: isa.NoReg},
		{Kind: trace.KindOther, Tag: true, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{Kind: trace.KindOther, Tag: true, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg},
		{Kind: trace.KindOther, Dest: 5, Src1: isa.NoReg, Src2: isa.NoReg},
	}
	res, err := InOrder(DefaultInOrderConfig(), trace.NewSliceSource(recs), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Errorf("committed = %d, want 2 (wrong path skipped)", res.Committed)
	}
}

func TestOutOfOrderBeatsInOrder(t *testing.T) {
	// The whole point of the simulated microarchitecture: on every profile
	// the 4-wide OoO engine must exceed the scalar in-order IPC.
	for _, name := range []string{"gzip", "bzip2"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		tc := funcsim.TraceConfig{Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen()}

		src, err := p.NewSource(tc, 30000)
		if err != nil {
			t.Fatal(err)
		}
		var recs []trace.Record
		for {
			r, err := src.Next()
			if err != nil {
				break
			}
			recs = append(recs, r)
		}
		eng, err := core.New(cfg, trace.NewSliceSource(recs), funcsim.CodeBase)
		if err != nil {
			t.Fatal(err)
		}
		ooo, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		ino, err := InOrder(DefaultInOrderConfig(), trace.NewSliceSource(recs), funcsim.CodeBase)
		if err != nil {
			t.Fatal(err)
		}
		if ooo.IPC() <= ino.IPC() {
			t.Errorf("%s: OoO IPC %.2f <= in-order IPC %.2f", name, ooo.IPC(), ino.IPC())
		}
	}
}
