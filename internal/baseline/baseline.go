// Package baseline provides the software comparison points of the paper's
// Table 2.
//
// ExecutionDriven couples the functional simulator to the timing engine on
// the fly — the sim-outorder execution model (and simultaneously the "trace
// on the fly directly from a functional simulator" mode of the paper's
// future work). Its measured host throughput is this repository's
// equivalent of the paper's "sim-outorder, PISA, 0.30 MIPS on a 2.4 GHz
// Xeon" row.
//
// InOrder is a simple scalar, in-order, 5-stage timing model in the spirit
// of the ProtoFlex uniprocessor the related-work section cites; it doubles
// as a sanity baseline: the out-of-order engine must beat it on IPC.
package baseline

import (
	"context"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// HostStats reports how fast the simulation itself ran on the host.
type HostStats struct {
	Wall     time.Duration
	HostMIPS float64 // simulated (committed) instructions per host second, in millions
}

// ExecutionDriven runs prog through the functional simulator and the timing
// engine simultaneously (no trace file), simulating up to limit
// instructions, and reports both the simulation result and host throughput.
func ExecutionDriven(ctx context.Context, cfg core.Config, prog *funcsim.Program, limit uint64) (core.Result, HostStats, error) {
	m, err := funcsim.NewMachine(prog, 0)
	if err != nil {
		return core.Result{}, HostStats{}, err
	}
	src := funcsim.NewSource(m, cfg.TraceConfig(), limit)
	eng, err := core.New(cfg, src, prog.Entry)
	if err != nil {
		return core.Result{}, HostStats{}, err
	}
	start := time.Now()
	res, err := eng.RunContext(ctx)
	wall := time.Since(start)
	hs := HostStats{Wall: wall}
	if sec := wall.Seconds(); sec > 0 {
		hs.HostMIPS = float64(res.Committed) / sec / 1e6
	}
	return res, hs, err
}

// InOrderConfig parameterizes the scalar in-order model.
type InOrderConfig struct {
	MispredPenalty int // refetch penalty on a wrong prediction
	FUs            uarch.FUConfig
	ICache         cache.Model // nil = perfect
	DCache         cache.Model // nil = perfect
}

// DefaultInOrderConfig matches the out-of-order engine's FU latencies with
// the same 3-cycle mispredict penalty.
func DefaultInOrderConfig() InOrderConfig {
	return InOrderConfig{MispredPenalty: 3, FUs: uarch.DefaultFUConfig()}
}

// InOrderResult summarizes an in-order run.
type InOrderResult struct {
	Cycles    uint64
	Committed uint64
}

// IPC returns instructions per cycle.
func (r InOrderResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// InOrder simulates a single-issue, in-order, blocking pipeline over a
// trace: every instruction pays its functional-unit latency serially
// against its producers, loads pay the cache latency, taken branches cost a
// one-cycle redirect bubble, and wrong-path records are charged the
// mispredict penalty and skipped (an in-order scalar core gains nothing
// from wrong-path overlap).
func InOrder(cfg InOrderConfig, src trace.Source, startPC uint32) (InOrderResult, error) {
	ic, dc := cfg.ICache, cfg.DCache
	if ic == nil {
		ic = cache.NewPerfect(1)
	}
	if dc == nil {
		dc = cache.NewPerfect(1)
	}
	var (
		res     InOrderResult
		now     uint64
		readyAt [isa.NumRegs]uint64
		pc      = startPC
	)
	buf := trace.NewBuffered(src)
	for {
		rec, err := buf.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		if rec.Tag {
			// Wrong-path block: the in-order model charges the penalty at
			// the branch and skips the block.
			continue
		}
		if rec.Kind == trace.KindBranch && rec.PC != 0 {
			pc = rec.PC
		}
		if _, lat := ic.Access(pc, false); lat > 1 {
			now += uint64(lat - 1)
		}
		// Wait for source operands.
		for _, s := range []isa.Reg{rec.Src1, rec.Src2} {
			if s != isa.NoReg && s < isa.NumRegs && readyAt[s] > now {
				now = readyAt[s]
			}
		}
		issue := now
		var done uint64
		switch rec.Kind {
		case trace.KindMem:
			_, lat := dc.Access(rec.Addr, rec.Store)
			if rec.Store {
				done = issue + 1 // write buffer absorbs store latency
			} else {
				done = issue + uint64(lat)
			}
		case trace.KindBranch:
			done = issue + 1
			if rec.Taken {
				now++ // redirect bubble
			}
			if next, err := buf.Peek(); err == nil && next.Tag {
				// The trace generator mispredicted here; an in-order scalar
				// with the same predictor pays the penalty.
				now += uint64(cfg.MispredPenalty)
			}
		default:
			lat := cfg.FUs[fuClass(rec.Class)].Latency
			done = issue + uint64(lat)
		}
		if rec.Dest != isa.NoReg && rec.Dest < isa.NumRegs {
			readyAt[rec.Dest] = done
		}
		now++
		if done > now {
			// Long-latency results block the scalar pipeline only when a
			// consumer needs them (scoreboarded above); issue continues.
			_ = done
		}
		res.Committed++
		if rec.Kind == trace.KindBranch {
			if rec.Taken {
				pc = rec.Target
			} else {
				pc += 4
			}
		} else {
			pc += 4
		}
	}
	res.Cycles = now
	if res.Cycles == 0 && res.Committed > 0 {
		res.Cycles = res.Committed
	}
	return res, nil
}

func fuClass(c trace.OpClass) uarch.FUClass {
	switch c {
	case trace.OpMul:
		return uarch.FUMult
	case trace.OpDiv:
		return uarch.FUDiv
	default:
		return uarch.FUALU
	}
}
