// Package stats provides the 64-bit statistics counters ReSim maintains
// during simulation, mirroring the sim-outorder style of named counters,
// derived rates and occupancy distributions (paper §V.B: "To avoid overflow
// problems we use 64-bits registers for statistics").
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter is a named 64-bit event counter.
type Counter struct {
	Name string
	Desc string
	v    uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Set overwrites the counter value; used when restoring checkpoints.
func (c *Counter) Set(n uint64) { c.v = n }

// Occupancy accumulates a per-cycle occupancy sample for a buffering
// structure (IFQ, RB, LSQ) so that average occupancy and a coarse
// distribution can be reported.
type Occupancy struct {
	Name    string
	Desc    string
	Cap     int
	samples uint64
	sum     uint64
	full    uint64 // samples at capacity
	empty   uint64 // samples at zero
}

// Sample records one cycle's occupancy n.
func (o *Occupancy) Sample(n int) {
	o.samples++
	o.sum += uint64(n)
	if n == 0 {
		o.empty++
	}
	if o.Cap > 0 && n >= o.Cap {
		o.full++
	}
}

// SampleN records count consecutive cycles of constant occupancy v in one
// accumulator update — the bulk form the engine's idle-cycle fast-forward
// uses. SampleN(v, n) leaves the accumulator byte-identical to n calls of
// Sample(v).
func (o *Occupancy) SampleN(v int, count uint64) {
	o.samples += count
	o.sum += uint64(v) * count
	if v == 0 {
		o.empty += count
	}
	if o.Cap > 0 && v >= o.Cap {
		o.full += count
	}
}

// Mean returns the average occupancy over all samples.
func (o *Occupancy) Mean() float64 {
	if o.samples == 0 {
		return 0
	}
	return float64(o.sum) / float64(o.samples)
}

// FullFrac returns the fraction of sampled cycles the structure was full.
func (o *Occupancy) FullFrac() float64 {
	if o.samples == 0 {
		return 0
	}
	return float64(o.full) / float64(o.samples)
}

// EmptyFrac returns the fraction of sampled cycles the structure was empty.
func (o *Occupancy) EmptyFrac() float64 {
	if o.samples == 0 {
		return 0
	}
	return float64(o.empty) / float64(o.samples)
}

// Samples returns the number of recorded samples.
func (o *Occupancy) Samples() uint64 { return o.samples }

// Sub returns the accumulator delta o − prev, keeping o's identity fields
// (Name, Desc, Cap). With prev a snapshot of the same accumulator taken
// earlier in the run, the difference describes exactly the cycles sampled
// in between — the per-interval window form engine telemetry streams.
func (o Occupancy) Sub(prev Occupancy) Occupancy {
	o.samples -= prev.samples
	o.sum -= prev.sum
	o.full -= prev.full
	o.empty -= prev.empty
	return o
}

// Add returns the accumulator sum o + d; the identity fields are taken from
// o unless o is the zero Occupancy, in which case d's are adopted. Summing a
// run's interval windows in order with Add reconstructs the run's final
// accumulator exactly (the inverse of Sub).
func (o Occupancy) Add(d Occupancy) Occupancy {
	if o.Name == "" && o.Desc == "" && o.Cap == 0 {
		o.Name, o.Desc, o.Cap = d.Name, d.Desc, d.Cap
	}
	o.samples += d.samples
	o.sum += d.sum
	o.full += d.full
	o.empty += d.empty
	return o
}

// Reset clears the accumulator while keeping the identity fields (Name,
// Desc, Cap) — the per-run reset engines perform between runs.
func (o *Occupancy) Reset() {
	o.samples, o.sum, o.full, o.empty = 0, 0, 0, 0
}

// occupancyJSON is the wire form of an Occupancy: the accumulator state is
// unexported to keep Sample the only mutation path in-process, but a
// distributed sweep has to ship completed occupancy statistics between
// hosts, so the JSON codec exposes it losslessly.
type occupancyJSON struct {
	Name    string `json:"name,omitempty"`
	Desc    string `json:"desc,omitempty"`
	Cap     int    `json:"cap,omitempty"`
	Samples uint64 `json:"samples,omitempty"`
	Sum     uint64 `json:"sum,omitempty"`
	Full    uint64 `json:"full,omitempty"`
	Empty   uint64 `json:"empty,omitempty"`
}

// MarshalJSON encodes the complete accumulator state, so a decoded
// Occupancy reports the same Mean/FullFrac/EmptyFrac as the original.
func (o Occupancy) MarshalJSON() ([]byte, error) {
	return json.Marshal(occupancyJSON{
		Name: o.Name, Desc: o.Desc, Cap: o.Cap,
		Samples: o.samples, Sum: o.sum, Full: o.full, Empty: o.empty,
	})
}

// UnmarshalJSON restores an Occupancy encoded by MarshalJSON.
func (o *Occupancy) UnmarshalJSON(b []byte) error {
	var j occupancyJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*o = Occupancy{Name: j.Name, Desc: j.Desc, Cap: j.Cap,
		samples: j.Samples, sum: j.Sum, full: j.Full, empty: j.Empty}
	return nil
}

// Registry holds an ordered collection of counters, occupancies and derived
// formulas and can render a sim-outorder-like report.
type Registry struct {
	order    []string
	counters map[string]*Counter
	occs     map[string]*Occupancy
	formulas []formula
}

type formula struct {
	name string
	desc string
	fn   func() float64
}

// NewRegistry returns an empty statistics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		occs:     make(map[string]*Occupancy),
	}
}

// Counter registers (or returns the existing) counter with the given name.
func (r *Registry) Counter(name, desc string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name, Desc: desc}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Occupancy registers (or returns the existing) occupancy tracker.
func (r *Registry) Occupancy(name, desc string, capacity int) *Occupancy {
	if o, ok := r.occs[name]; ok {
		return o
	}
	o := &Occupancy{Name: name, Desc: desc, Cap: capacity}
	r.occs[name] = o
	r.order = append(r.order, name)
	return o
}

// Formula registers a derived statistic computed at report time.
func (r *Registry) Formula(name, desc string, fn func() float64) {
	r.formulas = append(r.formulas, formula{name, desc, fn})
	r.order = append(r.order, name)
}

// Lookup returns the counter with the given name, or nil.
func (r *Registry) Lookup(name string) *Counter { return r.counters[name] }

// Names returns all registered statistic names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Write renders the registry in a fixed-width, sim-outorder-like format.
func (r *Registry) Write(w io.Writer) error {
	width := 0
	for _, n := range r.order {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, name := range r.order {
		var err error
		switch {
		case r.counters[name] != nil:
			c := r.counters[name]
			_, err = fmt.Fprintf(w, "%-*s %16d # %s\n", width, c.Name, c.v, c.Desc)
		case r.occs[name] != nil:
			o := r.occs[name]
			_, err = fmt.Fprintf(w, "%-*s %16.4f # %s (avg occupancy, cap %d, full %.2f%%)\n",
				width, o.Name, o.Mean(), o.Desc, o.Cap, 100*o.FullFrac())
		default:
			for _, f := range r.formulas {
				if f.name == name {
					_, err = fmt.Fprintf(w, "%-*s %16.4f # %s\n", width, f.name, f.fn(), f.desc)
					break
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// String renders the registry report as a string.
func (r *Registry) String() string {
	var sb strings.Builder
	_ = r.Write(&sb)
	return sb.String()
}

// Snapshot returns a sorted name→value copy of all plain counters, useful in
// tests that compare two simulation runs.
func (r *Registry) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		out[n] = c.v
	}
	return out
}

// Ratio is a convenience for x/y guarding against division by zero.
func Ratio(x, y uint64) float64 {
	if y == 0 {
		return 0
	}
	return float64(x) / float64(y)
}

// SortedKeys returns the keys of m in sorted order (test helper).
func SortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	//resim:nondeterministic-ok the collected keys are sorted on the next line
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
