package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim_num_insn", "total instructions committed")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("value = %d, want 10", c.Value())
	}
	// Re-registering returns the same counter.
	if r.Counter("sim_num_insn", "x") != c {
		t.Error("duplicate registration created a new counter")
	}
	if r.Lookup("sim_num_insn") != c {
		t.Error("Lookup failed")
	}
	if r.Lookup("nope") != nil {
		t.Error("Lookup of unknown name should be nil")
	}
}

func TestOccupancyStats(t *testing.T) {
	o := &Occupancy{Name: "ifq", Cap: 4}
	for _, n := range []int{0, 2, 4, 4, 2} {
		o.Sample(n)
	}
	if got := o.Mean(); got != 2.4 {
		t.Errorf("mean = %v, want 2.4", got)
	}
	if got := o.FullFrac(); got != 0.4 {
		t.Errorf("full = %v, want 0.4", got)
	}
	if got := o.EmptyFrac(); got != 0.2 {
		t.Errorf("empty = %v, want 0.2", got)
	}
	if o.Samples() != 5 {
		t.Errorf("samples = %d, want 5", o.Samples())
	}
}

func TestOccupancyEmpty(t *testing.T) {
	o := &Occupancy{Name: "x", Cap: 8}
	if o.Mean() != 0 || o.FullFrac() != 0 || o.EmptyFrac() != 0 {
		t.Error("zero-sample occupancy should report zeros")
	}
}

func TestReportFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_num_insn", "instructions").Add(1234)
	r.Occupancy("RB_occ", "reorder buffer", 16).Sample(8)
	insn := r.Lookup("sim_num_insn")
	r.Formula("sim_IPC", "instructions per cycle", func() float64 {
		return float64(insn.Value()) / 1000
	})
	out := r.String()
	for _, want := range []string{"sim_num_insn", "1234", "RB_occ", "sim_IPC", "1.2340"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if i, j := strings.Index(out, "sim_num_insn"), strings.Index(out, "sim_IPC"); i > j {
		t.Error("report out of registration order")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "").Add(1)
	r.Counter("b", "").Add(2)
	snap := r.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	keys := SortedKeys(snap)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("sorted keys = %v", keys)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
}

func TestCounterSet(t *testing.T) {
	var c Counter
	c.Set(99)
	if c.Value() != 99 {
		t.Errorf("Set: value = %d", c.Value())
	}
}

// TestOccupancyJSONGolden pins the occupancy wire/checkpoint form byte for
// byte: engine checkpoints and sweepd results both ship it, so an
// accidental encoding change must fail loudly here.
func TestOccupancyJSONGolden(t *testing.T) {
	o := Occupancy{Name: "RB_occupancy", Desc: "reorder buffer", Cap: 16}
	for _, n := range []int{0, 4, 16, 16, 7} {
		o.Sample(n)
	}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"name":"RB_occupancy","desc":"reorder buffer","cap":16,"samples":5,"sum":43,"full":2,"empty":1}`
	if string(data) != golden {
		t.Errorf("occupancy encoding changed:\ngot  %s\nwant %s", data, golden)
	}
	var back Occupancy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mean() != o.Mean() || back.FullFrac() != o.FullFrac() || back.EmptyFrac() != o.EmptyFrac() || back.Samples() != o.Samples() {
		t.Errorf("occupancy round trip lost accumulator state: %+v vs %+v", back, o)
	}
}

// TestOccupancyReset: the per-run reset clears the accumulator but keeps
// the identity fields.
func TestOccupancyReset(t *testing.T) {
	o := Occupancy{Name: "IFQ_occupancy", Desc: "ifq", Cap: 4}
	o.Sample(4)
	o.Sample(0)
	o.Reset()
	if o.Samples() != 0 || o.Mean() != 0 || o.FullFrac() != 0 || o.EmptyFrac() != 0 {
		t.Errorf("Reset left accumulator state: %+v", o)
	}
	if o.Name != "IFQ_occupancy" || o.Desc != "ifq" || o.Cap != 4 {
		t.Errorf("Reset clobbered identity fields: %+v", o)
	}
}

// TestOccupancySampleN: the bulk form must leave the accumulator
// byte-identical to the equivalent sequence of single samples — the
// contract the engine's idle-cycle fast-forward rests on.
func TestOccupancySampleN(t *testing.T) {
	single := Occupancy{Name: "RB_occupancy", Cap: 8}
	bulk := single
	for _, v := range []int{0, 3, 8, 8, 0, 5} {
		for i := 0; i < 7; i++ {
			single.Sample(v)
		}
		bulk.SampleN(v, 7)
	}
	if single != bulk {
		t.Errorf("SampleN diverged from repeated Sample:\n single: %+v\n   bulk: %+v", single, bulk)
	}
	bulk.SampleN(2, 0)
	if single != bulk {
		t.Error("SampleN(v, 0) must be a no-op")
	}
}
