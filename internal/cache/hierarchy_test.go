package cache

import "testing"

func TestHierarchyHitDoesNotTouchLower(t *testing.T) {
	l2 := New(Config{Name: "l2", SizeBytes: 4 << 10, Assoc: 4, BlockBytes: 64,
		HitLatency: 6, MissLatency: 40})
	h, err := NewHierarchy(small(), l2)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x100, false) // cold: L1 miss -> L2 access
	if l2.Stats().Accesses() != 1 {
		t.Fatalf("L2 accesses = %d, want 1", l2.Stats().Accesses())
	}
	hit, lat := h.Access(0x100, false) // L1 hit
	if !hit || lat != 1 {
		t.Errorf("L1 hit = %t/%d", hit, lat)
	}
	if l2.Stats().Accesses() != 1 {
		t.Errorf("L1 hit leaked to L2: %d accesses", l2.Stats().Accesses())
	}
}

func TestHierarchyMissLatencies(t *testing.T) {
	l2 := New(Config{Name: "l2", SizeBytes: 4 << 10, Assoc: 4, BlockBytes: 64,
		HitLatency: 6, MissLatency: 40})
	h, err := NewHierarchy(small(), l2)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss + L2 miss -> 1 + 40.
	if hit, lat := h.Access(0x200, false); hit || lat != 41 {
		t.Errorf("cold access = %t/%d, want miss/41", hit, lat)
	}
	// Evict from L1 (2-way set in 1 KB cache: 8 sets) but keep in L2.
	setStride := uint32(8 * 64)
	h.Access(0x200+setStride, false)
	h.Access(0x200+2*setStride, false)
	// L1 miss, L2 hit -> 1 + 6.
	if hit, lat := h.Access(0x200, false); hit || lat != 7 {
		t.Errorf("L2-hit access = %t/%d, want miss/7", hit, lat)
	}
}

func TestHierarchySharedLower(t *testing.T) {
	l2 := New(Config{Name: "l2", SizeBytes: 4 << 10, Assoc: 4, BlockBytes: 64,
		HitLatency: 6, MissLatency: 40})
	ha, err := NewHierarchy(small(), l2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := NewHierarchy(small(), l2)
	if err != nil {
		t.Fatal(err)
	}
	ha.Access(0x300, false) // fills shared L2
	// Core B misses its private L1 but hits the shared L2 warmed by A.
	if hit, lat := hb.Access(0x300, false); hit || lat != 7 {
		t.Errorf("cross-core access = %t/%d, want miss/7 (shared L2 hit)", hit, lat)
	}
	if ha.LowerStats() != hb.LowerStats() {
		t.Error("LowerStats differ despite shared lower level")
	}
}

func TestHierarchyStatsAndReset(t *testing.T) {
	h, err := NewHierarchy(small(), NewPerfect(10))
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x40, true)
	if h.Stats().Writes != 1 {
		t.Errorf("L1 stats = %+v", h.Stats())
	}
	if h.L1().Config().Name != "t" {
		t.Error("L1 accessor broken")
	}
	h.Reset()
	if h.Stats().Accesses() != 0 || h.LowerStats().Accesses() != 0 {
		t.Error("Reset did not clear both levels")
	}
}

func TestHierarchyRejectsBadL1(t *testing.T) {
	if _, err := NewHierarchy(Config{Name: "bad", SizeBytes: 7}, NewPerfect(1)); err == nil {
		t.Error("invalid L1 geometry accepted")
	}
}
