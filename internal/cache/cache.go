// Package cache provides the timing-only cache models ReSim uses. ReSim
// does not store data: "we need to provide only the hit/miss indication and
// simulate the access latency" (paper §V, Table 4 discussion), so a cache
// here is tag state plus latency parameters. The paper evaluates two memory
// systems: a perfect memory system and 32 KByte L1 instruction/data caches
// with associativity 8 and 64-byte blocks (Table 1 caption).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name        string
	SizeBytes   int
	Assoc       int
	BlockBytes  int
	HitLatency  int // cycles for a hit (1 in the evaluated configs)
	MissLatency int // total cycles for a miss (fill from the next level)
}

// Paper configuration helpers.

// L1Config32K returns the 32 KB, 8-way, 64-byte-block configuration used for
// the FAST comparison (Table 1, right portion). The paper does not state the
// miss latency; 20 cycles is used and documented in DESIGN.md.
func L1Config32K(name string) Config {
	return Config{Name: name, SizeBytes: 32 << 10, Assoc: 8, BlockBytes: 64,
		HitLatency: 1, MissLatency: 20}
}

// Validate reports geometry errors.
func (c Config) Validate() error {
	pow2 := func(field string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("cache %s: %s must be a positive power of two, got %d", c.Name, field, v)
		}
		return nil
	}
	if err := pow2("BlockBytes", c.BlockBytes); err != nil {
		return err
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: Assoc must be positive", c.Name)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.BlockBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte blocks",
			c.Name, c.SizeBytes, c.Assoc, c.BlockBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 0 || c.MissLatency < c.HitLatency {
		return fmt.Errorf("cache %s: bad latencies hit=%d miss=%d", c.Name, c.HitLatency, c.MissLatency)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Assoc) }

// Stats are the per-cache event counters ReSim reports ("cache hits etc",
// paper §V.B).
type Stats struct {
	Reads, ReadHits   uint64
	Writes, WriteHits uint64
}

// Accesses returns total accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Hits returns total hits.
func (s Stats) Hits() uint64 { return s.ReadHits + s.WriteHits }

// Misses returns total misses.
func (s Stats) Misses() uint64 { return s.Accesses() - s.Hits() }

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses())
}

// Model is the interface the engine uses: an access returns the hit/miss
// indication and the access latency in simulated cycles.
type Model interface {
	// Access performs a timing access at addr. write selects the port type.
	Access(addr uint32, write bool) (hit bool, latency int)
	// Stats returns accumulated counters.
	Stats() Stats
	// Reset clears tag state and counters.
	Reset()
}

// Cache is a set-associative, true-LRU, write-allocate timing cache.
type Cache struct {
	cfg      Config
	setShift uint
	setMask  uint32
	tags     []uint32
	valid    []bool
	lastUsed []uint64
	tick     uint64
	st       Stats
}

// New builds a cache from cfg; it panics on invalid geometry (callers taking
// user input should Validate first).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{cfg: cfg}
	c.setMask = uint32(sets - 1)
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.setShift++
	}
	n := sets * cfg.Assoc
	c.tags = make([]uint32, n)
	c.valid = make([]bool, n)
	c.lastUsed = make([]uint64, n)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// CloneCold returns a new cache with the same geometry and empty tag state
// and counters.
func (c *Cache) CloneCold() Model { return New(c.cfg) }

// Access implements Model. Misses allocate (write-allocate for stores,
// demand fill for loads) and evict the true-LRU way.
func (c *Cache) Access(addr uint32, write bool) (bool, int) {
	c.tick++
	set := (addr >> c.setShift) & c.setMask
	tag := addr >> c.setShift
	base := int(set) * c.cfg.Assoc

	if write {
		c.st.Writes++
	} else {
		c.st.Reads++
	}

	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.lastUsed[base+w] = c.tick
			if write {
				c.st.WriteHits++
			} else {
				c.st.ReadHits++
			}
			return true, c.cfg.HitLatency
		}
	}

	// Miss: fill into an invalid way, else evict LRU.
	victim := -1
	for w := 0; w < c.cfg.Assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		oldest := c.lastUsed[base]
		for w := 1; w < c.cfg.Assoc; w++ {
			if c.lastUsed[base+w] < oldest {
				oldest = c.lastUsed[base+w]
				victim = w
			}
		}
	}
	c.tags[base+victim] = tag
	c.valid[base+victim] = true
	c.lastUsed[base+victim] = c.tick
	return false, c.cfg.MissLatency
}

// Stats implements Model.
func (c *Cache) Stats() Stats { return c.st }

// Reset implements Model. Tags are cleared too (not just invalidated) so a
// reset cache is bit-identical to a newly built one — the property the
// engine's exhaustive per-run Reset and checkpoint tests pin.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.tags[i] = 0
		c.lastUsed[i] = 0
	}
	c.tick = 0
	c.st = Stats{}
}

// Perfect is the perfect memory system: every access hits with a fixed
// latency (Table 1, left portion).
type Perfect struct {
	Latency int
	st      Stats
}

// NewPerfect returns a perfect memory model with the given access latency.
func NewPerfect(latency int) *Perfect { return &Perfect{Latency: latency} }

// Access implements Model; it always hits.
func (p *Perfect) Access(addr uint32, write bool) (bool, int) {
	if write {
		p.st.Writes++
		p.st.WriteHits++
	} else {
		p.st.Reads++
		p.st.ReadHits++
	}
	return true, p.Latency
}

// Stats implements Model.
func (p *Perfect) Stats() Stats { return p.st }

// Reset implements Model.
func (p *Perfect) Reset() { p.st = Stats{} }

// CloneCold returns a fresh perfect model with the same latency and zero
// counters.
func (p *Perfect) CloneCold() Model { return NewPerfect(p.Latency) }

// CloneCold returns a cold private copy of m when the model supports it —
// a fresh instance with the same parameters, empty state and counters — so
// parallel simulations never share mutable tag state. Models that do not
// support cloning (custom implementations) are returned as-is; nil stays
// nil.
func CloneCold(m Model) Model {
	type cloner interface{ CloneCold() Model }
	if c, ok := m.(cloner); ok {
		return c.CloneCold()
	}
	return m
}
