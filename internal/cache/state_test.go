package cache

import (
	"encoding/json"
	"reflect"
	"testing"
)

// stateTestCache is a tiny 2-set / 2-way cache so the golden encoding stays
// reviewable.
func stateTestCache() *Cache {
	return New(Config{Name: "t", SizeBytes: 128, Assoc: 2, BlockBytes: 32,
		HitLatency: 1, MissLatency: 9})
}

// fillDeterministic drives a fixed access pattern with hits, misses and an
// LRU eviction.
func fillDeterministic(m Model) {
	for _, a := range []uint32{0x000, 0x040, 0x100, 0x000, 0x200, 0x040} {
		m.Access(a, false)
	}
	m.Access(0x80, true)
}

// TestCacheStateRoundTrip: CaptureState -> JSON -> RestoreState reproduces
// bit-identical hit/miss behavior and counters for every built-in model.
func TestCacheStateRoundTrip(t *testing.T) {
	lower := New(Config{Name: "l2", SizeBytes: 512, Assoc: 2, BlockBytes: 32,
		HitLatency: 4, MissLatency: 30})
	h, err := NewHierarchy(Config{Name: "l1", SizeBytes: 128, Assoc: 2, BlockBytes: 32,
		HitLatency: 1, MissLatency: 9}, lower)
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]struct {
		orig, fresh Model
	}{
		"cache":   {stateTestCache(), stateTestCache()},
		"perfect": {NewPerfect(2), NewPerfect(2)},
		"hierarchy": {h, func() Model {
			l2 := New(Config{Name: "l2", SizeBytes: 512, Assoc: 2, BlockBytes: 32,
				HitLatency: 4, MissLatency: 30})
			h2, _ := NewHierarchy(Config{Name: "l1", SizeBytes: 128, Assoc: 2, BlockBytes: 32,
				HitLatency: 1, MissLatency: 9}, l2)
			return h2
		}()},
	}
	for name, mm := range models {
		fillDeterministic(mm.orig)
		st, err := CaptureState(mm.orig)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded State
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		if err := RestoreState(mm.fresh, &decoded); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		if mm.fresh.Stats() != mm.orig.Stats() {
			t.Errorf("%s: restored counters differ: %+v vs %+v", name, mm.fresh.Stats(), mm.orig.Stats())
		}
		// Behavioral equivalence: the same subsequent accesses produce the
		// same hits and latencies (tag state and LRU clocks restored).
		for _, a := range []uint32{0x000, 0x040, 0x100, 0x200, 0x300, 0x80} {
			hitA, latA := mm.orig.Access(a, false)
			hitB, latB := mm.fresh.Access(a, false)
			if hitA != hitB || latA != latB {
				t.Errorf("%s: access %#x diverged after restore: %t/%d vs %t/%d",
					name, a, hitA, latA, hitB, latB)
			}
		}
		rec, err := CaptureState(mm.orig)
		if err != nil {
			t.Fatal(err)
		}
		rec2, err := CaptureState(mm.fresh)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Errorf("%s: post-restore states diverged", name)
		}
	}
}

// TestCacheStateGoldenEncoding pins the serialized cache-array form byte
// for byte: an accidental change breaks stored checkpoints and must fail
// loudly here.
func TestCacheStateGoldenEncoding(t *testing.T) {
	c := stateTestCache()
	fillDeterministic(c)
	st, err := CaptureState(c)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"kind":"cache","stats":{"Reads":6,"ReadHits":0,"Writes":1,"WriteHits":0},"name":"t","geometry":{"Name":"t","SizeBytes":128,"Assoc":2,"BlockBytes":32,"HitLatency":1,"MissLatency":9},"tags":[4,2,0,0],"valid":[true,true,false,false],"last_used":[7,6,0,0],"tick":7}`
	if string(data) != golden {
		t.Errorf("cache state encoding changed:\ngot  %s\nwant %s", data, golden)
	}
}

// TestCacheStateRejectsMismatches: wrong kinds and wrong geometry fail.
func TestCacheStateRejectsMismatches(t *testing.T) {
	c := stateTestCache()
	st, err := CaptureState(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreState(NewPerfect(1), st); err == nil {
		t.Error("cache state restored into perfect memory")
	}
	other := New(Config{Name: "t", SizeBytes: 256, Assoc: 2, BlockBytes: 32,
		HitLatency: 1, MissLatency: 9})
	if err := RestoreState(other, st); err == nil {
		t.Error("cache state restored into different geometry")
	}
	pst, err := CaptureState(NewPerfect(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreState(NewPerfect(1), pst); err == nil {
		t.Error("perfect state restored under a different latency")
	}
	type custom struct{ Model }
	if _, err := CaptureState(custom{c}); err == nil {
		t.Error("custom model captured without error")
	}
	if Serializable(custom{c}) {
		t.Error("custom model reported serializable")
	}
	if !Serializable(nil) || !Serializable(c) {
		t.Error("built-in models must report serializable")
	}
}
