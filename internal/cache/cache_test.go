package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 1024, Assoc: 2, BlockBytes: 64,
		HitLatency: 1, MissLatency: 20}
}

func TestValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := L1Config32K("il1").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "x", SizeBytes: 1000, Assoc: 2, BlockBytes: 64, MissLatency: 1},
		{Name: "x", SizeBytes: 1024, Assoc: 0, BlockBytes: 64, MissLatency: 1},
		{Name: "x", SizeBytes: 1024, Assoc: 2, BlockBytes: 60, MissLatency: 1},
		{Name: "x", SizeBytes: 1024, Assoc: 2, BlockBytes: 64, HitLatency: 5, MissLatency: 1},
		{Name: "x", SizeBytes: 1536, Assoc: 2, BlockBytes: 64, MissLatency: 1}, // 12 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPaperL1Geometry(t *testing.T) {
	c := L1Config32K("dl1")
	if c.SizeBytes != 32<<10 || c.Assoc != 8 || c.BlockBytes != 64 {
		t.Errorf("L1 geometry: %+v", c)
	}
	if c.Sets() != 64 {
		t.Errorf("sets = %d, want 64", c.Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	hit, lat := c.Access(0x1000, false)
	if hit || lat != 20 {
		t.Errorf("cold access: hit=%t lat=%d", hit, lat)
	}
	hit, lat = c.Access(0x1000, false)
	if !hit || lat != 1 {
		t.Errorf("second access: hit=%t lat=%d", hit, lat)
	}
	// Same block, different offset also hits.
	if hit, _ := c.Access(0x103C, false); !hit {
		t.Error("same-block access missed")
	}
	st := c.Stats()
	if st.Reads != 3 || st.ReadHits != 2 || st.Misses() != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(small()) // 8 sets, 2 ways
	setStride := uint32(8 * 64)
	a, b, x := uint32(0), setStride, 2*setStride // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(x, false) // evicts b (LRU)
	if hit, _ := c.Access(a, false); !hit {
		t.Error("a evicted despite being MRU")
	}
	if hit, _ := c.Access(b, false); hit {
		t.Error("b survived despite being LRU")
	}
}

func TestWriteAllocate(t *testing.T) {
	c := New(small())
	if hit, _ := c.Access(0x2000, true); hit {
		t.Error("cold write hit")
	}
	if hit, _ := c.Access(0x2000, false); !hit {
		t.Error("write did not allocate")
	}
	st := c.Stats()
	if st.Writes != 1 || st.WriteHits != 0 || st.ReadHits != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestMissRate(t *testing.T) {
	c := New(small())
	c.Access(0, false)
	c.Access(0, false)
	c.Access(64, false)
	c.Access(64, false)
	if mr := c.Stats().MissRate(); mr != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", mr)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestReset(t *testing.T) {
	c := New(small())
	c.Access(0x40, false)
	c.Reset()
	if hit, _ := c.Access(0x40, false); hit {
		t.Error("hit after Reset")
	}
	if c.Stats().Accesses() != 1 {
		t.Error("stats not reset")
	}
}

func TestPerfect(t *testing.T) {
	p := NewPerfect(1)
	for i := uint32(0); i < 100; i++ {
		hit, lat := p.Access(i*4096, i%2 == 0)
		if !hit || lat != 1 {
			t.Fatalf("perfect access missed: hit=%t lat=%d", hit, lat)
		}
	}
	st := p.Stats()
	if st.Misses() != 0 || st.Accesses() != 100 {
		t.Errorf("stats: %+v", st)
	}
	p.Reset()
	if p.Stats().Accesses() != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestWorkingSetFitsCache(t *testing.T) {
	// A working set smaller than the cache converges to a 100% hit rate
	// after the cold pass.
	c := New(L1Config32K("dl1"))
	for pass := 0; pass < 4; pass++ {
		for addr := uint32(0); addr < 16<<10; addr += 64 {
			c.Access(addr, false)
		}
	}
	st := c.Stats()
	wantCold := uint64((16 << 10) / 64)
	if st.Misses() != wantCold {
		t.Errorf("misses = %d, want %d (cold only)", st.Misses(), wantCold)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set that exceeds capacity with an LRU-hostile cyclic access
	// pattern misses every time.
	cfg := small() // 1 KB total
	c := New(cfg)
	for pass := 0; pass < 3; pass++ {
		for addr := uint32(0); addr < 2048; addr += 64 {
			c.Access(addr, false)
		}
	}
	if st := c.Stats(); st.Hits() != 0 {
		t.Errorf("cyclic thrash produced %d hits", st.Hits())
	}
}

// Property: the model never reports more hits than accesses, and hit latency
// is HitLatency / miss latency is MissLatency, for any access sequence.
func TestQuickLatencyContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		c := New(small())
		for i := 0; i < 500; i++ {
			addr := uint32(rng.Intn(1 << 14))
			hit, lat := c.Access(addr, rng.Intn(2) == 0)
			if hit && lat != c.cfg.HitLatency {
				return false
			}
			if !hit && lat != c.cfg.MissLatency {
				return false
			}
		}
		st := c.Stats()
		return st.Hits() <= st.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a direct-mapped cache of S sets holds exactly the last block per
// set (reference model comparison).
func TestQuickDirectMappedMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		cfg := Config{Name: "dm", SizeBytes: 512, Assoc: 1, BlockBytes: 32,
			HitLatency: 1, MissLatency: 10}
		c := New(cfg)
		model := map[uint32]uint32{} // set -> tag
		for i := 0; i < 400; i++ {
			addr := uint32(rng.Intn(1 << 13))
			set := (addr / 32) % 16
			tag := addr / 32
			wantHit := model[set] == tag && model[set] != 0
			hit, _ := c.Access(addr, false)
			if hit != wantHit && model[set] != 0 {
				return false
			}
			model[set] = tag
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
