package cache

import "fmt"

// State kinds, the Kind discriminator of a serialized cache model.
const (
	StateKindCache     = "cache"     // set-associative Cache: tag arrays + counters
	StateKindPerfect   = "perfect"   // Perfect memory: counters only
	StateKindHierarchy = "hierarchy" // two-level Hierarchy: L1 + lower level
)

// State is the self-describing serialized form of a built-in cache model's
// mutable state: tag arrays, LRU clocks and counters, plus enough geometry
// to reject a checkpoint taken under a different configuration. Capture it
// with CaptureState and reinstall it with RestoreState; the round trip is
// lossless, so a restored model produces bit-identical hit/miss sequences.
type State struct {
	Kind string `json:"kind"`
	St   Stats  `json:"stats"`

	// Set-associative (StateKindCache) fields. The geometry (and for
	// StateKindPerfect the Latency) guards the restore: a checkpoint taken
	// under a differently parameterized memory system fails loudly instead
	// of resuming a subtly different machine.
	Name     string   `json:"name,omitempty"`
	Geometry Config   `json:"geometry,omitempty"`
	Latency  int      `json:"latency,omitempty"`
	Tags     []uint32 `json:"tags,omitempty"`
	Valid    []bool   `json:"valid,omitempty"`
	LastUsed []uint64 `json:"last_used,omitempty"`
	Tick     uint64   `json:"tick,omitempty"`

	// Hierarchy fields: the L1's state plus the lower level's.
	L1    *State `json:"l1,omitempty"`
	Lower *State `json:"lower,omitempty"`
}

// Serializable reports whether CaptureState supports m (a built-in model
// tree, or nil) without paying for a capture.
func Serializable(m Model) bool {
	switch c := m.(type) {
	case nil, *Cache, *Perfect:
		return true
	case *Hierarchy:
		return Serializable(c.lower)
	default:
		return false
	}
}

// CaptureState serializes the mutable state of a built-in model (Cache,
// Perfect or Hierarchy; nil maps to nil). Custom Model implementations have
// no generic serialization and make the capture fail — the caller decides
// whether checkpointing without them is acceptable.
func CaptureState(m Model) (*State, error) {
	switch c := m.(type) {
	case nil:
		return nil, nil
	case *Cache:
		return &State{
			Kind: StateKindCache, St: c.st,
			Name: c.cfg.Name, Geometry: c.cfg,
			Tags: cpSlice(c.tags), Valid: cpSlice(c.valid), LastUsed: cpSlice(c.lastUsed),
			Tick: c.tick,
		}, nil
	case *Perfect:
		return &State{Kind: StateKindPerfect, St: c.st, Latency: c.Latency}, nil
	case *Hierarchy:
		l1, err := CaptureState(c.l1)
		if err != nil {
			return nil, err
		}
		lower, err := CaptureState(c.lower)
		if err != nil {
			return nil, err
		}
		return &State{Kind: StateKindHierarchy, L1: l1, Lower: lower}, nil
	default:
		return nil, fmt.Errorf("cache: model %T has no serializable state (checkpointing needs the built-in models)", m)
	}
}

// RestoreState reinstalls state captured by CaptureState into a model of the
// same kind and geometry. Mismatches (different model kind, different
// geometry) are errors; a leaf model is left unchanged on error, and a
// failed hierarchy restore leaves the model unusable for resumption (the
// caller discards the engine either way).
func RestoreState(m Model, s *State) error {
	if s == nil {
		if m == nil {
			return nil
		}
		return fmt.Errorf("cache: no state for model %T", m)
	}
	switch c := m.(type) {
	case *Cache:
		if s.Kind != StateKindCache {
			return fmt.Errorf("cache: state kind %q cannot restore into a set-associative cache", s.Kind)
		}
		if s.Geometry != c.cfg {
			return fmt.Errorf("cache %s: state geometry %+v, cache is %+v", c.cfg.Name, s.Geometry, c.cfg)
		}
		n := c.cfg.Sets() * c.cfg.Assoc
		if len(s.Tags) != n || len(s.Valid) != n || len(s.LastUsed) != n {
			return fmt.Errorf("cache %s: state arrays %d/%d/%d, want %d entries",
				c.cfg.Name, len(s.Tags), len(s.Valid), len(s.LastUsed), n)
		}
		copy(c.tags, s.Tags)
		copy(c.valid, s.Valid)
		copy(c.lastUsed, s.LastUsed)
		c.tick = s.Tick
		c.st = s.St
		return nil
	case *Perfect:
		if s.Kind != StateKindPerfect {
			return fmt.Errorf("cache: state kind %q cannot restore into perfect memory", s.Kind)
		}
		if s.Latency != c.Latency {
			return fmt.Errorf("cache: state latency %d, perfect memory has %d", s.Latency, c.Latency)
		}
		c.st = s.St
		return nil
	case *Hierarchy:
		if s.Kind != StateKindHierarchy {
			return fmt.Errorf("cache: state kind %q cannot restore into a hierarchy", s.Kind)
		}
		if err := RestoreState(c.l1, s.L1); err != nil {
			return err
		}
		return RestoreState(c.lower, s.Lower)
	default:
		return fmt.Errorf("cache: model %T has no serializable state", m)
	}
}

// cpSlice returns a copy of s.
func cpSlice[T any](s []T) []T {
	out := make([]T, len(s))
	copy(out, s)
	return out
}
