package cache

// Hierarchy chains an L1 in front of a lower level (an L2 cache, a shared
// L2, or perfect memory). This extends the paper's single-level memory
// system toward its multi-core future work: private L1s backed by a shared
// L2 give real inter-core cache interference. An access that misses in the
// L1 pays the L1 lookup plus the lower level's access latency; fills are
// write-allocate at both levels.
type Hierarchy struct {
	l1    *Cache
	lower Model
}

// NewHierarchy builds a two-level hierarchy. l1cfg.MissLatency is unused
// (the lower level's latency governs misses); lower may be shared between
// several hierarchies.
func NewHierarchy(l1cfg Config, lower Model) (*Hierarchy, error) {
	if err := l1cfg.Validate(); err != nil {
		return nil, err
	}
	return &Hierarchy{l1: New(l1cfg), lower: lower}, nil
}

// Access implements Model: L1 hit latency on a hit, L1 lookup + lower-level
// latency on a miss.
func (h *Hierarchy) Access(addr uint32, write bool) (bool, int) {
	if hit, lat := h.l1.Access(addr, write); hit {
		return true, lat
	}
	_, lowerLat := h.lower.Access(addr, write)
	return false, h.l1.cfg.HitLatency + lowerLat
}

// Stats implements Model with the L1's counters (what the engine reports as
// its level-1 statistics).
func (h *Hierarchy) Stats() Stats { return h.l1.Stats() }

// LowerStats returns the lower level's counters. For a shared lower level
// these aggregate all cores.
func (h *Hierarchy) LowerStats() Stats { return h.lower.Stats() }

// Reset implements Model. The lower level is reset too; when it is shared,
// reset the cluster through one hierarchy only.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.lower.Reset()
}

// L1 exposes the upper level (for geometry queries).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// CloneCold returns a fully private cold copy: fresh L1 and a cold clone
// of the lower level. Cloning is for isolating independent parallel
// simulations (sweep points), where sharing the lower level would race and
// cross-pollute supposedly independent design points; deliberate sharing
// (the multicore shared-L2 interference channel) never goes through
// CloneCold — the cluster hands each core the same Model instance
// directly. A custom lower level without CloneCold support stays shared.
func (h *Hierarchy) CloneCold() Model {
	return &Hierarchy{l1: New(h.l1.cfg), lower: CloneCold(h.lower)}
}
