package sweepd

import (
	"sync"
	"testing"
)

// TestCkptStoreBudget exercises the scheduler's checkpoint retention
// policy: latest-per-point replacement, least-recently-updated eviction
// under the byte budget, release on completion, and the oversized-shipment
// degenerate case.
func TestCkptStoreBudget(t *testing.T) {
	s := NewCheckpointStore(100)

	s.Put(1, make([]byte, 40))
	s.Put(2, make([]byte, 40))
	if s.TotalBytes() != 80 {
		t.Fatalf("total = %d, want 80", s.TotalBytes())
	}

	// Replacement re-accounts rather than double-counting.
	s.Put(1, make([]byte, 50))
	if s.TotalBytes() != 90 || len(s.Get(1)) != 50 {
		t.Fatalf("after replace: total=%d len(1)=%d, want 90/50", s.TotalBytes(), len(s.Get(1)))
	}

	// A third point does not fit: the least-recently-updated (point 2,
	// untouched since its shipment) is evicted, not the freshest.
	s.Put(3, make([]byte, 40))
	if s.Get(2) != nil {
		t.Error("LRU point 2 survived over-budget put")
	}
	if len(s.Get(1)) != 50 || len(s.Get(3)) != 40 {
		t.Errorf("retained set wrong: len(1)=%d len(3)=%d", len(s.Get(1)), len(s.Get(3)))
	}
	if s.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", s.Dropped())
	}

	// Result landed: bytes come back.
	s.Drop(1)
	if s.TotalBytes() != 40 {
		t.Errorf("total after drop = %d, want 40", s.TotalBytes())
	}

	// A shipment that could never fit is rejected up front: other points'
	// resume state (and the shipping point's own older checkpoint) survive
	// untouched.
	s.Put(3, make([]byte, 30))
	s.Put(4, make([]byte, 200))
	if s.Get(4) != nil {
		t.Error("oversized checkpoint retained past the budget")
	}
	if len(s.Get(3)) != 30 {
		t.Error("an oversized shipment must not harm other points' retained checkpoints")
	}
	if s.TotalBytes() != 30 {
		t.Errorf("total = %d, want 30", s.TotalBytes())
	}
	// Its own older resume state survives an oversized update too.
	s.Put(3, make([]byte, 500))
	if len(s.Get(3)) != 30 {
		t.Error("oversized update evicted the point's own still-valid older checkpoint")
	}

	// Unlimited budget (negative) never evicts.
	u := NewCheckpointStore(-1)
	u.Put(1, make([]byte, 1<<20))
	u.Put(2, make([]byte, 1<<20))
	if u.Get(1) == nil || u.Get(2) == nil || u.Dropped() != 0 {
		t.Error("negative budget must disable the cap")
	}
}

// TestCkptStoreConcurrentJobs drives two per-job stores from concurrent
// checkpoint-shipping goroutines, the shape the job platform creates when
// several admitted jobs churn checkpoints simultaneously: each store must
// enforce only its own budget (churn in one job never evicts the other
// job's resume state), stay internally consistent under -race, and evict
// in least-recently-updated order within its own job.
func TestCkptStoreConcurrentJobs(t *testing.T) {
	const (
		points   = 16
		rounds   = 200
		ckptSize = 64
	)
	// Job A's budget holds every point; job B's holds only half of them.
	jobA := NewCheckpointStore(points * ckptSize)
	jobB := NewCheckpointStore(points * ckptSize / 2)

	var wg sync.WaitGroup
	for _, s := range []*CheckpointStore{jobA, jobB} {
		// Several worker connections ship checkpoints into one job's store
		// concurrently (the coordinator's readLoops), while the scheduler
		// drops and re-puts as results land and groups requeue.
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(s *CheckpointStore, g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					idx := (g*rounds + r) % points
					s.Put(idx, make([]byte, ckptSize))
					if r%7 == 0 {
						s.Drop((idx + 1) % points)
					}
					_ = s.Get(idx)
				}
			}(s, g)
		}
	}
	wg.Wait()

	if jobA.TotalBytes() > points*ckptSize {
		t.Errorf("job A exceeded its budget: %d > %d", jobA.TotalBytes(), points*ckptSize)
	}
	if jobB.TotalBytes() > points*ckptSize/2 {
		t.Errorf("job B exceeded its budget: %d > %d", jobB.TotalBytes(), points*ckptSize/2)
	}
	// Budget isolation: job A fits all its points, so nothing in A was ever
	// evicted for B's churn (or anything else) — only explicit Drops remove
	// A's state.
	if jobA.Dropped() != 0 {
		t.Errorf("job A dropped %d checkpoints despite a sufficient budget", jobA.Dropped())
	}
	// Job B over-committed by construction and must have evicted.
	if jobB.Dropped() == 0 {
		t.Error("job B never evicted despite a half-size budget")
	}

	// Eviction ordering under deterministic churn: refresh even points,
	// then overflow — the stale odd points must go first.
	s := NewCheckpointStore(8 * ckptSize)
	for i := 0; i < 8; i++ {
		s.Put(i, make([]byte, ckptSize))
	}
	for i := 0; i < 8; i += 2 {
		s.Put(i, make([]byte, ckptSize)) // refresh evens: odds become LRU
	}
	for i := 8; i < 11; i++ {
		s.Put(i, make([]byte, ckptSize)) // three evictions needed
	}
	for _, odd := range []int{1, 3, 5} {
		if s.Get(odd) != nil {
			t.Errorf("stale point %d survived eviction ahead of fresher state", odd)
		}
	}
	for _, keep := range []int{0, 2, 4, 6, 7, 8, 9, 10} {
		if s.Get(keep) == nil {
			t.Errorf("point %d evicted out of least-recently-updated order", keep)
		}
	}
	if s.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", s.Dropped())
	}
}
