package sweepd

import "testing"

// TestCkptStoreBudget exercises the scheduler's checkpoint retention
// policy: latest-per-point replacement, least-recently-updated eviction
// under the byte budget, release on completion, and the oversized-shipment
// degenerate case.
func TestCkptStoreBudget(t *testing.T) {
	s := newCkptStore(100)

	s.put(1, make([]byte, 40))
	s.put(2, make([]byte, 40))
	if s.total != 80 {
		t.Fatalf("total = %d, want 80", s.total)
	}

	// Replacement re-accounts rather than double-counting.
	s.put(1, make([]byte, 50))
	if s.total != 90 || len(s.get(1)) != 50 {
		t.Fatalf("after replace: total=%d len(1)=%d, want 90/50", s.total, len(s.get(1)))
	}

	// A third point does not fit: the least-recently-updated (point 2,
	// untouched since its shipment) is evicted, not the freshest.
	s.put(3, make([]byte, 40))
	if s.get(2) != nil {
		t.Error("LRU point 2 survived over-budget put")
	}
	if len(s.get(1)) != 50 || len(s.get(3)) != 40 {
		t.Errorf("retained set wrong: len(1)=%d len(3)=%d", len(s.get(1)), len(s.get(3)))
	}
	if s.dropped != 1 {
		t.Errorf("dropped = %d, want 1", s.dropped)
	}

	// Result landed: bytes come back.
	s.drop(1)
	if s.total != 40 {
		t.Errorf("total after drop = %d, want 40", s.total)
	}

	// A shipment that could never fit is rejected up front: other points'
	// resume state (and the shipping point's own older checkpoint) survive
	// untouched.
	s.put(3, make([]byte, 30))
	s.put(4, make([]byte, 200))
	if s.get(4) != nil {
		t.Error("oversized checkpoint retained past the budget")
	}
	if len(s.get(3)) != 30 {
		t.Error("an oversized shipment must not harm other points' retained checkpoints")
	}
	if s.total != 30 {
		t.Errorf("total = %d, want 30", s.total)
	}
	// Its own older resume state survives an oversized update too.
	s.put(3, make([]byte, 500))
	if len(s.get(3)) != 30 {
		t.Error("oversized update evicted the point's own still-valid older checkpoint")
	}

	// Unlimited budget (negative) never evicts.
	u := newCkptStore(-1)
	u.put(1, make([]byte, 1<<20))
	u.put(2, make([]byte, 1<<20))
	if u.get(1) == nil || u.get(2) == nil || u.dropped != 0 {
		t.Error("negative budget must disable the cap")
	}
}
