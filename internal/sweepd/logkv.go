package sweepd

import (
	"fmt"
	"strings"
)

// KV renders a structured service log line: the event name followed by
// key=value fields, e.g.
//
//	KV("sweepd.worker_registered", "worker", name, "addr", addr)
//	  -> `sweepd.worker_registered worker=w1 addr=127.0.0.1:42`
//
// Values whose rendering contains whitespace (error messages, names with
// spaces) are quoted so every line stays machine-splittable on spaces —
// grep-able service logs without changing the Logf(format, args...)
// signature the coordinator, workers and the job platform already expose:
// call sites pass the rendered line through as logf("%s", KV(...)).
// A trailing odd key is rendered as key=? rather than dropped, so a buggy
// call site still logs its event.
func KV(event string, kvs ...any) string {
	var b strings.Builder
	b.WriteString(event)
	for i := 0; i < len(kvs); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kvs[i])
		b.WriteByte('=')
		if i+1 >= len(kvs) {
			b.WriteByte('?')
			continue
		}
		v := fmt.Sprintf("%v", kvs[i+1])
		if strings.ContainsAny(v, " \t\n\"") {
			v = fmt.Sprintf("%q", v)
		}
		b.WriteString(v)
	}
	return b.String()
}
