package sweepd

import "repro/internal/obs"

// KV renders a structured service log line: the event name followed by
// key=value fields, e.g.
//
//	KV("sweepd.worker_registered", "worker", name, "addr", addr)
//	  -> `sweepd.worker_registered worker=w1 addr=127.0.0.1:42`
//
// The rendering lives in internal/obs so obs.Logger.Logf can parse the
// same format back into structured attributes (obs.ParseKV); this alias
// keeps the coordinator's and workers' many call sites short. See obs.KV
// for the quoting rules.
func KV(event string, kvs ...any) string { return obs.KV(event, kvs...) }
