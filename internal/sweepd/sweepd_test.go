package sweepd_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

const testInstrs = 6000

// testJob builds a 4-point job with exactly two distinct trace keys: RB
// size feeds the wrong-path block length (RB+IFQ) and therefore the key,
// LSQ size is engine-only.
func testJob(t *testing.T) *sweepd.Job {
	t.Helper()
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for _, rb := range []int{8, 16} {
		for _, lsq := range []int{4, 8} {
			cfg := core.DefaultConfig()
			cfg.RBSize = rb
			cfg.LSQSize = lsq
			pts = append(pts, sweep.Point{Name: nameFor(rb, lsq), Config: cfg})
		}
	}
	return &sweepd.Job{Profile: p, Instructions: testInstrs, Points: pts}
}

func nameFor(rb, lsq int) string {
	return "rb=" + itoa(rb) + "/lsq=" + itoa(lsq)
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

// reference runs the job through the plain sweep runner — the behavior the
// scheduler must reproduce.
func reference(t *testing.T, job *sweepd.Job) []sweep.Result {
	t.Helper()
	r := sweep.Runner{Workload: job.Profile, Instructions: job.Instructions,
		Traces: tracecache.New(tracecache.Config{})}
	res, err := r.Run(context.Background(), job.Points)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func loopbackWorkers(n int) ([]sweepd.Worker, []*sweepd.LoopbackWorker) {
	ws := make([]sweepd.Worker, n)
	lws := make([]*sweepd.LoopbackWorker, n)
	for i := range ws {
		lw := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{})
		ws[i], lws[i] = lw, lw
	}
	return ws, lws
}

func TestGroupsShardByTraceKey(t *testing.T) {
	job := testJob(t)
	gs := job.Groups()
	if len(gs) != 2 {
		t.Fatalf("got %d groups, want 2 (one per distinct trace key)", len(gs))
	}
	if !reflect.DeepEqual(gs[0].Indices, []int{0, 1}) || !reflect.DeepEqual(gs[1].Indices, []int{2, 3}) {
		t.Fatalf("group indices = %v / %v, want [0 1] / [2 3]", gs[0].Indices, gs[1].Indices)
	}
	if gs[0].KeyID == gs[1].KeyID || gs[0].KeyID == "" {
		t.Fatalf("key IDs not distinct content addresses: %q vs %q", gs[0].KeyID, gs[1].KeyID)
	}
}

// TestRunMatchesDirectRunner: the scheduler over a two-worker loopback pool
// returns exactly what the plain sweep machinery returns.
func TestRunMatchesDirectRunner(t *testing.T) {
	job := testJob(t)
	want := reference(t, job)
	ws, _ := loopbackWorkers(2)
	got, err := sweepd.Run(context.Background(), job, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scheduler results differ from the direct runner's")
	}
}

// shuffleWorker defers every emission until its group finishes, then emits
// in reverse completion order — a worst case for result ordering.
type shuffleWorker struct{ inner sweepd.Worker }

func (s shuffleWorker) RunGroup(ctx context.Context, job *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
	var buf []sweepd.PointResult
	err := s.inner.RunGroup(ctx, job, gr, func(pr sweepd.PointResult) {
		buf = append(buf, pr)
	})
	for i := len(buf) - 1; i >= 0; i-- {
		emit(buf[i])
	}
	return err
}

// TestResultOrderWithShuffledCompletion: results come back in input point
// order no matter what order shards and workers complete in.
func TestResultOrderWithShuffledCompletion(t *testing.T) {
	job := testJob(t)
	want := reference(t, job)
	ws, _ := loopbackWorkers(2)
	shuffled := make([]sweepd.Worker, len(ws))
	for i, w := range ws {
		shuffled[i] = shuffleWorker{inner: w}
	}
	var mu sync.Mutex
	var emitted []int
	got, err := sweepd.Run(context.Background(), job, shuffled, func(pr sweepd.PointResult, done, total int) {
		mu.Lock()
		emitted = append(emitted, pr.Index)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shuffled completion changed the returned results or their order")
	}
	// The emission stream really was out of point order (reversed within
	// each group), proving the returned ordering is the scheduler's doing.
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) != len(job.Points) {
		t.Fatalf("emitted %d results, want %d", len(emitted), len(job.Points))
	}
	inOrder := true
	for i := 1; i < len(emitted); i++ {
		if emitted[i] < emitted[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("emission order was monotonic; the shuffle worker should have reversed it")
	}
}

// workerFunc adapts a function to the Worker interface.
type workerFunc func(ctx context.Context, job *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error

func (f workerFunc) RunGroup(ctx context.Context, job *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
	return f(ctx, job, gr, emit)
}

// TestWorkerKillRequeues kills a loopback worker after its first emitted
// point; the scheduler must requeue the group's remainder on the surviving
// worker and still return complete, correct, point-ordered results.
func TestWorkerKillRequeues(t *testing.T) {
	job := testJob(t) // 2 groups x 2 points
	want := reference(t, job)

	killerLW := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1})
	backupLW := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1})
	killerGot := make(chan struct{})
	var gotOnce sync.Once
	var killerEmitted, backupRan sync.Map

	killer := workerFunc(func(ctx context.Context, j *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
		gotOnce.Do(func() { close(killerGot) })
		n := 0
		return killerLW.RunGroup(ctx, j, gr, func(pr sweepd.PointResult) {
			emit(pr)
			killerEmitted.Store(pr.Index, true)
			if n++; n == 1 {
				killerLW.Kill() // die mid-group, after one streamed result
			}
		})
	})
	backup := workerFunc(func(ctx context.Context, j *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
		// Hold back until the killer owns a group, so the kill-and-requeue
		// path runs deterministically rather than depending on who wins the
		// race for the queue.
		select {
		case <-killerGot:
		case <-ctx.Done():
			return ctx.Err()
		}
		for _, i := range gr.Indices {
			backupRan.Store(i, true)
		}
		return backupLW.RunGroup(ctx, j, gr, emit)
	})

	got, err := sweepd.Run(context.Background(), job, []sweepd.Worker{killer, backup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after a mid-job worker kill differ from the reference")
	}
	// The killer died after one point, so the backup must have run at least
	// one point of the killer's group (the requeued remainder) on top of
	// its own group.
	killed := 0
	killerEmitted.Range(func(any, any) bool { killed++; return true })
	backed := 0
	backupRan.Range(func(any, any) bool { backed++; return true })
	if killed != 1 {
		t.Fatalf("killer emitted %d points before dying, want exactly 1", killed)
	}
	if backed != len(job.Points)-1 {
		t.Fatalf("backup ran %d points, want %d (its group plus the requeued remainder)",
			backed, len(job.Points)-1)
	}
}

// TestWorkerKillResumesFromCheckpoint is the requeue-resume acceptance: a
// worker that has shipped checkpoints for its in-flight points dies
// mid-group, and the survivor resumes those points from the shipped cycle
// instead of cycle 0 — asserted through the ResumedCycles counter — while
// the final results stay byte-identical to the reference (resumed engines
// are deterministic).
func TestWorkerKillResumesFromCheckpoint(t *testing.T) {
	// Two single-point groups (RB size feeds the trace key) with a budget
	// long enough to cross several checkpoint boundaries.
	const instrs = 60_000
	const every = 4096
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for _, rb := range []int{8, 16} {
		cfg := core.DefaultConfig()
		cfg.RBSize = rb
		pts = append(pts, sweep.Point{Name: "rb=" + itoa(rb), Config: cfg})
	}
	job := &sweepd.Job{Profile: p, Instructions: instrs, Points: pts}
	r := sweep.Runner{Workload: job.Profile, Instructions: job.Instructions,
		Traces: tracecache.New(tracecache.Config{})}
	want, err := r.Run(context.Background(), job.Points)
	if err != nil {
		t.Fatal(err)
	}

	killerLW := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1, CheckpointEvery: every})
	backupLW := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1, CheckpointEvery: every})
	killerGot := make(chan struct{})
	var gotOnce sync.Once

	// The killer dies right after shipping its third checkpoint: its group
	// is provably mid-run (the point never completed on it) with resume
	// state stored at the scheduler.
	var shipments int32
	killer := workerFunc(func(ctx context.Context, j *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
		gotOnce.Do(func() { close(killerGot) })
		inner := gr
		inner.OnCheckpoint = func(index int, data []byte) {
			gr.OnCheckpoint(index, data)
			if atomic.AddInt32(&shipments, 1) == 3 {
				killerLW.Kill()
			}
		}
		return killerLW.RunGroup(ctx, j, inner, emit)
	})
	backup := workerFunc(func(ctx context.Context, j *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
		// Hold back until the killer owns a group, so the kill-and-requeue
		// path runs deterministically rather than depending on who wins the
		// race for the queue.
		select {
		case <-killerGot:
		case <-ctx.Done():
			return ctx.Err()
		}
		return backupLW.RunGroup(ctx, j, gr, emit)
	})

	got, err := sweepd.Run(context.Background(), job, []sweepd.Worker{killer, backup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after a checkpoint-resumed requeue differ from the reference")
	}
	if rc := backupLW.ResumedCycles(); rc < every {
		t.Errorf("backup resumed %d cycles, want >= %d (requeued group must not restart from cycle 0)", rc, every)
	}
}

// TestCheckpointBudgetDegradesResume pins the checkpoint-GC contract: with
// a budget too small to retain any shipment, a killed worker's group still
// requeues and completes with byte-identical results — the survivor just
// restarts its points from cycle 0 (ResumedCycles stays zero) instead of
// resuming mid-run. Bounding retained checkpoint bytes may cost re-simulation,
// never correctness.
func TestCheckpointBudgetDegradesResume(t *testing.T) {
	const instrs = 60_000
	const every = 4096
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for _, rb := range []int{8, 16} {
		cfg := core.DefaultConfig()
		cfg.RBSize = rb
		pts = append(pts, sweep.Point{Name: "rb=" + itoa(rb), Config: cfg})
	}
	job := &sweepd.Job{Profile: p, Instructions: instrs, Points: pts,
		CheckpointBudget: 1} // nothing fits: every shipment is dropped
	r := sweep.Runner{Workload: job.Profile, Instructions: job.Instructions,
		Traces: tracecache.New(tracecache.Config{})}
	want, err := r.Run(context.Background(), job.Points)
	if err != nil {
		t.Fatal(err)
	}

	killerLW := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1, CheckpointEvery: every})
	backupLW := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1, CheckpointEvery: every})
	killerGot := make(chan struct{})
	var gotOnce sync.Once
	var shipments int32
	killer := workerFunc(func(ctx context.Context, j *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
		gotOnce.Do(func() { close(killerGot) })
		inner := gr
		inner.OnCheckpoint = func(index int, data []byte) {
			gr.OnCheckpoint(index, data)
			if atomic.AddInt32(&shipments, 1) == 3 {
				killerLW.Kill()
			}
		}
		return killerLW.RunGroup(ctx, j, inner, emit)
	})
	backup := workerFunc(func(ctx context.Context, j *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
		select {
		case <-killerGot:
		case <-ctx.Done():
			return ctx.Err()
		}
		if len(gr.Checkpoints) != 0 {
			t.Errorf("assignment carries %d checkpoints despite a 1-byte budget", len(gr.Checkpoints))
		}
		return backupLW.RunGroup(ctx, j, gr, emit)
	})

	got, err := sweepd.Run(context.Background(), job, []sweepd.Worker{killer, backup}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after a budget-degraded requeue differ from the reference")
	}
	if rc := backupLW.ResumedCycles(); rc != 0 {
		t.Errorf("backup resumed %d cycles; a 1-byte budget must retain no resume state", rc)
	}
}

// TestKeyGroupAffinity: with one private cache per worker (distinct hosts),
// a 4-point/2-key job costs exactly 2 generations across the cluster —
// every host generates its assigned groups' traces once.
func TestKeyGroupAffinity(t *testing.T) {
	job := testJob(t)
	ws, lws := loopbackWorkers(2)
	if _, err := sweepd.Run(context.Background(), job, ws, nil); err != nil {
		t.Fatal(err)
	}
	var gens uint64
	for _, lw := range lws {
		gens += lw.Traces().Stats().Generations
	}
	if gens != 2 {
		t.Fatalf("cluster performed %d trace generations for 2 distinct keys, want exactly 2", gens)
	}
}

// TestEmitProgressCounters: emit sees done counting 1..total with a fixed
// total — the coordinator-side progress stream.
func TestEmitProgressCounters(t *testing.T) {
	job := testJob(t)
	ws, _ := loopbackWorkers(2)
	var mu sync.Mutex
	var dones []int
	_, err := sweepd.Run(context.Background(), job, ws, func(pr sweepd.PointResult, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != len(job.Points) {
			t.Errorf("total = %d, want %d", total, len(job.Points))
		}
		dones = append(dones, done)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	if !reflect.DeepEqual(dones, want) {
		t.Fatalf("done sequence = %v, want %v", dones, want)
	}
}

func TestRunRejectsEmptyInputs(t *testing.T) {
	job := testJob(t)
	ws, _ := loopbackWorkers(1)
	if _, err := sweepd.Run(context.Background(), &sweepd.Job{Profile: job.Profile}, ws, nil); err == nil {
		t.Error("empty point list accepted")
	}
	if _, err := sweepd.Run(context.Background(), job, nil, nil); err == nil {
		t.Error("empty worker pool accepted")
	}
}

// TestAllWorkersDeadFails: when the last live worker dies mid-job the run
// fails with the cause instead of hanging.
func TestAllWorkersDeadFails(t *testing.T) {
	job := testJob(t)
	boom := errors.New("host on fire")
	dead := workerFunc(func(context.Context, *sweepd.Job, sweepd.GroupRun, func(sweepd.PointResult)) error {
		return boom
	})
	done := make(chan struct{})
	var err error
	go func() {
		_, err = sweepd.Run(context.Background(), job, []sweepd.Worker{dead, dead}, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after every worker died")
	}
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the worker failure cause", err)
	}
}

// TestRunCancellation: cancelling the context aborts in-flight groups and
// returns ctx.Err once the pool drains.
func TestRunCancellation(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for _, rb := range []int{8, 16, 32, 64} {
		cfg := core.DefaultConfig()
		cfg.RBSize = rb
		pts = append(pts, sweep.Point{Name: "rb", Config: cfg})
	}
	// An effectively unbounded budget keeps every engine running until the
	// cancellation lands.
	job := &sweepd.Job{Profile: p, Instructions: 1 << 62, Points: pts}
	ws, _ := loopbackWorkers(2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = sweepd.Run(ctx, job, ws, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not drain")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
}
