package sweepd_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// cluster spins up a coordinator and n workers on a real localhost TCP
// listener, returning the address and the per-worker caches.
func cluster(t *testing.T, n int, coordTraces *tracecache.Cache) (string, []*tracecache.Cache) {
	t.Helper()
	coord := sweepd.NewCoordinator()
	coord.Traces = coordTraces
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	wctx, stop := context.WithCancel(context.Background())
	t.Cleanup(stop)
	caches := make([]*tracecache.Cache, n)
	for i := range caches {
		caches[i] = tracecache.New(tracecache.Config{})
		go sweepd.Work(wctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
			Name:   "w" + itoa(i+1),
			Traces: caches[i],
		})
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", coord.WorkerCount(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return addr, caches
}

// TestRemoteEndToEnd is the service's acceptance shape at the sweepd level:
// a 4-point / 2-key job over a real TCP coordinator and two workers returns
// results byte-identical to the local path, with exactly 2 trace
// generations across the cluster.
func TestRemoteEndToEnd(t *testing.T) {
	addr, caches := cluster(t, 2, nil)
	job := testJob(t)
	want := reference(t, job)

	got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("remote results are not byte-identical to local results\nremote: %.300s\nlocal:  %.300s",
			gotJSON, wantJSON)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("remote results differ structurally from local results")
	}
	var gens uint64
	for _, c := range caches {
		gens += c.Stats().Generations
	}
	if gens != 2 {
		t.Fatalf("cluster performed %d trace generations for 2 distinct keys, want exactly 2", gens)
	}
}

// TestRemoteProgressForwarded: the client observer receives one callback
// per completed point with the coordinator-side Done/Total counters and
// exactly one Final.
func TestRemoteProgressForwarded(t *testing.T) {
	addr, _ := cluster(t, 2, nil)
	job := testJob(t)
	type ev struct{ done, total int }
	ch := make(chan ev, len(job.Points))
	finals := 0
	obs := core.ObserverFunc(func(p core.Progress) {
		ch <- ev{p.Done, p.Total}
		if p.Final {
			finals++
		}
	})
	if _, err := sweepd.RunRemote(context.Background(), addr, job, obs); err != nil {
		t.Fatal(err)
	}
	close(ch)
	var dones []int
	for e := range ch {
		if e.total != len(job.Points) {
			t.Errorf("total = %d, want %d", e.total, len(job.Points))
		}
		dones = append(dones, e.done)
	}
	if !reflect.DeepEqual(dones, []int{1, 2, 3, 4}) {
		t.Errorf("done sequence = %v, want [1 2 3 4]", dones)
	}
	if finals != 1 {
		t.Errorf("final callbacks = %d, want exactly 1", finals)
	}
}

// TestRemoteTraceShipping: a coordinator whose cache already holds a
// group's trace ships the container with the assignment, so the worker
// seeds instead of generating.
func TestRemoteTraceShipping(t *testing.T) {
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	warm := tracecache.New(tracecache.Config{})
	cfg := core.DefaultConfig()
	if _, err := warm.Get(context.Background(), p, cfg.TraceConfig(), testInstrs); err != nil {
		t.Fatal(err)
	}

	addr, caches := cluster(t, 1, warm)
	job := &sweepd.Job{Profile: p, Instructions: testInstrs, Points: []sweep.Point{
		{Name: "a", Config: cfg}, {Name: "b", Config: cfg},
	}}
	got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, job)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shipped-trace results differ from locally generated ones")
	}
	st := caches[0].Stats()
	if st.Generations != 0 || st.Seeds != 1 {
		t.Fatalf("worker stats = %+v; want 0 generations and 1 seed (trace was shipped)", st)
	}
}

// TestRemoteNoWorkers: submitting to a workerless coordinator fails
// cleanly instead of queueing forever.
func TestRemoteNoWorkers(t *testing.T) {
	coord := sweepd.NewCoordinator()
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, err = sweepd.RunRemote(context.Background(), addr, testJob(t), nil)
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("err = %v, want a no-workers failure", err)
	}
}

// TestRemoteRejectsUnserializablePoints: custom cache models cannot cross
// the network; the client fails fast before dialing (the address here is
// unreachable on purpose).
func TestRemoteRejectsUnserializablePoints(t *testing.T) {
	job := testJob(t)
	job.Points[1].Config.DCache = customModel{}
	_, err := sweepd.RunRemote(context.Background(), "127.0.0.1:1", job, nil)
	if err == nil || !strings.Contains(err.Error(), "not serializable") {
		t.Fatalf("err = %v, want a serialization failure naming the point", err)
	}
	if !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("err = %v, want the failing point identified", err)
	}
}

type customModel struct{}

func (customModel) Access(uint32, bool) (bool, int) { return true, 1 }
func (customModel) Stats() cache.Stats              { return cache.Stats{} }
func (customModel) Reset()                          {}

// TestRemoteCancellation: cancelling the client context aborts the job and
// returns promptly.
func TestRemoteCancellation(t *testing.T) {
	addr, _ := cluster(t, 2, nil)
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for i := 0; i < 4; i++ {
		cfg := core.DefaultConfig()
		cfg.RBSize = 8 << i
		pts = append(pts, sweep.Point{Name: "rb", Config: cfg})
	}
	// Uncacheable (over the per-trace cap), effectively unbounded budget:
	// the engines run until cancellation reaches the workers.
	job := &sweepd.Job{Profile: p, Instructions: 1 << 62, Points: pts}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = sweepd.RunRemote(ctx, addr, job, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled remote sweep did not return")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
}

// TestRemoteWorkerDeathMidJobRequeues kills one worker's process context
// mid-job; the coordinator requeues its groups on the survivor and the job
// completes with full, correct results.
func TestRemoteWorkerDeathMidJobRequeues(t *testing.T) {
	coord := sweepd.NewCoordinator()
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Survivor worker.
	sctx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	go sweepd.Work(sctx, addr, sweepd.WorkerOptions{Name: "survivor"}) //nolint:errcheck

	// Victim worker: its context dies as soon as it emits its first result.
	vctx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	victimEmitted := make(chan struct{}, 16)
	go sweepd.Work(vctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
		Name: "victim",
		Observer: core.ObserverFunc(func(core.Progress) {
			victimEmitted <- struct{}{}
		}),
	})
	go func() {
		<-victimEmitted
		killVictim()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not register")
		}
		time.Sleep(2 * time.Millisecond)
	}

	job := testJob(t)
	want := reference(t, job)
	got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after a worker death differ from the reference")
	}
}

// TestRemoteWorkerDeathResumesFromCheckpoint exercises checkpoint shipping
// over real TCP: a victim worker with a tight checkpoint cadence is killed
// only after the coordinator has received at least one of its shipped
// checkpoints, so the requeued group provably carries resume state; the
// survivor logs the mid-run resume and the job still finishes with results
// byte-identical to the reference.
func TestRemoteWorkerDeathResumesFromCheckpoint(t *testing.T) {
	coord := sweepd.NewCoordinator()

	// Observe the first checkpoint receipt through the coordinator log.
	ckptSeen := make(chan struct{})
	var ckptOnce sync.Once
	var logMu sync.Mutex
	var resumeLines []string
	coord.Logf = func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if strings.Contains(line, "sweepd.checkpoint_received") && strings.Contains(line, "worker=victim") {
			ckptOnce.Do(func() { close(ckptSeen) })
		}
	}
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Survivor: ordinary worker that records its own resume log lines.
	sctx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	go sweepd.Work(sctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
		Name:            "survivor",
		CheckpointEvery: 2048,
		Logf: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if strings.Contains(line, "sweepd.point_resumed") {
				logMu.Lock()
				resumeLines = append(resumeLines, line)
				logMu.Unlock()
			}
		},
	})
	// Victim: dies once the coordinator holds one of its checkpoints.
	vctx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	go sweepd.Work(vctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
		Name: "victim", CheckpointEvery: 2048,
	})
	go func() {
		<-ckptSeen
		killVictim()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not register")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// One group per worker, with a budget long enough that checkpoints ship
	// well before either point completes — and, since the kill trigger is
	// the coordinator-side receipt racing the victim's own simulation, long
	// enough that the event-aware engine (an order of magnitude above the
	// wire round-trip) is still provably mid-run when the kill lands.
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for _, rb := range []int{8, 16} {
		cfg := core.DefaultConfig()
		cfg.RBSize = rb
		pts = append(pts, sweep.Point{Name: "rb=" + itoa(rb), Config: cfg})
	}
	job := &sweepd.Job{Profile: p, Instructions: 600_000, Points: pts}
	want := reference(t, job)
	got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results after a checkpoint-resumed worker death differ from the reference")
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(resumeLines) == 0 {
		t.Error("survivor never resumed a point from a shipped checkpoint (requeued group restarted from cycle 0)")
	}
}
