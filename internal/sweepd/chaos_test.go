package sweepd_test

// The sweepd half of the chaos suite (docs/ROBUSTNESS.md): every schedule
// arms a deterministic, seeded fault against the wire layer of one
// "victim" worker in a two-worker cluster, runs the standard test job,
// and asserts the results are byte-identical to a fault-free local run.
// The injected faults are the real failure modes of a distributed sweep —
// a worker process hanging mid-group (TCP up, nothing flowing), a worker
// dying inside a frame write (torn frame on the coordinator's reader),
// and plain send/recv errors — and the invariant under all of them is the
// repository's north star: the fabric may lose workers, never results,
// and never determinism.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/workload"
)

// Fast liveness for chaos runs: a hung peer is declared dead after 300ms
// of silence instead of the production 20s, so a whole schedule table
// fits in CI. The margin (12 missed pings) absorbs scheduler hiccups
// under -race.
const (
	chaosPing = 25 * time.Millisecond
	chaosDead = 300 * time.Millisecond
)

// chaosRule derives one seeded fault rule for the victim's wire. The
// ordinal starts at 2 so the victim's hello (send #1 / recv #1) always
// completes — the victim must register before it can misbehave — and
// stays small enough to land among the job's own frames (the victim's
// group is two results and a group_end) rather than the idle heartbeats
// after it.
func chaosRule(seed int64, site string, do faults.Action, err error) faults.Rule {
	rng := rand.New(rand.NewSource(seed))
	return faults.Rule{Site: site, On: 2 + uint64(rng.Int63n(3)), Do: do, Err: err}
}

// TestChaosWireFaults is the seeded schedule table. Each entry builds a
// coordinator with fast liveness, a clean survivor worker and a victim
// worker armed with the schedule's injector, then proves the job
// completes byte-identical to the fault-free reference.
func TestChaosWireFaults(t *testing.T) {
	schedules := []struct {
		name string
		rule faults.Rule
	}{
		{"worker_hang_mid_group/seed1", chaosRule(1, sweepd.FaultWorkerSend, faults.Hang, nil)},
		{"worker_hang_mid_group/seed2", chaosRule(2, sweepd.FaultWorkerSend, faults.Hang, nil)},
		{"worker_kill_mid_frame/seed3", chaosRule(3, sweepd.FaultWorkerSend, faults.Fail, sweepd.ErrKillMidFrame)},
		{"worker_kill_mid_frame/seed4", chaosRule(4, sweepd.FaultWorkerSend, faults.Fail, sweepd.ErrKillMidFrame)},
		{"worker_recv_fail/seed5", chaosRule(5, sweepd.FaultWorkerRecv, faults.Fail, nil)},
		{"worker_send_fail/seed6", chaosRule(6, sweepd.FaultWorkerSend, faults.Fail, nil)},
	}
	if testing.Short() {
		schedules = schedules[:3] // one per fault family
	}
	job := testJob(t)
	want := mustJSON(t, reference(t, job))
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			inj := faults.NewInjector(sc.rule)
			t.Cleanup(inj.Close) // releases any goroutine parked in a Hang

			coord := sweepd.NewCoordinator()
			coord.HeartbeatInterval = chaosPing
			coord.HeartbeatTimeout = chaosDead
			addr, err := coord.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { coord.Close() })

			wctx, stop := context.WithCancel(context.Background())
			t.Cleanup(stop)
			go sweepd.Work(wctx, addr, sweepd.WorkerOptions{Name: "survivor"}) //nolint:errcheck
			waitWorkers(t, coord, 1)
			go sweepd.Work(wctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
				Name: "victim", Faults: inj,
			})
			// The victim registers (its hello is never faulted), but with a
			// small ordinal the schedule may kill it again within a few
			// heartbeats — so wait for either full registration or the
			// schedule having already fired.
			waitChaosVictim(t, coord, inj, sc.rule.Site)

			got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
			if err != nil {
				t.Fatalf("job did not survive the fault schedule: %v", err)
			}
			if gotJSON := mustJSON(t, got); gotJSON != want {
				t.Fatalf("results under faults are not byte-identical to the fault-free reference\ngot:  %.300s\nwant: %.300s",
					gotJSON, want)
			}
			// The fault must actually have fired for the run to prove
			// anything. An ordinal the job's own frames didn't reach is
			// reached by the victim's heartbeats within a few intervals.
			fireBy := time.Now().Add(5 * time.Second)
			for inj.Fired(sc.rule.Site) == 0 {
				if time.Now().After(fireBy) {
					t.Fatalf("schedule never fired at %s: the run proved nothing", sc.rule.Site)
				}
				time.Sleep(2 * time.Millisecond)
			}
		})
	}
}

// TestChaosHungWorkerResumesFromCheckpoint is the acceptance shape of the
// heartbeat work: a worker that HANGS mid-group — connection established,
// frames stopped — is detected within the heartbeat timeout, counted and
// logged as a heartbeat death, and its group requeues on the survivor
// with the shipped checkpoint, provably resuming past cycle 0. The hang
// is armed event-triggered: only after the coordinator holds one of the
// victim's checkpoints does the victim's wire freeze, so the requeued
// group always carries resume state.
func TestChaosHungWorkerResumesFromCheckpoint(t *testing.T) {
	inj := faults.NewInjector()
	t.Cleanup(inj.Close)

	coord := sweepd.NewCoordinator()
	coord.HeartbeatInterval = chaosPing
	coord.HeartbeatTimeout = chaosDead

	ckptSeen := make(chan struct{})
	var once sync.Once
	var logMu sync.Mutex
	var hbDeaths, resumes []string
	coord.Logf = func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if strings.Contains(line, "sweepd.checkpoint_received") && strings.Contains(line, "worker=victim") {
			once.Do(func() { close(ckptSeen) })
		}
		if strings.Contains(line, "sweepd.worker_heartbeat_timeout") {
			logMu.Lock()
			hbDeaths = append(hbDeaths, line)
			logMu.Unlock()
		}
	}
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	wctx, stop := context.WithCancel(context.Background())
	t.Cleanup(stop)
	go sweepd.Work(wctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
		Name:            "survivor",
		CheckpointEvery: 2048,
		Logf: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			if strings.Contains(line, "sweepd.point_resumed") {
				logMu.Lock()
				resumes = append(resumes, line)
				logMu.Unlock()
			}
		},
	})
	go sweepd.Work(wctx, addr, sweepd.WorkerOptions{ //nolint:errcheck
		Name: "victim", CheckpointEvery: 2048, Faults: inj,
	})
	waitWorkers(t, coord, 2)
	go func() {
		<-ckptSeen
		// Freeze every subsequent victim send — heartbeats included, since
		// the injection point sits inside the write lock. From the
		// coordinator's side the victim is now a hung process.
		inj.Add(faults.Rule{Site: sweepd.FaultWorkerSend, Do: faults.Hang, Count: faults.All})
	}()

	// One group per worker, budgets long enough that checkpoints ship well
	// before either point completes (same sizing as the worker-death
	// resume test).
	p, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	var pts []sweep.Point
	for _, rb := range []int{8, 16} {
		cfg := core.DefaultConfig()
		cfg.RBSize = rb
		pts = append(pts, sweep.Point{Name: "rb=" + itoa(rb), Config: cfg})
	}
	job := &sweepd.Job{Profile: p, Instructions: 600_000, Points: pts}
	want := mustJSON(t, reference(t, job))
	got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON := mustJSON(t, got); gotJSON != want {
		t.Fatal("results after a hung-worker requeue are not byte-identical to the reference")
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(hbDeaths) == 0 {
		t.Error("coordinator never logged sweepd.worker_heartbeat_timeout: the hang went undetected or was misclassified as a disconnect")
	}
	if len(resumes) == 0 {
		t.Error("survivor never resumed a point from a shipped checkpoint (requeued group restarted from cycle 0)")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func waitWorkers(t *testing.T, coord *sweepd.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", coord.WorkerCount(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitChaosVictim waits for the victim to register — or for its schedule
// to have already fired, which means it registered and died again before
// this poll caught the window.
func waitChaosVictim(t *testing.T, coord *sweepd.Coordinator, inj *faults.Injector, site string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < 2 && inj.Fired(site) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim neither registered nor faulted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
