package sweepd_test

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweepd"
)

// TestCoordinatorCloseDrainsGoroutines: closing the coordinator while a
// client job is mid-flight must deterministically cancel and drain every
// goroutine the service spawned — accept loops, per-connection handlers,
// client cancellation watchers, scheduler requeue machinery — and the
// worker and client processes must unwind too. The assertion is a hard
// goroutine count: everything the test started is gone afterwards, so a
// leaked conn handler racing Close fails loudly here instead of
// accumulating in a long-lived daemon.
func TestCoordinatorCloseDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan struct{})
	hsTimedOut := make(chan struct{})
	var once, hsOnce sync.Once
	coord := sweepd.NewCoordinator()
	coord.HandshakeTimeout = 150 * time.Millisecond
	coord.Logf = func(format string, args ...any) {
		if strings.Contains(format, "sweepd.job_start") ||
			(len(args) > 0 && containsAny(args, "sweepd.job_start")) {
			once.Do(func() { close(started) })
		}
		if strings.Contains(format, "sweepd.handshake_timeout") ||
			(len(args) > 0 && containsAny(args, "sweepd.handshake_timeout")) {
			hsOnce.Do(func() { close(hsTimedOut) })
		}
	}
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A peer that connects and never speaks: without the handshake
	// deadline, its handler goroutine would sit in the hello read until
	// Close and trip the goroutine-count assertion below. It must instead
	// be reaped on its own, while the coordinator is still running.
	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	select {
	case <-hsTimedOut:
	case <-time.After(10 * time.Second):
		t.Fatal("silent connection was never reaped by the handshake deadline")
	}

	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	var workers sync.WaitGroup
	for i := 0; i < 2; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			sweepd.Work(wctx, addr, sweepd.WorkerOptions{Name: "w" + itoa(i+1)}) //nolint:errcheck
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A client job big enough to still be running when Close lands.
	job := testJob(t)
	job.Instructions = 500_000
	clientErr := make(chan error, 1)
	go func() {
		_, err := sweepd.RunRemote(context.Background(), addr, job, nil)
		clientErr <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	// Race Close against the in-flight job: it must abort the job, not
	// wedge behind it.
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-clientErr:
		if err == nil {
			t.Fatal("client job reported success across a coordinator shutdown")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client still blocked 10s after coordinator Close returned")
	}
	stop()
	workers.Wait()

	// Everything drained: the goroutine count settles back to the baseline
	// (small transient slack for runtime/netpoll goroutines still parking).
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across Close: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func containsAny(args []any, sub string) bool {
	for _, a := range args {
		if s, ok := a.(string); ok && strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
