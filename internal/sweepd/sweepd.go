// Package sweepd is the sharded sweep service: coordinator/worker
// design-space exploration across processes and hosts. It scales the
// paper's bulk-simulation use case ("bulk simulations with varying design
// parameters") past one machine by sharding a sweep's design points across
// workers and streaming per-point results back as they finish.
//
// The scheduling unit is the trace key-group: every point whose (workload,
// derived trace configuration, instruction budget) hashes to the same
// tracecache.Key.ID() is routed to one worker, so each distinct trace is
// generated — or received as a shipped delta-compressed container — exactly
// once per host, no matter how many points replay it. Within a group the
// worker runs points through the ordinary sweep machinery against its own
// shared trace cache; across groups the scheduler fans out over every live
// worker and requeues a dead worker's unfinished points on a survivor.
//
// The same scheduler serves three surfaces: the in-process loopback mode
// (LoopbackWorker — used by Session.Sweep and by tests), the network
// coordinator (Coordinator + cmd/resimd), and the client (RunRemote behind
// Session.SweepRemote). Local and remote sweeps therefore share one code
// path for grouping, assignment, requeue and result ordering.
package sweepd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// Job is one sweep job: the resolved workload profile, the per-point
// correct-path instruction budget, and the design points. Points keep their
// input order; results are always returned in that order.
type Job struct {
	Profile      workload.Profile
	Instructions uint64
	Points       []sweep.Point

	// CheckpointBudget caps the total bytes of resume checkpoints the
	// scheduler retains for this job (the latest checkpoint per unfinished
	// point, across all groups). When a new shipment would exceed it, the
	// least-recently-updated other points' checkpoints are dropped — those
	// points simply restart from cycle 0 if their worker dies, so a long
	// design-space job degrades resume granularity instead of growing
	// without bound. 0 means DefaultCheckpointBudget; negative disables
	// the cap. Scheduler policy, never serialized: the coordinator applies
	// its own budget to jobs received over the wire.
	CheckpointBudget int64 `json:"-"`

	// TelemetryEvery, when non-zero, makes workers stream per-interval
	// engine telemetry for every in-flight point: each engine emits a
	// core.IntervalSnapshot window delta at every TelemetryEvery-cycle
	// boundary, tagged with the job-wide point index (Snapshot.Core). The
	// cadence crosses the wire with the job; the snapshots flow back
	// through OnTelemetry.
	TelemetryEvery uint64
	// OnTelemetry, when non-nil, receives every streamed snapshot. Delivery
	// is fire-and-forget — a slow or failing consumer never blocks or
	// aborts the sweep — and may be concurrent across points (in window
	// order within a point). Snapshots for points that already completed
	// (duplicate delivery after a requeue) are dropped by the scheduler.
	OnTelemetry func(index int, snap core.IntervalSnapshot) `json:"-"`
}

// DefaultCheckpointBudget bounds retained resume-checkpoint bytes per job
// (64 MiB ≈ several thousand points at the ~15 KiB a default engine
// checkpoint encodes to).
const DefaultCheckpointBudget = 64 << 20

// Group is one trace-key shard of a job: the indices of every point sharing
// one generated trace. The whole group is assigned to a single worker so
// the trace is produced once per host and replayed by the rest.
type Group struct {
	Key     tracecache.Key
	KeyID   string
	Indices []int
}

// Groups shards the job's points by trace key, preserving first-seen order.
// The key is a stable content address (tracecache.Key.ID()), so a
// coordinator and its workers — potentially different processes — agree on
// the routing unit by construction.
func (j *Job) Groups() []Group {
	byID := make(map[string]int, len(j.Points))
	var gs []Group
	for i := range j.Points {
		k := tracecache.KeyFor(j.Profile, j.Points[i].Config.TraceConfig(), j.Instructions)
		id := k.ID()
		gi, ok := byID[id]
		if !ok {
			gi = len(gs)
			byID[id] = gi
			gs = append(gs, Group{Key: k, KeyID: id})
		}
		gs[gi].Indices = append(gs[gi].Indices, i)
	}
	return gs
}

// PointResult is one completed design point, tagged with its index in the
// job's point list.
type PointResult struct {
	Index  int
	Result sweep.Result
}

// GroupRun is one group assignment handed to a worker: the job-wide indices
// of the points still to simulate, plus the checkpoint channel in both
// directions — the latest prior checkpoints to resume from, and the hook
// for shipping new ones back to the scheduler.
type GroupRun struct {
	// Indices selects the job points to run, in job order.
	Indices []int
	// Checkpoints holds the latest serialized core.Checkpoint per job-wide
	// point index, captured by a previous owner of this group. A worker
	// resumes those points from their checkpointed cycle instead of cycle 0;
	// an entry that fails to decode or restore degrades to a fresh run.
	Checkpoints map[int][]byte
	// OnCheckpoint, when non-nil, receives serialized checkpoints as the
	// worker captures them (keyed by job-wide point index), so the scheduler
	// holds a recent resume point if this worker dies. May be called
	// concurrently from several point engines.
	OnCheckpoint func(index int, data []byte)
	// OnTelemetry, when non-nil, receives per-interval telemetry snapshots
	// as the worker's engines emit them (keyed by job-wide point index,
	// also stamped into Snapshot.Core). Same concurrency contract as
	// OnCheckpoint; the worker streams only when Job.TelemetryEvery is set.
	OnTelemetry func(index int, snap core.IntervalSnapshot)
}

// Worker runs assigned key-groups. Implementations: LoopbackWorker
// (in-process) and the coordinator's per-connection remote worker proxy.
type Worker interface {
	// RunGroup simulates the points of job selected by gr.Indices and calls
	// emit once per completed point, in completion order. A non-nil error
	// means the worker died mid-group: results already emitted stand, the
	// remainder is requeued on a live worker — resuming from the
	// checkpoints the dead worker shipped — and this worker receives no
	// further groups.
	RunGroup(ctx context.Context, job *Job, gr GroupRun, emit func(PointResult)) error
}

// groupState tracks one group through assignment, partial completion and
// requeue. A group is owned by at most one worker at a time (it is either
// queued or held), so the done map and the job-wide checkpoint store are
// the only shared state, guarded by the scheduler mutex.
type groupState struct {
	g    Group
	done map[int]bool
}

// CheckpointStore retains the latest shipped resume checkpoint per
// unfinished point of one job, under a total byte budget. The scheduler
// keeps one per Run; the job platform (internal/jobd) keeps one per admitted
// job, so the store carries its own mutex — concurrent jobs' stores are
// fully isolated, each enforcing only its own budget.
type CheckpointStore struct {
	mu      sync.Mutex
	budget  int64 // <= 0: unlimited
	total   int64
	data    map[int][]byte
	stamp   map[int]uint64 // last-update tick, for least-recently-updated eviction
	tick    uint64
	dropped int // checkpoints evicted to stay under budget
}

// NewCheckpointStore builds a store capping retained checkpoint bytes at
// budget (<= 0: unlimited).
func NewCheckpointStore(budget int64) *CheckpointStore {
	return &CheckpointStore{budget: budget, data: make(map[int][]byte), stamp: make(map[int]uint64)}
}

// Put stores the latest checkpoint for index, evicting the
// least-recently-updated other points as needed to stay under budget. A
// checkpoint that could never fit even alone is rejected up front — the
// point keeps whatever older (still valid, just earlier) resume state it
// had, and no other point's state is harmed making room for it.
func (s *CheckpointStore) Put(index int, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && int64(len(b)) > s.budget {
		s.dropped++
		return
	}
	s.dropLocked(index) // a replaced shipment no longer counts toward the budget
	if s.budget > 0 {
		for s.total+int64(len(b)) > s.budget && len(s.data) > 0 {
			lru, lruStamp := -1, uint64(0)
			for i, st := range s.stamp {
				if lru < 0 || st < lruStamp {
					lru, lruStamp = i, st
				}
			}
			s.evictLocked(lru)
		}
	}
	s.tick++
	s.data[index] = b
	s.stamp[index] = s.tick
	s.total += int64(len(b))
}

// Get returns the stored checkpoint for index, or nil.
func (s *CheckpointStore) Get(index int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[index]
}

// Drop releases index's checkpoint (its result landed, or it was evicted
// by Put).
func (s *CheckpointStore) Drop(index int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(index)
}

// TotalBytes reports the bytes currently retained.
func (s *CheckpointStore) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Dropped reports checkpoints evicted or rejected to stay under budget.
func (s *CheckpointStore) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

func (s *CheckpointStore) dropLocked(index int) {
	if old, ok := s.data[index]; ok {
		s.total -= int64(len(old))
		delete(s.data, index)
		delete(s.stamp, index)
	}
}

func (s *CheckpointStore) evictLocked(index int) {
	if _, ok := s.data[index]; ok {
		s.dropLocked(index)
		s.dropped++
	}
}

// Run schedules the job's key-groups across workers and returns results in
// point order regardless of shard or worker completion order. emit, when
// non-nil, is called once per completed point (serialized) with the running
// completed/total counts — the coordinator-side progress stream. On worker
// failure the group's unfinished points are requeued on a live worker,
// which resumes each point from the latest checkpoint the dead worker
// shipped (engines are deterministic, so a resumed point's result is
// bit-identical to a from-scratch run); when no live worker remains the job
// fails. Cancelling the context aborts in-flight groups and returns
// ctx.Err() once every worker has drained.
func Run(ctx context.Context, job *Job, workers []Worker, emit func(res PointResult, done, total int)) ([]sweep.Result, error) {
	if len(job.Points) == 0 {
		return nil, fmt.Errorf("sweepd: no design points")
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("sweepd: no workers")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	groups := job.Groups()
	total := len(job.Points)
	results := make([]sweep.Result, total)
	budget := job.CheckpointBudget
	if budget == 0 {
		budget = DefaultCheckpointBudget
	}
	ckpts := NewCheckpointStore(budget)

	// Each group is either in the queue or held by exactly one worker, so
	// capacity len(groups) makes every requeue send non-blocking.
	queue := make(chan *groupState, len(groups))
	for _, g := range groups {
		queue <- &groupState{g: g, done: make(map[int]bool, len(g.Indices))}
	}

	var (
		mu        sync.Mutex
		completed int
		open      = len(groups) // groups not yet fully completed
		live      = len(workers)
		failErr   error
	)
	// finishGroupLocked marks gs fully done; the last group closes the queue
	// so idle workers drain. Callers hold mu.
	closeOnce := sync.Once{}
	finishGroupLocked := func() {
		open--
		if open == 0 {
			closeOnce.Do(func() { close(queue) })
		}
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			for {
				var gs *groupState
				var ok bool
				select {
				case <-runCtx.Done():
					return
				case gs, ok = <-queue:
					if !ok {
						return
					}
				}
				mu.Lock()
				gr := GroupRun{
					Indices:     gs.remainingLocked(),
					Checkpoints: make(map[int][]byte),
					OnCheckpoint: func(index int, data []byte) {
						mu.Lock()
						defer mu.Unlock()
						if index < 0 || index >= total || gs.done[index] || len(data) == 0 {
							return
						}
						// Workers checkpoint each point monotonically, and a
						// requeued owner resumes from the stored cycle, so the
						// latest shipment is always the furthest along. The
						// store caps total retained bytes job-wide, evicting
						// other points' resume state first.
						ckpts.Put(index, data)
					},
				}
				if job.OnTelemetry != nil && job.TelemetryEvery > 0 {
					gr.OnTelemetry = func(index int, snap core.IntervalSnapshot) {
						mu.Lock()
						stale := index < 0 || index >= total || gs.done[index]
						mu.Unlock()
						if stale {
							return
						}
						// Forward outside the scheduler lock: telemetry fans out
						// to consumers the scheduler must never block on.
						job.OnTelemetry(index, snap)
					}
				}
				for _, i := range gr.Indices {
					if data := ckpts.Get(i); len(data) > 0 {
						gr.Checkpoints[i] = data
					}
				}
				mu.Unlock()
				err := w.RunGroup(runCtx, job, gr, func(pr PointResult) {
					mu.Lock()
					defer mu.Unlock()
					if pr.Index < 0 || pr.Index >= total || gs.done[pr.Index] {
						// Out-of-range or duplicate (a requeued group rerunning
						// a point whose result message was lost): results are
						// deterministic, so first write wins and the rest drop.
						return
					}
					gs.done[pr.Index] = true
					// The result landed: its resume checkpoint is garbage now.
					ckpts.Drop(pr.Index)
					results[pr.Index] = pr.Result
					completed++
					if emit != nil && runCtx.Err() == nil {
						emit(pr, completed, total)
					}
				})
				mu.Lock()
				finished := len(gs.done) == len(gs.g.Indices)
				if err == nil && finished {
					finishGroupLocked()
					mu.Unlock()
					continue
				}
				if err == nil {
					// A worker must either finish its group or report failure;
					// returning early without doing so is treated as death so a
					// buggy worker cannot requeue-loop forever.
					err = errors.New("sweepd: worker returned without completing its group")
				}
				if runCtx.Err() != nil {
					mu.Unlock()
					return
				}
				// Worker died. Its finished results stand; the remainder is
				// requeued for a surviving worker and this worker retires.
				live--
				if finished {
					finishGroupLocked()
					mu.Unlock()
					return
				}
				if live == 0 {
					if failErr == nil {
						failErr = fmt.Errorf("sweepd: worker failed with no live workers left to requeue on: %w", err)
					}
					mu.Unlock()
					cancel()
					return
				}
				mu.Unlock()
				queue <- gs
				return
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mu.Lock()
	err := failErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// remainingLocked returns the group's not-yet-completed indices. Callers
// hold the scheduler mutex.
func (gs *groupState) remainingLocked() []int {
	rem := make([]int, 0, len(gs.g.Indices)-len(gs.done))
	for _, i := range gs.g.Indices {
		if !gs.done[i] {
			rem = append(rem, i)
		}
	}
	return rem
}

// decodeResume builds the group-local resume map both worker transports
// hand to sweep.Runner: slot i of the assignment resumes from bytesFor(i)
// when those bytes decode. Undecodable entries degrade to from-scratch runs
// of their point (onBad, when non-nil, observes them).
func decodeResume(n int, bytesFor func(slot int) []byte, onBad func(slot int, err error)) map[int]*core.Checkpoint {
	var resume map[int]*core.Checkpoint
	for i := 0; i < n; i++ {
		data := bytesFor(i)
		if len(data) == 0 {
			continue
		}
		cp, err := core.DecodeCheckpoint(data)
		if err != nil {
			if onBad != nil {
				onBad(i, err)
			}
			continue
		}
		if resume == nil {
			resume = make(map[int]*core.Checkpoint)
		}
		resume[i] = cp
	}
	return resume
}

// errKilled reports a LoopbackWorker torn down by Kill.
var errKilled = errors.New("sweepd: worker killed")

// abortedResult reports a point result produced by cancellation rather than
// simulation: its error is the context's, so rerunning it elsewhere can
// still produce the real outcome. Genuine per-point failures (invalid
// configurations, engine errors) are deterministic and never context
// errors.
func abortedResult(res sweep.Result) bool {
	return errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded)
}

// LoopbackOptions configures one in-process worker.
type LoopbackOptions struct {
	// Parallelism bounds concurrent engines within one assigned group;
	// 0 uses GOMAXPROCS.
	Parallelism int
	// Traces is the worker's shared trace cache — the stand-in for one
	// host's cache. nil (with DisableCache false) gives the worker a
	// private cache, the loopback analog of a fresh remote host.
	Traces *tracecache.Cache
	// DisableCache streams every point's trace from the functional
	// simulator instead of materializing it (Session-level WithTraceCache(nil)).
	DisableCache bool
	// Observer, when non-nil, receives the worker's own per-point progress
	// (Core is the point's job-wide index) — what a remote worker logs
	// locally while the coordinator streams results to the client.
	Observer core.Observer
	// CheckpointEvery, when non-zero, makes the worker serialize each
	// in-flight engine's state at every CheckpointEvery-cycle boundary and
	// ship it to the scheduler through GroupRun.OnCheckpoint, so a requeued
	// group resumes on a survivor instead of restarting from cycle 0.
	CheckpointEvery uint64
}

// LoopbackWorker runs key-groups in-process through the standard sweep
// machinery against its own trace cache. It is the loopback transport of
// the sweep service: Session.Sweep uses a pool of them when no coordinator
// address is configured, and tests use Kill to exercise the requeue path
// without a network.
type LoopbackWorker struct {
	opts     LoopbackOptions
	traces   *tracecache.Cache
	killed   chan struct{}
	killOnce sync.Once
	resumed  atomic.Uint64 // simulated cycles skipped by resuming checkpoints
}

// NewLoopbackWorker builds one in-process worker.
func NewLoopbackWorker(opts LoopbackOptions) *LoopbackWorker {
	w := &LoopbackWorker{opts: opts, traces: opts.Traces, killed: make(chan struct{})}
	if w.traces == nil && !opts.DisableCache {
		// A private per-worker cache, like a remote host's: groups assigned
		// to this worker share it across RunGroup calls.
		w.traces = tracecache.New(tracecache.Config{})
	}
	return w
}

// Traces returns the worker's trace cache (nil when caching is disabled) —
// tests assert generation counts per simulated host through it.
func (w *LoopbackWorker) Traces() *tracecache.Cache { return w.traces }

// ResumedCycles returns the total simulated cycles this worker skipped by
// resuming points from shipped checkpoints instead of cycle 0 — the
// Stats.Seeds-style counter tests assert requeue-resume through.
func (w *LoopbackWorker) ResumedCycles() uint64 { return w.resumed.Load() }

// Kill tears the worker down, aborting any in-flight group (its completed
// points stand; the scheduler requeues the rest) and refusing future
// assignments — the loopback equivalent of a worker host dying.
func (w *LoopbackWorker) Kill() {
	w.killOnce.Do(func() { close(w.killed) })
}

// RunGroup implements Worker.
func (w *LoopbackWorker) RunGroup(ctx context.Context, job *Job, gr GroupRun, emit func(PointResult)) error {
	select {
	case <-w.killed:
		return errKilled
	default:
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-w.killed:
			cancel()
		case <-stop:
		}
	}()

	indices := gr.Indices
	pts := make([]sweep.Point, len(indices))
	for i, idx := range indices {
		pts[i] = job.Points[idx]
	}
	resume := decodeResume(len(indices), func(i int) []byte { return gr.Checkpoints[indices[i]] }, nil)
	r := sweep.Runner{
		Workload:     job.Profile,
		Instructions: job.Instructions,
		Parallelism:  w.opts.Parallelism,
		Traces:       w.traces,
		DisableCache: w.opts.DisableCache,
		Resume:       resume,
		// Counted on successful restore only, so the counter never reports
		// a resume that silently degraded to a fresh run.
		OnResume: func(_ int, cycles uint64) { w.resumed.Add(cycles) },
		OnResult: func(i int, res sweep.Result) {
			select {
			case <-w.killed:
				// A dead host's unsent results never arrive: once killed,
				// the worker emits nothing more and the scheduler reruns
				// the remainder elsewhere.
				return
			default:
			}
			if abortedResult(res) {
				// A point cut short by cancellation is not a real outcome:
				// withhold it so the scheduler requeues the point instead
				// of recording a poisoned result.
				return
			}
			emit(PointResult{Index: indices[i], Result: res})
		},
	}
	if w.opts.CheckpointEvery > 0 && gr.OnCheckpoint != nil {
		r.CheckpointEvery = w.opts.CheckpointEvery
		r.OnCheckpoint = func(i int, cp *core.Checkpoint) {
			select {
			case <-w.killed:
				return // dead hosts ship nothing
			default:
			}
			if data, err := cp.Encode(); err == nil {
				gr.OnCheckpoint(indices[i], data)
			}
		}
	}
	if job.TelemetryEvery > 0 && gr.OnTelemetry != nil {
		r.TelemetryEvery = job.TelemetryEvery
		r.OnTelemetry = func(i int, snap core.IntervalSnapshot) {
			select {
			case <-w.killed:
				return // dead hosts ship nothing
			default:
			}
			// Remap the group-local slot to the job-wide point index, like
			// the Observer below.
			snap.Core = indices[i]
			gr.OnTelemetry(indices[i], snap)
		}
	}
	if w.opts.Observer != nil {
		r.Observer = core.ObserverFunc(func(p core.Progress) {
			if p.Core >= 0 && p.Core < len(indices) {
				p.Core = indices[p.Core]
			}
			w.opts.Observer.Progress(p)
		})
	}
	if _, err := r.Run(gctx, pts); err != nil {
		select {
		case <-w.killed:
			return fmt.Errorf("%w: %v", errKilled, err)
		default:
		}
		return err
	}
	return nil
}
