package sweepd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sweep"
	"repro/internal/tracecache"
)

// Coordinator is the sweep service's control plane: it accepts worker
// registrations and client job submissions on one listener, shards each
// job's points into trace-key groups, assigns every group to a single
// worker (shipping the group's trace from its own cache when it already
// holds the container), streams per-point results back to the client as
// they finish, and requeues a dead worker's unfinished groups on the
// survivors.
type Coordinator struct {
	// Traces, when non-nil, is the coordinator's trace cache: groups whose
	// trace it already holds (resident or spilled — e.g. warmed by local
	// runs sharing the cache, or a populated SpillDir) are shipped to the
	// assigned worker as delta-compressed containers, so the worker seeds
	// its cache instead of regenerating.
	Traces *tracecache.Cache
	// Logf, when non-nil, receives service log lines.
	Logf func(format string, args ...any)
	// CheckpointBudget caps the resume-checkpoint bytes the scheduler
	// retains per job (see Job.CheckpointBudget): 0 applies
	// DefaultCheckpointBudget, negative disables the cap.
	CheckpointBudget int64
	// OnWorkersChanged, when non-nil, is called (without the coordinator
	// lock held) after a worker registers or disconnects — the dispatch
	// hook the job platform (internal/jobd) uses to re-schedule queued
	// groups when capacity appears or a worker dies. Set it before Serve.
	OnWorkersChanged func()
	// Metrics, when non-nil, receives event counts (worker connects,
	// group dispatch/requeue, trace shipping) and the group round-trip
	// distribution. Build it with RegisterCoordinatorMetrics and set it
	// before Serve; nil costs one pointer check per event.
	Metrics *CoordinatorMetrics
	// HeartbeatInterval is the msgPing cadence on every accepted
	// connection and HeartbeatTimeout the silence after which a peer is
	// declared hung and torn down (its groups requeue from their latest
	// checkpoints). Zero applies DefaultHeartbeatInterval /
	// DefaultHeartbeatTimeout; negative disables that side of liveness.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// HandshakeTimeout bounds the hello exchange on accepted connections
	// (zero: a 10s default), so a silent peer cannot pin a handler
	// goroutine until Close.
	HandshakeTimeout time.Duration
	// Clock, when non-nil, replaces the wall clock for deadlines and
	// heartbeat pacing (chaos tests drive liveness virtually).
	Clock faults.Clock
	// Faults, when non-nil, arms the coordinator side of the wire with a
	// fault-injection schedule (sites sweepd.coordinator.send/recv); nil
	// injects nothing. See internal/faults.
	Faults *faults.Injector

	mu      sync.Mutex
	workers map[*remoteWorker]struct{}
	conns   map[net.Conn]struct{}
	ln      net.Listener
	closed  bool

	callSeq atomic.Uint64
	wg      sync.WaitGroup // per-connection handlers
	loopWg  sync.WaitGroup // accept loops (Serve calls)
}

// NewCoordinator builds an idle coordinator; start it with Serve or
// ListenAndServe.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		workers: make(map[*remoteWorker]struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// WorkerCount reports currently registered workers (tests poll it while
// bringing a cluster up).
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Addr returns the listener address once serving ("" before).
func (c *Coordinator) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// ListenAndServe listens on addr and serves until Close.
func (c *Coordinator) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return c.Serve(ln)
}

// Start listens on addr (":0" for an ephemeral port), serves in the
// background and returns the bound address — the test and example
// entry point.
func (c *Coordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go c.Serve(ln) //nolint:errcheck // background accept loop ends at Close
	return ln.Addr().String(), nil
}

// Serve accepts connections on ln until Close (or a listener error).
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return errors.New("sweepd: coordinator closed")
	}
	c.ln = ln
	// Registered under the lock that also orders Close's closed=true, so
	// Close either sees no loop (and skips waiting) or waits for this one
	// to observe closed and exit — the accept loop can never outlive Close
	// holding an untracked just-accepted connection.
	c.loopWg.Add(1)
	c.mu.Unlock()
	defer c.loopWg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return nil
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go func() {
			defer c.wg.Done()
			defer func() {
				c.mu.Lock()
				delete(c.conns, conn)
				c.mu.Unlock()
				conn.Close()
			}()
			c.handleConn(conn)
		}()
	}
}

// Close stops the listener, tears down every connection and waits for the
// accept loop and every per-connection goroutine (including client
// cancellation watchers) to drain — after Close returns, the coordinator
// holds no open connections and has leaked no goroutines.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	ln := c.ln
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	c.loopWg.Wait()
	c.wg.Wait()
	return nil
}

// hbInterval, hbTimeout and hsTimeout resolve the coordinator's liveness
// knobs: zero means the protocol default, negative disables.
func (c *Coordinator) hbInterval() time.Duration {
	if c.HeartbeatInterval == 0 {
		return DefaultHeartbeatInterval
	}
	return c.HeartbeatInterval
}

func (c *Coordinator) hbTimeout() time.Duration {
	if c.HeartbeatTimeout == 0 {
		return DefaultHeartbeatTimeout
	}
	if c.HeartbeatTimeout < 0 {
		return 0
	}
	return c.HeartbeatTimeout
}

func (c *Coordinator) hsTimeout() time.Duration {
	if c.HandshakeTimeout <= 0 {
		return defaultHandshakeTimeout
	}
	return c.HandshakeTimeout
}

// handleConn performs the hello handshake and dispatches on the peer role.
func (c *Coordinator) handleConn(conn net.Conn) {
	w := newWire(conn)
	w.clock = c.Clock
	w.inj = c.Faults
	w.sendSite, w.recvSite = FaultCoordSend, FaultCoordRecv
	// Bound the hello exchange: a peer that connects and never speaks
	// (or dies mid-handshake) must not pin this goroutine until Close.
	_ = conn.SetDeadline(w.now().Add(c.hsTimeout()))
	hello, err := handshake(w, Hello{
		Role:       roleCoordinator,
		PingMillis: c.hbInterval().Milliseconds(),
		DeadMillis: c.hbTimeout().Milliseconds(),
	}, roleWorker, roleClient)
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			c.Metrics.handshakeTimeout()
			c.logf("%s", KV("sweepd.handshake_timeout", "addr", conn.RemoteAddr(), "timeout", c.hsTimeout()))
		} else {
			c.logf("%s", KV("sweepd.handshake_failed", "addr", conn.RemoteAddr(), "err", err))
		}
		return
	}
	_ = conn.SetDeadline(time.Time{})
	w.readTimeout = c.hbTimeout()
	w.writeTimeout = c.hbTimeout()
	if iv := c.hbInterval(); iv > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go w.heartbeat(iv, stop)
	}
	switch hello.Role {
	case roleWorker:
		c.serveWorker(w, hello.Name)
	case roleClient:
		c.serveClient(w)
	}
}

// serveWorker registers the connection as a worker and pumps its messages
// until it disconnects; pending assignments then fail over to survivors.
func (c *Coordinator) serveWorker(w *wire, name string) {
	rw := &remoteWorker{c: c, w: w, name: name, calls: make(map[uint64]*groupCall)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.workers[rw] = struct{}{}
	c.mu.Unlock()
	c.Metrics.workerConnected()
	c.logf("%s", KV("sweepd.worker_registered", "worker", name, "addr", w.conn.RemoteAddr()))
	c.workersChanged()
	err := rw.readLoop()
	c.mu.Lock()
	delete(c.workers, rw)
	c.mu.Unlock()
	if errors.Is(err, os.ErrDeadlineExceeded) {
		// The TCP connection is still up but nothing — not even pings —
		// arrived within the heartbeat timeout: the worker is hung, not
		// merely disconnected. Same recovery either way (fail every
		// pending call, so the scheduler requeues the groups from their
		// latest checkpoints), but counted and logged distinctly.
		c.Metrics.heartbeatTimeout()
		c.logf("%s", KV("sweepd.worker_heartbeat_timeout", "worker", name, "timeout", c.hbTimeout()))
	}
	rw.fail(err)
	c.Metrics.workerGone()
	c.logf("%s", KV("sweepd.worker_gone", "worker", name, "err", err))
	c.workersChanged()
}

// workersChanged fires the OnWorkersChanged dispatch hook, if any.
func (c *Coordinator) workersChanged() {
	if c.OnWorkersChanged != nil {
		c.OnWorkersChanged()
	}
}

// Workers returns a snapshot of the currently registered workers — the
// worker pool a scheduler dispatches groups onto. Workers that register
// later appear in later snapshots (OnWorkersChanged signals when to take a
// fresh one); workers that die mid-group are handled by the caller's
// requeue on RunGroup error.
func (c *Coordinator) Workers() []Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := make([]Worker, 0, len(c.workers))
	for rw := range c.workers {
		ws = append(ws, rw)
	}
	return ws
}

// serveClient receives one job, runs it over the registered workers and
// streams results until done. The job is aborted if the client disconnects;
// the cancellation watcher is drained before returning so a coordinator
// Close never leaves watcher goroutines behind.
func (c *Coordinator) serveClient(w *wire) {
	m, err := w.recv()
	if err != nil {
		return
	}
	if m.Type != msgJob || m.Job == nil {
		w.send(&Message{Type: msgDone, Done: &Done{Err: fmt.Sprintf("expected job, got %q", m.Type)}}) //nolint:errcheck
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watcherDone := make(chan struct{})
	defer func() {
		// Unblock the watcher's pending recv and wait for it: teardown is
		// deterministic, not left to whenever the conn-close defer in Serve
		// happens to run after this handler already returned.
		w.conn.Close()
		<-watcherDone
	}()
	go func() {
		defer close(watcherDone)
		// The only traffic a client sends after the job is a disconnect;
		// use the read side as the cancellation signal.
		for {
			if _, err := w.recv(); err != nil {
				cancel()
				return
			}
		}
	}()

	fail := func(err error) {
		w.send(&Message{Type: msgDone, Done: &Done{Err: errString(err)}}) //nolint:errcheck
	}
	job, err := JobFromWire(m.Job)
	if err != nil {
		fail(err)
		return
	}
	job.CheckpointBudget = c.CheckpointBudget
	if job.TelemetryEvery > 0 {
		// Relay live snapshots to the client on the same framed connection
		// the results ride; wire.send serializes concurrent writers. Call is
		// meaningless client-side and stays zero.
		job.OnTelemetry = func(index int, snap core.IntervalSnapshot) {
			w.send(&Message{Type: msgTelemetry, Telemetry: &TelemetryShip{ //nolint:errcheck
				Index: index, Snap: snap,
			}})
		}
	}
	workers := c.Workers()
	if len(workers) == 0 {
		fail(errors.New("sweepd: no workers registered"))
		return
	}
	c.logf("%s", KV("sweepd.job_start", "points", len(job.Points), "workers", len(workers),
		"workload", job.Profile.Name, "instructions", job.Instructions))
	emit := func(pr PointResult, done, total int) {
		wr := &WireResult{Index: pr.Index, Name: pr.Result.Name, Done: done, Total: total}
		if pr.Result.Err != nil {
			wr.Err = pr.Result.Err.Error()
		} else {
			wr.Res = WireRunResultOf(pr.Result.Res)
		}
		if err := w.send(&Message{Type: msgResult, Result: wr}); err != nil {
			cancel() // client gone; stop burning worker time
		}
	}
	_, err = Run(ctx, job, workers, emit)
	fail(err) // err == nil sends the clean Done
}

// groupCall is one in-flight assignment on a remote worker.
type groupCall struct {
	job    *Job
	emit   func(PointResult)
	onCkpt func(index int, data []byte)                // nil when the scheduler keeps no checkpoints
	onTel  func(index int, snap core.IntervalSnapshot) // nil when the job streams no telemetry
	done   chan error                                  // buffered; receives exactly one completion
	// ckptLogged marks points whose first checkpoint receipt was logged;
	// later shipments (one per cadence interval) stay quiet. Guarded by the
	// owning remoteWorker's mutex.
	ckptLogged map[int]bool
}

// remoteWorker proxies a registered worker connection behind the Worker
// interface, multiplexing concurrent assignments (possibly from several
// jobs) over the single connection by call ID.
type remoteWorker struct {
	c    *Coordinator
	w    *wire
	name string

	mu      sync.Mutex
	calls   map[uint64]*groupCall
	dead    bool
	deadErr error
}

// Name reports the worker's self-declared registration name, attributing
// dispatches and results to a host in logs and job traces.
func (rw *remoteWorker) Name() string { return rw.name }

// RunGroup implements Worker: ship the assignment (including any prior
// checkpoints to resume from), stream results into emit and shipped
// checkpoints into gr.OnCheckpoint, and return when the worker reports the
// group closed (or dies).
func (rw *remoteWorker) RunGroup(ctx context.Context, job *Job, gr GroupRun, emit func(PointResult)) error {
	call := &groupCall{job: job, emit: emit, onCkpt: gr.OnCheckpoint, onTel: gr.OnTelemetry,
		done: make(chan error, 1), ckptLogged: make(map[int]bool)}
	id := rw.c.callSeq.Add(1)

	rw.mu.Lock()
	if rw.dead {
		err := rw.deadErr
		rw.mu.Unlock()
		return err
	}
	rw.calls[id] = call
	rw.mu.Unlock()
	defer func() {
		rw.mu.Lock()
		delete(rw.calls, id)
		rw.mu.Unlock()
	}()

	asg, err := rw.assignment(id, job, gr)
	if err != nil {
		// Serialization failure is deterministic, not a worker fault — but a
		// point that cannot cross the wire cannot run remotely at all, so
		// surface it as this worker's death; if every worker refuses, the
		// job fails with the cause attached.
		rw.c.Metrics.groupRequeued()
		return err
	}
	start := time.Now()
	if err := rw.w.send(&Message{Type: msgAssign, Assign: asg}); err != nil {
		rw.fail(err)
		rw.c.Metrics.groupRequeued()
		return err
	}
	rw.c.Metrics.groupDispatched()
	select {
	case err := <-call.done:
		rw.c.Metrics.groupDone(start)
		if err != nil {
			rw.c.Metrics.groupRequeued()
		}
		return err
	case <-ctx.Done():
		// Tell the worker to stop simulating; best effort. A cancelled
		// round trip observes no RTT — the distribution measures completed
		// work, not how fast callers give up.
		rw.w.send(&Message{Type: msgCancel, Cancel: &Cancel{Call: id}}) //nolint:errcheck
		return ctx.Err()
	}
}

// assignment builds the wire form of one key-group, attaching the trace
// container when the coordinator's cache already holds it, and the group's
// latest per-point checkpoints so a requeued group resumes mid-run.
func (rw *remoteWorker) assignment(id uint64, job *Job, gr GroupRun) (*Assignment, error) {
	indices := gr.Indices
	asg := &Assignment{Call: id, Profile: job.Profile, Instructions: job.Instructions,
		Points: make([]WirePoint, len(indices)), Checkpoints: gr.Checkpoints,
		TelemetryEvery: job.TelemetryEvery}
	for i, idx := range indices {
		spec, err := SpecOf(job.Points[idx].Config)
		if err != nil {
			return nil, fmt.Errorf("sweepd: point %d (%s): %w", idx, job.Points[idx].Name, err)
		}
		asg.Points[i] = WirePoint{Index: idx, Name: job.Points[idx].Name, Config: spec}
	}
	if tc := rw.c.Traces; tc != nil && tc.Cacheable(job.Instructions) {
		key := tracecache.KeyFor(job.Profile, job.Points[indices[0]].Config.TraceConfig(), job.Instructions)
		asg.KeyID = key.ID()
		var buf bytes.Buffer
		if ok, err := tc.ExportContainer(key, &buf); ok && err == nil {
			asg.Trace = buf.Bytes()
			rw.c.Metrics.traceShipped(buf.Len())
			rw.c.logf("%s", KV("sweepd.trace_shipped", "key", asg.KeyID, "bytes", buf.Len(), "worker", rw.name))
		}
	}
	return asg, nil
}

// readLoop pumps worker messages until the connection fails.
func (rw *remoteWorker) readLoop() error {
	for {
		m, err := rw.w.recv()
		if err != nil {
			return err
		}
		switch m.Type {
		case msgResult:
			r := m.Result
			if r == nil {
				continue
			}
			rw.mu.Lock()
			call := rw.calls[r.Call]
			rw.mu.Unlock()
			if call == nil || r.Index < 0 || r.Index >= len(call.job.Points) {
				continue // late result for a finished/cancelled call
			}
			res := sweep.Result{Point: call.job.Points[r.Index]}
			if r.Err != "" {
				res.Err = errors.New(r.Err)
			} else if r.Res != nil {
				res.Res = r.Res.Result(call.job.Points[r.Index].Config)
			}
			call.emit(PointResult{Index: r.Index, Result: res})
		case msgCheckpoint:
			ck := m.Checkpoint
			if ck == nil {
				continue
			}
			rw.mu.Lock()
			call := rw.calls[ck.Call]
			first := false
			if call != nil && !call.ckptLogged[ck.Index] {
				call.ckptLogged[ck.Index] = true
				first = true
			}
			rw.mu.Unlock()
			if call == nil || call.onCkpt == nil || ck.Index < 0 || ck.Index >= len(call.job.Points) {
				continue // late shipment for a finished/cancelled call
			}
			if first {
				// One line per point, on its first shipment: the point now
				// has resume state. Per-interval shipments stay quiet.
				rw.c.logf("%s", KV("sweepd.checkpoint_received", "point", ck.Index, "bytes", len(ck.Data), "worker", rw.name))
			}
			call.onCkpt(ck.Index, ck.Data)
		case msgTelemetry:
			ts := m.Telemetry
			if ts == nil {
				continue
			}
			rw.mu.Lock()
			call := rw.calls[ts.Call]
			rw.mu.Unlock()
			if call == nil || call.onTel == nil || ts.Index < 0 || ts.Index >= len(call.job.Points) {
				continue // late snapshot for a finished/cancelled call
			}
			// No per-snapshot logging: at a fine cadence these are the
			// chattiest messages on the wire. Forwarded outside rw.mu;
			// consumers must not block (jobd's broker drops instead).
			call.onTel(ts.Index, ts.Snap)
		case msgGroupEnd:
			ge := m.GroupEnd
			if ge == nil {
				continue
			}
			rw.mu.Lock()
			call := rw.calls[ge.Call]
			rw.mu.Unlock()
			if call == nil {
				continue
			}
			var err error
			if ge.Err != "" {
				err = errors.New(ge.Err)
			}
			select {
			case call.done <- err:
			default:
			}
		case msgPing:
			// Liveness only: receiving any frame already fed the read
			// deadline, so there is nothing further to do.
		}
	}
}

// fail marks the worker dead and completes every pending call with err, so
// the scheduler requeues their remainders.
func (rw *remoteWorker) fail(err error) {
	if err == nil {
		err = errors.New("sweepd: worker connection closed")
	}
	rw.mu.Lock()
	rw.dead = true
	rw.deadErr = err
	calls := make([]*groupCall, 0, len(rw.calls))
	for _, call := range rw.calls {
		calls = append(calls, call)
	}
	rw.mu.Unlock()
	for _, call := range calls {
		select {
		case call.done <- err:
		default:
		}
	}
}
