package sweepd

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sweep"
	"repro/internal/tracecache"
)

// WorkerOptions configures one network worker process.
type WorkerOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Parallelism bounds concurrent engines within one assigned group;
	// 0 uses GOMAXPROCS.
	Parallelism int
	// Traces is the worker's shared trace cache — every group this worker
	// runs generates (or seeds, when the coordinator ships a container)
	// each distinct trace once into it. nil builds a private default cache.
	Traces *tracecache.Cache
	// Observer, when non-nil, receives the worker's own per-point progress
	// through the standard Observer hook: Core is remapped to the point's
	// job-wide index, Done/Total count within the assigned group.
	Observer core.Observer
	// CheckpointEvery is the cadence (major cycles) at which the worker
	// serializes each in-flight engine's state and ships it to the
	// coordinator, so a group this worker dies holding resumes on a
	// survivor from the shipped cycle instead of cycle 0.
	// 0 selects core.DefaultObserverInterval.
	CheckpointEvery uint64
	// Logf, when non-nil, receives worker log lines.
	Logf func(format string, args ...any)
	// HeartbeatInterval is the msgPing cadence toward the coordinator and
	// HeartbeatTimeout the silence after which the coordinator is declared
	// hung and the connection dropped (Work returns, and the resimd loop
	// reconnects with backoff). Zero applies DefaultHeartbeatInterval /
	// DefaultHeartbeatTimeout; negative disables that side of liveness.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Clock, when non-nil, replaces the wall clock for deadlines and
	// heartbeat pacing (chaos tests drive liveness virtually).
	Clock faults.Clock
	// Faults, when non-nil, arms the worker side of the wire with a
	// fault-injection schedule (sites sweepd.worker.send/recv); nil
	// injects nothing. See internal/faults.
	Faults *faults.Injector
}

// Work dials the coordinator at addr, registers as a worker and serves
// key-group assignments until the context is cancelled or the connection
// fails. Each assignment runs through the ordinary sweep machinery against
// the worker's shared trace cache, streaming one result message per
// completed point.
func Work(ctx context.Context, addr string, opts WorkerOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Traces == nil {
		opts.Traces = tracecache.New(tracecache.Config{})
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	w := newWire(conn)
	defer w.Close()
	w.clock = opts.Clock
	w.inj = opts.Faults
	w.sendSite, w.recvSite = FaultWorkerSend, FaultWorkerRecv
	// Bound the handshake too: a hung coordinator must not wedge the
	// reconnect loop before liveness is even armed.
	_ = conn.SetDeadline(w.now().Add(defaultHandshakeTimeout))
	hello, err := handshake(w, Hello{Role: roleWorker, Name: opts.Name}, roleCoordinator)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	hbInterval, hbTimeout := livenessParams(
		opts.HeartbeatInterval, opts.HeartbeatTimeout, hello)
	if hbTimeout > 0 {
		w.readTimeout = hbTimeout
		w.writeTimeout = hbTimeout
	}
	logf("%s", KV("sweepd.worker_connected", "worker", opts.Name, "coordinator", addr))

	// Tear the connection down on cancellation so the blocking recv returns.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			w.Close()
		case <-stop:
		}
	}()
	if hbInterval > 0 {
		go w.heartbeat(hbInterval, stop)
	}

	var (
		mu      sync.Mutex
		cancels = make(map[uint64]context.CancelFunc)
		wg      sync.WaitGroup
	)
	defer wg.Wait()
	for {
		m, err := w.recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch m.Type {
		case msgAssign:
			asg := m.Assign
			if asg == nil {
				continue
			}
			actx, cancel := context.WithCancel(ctx)
			mu.Lock()
			cancels[asg.Call] = cancel
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					mu.Lock()
					delete(cancels, asg.Call)
					mu.Unlock()
					cancel()
				}()
				serveAssignment(actx, w, asg, opts, logf)
			}()
		case msgCancel:
			if m.Cancel == nil {
				continue
			}
			mu.Lock()
			if cancel := cancels[m.Cancel.Call]; cancel != nil {
				cancel()
			}
			mu.Unlock()
		case msgPing:
			// Liveness only; receiving it already fed the read deadline.
		}
	}
}

// serveAssignment runs one key-group and streams its results back.
func serveAssignment(ctx context.Context, w *wire, asg *Assignment, opts WorkerOptions, logf func(string, ...any)) {
	end := func(err error) {
		w.send(&Message{Type: msgGroupEnd, GroupEnd: &GroupEnd{Call: asg.Call, Err: errString(err)}}) //nolint:errcheck
	}
	pts := make([]sweep.Point, len(asg.Points))
	for i, wp := range asg.Points {
		cfg, err := wp.Config.Config()
		if err != nil {
			// A point the worker cannot materialize is a deterministic
			// per-point failure, reported as an ordinary errored result so
			// the job completes instead of bouncing between workers.
			fail := fmt.Errorf("sweepd: materialize point %d (%s): %w", wp.Index, wp.Name, err)
			for _, p := range asg.Points {
				w.send(&Message{Type: msgResult, Result: &WireResult{ //nolint:errcheck
					Call: asg.Call, Index: p.Index, Name: p.Name, Err: fail.Error(),
				}})
			}
			end(nil)
			return
		}
		pts[i] = sweep.Point{Name: wp.Name, Config: cfg}
	}
	if len(pts) == 0 {
		end(nil)
		return
	}

	// Seed the shipped trace, if any, under the key this worker derives
	// from its own materialized configuration — the same derivation the
	// sweep runner uses to look it up, so a key mismatch is impossible.
	if len(asg.Trace) > 0 && opts.Traces.Cacheable(asg.Instructions) {
		key := tracecache.KeyFor(asg.Profile, pts[0].Config.TraceConfig(), asg.Instructions)
		if _, err := opts.Traces.Seed(key, bytes.NewReader(asg.Trace)); err != nil {
			logf("%s", KV("sweepd.trace_seed_failed", "worker", opts.Name, "key", asg.KeyID, "err", err))
		} else {
			logf("%s", KV("sweepd.trace_seeded", "worker", opts.Name, "key", asg.KeyID))
		}
	}

	// Shipped checkpoints resume a requeued group's points mid-run; one
	// that fails to decode just runs its point from scratch.
	resume := decodeResume(len(asg.Points),
		func(i int) []byte { return asg.Checkpoints[asg.Points[i].Index] },
		func(i int, err error) {
			logf("%s", KV("sweepd.checkpoint_undecodable", "worker", opts.Name,
				"point", asg.Points[i].Index, "err", err))
		})
	ckptEvery := opts.CheckpointEvery
	if ckptEvery == 0 {
		ckptEvery = core.DefaultObserverInterval
	}

	r := sweep.Runner{
		Workload:        asg.Profile,
		Instructions:    asg.Instructions,
		Parallelism:     opts.Parallelism,
		Traces:          opts.Traces,
		Resume:          resume,
		CheckpointEvery: ckptEvery,
		// Logged on successful restore only — the line tests and operators
		// rely on must never claim a resume that degraded to a fresh run.
		OnResume: func(i int, cycles uint64) {
			logf("%s", KV("sweepd.point_resumed", "worker", opts.Name, "point", asg.Points[i].Index, "cycle", cycles))
		},
		OnCheckpoint: func(i int, cp *core.Checkpoint) {
			data, err := cp.Encode()
			if err != nil {
				return
			}
			w.send(&Message{Type: msgCheckpoint, Checkpoint: &CheckpointShip{ //nolint:errcheck
				Call: asg.Call, Index: asg.Points[i].Index, Data: data,
			}})
		},
		// Telemetry streams at the job's cadence (carried by the
		// assignment); snapshots ship with the job-wide point index so the
		// coordinator and client never see group-relative slots. Pipe-trace
		// tails are a local-sink feature and the runner never produces them.
		TelemetryEvery: asg.TelemetryEvery,
		OnResult: func(i int, res sweep.Result) {
			if abortedResult(res) {
				// Cut short by cancellation — withhold so the coordinator
				// requeues the point rather than recording the abort.
				return
			}
			wr := &WireResult{Call: asg.Call, Index: asg.Points[i].Index, Name: res.Name}
			if res.Err != nil {
				wr.Err = res.Err.Error()
			} else {
				wr.Res = WireRunResultOf(res.Res)
			}
			w.send(&Message{Type: msgResult, Result: wr}) //nolint:errcheck
		},
	}
	if asg.TelemetryEvery > 0 {
		r.OnTelemetry = func(i int, snap core.IntervalSnapshot) {
			idx := asg.Points[i].Index
			snap.Core = idx
			w.send(&Message{Type: msgTelemetry, Telemetry: &TelemetryShip{ //nolint:errcheck
				Call: asg.Call, Index: idx, Snap: snap,
			}})
		}
	}
	if opts.Observer != nil {
		r.Observer = core.ObserverFunc(func(p core.Progress) {
			if p.Core >= 0 && p.Core < len(asg.Points) {
				p.Core = asg.Points[p.Core].Index
			}
			opts.Observer.Progress(p)
		})
	}
	_, err := r.Run(ctx, pts)
	end(err)
	logf("%s", KV("sweepd.group_done", "worker", opts.Name, "call", asg.Call, "points", len(pts), "err", err))
}
