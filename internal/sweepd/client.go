package sweepd

import (
	"context"
	"errors"
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/sweep"
)

// RunRemote submits the job to the coordinator at addr and streams results
// until the job completes. The returned slice matches the job's point order
// regardless of shard or worker completion order — the same contract as the
// local scheduler. obs, when non-nil, receives one Progress callback per
// completed point carrying the coordinator-side completion counters
// (Done/Total) as they stream in, and a Final callback on the last point.
//
// Every point must be expressible on the wire (no custom cache models, no
// pipe tracers); RunRemote validates before dialing so an unserializable
// sweep fails fast and locally. Cancelling the context closes the
// connection, which aborts the job coordinator-side.
//
// When job.TelemetryEvery > 0 and job.OnTelemetry is set, live interval
// snapshots relayed by the coordinator are delivered to job.OnTelemetry on
// the receive goroutine, interleaved with results; the callback must not
// block (see Job.OnTelemetry for the ordering contract).
func RunRemote(ctx context.Context, addr string, job *Job, obs core.Observer) ([]sweep.Result, error) {
	if len(job.Points) == 0 {
		return nil, fmt.Errorf("sweepd: no design points")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	wj, err := WireJobOf(job)
	if err != nil {
		return nil, err
	}

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	w := newWire(conn)
	defer w.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			w.Close()
		case <-stop:
		}
	}()

	hello, err := handshake(w, Hello{Role: roleClient}, roleCoordinator)
	if err != nil {
		return nil, wrapCtx(ctx, err)
	}
	// Protocol v4 liveness: the coordinator arms a read deadline on every
	// accepted connection, so the client must keep frames flowing through
	// quiet stretches; symmetrically, coordinator pings feed the deadline
	// armed here, surfacing a hung coordinator as a failed run instead of
	// a job that never finishes. The cadence is the coordinator's own,
	// adopted from its hello.
	hbInterval, hbTimeout := livenessParams(0, 0, hello)
	if hbTimeout > 0 {
		w.readTimeout = hbTimeout
		w.writeTimeout = hbTimeout
	}
	if hbInterval > 0 {
		go w.heartbeat(hbInterval, stop)
	}
	if err := w.send(&Message{Type: msgJob, Job: wj}); err != nil {
		return nil, wrapCtx(ctx, err)
	}

	// Point configurations are materialized lazily from the submitted specs
	// — the exact derivation the worker used — so a returned result carries
	// the same validated configuration a local run would.
	cfgs := make([]*core.Config, len(job.Points))
	configFor := func(i int) (core.Config, error) {
		if cfgs[i] == nil {
			cfg, err := wj.Points[i].Config.Config()
			if err != nil {
				return core.Config{}, err
			}
			cfgs[i] = &cfg
		}
		return *cfgs[i], nil
	}

	results := make([]sweep.Result, len(job.Points))
	got := make([]bool, len(job.Points))
	received := 0
	for {
		m, err := w.recv()
		if err != nil {
			return nil, wrapCtx(ctx, err)
		}
		switch m.Type {
		case msgResult:
			r := m.Result
			if r == nil || r.Index < 0 || r.Index >= len(results) {
				continue
			}
			res := sweep.Result{Point: job.Points[r.Index]}
			switch {
			case r.Err != "":
				res.Err = errors.New(r.Err)
			case r.Res != nil:
				cfg, err := configFor(r.Index)
				if err != nil {
					return nil, fmt.Errorf("sweepd: reconstruct point %d: %w", r.Index, err)
				}
				res.Res = r.Res.Result(cfg)
			}
			if !got[r.Index] {
				got[r.Index] = true
				received++
			}
			results[r.Index] = res
			if obs != nil {
				obs.Progress(core.Progress{
					Core:      r.Index,
					Cycles:    res.Res.Cycles,
					Committed: res.Res.Committed,
					IPC:       res.Res.IPC(),
					Done:      r.Done,
					Total:     r.Total,
					Final:     r.Done == r.Total && r.Total > 0,
				})
			}
		case msgTelemetry:
			ts := m.Telemetry
			if ts == nil || job.OnTelemetry == nil || ts.Index < 0 || ts.Index >= len(results) {
				continue
			}
			job.OnTelemetry(ts.Index, ts.Snap)
		case msgDone:
			if m.Done != nil && m.Done.Err != "" {
				return nil, fmt.Errorf("sweepd: remote sweep failed: %s", m.Done.Err)
			}
			if received != len(results) {
				return nil, fmt.Errorf("sweepd: coordinator reported done after %d of %d results", received, len(results))
			}
			return results, nil
		}
	}
}

// wrapCtx prefers the context's cancellation error over the I/O error it
// caused (the watchdog closes the connection on cancellation, so the recv
// error is just "use of closed network connection").
func wrapCtx(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}
