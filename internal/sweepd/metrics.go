// Coordinator instrumentation. Unlike jobd's snapshot-applied families,
// the coordinator's metrics observe at the event sites (worker
// registration, group dispatch, trace shipping) — there is no consistent
// snapshot to rebuild them from, and the RPC round-trip distribution can
// only be measured where the round trip happens.
//
// All instrument helpers are nil-receiver safe: a coordinator with no
// Metrics attached (library use, most tests) pays one nil check per event.
package sweepd

import (
	"time"

	"repro/internal/obs"
)

// CoordinatorMetrics holds the coordinator's registered instrument
// handles. Exported so cmd/doclint can rebuild the inventory
// RegisterCoordinatorMetrics creates and diff it against
// docs/OBSERVABILITY.md.
type CoordinatorMetrics struct {
	WorkerConnects  *obs.Counter
	Workers         *obs.Gauge
	GroupsDispatch  *obs.Counter
	GroupsRequeued  *obs.Counter
	TraceShips      *obs.Counter
	TraceShipBytes  *obs.Counter
	GroupRoundTrips *obs.Histogram

	HeartbeatTimeouts *obs.Counter
	HandshakeTimeouts *obs.Counter
}

// RegisterCoordinatorMetrics registers the coordinator's metric families
// on reg and returns the instrument handles to assign to
// Coordinator.Metrics. On a nil registry it returns nil, which every
// helper below treats as "no metrics" — detached mode costs one nil check.
func RegisterCoordinatorMetrics(reg *obs.Registry) *CoordinatorMetrics {
	if reg == nil {
		return nil
	}
	return &CoordinatorMetrics{
		WorkerConnects: reg.Counter("sweepd_worker_connects_total",
			"Worker registrations accepted (reconnects count again)."),
		Workers: reg.Gauge("sweepd_workers",
			"Workers currently registered with the coordinator."),
		GroupsDispatch: reg.Counter("sweepd_groups_dispatched_total",
			"Group assignments shipped to workers."),
		GroupsRequeued: reg.Counter("sweepd_groups_requeued_total",
			"Group assignments that failed on their worker (died or refused) and went back for rescheduling."),
		TraceShips: reg.Counter("sweepd_trace_ships_total",
			"Trace containers shipped to workers from the coordinator's cache."),
		TraceShipBytes: reg.Counter("sweepd_trace_ship_bytes_total",
			"Bytes of delta-compressed trace containers shipped to workers."),
		GroupRoundTrips: reg.Histogram("sweepd_group_rtt_seconds",
			"Group assignment send to group-end receipt, per completed round trip.", nil),
		HeartbeatTimeouts: reg.Counter("sweepd_heartbeat_timeouts_total",
			"Connections torn down after heartbeat silence: the peer was hung (TCP open, nothing flowing), its groups requeued."),
		HandshakeTimeouts: reg.Counter("sweepd_handshake_timeouts_total",
			"Accepted connections dropped for not completing the hello exchange within the handshake deadline."),
	}
}

func (m *CoordinatorMetrics) workerConnected() {
	if m == nil {
		return
	}
	m.WorkerConnects.Inc()
	m.Workers.Inc()
}

func (m *CoordinatorMetrics) workerGone() {
	if m == nil {
		return
	}
	m.Workers.Dec()
}

func (m *CoordinatorMetrics) groupDispatched() {
	if m == nil {
		return
	}
	m.GroupsDispatch.Inc()
}

func (m *CoordinatorMetrics) groupRequeued() {
	if m == nil {
		return
	}
	m.GroupsRequeued.Inc()
}

func (m *CoordinatorMetrics) traceShipped(bytes int) {
	if m == nil {
		return
	}
	m.TraceShips.Inc()
	m.TraceShipBytes.Add(float64(bytes))
}

func (m *CoordinatorMetrics) groupDone(start time.Time) {
	if m == nil {
		return
	}
	m.GroupRoundTrips.Observe(time.Since(start).Seconds())
}

func (m *CoordinatorMetrics) heartbeatTimeout() {
	if m == nil {
		return
	}
	m.HeartbeatTimeouts.Inc()
}

func (m *CoordinatorMetrics) handshakeTimeout() {
	if m == nil {
		return
	}
	m.HandshakeTimeouts.Inc()
}
